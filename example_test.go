package ldlp_test

import (
	"fmt"

	"ldlp"
)

// Example shows the central idea: the same three messages flow through
// the same two layers under the conventional and LDLP disciplines, and
// only the *order* differs — one message through all layers versus one
// layer over all messages.
func Example() {
	for _, d := range []ldlp.Discipline{ldlp.Conventional, ldlp.LDLP} {
		var order []string
		s := ldlp.NewStack[int](ldlp.Options{Discipline: d})
		var upper *ldlp.Layer[int]
		lower := s.AddLayer("ip", func(m int, emit ldlp.Emit[int]) {
			order = append(order, fmt.Sprintf("ip:%d", m))
			emit(upper, m)
		})
		upper = s.AddLayer("tcp", func(m int, emit ldlp.Emit[int]) {
			order = append(order, fmt.Sprintf("tcp:%d", m))
			emit(nil, m)
		})
		s.Link(lower, upper)
		for m := 1; m <= 3; m++ {
			s.Inject(m)
		}
		s.Run()
		fmt.Println(d, order)
	}
	// Output:
	// conventional [ip:1 tcp:1 ip:2 tcp:2 ip:3 tcp:3]
	// ldlp [ip:1 ip:2 ip:3 tcp:1 tcp:2 tcp:3]
}

// ExampleWorkingSetReport regenerates the paper's §2 headline: the
// per-packet code working set dwarfs both the message and an 8 KB cache.
func ExampleWorkingSetReport() {
	a := ldlp.WorkingSetReport(552, 32)
	fmt.Printf("code+rodata working set > 4x 8KB cache: %v\n", a.Code.Bytes+a.ReadOnly.Bytes > 4*8192)
	fmt.Printf("working set > 30x the 552-byte message: %v\n", a.Code.Bytes > 30*552)
	// Output:
	// code+rodata working set > 4x 8KB cache: true
	// working set > 30x the 552-byte message: true
}

// ExampleNewStack_batchLimit shows the bottom-layer batch bound: the
// lowest layer yields to higher layers after its batch, so bursts cannot
// starve the upper stack.
func ExampleNewStack_batchLimit() {
	var order []string
	s := ldlp.NewStack[int](ldlp.Options{Discipline: ldlp.LDLP, BatchLimit: 2})
	var top *ldlp.Layer[int]
	bottom := s.AddLayer("dev", func(m int, emit ldlp.Emit[int]) {
		order = append(order, fmt.Sprintf("dev:%d", m))
		emit(top, m)
	})
	top = s.AddLayer("app", func(m int, emit ldlp.Emit[int]) {
		order = append(order, fmt.Sprintf("app:%d", m))
		emit(nil, m)
	})
	s.Link(bottom, top)
	for m := 1; m <= 4; m++ {
		s.Inject(m)
	}
	s.Run()
	fmt.Println(order)
	// Output:
	// [dev:1 dev:2 app:1 app:2 dev:3 dev:4 app:3 app:4]
}

// ExampleChecksumSimple shows the two real §5.1 checksum routines
// agreeing (their difference is cache behaviour, not results).
func ExampleChecksumSimple() {
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	fmt.Printf("%#04x %v\n", ldlp.ChecksumSimple(data),
		ldlp.ChecksumSimple(data) == ldlp.ChecksumUnrolled(data))
	// Output:
	// 0x220d true
}

// ExampleBuildStack builds the netstack's receive topology from an
// x-kernel-style graph description instead of imperative wiring.
func ExampleBuildStack() {
	spec := `
        device > ether > ip
        ip > tcp, udp
        tcp > socket
        udp > socket`
	var seen []string
	var layers map[string]*ldlp.Layer[int]
	passTo := func(name, next string) ldlp.Handler[int] {
		return func(m int, emit ldlp.Emit[int]) {
			seen = append(seen, name)
			if next == "" {
				emit(nil, m)
				return
			}
			emit(layers[next], m)
		}
	}
	handlers := map[string]ldlp.Handler[int]{
		"device": passTo("device", "ether"),
		"ether":  passTo("ether", "ip"),
		"ip":     passTo("ip", "udp"),
		"tcp":    passTo("tcp", "socket"),
		"udp":    passTo("udp", "socket"),
		"socket": passTo("socket", ""),
	}
	s, ls, err := ldlp.BuildStack(ldlp.Options{Discipline: ldlp.LDLP}, spec, handlers)
	if err != nil {
		panic(err)
	}
	layers = ls
	s.Inject(1)
	s.Run()
	fmt.Println(seen)
	// Output:
	// [device ether ip udp socket]
}
