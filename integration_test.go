package ldlp_test

import (
	"strings"
	"testing"

	"ldlp"
	"ldlp/internal/core"
	"ldlp/internal/dns"
	"ldlp/internal/httpd"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/memtrace"
	"ldlp/internal/netstack"
	"ldlp/internal/tcpmodel"
)

// TestFullStackStory exercises several subsystems end to end on one
// network: a stub resolver looks up the web server's name in DNS, a
// client connects to the resolved address over TCP-lite and fetches a
// page from the HTTP server — every message in the exchange small, every
// receive path LDLP-scheduled.
func TestFullStackStory(t *testing.T) {
	mbuf.ResetPool()
	n := ldlp.NewNet()
	opts := ldlp.DefaultHostOptions(ldlp.LDLP)

	nsIP := ldlp.IPAddr{203, 0, 113, 53}
	wwwIP := ldlp.IPAddr{203, 0, 113, 80}
	nsHost := n.AddHost("ns", nsIP, opts)
	wwwHost := n.AddHost("www", wwwIP, opts)
	cliHost := n.AddHost("client", ldlp.IPAddr{203, 0, 113, 10}, opts)

	// Authoritative DNS knows the web server.
	ns, err := dns.NewServer(nsHost)
	if err != nil {
		t.Fatal(err)
	}
	ns.Add("www.sigcomm96.example", wwwIP)

	// The web server serves the abstract.
	web, err := httpd.NewServer(wwwHost, 80, func(path string) (string, bool) {
		if path == "/abstract" {
			return "memory system penalties dominate small-message protocols", true
		}
		return "", false
	})
	if err != nil {
		t.Fatal(err)
	}

	// Resolve.
	res, err := dns.NewResolver(cliHost, 3000, nsIP)
	if err != nil {
		t.Fatal(err)
	}
	lk := res.Resolve("www.sigcomm96.example")
	for i := 0; i < 8 && !lk.Done; i++ {
		n.RunUntilIdle()
		ns.Poll()
		n.RunUntilIdle()
		res.Poll()
	}
	if !lk.Done || lk.Err != nil {
		t.Fatalf("resolution failed: %v %v", lk.Done, lk.Err)
	}
	if lk.Addr != wwwIP {
		t.Fatalf("resolved %v, want %v", lk.Addr, wwwIP)
	}

	// Fetch from the resolved address.
	cli := httpd.Dial(cliHost, wwwHost, 80)
	n.RunUntilIdle()
	if !cli.Connected() {
		t.Fatal("TCP handshake failed")
	}
	cli.Get("/abstract")
	for i := 0; i < 8; i++ {
		n.RunUntilIdle()
		web.Poll()
		n.RunUntilIdle()
		cli.Poll()
	}
	r, ok := cli.Next()
	if !ok || !strings.Contains(r.Body, "memory system penalties") {
		t.Fatalf("fetch failed: %+v ok=%v", r, ok)
	}

	// All three hosts ran LDLP receive paths; message sizes were small.
	for _, h := range []*netstack.Host{nsHost, wwwHost, cliHost} {
		if h.Counters.FramesIn == 0 {
			t.Errorf("host %s received nothing", h.Name())
		}
	}
	n.Tick(3) // drain delayed ACKs and timers before leak accounting
	if s := mbuf.PoolStats(); s.InUse != 0 {
		t.Errorf("mbuf leak across the story: %+v", s)
	}
}

// TestTraceFileFullModelRoundTrip dumps the complete modeled TCP trace
// through the file format and verifies the analysis is identical — the
// cmd/traceutil workflow as a test.
func TestTraceFileFullModelRoundTrip(t *testing.T) {
	tr := tcpmodel.New(tcpmodel.DefaultConfig()).Trace()
	before := memtrace.Analyze(tr, 32)

	var sb strings.Builder
	if err := memtrace.WriteTrace(&sb, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := memtrace.ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	after := memtrace.Analyze(loaded, 32)
	if before.Code != after.Code || before.ReadOnly != after.ReadOnly || before.Mutable != after.Mutable {
		t.Error("working sets changed across serialization")
	}
	if len(before.PerLayer) != len(after.PerLayer) {
		t.Fatalf("layer rows changed: %d vs %d", len(before.PerLayer), len(after.PerLayer))
	}
	for i := range before.PerLayer {
		if before.PerLayer[i] != after.PerLayer[i] {
			t.Errorf("row %d changed: %+v vs %+v", i, before.PerLayer[i], after.PerLayer[i])
		}
	}
}

// TestPerLayerCountersAfterTraffic checks the engine's per-layer
// accounting through a real netstack exchange.
func TestPerLayerCountersAfterTraffic(t *testing.T) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	a := n.AddHost("a", layers.IPAddr{10, 13, 0, 1}, netstack.DefaultOptions(core.LDLP))
	b := n.AddHost("b", layers.IPAddr{10, 13, 0, 2}, netstack.DefaultOptions(core.LDLP))
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)
	for i := 0; i < 10; i++ {
		sa.SendTo(b.IP(), 2, []byte{byte(i)})
	}
	n.RunUntilIdle()
	if sb.Pending() != 10 {
		t.Fatalf("pending = %d", sb.Pending())
	}
	st := b.StackStats()
	// device, ether, ip, udp, socket each processed all ten: 50 handler
	// invocations; tcp and icmp layers idle.
	if st.Processed != 50 {
		t.Errorf("processed = %d, want 50", st.Processed)
	}
	if st.Delivered != 10 {
		t.Errorf("delivered = %d, want 10", st.Delivered)
	}
}
