# Reproduction of Blackwell, "Speeding up Protocols for Small Messages"
# (SIGCOMM '96). Pure Go, standard library only.

GO ?= go

.PHONY: all build vet lint test test-short test-race chaos chaos-smoke fleet-smoke fuzz bench bench-scale bench-full trace-smoke report examples clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the repo's own analyzer suite (ldlpvet),
# which enforces mbuf ownership balance, the zero-alloc //ldlp:hotpath
# contract, atomics-only counter access, lock ordering, and per-seed
# determinism. Exits non-zero on any unexplained finding.
# Extra ldlpvet flags, e.g. `make lint LDLPVET_FLAGS="-v -github"`.
LDLPVET_FLAGS ?=

lint: vet
	$(GO) run ./cmd/ldlpvet $(LDLPVET_FLAGS) ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over everything; the concurrency stress tests
# (sharded engine, sharded netstack) are written to be meaningful here.
test-race:
	$(GO) test -race ./...

# Chaos soak: the full impairment-preset x discipline x shard matrix
# under the race detector, plus the standalone driver across both
# disciplines (it exits non-zero on any invariant violation).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/netstack ./internal/sscop
	$(GO) run ./cmd/chaos -shards 4
	$(GO) run ./cmd/chaos -discipline conventional

# CI-sized smoke: -short trims the soak matrix to three presets.
chaos-smoke:
	$(GO) test -race -short -count=1 -run 'TestChaos' ./internal/netstack ./internal/sscop
	$(GO) run ./cmd/chaos -mix all -shards 4

# Fleet smoke: the event-driven simulator's test suite, then a 64-node
# threshold-gossip run over lossy links with invariant checking and a
# byte-identical replay comparison (exits non-zero on any violation).
fleet-smoke:
	$(GO) test -short -count=1 ./internal/fleet/...
	$(GO) run ./cmd/ldlpsim -fleet -fleet-nodes 64 -fleet-steps 3 -fleet-check

# Short fuzzing pass over every FuzzXxx target (graph parser, DNS codec,
# mbuf chain ops, flow table + eviction cache differential).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseGraph -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/dns
	$(GO) test -run=^$$ -fuzz=FuzzEncodeName -fuzztime=10s ./internal/dns
	$(GO) test -run=^$$ -fuzz=FuzzChainOps -fuzztime=10s ./internal/mbuf
	$(GO) test -run=^$$ -fuzz=FuzzFlowTable -fuzztime=10s ./internal/flowtable

# CI benchmarks, summarized to BENCH_2.json in three tiers through one
# benchjson (which folds repeated samples min-of-N):
#   1. Micro tier — the allocation-sensitive hot-path cycles, sampled:
#      100 iterations x 3 counts, so CI timing diffs compare the best of
#      three instead of one noisy singleton. allocs/op for
#      BenchmarkHotPathInject* must stay 0 — the steady-state guarantee —
#      and any sample allocating taints the merged record (max-of-N).
#   2. Macro tier — whole-workload runs (Poisson sweep, accept-path
#      scale in its -short 10k-flow shape), one iteration.
#   3. Dispatch tier — the Zipf skew model, static vs load-aware; the
#      shard-imbalance and p99-wait-slots metrics land in the summary.
#   4. Fleet tier — 1000-node threshold gossip, LDLP and conventional
#      back to back; gossip_rounds_per_step, delivery_p99_ns and the
#      ldlp_latency_ratio headline land in the summary.
bench:
	{ $(GO) test -run=NONE -bench='BenchmarkHotPathInject|BenchmarkPoolAllocFree|BenchmarkPrependHeader|BenchmarkAllocFreeCluster' \
		-benchmem -benchtime=100x -count=3 -short ./internal/netstack ./internal/mbuf && \
	  $(GO) test -run=NONE -bench='BenchmarkSimPoisson|BenchmarkAcceptScale' \
		-benchmem -benchtime=1x -short ./internal/netstack . && \
	  $(GO) test -run=NONE -bench='BenchmarkDispatchSkewed' \
		-benchmem -benchtime=1x -short ./internal/sim && \
	  $(GO) test -run=NONE -bench='BenchmarkFleetGossip' \
		-benchmem -benchtime=1x ./internal/fleet/gossip ; } \
		| $(GO) run ./cmd/benchjson -out BENCH_2.json

# The full accept-path scale run: SYN-flood to one million established
# connections, then steady-state small-message echo. Asserts 0 allocs/op
# and bounded p99 probe depth at full population.
bench-scale:
	$(GO) test -run=NONE -bench=BenchmarkAcceptScale -benchmem -benchtime=1x \
		-timeout=30m ./internal/netstack \
		| $(GO) run ./cmd/benchjson -out BENCH_SCALE.json

# Flight-recorder smoke: run a short Poisson workload through
# cmd/ldlptrace at both load points and validate the emitted Chrome
# trace (well-formed JSON, per-track monotonic timestamps). The
# trace.json artifact opens directly in ui.perfetto.dev.
trace-smoke:
	$(GO) run ./cmd/ldlptrace -out trace.json -load both -duration 0.02 -check

# The full benchmark sweep (slow; numbers, not smoke).
bench-full:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure/ablation into results/ (add PAPER=1 for
# the full 100-seed methodology).
report:
	$(GO) run ./cmd/ldlpreport -out results $(if $(PAPER),-paper)
	$(GO) run ./cmd/tcpwset -all > results/tcpwset.txt
	$(GO) run ./cmd/cksumbench > results/cksumbench.txt
	$(GO) run ./cmd/sigbench > results/sigbench.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/signalling
	$(GO) run ./examples/webserver
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/dnsburst
	$(GO) run ./examples/nfsclient

clean:
	$(GO) clean ./...
