# Reproduction of Blackwell, "Speeding up Protocols for Small Messages"
# (SIGCOMM '96). Pure Go, standard library only.

GO ?= go

.PHONY: all build vet test test-short bench report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure/ablation into results/ (add PAPER=1 for
# the full 100-seed methodology).
report:
	$(GO) run ./cmd/ldlpreport -out results $(if $(PAPER),-paper)
	$(GO) run ./cmd/tcpwset -all > results/tcpwset.txt
	$(GO) run ./cmd/cksumbench > results/cksumbench.txt
	$(GO) run ./cmd/sigbench > results/sigbench.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/signalling
	$(GO) run ./examples/webserver
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/dnsburst
	$(GO) run ./examples/nfsclient

clean:
	$(GO) clean ./...
