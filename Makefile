# Reproduction of Blackwell, "Speeding up Protocols for Small Messages"
# (SIGCOMM '96). Pure Go, standard library only.

GO ?= go

.PHONY: all build vet test test-short test-race fuzz bench report examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over everything; the concurrency stress tests
# (sharded engine, sharded netstack) are written to be meaningful here.
test-race:
	$(GO) test -race ./...

# Short fuzzing pass over every FuzzXxx target (graph parser, DNS codec).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseGraph -fuzztime=10s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=10s ./internal/dns
	$(GO) test -run=^$$ -fuzz=FuzzEncodeName -fuzztime=10s ./internal/dns

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure/ablation into results/ (add PAPER=1 for
# the full 100-seed methodology).
report:
	$(GO) run ./cmd/ldlpreport -out results $(if $(PAPER),-paper)
	$(GO) run ./cmd/tcpwset -all > results/tcpwset.txt
	$(GO) run ./cmd/cksumbench > results/cksumbench.txt
	$(GO) run ./cmd/sigbench > results/sigbench.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/signalling
	$(GO) run ./examples/webserver
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/dnsburst
	$(GO) run ./examples/nfsclient

clean:
	$(GO) clean ./...
