package ldlp_test

// The reproduction suite: one test per published claim, exercised through
// the public API with reduced (but shape-preserving) sweep sizes. These
// are the assertions EXPERIMENTS.md's tables rest on; the cmd/ tools run
// the same code at full methodology.

import (
	"math"
	"testing"

	"ldlp"
)

func quickOpts() ldlp.SweepOptions {
	o := ldlp.QuickSweep()
	o.Runs = 3
	o.Duration = 0.25
	return o
}

// Claim (Table 1): the per-packet working set is ≈30.6 KB code + ≈5 KB
// read-only data, against a 552-byte message and an 8 KB cache.
func TestClaimWorkingSetDwarfsMessage(t *testing.T) {
	a := ldlp.WorkingSetReport(552, 32)
	if got := a.Code.Bytes; math.Abs(float64(got)-30592) > 0.05*30592 {
		t.Errorf("code working set = %d, paper 30592 (±5%%)", got)
	}
	if got := a.ReadOnly.Bytes; math.Abs(float64(got)-5088) > 0.15*5088 {
		t.Errorf("read-only working set = %d, paper 5088 (±15%%)", got)
	}
}

// Claim (§5.4): ≈25% of fetched instruction bytes never execute, and a
// dense layout recovers about that fraction of cache lines.
func TestClaimDilutionAndLayout(t *testing.T) {
	a := ldlp.WorkingSetReport(552, 32)
	if d := a.Dilution(); d < 0.15 || d > 0.35 {
		t.Errorf("dilution = %.3f, paper ≈0.25", d)
	}
	b := ldlp.LayoutBenefit(552, 32)
	if b.Reduction < 0.1 {
		t.Errorf("dense layout recovers only %.1f%%", 100*b.Reduction)
	}
}

// Claim (Table 3): doubling the instruction cache line to 64 bytes
// decreases the line count by ≈41% while growing bytes ≈17%.
func TestClaimLineSizeSweep(t *testing.T) {
	sweeps := ldlp.LineSizeSweep(552, []int{64})
	for _, sw := range sweeps {
		if sw.Class != "Code" {
			continue
		}
		d := sw.Deltas[0]
		if math.Abs(d.LinesDelta+0.41) > 0.08 {
			t.Errorf("64B lines delta = %+.2f, paper -0.41", d.LinesDelta)
		}
		if math.Abs(d.BytesDelta-0.17) > 0.08 {
			t.Errorf("64B bytes delta = %+.2f, paper +0.17", d.BytesDelta)
		}
	}
}

// Claim (Figure 5): conventional instruction misses are flat with load;
// LDLP's fall by an order of magnitude, flattening at the batch cap.
func TestClaimFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab := ldlp.Figure5(quickOpts())
	by := map[float64]map[string]float64{}
	for _, p := range tab.Points {
		by[p.X] = p.Y
	}
	if math.Abs(by[1000]["conv-I"]-by[9000]["conv-I"]) > 30 {
		t.Errorf("conventional I-misses not flat: %v vs %v", by[1000]["conv-I"], by[9000]["conv-I"])
	}
	if !(by[9500]["ldlp-I"] < by[1000]["ldlp-I"]/4) {
		t.Errorf("LDLP I-misses did not collapse: %v -> %v", by[1000]["ldlp-I"], by[9500]["ldlp-I"])
	}
}

// Claim (Figure 6): LDLP lowers latency at almost all loads; the
// conventional stack saturates far earlier and drops packets.
func TestClaimFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab := ldlp.Figure6(quickOpts())
	wins, rows := 0, 0
	var convSaturated bool
	for _, p := range tab.Points {
		rows++
		if p.Y["ldlp"] <= p.Y["conv"]*1.1 {
			wins++
		}
		if p.X >= 6000 && p.Y["conv-drop"] > 0.1 {
			convSaturated = true
		}
	}
	if wins < rows-1 {
		t.Errorf("LDLP at-or-below conventional latency on only %d/%d points", wins, rows)
	}
	if !convSaturated {
		t.Error("conventional never saturated at high load")
	}
}

// Claim (Figure 8): with a cold cache the simple checksum wins below
// ≈900 bytes; warm, the elaborate 4.4BSD routine wins.
func TestClaimFigure8Shape(t *testing.T) {
	tab := ldlp.Figure8(1000, 50)
	for _, p := range tab.Points {
		cold := p.Y["Simple cold"] < p.Y["4.4BSD cold"]
		if p.X <= 800 && !cold {
			t.Errorf("at %v bytes cold, simple should win", p.X)
		}
		if p.Y["4.4BSD warm"] > p.Y["4.4BSD cold"] {
			t.Errorf("warm worse than cold at %v bytes", p.X)
		}
	}
}

// Claim (§1 goal): the signalling stack meets 10k setup/teardown pairs/s
// at ≤100µs processing per message under LDLP only.
func TestClaimSignallingGoal(t *testing.T) {
	cfg := ldlp.SignallingSimConfig(ldlp.LDLP)
	cfg.Duration = 0.4
	res := ldlp.RunSim(cfg, ldlp.NewPoisson(20000, 120, 2))
	if res.Dropped > 0 {
		t.Errorf("LDLP dropped %d at goal load", res.Dropped)
	}
	proc := res.BusyFrac * cfg.Duration / float64(res.Processed)
	if proc > 100e-6 {
		t.Errorf("processing %.1fµs/msg exceeds the 100µs goal", proc*1e6)
	}

	ccfg := ldlp.SignallingSimConfig(ldlp.Conventional)
	ccfg.Duration = 0.4
	cres := ldlp.RunSim(ccfg, ldlp.NewPoisson(20000, 120, 2))
	if cres.Dropped == 0 {
		t.Error("conventional unexpectedly survived the goal load")
	}
}

// Claim (§6): with a 64 KB cache LDLP's advantage shrinks but code
// locality still matters while working sets exceed the cache.
func TestClaimCacheGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tab := ldlp.CacheSizeAblation(quickOpts(), 3000, []int{8192, 65536})
	var small, big map[string]float64
	for _, p := range tab.Points {
		if p.X == 8 {
			small = p.Y
		} else {
			big = p.Y
		}
	}
	advSmall := small["conv-latency"] / small["ldlp-latency"]
	advBig := big["conv-latency"] / big["ldlp-latency"]
	if !(advBig < advSmall) {
		t.Errorf("larger caches should shrink the advantage: %.2f -> %.2f", advSmall, advBig)
	}
}
