// Benchmarks regenerating every table and figure of the paper's
// evaluation, one benchmark per artifact. Each reports the headline
// quantities as custom metrics, so `go test -bench=. -benchmem` doubles
// as the reproduction harness in miniature (the full-methodology runs —
// 100 seeds × 1 s — live behind the cmd/ tools).
package ldlp_test

import (
	"fmt"
	"testing"

	"ldlp"
	"ldlp/internal/checksum"
	"ldlp/internal/core"
	"ldlp/internal/memtrace"
	"ldlp/internal/signal"
	"ldlp/internal/sim"
	"ldlp/internal/tcpmodel"
	"ldlp/internal/traffic"
)

// benchSweep keeps figure benchmarks fast while preserving shape.
func benchSweep() sim.SweepOptions {
	return sim.SweepOptions{Runs: 2, Duration: 0.1, MessageSize: 552, BaseSeed: 1, Parallel: true}
}

// BenchmarkTable1WorkingSet regenerates the §2 working-set breakdown:
// one trace of the modeled NetBSD TCP receive & acknowledge path,
// analyzed at 32-byte lines.
func BenchmarkTable1WorkingSet(b *testing.B) {
	var code, ro, mut int
	for i := 0; i < b.N; i++ {
		m := tcpmodel.New(tcpmodel.DefaultConfig())
		a := memtrace.Analyze(m.Trace(), 32)
		code, ro, mut = a.Code.Bytes, a.ReadOnly.Bytes, a.Mutable.Bytes
	}
	b.ReportMetric(float64(code), "code-bytes")
	b.ReportMetric(float64(ro), "ro-bytes")
	b.ReportMetric(float64(mut), "mut-bytes")
}

// BenchmarkTable2Phases regenerates the per-phase totals of the traced
// path (Table 2 / Figure 1 margins).
func BenchmarkTable2Phases(b *testing.B) {
	var intrRefs int
	for i := 0; i < b.N; i++ {
		m := tcpmodel.New(tcpmodel.DefaultConfig())
		a := memtrace.Analyze(m.Trace(), 32)
		intrRefs = a.Phases[tcpmodel.PhasePktIntr].CodeRefs
	}
	b.ReportMetric(float64(intrRefs), "pktintr-code-refs")
}

// BenchmarkTable3LineSweep regenerates the cache-line-size sweep.
func BenchmarkTable3LineSweep(b *testing.B) {
	var delta64 float64
	for i := 0; i < b.N; i++ {
		sweeps := ldlp.LineSizeSweep(552, []int{4, 8, 16, 64})
		for _, d := range sweeps[0].Deltas {
			if d.LineSize == 64 {
				delta64 = d.LinesDelta
			}
		}
	}
	b.ReportMetric(delta64*100, "code-lines-delta-64B-%")
}

// BenchmarkFigure1Map regenerates the per-phase active-code map.
func BenchmarkFigure1Map(b *testing.B) {
	var funcs int
	for i := 0; i < b.N; i++ {
		a := ldlp.WorkingSetReport(552, 32)
		funcs = len(a.CodeByPhaseFunc[1])
	}
	b.ReportMetric(float64(funcs), "pktintr-functions")
}

// BenchmarkFigure5Misses regenerates cache misses/message vs arrival rate
// at a representative high load (8000 msgs/s).
func BenchmarkFigure5Misses(b *testing.B) {
	var convI, ldlpI float64
	for i := 0; i < b.N; i++ {
		conv := sim.New(simCfg(core.Conventional, i)).Run(traffic.NewPoisson(8000, 552, int64(i)))
		ld := sim.New(simCfg(core.LDLP, i)).Run(traffic.NewPoisson(8000, 552, int64(i)))
		convI, ldlpI = conv.IMissesPerMsg, ld.IMissesPerMsg
	}
	b.ReportMetric(convI, "conv-I/msg")
	b.ReportMetric(ldlpI, "ldlp-I/msg")
}

func simCfg(d core.Discipline, seed int) sim.Config {
	cfg := sim.DefaultConfig(d)
	cfg.Duration = 0.1
	cfg.Seed = int64(seed + 1)
	return cfg
}

// BenchmarkSimPoissonLDLP runs the §4 Poisson workload under LDLP and
// reports the telemetry histogram quantiles alongside ns/op: batch
// sizes from the engine's dispatch loop and end-to-end message latency
// from the simulated clock. benchjson lifts these units into its
// telemetry summary, so the BENCH artifact tracks the distributions,
// not just means.
func BenchmarkSimPoissonLDLP(b *testing.B) {
	var res sim.Result
	for i := 0; i < b.N; i++ {
		res = sim.New(simCfg(core.LDLP, i)).Run(traffic.NewPoisson(8000, 552, int64(i+1)))
	}
	if res.BatchHist.Count == 0 || res.LatencyHist.Count == 0 {
		b.Fatal("sim result carries no telemetry histograms")
	}
	b.ReportMetric(res.BatchHist.Quantile(0.50), "p50-batch")
	b.ReportMetric(res.BatchHist.Quantile(0.99), "p99-batch")
	b.ReportMetric(res.LatencyHist.Quantile(0.50), "p50-latency-ns")
	b.ReportMetric(res.LatencyHist.Quantile(0.99), "p99-latency-ns")
}

// BenchmarkFigure6Latency regenerates latency vs arrival rate at the same
// representative load.
func BenchmarkFigure6Latency(b *testing.B) {
	var convLat, ldlpLat float64
	for i := 0; i < b.N; i++ {
		conv := sim.New(simCfg(core.Conventional, i)).Run(traffic.NewPoisson(6000, 552, int64(i)))
		ld := sim.New(simCfg(core.LDLP, i)).Run(traffic.NewPoisson(6000, 552, int64(i)))
		convLat, ldlpLat = conv.Latency.Mean(), ld.Latency.Mean()
	}
	b.ReportMetric(convLat*1e6, "conv-µs")
	b.ReportMetric(ldlpLat*1e6, "ldlp-µs")
}

// BenchmarkFigure7TraceDriven regenerates the trace-driven clock sweep at
// the 20 MHz point where the disciplines diverge sharply.
func BenchmarkFigure7TraceDriven(b *testing.B) {
	var convLat, ldlpLat float64
	for i := 0; i < b.N; i++ {
		// Self-similar burstiness needs a couple of simulated seconds to
		// express itself.
		cc := simCfg(core.Conventional, i)
		cc.Machine.ClockHz = 20e6
		cc.Duration = 2
		lc := simCfg(core.LDLP, i)
		lc.Machine.ClockHz = 20e6
		lc.Duration = 2
		src := func(seed int64) traffic.Source {
			return traffic.NewSelfSimilar(traffic.DefaultSelfSimilar(sim.Figure7Rate, seed))
		}
		conv := sim.New(cc).Run(src(int64(i)))
		ld := sim.New(lc).Run(src(int64(i)))
		convLat, ldlpLat = conv.Latency.Mean(), ld.Latency.Mean()
	}
	b.ReportMetric(convLat*1e3, "conv-ms@20MHz")
	b.ReportMetric(ldlpLat*1e3, "ldlp-ms@20MHz")
}

// BenchmarkFigure8Checksum regenerates the cold/warm checksum comparison.
func BenchmarkFigure8Checksum(b *testing.B) {
	var crossover int
	for i := 0; i < b.N; i++ {
		_ = checksum.Figure8(1000, 100)
		crossover = checksum.ColdCrossover(1200)
	}
	b.ReportMetric(float64(crossover), "cold-crossover-bytes")
}

// BenchmarkSignallingGoal evaluates the §1 goal (10 000 setup/teardown
// pairs per second, 100 µs processing latency).
func BenchmarkSignallingGoal(b *testing.B) {
	var proc float64
	offered := float64(signal.GoalPairsPerSec * signal.MessagesPerPair)
	for i := 0; i < b.N; i++ {
		cfg := signal.SimConfig(core.LDLP)
		cfg.Duration = 0.2
		res := sim.New(cfg).Run(traffic.NewPoisson(offered, signal.MessageBytes, int64(i+1)))
		if res.Processed > 0 {
			proc = res.BusyFrac * cfg.Duration / float64(res.Processed)
		}
	}
	b.ReportMetric(proc*1e6, "processing-µs/msg")
}

// BenchmarkAblationBatchCap sweeps the LDLP batch cap (why Figure 5
// flattens beyond 8500 msgs/s).
func BenchmarkAblationBatchCap(b *testing.B) {
	var tab *ldlp.Table
	for i := 0; i < b.N; i++ {
		tab = sim.BatchCapAblation(benchSweep(), 8000, []int{1, 4, 14})
	}
	b.ReportMetric(float64(len(tab.Points)), "rows")
}

// BenchmarkAblationQueueCost sweeps the enqueue/dequeue overhead (§3.2's
// ~40 instructions).
func BenchmarkAblationQueueCost(b *testing.B) {
	var tab *ldlp.Table
	for i := 0; i < b.N; i++ {
		tab = sim.QueueCostAblation(benchSweep(), 6000, []float64{0, 40, 200})
	}
	b.ReportMetric(float64(len(tab.Points)), "rows")
}

// BenchmarkAblationCacheSize sweeps primary cache size (§6's question:
// do 64 KB caches make LDLP irrelevant?).
func BenchmarkAblationCacheSize(b *testing.B) {
	var tab *ldlp.Table
	for i := 0; i < b.N; i++ {
		tab = sim.CacheSizeAblation(benchSweep(), 3000, []int{8192, 16384, 65536})
	}
	b.ReportMetric(float64(len(tab.Points)), "rows")
}

// BenchmarkAblationDiscipline compares all three disciplines of Figure 2.
func BenchmarkAblationDiscipline(b *testing.B) {
	var tab *ldlp.Table
	for i := 0; i < b.N; i++ {
		tab = sim.DisciplineAblation(benchSweep(), 4000)
	}
	b.ReportMetric(float64(len(tab.Points)), "rows")
}

// BenchmarkNetstackLDLPBurst measures the real Go netstack under a burst,
// LDLP-scheduled (absolute numbers reflect the Go runtime, not the
// paper's machine; the shape argument lives in the simulator).
func BenchmarkNetstackLDLPBurst(b *testing.B) {
	benchNetstackBurst(b, ldlp.LDLP)
}

// BenchmarkNetstackConventionalBurst is the conventional twin.
func BenchmarkNetstackConventionalBurst(b *testing.B) {
	benchNetstackBurst(b, ldlp.Conventional)
}

func benchNetstackBurst(b *testing.B, d ldlp.Discipline) {
	n := ldlp.NewNet()
	a := n.AddHost("a", ldlp.IPAddr{10, 7, 0, 1}, ldlp.DefaultHostOptions(d))
	hb := n.AddHost("b", ldlp.IPAddr{10, 7, 0, 2}, ldlp.DefaultHostOptions(d))
	sa, _ := a.UDPSocket(1)
	sb, _ := hb.UDPSocket(2)
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			sa.SendTo(hb.IP(), 2, payload)
		}
		n.RunUntilIdle()
		for {
			if _, ok := sb.Recv(); !ok {
				break
			}
		}
	}
}

// BenchmarkShardedLDLP measures the real concurrent sharded engine on a
// signalling-sized CPU-bound workload (three layers, each checksumming a
// 120-byte message) across shard counts. Throughput scales with shards
// on a multi-core machine; on a single core the sub-benchmarks stay
// comparable (the scheduling overhead, not the scaling, is visible).
// The deterministic scaling claim lives in BenchmarkShardedModelScaling,
// which does not depend on the host's core count.
func BenchmarkShardedLDLP(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := ldlp.NewShardedStack[int](
				ldlp.Options{Discipline: ldlp.LDLP, Shards: shards, BatchLimit: 14},
				func(m int) uint64 { return uint64(m % 64) },
				func(_ int, st *ldlp.Stack[int]) {
					payload := make([]byte, signal.MessageBytes)
					var layers [3]*ldlp.Layer[int]
					for i := 0; i < 3; i++ {
						i := i
						layers[i] = st.AddLayer(fmt.Sprintf("L%d", i), func(m int, emit ldlp.Emit[int]) {
							payload[m%len(payload)] = byte(m)
							_ = checksum.Simple(payload)
							if i < 2 {
								emit(layers[i+1], m)
							} else {
								emit(nil, m)
							}
						})
					}
					st.Link(layers[0], layers[1])
					st.Link(layers[1], layers[2])
				})
			defer s.Close()
			b.SetBytes(signal.MessageBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Inject(i); err != nil {
					b.Fatal(err)
				}
				if i%4096 == 4095 {
					s.Drain()
				}
			}
			s.Drain()
			b.StopTimer()
			if d := s.Stats().Delivered; d != int64(b.N) {
				b.Fatalf("delivered %d of %d", d, b.N)
			}
		})
	}
}

// BenchmarkShardedModelScaling reports the modeled 4-shard speedup at a
// load far past single-core LDLP saturation on the paper's machine —
// the deterministic form of the >1.5x acceptance criterion (each shard
// brings its own primary caches, so delivered throughput scales until
// offered load stops being the bottleneck; at this load it never does,
// giving ~4x).
func BenchmarkShardedModelScaling(b *testing.B) {
	cfg := sim.DefaultConfig(core.LDLP)
	cfg.Duration = 0.05
	var speedup float64
	for i := 0; i < b.N; i++ {
		one := sim.RunSharded(cfg, 1, 90000, 552, 1)
		four := sim.RunSharded(cfg, 4, 90000, 552, 1)
		speedup = four.Throughput / one.Throughput
	}
	b.ReportMetric(speedup, "modeled-4shard-speedup")
}

// BenchmarkShardedNetstackBurst is BenchmarkNetstackLDLPBurst with the
// receiving host's stack sharded four ways — the end-to-end surface of
// the concurrent engine.
func BenchmarkShardedNetstackBurst(b *testing.B) {
	n := ldlp.NewNet()
	a := n.AddHost("a", ldlp.IPAddr{10, 7, 0, 1}, ldlp.DefaultHostOptions(ldlp.LDLP))
	hb := n.AddHost("b", ldlp.IPAddr{10, 7, 0, 2}, ldlp.ShardedHostOptions(4))
	defer n.Close()
	sa, _ := a.UDPSocket(1)
	sb, _ := hb.UDPSocket(2)
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			sa.SendTo(hb.IP(), 2, payload)
		}
		n.RunUntilIdle()
		for {
			if _, ok := sb.Recv(); !ok {
				break
			}
		}
	}
}

// BenchmarkAblationPrefetch compares the disciplines with next-line
// instruction prefetch on and off (§1.2's latency-hiding aside).
func BenchmarkAblationPrefetch(b *testing.B) {
	var tab *ldlp.Table
	for i := 0; i < b.N; i++ {
		tab = sim.PrefetchAblation(benchSweep(), 3000)
	}
	b.ReportMetric(float64(len(tab.Points)), "rows")
}

// BenchmarkAblationValueAdded grows the stack with a crypto-sized layer
// (§6's forward look) and reports the conventional/LDLP latency ratio.
func BenchmarkAblationValueAdded(b *testing.B) {
	var tab *ldlp.Table
	for i := 0; i < b.N; i++ {
		tab = sim.ValueAddedAblation(benchSweep(), 2500, 12288)
	}
	b.ReportMetric(float64(len(tab.Points)), "rows")
}
