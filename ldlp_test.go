package ldlp_test

import (
	"strings"
	"testing"

	"ldlp"
)

func TestPublicStackAPI(t *testing.T) {
	s := ldlp.NewStack[string](ldlp.Options{Discipline: ldlp.LDLP, BatchLimit: 4})
	var out []string
	lower := s.AddLayer("lower", func(m string, emit ldlp.Emit[string]) {
		emit(s.Layers()[1], m+".l1")
	})
	upper := s.AddLayer("upper", func(m string, emit ldlp.Emit[string]) {
		emit(nil, m+".l2")
	})
	s.Link(lower, upper)
	s.SetSink(func(m string) { out = append(out, m) })
	for _, m := range []string{"a", "b", "c"} {
		if err := s.Inject(m); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(); n != 3 {
		t.Fatalf("delivered %d, want 3", n)
	}
	if strings.Join(out, ",") != "a.l1.l2,b.l1.l2,c.l1.l2" {
		t.Errorf("out = %v", out)
	}
	if s.Stats().QueueOps == 0 {
		t.Error("LDLP should count queue operations")
	}
}

func TestPublicWorkingSetReport(t *testing.T) {
	a := ldlp.WorkingSetReport(552, 32)
	if a.Code.Bytes < 25000 || a.Code.Bytes > 35000 {
		t.Errorf("code working set = %d, expect ≈30KB", a.Code.Bytes)
	}
	if len(a.PerLayer) != len(ldlp.PaperTable1()) {
		t.Errorf("layers = %d, want %d", len(a.PerLayer), len(ldlp.PaperTable1()))
	}
	if len(a.Phases) != 3 {
		t.Errorf("phases = %d, want 3", len(a.Phases))
	}
}

func TestPublicLineSizeSweep(t *testing.T) {
	sweeps := ldlp.LineSizeSweep(552, []int{16, 64})
	if len(sweeps) != 3 {
		t.Fatalf("classes = %d, want 3", len(sweeps))
	}
	for _, sw := range sweeps {
		if len(sw.Deltas) != 2 {
			t.Errorf("%s deltas = %d, want 2", sw.Class, len(sw.Deltas))
		}
	}
}

func TestPublicSimRun(t *testing.T) {
	cfg := ldlp.DefaultSimConfig(ldlp.LDLP)
	cfg.Duration = 0.1
	res := ldlp.RunSim(cfg, ldlp.NewPoisson(5000, 552, 1))
	if res.Processed == 0 {
		t.Fatal("simulation processed nothing")
	}
	if res.Latency.Mean() <= 0 {
		t.Error("latency should be positive")
	}
}

func TestPublicFigure8(t *testing.T) {
	tab := ldlp.Figure8(200, 100)
	if len(tab.Points) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Points))
	}
	s := tab.String()
	if !strings.Contains(s, "4.4BSD cold") {
		t.Errorf("table missing series: %s", s)
	}
}

func TestPublicChecksums(t *testing.T) {
	data := []byte{0x00, 0x01, 0xf2, 0x03}
	if ldlp.ChecksumSimple(data) != ldlp.ChecksumUnrolled(data) {
		t.Error("checksum variants disagree")
	}
}

func TestPublicNetworking(t *testing.T) {
	n := ldlp.NewNet()
	a := n.AddHost("a", ldlp.IPAddr{10, 9, 0, 1}, ldlp.DefaultHostOptions(ldlp.LDLP))
	b := n.AddHost("b", ldlp.IPAddr{10, 9, 0, 2}, ldlp.DefaultHostOptions(ldlp.LDLP))
	sa, err := a.UDPSocket(5)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.UDPSocket(6)
	if err != nil {
		t.Fatal(err)
	}
	sa.SendTo(b.IP(), 6, []byte("via public api"))
	n.RunUntilIdle()
	dg, ok := sb.Recv()
	if !ok || string(dg.Data) != "via public api" {
		t.Fatalf("got %v %q", ok, dg.Data)
	}
}

func TestPublicSignalling(t *testing.T) {
	n := ldlp.NewNet()
	hu := n.AddHost("u", ldlp.IPAddr{10, 9, 1, 1}, ldlp.DefaultHostOptions(ldlp.Conventional))
	hn := n.AddHost("n", ldlp.IPAddr{10, 9, 1, 2}, ldlp.DefaultHostOptions(ldlp.Conventional))
	au, err := ldlp.NewSignalAgent(hu, 1)
	if err != nil {
		t.Fatal(err)
	}
	an, err := ldlp.NewSignalAgent(hn, 2)
	if err != nil {
		t.Fatal(err)
	}
	call := au.Dial(hn.IP(), 2, 100)
	for i := 0; i < 6; i++ {
		n.RunUntilIdle()
		an.Poll()
		au.Poll()
	}
	if call.State() != ldlp.CallActive {
		t.Errorf("call state = %v, want active", call.State())
	}
}

func TestPublicLayoutBenefit(t *testing.T) {
	b := ldlp.LayoutBenefit(552, 32)
	if b.Reduction < 0.1 || b.Reduction > 0.4 {
		t.Errorf("layout reduction = %.3f, expect ≈0.2 (paper ≈0.25)", b.Reduction)
	}
	if b.After.Lines >= b.Before.Lines {
		t.Error("layout must shrink the working set")
	}
}

func TestPublicEstimateHurst(t *testing.T) {
	arr := ldlp.SynthesizeTrace(2000, 60, 3)
	h, err := ldlp.EstimateHurst(arr, 60, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.6 {
		t.Errorf("self-similar H = %.2f, want Bellcore-like (>0.6)", h)
	}
}

func TestPublicSSCOP(t *testing.T) {
	n := ldlp.NewNet()
	a := n.AddHost("a", ldlp.IPAddr{10, 12, 0, 1}, ldlp.DefaultHostOptions(ldlp.Conventional))
	b := n.AddHost("b", ldlp.IPAddr{10, 12, 0, 2}, ldlp.DefaultHostOptions(ldlp.Conventional))
	la, err := ldlp.NewSSCOPLink(a, 2906)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := ldlp.NewSSCOPLink(b, 2906)
	if err != nil {
		t.Fatal(err)
	}
	la.Connect(b.IP(), 2906)
	for i := 0; i < 6; i++ {
		n.RunUntilIdle()
		la.Poll()
		lb.Poll()
	}
	if !la.Established() {
		t.Fatal("sscop establishment failed via public API")
	}
	la.Send([]byte("assured"))
	for i := 0; i < 6; i++ {
		n.RunUntilIdle()
		la.Poll()
		lb.Poll()
	}
	if m, ok := lb.Recv(); !ok || string(m) != "assured" {
		t.Errorf("delivery failed: %q %v", m, ok)
	}
}
