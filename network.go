package ldlp

import (
	"ldlp/internal/dispatch"
	"ldlp/internal/faults"
	"ldlp/internal/layers"
	"ldlp/internal/netstack"
	"ldlp/internal/signal"
	"ldlp/internal/sscop"
)

// This file exposes the runnable network substrate: the in-memory
// TCP/IP-lite stack whose receive path runs under either discipline, and
// the Q.93B-flavoured signalling protocol built on it.

// IPAddr is an IPv4 address.
type IPAddr = layers.IPAddr

// MACAddr is an Ethernet address.
type MACAddr = layers.MACAddr

// Net is an in-memory broadcast segment with an explicit clock; hosts
// attached to it exchange real Ethernet/IPv4/TCP/UDP frames.
type Net = netstack.Net

// Host is one endpoint: NIC, receive-path protocol stack (conventional
// or LDLP), transport state and sockets.
type Host = netstack.Host

// HostOptions configures a host's receive path.
type HostOptions = netstack.Options

// TCPSock, TCPListener and UDPSock are the socket API.
type (
	TCPSock     = netstack.TCPSock
	TCPListener = netstack.TCPListener
	UDPSock     = netstack.UDPSock
	Datagram    = netstack.Datagram
)

// HostCounters exposes the per-host protocol counters (fast-path hits,
// delayed ACKs, retransmits, ...).
type HostCounters = netstack.Counters

// NewNet creates an empty network segment.
func NewNet() *Net { return netstack.NewNet() }

// DefaultHostOptions returns a host configuration for the discipline
// (LDLP batches up to 14 frames, buffer bounded at 500 — the paper's
// parameters).
func DefaultHostOptions(d Discipline) HostOptions { return netstack.DefaultOptions(d) }

// ShardedHostOptions returns an LDLP host configuration whose receive
// path runs on the sharded engine: shards worker goroutines, frames
// partitioned by TCP/UDP 4-tuple (fragments by IP ID) so per-connection
// ordering is preserved. Call Net.Close (or Host.Close) to stop the
// workers when done.
func ShardedHostOptions(shards int) HostOptions { return netstack.ShardedOptions(shards) }

// --- receive-side dispatch ---

// DispatchPolicy decides which receive shard owns each inbound frame:
// Key derives the flow key from the raw frame, Shard maps it to a
// worker, and Rebalance (called only at quiescent pump points) may move
// key ranges between shards. Set one on HostOptions.Dispatch; the zero
// value (nil) is the static flow hash. Policy instances carry per-host
// state — build a fresh one per host.
type DispatchPolicy = dispatch.Policy

// DispatchMigration is one bucket move returned by a policy's Rebalance:
// every flow whose key it Covers changes owner at the quiescent point.
type DispatchMigration = dispatch.Migration

// HostDispatchStats reports a host's dispatch activity: the active
// policy, per-shard frame totals and imbalance, and how many rebalances,
// bucket moves, flow migrations and reassembly adoptions have happened.
// Read it from Host.DispatchStats.
type HostDispatchStats = netstack.DispatchStats

// StaticDispatch returns the default policy: a pure flow hash, identical
// to leaving HostOptions.Dispatch nil. Useful as an explicit baseline.
func StaticDispatch() DispatchPolicy { return dispatch.Static{} }

// LoadAwareDispatch returns a policy that routes through an indirection
// table of DefaultBuckets hash buckets and, at every quiescent tick,
// greedily moves hot buckets off overloaded shards — bounded work per
// tick, per-flow FIFO preserved (migrations happen only while the
// workers are parked). shards must match HostOptions.RxShards.
func LoadAwareDispatch(shards int) DispatchPolicy {
	return dispatch.NewLoadAware(shards, dispatch.DefaultBuckets)
}

// RPCDispatchByXID returns the paper-motivated UDP RPC policy: requests
// to port from one host pair are spread across shards by their RPC
// transaction ID instead of sharing one flow bucket, so a single busy
// client/server pair can use the whole engine. Non-RPC traffic (and
// every fragment) falls back to the static flow hash.
func RPCDispatchByXID(port uint16) DispatchPolicy { return dispatch.NewRPCDispatch(port) }

// --- fault injection ---

// FaultConfig describes a composable set of link impairments: Bernoulli
// and Gilbert–Elliott bursty loss, timed partitions, duplication,
// reordering, delay with jitter, and single-bit corruption. Install it
// per-destination with Net.Impair (or Net.ImpairAll), or set
// HostOptions.Faults before AddHost; every decision comes from one
// seeded generator, so a run replays exactly.
type FaultConfig = faults.Config

// FaultWindow is an absolute simulated-time interval, used for
// partition scheduling.
type FaultWindow = faults.Window

// GilbertElliott parameterises two-state bursty loss.
type GilbertElliott = faults.GilbertElliott

// FaultInjector is an installed impairment instance; read its Stats for
// the per-impairment counters.
type FaultInjector = faults.Injector

// FaultStats are the per-impairment counters of one injector.
type FaultStats = faults.Stats

// FaultPresets returns the named impairment mixes used by the chaos
// suite and cmd/chaos; FaultPresetNames lists them in running order.
func FaultPresets() map[string]FaultConfig { return faults.Presets() }

// FaultPresetNames returns the preset names in canonical order.
func FaultPresetNames() []string { return faults.PresetNames() }

// --- signalling ---

// SignalAgent is a Q.93B-flavoured signalling endpoint.
type SignalAgent = signal.Agent

// SignalCall is one call association.
type SignalCall = signal.Call

// SignalMessage is a decoded signalling message.
type SignalMessage = signal.Message

// Signalling call states.
const (
	CallNull   = signal.StateNull
	CallActive = signal.StateActive
)

// NewSignalAgent binds a signalling agent to a host.
func NewSignalAgent(h *Host, address uint32) (*SignalAgent, error) {
	return signal.NewAgent(h, address)
}

// SignallingSimConfig models the signalling stack on the paper's machine
// for the §1 goal benchmark (10 000 setup/teardown pairs per second at
// 100 µs processing latency).
func SignallingSimConfig(d Discipline) SimConfig { return signal.SimConfig(d) }

// --- SSCOP (SAAL): the reliable link signalling actually rides on ---

// SSCOPLink is a Q.2110-style assured link endpoint (sequenced delivery,
// selective retransmission via POLL/STAT/USTAT) over the netstack.
type SSCOPLink = sscop.Link

// SSCOPState is the link state.
type SSCOPState = sscop.State

// NewSSCOPLink binds an SSCOP endpoint to a host port.
func NewSSCOPLink(h *Host, port uint16) (*SSCOPLink, error) {
	return sscop.New(h, port)
}
