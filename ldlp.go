// Package ldlp is a Go implementation of Locality-Driven Layer Processing
// (LDLP) from Trevor Blackwell's "Speeding up Protocols for Small
// Messages" (ACM SIGCOMM 1996), together with everything needed to
// reproduce the paper's measurements.
//
// The paper's observation: for small-message protocols (signalling, DNS,
// RPC, connection control), the per-message working set of *protocol
// code* dwarfs both the message and the primary caches of the machine, so
// the processor spends more time fetching instructions than moving data.
// Its technique: schedule layer processing like a blocked matrix
// multiply — run one layer over a batch of messages while its code is
// cache-resident, instead of running every layer over one message.
// Batches form adaptively from whatever has arrived, so light load keeps
// conventional latency while heavy load gains large throughput.
//
// The package exposes four surfaces:
//
//   - The LDLP engine (Stack, Layer, Discipline): a generic protocol-
//     stack scheduler usable over any message type.
//   - A runnable network substrate (Net, Host, TCP/UDP sockets, the
//     signalling protocol): an in-memory TCP/IP-lite stack whose receive
//     path runs under either discipline.
//   - The evaluation machinery (SimConfig, Figure5/6/7, ablations): the
//     paper's synthetic five-layer benchmark on a simulated machine.
//   - The measurement machinery (WorkingSetReport, Figure8): the §2
//     working-set study of the NetBSD TCP receive path and the §5.1
//     checksum experiment.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package ldlp

import (
	"ldlp/internal/core"
)

// Discipline selects how messages flow through a Stack: one message
// through all layers (Conventional), the same with fused data loops
// (ILP), or one layer over a batch of messages (LDLP).
type Discipline = core.Discipline

// The three disciplines of Figure 2.
const (
	Conventional = core.Conventional
	ILP          = core.ILP
	LDLP         = core.LDLP
)

// Options configures a Stack (discipline, batch bound, buffer limit).
type Options = core.Options

// Stats reports engine counters (queue operations, batch sizes, drops).
type Stats = core.Stats

// Stack is a protocol stack whose layers are scheduled according to a
// Discipline. Build with NewStack, add layers bottom-up with AddLayer,
// declare the topology with Link, feed messages with Inject, and (under
// LDLP) drain with Run.
type Stack[M any] = core.Stack[M]

// Layer is one protocol layer within a Stack.
type Layer[M any] = core.Layer[M]

// Handler processes one message at one layer, passing results upward via
// Emit (emit to nil delivers out of the stack top).
type Handler[M any] = core.Handler[M]

// Emit passes a message to an upper layer.
type Emit[M any] = core.Emit[M]

// Sink receives messages leaving the top of the stack.
type Sink[M any] = core.Sink[M]

// ErrStackFull is returned by Stack.Inject when the buffer bound is hit.
var ErrStackFull = core.ErrStackFull

// NewStack creates an empty stack with the given options.
func NewStack[M any](opts Options) *Stack[M] {
	return core.NewStack[M](opts)
}

// GraphSpec is a parsed protocol graph (see ParseGraph).
type GraphSpec = core.GraphSpec

// ParseGraph parses an x-kernel-style protocol graph description:
//
//	device > ether > ip
//	ip > tcp, udp
//	tcp > socket
//	udp > socket
//
// yielding a validated topology with a unique bottom (injection) layer.
func ParseGraph(spec string) (*GraphSpec, error) { return core.ParseGraph(spec) }

// BuildStack assembles a Stack from a graph spec and one handler per
// named layer, returning the layers by name for use inside handlers.
func BuildStack[M any](opts Options, spec string, handlers map[string]Handler[M]) (*Stack[M], map[string]*Layer[M], error) {
	return core.BuildStack(opts, spec, handlers)
}

// ShardedStack is the concurrent LDLP engine: Options.Shards worker
// goroutines, each running the single-threaded schedule over a private
// Stack, with injected messages partitioned by a caller-supplied flow
// hash (messages of one flow never migrate, so per-flow order is
// preserved without cross-shard synchronization). See DESIGN.md
// "Sharded engine" for the flow-hash contract and ordering guarantees.
type ShardedStack[M any] = core.ShardedStack[M]

// NewShardedStack builds a sharded engine. hash maps a message to its
// flow (equal hashes share a shard); build wires each shard's private
// Stack (called once per shard). Call Close when done to stop the
// workers.
func NewShardedStack[M any](opts Options, hash func(M) uint64, build func(shard int, s *Stack[M])) *ShardedStack[M] {
	return core.NewShardedStack(opts, hash, build)
}

// BuildShardedStack assembles a sharded engine from a graph spec, with
// one handler map per shard (handlers must emit into their own shard's
// layers, returned per shard).
func BuildShardedStack[M any](opts Options, spec string, hash func(M) uint64, handlers func(shard int) map[string]Handler[M]) (*ShardedStack[M], []map[string]*Layer[M], error) {
	return core.BuildShardedStack(opts, spec, hash, handlers)
}

// HashBytes folds b into a running FNV-1a flow hash seeded by HashSeed —
// a convenience for building flow hashes over header fields.
func HashBytes(h uint64, b []byte) uint64 { return core.HashBytes(h, b) }

// HashSeed is the initial value for HashBytes chains.
func HashSeed() uint64 { return core.HashSeed() }
