// Command sigbench evaluates the paper's §1 signalling goal — 10 000
// setup/teardown pairs per second with 100 µs processing latency per
// setup on a 100 MHz commodity CPU — against the modeled signalling
// stack under the conventional and LDLP disciplines, and sweeps the
// offered load around the goal.
//
// Usage:
//
//	sigbench [-duration 1] [-seeds 5]
package main

import (
	"flag"
	"fmt"

	"ldlp/internal/core"
	"ldlp/internal/signal"
	"ldlp/internal/sim"
	"ldlp/internal/stats"
	"ldlp/internal/traffic"
)

func main() {
	var (
		duration = flag.Float64("duration", 1, "simulated seconds per run")
		seeds    = flag.Int("seeds", 5, "placement seeds averaged per point")
		hops     = flag.Int("hops", 15, "switches on the cross-country path (§1 says 10-20)")
	)
	flag.Parse()

	goalMsgs := float64(signal.GoalPairsPerSec * signal.MessagesPerPair)
	fmt.Printf("goal: %d setup/teardown pairs/s (%v msgs/s) at %.0fµs processing latency, 100 MHz CPU\n\n",
		signal.GoalPairsPerSec, goalMsgs, signal.GoalLatency*1e6)

	tab := stats.NewTable("signalling load sweep", "pairs/s",
		"conv-proc-µs", "conv-total-µs", "conv-drop%", "ldlp-proc-µs", "ldlp-total-µs", "ldlp-drop%", "ldlp-batch")
	for _, pairs := range []float64{2000, 4000, 6000, 8000, 10000, 12000} {
		row := make(map[core.Discipline][4]float64)
		var batch float64
		for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
			var proc, total, drop, b stats.Running
			for s := 0; s < *seeds; s++ {
				cfg := signal.SimConfig(d)
				cfg.Duration = *duration
				cfg.Seed = int64(s + 1)
				res := sim.New(cfg).Run(traffic.NewPoisson(pairs*signal.MessagesPerPair, signal.MessageBytes, int64(s+100)))
				if res.Processed > 0 {
					proc.Add(res.BusyFrac * cfg.Duration / float64(res.Processed))
					total.Add(res.Latency.Mean())
				}
				if res.Offered > 0 {
					drop.Add(float64(res.Dropped) / float64(res.Offered))
				}
				b.Add(res.MeanBatch)
			}
			row[d] = [4]float64{proc.Mean() * 1e6, total.Mean() * 1e6, drop.Mean() * 100, b.Mean()}
			if d == core.LDLP {
				batch = b.Mean()
			}
		}
		c, l := row[core.Conventional], row[core.LDLP]
		tab.Add(pairs, c[0], c[1], c[2], l[0], l[1], l[2], batch)
	}
	fmt.Println(tab)

	// Verdict at the goal point.
	cfg := signal.SimConfig(core.LDLP)
	cfg.Duration = *duration
	res := sim.New(cfg).Run(traffic.NewPoisson(goalMsgs, signal.MessageBytes, 1))
	proc := res.BusyFrac * cfg.Duration / float64(res.Processed)
	verdict := "MET"
	if proc > signal.GoalLatency || res.Dropped > 0 {
		verdict = "NOT MET"
	}
	fmt.Printf("verdict at goal load under LDLP: %s (processing %.1fµs/msg, %d drops, mean total latency %.0fµs)\n",
		verdict, proc*1e6, res.Dropped, res.Latency.Mean()*1e6)

	// §1's cross-country scenario: the SETUP traverses `hops` transit
	// switches; each adds its per-message total latency (queueing
	// included) at the goal's per-switch load.
	fmt.Printf("\ncross-country setup across %d switches (per-switch latency x hops):\n", *hops)
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		cfg := signal.SimConfig(d)
		cfg.Duration = *duration
		r := sim.New(cfg).Run(traffic.NewPoisson(goalMsgs, signal.MessageBytes, 3))
		perHop := r.Latency.Mean()
		fmt.Printf("  %-14s %8.2f ms end-to-end (%.0fµs per switch)\n",
			d, perHop*float64(*hops)*1e3, perHop*1e6)
	}
	fmt.Println("  (the paper: 5-20ms per message in contemporary implementations\n   could add a large fraction of a second across a large network)")
}
