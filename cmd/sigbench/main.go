// Command sigbench evaluates the paper's §1 signalling goal — 10 000
// setup/teardown pairs per second with 100 µs processing latency per
// setup on a 100 MHz commodity CPU — against the modeled signalling
// stack under the conventional and LDLP disciplines, and sweeps the
// offered load around the goal.
//
// Usage:
//
//	sigbench [-duration 1] [-seeds 5] [-shards 4] [-cpuprofile f] [-memprofile f]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ldlp/internal/checksum"
	"ldlp/internal/core"
	"ldlp/internal/signal"
	"ldlp/internal/sim"
	"ldlp/internal/stats"
	"ldlp/internal/traffic"
)

func main() {
	var (
		duration = flag.Float64("duration", 1, "simulated seconds per run")
		seeds    = flag.Int("seeds", 5, "placement seeds averaged per point")
		hops     = flag.Int("hops", 15, "switches on the cross-country path (§1 says 10-20)")
		shards   = flag.Int("shards", 4, "worker count for the sharded-engine section")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *shards < 1 {
		*shards = 1
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			log.Fatalf("sigbench: -cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("sigbench: start CPU profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				log.Fatalf("sigbench: -memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("sigbench: write heap profile: %v", err)
			}
		}()
	}

	goalMsgs := float64(signal.GoalPairsPerSec * signal.MessagesPerPair)
	fmt.Printf("goal: %d setup/teardown pairs/s (%v msgs/s) at %.0fµs processing latency, 100 MHz CPU\n\n",
		signal.GoalPairsPerSec, goalMsgs, signal.GoalLatency*1e6)

	tab := stats.NewTable("signalling load sweep", "pairs/s",
		"conv-proc-µs", "conv-total-µs", "conv-drop%", "ldlp-proc-µs", "ldlp-total-µs", "ldlp-drop%", "ldlp-batch")
	for _, pairs := range []float64{2000, 4000, 6000, 8000, 10000, 12000} {
		row := make(map[core.Discipline][4]float64)
		var batch float64
		for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
			var proc, total, drop, b stats.Running
			for s := 0; s < *seeds; s++ {
				cfg := signal.SimConfig(d)
				cfg.Duration = *duration
				cfg.Seed = int64(s + 1)
				res := sim.New(cfg).Run(traffic.NewPoisson(pairs*signal.MessagesPerPair, signal.MessageBytes, int64(s+100)))
				if res.Processed > 0 {
					proc.Add(res.BusyFrac * cfg.Duration / float64(res.Processed))
					total.Add(res.Latency.Mean())
				}
				if res.Offered > 0 {
					drop.Add(float64(res.Dropped) / float64(res.Offered))
				}
				b.Add(res.MeanBatch)
			}
			row[d] = [4]float64{proc.Mean() * 1e6, total.Mean() * 1e6, drop.Mean() * 100, b.Mean()}
			if d == core.LDLP {
				batch = b.Mean()
			}
		}
		c, l := row[core.Conventional], row[core.LDLP]
		tab.Add(pairs, c[0], c[1], c[2], l[0], l[1], l[2], batch)
	}
	fmt.Println(tab)

	// Verdict at the goal point.
	cfg := signal.SimConfig(core.LDLP)
	cfg.Duration = *duration
	res := sim.New(cfg).Run(traffic.NewPoisson(goalMsgs, signal.MessageBytes, 1))
	proc := res.BusyFrac * cfg.Duration / float64(res.Processed)
	verdict := "MET"
	if proc > signal.GoalLatency || res.Dropped > 0 {
		verdict = "NOT MET"
	}
	fmt.Printf("verdict at goal load under LDLP: %s (processing %.1fµs/msg, %d drops, mean total latency %.0fµs)\n",
		verdict, proc*1e6, res.Dropped, res.Latency.Mean()*1e6)

	// §1's cross-country scenario: the SETUP traverses `hops` transit
	// switches; each adds its per-message total latency (queueing
	// included) at the goal's per-switch load.
	fmt.Printf("\ncross-country setup across %d switches (per-switch latency x hops):\n", *hops)
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		cfg := signal.SimConfig(d)
		cfg.Duration = *duration
		r := sim.New(cfg).Run(traffic.NewPoisson(goalMsgs, signal.MessageBytes, 3))
		perHop := r.Latency.Mean()
		fmt.Printf("  %-14s %8.2f ms end-to-end (%.0fµs per switch)\n",
			d, perHop*float64(*hops)*1e3, perHop*1e6)
	}
	fmt.Println("  (the paper: 5-20ms per message in contemporary implementations\n   could add a large fraction of a second across a large network)")

	// Beyond the paper: a switch CPU can be sharded across cores by call
	// (flow hash), each core running the LDLP schedule over its own
	// caches. Modeled: N independent copies of the signalling stack, each
	// fed 1/N of an over-saturating Poisson load.
	overload := 6 * goalMsgs
	fmt.Printf("\nsharded LDLP at %.0f msgs/s offered (modeled %d-core switch):\n", overload, *shards)
	counts := []int{1, 2, *shards}
	switch {
	case *shards <= 1:
		counts = []int{1}
	case *shards == 2:
		counts = []int{1, 2}
	}
	stab := sim.ShardScaling(signal.SimConfig(core.LDLP),
		sim.SweepOptions{Runs: *seeds, Duration: *duration, MessageSize: signal.MessageBytes, BaseSeed: 1},
		overload, counts)
	fmt.Println(stab)

	// And the real concurrent engine, wall clock (scales with physical
	// cores; on a single-CPU host the shard counts stay comparable).
	fmt.Printf("real sharded engine wall-clock (GOMAXPROCS=%d):\n", runtime.GOMAXPROCS(0))
	for _, n := range counts {
		fmt.Printf("  shards=%d: %9.0f msgs/s\n", n, measureSharded(n))
	}
}

// measureSharded pushes signalling-sized messages through a real
// ShardedStack — three layers, each checksumming the 120-byte message —
// and reports delivered messages per wall-clock second.
func measureSharded(shards int) float64 {
	const msgs = 200_000
	s := core.NewShardedStack(
		core.Options{Discipline: core.LDLP, Shards: shards, BatchLimit: 14},
		func(m int) uint64 { return uint64(m % 64) },
		func(_ int, st *core.Stack[int]) {
			payload := make([]byte, signal.MessageBytes)
			var layers [3]*core.Layer[int]
			for i := 0; i < 3; i++ {
				i := i
				layers[i] = st.AddLayer(fmt.Sprintf("L%d", i), func(m int, emit core.Emit[int]) {
					payload[m%len(payload)] = byte(m)
					_ = checksum.Simple(payload)
					if i < 2 {
						emit(layers[i+1], m)
					} else {
						emit(nil, m)
					}
				})
			}
			st.Link(layers[0], layers[1])
			st.Link(layers[1], layers[2])
		})
	defer s.Close()
	start := time.Now()
	for i := 0; i < msgs; i++ {
		if s.Inject(i) != nil {
			s.Drain()
		}
		if i%4096 == 4095 {
			s.Drain()
		}
	}
	s.Drain()
	return msgs / time.Since(start).Seconds()
}
