// Command ldlptrace runs a Poisson UDP workload through the in-memory
// netstack and emits the server's telemetry flight recorder as a Chrome
// trace_event file, viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The per-shard tracks show the LDLP layer spans and
// batch-size counters; run both loads to see the paper's effect — a
// lightly loaded receiver batches ~1 message per layer pass, a heavily
// loaded one amortizes each layer over BatchLimit-sized batches.
//
// Usage:
//
//	ldlptrace [-out trace.json] [-load light|heavy|both] [-shards N]
//	          [-rate msgs/s] [-duration seconds] [-seed N] [-ring N]
//	          [-check] [-format chrome|snapshot]
//
// Everything is driven by the Net's simulated clock, so a given seed
// reproduces the trace byte-for-byte. -check re-reads the emitted file
// and validates it: well-formed JSON, non-empty, and per-track
// non-decreasing timestamps. Exit status is non-zero on any failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
	"ldlp/internal/telemetry"
	"ldlp/internal/traffic"
)

var (
	ipClient = layers.IPAddr{10, 9, 0, 1}
	ipServer = layers.IPAddr{10, 9, 0, 2}
)

func main() {
	var (
		out      = flag.String("out", "trace.json", "output file")
		load     = flag.String("load", "both", "workload: light, heavy, or both")
		shards   = flag.Int("shards", 1, "receive shards on the server host")
		rate     = flag.Float64("rate", 5000, "mean Poisson arrival rate (msgs/s)")
		duration = flag.Float64("duration", 0.05, "simulated seconds per workload")
		seed     = flag.Int64("seed", 1, "Poisson seed (traces replay exactly per seed)")
		ring     = flag.Int("ring", 1<<16, "flight-recorder ring capacity per tracer")
		check    = flag.Bool("check", false, "re-read and validate the emitted trace")
		format   = flag.String("format", "chrome", "output format: chrome (trace_event) or snapshot (raw JSON)")
	)
	flag.Parse()

	type workload struct {
		name string
		pid  int
		// quantum is the pump interval: arrivals accumulate between
		// pumps, so rate*quantum sets the offered batch size.
		quantum float64
	}
	var loads []workload
	light := workload{name: "light", pid: 1, quantum: 0.5 / *rate}
	heavy := workload{name: "heavy", pid: 2, quantum: 64 / *rate}
	switch *load {
	case "light":
		loads = []workload{light}
	case "heavy":
		loads = []workload{heavy}
	case "both":
		loads = []workload{light, heavy}
	default:
		fmt.Fprintf(os.Stderr, "ldlptrace: unknown load %q\n", *load)
		os.Exit(2)
	}

	var events []telemetry.TraceEvent
	var snaps []telemetry.Snapshot
	for _, w := range loads {
		snap, err := run(w.pid, *shards, *rate, *duration, *seed, *ring, w.quantum)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ldlptrace: %s: %v\n", w.name, err)
			os.Exit(1)
		}
		snap.Domain = "server-" + w.name
		bh, _ := snap.Hist("ldlp-batch")
		s := bh.Summary()
		fmt.Printf("%-5s load: %6d msgs in %d batches, batch p50 %.1f p99 %.1f max %d\n",
			w.name, bh.Sum, s.Count, s.P50, s.P99, s.Max)
		events = append(events, snap.ChromeTrace(w.pid)...)
		snaps = append(snaps, snap)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlptrace: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "chrome":
		err = telemetry.WriteChromeTrace(f, events)
	case "snapshot":
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(snaps)
	default:
		fmt.Fprintf(os.Stderr, "ldlptrace: unknown format %q\n", *format)
		os.Exit(2)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlptrace: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d events)\n", *out, len(events))

	if *check && *format == "chrome" {
		if err := validate(*out); err != nil {
			fmt.Fprintf(os.Stderr, "ldlptrace: trace validation failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("trace validated: well-formed, per-track timestamps monotonic")
	}
}

// run drives one workload and returns the server's telemetry snapshot.
func run(pid, shards int, rate, duration float64, seed int64, ring int, quantum float64) (telemetry.Snapshot, error) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	defer n.Close()

	opts := netstack.DefaultOptions(core.LDLP)
	if shards > 1 {
		opts.RxShards = shards
	}
	opts.TelemetryRing = ring
	server := n.AddHost("server", ipServer, opts)
	copts := netstack.DefaultOptions(core.LDLP)
	copts.TelemetryRing = ring
	client := n.AddHost("client", ipClient, copts)

	ssock, err := server.UDPSocket(7)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	csock, err := client.UDPSocket(9)
	if err != nil {
		return telemetry.Snapshot{}, err
	}

	// §4 workload: fixed-size small messages from a Poisson source. The
	// Net pumps every quantum; arrivals in between land in the same
	// device-layer batch, so the quantum sets the offered load per pump.
	src := traffic.NewPoisson(rate, 552, seed)
	payload := make([]byte, 552-layers.UDPLen-layers.IPv4MinLen-layers.EthernetLen)
	next, _ := src.Next()
	received := 0
	for t := 0.0; t < duration; t += quantum {
		for next.Time < t+quantum {
			csock.SendTo(ipServer, 7, payload)
			next, _ = src.Next()
		}
		n.Tick(quantum)
		for {
			if _, ok := ssock.Recv(); !ok {
				break
			}
			received++
		}
	}
	n.RunUntilIdle()
	if received == 0 {
		return telemetry.Snapshot{}, fmt.Errorf("no datagrams delivered (rate %v, duration %v)", rate, duration)
	}
	snap := server.Telemetry().Snapshot()
	for _, tr := range snap.Tracers {
		if tr.Lost > 0 {
			fmt.Fprintf(os.Stderr, "ldlptrace: warning: tracer %s overwrote %d events (raise -ring)\n",
				tr.Label, tr.Lost)
		}
	}
	return snap, nil
}

// validate re-parses the emitted Chrome trace and checks the structural
// invariants Perfetto needs: a JSON array of events, at least one
// non-metadata event, and non-decreasing timestamps within every
// (pid, tid) track.
func validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var evs []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	}
	if err := json.Unmarshal(raw, &evs); err != nil {
		return fmt.Errorf("not a JSON event array: %w", err)
	}
	type track struct{ pid, tid int }
	last := map[track]float64{}
	payload := 0
	for i, ev := range evs {
		switch ev.Ph {
		case "M":
			continue
		case "B", "E", "I", "C":
			payload++
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		k := track{ev.PID, ev.TID}
		if prev, ok := last[k]; ok && ev.TS < prev {
			return fmt.Errorf("event %d (%s): ts %v before %v on pid %d tid %d",
				i, ev.Name, ev.TS, prev, ev.PID, ev.TID)
		}
		last[k] = ev.TS
	}
	if payload == 0 {
		return fmt.Errorf("trace has no events beyond metadata")
	}
	return nil
}
