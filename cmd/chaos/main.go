// Command chaos drives the in-memory netstack under deterministic link
// impairment and verifies the end-to-end invariants the chaos test
// suite asserts: the TCP stream arrives byte-identical, delivered
// datagrams are byte-identical to sent ones, every injected fault is
// visible in an impairment or drop counter, and no mbuf leaks. It exits
// non-zero on any violation, so it doubles as a CI smoke.
//
// Usage:
//
//	chaos [-mix all|bernoulli|bursty|...|every] [-discipline ldlp|conventional]
//	      [-shards N] [-seed N] [-rounds N] [-sweep] [-v]
//
// -mix every (the default) runs each preset in sequence. -sweep also
// reruns the Figure-6-style latency comparison under swept link loss.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"ldlp/internal/core"
	"ldlp/internal/faults"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
	"ldlp/internal/sim"
)

var (
	ipA = layers.IPAddr{10, 9, 0, 1}
	ipB = layers.IPAddr{10, 9, 0, 2}
)

func main() {
	var (
		mix     = flag.String("mix", "every", "impairment preset, or 'every'")
		disc    = flag.String("discipline", "ldlp", "receive discipline: ldlp or conventional")
		shards  = flag.Int("shards", 1, "receive shards on the server host (LDLP only)")
		seed    = flag.Int64("seed", 0xC0FFEE, "impairment seed (runs replay exactly per seed)")
		rounds  = flag.Int("rounds", 40, "traffic rounds per scenario")
		sweep   = flag.Bool("sweep", false, "also rerun the latency figure under swept link loss")
		verbose = flag.Bool("v", false, "print per-impairment and per-host counters")
	)
	flag.Parse()

	var d core.Discipline
	switch *disc {
	case "ldlp":
		d = core.LDLP
	case "conventional":
		d = core.Conventional
	default:
		fmt.Fprintf(os.Stderr, "chaos: unknown discipline %q\n", *disc)
		os.Exit(2)
	}

	presets := faults.Presets()
	names := []string{*mix}
	if *mix == "every" {
		names = faults.PresetNames()
	} else if _, ok := presets[*mix]; !ok {
		fmt.Fprintf(os.Stderr, "chaos: unknown mix %q (have %v)\n", *mix, faults.PresetNames())
		os.Exit(2)
	}

	failed := false
	for _, name := range names {
		errs := runScenario(presets[name], d, *shards, *seed, *rounds, *verbose, name)
		if len(errs) == 0 {
			fmt.Printf("ok   %-12s %s shards=%d\n", name, *disc, *shards)
			continue
		}
		failed = true
		fmt.Printf("FAIL %-12s %s shards=%d\n", name, *disc, *shards)
		for _, err := range errs {
			fmt.Printf("     %v\n", err)
		}
	}

	if *sweep {
		opts := sim.QuickSweep()
		fmt.Println()
		fmt.Println(sim.FigureLoss(opts, 3000, nil))
	}
	if failed {
		os.Exit(1)
	}
}

// runScenario drives TCP, small-UDP and fragmented-UDP traffic between
// two impaired hosts and returns every invariant violation found.
func runScenario(cfg faults.Config, d core.Discipline, shards int, seed int64, rounds int, verbose bool, name string) []error {
	var errs []error
	fail := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }

	mbuf.ResetPool()
	n := netstack.NewNet()
	mkOpts := func(sh int) netstack.Options {
		o := netstack.DefaultOptions(d)
		o.MTU = 600
		o.RxShards = sh
		return o
	}
	a := n.AddHost("client", ipA, mkOpts(1))
	b := n.AddHost("server", ipB, mkOpts(shards))
	defer n.Close()
	injs := n.ImpairAll(cfg, seed)

	l, err := b.ListenTCP(80)
	if err != nil {
		return []error{err}
	}
	cli := a.DialTCP(ipB, 80)
	var srv *netstack.TCPSock
	for i := 0; i < 400 && srv == nil; i++ {
		n.Tick(0.05)
		srv = l.Accept()
	}
	if srv == nil {
		return []error{fmt.Errorf("TCP handshake never completed (client %s, err %v)", cli.State(), cli.Err())}
	}

	utx, _ := a.UDPSocket(1000)
	urx, _ := b.UDPSocket(2000)
	bigTx, _ := a.UDPSocket(3000)
	bigRx, _ := b.UDPSocket(3100)
	const bigSize = 2500

	sentSmall := make(map[string]bool)
	sentBig := make(map[byte]bool)
	var gotSmall []string
	var gotBig [][]byte
	var want, got bytes.Buffer
	rbuf := make([]byte, 8192)
	drain := func() {
		for nr := srv.Recv(rbuf); nr > 0; nr = srv.Recv(rbuf) {
			got.Write(rbuf[:nr])
		}
		for {
			dg, ok := urx.Recv()
			if !ok {
				break
			}
			gotSmall = append(gotSmall, string(dg.Data))
		}
		for {
			dg, ok := bigRx.Recv()
			if !ok {
				break
			}
			gotBig = append(gotBig, dg.Data)
		}
	}

	for r := 0; r < rounds; r++ {
		chunk := make([]byte, 300)
		for i := range chunk {
			chunk[i] = byte(r*31 + i)
		}
		want.Write(chunk)
		if err := cli.Send(chunk); err != nil {
			fail("round %d: TCP send: %v", r, err)
			return errs
		}
		msg := fmt.Sprintf("dgram-%04d", r)
		sentSmall[msg] = true
		utx.SendTo(ipB, 2000, []byte(msg))
		if r%8 == 0 {
			v := byte(0x40 + r/8)
			sentBig[v] = true
			bigTx.SendTo(ipB, 3100, bytes.Repeat([]byte{v}, bigSize))
		}
		n.Tick(0.05)
		drain()
	}
	for i := 0; i < 600 && got.Len() < want.Len(); i++ {
		if cli.Err() != nil || srv.Err() != nil {
			fail("TCP connection died: cli=%v srv=%v", cli.Err(), srv.Err())
			return errs
		}
		n.Tick(0.25)
		drain()
	}
	n.Tick(31) // expire stale partial datagrams, flush delayed frames
	for i := 0; i < 4; i++ {
		n.Tick(0.5)
	}
	drain()

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		fail("TCP stream mismatch: got %d bytes, want %d", got.Len(), want.Len())
	}
	for _, m := range gotSmall {
		if !sentSmall[m] {
			fail("datagram %q arrived but was never sent intact", m)
		}
	}
	for _, dg := range gotBig {
		if len(dg) != bigSize || !sentBig[dg[0]] {
			fail("reassembled datagram wrong (%d bytes)", len(dg))
			continue
		}
		for i, x := range dg {
			if x != dg[0] {
				fail("reassembled datagram corrupt at byte %d", i)
				break
			}
		}
	}
	if h := n.HeldFrames(); h != 0 {
		fail("%d frames still held by delay impairment", h)
	}
	hosts := map[layers.IPAddr]*netstack.Host{ipA: a, ipB: b}
	// The per-injector loop below is the frame ledger. It is vacuous —
	// and used to pass silently — when an impaired preset registered no
	// injectors or an injector saw zero frames; both now fail the run.
	if cfg.Enabled() && len(injs) == 0 {
		fail("preset %s impairs traffic but registered no injectors; frame ledger unchecked", name)
	}
	if a.Counters.FramesOut == 0 || b.Counters.FramesIn == 0 {
		fail("scenario moved no frames (client out=%d, server in=%d); ledger and delivery checks are vacuous",
			a.Counters.FramesOut, b.Counters.FramesIn)
	}
	for ip, inj := range injs {
		s := inj.Stats()
		if s.Frames == 0 {
			fail("%v: injector saw zero frames; its ledger check is vacuous", ip)
		}
		if s.Dropped != s.LossDrops+s.BurstDrops+s.PartitionDrops {
			fail("%v: drop attribution broken: %+v", ip, s)
		}
		if in := hosts[ip].Counters.FramesIn; in != s.Frames-s.Dropped+s.Duplicated {
			fail("%v: FramesIn=%d, want %d-%d+%d", ip, in, s.Frames, s.Dropped, s.Duplicated)
		}
		if verbose {
			fmt.Printf("  %-12s %v: %+v\n", name, ip, s)
		}
	}
	// Telemetry liveness: the flight recorder must have watched the same
	// run the counters did. Under LDLP every delivered frame passes
	// through a batch observation, so a server that moved frames with an
	// empty ldlp-batch histogram means the instrumentation fell off the
	// receive path (another vacuous-check hazard: traces would read as
	// "no batches" instead of failing).
	if d == core.LDLP && b.Counters.FramesIn > 0 {
		snap := b.Telemetry().Snapshot()
		if bh, ok := snap.Hist("ldlp-batch"); !ok || bh.Count == 0 {
			fail("server moved %d frames but recorded no ldlp-batch observations; telemetry is dead", b.Counters.FramesIn)
		}
	}
	if verbose {
		for _, h := range []*netstack.Host{a, b} {
			c := h.Counters
			fmt.Printf("  %-12s %s: in=%d out=%d badEther=%d badIP=%d badTCP=%d badUDP=%d rexmt=%d timeouts=%d reasmTO=%d\n",
				name, h.Name(), c.FramesIn, c.FramesOut, c.BadEther, c.BadIP, c.BadTCP, c.BadUDP,
				c.Retransmits, c.TimeoutDrops, c.ReassemblyTimeouts)
			for _, e := range h.Telemetry().Snapshot().Hists {
				s := e.Hist.Summary()
				if s.Count == 0 {
					continue
				}
				fmt.Printf("  %-12s %s: hist %-10s count=%d mean=%.1f p50=%.1f p99=%.1f max=%d\n",
					name, h.Name(), e.Name, s.Count, s.Mean, s.P50, s.P99, s.Max)
			}
		}
	}
	if s := mbuf.PoolStats(); s.InUse != 0 {
		fail("mbuf leak: %+v", s)
	}
	return errs
}
