// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON summary, for CI to archive and diff across
// commits. Input lines flow through to stdout unchanged so the tool can
// sit in the middle of a pipeline without hiding the run.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Metrics beyond the standard three
// (ns/op, B/op, allocs/op) land in Extra keyed by their unit, except
// the telemetry histogram quantiles, which are lifted into Telemetry
// so CI diffs can key on stable field names.
//
// When the same benchmark appears more than once on stdin (a sampled
// run: `go test -count=N`), the samples are merged into one Result:
// ns/op, iterations, telemetry and extra metrics come from the
// fastest sample — min-of-N is the standard noise filter for
// wall-clock benchmarks on shared CI boxes — while B/op and allocs/op
// take the maximum, because an allocation regression on any sample is
// real. Samples records how many lines were folded in.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Samples    int64              `json:"samples,omitempty"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Telemetry  *TelemetrySummary  `json:"telemetry,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// TelemetrySummary holds the histogram quantiles benchmarks report via
// b.ReportMetric from the telemetry package's snapshots: LDLP batch
// sizes, end-to-end message latency, and the flow-table scale metrics
// (destination-cache hit rate, p99 open-addressing probe depth).
type TelemetrySummary struct {
	BatchP50         *float64 `json:"batch_p50,omitempty"`
	BatchP99         *float64 `json:"batch_p99,omitempty"`
	LatencyP50NS     *float64 `json:"latency_p50_ns,omitempty"`
	LatencyP99NS     *float64 `json:"latency_p99_ns,omitempty"`
	FlowCacheHitRate *float64 `json:"flowcache_hit_rate,omitempty"`
	ProbeDepthP99    *float64 `json:"probe_depth_p99,omitempty"`
	ShardImbalance   *float64 `json:"shard_imbalance,omitempty"`
	WaitP99Slots     *float64 `json:"wait_p99_slots,omitempty"`
	// Fleet tier (BenchmarkFleetGossip): gossip datagrams per node-step,
	// the LDLP fleet's p99 send-to-service delivery latency, and the
	// conventional/LDLP p99 ratio (the fleet-scale headline).
	GossipRoundsPerStep *float64 `json:"gossip_rounds_per_step,omitempty"`
	DeliveryP99NS       *float64 `json:"delivery_p99_ns,omitempty"`
	LDLPLatencyRatio    *float64 `json:"ldlp_latency_ratio,omitempty"`
}

// telemetryUnits maps a ReportMetric unit to the TelemetrySummary
// field it fills.
var telemetryUnits = map[string]func(*TelemetrySummary, float64){
	"p50-batch":          func(t *TelemetrySummary, v float64) { t.BatchP50 = &v },
	"p99-batch":          func(t *TelemetrySummary, v float64) { t.BatchP99 = &v },
	"p50-latency-ns":     func(t *TelemetrySummary, v float64) { t.LatencyP50NS = &v },
	"p99-latency-ns":     func(t *TelemetrySummary, v float64) { t.LatencyP99NS = &v },
	"flowcache-hit-rate": func(t *TelemetrySummary, v float64) { t.FlowCacheHitRate = &v },
	"p99-probe-depth":    func(t *TelemetrySummary, v float64) { t.ProbeDepthP99 = &v },
	"shard-imbalance":    func(t *TelemetrySummary, v float64) { t.ShardImbalance = &v },
	"p99-wait-slots":     func(t *TelemetrySummary, v float64) { t.WaitP99Slots = &v },
	"rounds-per-step":    func(t *TelemetrySummary, v float64) { t.GossipRoundsPerStep = &v },
	"delivery-p99-ns":    func(t *TelemetrySummary, v float64) { t.DeliveryP99NS = &v },
	"ldlp-latency-ratio": func(t *TelemetrySummary, v float64) { t.LDLPLatencyRatio = &v },
}

// Summary is the emitted document.
type Summary struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON summary to this file (default stdout only)")
	flag.Parse()

	var sum Summary
	seen := map[string]int{} // benchmark name -> index in sum.Benchmarks
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			sum.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			sum.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			sum.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if r, ok := parseBenchLine(line); ok {
			if i, dup := seen[r.Name]; dup {
				sum.Benchmarks[i] = merge(sum.Benchmarks[i], r)
			} else {
				seen[r.Name] = len(sum.Benchmarks)
				r.Samples = 1
				sum.Benchmarks = append(sum.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("benchjson: read stdin: %v", err)
	}

	doc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: marshal: %v", err)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(sum.Benchmarks), *out)
}

// merge folds a repeated sample of the same benchmark into the
// accumulated Result: min-of-N for the timing-derived fields (ns/op
// wins as a unit, and the winning sample's iterations, telemetry and
// extra metrics ride along so the record stays internally consistent),
// max for the allocation fields.
func merge(acc, next Result) Result {
	samples := acc.Samples + 1
	if next.NsPerOp < acc.NsPerOp {
		acc.Name, acc.Iterations, acc.NsPerOp = next.Name, next.Iterations, next.NsPerOp
		acc.Telemetry, acc.Extra = next.Telemetry, next.Extra
	}
	acc.BytesPerOp = maxPtr(acc.BytesPerOp, next.BytesPerOp)
	acc.AllocsOp = maxPtr(acc.AllocsOp, next.AllocsOp)
	acc.Samples = samples
	return acc
}

func maxPtr(a, b *float64) *float64 {
	if a == nil {
		return b
	}
	if b != nil && *b > *a {
		return b
	}
	return a
}

// parseBenchLine parses one testing.B output line:
//
//	BenchmarkName-8   10000   359.2 ns/op   0 B/op   0 allocs/op
func parseBenchLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsOp = &a
		default:
			if set, ok := telemetryUnits[unit]; ok {
				if r.Telemetry == nil {
					r.Telemetry = &TelemetrySummary{}
				}
				set(r.Telemetry, v)
				continue
			}
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}
