package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseBenchLineStandardMetrics(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkHotPathInject-8   1000000   359.2 ns/op   0 B/op   0 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkHotPathInject-8" || r.Iterations != 1000000 || r.NsPerOp != 359.2 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsOp == nil || *r.AllocsOp != 0 {
		t.Errorf("memory metrics not parsed: %+v", r)
	}
	if r.Telemetry != nil || r.Extra != nil {
		t.Errorf("unexpected extra metrics: %+v", r)
	}
}

func TestParseBenchLineLiftsTelemetryQuantiles(t *testing.T) {
	line := "BenchmarkSimPoissonLDLP-8  50  21000 ns/op  14 p50-batch  14 p99-batch  52000 p50-latency-ns  91000 p99-latency-ns  3 widgets/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line did not parse")
	}
	tel := r.Telemetry
	if tel == nil {
		t.Fatal("telemetry quantiles not lifted")
	}
	if tel.BatchP50 == nil || *tel.BatchP50 != 14 ||
		tel.BatchP99 == nil || *tel.BatchP99 != 14 ||
		tel.LatencyP50NS == nil || *tel.LatencyP50NS != 52000 ||
		tel.LatencyP99NS == nil || *tel.LatencyP99NS != 91000 {
		t.Errorf("telemetry = %+v %+v %+v %+v", tel.BatchP50, tel.BatchP99, tel.LatencyP50NS, tel.LatencyP99NS)
	}
	// Lifted units must not double-report in Extra; unknown units stay.
	if _, dup := r.Extra["p50-batch"]; dup {
		t.Error("p50-batch duplicated in Extra")
	}
	if v := r.Extra["widgets/op"]; v != 3 {
		t.Errorf("widgets/op = %v, want 3 in Extra", v)
	}

	doc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatal(err)
	}
	telMap, ok := back["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("no telemetry object in JSON: %s", doc)
	}
	if telMap["batch_p50"].(float64) != 14 || telMap["latency_p99_ns"].(float64) != 91000 {
		t.Errorf("telemetry JSON = %v", telMap)
	}
}

func TestParseBenchLineLiftsFlowTableMetrics(t *testing.T) {
	line := "BenchmarkAcceptScale 	       1	      2615 ns/op	         0.2628 flowcache-hit-rate	   1000000 flows	         1.990 p99-probe-depth	       0 B/op	       0 allocs/op"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line did not parse")
	}
	tel := r.Telemetry
	if tel == nil {
		t.Fatal("flow-table metrics not lifted")
	}
	if tel.FlowCacheHitRate == nil || *tel.FlowCacheHitRate != 0.2628 {
		t.Errorf("flowcache_hit_rate = %v, want 0.2628", tel.FlowCacheHitRate)
	}
	if tel.ProbeDepthP99 == nil || *tel.ProbeDepthP99 != 1.990 {
		t.Errorf("probe_depth_p99 = %v, want 1.990", tel.ProbeDepthP99)
	}
	if _, dup := r.Extra["flowcache-hit-rate"]; dup {
		t.Error("flowcache-hit-rate duplicated in Extra")
	}
	if v := r.Extra["flows"]; v != 1000000 {
		t.Errorf("flows = %v, want 1000000 in Extra", v)
	}
	if r.AllocsOp == nil || *r.AllocsOp != 0 {
		t.Errorf("allocs_per_op not parsed: %+v", r)
	}

	doc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(doc, &back); err != nil {
		t.Fatal(err)
	}
	telMap, ok := back["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("no telemetry object in JSON: %s", doc)
	}
	if telMap["flowcache_hit_rate"].(float64) != 0.2628 || telMap["probe_depth_p99"].(float64) != 1.99 {
		t.Errorf("telemetry JSON = %v", telMap)
	}
}

func TestParseBenchLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"ok  \tldlp/internal/core\t0.5s",
		"goos: linux",
		"BenchmarkBad notanumber ns/op",
		"",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("%q parsed as a benchmark line", line)
		}
	}
}

func TestParseBenchLineLiftsDispatchMetrics(t *testing.T) {
	line := "BenchmarkDispatchSkewed/loadaware-8  1  5768314 ns/op  5.000 bucket-moves  391.0 p99-wait-slots  1.171 shard-imbalance"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line did not parse")
	}
	tel := r.Telemetry
	if tel == nil {
		t.Fatal("dispatch metrics not lifted")
	}
	if tel.ShardImbalance == nil || *tel.ShardImbalance != 1.171 {
		t.Errorf("shard_imbalance = %v, want 1.171", tel.ShardImbalance)
	}
	if tel.WaitP99Slots == nil || *tel.WaitP99Slots != 391 {
		t.Errorf("wait_p99_slots = %v, want 391", tel.WaitP99Slots)
	}
	if v := r.Extra["bucket-moves"]; v != 5 {
		t.Errorf("bucket-moves = %v, want 5 in Extra", v)
	}
}

func TestParseBenchLineLiftsFleetMetrics(t *testing.T) {
	line := "BenchmarkFleetGossip/clean/n1000-8  1  5619573113 ns/op  63.96 rounds-per-step  4133183 delivery-p99-ns  3.984 ldlp-latency-ratio"
	r, ok := parseBenchLine(line)
	if !ok {
		t.Fatal("line did not parse")
	}
	tel := r.Telemetry
	if tel == nil {
		t.Fatal("fleet metrics not lifted")
	}
	if tel.GossipRoundsPerStep == nil || *tel.GossipRoundsPerStep != 63.96 {
		t.Errorf("gossip_rounds_per_step = %v, want 63.96", tel.GossipRoundsPerStep)
	}
	if tel.DeliveryP99NS == nil || *tel.DeliveryP99NS != 4133183 {
		t.Errorf("delivery_p99_ns = %v, want 4133183", tel.DeliveryP99NS)
	}
	if tel.LDLPLatencyRatio == nil || *tel.LDLPLatencyRatio != 3.984 {
		t.Errorf("ldlp_latency_ratio = %v, want 3.984", tel.LDLPLatencyRatio)
	}
}

// TestFleetSummarySchema pins the JSON field names the fleet tier lands
// in BENCH_2.json — dashboards key on them.
func TestFleetSummarySchema(t *testing.T) {
	rounds, p99, ratio := 64.0, 4.1e6, 3.9
	b, err := json.Marshal(TelemetrySummary{
		GossipRoundsPerStep: &rounds,
		DeliveryP99NS:       &p99,
		LDLPLatencyRatio:    &ratio,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"gossip_rounds_per_step":64`, `"delivery_p99_ns":4100000`, `"ldlp_latency_ratio":3.9`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("summary JSON %s missing %s", b, key)
		}
	}
}

// TestMergeMinOfN: repeated samples of one benchmark (go test -count=N)
// fold to the fastest run's timing — with its own iterations and
// metrics — while the allocation fields keep the worst observation.
func TestMergeMinOfN(t *testing.T) {
	lines := []string{
		"BenchmarkHotPathInject-8  900000  420.0 ns/op  14 p50-batch  0 B/op  0 allocs/op",
		"BenchmarkHotPathInject-8  1100000  359.2 ns/op  13 p50-batch  0 B/op  1 allocs/op",
		"BenchmarkHotPathInject-8  1000000  401.5 ns/op  15 p50-batch  8 B/op  0 allocs/op",
	}
	var acc Result
	for i, line := range lines {
		r, ok := parseBenchLine(line)
		if !ok {
			t.Fatalf("sample %d did not parse", i)
		}
		if i == 0 {
			r.Samples = 1
			acc = r
			continue
		}
		acc = merge(acc, r)
	}
	if acc.Samples != 3 {
		t.Errorf("Samples = %d, want 3", acc.Samples)
	}
	if acc.NsPerOp != 359.2 || acc.Iterations != 1100000 {
		t.Errorf("min sample not kept: %.1f ns/op over %d iterations", acc.NsPerOp, acc.Iterations)
	}
	if acc.Telemetry == nil || acc.Telemetry.BatchP50 == nil || *acc.Telemetry.BatchP50 != 13 {
		t.Errorf("metrics should ride with the fastest sample: %+v", acc.Telemetry)
	}
	if acc.BytesPerOp == nil || *acc.BytesPerOp != 8 {
		t.Errorf("B/op should keep the max: %v", acc.BytesPerOp)
	}
	if acc.AllocsOp == nil || *acc.AllocsOp != 1 {
		t.Errorf("allocs/op should keep the max: %v", acc.AllocsOp)
	}
}
