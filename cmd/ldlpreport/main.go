// Command ldlpreport regenerates the complete reproduction — every
// table, figure, ablation and validation — into a directory of text
// files, one file per artifact. It is the one-command driver behind
// EXPERIMENTS.md.
//
// Usage:
//
//	ldlpreport [-out results] [-paper]
//
// -paper runs the published methodology (100 seeds × 1 s per point);
// the default is a faster 30×1 s that preserves every shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ldlp/internal/analytic"
	"ldlp/internal/checksum"
	"ldlp/internal/core"
	"ldlp/internal/layout"
	"ldlp/internal/memtrace"
	"ldlp/internal/signal"
	"ldlp/internal/sim"
	"ldlp/internal/stats"
	"ldlp/internal/tcpmodel"
	"ldlp/internal/traffic"
)

func main() {
	var (
		out   = flag.String("out", "results", "output directory")
		paper = flag.Bool("paper", false, "full 100-seed methodology")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	opts := sim.SweepOptions{Runs: 30, Duration: 1, MessageSize: 552, BaseSeed: 1, Parallel: true}
	if *paper {
		opts = sim.PaperSweep()
	}

	start := time.Now()
	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("%-28s %7d bytes  (%v elapsed)\n", name, len(content), time.Since(start).Round(time.Second))
	}

	// §2 measurement artifacts.
	model := tcpmodel.New(tcpmodel.DefaultConfig())
	trace := model.Trace()
	a := memtrace.Analyze(trace, 32)
	write("table1.txt", renderTable1(a))
	write("table3.txt", renderTable3(trace))
	write("phases.txt", renderPhases(a, trace))
	write("layout.txt", renderLayout(trace))

	// §4 figures.
	f5 := sim.Figure5(opts)
	write("figure5.txt", f5.String()+"\n"+f5.Plot(stats.PlotOptions{YLabel: "misses/msg"}))
	f6 := sim.Figure6(opts)
	write("figure6.txt", f6.String()+"\n"+f6.Plot(stats.PlotOptions{LogY: true, YLabel: "seconds"}))
	f7opts := opts
	if !*paper {
		f7opts.Duration = 2
	}
	f7 := sim.Figure7(f7opts)
	write("figure7.txt", f7.String()+"\n"+f7.Plot(stats.PlotOptions{LogY: true, YLabel: "seconds"}))

	// §5.1 checksum.
	f8 := checksum.Figure8(1000, 16)
	write("figure8.txt", fmt.Sprintf("%s\n# cold crossover: %d bytes (paper ≈900)\n",
		f8, checksum.ColdCrossover(1500)))

	// Ablations.
	var ab string
	ab += sim.BatchCapAblation(opts, 8000, []int{1, 2, 4, 8, 14, 32}).String() + "\n"
	ab += sim.QueueCostAblation(opts, 6000, []float64{0, 20, 40, 100, 200}).String() + "\n"
	ab += sim.CacheSizeAblation(opts, 3000, []int{8192, 16384, 32768, 65536}).String() + "\n"
	ab += sim.DisciplineAblation(opts, 4000).String() + "\n"
	ab += sim.PrefetchAblation(opts, 3000).String() + "\n"
	ab += sim.ValueAddedAblation(opts, 2500, 12288).String() + "\n"
	ab += sim.UnifiedCacheAblation(opts, 5000).String() + "\n"
	write("ablations.txt", ab)

	// §1 signalling goal.
	write("signalling.txt", renderSignalling(opts))

	// §6 rule-of-thumb analytic model.
	write("analytic.txt", analytic.PaperStack().String()+"\n")

	fmt.Printf("done in %v\n", time.Since(start).Round(time.Second))
}

func renderTable1(a *memtrace.Analysis) string {
	s := "Table 1 (measured vs paper)\n"
	paper := map[string]memtrace.LayerSet{}
	for _, row := range tcpmodel.PaperTable1() {
		paper[row.Layer] = row
	}
	got := map[string]memtrace.LayerSet{}
	for _, row := range a.PerLayer {
		got[row.Layer] = row
	}
	var code, ro, mut int
	for _, name := range tcpmodel.PaperLayers {
		g, p := got[name], paper[name]
		s += fmt.Sprintf("%-20s code %5d (%5d)  ro %4d (%4d)  mut %4d (%4d)\n",
			name, g.Code, p.Code, g.ReadOnly, p.ReadOnly, g.Mutable, p.Mutable)
		code += g.Code
		ro += g.ReadOnly
		mut += g.Mutable
	}
	pc, pr, pm := tcpmodel.PaperTable1Totals()
	s += fmt.Sprintf("%-20s code %5d (%5d)  ro %4d (%4d)  mut %4d (%4d)\n", "Total", code, pc, ro, pr, mut, pm)
	s += fmt.Sprintf("dilution %.1f%% (paper ≈25%%)\n", 100*a.Dilution())
	return s
}

func renderTable3(trace *memtrace.Trace) string {
	s := "Table 3 (measured; paper in parentheses)\n"
	paper := map[string]map[int]memtrace.LineSizeDelta{}
	for _, sw := range tcpmodel.PaperTable3() {
		paper[sw.Class] = map[int]memtrace.LineSizeDelta{}
		for _, d := range sw.Deltas {
			paper[sw.Class][d.LineSize] = d
		}
	}
	for _, sw := range memtrace.LineSweep(trace, []int{64, 16, 8, 4}) {
		s += sw.Class + ":\n"
		for _, d := range sw.Deltas {
			if p, ok := paper[sw.Class][d.LineSize]; ok {
				s += fmt.Sprintf("  %2dB: bytes %+4.0f%% (%+.0f%%)  lines %+5.0f%% (%+.0f%%)\n",
					d.LineSize, 100*d.BytesDelta, 100*p.BytesDelta, 100*d.LinesDelta, 100*p.LinesDelta)
			} else {
				s += fmt.Sprintf("  %2dB: bytes %+4.0f%%  lines %+5.0f%%  (paper: N/A)\n",
					d.LineSize, 100*d.BytesDelta, 100*d.LinesDelta)
			}
		}
	}
	return s
}

func renderPhases(a *memtrace.Analysis, trace *memtrace.Trace) string {
	s := "Table 2 / Figure 1 margins (measured vs paper)\n"
	for i, p := range tcpmodel.PaperPhases() {
		g := a.Phases[i]
		s += fmt.Sprintf("%-9s code %6d B %6d refs (%6d B %6d refs)\n",
			p.Name, g.CodeBytes, g.CodeRefs, p.CodeBytes, p.CodeRefs)
	}
	ov := memtrace.PhaseOverlap(trace, 32)
	s += "phase overlap (bytes):\n"
	for i, n := range tcpmodel.PhaseNames {
		for j := range tcpmodel.PhaseNames {
			if j > i {
				s += fmt.Sprintf("  %s ∩ %s = %d\n", n, tcpmodel.PhaseNames[j], ov[i][j])
			}
		}
	}
	return s
}

func renderLayout(trace *memtrace.Trace) string {
	b := layout.Measure(trace, 32)
	return fmt.Sprintf("§5.4 dense code layout\nbefore %d lines, after %d lines: %.1f%% saved (paper estimates ≈25%%)\n",
		b.Before.Lines, b.After.Lines, 100*b.Reduction)
}

func renderSignalling(opts sim.SweepOptions) string {
	offered := float64(signal.GoalPairsPerSec * signal.MessagesPerPair)
	s := fmt.Sprintf("§1 goal: %d pairs/s at %.0fµs processing (100 MHz)\n",
		signal.GoalPairsPerSec, signal.GoalLatency*1e6)
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		cfg := signal.SimConfig(d)
		cfg.Duration = opts.Duration
		res := sim.New(cfg).Run(traffic.NewPoisson(offered, signal.MessageBytes, 1))
		proc := res.BusyFrac * cfg.Duration / float64(res.Processed)
		s += fmt.Sprintf("%-14s processing %6.1fµs/msg, total %8.1fµs, drops %d/%d\n",
			d, proc*1e6, res.Latency.Mean()*1e6, res.Dropped, res.Offered)
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ldlpreport:", err)
	os.Exit(1)
}
