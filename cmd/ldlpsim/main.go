// Command ldlpsim regenerates the paper's §4 evaluation figures on the
// synthetic five-layer stack: Figure 5 (cache misses per message vs
// arrival rate), Figure 6 (latency vs arrival rate) and Figure 7 (latency
// vs CPU clock under self-similar Ethernet traffic), plus the ablation
// sweeps DESIGN.md calls out.
//
// Usage:
//
//	ldlpsim [-figure5] [-figure6] [-figure7] [-ablations] [-all]
//	        [-runs 100] [-duration 1] [-paper]
//	ldlpsim -fleet [-fleet-nodes 1000] [-fleet-steps 5] [-fleet-seed 1]
//	        [-fleet-preset bernoulli] [-fleet-check]
//
// -paper selects the full published methodology (100 seeds × 1 s per
// point — minutes of CPU); the default is a quick 5×0.3 s sweep.
//
// -fleet runs FigureFleetGossip instead: the TLC threshold-gossip
// workload on the event-driven fleet simulator, LDLP vs conventional,
// clean vs fault-preset links. -fleet-check additionally replays the
// run and exits non-zero if any invariant breaks or the replay is not
// byte-identical — the smoke-test mode `make fleet-smoke` wires into CI.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"ldlp/internal/core"
	"ldlp/internal/fleet"
	"ldlp/internal/fleet/gossip"
	"ldlp/internal/sim"
	"ldlp/internal/stats"
	"ldlp/internal/traffic"
)

func main() {
	var (
		f5        = flag.Bool("figure5", false, "cache misses per message vs arrival rate")
		f6        = flag.Bool("figure6", false, "latency vs arrival rate")
		f7        = flag.Bool("figure7", false, "latency vs CPU clock (self-similar traffic)")
		ablations = flag.Bool("ablations", false, "batch cap / queue cost / cache size / discipline sweeps")
		disp      = flag.Bool("dispatch", false, "static vs load-aware dispatch under Zipf flow skew")
		all       = flag.Bool("all", false, "everything")
		paper     = flag.Bool("paper", false, "full published methodology (100 seeds x 1s)")
		runs      = flag.Int("runs", 0, "override: seeds per point")
		duration  = flag.Float64("duration", 0, "override: simulated seconds per run")
		plot      = flag.Bool("plot", false, "render ASCII plots alongside the tables")

		fleetMode   = flag.Bool("fleet", false, "fleet-scale threshold gossip (FigureFleetGossip)")
		fleetNodes  = flag.Int("fleet-nodes", 1000, "fleet size")
		fleetSteps  = flag.Uint("fleet-steps", 5, "logical-clock target step")
		fleetSeed   = flag.Int64("fleet-seed", 1, "fleet seed (topology, jitter, faults)")
		fleetPreset = flag.String("fleet-preset", "bernoulli", "faults preset for the impaired link row")
		fleetCheck  = flag.Bool("fleet-check", false, "verify invariants + byte-identical replay; exit non-zero on violation")
	)
	flag.Parse()
	if *fleetMode {
		if err := runFleet(*fleetNodes, uint32(*fleetSteps), *fleetSeed, *fleetPreset, *fleetCheck); err != nil {
			fmt.Fprintln(os.Stderr, "ldlpsim -fleet:", err)
			os.Exit(1)
		}
		return
	}
	if !(*f5 || *f6 || *f7 || *ablations || *disp || *all) {
		*all = true
	}

	opts := sim.QuickSweep()
	if *paper {
		opts = sim.PaperSweep()
	}
	if *runs > 0 {
		opts.Runs = *runs
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	fmt.Printf("# sweep: %d runs x %.2fs per point, %d-byte messages\n\n",
		opts.Runs, opts.Duration, opts.MessageSize)

	show := func(tab *stats.Table, logY bool, ylabel string) {
		fmt.Println(tab)
		if *plot {
			fmt.Println(tab.Plot(stats.PlotOptions{LogY: logY, YLabel: ylabel}))
		}
	}
	timed := func(name string, fn func()) {
		start := time.Now()
		fn()
		fmt.Printf("# %s took %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *all || *f5 {
		timed("figure 5", func() { show(sim.Figure5(opts), false, "misses/msg") })
	}
	if *all || *f6 {
		timed("figure 6", func() { show(sim.Figure6(opts), true, "seconds") })
	}
	if *all || *f7 {
		f7opts := opts
		if !*paper && *duration == 0 {
			f7opts.Duration = 2 // bursts need a longer window
		}
		timed("figure 7", func() {
			// Validate the trace model first: the variance-time Hurst
			// estimate should look like the Bellcore data (H ≈ 0.7-0.9).
			arr := traffic.Take(traffic.NewSelfSimilar(traffic.DefaultSelfSimilar(sim.Figure7Rate, 1)), 120, 0)
			if h, err := traffic.EstimateHurst(arr, 120, 0.1); err == nil {
				fmt.Printf("# self-similar source: Hurst ≈ %.2f (Poisson would be 0.5; Bellcore measures 0.7-0.9)\n", h)
			}
			show(sim.Figure7(f7opts), true, "seconds")
		})
	}
	if *all || *disp {
		timed("dispatch skew", func() {
			show(sim.FigureDispatchSkew(sim.DefaultDispatchSkew()), false, "imbalance")
		})
	}
	if *all || *ablations {
		timed("ablations", func() {
			fmt.Println(sim.BatchCapAblation(opts, 8000, []int{1, 2, 4, 8, 14, 32}))
			fmt.Println(sim.QueueCostAblation(opts, 6000, []float64{0, 20, 40, 100, 200}))
			fmt.Println(sim.CacheSizeAblation(opts, 3000, []int{8192, 16384, 32768, 65536}))
			fmt.Println(sim.DisciplineAblation(opts, 4000))
			fmt.Println(sim.PrefetchAblation(opts, 3000))
			fmt.Println(sim.ValueAddedAblation(opts, 2500, 12288))
			fmt.Println(sim.UnifiedCacheAblation(opts, 5000))
		})
	}
}

// runFleet drives the fleet-scale gossip figure and, with check set,
// the invariant + replay verification first.
func runFleet(nodes int, target uint32, seed int64, preset string, check bool) error {
	start := time.Now()
	if check {
		if err := fleetCheck(nodes, target, seed, preset); err != nil {
			return err
		}
		fmt.Printf("# fleet-check: invariants and byte-identical replay OK (%d nodes, %d steps, %s links)\n",
			nodes, target, preset)
	}
	tab, err := gossip.FigureFleetGossip(gossip.FigureConfig{
		Nodes: nodes, TargetStep: target, Seed: seed, FaultPreset: preset,
	})
	if err != nil {
		return err
	}
	fmt.Println(tab)
	fmt.Printf("# fleet gossip took %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// fleetCheck runs one seeded gossip fleet twice over impaired links and
// demands invariant-clean runs (gossip.Run verifies conservation and
// scheduler ledgers) with byte-identical event logs, step histories and
// merged telemetry.
func fleetCheck(nodes int, target uint32, seed int64, preset string) error {
	type artifacts struct {
		events, history []byte
		res             gossip.Result
	}
	run := func() (artifacts, error) {
		var log bytes.Buffer
		res, err := gossip.Run(gossip.Config{
			Fleet: fleet.Config{
				Topology:   fleet.SmallWorld(nodes, 4, 0.1, seed),
				Discipline: core.LDLP,
				Link:       fleet.FaultyLink(fleet.LANLink(), preset),
				Seed:       seed,
				EventLog:   &log,
			},
			TargetStep: target,
		})
		if err != nil {
			return artifacts{}, err
		}
		if !res.Completed {
			return artifacts{}, fmt.Errorf("gossip did not reach step %d within the horizon (%d/%d nodes)",
				target, res.Nodes, nodes)
		}
		return artifacts{events: log.Bytes(), history: res.History, res: res}, nil
	}
	a, err := run()
	if err != nil {
		return err
	}
	b, err := run()
	if err != nil {
		return err
	}
	if !bytes.Equal(a.events, b.events) {
		return fmt.Errorf("replay diverged: event logs differ (%d vs %d bytes)", len(a.events), len(b.events))
	}
	if !bytes.Equal(a.history, b.history) {
		return fmt.Errorf("replay diverged: gossip step histories differ")
	}
	if len(a.res.Telemetry) != len(b.res.Telemetry) {
		return fmt.Errorf("replay diverged: telemetry entry counts differ (%d vs %d)",
			len(a.res.Telemetry), len(b.res.Telemetry))
	}
	for i := range a.res.Telemetry {
		if a.res.Telemetry[i].Name != b.res.Telemetry[i].Name || a.res.Telemetry[i].Hist != b.res.Telemetry[i].Hist {
			return fmt.Errorf("replay diverged: merged histogram %q differs", a.res.Telemetry[i].Name)
		}
	}
	return nil
}
