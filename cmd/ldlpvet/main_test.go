package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"ldlp/internal/lint"
)

func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/mbuf/pool.go", Line: 42, Column: 7},
			Analyzer: "hotpathalloc",
			Message:  "hot-path function reaches an allocation in mbuf.grow",
			Chain:    []string{"ldlp/internal/mbuf.Pool.Get", "ldlp/internal/mbuf.grow"},
		},
		{
			Pos:      token.Position{Filename: "internal/netstack/tcp.go", Line: 9, Column: 2},
			Analyzer: "mbufown",
			Message:  `mbuf "m" is still owned when the function returns`,
		},
	}
}

// TestJSONSchema pins the -json output contract: a JSON array whose
// elements carry exactly the documented keys, with chain omitted when
// the finding has none. CI annotators parse this; key renames are
// breaking changes.
func TestJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, sampleDiags()); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var got []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2", len(got))
	}

	first := got[0]
	for _, key := range []string{"file", "line", "col", "analyzer", "message", "chain"} {
		if _, ok := first[key]; !ok {
			t.Errorf("finding with a chain is missing key %q: %v", key, first)
		}
	}
	if first["file"] != "internal/mbuf/pool.go" || first["line"] != float64(42) || first["col"] != float64(7) {
		t.Errorf("position fields wrong: %v", first)
	}
	if first["analyzer"] != "hotpathalloc" {
		t.Errorf("analyzer field wrong: %v", first["analyzer"])
	}
	chain, ok := first["chain"].([]any)
	if !ok || len(chain) != 2 || chain[0] != "ldlp/internal/mbuf.Pool.Get" {
		t.Errorf("chain field wrong: %v", first["chain"])
	}

	second := got[1]
	if _, ok := second["chain"]; ok {
		t.Errorf("chain must be omitted when empty: %v", second)
	}

	// Unknown keys would silently break consumers that range over the
	// object; pin the exact key sets.
	if len(first) != 6 || len(second) != 5 {
		t.Errorf("unexpected keys: with-chain %v, without %v", first, second)
	}
}

// TestJSONEmpty proves a clean run encodes as [] rather than null, so
// `jq length` and similar consumers need no special case.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty run encodes as %q, want []", got)
	}
}

// TestGitHubAnnotations pins the workflow-command format, including the
// %-encoding GitHub requires for literal % and newlines in the message.
func TestGitHubAnnotations(t *testing.T) {
	diags := sampleDiags()
	diags[1].Message = "50% of paths\nleak"
	var buf bytes.Buffer
	writeGitHub(&buf, diags)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d annotation lines, want 2:\n%s", len(lines), buf.String())
	}
	want0 := "::error file=internal/mbuf/pool.go,line=42,col=7::hotpathalloc: hot-path function reaches an allocation in mbuf.grow"
	if lines[0] != want0 {
		t.Errorf("annotation = %q, want %q", lines[0], want0)
	}
	if !strings.Contains(lines[1], "50%25 of paths%0Aleak") {
		t.Errorf("message not workflow-command-escaped: %q", lines[1])
	}
}
