// Command ldlpvet runs the repo's custom static analyzers (see
// internal/lint) over the tree: mbufown, hotpathalloc, atomiccounter,
// lockorder, and determinism. It is the static half of the invariant
// story — the chaos and race suites catch violations at runtime, ldlpvet
// rejects them at review time.
//
// Usage:
//
//	ldlpvet [-only name,name] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 clean, 1 findings, 2 load or usage error.
//
// Suppress a finding with a justified directive on the same line or the
// line above:
//
//	//lint:ignore <analyzer> <reason why the invariant does not apply>
//
// The reason is mandatory; a bare ignore is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ldlp/internal/lint"
)

func main() {
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "ldlpvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlpvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, fset, err := lint.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlpvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlpvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ldlpvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
