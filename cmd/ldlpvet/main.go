// Command ldlpvet runs the repo's custom static analyzers (see
// internal/lint) over the tree: mbufown, hotpathalloc, quiescence,
// atomiccounter, lockorder, determinism, and shardaffinity. It is the
// static half of the invariant story — the chaos and race suites catch
// violations at runtime, ldlpvet rejects them at review time.
//
// Usage:
//
//	ldlpvet [-only name,name] [-list] [-json] [-github] [-v] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status: 0 clean, 1 findings, 2 load or usage error.
//
// -json replaces the text output with a JSON array of findings
// ({file, line, col, analyzer, message, chain}); -github additionally
// emits GitHub Actions ::error annotations so findings land inline on
// pull-request diffs; -v reports where the time went (go list vs
// type-check vs analysis) and whether the package metadata came from
// the on-disk cache.
//
// Suppress a finding with a justified directive on the same line or the
// line above:
//
//	//lint:ignore <analyzer> <reason why the invariant does not apply>
//
// The reason is mandatory; a bare ignore is itself a finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ldlp/internal/lint"
)

// jsonFinding is the stable machine-readable schema for one finding.
// Tooling (CI annotators, editors) keys on these field names; changing
// them is a breaking change guarded by TestJSONSchema.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

// writeJSON encodes diags as a JSON array (never null: an empty run
// yields []).
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
			Chain:    d.Chain,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// writeGitHub emits one workflow command per finding so GitHub renders
// it as an inline annotation on the pull-request diff.
func writeGitHub(w io.Writer, diags []lint.Diagnostic) {
	for _, d := range diags {
		msg := d.Analyzer + ": " + d.Message
		// Workflow-command data is %-encoded; newlines cannot appear
		// literally.
		msg = strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(msg)
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, msg)
	}
}

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		asJSON  = flag.Bool("json", false, "emit findings as a JSON array instead of text")
		gha     = flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
		verbose = flag.Bool("v", false, "report load vs analysis timing on stderr")
	)
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				kept = append(kept, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "ldlpvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlpvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, fset, stats, err := lint.LoadWithStats(cwd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlpvet: %v\n", err)
		os.Exit(2)
	}
	analysisStart := time.Now()
	diags, err := lint.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldlpvet: %v\n", err)
		os.Exit(2)
	}
	analysisTime := time.Since(analysisStart)
	if *verbose {
		src := "go list"
		if stats.CacheHit {
			src = "cache"
		}
		fmt.Fprintf(os.Stderr, "ldlpvet: load %v (list %v via %s, check %v), analysis %v, %d package(s)\n",
			(stats.List + stats.Check).Round(time.Millisecond),
			stats.List.Round(time.Millisecond), src,
			stats.Check.Round(time.Millisecond),
			analysisTime.Round(time.Millisecond), len(pkgs))
	}

	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "ldlpvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *gha {
		writeGitHub(os.Stdout, diags)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ldlpvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
