// Command tcpwset regenerates the paper's §2 measurement artifacts from
// the modeled NetBSD TCP receive & acknowledge path: Table 1 (working-set
// breakdown), Table 2 (phases), Table 3 (cache-line-size sweep) and the
// Figure 1 active-code map.
//
// Usage:
//
//	tcpwset [-msglen 552] [-seed 1] [-table1] [-phases] [-table3] [-map] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"ldlp/internal/memtrace"
	"ldlp/internal/tcpmodel"
)

func main() {
	var (
		msgLen = flag.Int("msglen", 552, "received message length in bytes")
		seed   = flag.Int64("seed", 1, "layout seed")
		table1 = flag.Bool("table1", false, "print Table 1 (working set breakdown)")
		phases = flag.Bool("phases", false, "print Table 2 phases with Figure 1 margins")
		table3 = flag.Bool("table3", false, "print Table 3 (line size sweep)")
		pmap   = flag.Bool("map", false, "print the Figure 1 active-code map")
		cisc   = flag.Bool("i386", false, "print the §5.2 CISC/RISC density comparison")
		all    = flag.Bool("all", false, "print everything")
	)
	flag.Parse()
	if !(*table1 || *phases || *table3 || *pmap || *cisc || *all) {
		*all = true
	}

	model := tcpmodel.New(tcpmodel.Config{MessageLen: *msgLen, Seed: *seed})
	trace := model.Trace()
	a := memtrace.Analyze(trace, 32)

	if *all || *table1 {
		printTable1(a)
	}
	if *all || *phases {
		printPhases(a)
		printOverlap(trace)
	}
	if *all || *table3 {
		printTable3(trace)
	}
	if *all || *pmap {
		printMap(a)
	}
	if *all || *cisc {
		printCISC(*msgLen, *seed, a)
	}
	_ = os.Stdout
}

func printCISC(msgLen int, seed int64, alpha *memtrace.Analysis) {
	fmt.Println("§5.2: CISC vs RISC code density")
	cfg := tcpmodel.I386Config()
	cfg.MessageLen = msgLen
	cfg.Seed = seed
	i386 := memtrace.Analyze(tcpmodel.New(cfg).Trace(), 32)
	fmt.Printf("  Alpha code working set: %6d bytes\n", alpha.Code.Bytes)
	fmt.Printf("  i386  code working set: %6d bytes (%.0f%% of Alpha; paper: \"about 40-55%% smaller\")\n",
		i386.Code.Bytes, 100*float64(i386.Code.Bytes)/float64(alpha.Code.Bytes))
	fmt.Printf("  both still exceed an 8 KB primary cache, so LDLP helps either machine —\n")
	fmt.Printf("  the CISC just benefits less (its conventional stack misses less to begin with)\n\n")
}

func printTable1(a *memtrace.Analysis) {
	fmt.Println("Table 1: Working Set Sizes in the TCP Receive & Acknowledge Path")
	fmt.Println("(bytes at 32-byte cache-line granularity; paper values in parentheses)")
	fmt.Println()
	paper := map[string]memtrace.LayerSet{}
	for _, row := range tcpmodel.PaperTable1() {
		paper[row.Layer] = row
	}
	fmt.Printf("%-20s %18s %18s %18s\n", "Layer", "Code", "Read-only", "Mutable")
	// Print in the paper's order.
	got := map[string]memtrace.LayerSet{}
	for _, row := range a.PerLayer {
		got[row.Layer] = row
	}
	var code, ro, mut int
	for _, name := range tcpmodel.PaperLayers {
		g := got[name]
		p := paper[name]
		fmt.Printf("%-20s %8d (%6d) %8d (%6d) %8d (%6d)\n",
			name, g.Code, p.Code, g.ReadOnly, p.ReadOnly, g.Mutable, p.Mutable)
		code += g.Code
		ro += g.ReadOnly
		mut += g.Mutable
	}
	pc, pr, pm := tcpmodel.PaperTable1Totals()
	fmt.Printf("%-20s %8d (%6d) %8d (%6d) %8d (%6d)\n", "Total", code, pc, ro, pr, mut, pm)
	fmt.Printf("\nCode dilution (fetched-but-unexecuted bytes): %.1f%% (paper: ≈%.0f%%)\n", 100*a.Dilution(), 100*tcpmodel.PaperDilution)

	// §2.4's headline: per packet, ~35 KB of code+read-only data is
	// fetched and discarded, while the 552-byte message accounts for an
	// off-CPU IO volume of ~2.2 KB (fetched twice, stored twice).
	codeRO := code + ro
	msgIO := 4 * 552
	fmt.Printf("Per-packet memory traffic: %d bytes of code+ro fetched vs ≈%d bytes of message IO — %.0fx\n",
		codeRO, msgIO, float64(codeRO)/float64(msgIO))
	fmt.Printf("(the paper: \"the processor spends ten times longer fetching protocol code from memory\n than moving message contents\")\n\n")
}

func printPhases(a *memtrace.Analysis) {
	fmt.Println("Table 2: Phases of the TCP receive & acknowledge path")
	fmt.Println()
	paper := tcpmodel.PaperPhases()
	for i, d := range tcpmodel.PhaseDescriptions {
		fmt.Printf("[%s] %s\n", d.Name, d.Description)
		g := a.Phases[i]
		p := paper[i]
		fmt.Printf("  code  %6d bytes %6d refs   (paper %6d bytes %6d refs)\n",
			g.CodeBytes, g.CodeRefs, p.CodeBytes, p.CodeRefs)
		fmt.Printf("  read  %6d bytes %6d refs   (paper %6d bytes %6d refs)\n",
			g.ReadBytes, g.ReadRefs, p.ReadBytes, p.ReadRefs)
		fmt.Printf("  write %6d bytes %6d refs   (paper %6d bytes %6d refs)\n\n",
			g.WriteBytes, g.WriteRefs, p.WriteBytes, p.WriteRefs)
	}
}

func printOverlap(trace *memtrace.Trace) {
	fmt.Println("Code shared between phases (why Figure 1's margins exceed the Table 1 union):")
	ov := memtrace.PhaseOverlap(trace, 32)
	fmt.Printf("%14s", "")
	for _, n := range tcpmodel.PhaseNames {
		fmt.Printf(" %10s", n)
	}
	fmt.Println()
	for i, n := range tcpmodel.PhaseNames {
		fmt.Printf("%14s", n)
		for j := range tcpmodel.PhaseNames {
			fmt.Printf(" %10d", ov[i][j])
		}
		fmt.Println()
	}
	fmt.Println("(diagonal: the phase's own code bytes)")
	fmt.Println()
}

func printTable3(trace *memtrace.Trace) {
	fmt.Println("Table 3: Effect of Cache Line Size on Working Set")
	fmt.Println("(percentage change vs the 32-byte baseline; paper values in parentheses)")
	fmt.Println()
	sweeps := memtrace.LineSweep(trace, []int{64, 16, 8, 4})
	paper := map[string]map[int]memtrace.LineSizeDelta{}
	for _, sw := range tcpmodel.PaperTable3() {
		paper[sw.Class] = map[int]memtrace.LineSizeDelta{}
		for _, d := range sw.Deltas {
			paper[sw.Class][d.LineSize] = d
		}
	}
	for _, sw := range sweeps {
		fmt.Printf("%s:\n", sw.Class)
		for _, d := range sw.Deltas {
			p, ok := paper[sw.Class][d.LineSize]
			if !ok {
				fmt.Printf("  %2dB lines: bytes %+6.0f%%  lines %+6.0f%%   (paper: N/A)\n",
					d.LineSize, 100*d.BytesDelta, 100*d.LinesDelta)
				continue
			}
			fmt.Printf("  %2dB lines: bytes %+6.0f%% (%+.0f%%)  lines %+6.0f%% (%+.0f%%)\n",
				d.LineSize, 100*d.BytesDelta, 100*p.BytesDelta, 100*d.LinesDelta, 100*p.LinesDelta)
		}
	}
	fmt.Println()
}

func printMap(a *memtrace.Analysis) {
	fmt.Println("Figure 1: Active code per phase (touched bytes per function)")
	fmt.Println()
	for p, name := range tcpmodel.PhaseNames {
		fmt.Printf("--- %s ---\n", name)
		for _, ft := range a.CodeByPhaseFunc[p] {
			bar := ""
			for i := 0; i < ft.Bytes/128; i++ {
				bar += "#"
			}
			fmt.Printf("  %-20s %6d B %7d refs %s\n", ft.Func, ft.Bytes, ft.Refs, bar)
		}
		fmt.Println()
	}
}
