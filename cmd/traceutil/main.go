// Command traceutil works with stored memory-reference traces: dump the
// modeled TCP receive-path trace to a file, re-analyze a stored trace at
// any cache line size, and run the §5.4 code-layout optimization over it.
//
// Usage:
//
//	traceutil -dump trace.mt [-msglen 552] [-seed 1] [-i386]
//	traceutil -analyze trace.mt [-linesize 32]
//	traceutil -layout trace.mt [-linesize 32]
package main

import (
	"flag"
	"fmt"
	"os"

	"ldlp/internal/layout"
	"ldlp/internal/memtrace"
	"ldlp/internal/tcpmodel"
)

func main() {
	var (
		dump     = flag.String("dump", "", "write the modeled TCP trace to this file")
		analyze  = flag.String("analyze", "", "analyze a stored trace file")
		doLayout = flag.String("layout", "", "measure the §5.4 layout optimization on a stored trace")
		msgLen   = flag.Int("msglen", 552, "message length for -dump")
		seed     = flag.Int64("seed", 1, "model seed for -dump")
		i386     = flag.Bool("i386", false, "use the §5.2 CISC density model for -dump")
		lineSize = flag.Int("linesize", 32, "cache line size for -analyze/-layout")
	)
	flag.Parse()

	switch {
	case *dump != "":
		cfg := tcpmodel.DefaultConfig()
		if *i386 {
			cfg = tcpmodel.I386Config()
		}
		cfg.MessageLen = *msgLen
		cfg.Seed = *seed
		tr := tcpmodel.New(cfg).Trace()
		f, err := os.Create(*dump)
		check(err)
		check(memtrace.WriteTrace(f, tr))
		check(f.Close())
		fmt.Printf("wrote %d records (%d phases) to %s\n", len(tr.Records), len(tr.Phases), *dump)

	case *analyze != "":
		tr := load(*analyze)
		a := memtrace.Analyze(tr, *lineSize)
		fmt.Printf("analysis at %d-byte lines:\n", *lineSize)
		fmt.Printf("  code:      %6d bytes (%4d lines, %5d touched, dilution %.1f%%)\n",
			a.Code.Bytes, a.Code.Lines, a.Code.TouchedBytes, 100*a.Dilution())
		fmt.Printf("  read-only: %6d bytes (%4d lines)\n", a.ReadOnly.Bytes, a.ReadOnly.Lines)
		fmt.Printf("  mutable:   %6d bytes (%4d lines)\n", a.Mutable.Bytes, a.Mutable.Lines)
		for _, ls := range a.PerLayer {
			fmt.Printf("  %-20s code %6d ro %5d mut %5d\n", ls.Layer, ls.Code, ls.ReadOnly, ls.Mutable)
		}

	case *doLayout != "":
		tr := load(*doLayout)
		b := layout.Measure(tr, *lineSize)
		fmt.Printf("§5.4 layout optimization at %d-byte lines:\n", *lineSize)
		fmt.Printf("  before: %6d bytes (%4d lines)\n", b.Before.Bytes, b.Before.Lines)
		fmt.Printf("  after:  %6d bytes (%4d lines)\n", b.After.Bytes, b.After.Lines)
		fmt.Printf("  saved:  %d lines (%.1f%%; the paper estimates ≈25%% from dilution)\n",
			b.LinesSaved, 100*b.Reduction)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *memtrace.Trace {
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	tr, err := memtrace.ReadTrace(f)
	check(err)
	return tr
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceutil:", err)
		os.Exit(1)
	}
}
