// Command cksumbench regenerates Figure 8: the cold- vs warm-cache
// comparison of the elaborate 4.4BSD checksum routine against a simple
// small-code routine, on the modeled DECstation 3000/400.
//
// Usage:
//
//	cksumbench [-max 1000] [-step 16]
package main

import (
	"flag"
	"fmt"

	"ldlp/internal/checksum"
)

func main() {
	var (
		max  = flag.Int("max", 1000, "largest message size in bytes")
		step = flag.Int("step", 16, "sweep step (the paper buckets by 16)")
	)
	flag.Parse()

	fmt.Println(checksum.Figure8(*max, *step))

	bsd, simple := checksum.BSDModel(), checksum.SimpleModel()
	fmt.Printf("# %s: %d bytes code (%d active); %s: %d bytes code\n",
		bsd.Name, bsd.CodeBytes, bsd.ActiveBytes, simple.Name, simple.CodeBytes)
	x := checksum.ColdCrossover(1500)
	fmt.Printf("# cold-cache crossover: simple wins below %d bytes (paper: ≈900)\n", x)
	fmt.Println("# anchors: cold cost at size 0 = 426 (4.4BSD) vs 176 (simple) cycles, as printed in the paper")
}
