package dispatch

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
)

// mkFrame builds the wire frame an inbound packet carries: Ethernet +
// IPv4 + the first transport bytes (ports for TCP/UDP). payload is the
// IP payload; extraPad appends link padding beyond TotalLen.
func mkFrame(src, dst layers.IPAddr, proto byte, id uint16, flags byte, fragOff int, payload, extraPad []byte) []byte {
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + len(payload),
		ID:       id, TTL: 64, Protocol: proto, Src: src, Dst: dst,
		Flags: flags, FragOff: fragOff,
	}
	f := make([]byte, layers.EthernetLen+layers.IPv4MinLen, layers.EthernetLen+layers.IPv4MinLen+len(payload)+len(extraPad))
	eth := layers.Ethernet{Dst: layers.MACAddr{2, 0, dst[0], dst[1], dst[2], dst[3]}, Src: layers.MACAddr{2, 0, src[0], src[1], src[2], src[3]}, EtherType: layers.EtherTypeIPv4}
	eth.Encode(f[:layers.EthernetLen])
	ip.Encode(f[layers.EthernetLen:])
	f = append(f, payload...)
	return append(f, extraPad...)
}

func ports(sport, dport uint16, rest int) []byte {
	p := make([]byte, 4+rest)
	p[0], p[1] = byte(sport>>8), byte(sport)
	p[2], p[3] = byte(dport>>8), byte(dport)
	return p
}

var (
	srcA = layers.IPAddr{10, 0, 0, 1}
	dstB = layers.IPAddr{10, 0, 0, 2}
)

// TestFrameKeyMatchesDecomposedKeys is the differential pin across every
// frame family — TCP, UDP, ICMP, fragments — over random inputs: the
// chunked FrameKey accumulation must equal the one-buffer control-plane
// twins (TupleKey / FragmentKey / ProtoKey). This is the unification
// bugfix's guarantee: any code placing flow state by tuple agrees with
// the engine routing frames by bytes.
func TestFrameKeyMatchesDecomposedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rndIP := func() layers.IPAddr {
		return layers.IPAddr{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	for i := 0; i < 500; i++ {
		src, dst := rndIP(), rndIP()
		sport, dport := uint16(rng.Intn(65536)), uint16(rng.Intn(65536))
		id := uint16(rng.Intn(65536))
		switch i % 4 {
		case 0: // TCP segment
			f := mkFrame(src, dst, layers.ProtoTCP, id, 0, 0, ports(sport, dport, rng.Intn(40)), nil)
			if got, want := FrameKey(f), TupleKey(src, dst, layers.ProtoTCP, sport, dport); got != want {
				t.Fatalf("TCP: FrameKey %#x != TupleKey %#x", got, want)
			}
		case 1: // UDP datagram
			f := mkFrame(src, dst, layers.ProtoUDP, id, 0, 0, ports(sport, dport, 4+rng.Intn(40)), nil)
			if got, want := FrameKey(f), TupleKey(src, dst, layers.ProtoUDP, sport, dport); got != want {
				t.Fatalf("UDP: FrameKey %#x != TupleKey %#x", got, want)
			}
		case 2: // ICMP (no ports)
			f := mkFrame(src, dst, layers.ProtoICMP, id, 0, 0, ports(sport, dport, rng.Intn(20)), nil)
			if got, want := FrameKey(f), ProtoKey(src, dst, layers.ProtoICMP); got != want {
				t.Fatalf("ICMP: FrameKey %#x != ProtoKey %#x", got, want)
			}
		case 3: // fragment (first or later, both key by IP ID)
			flags, off := byte(0x1), 0
			if rng.Intn(2) == 1 {
				flags, off = 0, 8*(1+rng.Intn(100))
			}
			proto := []byte{layers.ProtoTCP, layers.ProtoUDP, layers.ProtoICMP}[rng.Intn(3)]
			f := mkFrame(src, dst, proto, id, flags, off, ports(sport, dport, rng.Intn(40)), nil)
			if got, want := FrameKey(f), FragmentKey(src, dst, proto, id); got != want {
				t.Fatalf("frag: FrameKey %#x != FragmentKey %#x", got, want)
			}
		}
	}
}

// TestFrameKeyCanonicalizesMalformed pins the second bugfix: frames the
// decoder rejects before reading a transport header all collapse to one
// canonical key, regardless of the arbitrary bytes they carry — so two
// copies of a malformed frame differing only in padding can never land
// on different shards.
func TestFrameKeyCanonicalizesMalformed(t *testing.T) {
	want := FrameKey(nil)
	malformed := [][]byte{
		{},
		{1, 2, 3},
		make([]byte, layers.EthernetLen+layers.IPv4MinLen-1), // one byte short
		func() []byte { // truncated runt with noisy padding
			f := make([]byte, layers.EthernetLen+5)
			f[layers.EthernetLen] = 0x45
			f[len(f)-1] = 0xee
			return f
		}(),
		func() []byte { // bad IHL (< 20 bytes)
			f := mkFrame(srcA, dstB, layers.ProtoTCP, 1, 0, 0, ports(10, 20, 0), nil)
			f[layers.EthernetLen] = 0x44
			return f
		}(),
		func() []byte { // wrong IP version
			f := mkFrame(srcA, dstB, layers.ProtoTCP, 1, 0, 0, ports(10, 20, 0), nil)
			f[layers.EthernetLen] = 0x65
			return f
		}(),
	}
	for i, f := range malformed {
		if got := FrameKey(f); got != want {
			t.Errorf("malformed frame %d: key %#x, want canonical %#x", i, got, want)
		}
	}
}

// TestFrameKeyIgnoresLinkPadding: the port bytes are hashed only when
// TotalLen proves they are datagram content. A port-less datagram whose
// link padding happens to sit where ports would be must key exactly
// like the unpadded copy.
func TestFrameKeyIgnoresLinkPadding(t *testing.T) {
	bare := mkFrame(srcA, dstB, layers.ProtoUDP, 7, 0, 0, nil, nil)
	padded := mkFrame(srcA, dstB, layers.ProtoUDP, 7, 0, 0, nil, []byte{0x12, 0x34, 0x56, 0x78})
	if FrameKey(bare) != FrameKey(padded) {
		t.Error("link padding where ports would be changed the flow key")
	}
	// And a real ported frame is unaffected by padding after its payload.
	real := mkFrame(srcA, dstB, layers.ProtoUDP, 7, 0, 0, ports(10, 20, 4), nil)
	realPadded := mkFrame(srcA, dstB, layers.ProtoUDP, 7, 0, 0, ports(10, 20, 4), []byte{0xff, 0xff})
	if FrameKey(real) != FrameKey(realPadded) {
		t.Error("padding beyond TotalLen changed a ported frame's key")
	}
	if FrameKey(real) == FrameKey(bare) {
		t.Error("ported and port-less frames collided")
	}
}

// TestStaticShardMatchesModulo pins Static as the pre-policy behaviour.
func TestStaticShardMatchesModulo(t *testing.T) {
	var p Static
	for _, n := range []int{1, 2, 4, 7} {
		for key := uint64(0); key < 100; key++ {
			if p.Shard(key, n) != int(key%uint64(n)) {
				t.Fatalf("Static.Shard(%d, %d) != modulo", key, n)
			}
		}
	}
	if p.Rebalance([]int64{100, 0}) != nil {
		t.Error("Static.Rebalance returned migrations")
	}
}

// loadKeys drives count frames of bucket b through the policy.
func loadKeys(p *LoadAware, b uint64, count int, shards int) {
	for i := 0; i < count; i++ {
		p.Shard(b, shards) // key == bucket index when key < buckets
	}
}

func TestLoadAwareRebalanceMovesHotBuckets(t *testing.T) {
	p := NewLoadAware(4, 64)
	// Shard 0 holds an elephant bucket (0) and a mouse bucket (4); the
	// other shards carry light background load.
	loadKeys(p, 0, 900, 4)
	loadKeys(p, 4, 100, 4)
	loadKeys(p, 1, 50, 4)
	loadKeys(p, 2, 50, 4)
	loadKeys(p, 3, 50, 4)
	migs := p.Rebalance(nil)
	if len(migs) == 0 {
		t.Fatal("skewed load produced no migrations")
	}
	for _, mg := range migs {
		if mg.From == mg.To {
			t.Errorf("migration %+v moves nowhere", mg)
		}
		if !mg.Covers(mg.Bucket) {
			t.Errorf("migration %+v does not cover its own bucket", mg)
		}
		if mg.Covers(mg.Bucket + 1) {
			t.Errorf("migration %+v covers a neighbouring bucket", mg)
		}
		if int(p.table[mg.Bucket]) != mg.To {
			t.Errorf("table[%d] = %d after migration to %d", mg.Bucket, p.table[mg.Bucket], mg.To)
		}
	}
	// Balance must strictly improve: recompute per-shard totals under
	// the new table using the same loads.
	loads := map[uint64]int64{0: 900, 4: 100, 1: 50, 2: 50, 3: 50}
	per := make([]int64, 4)
	before := make([]int64, 4)
	for b, c := range loads {
		per[p.table[b]] += c
		before[b%4] += c
	}
	maxOf := func(v []int64) int64 {
		m := v[0]
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(per) >= maxOf(before) {
		t.Errorf("rebalance did not improve worst-shard load: %v -> %v", before, per)
	}
	// Counters reset after a full round.
	for b := range p.counts {
		if p.counts[b].Load() != 0 {
			t.Fatalf("bucket %d count not reset", b)
		}
	}
	if s := p.Stats(); s.Rebalances != 1 || s.BucketMoves != int64(len(migs)) {
		t.Errorf("stats = %+v, want 1 rebalance / %d moves", s, len(migs))
	}
}

func TestLoadAwareBelowWindowAccumulates(t *testing.T) {
	p := NewLoadAware(2, 16)
	loadKeys(p, 0, 40, 2) // below minFrames (64)
	if migs := p.Rebalance(nil); migs != nil {
		t.Fatalf("rebalance below the observation window moved %v", migs)
	}
	if p.counts[0].Load() != 40 {
		t.Error("short window reset the counts instead of accumulating")
	}
	loadKeys(p, 0, 60, 2) // now 100 total on one shard
	if migs := p.Rebalance(nil); len(migs) != 0 {
		// A single loaded bucket is the unsplittable elephant: moving it
		// cannot improve balance (destination would exceed source).
		t.Fatalf("unsplittable elephant was moved: %v", migs)
	}
}

func TestLoadAwareUnsplittableElephantStays(t *testing.T) {
	p := NewLoadAware(4, 64)
	loadKeys(p, 0, 1000, 4) // everything in one bucket
	if migs := p.Rebalance(nil); len(migs) != 0 {
		t.Fatalf("single-bucket elephant migrated: %+v", migs)
	}
}

func TestRPCDispatchKeysCallsByXID(t *testing.T) {
	const port = 2049
	p := NewRPCDispatch(port)
	rpcPayload := func(xid, typ uint32) []byte {
		pl := ports(5000, port, 12+8) // UDP header fields + 20-byte RPC header
		// UDP length/checksum left zero; the key reader only needs ports.
		hdr := pl[layers.UDPLen:]
		hdr[0], hdr[1], hdr[2], hdr[3] = byte(xid>>24), byte(xid>>16), byte(xid>>8), byte(xid)
		hdr[4], hdr[5], hdr[6], hdr[7] = byte(typ>>24), byte(typ>>16), byte(typ>>8), byte(typ)
		return pl
	}
	call1 := mkFrame(srcA, dstB, layers.ProtoUDP, 1, 0, 0, rpcPayload(100, 0), nil)
	call2 := mkFrame(srcA, dstB, layers.ProtoUDP, 2, 0, 0, rpcPayload(200, 0), nil)
	if p.Key(call1) == p.Key(call2) {
		t.Error("distinct XIDs on one flow keyed together — requests cannot spread")
	}
	if p.Key(call1) == FrameKey(call1) {
		t.Error("RPC call keyed like a plain frame — XID not folded in")
	}
	// Same XID keys stably.
	again := mkFrame(srcA, dstB, layers.ProtoUDP, 9, 0, 0, rpcPayload(100, 0), nil)
	if p.Key(call1) != p.Key(again) {
		t.Error("same XID keyed differently across frames")
	}
	// Everything that is not an unfragmented call to the port keys like
	// Static: replies, other ports, short payloads, fragments, TCP.
	statics := [][]byte{
		mkFrame(srcA, dstB, layers.ProtoUDP, 3, 0, 0, rpcPayload(300, 1), nil),  // reply, not a call
		mkFrame(srcA, dstB, layers.ProtoUDP, 4, 0, 0, ports(5000, 9999, 28), nil), // other port
		mkFrame(srcA, dstB, layers.ProtoUDP, 5, 0, 0, ports(5000, port, 4), nil),  // too short for the header
		mkFrame(srcA, dstB, layers.ProtoTCP, 6, 0, 0, ports(5000, port, 28), nil), // TCP
	}
	for i, f := range statics {
		if p.Key(f) != FrameKey(f) {
			t.Errorf("non-call frame %d was rekeyed", i)
		}
	}
	// Fragments must key by IP ID even when the first fragment carries a
	// complete, visible RPC call header — its siblings can't.
	frag := mkFrame(srcA, dstB, layers.ProtoUDP, 7, 0x1, 0, rpcPayload(400, 0), nil)
	if p.Key(frag) != FragmentKey(srcA, dstB, layers.ProtoUDP, 7) {
		t.Error("first fragment of an RPC call was keyed by XID — reassembly would split across shards")
	}
}

// fifoMsg is the FIFO property test's message: flow is the canonical
// flow key, alt a fragment-analog alternate key used on first injection
// (hop 0), seq the per-flow sequence number.
type fifoMsg struct {
	flow uint64
	alt  uint64
	seq  int
	hop  int
}

// TestLoadAwareFIFOUnderMigration is the property behind the migration
// design: per-flow FIFO order survives rebalancing because the routing
// table changes only at quiescent points. The schedule mirrors the
// netstack's: bursts of messages are injected (some under an alternate
// key first, then re-injected under the flow key by the worker — the
// reassembly reinject analog), the stack drains, the policy rebalances,
// repeat. Every flow's directly-injected sequence and re-injected
// sequence must each come out strictly increasing at the recording
// layer, no matter how many buckets moved. Run under -race, this also
// checks the table-write/worker-read hand-off.
func TestLoadAwareFIFOUnderMigration(t *testing.T) {
	const shards, flows, bursts, perBurst = 4, 8, 30, 40
	pol := NewLoadAware(shards, 64)

	var mu sync.Mutex
	direct := make(map[uint64][]int)
	reinjected := make(map[uint64][]int)

	var s *core.ShardedStack[*fifoMsg]
	s = core.NewShardedStack(core.Options{Discipline: core.LDLP, Shards: shards},
		func(m *fifoMsg) uint64 {
			if m.hop == 0 && m.alt != 0 {
				return m.alt
			}
			return m.flow
		},
		func(shard int, st *core.Stack[*fifoMsg]) {
			l := st.AddLayer("record", func(m *fifoMsg, emit core.Emit[*fifoMsg]) {
				if m.hop == 0 && m.alt != 0 {
					// Reassembly-reinject analog: completed on the alt-key
					// shard, handed to the flow-key shard via Inject.
					m.hop = 1
					if err := s.Inject(m); err != nil {
						t.Errorf("reinject: %v", err)
					}
					return
				}
				mu.Lock()
				if m.alt != 0 {
					reinjected[m.flow] = append(reinjected[m.flow], m.seq)
				} else {
					direct[m.flow] = append(direct[m.flow], m.seq)
				}
				mu.Unlock()
			})
			_ = l
		})
	s.SetRoute(pol.Shard)
	defer s.Close()

	rng := rand.New(rand.NewSource(7))
	seqs := make([]int, flows)
	for burst := 0; burst < bursts; burst++ {
		for i := 0; i < perBurst; i++ {
			// Zipf-ish skew: flow 0 gets half the traffic, so the policy
			// has a hot bucket to chase.
			f := 0
			if rng.Intn(2) == 1 {
				f = 1 + rng.Intn(flows-1)
			}
			m := &fifoMsg{flow: uint64(f)*7919 + 1, seq: seqs[f]}
			seqs[f]++
			if rng.Intn(5) == 0 {
				m.alt = uint64(f)*104729 + 31 // fragment-analog alternate key
			}
			if err := s.Inject(m); err != nil {
				t.Fatalf("inject: %v", err)
			}
		}
		s.Drain() // quiescent point ...
		pol.Rebalance(nil)
		// ... where the table may have been rewritten; next burst routes
		// through the new mapping.
	}
	s.Drain()

	if pol.Stats().BucketMoves == 0 {
		t.Fatal("no buckets migrated — the property was not exercised")
	}
	check := func(kind string, got map[uint64][]int) {
		for flow, seq := range got {
			for i := 1; i < len(seq); i++ {
				if seq[i] <= seq[i-1] {
					t.Fatalf("%s flow %#x reordered at %d: %v", kind, flow, i, seq[i-1:i+1])
				}
			}
		}
	}
	check("direct", direct)
	check("reinjected", reinjected)
}

// TestLoadAwareShardBoundsDefensive: a policy built for more shards than
// the engine has must still return valid indices.
func TestLoadAwareShardBoundsDefensive(t *testing.T) {
	p := NewLoadAware(8, 32)
	for key := uint64(0); key < 64; key++ {
		if s := p.Shard(key, 2); s < 0 || s >= 2 {
			t.Fatalf("Shard(%d, 2) = %d out of range", key, s)
		}
	}
}

func ExampleStatic() {
	var p Static
	f := mkFrame(layers.IPAddr{10, 0, 0, 1}, layers.IPAddr{10, 0, 0, 2},
		layers.ProtoTCP, 1, 0, 0, ports(1234, 80, 16), nil)
	fmt.Println(p.Name(), p.Shard(p.Key(f), 4) < 4)
	// Output: static true
}

// TestPoliciesHotPathAllocFree pins the acceptance bar directly: keying
// and sharding a frame allocates nothing, for every policy.
func TestPoliciesHotPathAllocFree(t *testing.T) {
	frame := mkFrame(srcA, dstB, layers.ProtoUDP, 3, 0, 0, ports(1234, 2049, 28), nil)
	policies := []Policy{Static{}, NewLoadAware(4, 64), NewRPCDispatch(2049)}
	for _, p := range policies {
		p := p
		if n := testing.AllocsPerRun(200, func() {
			key := p.Key(frame)
			if p.Shard(key, 4) > 3 {
				t.Fail()
			}
		}); n != 0 {
			t.Errorf("%s: %.1f allocs per Key+Shard, want 0", p.Name(), n)
		}
	}
}
