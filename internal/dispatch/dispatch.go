// Package dispatch is the programmable receive-side dispatch layer for
// the sharded LDLP engine: it decides which worker shard a frame's flow
// runs on. The paper's engine assumes work arrives evenly at the
// batching layer; a static flow hash breaks that assumption under
// skewed traffic (one elephant flow pins a shard at 100% while the
// others idle). Following the NIC receive-side-dispatching line of work
// (see PAPERS.md), the mapping is a pluggable Policy instead of a
// hard-wired hash:
//
//   - Static is the classic RSS mapping (flow key modulo shard count) —
//     exactly the behaviour the netstack had before this package.
//   - RPCDispatch spreads a UDP RPC service's independent requests
//     across shards by XID, so one busy client/server pair no longer
//     serializes on a single worker.
//   - LoadAware adds a small bucket indirection table and bounded
//     rebalancing: hot buckets detected from per-shard load are
//     re-homed to cold shards at quiescent points.
//
// Every policy derives its flow key through the canonical builders in
// this file (FrameKey and its decomposed twins TupleKey / FragmentKey /
// ProtoKey), which are the single source of truth for key derivation:
// the netstack's control plane (where DialTCP plants a PCB) and data
// plane (where the engine routes a frame) call the same code, so they
// cannot silently desynchronize.
//
// Concurrency contract: Key and Shard run on the hot path from any
// goroutine (the pump and, for re-injected datagrams, shard workers)
// and must not allocate. Rebalance runs only at quiescent points — no
// worker processing, no concurrent Key/Shard except from the caller —
// which is when LoadAware rewrites its indirection table; later readers
// observe the writes through the engine's channel hand-off.
package dispatch

import (
	"sync/atomic"

	"ldlp/internal/core"
	"ldlp/internal/layers"
)

// Migration is one bucket re-homing decision returned by Rebalance:
// every flow whose key satisfies Covers moves From -> To. The caller
// (the netstack pump) applies it at a quiescent point by moving the
// covered flows' transport state, which keeps the shardaffinity
// ownership story intact across the move.
type Migration struct {
	// Bucket and Mask define the covered key set: key & Mask == Bucket.
	Bucket uint64
	Mask   uint64
	// From and To are shard indices.
	From, To int
}

// Covers reports whether a flow key is re-homed by this migration.
func (m Migration) Covers(key uint64) bool { return key&m.Mask == m.Bucket }

// Policy maps frames to shards. Implementations must be used by one
// host only (LoadAware carries per-host routing state).
type Policy interface {
	// Name labels the policy in stats, figures and benchmarks.
	Name() string
	// Key maps a raw Ethernet frame to its flow key. Hot path: called
	// once per frame, must not allocate.
	Key(frame []byte) uint64
	// Shard maps a flow key to a shard index in [0, n). Hot path.
	Shard(key uint64, n int) int
	// Rebalance is the policy's chance to re-home flows, called at a
	// quiescent point. loads, when non-nil, holds each shard's frames
	// processed since the previous call (the engine's per-shard
	// telemetry counters). Policies with no dynamic state return nil.
	Rebalance(loads []int64) []Migration
}

// hashByte folds one byte into an FNV-1a accumulation (the byte-wise
// twin of core.HashBytes, so chunked and whole-buffer hashing agree).
//
//ldlp:hotpath
func hashByte(h uint64, b byte) uint64 {
	var one [1]byte
	one[0] = b
	return core.HashBytes(h, one[:])
}

// malformedKey is the canonical key for frames the IP layer will reject
// before reading a transport header: too short for an IP header, not
// IPv4, or an impossible IHL. Hashing such frames over their raw bytes
// (the old rxFlowHash behaviour) let two copies of the same malformed
// frame land on different shards when link padding differed; a constant
// key pins them all to one shard, and since every shard rejects them
// identically the choice is behaviour-free.
func malformedKey() uint64 { return core.HashSeed() }

// FrameKey maps a raw Ethernet frame to its flow key: IP src/dst +
// protocol, plus the TCP/UDP port pair for unfragmented transport
// segments (one connection, one shard, segment order preserved) or the
// IP ID for fragments (one datagram reassembles on one shard). Only
// bytes the decoder will actually inspect are hashed: malformed frames
// collapse to one canonical key, and the port bytes are used only when
// TotalLen proves they are datagram content rather than link padding.
//
//ldlp:hotpath
func FrameKey(data []byte) uint64 {
	if len(data) < layers.EthernetLen+layers.IPv4MinLen {
		return malformedKey()
	}
	ip := data[layers.EthernetLen:]
	if ip[0]>>4 != 4 {
		return malformedKey()
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < layers.IPv4MinLen {
		return malformedKey()
	}
	proto := ip[9]
	h := core.HashBytes(core.HashSeed(), ip[12:20]) // src + dst address
	h = hashByte(h, proto)
	ff := uint16(ip[6])<<8 | uint16(ip[7])
	if ff&0x3fff != 0 { // MF bit or nonzero fragment offset
		return core.HashBytes(h, ip[4:6]) // IP ID
	}
	totalLen := int(ip[2])<<8 | int(ip[3])
	if (proto == layers.ProtoTCP || proto == layers.ProtoUDP) &&
		len(ip) >= ihl+4 && totalLen >= ihl+4 {
		return core.HashBytes(h, ip[ihl:ihl+4]) // src + dst port
	}
	return h
}

// TupleKey is the control-plane twin of FrameKey for an unfragmented
// transport flow: it hashes exactly the byte sequence an inbound
// segment of that flow carries on the wire (peer address, local
// address, protocol, then the peer's source port and the local port in
// wire order). FNV-1a consumes bytes one at a time, so one 13-byte
// buffer here equals FrameKey's chunked accumulation — pinned by
// netstack's TestTupleShardMatchesRxFlowHash.
func TupleKey(raddr, laddr layers.IPAddr, proto byte, rport, lport uint16) uint64 {
	var b [13]byte
	copy(b[0:4], raddr[:])
	copy(b[4:8], laddr[:])
	b[8] = proto
	b[9], b[10] = byte(rport>>8), byte(rport)
	b[11], b[12] = byte(lport>>8), byte(lport)
	return core.HashBytes(core.HashSeed(), b[:])
}

// ProtoKey is FrameKey's value for a port-less flow (ICMP, unknown
// protocols): IP src/dst + protocol.
func ProtoKey(src, dst layers.IPAddr, proto byte) uint64 {
	h := core.HashBytes(core.HashSeed(), src[:])
	h = core.HashBytes(h, dst[:])
	return hashByte(h, proto)
}

// FragmentKey is FrameKey's value for a fragment: IP src/dst +
// protocol + the 16-bit IP ID, so every fragment of one datagram — and
// the reassembly state holding its pieces — keys identically.
func FragmentKey(src, dst layers.IPAddr, proto byte, id uint16) uint64 {
	h := ProtoKey(src, dst, proto)
	var b [2]byte
	b[0], b[1] = byte(id>>8), byte(id)
	return core.HashBytes(h, b[:])
}

// Static is the pre-policy behaviour: canonical flow key, modulo shard
// count, never rebalances. The zero value is ready to use.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Key implements Policy.
//
//ldlp:hotpath
func (Static) Key(frame []byte) uint64 { return FrameKey(frame) }

// Shard implements Policy.
//
//ldlp:hotpath
func (Static) Shard(key uint64, n int) int { return int(key % uint64(n)) }

// Rebalance implements Policy (static policies never migrate).
func (Static) Rebalance([]int64) []Migration { return nil }

// DefaultBuckets sizes LoadAware's indirection table when the caller
// passes 0: enough buckets that one hot flow shares its bucket with few
// bystanders, small enough that the table and counters stay cache-sized.
const DefaultBuckets = 256

// LoadAware routes through a bucket indirection table (key & mask ->
// shard) and re-homes hot buckets at rebalance points: the hottest
// shard sheds its largest movable buckets to the coldest shard until
// balance or the per-round migration bound is reached. A bucket whose
// single flow alone exceeds the imbalance (the unsplittable elephant)
// is never moved back and forth — a move must strictly improve balance.
//
// The table is written only inside Rebalance (a quiescent point) and
// read lock-free by Shard; the per-bucket counters are atomic because
// re-injected datagrams route from worker goroutines concurrently with
// the pump.
type LoadAware struct {
	shards int
	mask   uint64
	table  []int32
	counts []atomic.Int64

	// maxMoves bounds migrations per rebalance round (bounded work
	// stealing: each move costs a flow-state walk at quiescence).
	maxMoves int
	// threshold triggers rebalancing when the hottest shard's load
	// exceeds threshold x the mean.
	threshold float64
	// minFrames is the observation window: below it the round is
	// skipped and counts keep accumulating.
	minFrames int64

	rebalances int64 // rounds that moved at least one bucket
	moves      int64 // total buckets re-homed
}

// LoadAwareStats reports a LoadAware policy's rebalancing activity.
type LoadAwareStats struct {
	Rebalances  int64 `json:"rebalances"`
	BucketMoves int64 `json:"bucketMoves"`
}

// NewLoadAware builds a load-aware policy for a host with the given
// shard count. buckets (rounded up to a power of two, 0 selecting
// DefaultBuckets) sizes the indirection table.
func NewLoadAware(shards, buckets int) *LoadAware {
	if shards < 1 {
		shards = 1
	}
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	n := 1
	for n < buckets || n < shards {
		n <<= 1
	}
	p := &LoadAware{
		shards:    shards,
		mask:      uint64(n - 1),
		table:     make([]int32, n),
		counts:    make([]atomic.Int64, n),
		maxMoves:  8,
		threshold: 1.25,
		minFrames: 64,
	}
	for b := range p.table {
		p.table[b] = int32(b % shards)
	}
	return p
}

// Name implements Policy.
func (p *LoadAware) Name() string { return "load-aware" }

// Key implements Policy.
//
//ldlp:hotpath
func (p *LoadAware) Key(frame []byte) uint64 { return FrameKey(frame) }

// Shard implements Policy: indirection-table lookup plus the per-bucket
// load count the next Rebalance reads.
//
//ldlp:hotpath
func (p *LoadAware) Shard(key uint64, n int) int {
	b := key & p.mask
	p.counts[b].Add(1)
	s := int(p.table[b])
	if s >= n {
		// Defensive: a policy built for more shards than the engine has
		// must still return a valid index.
		s %= n
	}
	return s
}

// Stats reports rebalancing activity. Read at quiescence, like the
// netstack counters.
func (p *LoadAware) Stats() LoadAwareStats {
	return LoadAwareStats{Rebalances: p.rebalances, BucketMoves: p.moves}
}

// Rebalance implements Policy. Per-shard totals come from the engine's
// observed loads when provided (the per-shard telemetry counters);
// per-bucket attribution always comes from the policy's own dispatch
// counts. Both count frames over the same window, so the greedy
// improvement test below can mix them. The counter window resets every
// round that reaches minFrames. Pump-side at quiescence, like every
// Rebalance implementation: it rewrites the routing table the workers'
// Shard calls read.
//
//ldlp:quiescent
func (p *LoadAware) Rebalance(loads []int64) []Migration {
	bc := make([]int64, len(p.counts))
	var total int64
	for b := range p.counts {
		bc[b] = p.counts[b].Load()
		total += bc[b]
	}
	if total < p.minFrames {
		return nil // window too small to judge; keep accumulating
	}
	per := make([]int64, p.shards)
	if len(loads) == p.shards {
		copy(per, loads)
	} else {
		for b, c := range bc {
			per[p.table[b]] += c
		}
	}
	var migs []Migration
	for len(migs) < p.maxMoves {
		hot, cold := 0, 0
		for s := 1; s < p.shards; s++ {
			if per[s] > per[hot] {
				hot = s
			}
			if per[s] < per[cold] {
				cold = s
			}
		}
		mean := total / int64(p.shards)
		if float64(per[hot]) <= p.threshold*float64(mean+1) {
			break // balanced enough
		}
		// Largest bucket on the hot shard whose move strictly improves
		// balance (the destination must end below the source's start).
		best, bestC := -1, int64(0)
		for b := range bc {
			if int(p.table[b]) != hot || bc[b] == 0 {
				continue
			}
			if bc[b] < per[hot]-per[cold] && bc[b] > bestC {
				best, bestC = b, bc[b]
			}
		}
		if best < 0 {
			break // nothing movable (an unsplittable elephant remains)
		}
		p.table[best] = int32(cold)
		per[hot] -= bestC
		per[cold] += bestC
		migs = append(migs, Migration{Bucket: uint64(best), Mask: p.mask, From: hot, To: cold})
	}
	for b := range p.counts {
		p.counts[b].Store(0)
	}
	if len(migs) > 0 {
		p.rebalances++
		p.moves += int64(len(migs))
	}
	return migs
}

// RPCDispatch is application-defined dispatch for a UDP RPC service
// (internal/rpc's Sun-RPC-style protocol): call messages to the given
// server port key by XID instead of by connection, so independent
// requests from one busy client spread across every shard. All other
// traffic — replies, other ports, fragments, non-RPC frames — keys
// exactly like Static, so TCP affinity and reassembly routing are
// untouched.
type RPCDispatch struct {
	port uint16
}

// NewRPCDispatch builds the policy for the RPC server bound to port.
func NewRPCDispatch(port uint16) *RPCDispatch { return &RPCDispatch{port: port} }

// Name implements Policy.
func (p *RPCDispatch) Name() string { return "rpc-xid" }

// rpcXID extracts the XID from an unfragmented UDP RPC call to the
// policy's port, reporting ok=false for everything else. Fragments are
// rejected even when the first fragment carries the header: every
// fragment of one datagram must key by IP ID or reassembly breaks.
//
//ldlp:hotpath
func (p *RPCDispatch) rpcXID(data []byte) (uint32, bool) {
	if len(data) < layers.EthernetLen+layers.IPv4MinLen {
		return 0, false
	}
	ip := data[layers.EthernetLen:]
	if ip[0]>>4 != 4 || ip[9] != layers.ProtoUDP {
		return 0, false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < layers.IPv4MinLen {
		return 0, false
	}
	if ff := uint16(ip[6])<<8 | uint16(ip[7]); ff&0x3fff != 0 {
		return 0, false // fragment: must key by IP ID
	}
	totalLen := int(ip[2])<<8 | int(ip[3])
	// The RPC header is xid(4) type(4) prog(4) proc(4) status(4) at the
	// start of the UDP payload; we need the first 8 bytes (xid + type),
	// proven to be datagram content by TotalLen and present in the frame.
	need := ihl + layers.UDPLen + 8
	if totalLen < need || len(ip) < need {
		return 0, false
	}
	udp := ip[ihl:]
	if dstPort := uint16(udp[2])<<8 | uint16(udp[3]); dstPort != p.port {
		return 0, false
	}
	pay := udp[layers.UDPLen:]
	typ := uint32(pay[4])<<24 | uint32(pay[5])<<16 | uint32(pay[6])<<8 | uint32(pay[7])
	if typ != 0 { // not a call
		return 0, false
	}
	return uint32(pay[0])<<24 | uint32(pay[1])<<16 | uint32(pay[2])<<8 | uint32(pay[3]), true
}

// Key implements Policy: the canonical flow key, with the XID folded in
// for RPC calls so each request gets its own key.
//
//ldlp:hotpath
func (p *RPCDispatch) Key(frame []byte) uint64 {
	h := FrameKey(frame)
	if xid, ok := p.rpcXID(frame); ok {
		var b [4]byte
		b[0], b[1] = byte(xid>>24), byte(xid>>16)
		b[2], b[3] = byte(xid>>8), byte(xid)
		h = core.HashBytes(h, b[:])
	}
	return h
}

// Shard implements Policy.
//
//ldlp:hotpath
func (p *RPCDispatch) Shard(key uint64, n int) int { return int(key % uint64(n)) }

// Rebalance implements Policy.
func (p *RPCDispatch) Rebalance([]int64) []Migration { return nil }
