package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// shardMsg is the unit used by the sharded-engine tests: flow selects the
// shard, seq orders messages within the flow.
type shardMsg struct {
	flow int
	seq  int
}

func shardHash(m shardMsg) uint64 { return uint64(m.flow) }

// buildShardChain adds an n-layer pass-through chain to one shard's
// stack (every message traverses all layers, then leaves the top).
func buildShardChain(n int) func(int, *Stack[shardMsg]) {
	return func(_ int, s *Stack[shardMsg]) {
		layers := make([]*Layer[shardMsg], n)
		for i := 0; i < n; i++ {
			i := i
			layers[i] = s.AddLayer(fmt.Sprintf("L%d", i+1), func(m shardMsg, emit Emit[shardMsg]) {
				if i+1 < n {
					emit(s.Layers()[i+1], m)
				} else {
					emit(nil, m)
				}
			})
		}
		for i := 0; i+1 < n; i++ {
			s.Link(layers[i], layers[i+1])
		}
	}
}

func TestShardedDeliversAllPreservingFlowOrder(t *testing.T) {
	const flows, perFlow = 8, 200
	s := NewShardedStack(Options{Discipline: LDLP, Shards: 4, BatchLimit: 14},
		shardHash, buildShardChain(3))
	defer s.Close()

	got := make(map[int][]int)
	s.SetSink(func(m shardMsg) { got[m.flow] = append(got[m.flow], m.seq) })

	for seq := 0; seq < perFlow; seq++ {
		for f := 0; f < flows; f++ {
			if err := s.Inject(shardMsg{flow: f, seq: seq}); err != nil {
				t.Fatalf("Inject(%d,%d): %v", f, seq, err)
			}
		}
	}
	s.Drain()

	for f := 0; f < flows; f++ {
		if len(got[f]) != perFlow {
			t.Fatalf("flow %d delivered %d messages, want %d", f, len(got[f]), perFlow)
		}
		for i, seq := range got[f] {
			if seq != i {
				t.Fatalf("flow %d reordered: position %d has seq %d", f, i, seq)
			}
		}
	}

	st := s.Stats()
	if st.Delivered != flows*perFlow {
		t.Errorf("Stats.Delivered = %d, want %d", st.Delivered, flows*perFlow)
	}
	if st.Processed != 3*flows*perFlow {
		t.Errorf("Stats.Processed = %d, want %d", st.Processed, 3*flows*perFlow)
	}
	if st.Dropped != 0 {
		t.Errorf("Stats.Dropped = %d, want 0", st.Dropped)
	}
	// Per-shard stats must sum to the aggregate (valid after Drain).
	var sum int64
	for i := 0; i < s.NumShards(); i++ {
		sum += s.ShardStats(i).Delivered
	}
	if sum != st.Delivered {
		t.Errorf("shard Delivered sum = %d, aggregate = %d", sum, st.Delivered)
	}
}

func TestShardedDropTailCountsMatchInjectErrors(t *testing.T) {
	// One flow, tiny buffer, a burst far beyond it: every ErrStackFull
	// must be mirrored in Stats.Dropped, and accepted = delivered.
	s := NewShardedStack(Options{Discipline: LDLP, Shards: 2, MaxQueued: 8},
		shardHash, buildShardChain(2))
	defer s.Close()
	var delivered atomic.Int64
	s.SetSink(func(shardMsg) { delivered.Add(1) })

	const burst = 5000
	errs := 0
	for i := 0; i < burst; i++ {
		if err := s.Inject(shardMsg{flow: 1, seq: i}); err != nil {
			if err != ErrStackFull {
				t.Fatalf("Inject error = %v, want ErrStackFull", err)
			}
			errs++
		}
	}
	s.Drain()
	st := s.Stats()
	if int(st.Dropped) != errs {
		t.Errorf("Stats.Dropped = %d, Inject errors = %d", st.Dropped, errs)
	}
	if int(st.Delivered) != burst-errs {
		t.Errorf("Delivered = %d, accepted = %d", st.Delivered, burst-errs)
	}
	if errs == 0 {
		t.Error("expected some drops with MaxQueued=8 and a 5000-message burst")
	}
}

func TestShardedSingleShardMatchesPlainStack(t *testing.T) {
	// Shards<=1 must behave exactly like the single-threaded engine on
	// one flow: same deliveries, same processed count.
	plain, _ := buildChain(4, Options{Discipline: LDLP, BatchLimit: 5})
	var plainOut []int
	plain.SetSink(func(m int) { plainOut = append(plainOut, m) })
	for i := 0; i < 50; i++ {
		plain.Inject(i)
	}
	plain.Run()

	sh := NewShardedStack(Options{Discipline: LDLP, BatchLimit: 5},
		shardHash, buildShardChain(4))
	defer sh.Close()
	var shOut []int
	sh.SetSink(func(m shardMsg) { shOut = append(shOut, m.seq) })
	for i := 0; i < 50; i++ {
		sh.Inject(shardMsg{flow: 7, seq: i})
	}
	sh.Drain()

	if fmt.Sprint(plainOut) != fmt.Sprint(shOut) {
		t.Errorf("single-shard deliveries %v != plain stack %v", shOut, plainOut)
	}
	if p, q := plain.Stats().Processed, sh.Stats().Processed; p != q {
		t.Errorf("Processed: plain %d, sharded %d", p, q)
	}
}

func TestShardedConventionalDiscipline(t *testing.T) {
	// The sharded engine also runs call-through disciplines per shard
	// (used by the equivalence suite).
	s := NewShardedStack(Options{Discipline: Conventional, Shards: 3},
		shardHash, buildShardChain(2))
	defer s.Close()
	var n atomic.Int64
	s.SetSink(func(shardMsg) { n.Add(1) })
	for i := 0; i < 30; i++ {
		s.Inject(shardMsg{flow: i % 5, seq: i / 5})
	}
	s.Drain()
	if n.Load() != 30 {
		t.Errorf("delivered %d, want 30", n.Load())
	}
}

func TestShardedCloseProcessesQueuedInput(t *testing.T) {
	s := NewShardedStack(Options{Discipline: LDLP, Shards: 2},
		shardHash, buildShardChain(2))
	var n atomic.Int64
	s.SetSink(func(shardMsg) { n.Add(1) })
	for i := 0; i < 100; i++ {
		s.Inject(shardMsg{flow: i, seq: 0})
	}
	s.Close()
	s.Close() // idempotent
	if n.Load() != 100 {
		t.Errorf("delivered %d before Close returned, want 100", n.Load())
	}
}

// TestShardedConcurrentInjectStress is the race-detector workout: many
// goroutines inject disjoint flows while the merger drains, with Stats
// and Pending polled concurrently. Run with `make test-race`.
func TestShardedConcurrentInjectStress(t *testing.T) {
	const (
		injectors = 8
		perInj    = 2000
	)
	s := NewShardedStack(Options{Discipline: LDLP, Shards: 4, BatchLimit: 14},
		shardHash, buildShardChain(5))
	defer s.Close()

	type key struct{ flow, seq int }
	seen := make(map[key]bool)
	lastSeq := make(map[int]int)
	ordered := true
	s.SetSink(func(m shardMsg) {
		seen[key{m.flow, m.seq}] = true
		if last, ok := lastSeq[m.flow]; ok && m.seq <= last {
			ordered = false
		}
		lastSeq[m.flow] = m.seq
	})

	var wg sync.WaitGroup
	var accepted atomic.Int64
	for g := 0; g < injectors; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perInj; i++ {
				// Disjoint flows per injector keep per-flow order checkable.
				if s.Inject(shardMsg{flow: g*4 + i%4, seq: i}) == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	// Concurrent observers.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	obs.Add(1)
	go func() {
		defer obs.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Stats()
				_ = s.Pending()
			}
		}
	}()
	wg.Wait()
	s.Drain()
	close(stop)
	obs.Wait()

	if got := int64(len(seen)); got != accepted.Load() {
		t.Errorf("unique deliveries %d != accepted %d", got, accepted.Load())
	}
	if !ordered {
		t.Error("per-flow delivery order violated")
	}
	if d := s.Stats().Delivered; d != accepted.Load() {
		t.Errorf("Stats.Delivered = %d, accepted = %d", d, accepted.Load())
	}
}

func TestBuildShardedStackFromGraph(t *testing.T) {
	spec := `
		device > ether > ip
		ip > tcp, udp
		tcp > app
		udp > app
	`
	var mu sync.Mutex
	perShardDelivered := make(map[int]int)
	var maps []map[string]*Layer[shardMsg]
	s, byShard, err := BuildShardedStack[shardMsg](Options{Discipline: LDLP, Shards: 2}, spec,
		shardHash, func(shard int) map[string]Handler[shardMsg] {
			up := func(name string, final bool) Handler[shardMsg] {
				return func(m shardMsg, emit Emit[shardMsg]) {
					if final {
						mu.Lock()
						perShardDelivered[shard]++
						mu.Unlock()
						emit(nil, m)
						return
					}
					emit(maps[shard][name], m)
				}
			}
			return map[string]Handler[shardMsg]{
				"device": up("ether", false),
				"ether":  up("ip", false),
				"ip": func(m shardMsg, emit Emit[shardMsg]) {
					if m.flow%2 == 0 {
						emit(maps[shard]["tcp"], m)
					} else {
						emit(maps[shard]["udp"], m)
					}
				},
				"tcp": up("app", false),
				"udp": up("app", false),
				"app": up("", true),
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	maps = byShard
	defer s.Close()
	for i := 0; i < 40; i++ {
		s.Inject(shardMsg{flow: i % 4, seq: i / 4})
	}
	s.Drain()
	if d := s.Stats().Delivered; d != 40 {
		t.Fatalf("Delivered = %d, want 40", d)
	}
	mu.Lock()
	total := perShardDelivered[0] + perShardDelivered[1]
	mu.Unlock()
	if total != 40 {
		t.Errorf("per-shard handler deliveries = %d, want 40", total)
	}
	if len(byShard) != 2 || byShard[0]["device"] == nil || byShard[1]["app"] == nil {
		t.Error("BuildShardedStack layer maps incomplete")
	}
}

func TestBuildShardedStackRejectsBadSpecs(t *testing.T) {
	_, _, err := BuildShardedStack[shardMsg](Options{Shards: 2}, "a > b > a", shardHash,
		func(int) map[string]Handler[shardMsg] { return nil })
	if err == nil {
		t.Error("cycle accepted")
	}
	_, _, err = BuildShardedStack[shardMsg](Options{Shards: 2}, "a > b", shardHash,
		func(int) map[string]Handler[shardMsg] {
			return map[string]Handler[shardMsg]{"a": func(m shardMsg, e Emit[shardMsg]) {}}
		})
	if err == nil {
		t.Error("missing handler accepted")
	}
}

func TestHashBytes(t *testing.T) {
	a := HashBytes(HashSeed(), []byte("flow-a"))
	b := HashBytes(HashSeed(), []byte("flow-b"))
	if a == b {
		t.Error("distinct keys hashed equal")
	}
	if a != HashBytes(HashSeed(), []byte("flow-a")) {
		t.Error("hash not deterministic")
	}
}
