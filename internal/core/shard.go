// Sharded LDLP: the paper's engine runs on one processor — its batching
// rule keeps *layer code* cache-resident on that one core. A modern
// machine has many cores, each with its own primary caches, so the
// natural extension (receive-side scaling in NICs, FlexTOE-style
// pipeline parallelism) is to partition messages across cores by *flow*
// and run an independent LDLP schedule per core: every shard keeps the
// paper's per-layer locality, and flows never migrate, so per-flow
// ordering is preserved without cross-core synchronisation on the hot
// path.
//
// ShardedStack implements that: N single-threaded Stacks, one per worker
// goroutine, fed through per-shard bounded input queues by a caller-
// supplied flow hash, with deliveries merged through one bounded output
// queue so the caller's Sink runs serialized, exactly as with a plain
// Stack. Engine Stats are aggregated atomically from per-shard deltas.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ldlp/internal/telemetry"
)

// defaultShardQueue bounds a shard's input queue when Options.MaxQueued
// is 0 (channels cannot be unbounded; this is deep enough that only a
// pathological burst hits it).
const defaultShardQueue = 4096

// ShardedStack partitions messages across Shards independent Stacks by a
// flow hash, runs each under its own worker goroutine, and merges
// deliveries through a bounded output queue.
//
// Concurrency contract:
//
//   - Inject is safe from any number of goroutines.
//   - The Sink runs on a single merger goroutine; it is never called
//     concurrently with itself. SetSink must be called before the first
//     Inject.
//   - Messages of the same flow (equal hash) are processed by one shard
//     in injection order and delivered in that order; ordering across
//     flows is unspecified.
//   - Drain blocks until every accepted message has been fully processed
//     and its deliveries have left the Sink.
//   - Close shuts the workers down (processing anything still queued);
//     Inject after Close panics.
type ShardedStack[M any] struct {
	opts  Options
	hash  func(M) uint64
	route func(key uint64, shards int) int

	shards []*shard[M]
	out    chan M
	sink   Sink[M]

	// pending counts messages accepted by Inject whose processing has
	// not yet completed; outPending counts deliveries handed to the
	// output queue but not yet through the Sink. Drain waits for both to
	// reach zero.
	pending    atomic.Int64
	outPending atomic.Int64
	dropped    atomic.Int64

	// Aggregated engine counters, updated atomically by workers after
	// each processing round (per-shard deltas).
	queueOps     atomic.Int64
	processed    atomic.Int64
	delivered    atomic.Int64
	rounds       atomic.Int64
	largestBatch atomic.Int64

	workerWG sync.WaitGroup
	mergerWG sync.WaitGroup
	closed   sync.Once
}

// shard is one worker's private engine: a single-threaded Stack plus the
// bounded input queue feeding it.
type shard[M any] struct {
	stack *Stack[M]
	in    chan M
	// prev is the last published Stats snapshot (worker-local).
	prev Stats
}

// NewShardedStack creates a sharded stack with opts.Shards workers (0 or
// 1 means one shard — still concurrent with the caller, but with no
// cross-shard parallelism). hash maps a message to its flow; messages
// with equal hash values are guaranteed per-flow FIFO processing. build
// is called once per shard to add layers and links to that shard's
// private Stack, exactly as with NewStack; it must not call SetSink (the
// sharded stack owns the per-shard sinks).
//
// Options.MaxQueued bounds the messages buffered across all shards
// (drop-tail at Inject, like the paper's 500-packet buffer), divided
// evenly among the per-shard input queues. Options.BatchLimit applies
// per shard.
func NewShardedStack[M any](opts Options, hash func(M) uint64, build func(shard int, s *Stack[M])) *ShardedStack[M] {
	if hash == nil {
		panic("core: NewShardedStack requires a flow hash")
	}
	if build == nil {
		panic("core: NewShardedStack requires a shard builder")
	}
	n := opts.Shards
	if n <= 0 {
		n = 1
	}
	perShard := defaultShardQueue
	if opts.MaxQueued > 0 {
		perShard = (opts.MaxQueued + n - 1) / n
	}
	outBound := perShard
	s := &ShardedStack[M]{
		opts:   opts,
		hash:   hash,
		shards: make([]*shard[M], n),
		out:    make(chan M, outBound),
	}
	inner := opts
	inner.Shards = 0
	inner.MaxQueued = 0 // intake is bounded by the shard input queues
	for i := 0; i < n; i++ {
		st := NewStack[M](inner)
		build(i, st)
		st.SetSink(func(m M) {
			s.outPending.Add(1)
			s.out <- m
		})
		sh := &shard[M]{stack: st, in: make(chan M, perShard)}
		s.shards[i] = sh
		s.workerWG.Add(1)
		go s.worker(sh)
	}
	s.mergerWG.Add(1)
	go s.merger()
	return s
}

// NumShards reports the shard count.
func (s *ShardedStack[M]) NumShards() int { return len(s.shards) }

// SetSink installs the receiver for messages leaving any shard's stack
// top. It runs on the merger goroutine, never concurrently with itself.
// Must be called before the first Inject.
func (s *ShardedStack[M]) SetSink(fn Sink[M]) { s.sink = fn }

// SetRoute installs a key-to-shard routing function, replacing the
// default modulo mapping. fn receives the flow key produced by the hash
// and the shard count, and must return an index in [0, n). Like SetSink
// it must be called before the first Inject; fn itself must be safe for
// concurrent use (Inject may run from many goroutines).
func (s *ShardedStack[M]) SetRoute(fn func(key uint64, shards int) int) { s.route = fn }

// SetTelemetry wires each shard's private stack to a flight-recorder
// tracer from d (labelled "shard<i>", one ring of ringCap events per
// shard, <= 0 selecting the default) plus a shared batch-size histogram
// named "ldlp-batch". Like SetSink it must be called before the first
// Inject: workers are parked on their empty input queues until then, so
// the per-shard stacks are not yet in use.
func (s *ShardedStack[M]) SetTelemetry(d *telemetry.Domain, ringCap int) {
	if d == nil {
		return
	}
	batch := d.Hist("ldlp-batch")
	for i, sh := range s.shards {
		sh.stack.SetTelemetry(d.Tracer("shard"+fmt.Sprint(i), ringCap), batch)
	}
}

// Inject routes one arriving message to its flow's shard. It returns
// ErrStackFull (counted in Stats.Dropped) when that shard's input queue
// is full — drop-tail, matching the single-threaded engine's MaxQueued
// behaviour. Safe for concurrent use.
func (s *ShardedStack[M]) Inject(m M) error {
	key := s.hash(m)
	idx := int(key % uint64(len(s.shards)))
	if s.route != nil {
		idx = s.route(key, len(s.shards))
	}
	sh := s.shards[idx]
	s.pending.Add(1)
	select {
	case sh.in <- m:
		return nil
	default:
		s.pending.Add(-1)
		s.dropped.Add(1)
		return ErrStackFull
	}
}

// worker is a shard's processing loop: take one message, opportunistically
// drain whatever else has arrived (the paper's adaptive batching rule at
// the intake), run the shard's schedule to completion, publish stats.
func (s *ShardedStack[M]) worker(sh *shard[M]) {
	defer s.workerWG.Done()
	for m := range sh.in {
		batch := 1
		s.injectLocal(sh, m)
	fill:
		for {
			select {
			case m2, ok := <-sh.in:
				if !ok {
					break fill
				}
				s.injectLocal(sh, m2)
				batch++
			default:
				break fill
			}
		}
		sh.stack.Run()
		s.publish(sh)
		s.pending.Add(int64(-batch))
	}
}

// injectLocal feeds one message into the shard's private stack. The
// inner stack is unbounded (intake is bounded by the shard queue), so
// Inject cannot fail; under call-through disciplines it processes the
// message synchronously.
func (s *ShardedStack[M]) injectLocal(sh *shard[M], m M) {
	if err := sh.stack.Inject(m); err != nil {
		// Unreachable (inner MaxQueued is 0), but do not lose accounting
		// if that invariant ever changes.
		s.dropped.Add(1)
	}
}

// publish adds the shard's Stats delta since the last publish to the
// atomic aggregates.
func (s *ShardedStack[M]) publish(sh *shard[M]) {
	cur := sh.stack.Stats()
	s.queueOps.Add(cur.QueueOps - sh.prev.QueueOps)
	s.processed.Add(cur.Processed - sh.prev.Processed)
	s.delivered.Add(cur.Delivered - sh.prev.Delivered)
	s.rounds.Add(cur.Rounds - sh.prev.Rounds)
	if lb := int64(cur.LargestBatch); lb > s.largestBatch.Load() {
		for {
			old := s.largestBatch.Load()
			if lb <= old || s.largestBatch.CompareAndSwap(old, lb) {
				break
			}
		}
	}
	sh.prev = cur
}

// merger serializes deliveries from all shards into the caller's Sink.
func (s *ShardedStack[M]) merger() {
	defer s.mergerWG.Done()
	for m := range s.out {
		if s.sink != nil {
			s.sink(m)
		}
		s.outPending.Add(-1)
	}
}

// Stats returns the aggregated engine counters. Exact once Drain has
// returned; a point-in-time snapshot while workers are busy.
func (s *ShardedStack[M]) Stats() Stats {
	return Stats{
		QueueOps:     s.queueOps.Load(),
		Processed:    s.processed.Load(),
		Delivered:    s.delivered.Load(),
		Dropped:      s.dropped.Load(),
		Rounds:       s.rounds.Load(),
		LargestBatch: int(s.largestBatch.Load()),
	}
}

// ShardStats returns one shard's engine counters. Only meaningful when
// the stack is quiescent (after Drain or Close).
func (s *ShardedStack[M]) ShardStats(i int) Stats { return s.shards[i].stack.Stats() }

// Pending reports messages accepted but not yet fully processed (queued,
// in flight inside a shard, or awaiting the Sink).
func (s *ShardedStack[M]) Pending() int {
	return int(s.pending.Load() + s.outPending.Load())
}

// QueueDepths reports each shard's current input-queue depth (messages
// accepted by Inject that its worker has not yet taken). A point-in-time
// snapshot for monitoring — depths move while workers run.
func (s *ShardedStack[M]) QueueDepths() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		out[i] = len(sh.in)
	}
	return out
}

// Drain blocks until every message accepted so far has been processed
// and all resulting deliveries have passed through the Sink. It is the
// sharded analogue of Run: Inject a burst, then Drain.
func (s *ShardedStack[M]) Drain() {
	for spin := 0; ; spin++ {
		if s.pending.Load() == 0 && s.outPending.Load() == 0 {
			return
		}
		if spin < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// Close processes everything still queued, stops the workers and the
// merger, and waits for them to exit. Idempotent. Inject after Close
// panics.
func (s *ShardedStack[M]) Close() {
	s.closed.Do(func() {
		for _, sh := range s.shards {
			close(sh.in)
		}
		s.workerWG.Wait()
		close(s.out)
		s.mergerWG.Wait()
	})
}

// FNV-1a, for callers that hash flow keys byte-wise (netstack hashes the
// 4-tuple with this).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// HashBytes accumulates bytes into an FNV-1a hash. Seed with HashSeed.
func HashBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// HashSeed is the FNV-1a offset basis.
func HashSeed() uint64 { return fnvOffset64 }

// BuildShardedStack assembles a ShardedStack from a protocol-graph spec
// (see ParseGraph): every shard gets an identical topology whose handlers
// come from handlers(shard), so per-shard handler state stays private.
// The returned layer maps (one per shard) let handlers emit by name.
func BuildShardedStack[M any](opts Options, spec string, hash func(M) uint64, handlers func(shard int) map[string]Handler[M]) (*ShardedStack[M], []map[string]*Layer[M], error) {
	g, err := ParseGraph(spec)
	if err != nil {
		return nil, nil, err
	}
	n := opts.Shards
	if n <= 0 {
		n = 1
	}
	byShard := make([]map[string]*Layer[M], n)
	var buildErr error
	s := NewShardedStack(opts, hash, func(i int, st *Stack[M]) {
		hs := handlers(i)
		for _, name := range g.Order {
			if hs[name] == nil {
				buildErr = fmt.Errorf("core: shard %d: no handler for layer %q", i, name)
				// Install a placeholder so the stack stays structurally
				// valid; the constructor's error return discards it.
				hs[name] = func(M, Emit[M]) {}
			}
		}
		byName := make(map[string]*Layer[M], len(g.Order))
		for _, name := range g.Order {
			byName[name] = st.AddLayer(name, hs[name])
		}
		for _, e := range g.Edges {
			st.Link(byName[e[0]], byName[e[1]])
		}
		byShard[i] = byName
	})
	if buildErr != nil {
		s.Close()
		return nil, nil, buildErr
	}
	return s, byShard, nil
}
