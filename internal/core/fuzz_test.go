package core

import (
	"testing"
)

// FuzzParseGraph throws arbitrary specs at the x-kernel-style graph
// parser, which consumes untrusted configuration text. Invariants on
// success: a nonempty topological order covering every node exactly
// once, every edge pointing strictly upward in that order, a unique
// bottom layer, and a successful BuildStack over the result.
func FuzzParseGraph(f *testing.F) {
	for _, seed := range []string{
		"device > ether > ip\nip > tcp, udp\ntcp > socket\nudp > socket",
		"a > b",
		"a > b, c\nb > d\nc > d",
		"# comment only",
		"a > a",
		"a > b\nb > a",
		"a > b\nc > d",
		" spaced  >  names \n",
		"a,b > c",
		"a > b > c > d > e > f > g > h",
		"x > y # trailing comment\ny > z",
		"no-arrow-line",
		"> leading",
		"trailing >",
		"a > b\n\n\na > b",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if len(spec) > 1<<14 {
			return // bound parser work per input
		}
		g, err := ParseGraph(spec)
		if err != nil {
			return
		}
		if len(g.Order) == 0 {
			t.Fatal("accepted spec produced empty order")
		}
		pos := make(map[string]int, len(g.Order))
		for i, name := range g.Order {
			if name == "" {
				t.Fatal("empty layer name in Order")
			}
			if _, dup := pos[name]; dup {
				t.Fatalf("duplicate layer %q in Order", name)
			}
			pos[name] = i
		}
		indeg := make(map[string]int)
		for _, e := range g.Edges {
			lo, okLo := pos[e[0]]
			hi, okHi := pos[e[1]]
			if !okLo || !okHi {
				t.Fatalf("edge %v references layer missing from Order", e)
			}
			if lo >= hi {
				t.Fatalf("edge %v does not point upward in Order %v", e, g.Order)
			}
			indeg[e[1]]++
		}
		bottoms := 0
		for _, name := range g.Order {
			if indeg[name] == 0 {
				bottoms++
			}
		}
		if bottoms != 1 {
			t.Fatalf("accepted graph has %d bottom layers, want 1 (order %v)", bottoms, g.Order)
		}
		// The parsed graph must be buildable, and a message injected at
		// the bottom must not wedge the engine.
		handlers := make(map[string]Handler[int], len(g.Order))
		for _, name := range g.Order {
			handlers[name] = func(m int, emit Emit[int]) { emit(nil, m) }
		}
		s, _, err := BuildStack(Options{Discipline: LDLP}, spec, handlers)
		if err != nil {
			t.Fatalf("ParseGraph accepted but BuildStack failed: %v", err)
		}
		if err := s.Inject(1); err != nil {
			t.Fatalf("Inject on built stack: %v", err)
		}
		if n := s.Run(); n != 1 {
			t.Fatalf("delivered %d, want 1", n)
		}
	})
}
