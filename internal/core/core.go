// Package core implements Locality-Driven Layer Processing (LDLP), the
// paper's central contribution (§3): a scheduling discipline for protocol
// stacks that processes *batches of messages per layer* instead of one
// message through all layers, so that a layer's code is reused while it is
// still cache-resident — the protocol analogue of blocked matrix
// multiplication.
//
// The engine is generic over the message type: the synthetic simulator
// (internal/sim) runs it over cost-model messages, and the runnable
// netstack (internal/netstack) runs it over real mbuf chains.
//
// Scheduling rules, from §3.1–3.2:
//
//   - Every layer has an input queue. Higher layers have higher priority.
//   - A scheduled layer runs to completion: it processes every message in
//     its input queue before anything else runs.
//   - The lowest layer is the exception: it yields after processing as
//     many messages as fit in the data cache (the batch limit), so arrival
//     bursts cannot starve the upper layers.
//   - Under light load queues hold single messages and behaviour matches a
//     conventional stack; under heavy load batches form and instruction
//     locality improves. That load-adaptivity is the whole trick.
//
// A layer may feed more than one upper layer ("there can be more than
// one"), so the topology is a DAG, not only a chain.
package core

import (
	"errors"
	"fmt"

	"ldlp/internal/telemetry"
)

// Discipline selects how messages flow through the stack (Figure 2).
type Discipline int

const (
	// Conventional processes each message through every layer in turn by
	// direct call-through — the ALF-style structure with poor code
	// locality for small messages.
	Conventional Discipline = iota
	// ILP is integrated layer processing: the same outer control flow as
	// Conventional (each message traverses all layers before the next),
	// with the layers' data loops fused. The engine's control flow is the
	// conventional one; substrates model the fused data loops by charging
	// data costs once instead of per layer.
	ILP
	// LDLP enqueues messages between layers and runs the blocked,
	// priority-driven schedule described in the package comment.
	LDLP
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case Conventional:
		return "conventional"
	case ILP:
		return "ilp"
	case LDLP:
		return "ldlp"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Emit is passed to a layer handler so it can pass a message to an upper
// layer (or out of the stack with to == nil).
type Emit[M any] func(to *Layer[M], m M)

// Handler processes one message at one layer.
type Handler[M any] func(m M, emit Emit[M])

// fifo is a slice-backed queue that reuses its backing array.
type fifo[M any] struct {
	buf  []M
	head int
}

//ldlp:hotpath
func (q *fifo[M]) push(m M) { q.buf = append(q.buf, m) } //lint:ignore hotpathalloc amortized growth of a reused backing array; steady state never reallocates

//ldlp:hotpath
func (q *fifo[M]) pop() (M, bool) {
	var zero M
	if q.head >= len(q.buf) {
		return zero, false
	}
	m := q.buf[q.head]
	q.buf[q.head] = zero // release for GC
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m, true
}

func (q *fifo[M]) len() int { return len(q.buf) - q.head }

// Layer is one protocol layer in a Stack.
type Layer[M any] struct {
	name    string
	index   int // position in Stack.layers; higher = higher priority
	handler Handler[M]
	queue   fifo[M]
	uppers  []*Layer[M]

	// emitQueued and emitCall are this layer's Emit callbacks, built once
	// at AddLayer. Constructing them per handler invocation (a closure
	// capturing the layer) would heap-allocate on every message — the
	// kind of per-message overhead the paper's whole argument is against.
	emitQueued Emit[M]
	emitCall   Emit[M]

	// Processed counts handler invocations at this layer.
	Processed int64
	// MaxQueue tracks the deepest the input queue has been.
	MaxQueue int
}

// Name returns the layer's name.
func (l *Layer[M]) Name() string { return l.name }

// Index returns the layer's position in the stack (bottom = 0) — the
// index telemetry events are recorded under.
func (l *Layer[M]) Index() int { return l.index }

// QueueLen reports the current input-queue depth.
func (l *Layer[M]) QueueLen() int { return l.queue.len() }

// Options configures a Stack.
type Options struct {
	// Discipline selects the processing schedule.
	Discipline Discipline
	// BatchLimit caps how many messages the lowest layer processes before
	// yielding to higher-priority layers — the paper sizes it so a batch
	// of messages fits in the data cache. 0 means unlimited. Only
	// meaningful for LDLP.
	BatchLimit int
	// MaxQueued bounds the total number of messages buffered inside the
	// stack; Inject fails beyond it (drop-tail, like the paper's
	// 500-packet buffer). 0 means unlimited.
	MaxQueued int
	// Shards is the worker count for NewShardedStack (0 or 1 = one
	// shard). A plain Stack ignores it: the single-threaded engine is
	// the degenerate one-shard case.
	Shards int
}

// Stats aggregates engine-level accounting that the cost models consume.
type Stats struct {
	// QueueOps counts enqueue+dequeue pairs; the paper estimates ~40
	// instructions each (§3.2), charged by the simulator per op.
	QueueOps int64
	// Processed counts handler invocations across all layers.
	Processed int64
	// Delivered counts messages that left the top of the stack.
	Delivered int64
	// Dropped counts messages rejected by MaxQueued.
	Dropped int64
	// Rounds counts scheduler passes (LDLP only).
	Rounds int64
	// LargestBatch is the largest run-to-completion batch any layer
	// processed in one scheduling.
	LargestBatch int
}

// ErrStackFull is returned by Inject when MaxQueued is exceeded.
var ErrStackFull = errors.New("core: stack buffer full")

// Sink receives messages that emerge from the top of the stack.
type Sink[M any] func(m M)

// Stack is a protocol stack bound to one discipline.
type Stack[M any] struct {
	opts   Options
	layers []*Layer[M]
	bottom *Layer[M]
	sink   Sink[M]
	stats  Stats
	queued int

	// onProcess, if set, is called before each handler invocation — the
	// simulator charges per-layer cache and cycle costs here.
	onProcess func(l *Layer[M], m M)

	// tracer, if set, flight-records the LDLP schedule: layer
	// enter/exit spans and batch formation. batchHist, if set, observes
	// the size of every bottom-layer batch. Both are nil-safe /
	// gate-checked inside telemetry, so the unwired stack pays nothing.
	tracer    *telemetry.Tracer
	batchHist *telemetry.Hist
}

// NewStack creates an empty stack. Layers are added bottom-up with
// AddLayer; the first layer added is the lowest (the injection point).
func NewStack[M any](opts Options) *Stack[M] {
	if opts.BatchLimit < 0 || opts.MaxQueued < 0 {
		panic(fmt.Sprintf("core: negative option in %+v", opts))
	}
	return &Stack[M]{opts: opts}
}

// AddLayer appends a layer above all existing layers and returns it.
func (s *Stack[M]) AddLayer(name string, h Handler[M]) *Layer[M] {
	if h == nil {
		panic("core: nil handler for layer " + name)
	}
	l := &Layer[M]{name: name, handler: h, index: len(s.layers)}
	l.emitQueued = func(to *Layer[M], next M) {
		if to == nil {
			s.deliver(next)
			return
		}
		s.checkLinked(l, to)
		s.enqueue(to, next)
	}
	l.emitCall = func(to *Layer[M], next M) {
		if to == nil {
			s.deliver(next)
			return
		}
		s.checkLinked(l, to)
		s.callThrough(to, next)
	}
	s.layers = append(s.layers, l)
	if s.bottom == nil {
		s.bottom = l
	}
	return l
}

// Link declares that lower may emit messages to upper. Emitting to an
// unlinked layer panics, which catches topology bugs early. Links must
// point upward (to a higher-priority layer): the run-to-completion
// schedule depends on it.
func (s *Stack[M]) Link(lower, upper *Layer[M]) {
	if upper.index <= lower.index {
		panic(fmt.Sprintf("core: link %s -> %s does not point upward", lower.name, upper.name))
	}
	lower.uppers = append(lower.uppers, upper)
}

// OnProcess installs a per-handler-invocation hook (cost accounting).
func (s *Stack[M]) OnProcess(fn func(l *Layer[M], m M)) { s.onProcess = fn }

// SetTelemetry attaches a flight-recorder tracer and a batch-size
// histogram to the stack. Layer names already added are registered with
// the tracer (by layer index) so exported traces resolve them. Either
// argument may be nil. Setup path, not for concurrent use with Run.
func (s *Stack[M]) SetTelemetry(tr *telemetry.Tracer, batch *telemetry.Hist) {
	s.tracer = tr
	s.batchHist = batch
	for _, l := range s.layers {
		tr.RegisterLayer(l.index, l.name)
	}
}

// SetSink installs the receiver for messages leaving the stack top.
func (s *Stack[M]) SetSink(fn Sink[M]) { s.sink = fn }

// Layers returns the layers, bottom first.
func (s *Stack[M]) Layers() []*Layer[M] { return s.layers }

// Stats returns a copy of the counters.
func (s *Stack[M]) Stats() Stats { return s.stats }

// Discipline reports the configured discipline.
func (s *Stack[M]) Discipline() Discipline { return s.opts.Discipline }

// Pending reports the number of messages buffered inside the stack.
func (s *Stack[M]) Pending() int { return s.queued }

// Inject presents one arriving message to the bottom layer.
//
// Under Conventional and ILP the message is processed through the whole
// stack immediately (call-through). Under LDLP it is queued; call Run to
// process. Inject returns ErrStackFull if the stack's buffer is full.
//
//ldlp:hotpath
func (s *Stack[M]) Inject(m M) error {
	if s.bottom == nil {
		panic("core: Inject on a stack with no layers")
	}
	switch s.opts.Discipline {
	case Conventional, ILP:
		s.callThrough(s.bottom, m)
		return nil
	default:
		if s.opts.MaxQueued > 0 && s.queued >= s.opts.MaxQueued {
			s.stats.Dropped++
			return ErrStackFull
		}
		s.enqueue(s.bottom, m)
		return nil
	}
}

// callThrough runs a message depth-first through the layers, the
// conventional schedule.
//
//ldlp:hotpath
func (s *Stack[M]) callThrough(l *Layer[M], m M) {
	s.process(l, m, l.emitCall)
}

//ldlp:hotpath
func (s *Stack[M]) process(l *Layer[M], m M, emit Emit[M]) {
	if s.onProcess != nil {
		s.onProcess(l, m)
	}
	l.Processed++
	s.stats.Processed++
	l.handler(m, emit)
}

//ldlp:hotpath
func (s *Stack[M]) deliver(m M) {
	s.stats.Delivered++
	if s.sink != nil {
		s.sink(m)
	}
}

//ldlp:hotpath
func (s *Stack[M]) enqueue(l *Layer[M], m M) {
	l.queue.push(m)
	s.queued++
	s.stats.QueueOps++
	if l.queue.len() > l.MaxQueue {
		l.MaxQueue = l.queue.len()
	}
}

func (s *Stack[M]) checkLinked(from, to *Layer[M]) {
	for _, u := range from.uppers {
		if u == to {
			return
		}
	}
	panic(fmt.Sprintf("core: %s emitted to unlinked layer %s", from.name, to.name))
}

// Run drains the stack under the LDLP schedule and returns the number of
// messages delivered out of the top during this call. It is a no-op for
// call-through disciplines (their Inject already completed processing).
//
// Schedule: repeatedly pick the highest nonempty layer; run it to
// completion (the bottom layer stops after BatchLimit messages); repeat
// until every queue is empty.
func (s *Stack[M]) Run() int64 {
	if s.opts.Discipline != LDLP {
		return 0
	}
	startDelivered := s.stats.Delivered
	for {
		l := s.highestPending()
		if l == nil {
			break
		}
		s.stats.Rounds++
		s.runLayer(l)
	}
	return s.stats.Delivered - startDelivered
}

//ldlp:hotpath
func (s *Stack[M]) highestPending() *Layer[M] {
	for i := len(s.layers) - 1; i >= 0; i-- {
		if s.layers[i].queue.len() > 0 {
			return s.layers[i]
		}
	}
	return nil
}

// runLayer processes the layer's queue to completion (bounded by
// BatchLimit at the bottom layer), emitting upward into queues.
//
//ldlp:hotpath
func (s *Stack[M]) runLayer(l *Layer[M]) {
	limit := l.queue.len()
	if l == s.bottom && s.opts.BatchLimit > 0 && limit > s.opts.BatchLimit {
		limit = s.opts.BatchLimit
	}
	if limit > s.stats.LargestBatch {
		s.stats.LargestBatch = limit
	}
	if l == s.bottom {
		// One batch has formed at the injection layer — the §3 online
		// batching rule, observed. Record before the pass so the trace
		// shows the batch counter stepping at the span open.
		s.tracer.Event(telemetry.EvBatchFormed, l.index, int64(limit))
		if s.batchHist != nil {
			s.batchHist.Observe(int64(limit))
		}
	}
	s.tracer.Event(telemetry.EvLayerEnter, l.index, int64(limit))
	for i := 0; i < limit; i++ {
		m, ok := l.queue.pop()
		if !ok {
			break
		}
		s.queued--
		s.process(l, m, l.emitQueued)
	}
	s.tracer.Event(telemetry.EvLayerExit, l.index, int64(limit))
}
