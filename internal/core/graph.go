package core

import (
	"fmt"
	"sort"
	"strings"
)

// Protocol-graph configuration in the x-kernel tradition (the paper's
// §1.1 cites Hutchinson & Peterson's x-kernel as the richer successor to
// mbufs): a stack is described declaratively as a graph of named layers,
// and the engine wires queues and priorities from the description.
//
// Spec syntax, one edge list per line ('#' comments allowed):
//
//	device > ether
//	ether > ip
//	ip > tcp, udp      # fan-out: both are directly above ip
//	tcp > socket
//	udp > socket
//
// Chains are allowed: "device > ether > ip". Layer priority (which LDLP's
// run-to-completion scheduler needs) is derived by topological order, with
// the graph's unique source becoming the injection point.

// GraphSpec is a parsed protocol graph.
type GraphSpec struct {
	// Order lists layer names bottom-up (a valid topological order).
	Order []string
	// Edges lists lower->upper pairs.
	Edges [][2]string
}

// ParseGraph parses a spec. It rejects cycles, self-edges and graphs with
// no unique bottom layer.
func ParseGraph(spec string) (*GraphSpec, error) {
	g := &GraphSpec{}
	seenEdge := map[[2]string]bool{}
	nodes := map[string]bool{}
	var nodeOrder []string
	addNode := func(n string) {
		if !nodes[n] {
			nodes[n] = true
			nodeOrder = append(nodeOrder, n)
		}
	}

	for lineNo, line := range strings.Split(spec, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		parts := strings.Split(line, ">")
		if len(parts) < 2 {
			return nil, fmt.Errorf("core: graph line %d: %q has no '>'", lineNo+1, line)
		}
		// Each ">" joins the previous segment's layers to the next
		// segment's layers (segments may be comma lists).
		prev, err := parseNames(parts[0], lineNo)
		if err != nil {
			return nil, err
		}
		for _, seg := range parts[1:] {
			cur, err := parseNames(seg, lineNo)
			if err != nil {
				return nil, err
			}
			for _, lo := range prev {
				addNode(lo)
				for _, hi := range cur {
					addNode(hi)
					if lo == hi {
						return nil, fmt.Errorf("core: graph line %d: self-edge %q", lineNo+1, lo)
					}
					e := [2]string{lo, hi}
					if !seenEdge[e] {
						seenEdge[e] = true
						g.Edges = append(g.Edges, e)
					}
				}
			}
			prev = cur
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: empty graph spec")
	}

	// Topological sort (Kahn), deterministic by first-appearance order.
	indeg := map[string]int{}
	uppers := map[string][]string{}
	for _, e := range g.Edges {
		indeg[e[1]]++
		uppers[e[0]] = append(uppers[e[0]], e[1])
	}
	var ready []string
	for _, n := range nodeOrder {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	if len(ready) != 1 {
		return nil, fmt.Errorf("core: graph needs exactly one bottom layer (injection point), found %d: %v",
			len(ready), ready)
	}
	pos := map[string]int{}
	for i, n := range nodeOrder {
		pos[n] = i
	}
	for len(ready) > 0 {
		// Pop the earliest-declared ready node for determinism.
		sort.Slice(ready, func(i, j int) bool { return pos[ready[i]] < pos[ready[j]] })
		n := ready[0]
		ready = ready[1:]
		g.Order = append(g.Order, n)
		for _, u := range uppers[n] {
			indeg[u]--
			if indeg[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	if len(g.Order) != len(nodes) {
		return nil, fmt.Errorf("core: graph has a cycle")
	}
	return g, nil
}

func parseNames(seg string, lineNo int) ([]string, error) {
	var out []string
	for _, raw := range strings.Split(seg, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("core: graph line %d: empty layer name", lineNo+1)
		}
		out = append(out, name)
	}
	return out, nil
}

// BuildStack assembles a Stack from a graph spec and a handler per layer.
// It returns the stack and the layers by name (for use inside handlers:
// emit to layers[name]).
func BuildStack[M any](opts Options, spec string, handlers map[string]Handler[M]) (*Stack[M], map[string]*Layer[M], error) {
	g, err := ParseGraph(spec)
	if err != nil {
		return nil, nil, err
	}
	for _, name := range g.Order {
		if handlers[name] == nil {
			return nil, nil, fmt.Errorf("core: no handler for layer %q", name)
		}
	}
	if len(handlers) != len(g.Order) {
		for name := range handlers {
			found := false
			for _, n := range g.Order {
				if n == name {
					found = true
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("core: handler for unknown layer %q", name)
			}
		}
	}
	s := NewStack[M](opts)
	byName := make(map[string]*Layer[M], len(g.Order))
	for _, name := range g.Order {
		byName[name] = s.AddLayer(name, handlers[name])
	}
	for _, e := range g.Edges {
		s.Link(byName[e[0]], byName[e[1]])
	}
	return s, byName, nil
}
