package core

import (
	"testing"

	"ldlp/internal/telemetry"
)

// buildTelemetryStack is a two-layer LDLP chain with telemetry wired.
func buildTelemetryStack(batchLimit int) (*Stack[int], *telemetry.Domain) {
	now := int64(0)
	d := telemetry.NewDomain("core-test", func() int64 { now += 10; return now })
	s := NewStack[int](Options{Discipline: LDLP, BatchLimit: batchLimit})
	var upper *Layer[int]
	lower := s.AddLayer("mac", func(m int, emit Emit[int]) { emit(upper, m) })
	upper = s.AddLayer("ip", func(m int, emit Emit[int]) { emit(nil, m) })
	s.Link(lower, upper)
	s.SetTelemetry(d.Tracer("shard0", 64), d.Hist("ldlp-batch"))
	return s, d
}

func TestStackTelemetryRecordsBatchesAndSpans(t *testing.T) {
	s, d := buildTelemetryStack(4)
	for i := 0; i < 10; i++ {
		if err := s.Inject(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()

	snap := d.Snapshot()
	if len(snap.Tracers) != 1 {
		t.Fatalf("want 1 tracer, got %d", len(snap.Tracers))
	}
	tr := snap.Tracers[0]
	if len(tr.Layers) < 2 || tr.Layers[0] != "mac" || tr.Layers[1] != "ip" {
		t.Fatalf("layer names not registered: %v", tr.Layers)
	}

	var batches []int64
	enters, exits := 0, 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case telemetry.EvBatchFormed:
			if ev.Layer != 0 {
				t.Errorf("batch recorded at non-bottom layer %d", ev.Layer)
			}
			batches = append(batches, ev.Arg)
		case telemetry.EvLayerEnter:
			enters++
		case telemetry.EvLayerExit:
			exits++
		}
	}
	// 10 messages with BatchLimit 4: the schedule is data-dependent, but
	// every bottom batch is capped at 4 and they must total 10.
	var total int64
	for _, b := range batches {
		if b > 4 {
			t.Errorf("batch %d exceeds BatchLimit 4", b)
		}
		total += b
	}
	if total != 10 {
		t.Errorf("batch sizes total %d, want 10 (batches %v)", total, batches)
	}
	if enters == 0 || enters != exits {
		t.Errorf("unbalanced layer spans: %d enters, %d exits", enters, exits)
	}

	h, ok := snap.Hist("ldlp-batch")
	if !ok {
		t.Fatal("ldlp-batch histogram missing from snapshot")
	}
	if h.Count != int64(len(batches)) || h.Sum != 10 {
		t.Errorf("batch hist count/sum = %d/%d, want %d/10", h.Count, h.Sum, len(batches))
	}

	// Timestamps come from the injected clock and are strictly monotonic.
	last := int64(0)
	for _, ev := range tr.Events {
		if ev.TS <= last {
			t.Fatalf("timestamps not monotonic: %d after %d", ev.TS, last)
		}
		last = ev.TS
	}
}

func TestShardedStackTelemetry(t *testing.T) {
	d := telemetry.NewDomain("shards", nil)
	var upper []*Layer[int]
	s := NewShardedStack[int](Options{Discipline: LDLP, BatchLimit: 8, Shards: 2},
		func(m int) uint64 { return uint64(m) },
		func(i int, st *Stack[int]) {
			lo := st.AddLayer("mac", func(m int, emit Emit[int]) { emit(upper[i], m) })
			up := st.AddLayer("ip", func(m int, emit Emit[int]) { emit(nil, m) })
			st.Link(lo, up)
			upper = append(upper, up)
		})
	s.SetTelemetry(d, 128)
	defer s.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := s.Inject(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()

	snap := d.Snapshot()
	if len(snap.Tracers) != 2 {
		t.Fatalf("want one tracer per shard, got %d", len(snap.Tracers))
	}
	for _, tr := range snap.Tracers {
		if tr.Recorded == 0 {
			t.Errorf("shard %d recorded no events", tr.Shard)
		}
		if len(tr.Layers) < 2 || tr.Layers[0] != "mac" {
			t.Errorf("shard %d layers not registered: %v", tr.Shard, tr.Layers)
		}
	}
	h, ok := snap.Hist("ldlp-batch")
	if !ok || h.Sum != n {
		t.Fatalf("shared batch hist sum = %d (ok=%v), want %d", h.Sum, ok, n)
	}
}

func TestConventionalStackRecordsNothing(t *testing.T) {
	now := int64(0)
	d := telemetry.NewDomain("conv", func() int64 { now++; return now })
	s := NewStack[int](Options{Discipline: Conventional})
	var upper *Layer[int]
	lower := s.AddLayer("mac", func(m int, emit Emit[int]) { emit(upper, m) })
	upper = s.AddLayer("ip", func(m int, emit Emit[int]) { emit(nil, m) })
	s.Link(lower, upper)
	tr := d.Tracer("shard0", 64)
	s.SetTelemetry(tr, d.Hist("ldlp-batch"))

	for i := 0; i < 100; i++ {
		_ = s.Inject(i)
	}
	// The conventional call-through path is deliberately uninstrumented:
	// per-frame events there would tax exactly the benchmark the paper
	// measures against. Only the LDLP schedule flight-records.
	if got := tr.Ring().Recorded(); got != 0 {
		t.Fatalf("conventional call-through recorded %d events, want 0", got)
	}
}
