package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildChain makes an n-layer pass-through stack that records the order of
// (layer, message) processing events.
func buildChain(n int, opts Options) (*Stack[int], *[]string) {
	events := &[]string{}
	s := NewStack[int](opts)
	layers := make([]*Layer[int], n)
	for i := 0; i < n; i++ {
		i := i
		layers[i] = s.AddLayer(fmt.Sprintf("L%d", i+1), func(m int, emit Emit[int]) {
			*events = append(*events, fmt.Sprintf("L%d:P%d", i+1, m))
			if i+1 < n {
				emit(layerAt(s, i+1), m)
			} else {
				emit(nil, m)
			}
		})
	}
	for i := 0; i+1 < n; i++ {
		s.Link(layers[i], layers[i+1])
	}
	return s, events
}

func layerAt(s *Stack[int], i int) *Layer[int] { return s.Layers()[i] }

func TestDisciplineString(t *testing.T) {
	if Conventional.String() != "conventional" || ILP.String() != "ilp" || LDLP.String() != "ldlp" {
		t.Error("discipline names changed")
	}
	if Discipline(9).String() != "Discipline(9)" {
		t.Error("unknown discipline rendering changed")
	}
}

func TestConventionalOrderIsDepthFirst(t *testing.T) {
	// Figure 2 "Conventional": L1 P1, L2 P1, L1 P2, L2 P2.
	s, events := buildChain(2, Options{Discipline: Conventional})
	var delivered []int
	s.SetSink(func(m int) { delivered = append(delivered, m) })
	s.Inject(1)
	s.Inject(2)
	want := []string{"L1:P1", "L2:P1", "L1:P2", "L2:P2"}
	if fmt.Sprint(*events) != fmt.Sprint(want) {
		t.Errorf("events = %v, want %v", *events, want)
	}
	if fmt.Sprint(delivered) != "[1 2]" {
		t.Errorf("delivered = %v", delivered)
	}
}

func TestLDLPOrderIsBlocked(t *testing.T) {
	// Figure 2 "Blocked": L1 P1, L1 P2, L2 P1, L2 P2.
	s, events := buildChain(2, Options{Discipline: LDLP})
	s.Inject(1)
	s.Inject(2)
	if len(*events) != 0 {
		t.Fatalf("LDLP should not process during Inject, got %v", *events)
	}
	if n := s.Run(); n != 2 {
		t.Fatalf("Run delivered %d, want 2", n)
	}
	want := []string{"L1:P1", "L1:P2", "L2:P1", "L2:P2"}
	if fmt.Sprint(*events) != fmt.Sprint(want) {
		t.Errorf("events = %v, want %v", *events, want)
	}
}

func TestLDLPSingleMessageMatchesConventionalOrder(t *testing.T) {
	// Under light load (batch = 1) the LDLP schedule degenerates to the
	// conventional per-message order — the paper's low-latency property.
	sc, ec := buildChain(3, Options{Discipline: Conventional})
	sl, el := buildChain(3, Options{Discipline: LDLP})
	sc.Inject(1)
	sl.Inject(1)
	sl.Run()
	if fmt.Sprint(*ec) != fmt.Sprint(*el) {
		t.Errorf("orders differ: conventional %v, ldlp %v", *ec, *el)
	}
}

func TestBatchLimitYieldsToUpperLayers(t *testing.T) {
	// With BatchLimit 2 and 5 injected messages, the bottom layer must
	// process 2, then the upper layer runs those 2 before the bottom
	// resumes.
	s, events := buildChain(2, Options{Discipline: LDLP, BatchLimit: 2})
	for m := 1; m <= 5; m++ {
		s.Inject(m)
	}
	s.Run()
	want := []string{
		"L1:P1", "L1:P2", "L2:P1", "L2:P2",
		"L1:P3", "L1:P4", "L2:P3", "L2:P4",
		"L1:P5", "L2:P5",
	}
	if fmt.Sprint(*events) != fmt.Sprint(want) {
		t.Errorf("events = %v,\nwant %v", *events, want)
	}
	if got := s.Stats().LargestBatch; got != 2 {
		t.Errorf("largest batch = %d, want 2", got)
	}
}

func TestRunToCompletionPriority(t *testing.T) {
	// Messages queued at several layers: the highest layer must drain
	// completely first.
	s, events := buildChain(3, Options{Discipline: LDLP})
	// Inject normally, run partially by using batch limit — instead,
	// exercise priority by injecting, running, then injecting more.
	s.Inject(1)
	s.Run()
	s.Inject(2)
	s.Inject(3)
	s.Run()
	want := []string{
		"L1:P1", "L2:P1", "L3:P1",
		"L1:P2", "L1:P3", "L2:P2", "L2:P3", "L3:P2", "L3:P3",
	}
	if fmt.Sprint(*events) != fmt.Sprint(want) {
		t.Errorf("events = %v,\nwant %v", *events, want)
	}
}

func TestMaxQueuedDropTail(t *testing.T) {
	s, _ := buildChain(2, Options{Discipline: LDLP, MaxQueued: 3})
	var errs int
	for m := 0; m < 5; m++ {
		if err := s.Inject(m); err != nil {
			if err != ErrStackFull {
				t.Fatalf("unexpected error %v", err)
			}
			errs++
		}
	}
	if errs != 2 {
		t.Errorf("dropped %d, want 2", errs)
	}
	if s.Stats().Dropped != 2 {
		t.Errorf("stats.Dropped = %d, want 2", s.Stats().Dropped)
	}
	if n := s.Run(); n != 3 {
		t.Errorf("delivered %d, want 3", n)
	}
}

func TestDAGFanOut(t *testing.T) {
	// One demux layer feeding two upper protocols — "there can be more
	// than one" layer directly above.
	var got []string
	var udp, tcp *Layer[int]
	s := NewStack[int](Options{Discipline: LDLP})
	demuxL := s.AddLayer("demux", func(m int, emit Emit[int]) {
		if m%2 == 0 {
			emit(udp, m)
		} else {
			emit(tcp, m)
		}
	})
	udp = s.AddLayer("udp", func(m int, emit Emit[int]) {
		got = append(got, fmt.Sprintf("udp:%d", m))
		emit(nil, m)
	})
	tcp = s.AddLayer("tcp", func(m int, emit Emit[int]) {
		got = append(got, fmt.Sprintf("tcp:%d", m))
		emit(nil, m)
	})
	s.Link(demuxL, udp)
	s.Link(demuxL, tcp)
	for m := 0; m < 4; m++ {
		s.Inject(m)
	}
	s.Run()
	// Blocked schedule: demux drains 0,1,2,3 then the *higher-priority*
	// tcp layer runs its batch {1,3}, then udp runs {0,2}.
	want := "[tcp:1 tcp:3 udp:0 udp:2]"
	if fmt.Sprint(got) != want {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestAddLayerNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil handler should panic")
		}
	}()
	NewStack[int](Options{}).AddLayer("x", nil)
}

func TestLinkMustPointUp(t *testing.T) {
	s := NewStack[int](Options{})
	a := s.AddLayer("a", func(int, Emit[int]) {})
	b := s.AddLayer("b", func(int, Emit[int]) {})
	defer func() {
		if recover() == nil {
			t.Error("downward link should panic")
		}
	}()
	s.Link(b, a)
}

func TestEmitToUnlinkedLayerPanics(t *testing.T) {
	s := NewStack[int](Options{Discipline: Conventional})
	var b *Layer[int]
	s.AddLayer("a", func(m int, emit Emit[int]) { emit(b, m) })
	b = s.AddLayer("b", func(m int, emit Emit[int]) {})
	defer func() {
		if recover() == nil {
			t.Error("emit to unlinked layer should panic")
		}
	}()
	s.Inject(1)
}

func TestInjectOnEmptyStackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inject with no layers should panic")
		}
	}()
	NewStack[int](Options{}).Inject(1)
}

func TestNegativeOptionsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative BatchLimit should panic")
		}
	}()
	NewStack[int](Options{BatchLimit: -1})
}

func TestOnProcessHook(t *testing.T) {
	s, _ := buildChain(2, Options{Discipline: LDLP})
	var hooks []string
	s.OnProcess(func(l *Layer[int], m int) {
		hooks = append(hooks, fmt.Sprintf("%s:%d", l.Name(), m))
	})
	s.Inject(7)
	s.Run()
	if fmt.Sprint(hooks) != "[L1:7 L2:7]" {
		t.Errorf("hooks = %v", hooks)
	}
}

func TestQueueOpsAccounting(t *testing.T) {
	s, _ := buildChain(3, Options{Discipline: LDLP})
	s.Inject(1)
	s.Inject(2)
	s.Run()
	// Each message is enqueued at each of 3 layers: 6 queue op pairs.
	if got := s.Stats().QueueOps; got != 6 {
		t.Errorf("QueueOps = %d, want 6", got)
	}
	// Conventional call-through must use no queues at all.
	sc, _ := buildChain(3, Options{Discipline: Conventional})
	sc.Inject(1)
	if got := sc.Stats().QueueOps; got != 0 {
		t.Errorf("conventional QueueOps = %d, want 0", got)
	}
}

// Property: conservation — every injected message is delivered exactly
// once and in FIFO order, for any chain depth, batch limit and injection
// pattern.
func TestConservationQuick(t *testing.T) {
	f := func(seed int64, depthSel, batchSel uint8, nMsgs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 1 + int(depthSel)%5
		batch := int(batchSel) % 8 // 0 = unlimited
		n := int(nMsgs)%50 + 1

		s := NewStack[int](Options{Discipline: LDLP, BatchLimit: batch})
		layers := make([]*Layer[int], depth)
		for i := 0; i < depth; i++ {
			i := i
			layers[i] = s.AddLayer(fmt.Sprintf("L%d", i), func(m int, emit Emit[int]) {
				if i+1 < depth {
					emit(s.Layers()[i+1], m)
				} else {
					emit(nil, m)
				}
			})
		}
		for i := 0; i+1 < depth; i++ {
			s.Link(layers[i], layers[i+1])
		}

		var delivered []int
		s.SetSink(func(m int) { delivered = append(delivered, m) })

		next := 0
		for next < n {
			burst := 1 + rng.Intn(5)
			for b := 0; b < burst && next < n; b++ {
				s.Inject(next)
				next++
			}
			s.Run()
		}
		s.Run()
		if len(delivered) != n || s.Pending() != 0 {
			return false
		}
		for i, m := range delivered {
			if m != i {
				return false
			}
		}
		st := s.Stats()
		return st.Processed == int64(n*depth) && st.Delivered == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: messages consumed mid-stack (handler emits nothing) are not
// delivered and do not leak queued state.
func TestConsumedMessagesDoNotLeak(t *testing.T) {
	s := NewStack[int](Options{Discipline: LDLP})
	l1 := s.AddLayer("filter", func(m int, emit Emit[int]) {
		if m%2 == 0 {
			emit(s.Layers()[1], m)
		} // odd messages dropped
	})
	l2 := s.AddLayer("top", func(m int, emit Emit[int]) { emit(nil, m) })
	s.Link(l1, l2)
	for m := 0; m < 10; m++ {
		s.Inject(m)
	}
	if n := s.Run(); n != 5 {
		t.Errorf("delivered %d, want 5", n)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d, want 0", s.Pending())
	}
}

func BenchmarkLDLPThroughput(b *testing.B) {
	s := NewStack[int](Options{Discipline: LDLP, BatchLimit: 14})
	const depth = 5
	layers := make([]*Layer[int], depth)
	for i := 0; i < depth; i++ {
		i := i
		layers[i] = s.AddLayer(fmt.Sprintf("L%d", i), func(m int, emit Emit[int]) {
			if i+1 < depth {
				emit(s.Layers()[i+1], m)
			} else {
				emit(nil, m)
			}
		})
	}
	for i := 0; i+1 < depth; i++ {
		s.Link(layers[i], layers[i+1])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Inject(i)
		if i%16 == 15 {
			s.Run()
		}
	}
	s.Run()
}

// Property: conservation holds on random DAG topologies (not just
// chains): every injected message reaches the sink exactly once no
// matter how layers fan out and demux.
func TestDAGConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := 2 + rng.Intn(4)
		width := 1 + rng.Intn(3)
		s := NewStack[int](Options{Discipline: LDLP, BatchLimit: 1 + rng.Intn(5)})

		// Build a layered DAG: rank 0 is the single bottom, the last rank
		// is a single sink layer; between them, `width` layers per rank.
		var ranks [][]*Layer[int]
		delivered := 0
		mkHandler := func(rank int) Handler[int] {
			return func(m int, emit Emit[int]) {
				if rank+1 >= len(ranks) {
					emit(nil, m)
					delivered++
					return
				}
				next := ranks[rank+1]
				emit(next[m%len(next)], m)
			}
		}
		nRanks := depth
		ranks = make([][]*Layer[int], nRanks)
		for r := 0; r < nRanks; r++ {
			cnt := width
			if r == 0 || r == nRanks-1 {
				cnt = 1
			}
			for i := 0; i < cnt; i++ {
				ranks[r] = append(ranks[r], s.AddLayer(fmt.Sprintf("r%d.%d", r, i), mkHandler(r)))
			}
		}
		for r := 0; r+1 < nRanks; r++ {
			for _, lo := range ranks[r] {
				for _, hi := range ranks[r+1] {
					s.Link(lo, hi)
				}
			}
		}
		const n = 37
		for m := 0; m < n; m++ {
			if s.Inject(m) != nil {
				return false
			}
		}
		s.Run()
		return delivered == n && s.Pending() == 0 && s.Stats().Delivered == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
