package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// Cross-discipline equivalence: for random DAG topologies and random
// injection sequences, Conventional, ILP, LDLP and sharded-LDLP must
// deliver the same multiset of messages and the same per-flow order —
// the disciplines change *scheduling*, never *semantics* (Figure 2 shows
// the same work in a different order). Each message routes through the
// DAG as a pure function of its flow, so a flow's messages follow one
// path and FIFO queues preserve their order under every schedule.

// equivMsg routes by flow; seq orders within the flow.
type equivMsg struct {
	flow int
	seq  int
}

// randomDAG generates a layer count and an upward edge set with a unique
// bottom layer and every layer reachable from it.
type randomDAG struct {
	layers int
	uppers [][]int // uppers[i] = indices of layers linked above i
}

func genDAG(rng *rand.Rand) randomDAG {
	n := 3 + rng.Intn(5) // 3..7 layers
	d := randomDAG{layers: n, uppers: make([][]int, n)}
	// Guarantee reachability: every layer above the bottom gets one edge
	// from some lower layer; the bottom chains upward so it stays the
	// unique source.
	for i := 1; i < n; i++ {
		lo := rng.Intn(i)
		d.uppers[lo] = append(d.uppers[lo], i)
	}
	// Sprinkle extra upward edges for fan-out.
	for lo := 0; lo < n-1; lo++ {
		for hi := lo + 1; hi < n; hi++ {
			if rng.Intn(3) == 0 && !contains(d.uppers[lo], hi) {
				d.uppers[lo] = append(d.uppers[lo], hi)
			}
		}
	}
	for i := range d.uppers {
		sort.Ints(d.uppers[i])
	}
	return d
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// buildEquivStack wires the DAG into a stack: each layer forwards a
// message to uppers[flow % len(uppers)], or out of the top when it has
// no uppers. The route depends only on (layer, flow) — deterministic.
func buildEquivStack(d randomDAG, s *Stack[equivMsg]) {
	layers := make([]*Layer[equivMsg], d.layers)
	for i := 0; i < d.layers; i++ {
		i := i
		layers[i] = s.AddLayer(fmt.Sprintf("L%d", i), func(m equivMsg, emit Emit[equivMsg]) {
			ups := d.uppers[i]
			if len(ups) == 0 {
				emit(nil, m)
				return
			}
			emit(layers[ups[m.flow%len(ups)]], m)
		})
	}
	for lo, ups := range d.uppers {
		for _, hi := range ups {
			s.Link(layers[lo], layers[hi])
		}
	}
}

// delivery captures per-flow sequences for comparison.
type delivery struct {
	perFlow map[int][]int
	total   int
}

func newDelivery() *delivery { return &delivery{perFlow: map[int][]int{}} }

func (d *delivery) sink(m equivMsg) {
	d.perFlow[m.flow] = append(d.perFlow[m.flow], m.seq)
	d.total++
}

func (d *delivery) equal(o *delivery) bool {
	if d.total != o.total || len(d.perFlow) != len(o.perFlow) {
		return false
	}
	for f, seqs := range d.perFlow {
		if fmt.Sprint(o.perFlow[f]) != fmt.Sprint(seqs) {
			return false
		}
	}
	return true
}

// genInjection builds a random interleaving of flows with per-flow
// increasing seq.
func genInjection(rng *rand.Rand) []equivMsg {
	flows := 1 + rng.Intn(6)
	n := 20 + rng.Intn(200)
	next := make([]int, flows)
	msgs := make([]equivMsg, 0, n)
	for i := 0; i < n; i++ {
		f := rng.Intn(flows)
		msgs = append(msgs, equivMsg{flow: f, seq: next[f]})
		next[f]++
	}
	return msgs
}

func runPlain(d randomDAG, disc Discipline, batch int, msgs []equivMsg) *delivery {
	s := NewStack[equivMsg](Options{Discipline: disc, BatchLimit: batch})
	buildEquivStack(d, s)
	out := newDelivery()
	s.SetSink(out.sink)
	for _, m := range msgs {
		if err := s.Inject(m); err != nil {
			panic(err) // unbounded: cannot happen
		}
		// Interleave Run calls sometimes so LDLP sees both single-message
		// and batched schedules.
		if disc == LDLP && m.seq%7 == 3 {
			s.Run()
		}
	}
	s.Run()
	return out
}

func runSharded(d randomDAG, shards int, msgs []equivMsg) (*delivery, int64) {
	s := NewShardedStack(Options{Discipline: LDLP, Shards: shards, BatchLimit: 14},
		func(m equivMsg) uint64 { return uint64(m.flow) },
		func(_ int, st *Stack[equivMsg]) { buildEquivStack(d, st) })
	defer s.Close()
	out := newDelivery()
	s.SetSink(out.sink)
	for _, m := range msgs {
		if err := s.Inject(m); err != nil {
			panic(err)
		}
	}
	s.Drain()
	return out, s.Stats().Delivered
}

func TestCrossDisciplineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		d := genDAG(rng)
		msgs := genInjection(rng)

		conv := runPlain(d, Conventional, 0, msgs)
		ilp := runPlain(d, ILP, 0, msgs)
		ldlp := runPlain(d, LDLP, 0, msgs)
		ldlpCapped := runPlain(d, LDLP, 1+rng.Intn(5), msgs)
		shard, shardDelivered := runSharded(d, 1+rng.Intn(4), msgs)

		if conv.total != len(msgs) {
			t.Fatalf("trial %d: conventional delivered %d of %d", trial, conv.total, len(msgs))
		}
		for name, got := range map[string]*delivery{
			"ILP": ilp, "LDLP": ldlp, "LDLP-capped": ldlpCapped, "sharded-LDLP": shard,
		} {
			if !conv.equal(got) {
				t.Errorf("trial %d (layers=%d): %s deliveries diverge from Conventional\nconv: %v\n%s: %v",
					trial, d.layers, name, conv.perFlow, name, got.perFlow)
			}
		}
		if shardDelivered != int64(len(msgs)) {
			t.Errorf("trial %d: sharded Stats.Delivered = %d, want %d", trial, shardDelivered, len(msgs))
		}
	}
}

// TestEquivalenceUnderDropTail checks the bounded-buffer story: LDLP and
// sharded-LDLP with small MaxQueued drop with ErrStackFull, Stats.Dropped
// mirrors the error count, and everything accepted is still delivered in
// per-flow order.
func TestEquivalenceUnderDropTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		d := genDAG(rng)
		msgs := genInjection(rng)

		// Plain LDLP, never running between injects so the bound binds.
		s := NewStack[equivMsg](Options{Discipline: LDLP, MaxQueued: 10})
		buildEquivStack(d, s)
		out := newDelivery()
		s.SetSink(out.sink)
		errs := 0
		for _, m := range msgs {
			if err := s.Inject(m); err == ErrStackFull {
				errs++
			}
		}
		s.Run()
		if st := s.Stats(); int(st.Dropped) != errs || out.total != len(msgs)-errs {
			t.Errorf("trial %d plain: errs=%d Dropped=%d delivered=%d injected=%d",
				trial, errs, st.Dropped, out.total, len(msgs))
		}
		for f, seqs := range out.perFlow {
			for i := 1; i < len(seqs); i++ {
				if seqs[i] <= seqs[i-1] {
					t.Errorf("trial %d plain: flow %d reordered after drops: %v", trial, f, seqs)
				}
			}
		}

		// Sharded with a tiny bound: same invariants.
		sh := NewShardedStack(Options{Discipline: LDLP, Shards: 2, MaxQueued: 8},
			func(m equivMsg) uint64 { return uint64(m.flow) },
			func(_ int, st *Stack[equivMsg]) { buildEquivStack(d, st) })
		shOut := newDelivery()
		sh.SetSink(shOut.sink)
		shErrs := 0
		for _, m := range msgs {
			if err := sh.Inject(m); err == ErrStackFull {
				shErrs++
			}
		}
		sh.Drain()
		if st := sh.Stats(); int(st.Dropped) != shErrs || shOut.total != len(msgs)-shErrs {
			t.Errorf("trial %d sharded: errs=%d Dropped=%d delivered=%d injected=%d",
				trial, shErrs, st.Dropped, shOut.total, len(msgs))
		}
		for f, seqs := range shOut.perFlow {
			for i := 1; i < len(seqs); i++ {
				if seqs[i] <= seqs[i-1] {
					t.Errorf("trial %d sharded: flow %d reordered after drops: %v", trial, f, seqs)
				}
			}
		}
		sh.Close()
	}
}
