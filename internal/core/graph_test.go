package core

import (
	"fmt"
	"strings"
	"testing"
)

const tcpIPSpec = `
# the netstack's receive graph
device > ether > ip
ip > tcp, udp, icmp
tcp > socket
udp > socket
icmp > socket
`

func TestParseGraphTopology(t *testing.T) {
	g, err := ParseGraph(tcpIPSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Order) != 7 {
		t.Fatalf("layers = %d, want 7: %v", len(g.Order), g.Order)
	}
	if g.Order[0] != "device" {
		t.Errorf("bottom layer = %q, want device", g.Order[0])
	}
	if g.Order[len(g.Order)-1] != "socket" {
		t.Errorf("top layer = %q, want socket", g.Order[len(g.Order)-1])
	}
	// Every edge must point forward in the order.
	pos := map[string]int{}
	for i, n := range g.Order {
		pos[n] = i
	}
	for _, e := range g.Edges {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v does not point upward in %v", e, g.Order)
		}
	}
	if len(g.Edges) != 8 {
		t.Errorf("edges = %d, want 8", len(g.Edges))
	}
}

func TestParseGraphErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no arrow":     "device ether",
		"self edge":    "a > a",
		"cycle":        "a > b\nb > c\nc > b",
		"two bottoms":  "a > c\nb > c",
		"empty name":   "a > , b",
		"only comment": "# nothing here",
	}
	for name, spec := range cases {
		if _, err := ParseGraph(spec); err == nil {
			t.Errorf("%s: spec %q should fail", name, spec)
		}
	}
}

func TestParseGraphDeduplicatesEdges(t *testing.T) {
	g, err := ParseGraph("a > b\na > b")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 {
		t.Errorf("edges = %d, want deduplicated 1", len(g.Edges))
	}
}

func TestBuildStackRunsTheGraph(t *testing.T) {
	var order []string
	handlers := map[string]Handler[int]{}
	var layers map[string]*Layer[int]
	mk := func(name string, nexts ...string) Handler[int] {
		return func(m int, emit Emit[int]) {
			order = append(order, fmt.Sprintf("%s:%d", name, m))
			if len(nexts) == 0 {
				emit(nil, m)
				return
			}
			emit(layers[nexts[m%len(nexts)]], m)
		}
	}
	handlers["device"] = mk("device", "ether")
	handlers["ether"] = mk("ether", "ip")
	handlers["ip"] = mk("ip", "udp", "tcp") // demux by parity
	handlers["tcp"] = mk("tcp", "socket")
	handlers["udp"] = mk("udp", "socket")
	handlers["icmp"] = mk("icmp", "socket")
	handlers["socket"] = mk("socket")

	s, ls, err := BuildStack(Options{Discipline: LDLP}, tcpIPSpec, handlers)
	if err != nil {
		t.Fatal(err)
	}
	layers = ls
	for m := 0; m < 4; m++ {
		if err := s.Inject(m); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Run(); n != 4 {
		t.Fatalf("delivered %d, want 4", n)
	}
	joined := strings.Join(order, " ")
	// Blocked order: all device, all ether, all ip; then the *higher*
	// priority branch (udp was declared after tcp in "tcp, udp, icmp"?
	// priority follows topological order) drains before the lower.
	if !strings.HasPrefix(joined, "device:0 device:1 device:2 device:3 ether:0") {
		t.Errorf("not blocked at the bottom: %s", joined)
	}
	if strings.Count(joined, "socket:") != 4 {
		t.Errorf("socket did not see all messages: %s", joined)
	}
	// Parity demux: evens through udp, odds through tcp.
	if !strings.Contains(joined, "udp:0") || !strings.Contains(joined, "tcp:1") {
		t.Errorf("demux wrong: %s", joined)
	}
}

func TestBuildStackHandlerValidation(t *testing.T) {
	handlers := map[string]Handler[int]{
		"a": func(int, Emit[int]) {},
	}
	if _, _, err := BuildStack(Options{}, "a > b", handlers); err == nil {
		t.Error("missing handler should fail")
	}
	handlers["b"] = func(int, Emit[int]) {}
	handlers["ghost"] = func(int, Emit[int]) {}
	if _, _, err := BuildStack(Options{}, "a > b", handlers); err == nil {
		t.Error("handler for unknown layer should fail")
	}
	delete(handlers, "ghost")
	if _, _, err := BuildStack(Options{}, "a > b", handlers); err != nil {
		t.Errorf("valid build failed: %v", err)
	}
}

func TestGraphPriorityMatchesTopology(t *testing.T) {
	// In a diamond a > {b, c} > d, layer d must drain before b and c,
	// and both before a's next batch — verified through processing order
	// with a batch limit.
	var order []string
	var layers map[string]*Layer[string]
	h := func(name string, next func(string) string) Handler[string] {
		return func(m string, emit Emit[string]) {
			order = append(order, name+":"+m)
			if next == nil {
				emit(nil, m)
				return
			}
			emit(layers[next(m)], m)
		}
	}
	handlers := map[string]Handler[string]{
		"a": h("a", func(m string) string {
			if m < "n" {
				return "b"
			}
			return "c"
		}),
		"b": h("b", func(string) string { return "d" }),
		"c": h("c", func(string) string { return "d" }),
		"d": h("d", nil),
	}
	s, ls, err := BuildStack(Options{Discipline: LDLP}, "a > b, c\nb > d\nc > d", handlers)
	if err != nil {
		t.Fatal(err)
	}
	layers = ls
	s.Inject("m1")
	s.Inject("z1")
	s.Run()
	// After a drains both, the scheduler runs the highest nonempty layer:
	// c (z1) then... priority: d highest. Expected: a:m1 a:z1, then c:z1
	// (c above b), then d:z1, then b:m1, d:m1.
	want := "a:m1 a:z1 c:z1 d:z1 b:m1 d:m1"
	if got := strings.Join(order, " "); got != want {
		t.Errorf("order = %q, want %q", got, want)
	}
}
