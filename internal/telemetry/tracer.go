package telemetry

import "sync"

// Tracer is one shard's flight recorder: a ring plus the shard's
// identity and registered layer names. Record methods are lock- and
// allocation-free; registration happens on the setup path.
type Tracer struct {
	clock Clock
	ring  *Ring
	label string
	shard int

	// layers maps layer index -> registered name for export. Sized at
	// registration; the record path never touches it.
	layers []string
}

// Label returns the tracer's registration label.
func (t *Tracer) Label() string { return t.label }

// Shard returns the tracer's shard index within its domain.
func (t *Tracer) Shard() int { return t.shard }

// Ring exposes the underlying ring (tests, direct snapshotting).
func (t *Tracer) Ring() *Ring { return t.ring }

// RegisterLayer names a layer index for export. Setup path only.
func (t *Tracer) RegisterLayer(index int, name string) {
	if t == nil || index < 0 {
		return
	}
	for len(t.layers) <= index {
		t.layers = append(t.layers, "")
	}
	t.layers[index] = name
}

// LayerName resolves a registered layer name ("L<i>"-style fallback for
// unregistered indices).
func (t *Tracer) LayerName(index int) string {
	if t != nil && index >= 0 && index < len(t.layers) && t.layers[index] != "" {
		return t.layers[index]
	}
	return "L" + itoa(index)
}

// Event records one flight-recorder event with the domain clock's
// current timestamp. Nil-safe and gated on the global enable flag, so
// call sites stay branch-cheap whether or not telemetry is wired or on.
//
//ldlp:hotpath
func (t *Tracer) Event(kind EventKind, layer int, arg int64) {
	if t == nil || !enabled.Load() {
		return
	}
	t.ring.Record(t.clock(), kind, uint8(layer), arg)
}

// EventAt records one event with an explicit timestamp (callers that
// already read the clock for their own bookkeeping avoid a second
// read).
//
//ldlp:hotpath
func (t *Tracer) EventAt(ts int64, kind EventKind, layer int, arg int64) {
	if t == nil || !enabled.Load() {
		return
	}
	t.ring.Record(ts, kind, uint8(layer), arg)
}

// Now reads the tracer's clock (0 for a nil tracer).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// itoa is a minimal non-negative integer formatter so LayerName does
// not pull fmt into the package (export path, but keep it lean).
func itoa(n int) string {
	if n < 0 {
		return "?"
	}
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Domain is one component's telemetry namespace — a host, a sim engine
// — owning its per-shard tracers and named histograms and snapshotting
// them together. Registration (Tracer, Hist) is mutex-guarded; the
// record paths those return are not.
type Domain struct {
	name  string
	clock Clock

	mu      sync.Mutex
	tracers []*Tracer
	// hists is insertion-ordered (snapshots and exports must not depend
	// on map iteration order); index is the lookup side.
	hists []namedHist
	index map[string]*Hist
}

type namedHist struct {
	name string
	h    *Hist
}

// NewDomain creates a telemetry domain whose events are stamped by
// clock. A nil clock stamps zero (histograms still work, spans
// degenerate to instants).
func NewDomain(name string, clock Clock) *Domain {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Domain{name: name, clock: clock, index: map[string]*Hist{}}
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.name }

// Tracer registers a new per-shard tracer with a ring of ringCap events
// (<= 0 selects DefaultRingCap). The shard index is the registration
// order.
func (d *Domain) Tracer(label string, ringCap int) *Tracer {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := &Tracer{clock: d.clock, ring: NewRing(ringCap), label: label, shard: len(d.tracers)}
	d.tracers = append(d.tracers, t)
	return t
}

// Hist returns the named histogram, creating it on first use. Names are
// stable export keys ("rx-batch", "latency-ns").
func (d *Domain) Hist(name string) *Hist {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h, ok := d.index[name]; ok {
		return h
	}
	h := &Hist{}
	d.index[name] = h
	d.hists = append(d.hists, namedHist{name: name, h: h})
	return h
}

// Snapshot captures every tracer's retained events and every
// histogram's state. Safe concurrently with recording (rings are
// seqlocked, histograms atomic); exact when writers are quiescent.
func (d *Domain) Snapshot() Snapshot {
	d.mu.Lock()
	tracers := append([]*Tracer(nil), d.tracers...)
	hists := append([]namedHist(nil), d.hists...)
	d.mu.Unlock()

	s := Snapshot{Domain: d.name, Now: d.clock()}
	for _, t := range tracers {
		ts := TracerSnapshot{
			Label:    t.label,
			Shard:    t.shard,
			Layers:   append([]string(nil), t.layers...),
			Events:   t.ring.Snapshot(),
			Recorded: t.ring.Recorded(),
		}
		ts.Lost = ts.Recorded - uint64(len(ts.Events))
		s.Tracers = append(s.Tracers, ts)
	}
	for _, nh := range hists {
		s.Hists = append(s.Hists, HistEntry{Name: nh.name, Hist: nh.h.Snapshot()})
	}
	return s
}
