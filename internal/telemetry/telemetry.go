// Package telemetry is the repository's always-on flight recorder: the
// observability substrate the paper itself argues for. §2 of the paper
// exists because Blackwell *traced* the receive path — nobody could see
// where small-message cycles went until the path was instrumented — and
// this package makes that kind of visibility a permanent, near-free
// property of the engine instead of a one-off experiment.
//
// Three pieces, layered:
//
//   - Per-shard ring-buffer event traces (Ring, Tracer): fixed-size
//     flight recorders holding the most recent scheduling events — batch
//     formed, layer entered/exited, drop, retransmit, fault verdict —
//     recorded through a pre-registered event table with zero
//     allocations and no locks on the record path. Each record is an
//     atomic fetch-add plus a handful of atomic stores guarded by a
//     per-slot sequence lock, so concurrent readers can snapshot a live
//     ring and discard torn slots instead of blocking writers.
//
//   - Lock-free power-of-two-bucket histograms (Hist): batch-size and
//     latency distributions with mergeable snapshots, replacing ad-hoc
//     max/mean counters. Observe is a few atomic adds; snapshots merge
//     bucket-wise, so per-shard histograms aggregate exactly.
//
//   - A snapshot/export layer (Domain.Snapshot, ChromeTrace): stable
//     JSON for dashboards and the Chrome trace_event format for
//     Perfetto/chrome://tracing, which makes the §3 online batching rule
//     directly visible as per-shard, per-layer spans.
//
// Recording is gated by one global flag (Enable/Enabled, default on:
// "flight recorder" means always-on). The disabled path is a couple of
// branches — no clock read, no ring write — which is what lets the hot
// path keep the gate permanently compiled in. Timestamps come from a
// caller-supplied Clock, never from the wall clock directly: simulated
// components (sim, netstack under an explicitly pumped Net) thread their
// simulated time, so traces replay bit-identically per seed, while
// real-time drivers (cmd/ldlptrace) pass a monotonic wall clock.
package telemetry

import "sync/atomic"

// enabled is the global record gate. Default on: the whole point of a
// flight recorder is that it is already running when something goes
// wrong. Disabling turns every record function into a couple of
// branches.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enable turns recording on or off process-wide and returns the previous
// state (convenient for benchmarks restoring the prior setting).
func Enable(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether recording is on.
//
//ldlp:hotpath
func Enabled() bool { return enabled.Load() }

// Clock supplies event timestamps in nanoseconds on whatever timeline
// its owner runs: simulated time for the explicitly pumped Net and the
// sim engine, a monotonic wall clock for real-time drivers. Keeping the
// clock injected (rather than calling time.Now here) is what lets the
// determinism analyzer enforce that sim-driven traces depend on the
// seed alone.
type Clock func() int64

// EventKind identifies one entry of the pre-registered event table.
// Kinds are registered at compile time — recording refers to them by
// index, so the record path never touches a string or a map.
type EventKind uint8

const (
	// EvNone marks an empty slot; it is never recorded.
	EvNone EventKind = iota
	// EvBatchFormed records one LDLP batch forming at the bottom layer;
	// Arg is the batch size (the §3 online batching rule, observed).
	EvBatchFormed
	// EvLayerEnter/EvLayerExit bracket one run-to-completion pass of a
	// layer's input queue. Layer is the layer index; Arg is the number
	// of messages the pass will/did process.
	EvLayerEnter
	EvLayerExit
	// EvDrop records a message dying mid-path; Arg is a DropReason.
	EvDrop
	// EvRetransmit records a transport retransmission; Arg is the
	// sequence number (or retry ordinal) being re-sent.
	EvRetransmit
	// EvFaultVerdict records a link-fault verdict applied to an arriving
	// frame; Arg is a VerdictBits mask.
	EvFaultVerdict
	// EvTxFlush records a transmit-side LDLP flush; Arg is the number of
	// frames that left in the batch.
	EvTxFlush

	numEventKinds
)

// KindInfo is one row of the event table: the stable export name and the
// Chrome trace_event phase the kind maps to ('B'/'E' span brackets, 'I'
// instants, 'C' counters).
type KindInfo struct {
	Name  string
	Phase byte
}

// kindTable is the pre-registered event table. Indexed by EventKind;
// recording validates kinds in tests, not on the hot path.
var kindTable = [numEventKinds]KindInfo{
	EvNone:         {Name: "none", Phase: 'I'},
	EvBatchFormed:  {Name: "batch", Phase: 'C'},
	EvLayerEnter:   {Name: "layer", Phase: 'B'},
	EvLayerExit:    {Name: "layer", Phase: 'E'},
	EvDrop:         {Name: "drop", Phase: 'I'},
	EvRetransmit:   {Name: "retransmit", Phase: 'I'},
	EvFaultVerdict: {Name: "fault", Phase: 'I'},
	EvTxFlush:      {Name: "txflush", Phase: 'C'},
}

// Kind returns the table row for k (the zero row for out-of-range kinds,
// which only a corrupted snapshot could produce).
func (k EventKind) Kind() KindInfo {
	if k >= numEventKinds {
		return KindInfo{Name: "invalid", Phase: 'I'}
	}
	return kindTable[k]
}

// String returns the kind's registered export name.
func (k EventKind) String() string { return k.Kind().Name }

// DropReason attributes an EvDrop event. The codes mirror the netstack's
// per-layer error counters so a trace can be reconciled against them.
type DropReason int64

const (
	DropUnknown DropReason = iota
	DropBadEther
	DropBadIP
	DropBadTCP
	DropBadUDP
	DropBadICMP
	DropNoSocket
	DropListenOverflow
	DropSockBuffer
	DropStackFull

	numDropReasons
)

// dropNames is indexed by DropReason (an array, not a map: the export
// path iterates nothing nondeterministic).
var dropNames = [numDropReasons]string{
	"unknown", "bad-ether", "bad-ip", "bad-tcp", "bad-udp",
	"bad-icmp", "no-socket", "listen-overflow", "sock-buffer", "stack-full",
}

// String names the reason for export.
func (r DropReason) String() string {
	if r < 0 || r >= numDropReasons {
		return "invalid"
	}
	return dropNames[r]
}

// VerdictBits encode a fault injector's verdict in an EvFaultVerdict
// event's Arg: any subset of the mutation bits, or VerdictDrop alone.
type VerdictBits int64

const (
	VerdictDrop VerdictBits = 1 << iota
	VerdictDuplicate
	VerdictCorrupt
	VerdictDelay
	VerdictReorder

	// VerdictDeliver is the explicit "no impairment" verdict, so clean
	// deliveries are distinguishable from unrecorded frames.
	VerdictDeliver VerdictBits = 0
)

// String renders the verdict mask compactly ("drop", "dup+corrupt",
// "deliver").
func (v VerdictBits) String() string {
	if v == VerdictDeliver {
		return "deliver"
	}
	// Fixed probe order keeps the rendering deterministic.
	var s string
	appendBit := func(bit VerdictBits, name string) {
		if v&bit == 0 {
			return
		}
		if s != "" {
			s += "+"
		}
		s += name
	}
	appendBit(VerdictDrop, "drop")
	appendBit(VerdictDuplicate, "dup")
	appendBit(VerdictCorrupt, "corrupt")
	appendBit(VerdictDelay, "delay")
	appendBit(VerdictReorder, "reorder")
	return s
}

// Counter is a lock-free monotonic counter whose increment is hot-path
// safe: the telemetry-native replacement for ad-hoc atomic.Int64 fields
// scattered through the substrates.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//ldlp:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//ldlp:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the value (test hygiene / pool resets; not a
// hot-path operation).
func (c *Counter) Store(v int64) { c.v.Store(v) }
