package telemetry

import (
	"encoding/json"
	"io"
)

// Snapshot is one domain's exported state: every tracer's retained
// events and every histogram, JSON-stable (fixed field order, no map
// iteration anywhere on the way out).
type Snapshot struct {
	Domain  string           `json:"domain"`
	Now     int64            `json:"now"`
	Tracers []TracerSnapshot `json:"tracers,omitempty"`
	Hists   []HistEntry      `json:"hists,omitempty"`
}

// TracerSnapshot is one shard's decoded flight-recorder contents.
type TracerSnapshot struct {
	Label  string   `json:"label"`
	Shard  int      `json:"shard"`
	Layers []string `json:"layers,omitempty"`
	Events []Event  `json:"events"`
	// Recorded counts events ever recorded; Lost is how many of those
	// the ring had already overwritten (or tore mid-snapshot) by the
	// time this snapshot ran.
	Recorded uint64 `json:"recorded"`
	Lost     uint64 `json:"lost"`
}

// LayerName resolves a layer index against the snapshot's registered
// names, mirroring Tracer.LayerName for offline consumers.
func (ts TracerSnapshot) LayerName(index int) string {
	if index >= 0 && index < len(ts.Layers) && ts.Layers[index] != "" {
		return ts.Layers[index]
	}
	return "L" + itoa(index)
}

// HistEntry is one named histogram in a snapshot.
type HistEntry struct {
	Name string       `json:"name"`
	Hist HistSnapshot `json:"hist"`
}

// Hist returns the named histogram's snapshot (zero value if absent).
func (s Snapshot) Hist(name string) (HistSnapshot, bool) {
	for _, e := range s.Hists {
		if e.Name == name {
			return e.Hist, true
		}
	}
	return HistSnapshot{}, false
}

// TraceEvent is one Chrome trace_event entry ("JSON Array Format", the
// subset Perfetto and chrome://tracing both accept). TS and Dur are in
// microseconds, per the format.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders the snapshot as Chrome trace_event entries: one
// thread per tracer (shard), layer enter/exit as 'B'/'E' spans named by
// the registered layer names, batch/txflush events as 'C' counters, and
// drop/retransmit/fault events as 'I' instants with decoded args.
// Metadata events name the process after the domain and each thread
// after its tracer label.
func (s Snapshot) ChromeTrace(pid int) []TraceEvent {
	out := make([]TraceEvent, 0, 2+len(s.Tracers))
	out = append(out, TraceEvent{
		Name: "process_name", Ph: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": s.Domain},
	})
	for _, tr := range s.Tracers {
		tid := tr.Shard + 1 // tid 0 renders oddly in some viewers
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": tr.Label},
		})
		// Depth of currently-open 'B' spans; unmatched exits at the head
		// of a wrapped ring are dropped rather than emitted unbalanced.
		depth := 0
		for _, ev := range tr.Events {
			info := ev.Kind.Kind()
			te := TraceEvent{
				Name: info.Name,
				Ph:   string(info.Phase),
				TS:   float64(ev.TS) / 1e3,
				PID:  pid,
				TID:  tid,
			}
			switch ev.Kind {
			case EvLayerEnter:
				te.Name = tr.LayerName(int(ev.Layer))
				te.Args = map[string]any{"queued": ev.Arg}
				depth++
			case EvLayerExit:
				if depth == 0 {
					continue
				}
				depth--
				te.Name = tr.LayerName(int(ev.Layer))
				te.Args = map[string]any{"processed": ev.Arg}
			case EvBatchFormed:
				te.Args = map[string]any{"batch": ev.Arg}
			case EvTxFlush:
				te.Args = map[string]any{"frames": ev.Arg}
			case EvDrop:
				te.Args = map[string]any{
					"layer":  tr.LayerName(int(ev.Layer)),
					"reason": DropReason(ev.Arg).String(),
				}
			case EvRetransmit:
				te.Args = map[string]any{"seq": ev.Arg}
			case EvFaultVerdict:
				te.Args = map[string]any{"verdict": VerdictBits(ev.Arg).String()}
			default:
				te.Args = map[string]any{"arg": ev.Arg}
			}
			out = append(out, te)
		}
		// Close any spans the ring's tail left open so the JSON stays
		// balanced for strict viewers.
		for ; depth > 0; depth-- {
			out = append(out, TraceEvent{
				Name: "truncated", Ph: "E", TS: float64(s.Now) / 1e3, PID: pid, TID: tid,
			})
		}
	}
	return out
}

// WriteChromeTrace writes events as a Chrome trace_event JSON array,
// one event per line for greppability.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}

// MarshalJSON-stability helper: Summary condenses a histogram snapshot
// to the headline stats the bench JSON and expvar exports publish.
type HistSummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   int64   `json:"max"`
}

// Summary computes the headline stats of a snapshot.
func (s HistSnapshot) Summary() HistSummary {
	return HistSummary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}
