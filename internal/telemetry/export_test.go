package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func buildSnapshot(t *testing.T) Snapshot {
	t.Helper()
	now := int64(0)
	d := NewDomain("host-a", func() int64 { return now })
	tr := d.Tracer("shard0", 64)
	tr.RegisterLayer(0, "device")
	tr.RegisterLayer(1, "ip")

	now = 1000
	tr.Event(EvLayerEnter, 1, 4)
	now = 2000
	tr.Event(EvBatchFormed, 0, 4)
	now = 3000
	tr.Event(EvLayerExit, 1, 4)
	now = 4000
	tr.Event(EvDrop, 1, int64(DropBadIP))
	tr.Event(EvRetransmit, 0, 17)
	tr.Event(EvFaultVerdict, 0, int64(VerdictDrop|VerdictCorrupt))
	tr.Event(EvTxFlush, 0, 3)

	d.Hist("rx-batch").Observe(4)
	return d.Snapshot()
}

func TestSnapshotJSONStable(t *testing.T) {
	s := buildSnapshot(t)
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(buildSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("snapshot JSON not stable across identical runs:\n%s\n%s", b1, b2)
	}
	var back Snapshot
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Domain != "host-a" || len(back.Tracers) != 1 || len(back.Tracers[0].Events) != 7 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if h, ok := back.Hist("rx-batch"); !ok || h.Count != 1 {
		t.Fatalf("round-trip lost histogram: %+v ok=%v", h, ok)
	}
}

func TestChromeTraceStructure(t *testing.T) {
	s := buildSnapshot(t)
	events := s.ChromeTrace(7)

	// Starts with process/thread metadata.
	if events[0].Ph != "M" || events[0].Name != "process_name" || events[0].Args["name"] != "host-a" {
		t.Fatalf("missing process metadata: %+v", events[0])
	}
	if events[1].Ph != "M" || events[1].Name != "thread_name" || events[1].Args["name"] != "shard0" {
		t.Fatalf("missing thread metadata: %+v", events[1])
	}

	byPh := map[string][]TraceEvent{}
	for _, ev := range events {
		if ev.PID != 7 {
			t.Fatalf("event with wrong pid: %+v", ev)
		}
		byPh[ev.Ph] = append(byPh[ev.Ph], ev)
	}
	// One B/E pair named by the registered layer.
	if len(byPh["B"]) != 1 || byPh["B"][0].Name != "ip" {
		t.Fatalf("B events wrong: %+v", byPh["B"])
	}
	if len(byPh["E"]) != 1 || byPh["E"][0].Name != "ip" {
		t.Fatalf("E events wrong: %+v", byPh["E"])
	}
	if byPh["B"][0].TS != 1.0 || byPh["E"][0].TS != 3.0 {
		t.Fatalf("span ts not converted ns->us: B=%v E=%v", byPh["B"][0].TS, byPh["E"][0].TS)
	}
	// Counters: batch + txflush.
	if len(byPh["C"]) != 2 {
		t.Fatalf("C events = %+v, want batch and txflush", byPh["C"])
	}
	// Instants: drop, retransmit, fault — with decoded args.
	var sawDrop, sawRetx, sawFault bool
	for _, ev := range byPh["I"] {
		switch ev.Name {
		case "drop":
			sawDrop = true
			if ev.Args["reason"] != DropBadIP.String() {
				t.Errorf("drop reason not decoded: %+v", ev.Args)
			}
			if ev.Args["layer"] != "ip" {
				t.Errorf("drop layer not resolved: %+v", ev.Args)
			}
		case "retransmit":
			sawRetx = true
		case "fault":
			sawFault = true
			if ev.Args["verdict"] != "drop+corrupt" {
				t.Errorf("verdict not decoded: %+v", ev.Args)
			}
		}
	}
	if !sawDrop || !sawRetx || !sawFault {
		t.Fatalf("missing instants: drop=%v retx=%v fault=%v", sawDrop, sawRetx, sawFault)
	}
}

func TestChromeTraceBalancesTruncatedSpans(t *testing.T) {
	// An exit whose enter was overwritten must be dropped; an enter
	// whose exit has not happened yet must be closed.
	s := Snapshot{
		Domain: "d",
		Now:    9000,
		Tracers: []TracerSnapshot{{
			Label: "s0",
			Events: []Event{
				{Seq: 10, TS: 100, Kind: EvLayerExit, Layer: 2, Arg: 1}, // orphan exit
				{Seq: 11, TS: 200, Kind: EvLayerEnter, Layer: 3, Arg: 1},
				{Seq: 12, TS: 300, Kind: EvLayerExit, Layer: 3, Arg: 1},
				{Seq: 13, TS: 400, Kind: EvLayerEnter, Layer: 4, Arg: 1}, // dangling enter
			},
		}},
	}
	events := s.ChromeTrace(1)
	depth := 0
	for _, ev := range events {
		switch ev.Ph {
		case "B":
			depth++
		case "E":
			depth--
			if depth < 0 {
				t.Fatalf("unbalanced: E without matching B at %+v", ev)
			}
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced: %d unclosed B spans", depth)
	}
}

func TestWriteChromeTraceWellFormed(t *testing.T) {
	s := buildSnapshot(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, s.ChromeTrace(1)); err != nil {
		t.Fatal(err)
	}
	var parsed []TraceEvent
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != len(s.ChromeTrace(1)) {
		t.Fatalf("parsed %d events, want %d", len(parsed), len(s.ChromeTrace(1)))
	}
	if !strings.HasPrefix(buf.String(), "[\n") {
		t.Error("trace should open as a JSON array")
	}
}

func TestTracerSnapshotLost(t *testing.T) {
	d := NewDomain("d", func() int64 { return 0 })
	tr := d.Tracer("s0", 4)
	for i := 0; i < 10; i++ {
		tr.Event(EvBatchFormed, 0, int64(i))
	}
	s := d.Snapshot()
	ts := s.Tracers[0]
	if ts.Recorded != 10 {
		t.Fatalf("Recorded = %d, want 10", ts.Recorded)
	}
	if ts.Lost != 10-uint64(len(ts.Events)) {
		t.Fatalf("Lost = %d inconsistent with %d retained", ts.Lost, len(ts.Events))
	}
}

func TestKindTableComplete(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		info := k.Kind()
		if info.Name == "" {
			t.Errorf("kind %d has no registered name", k)
		}
		switch info.Phase {
		case 'B', 'E', 'I', 'C':
		default:
			t.Errorf("kind %d has invalid phase %q", k, info.Phase)
		}
	}
	if EventKind(200).Kind().Name != "invalid" {
		t.Error("out-of-range kind should decode as invalid")
	}
}

func TestDropReasonAndVerdictStrings(t *testing.T) {
	if DropBadTCP.String() != "bad-tcp" || DropReason(99).String() != "invalid" {
		t.Error("DropReason.String wrong")
	}
	if VerdictDeliver.String() != "deliver" {
		t.Error("VerdictDeliver should render as deliver")
	}
	if got := (VerdictDuplicate | VerdictDelay).String(); got != "dup+delay" {
		t.Errorf("verdict mask = %q, want dup+delay", got)
	}
}
