package telemetry

import "sync/atomic"

// DefaultRingCap is the per-shard flight-recorder depth when the owner
// does not choose one: deep enough to hold several scheduling rounds of
// history, small enough (32 KB) that every host/shard can afford one.
const DefaultRingCap = 1024

// slot is one ring entry. Every field is atomic so a live ring can be
// snapshotted by concurrent readers without locks and without races:
// seq is a per-slot sequence lock (odd while the writer is mid-record,
// even — encoding the slot's logical index — once the payload is
// consistent), and the payload words are plain atomic stores/loads.
type slot struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	meta atomic.Uint64 // kind | layer<<8
	arg  atomic.Int64
}

// Ring is a fixed-size flight-recorder trace: the most recent capacity
// events, oldest overwritten first. Writers never block and never
// allocate; multiple writers are safe (slots are claimed by atomic
// fetch-add), though the intended discipline is one writer per ring —
// one shard, one tracer. Readers snapshot concurrently and discard
// slots caught mid-write.
type Ring struct {
	slots []slot
	mask  uint64
	pos   atomic.Uint64 // next logical index to write
}

// NewRing builds a ring with capacity rounded up to a power of two
// (minimum 2; capacity <= 0 selects DefaultRingCap).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap reports the ring's (power-of-two) capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded reports how many events have ever been recorded; the ring
// retains the last Cap() of them.
func (r *Ring) Recorded() uint64 { return r.pos.Load() }

// Record appends one event. Lock-free and allocation-free: claim a
// logical index, mark the slot's sequence odd, store the payload, mark
// it even with the generation encoded — a concurrent reader that saw
// the odd value (or a different generation) discards the slot.
//
//ldlp:hotpath
func (r *Ring) Record(ts int64, kind EventKind, layer uint8, arg int64) {
	i := r.pos.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(2*i + 1)
	s.ts.Store(ts)
	s.meta.Store(uint64(kind) | uint64(layer)<<8)
	s.arg.Store(arg)
	s.seq.Store(2 * (i + 1))
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the event's logical index: monotonic per ring, so gaps
	// reveal exactly which events a snapshot lost to overwriting.
	Seq uint64 `json:"seq"`
	// TS is the Clock timestamp in nanoseconds.
	TS int64 `json:"ts"`
	// Kind indexes the pre-registered event table.
	Kind EventKind `json:"kind"`
	// Layer is the recording layer's index (meaningful for layer and
	// batch events; zero otherwise).
	Layer uint8 `json:"layer"`
	// Arg is the kind-specific payload (batch size, DropReason, ...).
	Arg int64 `json:"arg"`
}

// Snapshot returns the ring's retained events oldest-first. It is safe
// against concurrent writers: each slot is validated by its sequence
// lock before and after the payload loads, so a slot being overwritten
// mid-read is skipped rather than returned torn. The result slice is
// freshly allocated (snapshotting is not a hot-path operation).
func (r *Ring) Snapshot() []Event {
	pos := r.pos.Load()
	capacity := uint64(len(r.slots))
	lo := uint64(0)
	if pos > capacity {
		lo = pos - capacity
	}
	out := make([]Event, 0, pos-lo)
	for i := lo; i < pos; i++ {
		s := &r.slots[i&r.mask]
		want := 2 * (i + 1)
		if s.seq.Load() != want {
			continue // mid-write, or already overwritten by a later lap
		}
		ts := s.ts.Load()
		meta := s.meta.Load()
		arg := s.arg.Load()
		if s.seq.Load() != want {
			continue // overwritten while we read the payload
		}
		out = append(out, Event{
			Seq:   i,
			TS:    ts,
			Kind:  EventKind(meta & 0xff),
			Layer: uint8(meta >> 8),
			Arg:   arg,
		})
	}
	return out
}
