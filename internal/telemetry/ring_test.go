package telemetry

import (
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{-1, DefaultRingCap},
		{0, DefaultRingCap},
		{1, 2},
		{2, 2},
		{3, 4},
		{1000, 1024},
		{1024, 1024},
		{1025, 2048},
	}
	for _, c := range cases {
		if got := NewRing(c.in).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRingRecordAndSnapshot(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Record(int64(100+i), EvBatchFormed, 2, int64(i))
	}
	evs := r.Snapshot()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, i)
		}
		if ev.TS != int64(100+i) || ev.Kind != EvBatchFormed || ev.Layer != 2 || ev.Arg != int64(i) {
			t.Errorf("event %d decoded wrong: %+v", i, ev)
		}
	}
}

// TestRingWraparound overfills a small ring several times over and
// checks the snapshot retains exactly the newest capacity-many events,
// oldest-first and contiguous.
func TestRingWraparound(t *testing.T) {
	const capacity = 16
	r := NewRing(capacity)
	total := 3 * capacity
	for i := 0; i < total; i++ {
		r.Record(int64(i), EvLayerEnter, uint8(i%7), int64(i*10))
	}
	if got := r.Recorded(); got != uint64(total) {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	evs := r.Snapshot()
	if len(evs) != capacity {
		t.Fatalf("snapshot retained %d events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		wantSeq := uint64(total - capacity + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: Seq = %d, want %d (not the newest contiguous tail)", i, ev.Seq, wantSeq)
		}
		if ev.TS != int64(wantSeq) || ev.Arg != int64(wantSeq*10) || ev.Layer != uint8(wantSeq%7) {
			t.Errorf("event %d payload inconsistent with its seq: %+v", i, ev)
		}
	}
}

// TestRingTornReadSafety hammers a small ring from writers while
// concurrent readers snapshot it. Every event a snapshot returns must
// be internally consistent (payload derived from one recording, never a
// mix of two) — the per-slot sequence lock is what guarantees this, and
// the all-atomic slot fields are what make it clean under -race.
func TestRingTornReadSafety(t *testing.T) {
	const (
		writers   = 4
		readers   = 4
		perWriter = 20000
	)
	r := NewRing(32) // small: maximizes overwrite pressure
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Encode a checkable invariant: arg == ts*3 and the layer
				// is ts mod 251, for whatever ts the writer stamps.
				ts := int64(i)
				r.Record(ts, EvDrop, uint8(ts%251), ts*3)
			}
		}()
	}

	errc := make(chan string, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := r.Snapshot()
				lastSeq := uint64(0)
				for i, ev := range evs {
					if ev.Arg != ev.TS*3 || ev.Layer != uint8(ev.TS%251) || ev.Kind != EvDrop {
						errc <- "torn event: payload fields from different recordings"
						return
					}
					if i > 0 && ev.Seq <= lastSeq {
						errc <- "snapshot not in increasing Seq order"
						return
					}
					lastSeq = ev.Seq
				}
			}
		}()
	}

	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	writersDone := make(chan struct{})
	go func() {
		// Writers have no stop channel; wait for their counts.
		for r.Recorded() < uint64(writers*perWriter) {
		}
		close(writersDone)
	}()
	<-writersDone
	close(stop)
	<-done
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}

	// Post-quiescence snapshot is exact: full capacity, all consistent.
	evs := r.Snapshot()
	if len(evs) != r.Cap() {
		t.Fatalf("quiescent snapshot has %d events, want full capacity %d", len(evs), r.Cap())
	}
}

func TestRingSnapshotEmptyRing(t *testing.T) {
	if evs := NewRing(8).Snapshot(); len(evs) != 0 {
		t.Fatalf("empty ring snapshot returned %d events", len(evs))
	}
}

func TestEnableGate(t *testing.T) {
	d := NewDomain("gate", func() int64 { return 42 })
	tr := d.Tracer("shard0", 8)
	h := d.Hist("x")

	prev := Enable(false)
	defer Enable(prev)
	tr.Event(EvBatchFormed, 0, 9)
	h.Observe(9)
	if got := tr.Ring().Recorded(); got != 0 {
		t.Errorf("disabled tracer recorded %d events", got)
	}
	if got := h.Count(); got != 0 {
		t.Errorf("disabled hist observed %d samples", got)
	}

	Enable(true)
	tr.Event(EvBatchFormed, 0, 9)
	h.Observe(9)
	if got := tr.Ring().Recorded(); got != 1 {
		t.Errorf("enabled tracer recorded %d events, want 1", got)
	}
	if got := h.Count(); got != 1 {
		t.Errorf("enabled hist observed %d samples, want 1", got)
	}
	evs := tr.Ring().Snapshot()
	if len(evs) != 1 || evs[0].TS != 42 {
		t.Errorf("event not stamped by domain clock: %+v", evs)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Event(EvDrop, 1, 2) // must not panic
	tr.EventAt(5, EvDrop, 1, 2)
	tr.RegisterLayer(0, "x")
	if tr.Now() != 0 {
		t.Error("nil tracer Now() != 0")
	}
	if got := tr.LayerName(3); got != "L3" {
		t.Errorf("nil tracer LayerName = %q", got)
	}
}

func TestRecordAllocFree(t *testing.T) {
	r := NewRing(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(1, EvBatchFormed, 0, 2)
	})
	if allocs != 0 {
		t.Fatalf("Ring.Record allocates %v/op, want 0", allocs)
	}
	d := NewDomain("a", func() int64 { return 7 })
	tr := d.Tracer("s0", 64)
	allocs = testing.AllocsPerRun(1000, func() {
		tr.Event(EvLayerEnter, 1, 3)
	})
	if allocs != 0 {
		t.Fatalf("Tracer.Event allocates %v/op, want 0", allocs)
	}
	h := d.Hist("h")
	allocs = testing.AllocsPerRun(1000, func() {
		h.Observe(11)
	})
	if allocs != 0 {
		t.Fatalf("Hist.Observe allocates %v/op, want 0", allocs)
	}
}

func BenchmarkRingRecord(b *testing.B) {
	r := NewRing(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(int64(i), EvBatchFormed, 3, 17)
	}
}

func BenchmarkTracerEventDisabled(b *testing.B) {
	d := NewDomain("bench", func() int64 { return 0 })
	tr := d.Tracer("s0", 1024)
	prev := Enable(false)
	defer Enable(prev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Event(EvBatchFormed, 3, 17)
	}
}
