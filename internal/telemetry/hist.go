package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the bucket count: bucket b holds values v with
// bits.Len64(v) == b, i.e. bucket 0 holds exactly 0 and bucket b>0
// holds [2^(b-1), 2^b). 64 buckets cover every non-negative int64.
const HistBuckets = 64

// Hist is a lock-free power-of-two-bucket histogram for non-negative
// integer samples (batch sizes, latencies in nanoseconds). Observe is a
// few atomic adds — safe from any number of goroutines — and snapshots
// merge exactly, so per-shard histograms aggregate without locks.
type Hist struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one sample (negative samples clamp to zero; the
// distributions this tracks are non-negative by construction).
//
//ldlp:hotpath
func (h *Hist) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))&(HistBuckets-1)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of samples observed so far.
func (h *Hist) Count() int64 { return h.count.Load() }

// Max returns the largest sample observed so far (0 when empty).
func (h *Hist) Max() int64 { return h.max.Load() }

// Snapshot copies the histogram's state. Exact when writers are
// quiescent; a consistent-enough point-in-time view otherwise (bucket
// counts are read individually, so a snapshot taken mid-Observe may be
// one sample short in the aggregate fields).
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Reset zeroes the histogram (test hygiene; not for concurrent use with
// writers).
func (h *Hist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}

// HistSnapshot is a plain-value copy of a Hist, mergeable and JSON-
// stable. Merging snapshots from per-shard histograms yields exactly
// the histogram a single shared instance would have recorded.
type HistSnapshot struct {
	Buckets [HistBuckets]int64 `json:"buckets"`
	Count   int64              `json:"count"`
	Sum     int64              `json:"sum"`
	Max     int64              `json:"max"`
}

// Merge folds other into s bucket-wise.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
}

// Mean returns the exact sample mean (the sum is tracked, not
// reconstructed from buckets).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by walking the buckets
// and interpolating linearly inside the covering bucket. Power-of-two
// buckets bound the relative error by 2x, which is what batch-size and
// latency tails need; the tracked Max caps the top bucket so p100 is
// exact.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(b)
		if float64(s.Max) < hi {
			hi = float64(s.Max)
		}
		if cum+float64(n) >= rank {
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += float64(n)
	}
	return float64(s.Max)
}

// bucketBounds returns bucket b's half-open value range [lo, hi).
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 0
	}
	lo = float64(uint64(1) << (b - 1))
	return lo, 2 * lo
}
