package telemetry

import (
	"math/rand"
	"sync"
	"testing"
)

func TestHistBucketPlacement(t *testing.T) {
	var h Hist
	h.Observe(0)  // bucket 0
	h.Observe(1)  // bucket 1: [1,2)
	h.Observe(2)  // bucket 2: [2,4)
	h.Observe(3)  // bucket 2
	h.Observe(4)  // bucket 3: [4,8)
	h.Observe(-5) // clamps to 0 -> bucket 0
	s := h.Snapshot()
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1}
	for b, n := range s.Buckets {
		if n != want[b] {
			t.Errorf("bucket %d = %d, want %d", b, n, want[b])
		}
	}
	if s.Count != 6 || s.Max != 4 || s.Sum != 10 {
		t.Errorf("Count/Max/Sum = %d/%d/%d, want 6/4/10", s.Count, s.Max, s.Sum)
	}
}

func TestHistLargeValuesNoOverflow(t *testing.T) {
	var h Hist
	const big = int64(1)<<62 + 12345
	h.Observe(big)
	s := h.Snapshot()
	if s.Buckets[63] != 1 {
		t.Fatalf("1<<62-range value not in bucket 63: %v", s.Buckets)
	}
	if got := s.Quantile(1.0); got != float64(big) {
		t.Errorf("p100 = %v, want %v (Max caps the top bucket)", got, float64(big))
	}
}

// TestHistMergeEqualsSingleStream is the mergeability property: split a
// random sample stream across k shard histograms, merge the snapshots,
// and the result must be bit-identical to one histogram fed the whole
// stream.
func TestHistMergeEqualsSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(8)
		n := 1 + rng.Intn(5000)
		shards := make([]*Hist, k)
		for i := range shards {
			shards[i] = &Hist{}
		}
		var single Hist
		for i := 0; i < n; i++ {
			// Mix magnitudes so many buckets get hit.
			v := rng.Int63() >> uint(rng.Intn(63))
			shards[rng.Intn(k)].Observe(v)
			single.Observe(v)
		}
		var merged HistSnapshot
		for _, sh := range shards {
			merged.Merge(sh.Snapshot())
		}
		want := single.Snapshot()
		if merged != want {
			t.Fatalf("trial %d (k=%d n=%d): merged snapshot != single-stream\nmerged: %+v\nsingle: %+v",
				trial, k, n, merged, want)
		}
	}
}

func TestHistQuantileSanity(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	// Power-of-two buckets bound relative error by 2x in each direction.
	if p50 := s.Quantile(0.5); p50 < 250 || p50 > 1000 {
		t.Errorf("p50 = %v, outside [250, 1000] for uniform 1..1000", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 495 || p99 > 1000 {
		t.Errorf("p99 = %v, outside [495, 1000]", p99)
	}
	if p0 := s.Quantile(0); p0 < 0 || p0 > 2 {
		t.Errorf("p0 = %v, want ~1", p0)
	}
	if p100 := s.Quantile(1); p100 != 1000 {
		t.Errorf("p100 = %v, want exactly Max=1000", p100)
	}
	if mean := s.Mean(); mean != 500.5 {
		t.Errorf("Mean = %v, want exact 500.5", mean)
	}
	// Monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gives %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean should be 0")
	}
	var h Hist
	h.Observe(7)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got < 4 || got > 7 {
		t.Errorf("single-sample p50 = %v, want within its bucket capped at Max", got)
	}
	if s.Quantile(-1) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("out-of-range q not clamped")
	}
}

// TestHistConcurrentObserve checks the aggregate fields stay exact
// under concurrent writers (every Add is atomic; -race validates the
// memory model side).
func TestHistConcurrentObserve(t *testing.T) {
	var h Hist
	const goroutines = 8
	const per = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*per)
	}
	wantMax := int64(goroutines*per - 1)
	if s.Max != wantMax {
		t.Errorf("Max = %d, want %d", s.Max, wantMax)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	wantSum := int64(goroutines*per) * (goroutines*per - 1) / 2
	if s.Sum != wantSum {
		t.Errorf("Sum = %d, want %d", s.Sum, wantSum)
	}
}

func TestHistReset(t *testing.T) {
	var h Hist
	h.Observe(3)
	h.Reset()
	if s := h.Snapshot(); s != (HistSnapshot{}) {
		t.Errorf("Reset left state: %+v", s)
	}
}

func TestHistSummary(t *testing.T) {
	var h Hist
	for i := 0; i < 100; i++ {
		h.Observe(8)
	}
	sum := h.Snapshot().Summary()
	if sum.Count != 100 || sum.Max != 8 || sum.Mean != 8 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.P50 < 8 || sum.P50 > 8 {
		t.Errorf("p50 = %v, want 8 (all samples identical, Max caps bucket)", sum.P50)
	}
}

func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}
