// Package dns implements a compact DNS (RFC 1035 subset): the very first
// protocol the paper's §1 lists among the small-message protocols that
// are "ubiquitous in the Internet". Queries and responses are one small
// UDP datagram each — exactly the regime where protocol-code locality,
// not data movement, dominates — and a busy resolver or authoritative
// server is a natural LDLP customer.
//
// The subset: A-record queries and answers, NXDOMAIN/FORMERR/SERVFAIL
// response codes, recursion-desired/available bits, and name compression
// on decode (with pointer-loop protection). Encoding writes plain labels.
package dns

import (
	"errors"
	"fmt"
	"strings"

	"ldlp/internal/layers"
)

// Record types and classes (RFC 1035 §3.2).
const (
	TypeA   = 1
	ClassIN = 1
)

// Header flag bits.
const (
	FlagQR = 1 << 15 // response
	FlagAA = 1 << 10 // authoritative answer
	FlagTC = 1 << 9  // truncated
	FlagRD = 1 << 8  // recursion desired
	FlagRA = 1 << 7  // recursion available
)

// Response codes.
const (
	RCodeOK       = 0
	RCodeFormErr  = 1
	RCodeServFail = 2
	RCodeNXDomain = 3
)

// Decode errors.
var (
	ErrTruncated = errors.New("dns: truncated message")
	ErrBadName   = errors.New("dns: malformed name")
	ErrPtrLoop   = errors.New("dns: compression pointer loop")
)

// Question is one query.
type Question struct {
	Name  string
	Type  uint16
	Class uint16
}

// RR is one resource record (A records carry the address in A).
type RR struct {
	Name  string
	Type  uint16
	Class uint16
	TTL   uint32
	A     layers.IPAddr
}

// Message is a DNS message.
type Message struct {
	ID        uint16
	Flags     uint16
	Questions []Question
	Answers   []RR
}

// RCode extracts the response code.
func (m *Message) RCode() int { return int(m.Flags & 0xf) }

// Response reports the QR bit.
func (m *Message) Response() bool { return m.Flags&FlagQR != 0 }

// encodeName appends a domain name in label format. Names are dot-
// separated; a trailing dot is tolerated.
func encodeName(b []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		total := 0
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
			}
			total += len(label) + 1
			if total > 255 {
				return nil, fmt.Errorf("%w: name too long", ErrBadName)
			}
			b = append(b, byte(len(label)))
			b = append(b, label...)
		}
	}
	return append(b, 0), nil
}

// decodeName reads a name at offset off, following compression pointers,
// and returns the name plus the offset just past the name's in-place
// representation.
func decodeName(b []byte, off int) (string, int, error) {
	var labels []string
	jumped := false
	next := 0 // return offset (set at the first pointer)
	hops := 0
	for {
		if off >= len(b) {
			return "", 0, ErrTruncated
		}
		c := int(b[off])
		switch {
		case c == 0:
			if !jumped {
				next = off + 1
			}
			return strings.Join(labels, "."), next, nil
		case c&0xc0 == 0xc0:
			if off+1 >= len(b) {
				return "", 0, ErrTruncated
			}
			if hops++; hops > 32 {
				return "", 0, ErrPtrLoop
			}
			ptr := (c&0x3f)<<8 | int(b[off+1])
			if !jumped {
				next = off + 2
				jumped = true
			}
			if ptr >= off && !jumped {
				return "", 0, ErrPtrLoop
			}
			off = ptr
		case c&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type %#x", ErrBadName, c)
		default:
			if off+1+c > len(b) {
				return "", 0, ErrTruncated
			}
			labels = append(labels, string(b[off+1:off+1+c]))
			if len(labels) > 64 {
				return "", 0, fmt.Errorf("%w: too many labels", ErrBadName)
			}
			off += 1 + c
		}
	}
}

func put16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func put32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Encode serializes the message.
func (m *Message) Encode() ([]byte, error) {
	b := make([]byte, 0, 64)
	b = put16(b, m.ID)
	b = put16(b, m.Flags)
	b = put16(b, uint16(len(m.Questions)))
	b = put16(b, uint16(len(m.Answers)))
	b = put16(b, 0) // NSCOUNT
	b = put16(b, 0) // ARCOUNT
	var err error
	for _, q := range m.Questions {
		if b, err = encodeName(b, q.Name); err != nil {
			return nil, err
		}
		b = put16(b, q.Type)
		b = put16(b, q.Class)
	}
	for _, rr := range m.Answers {
		if b, err = encodeName(b, rr.Name); err != nil {
			return nil, err
		}
		b = put16(b, rr.Type)
		b = put16(b, rr.Class)
		b = put32(b, rr.TTL)
		if rr.Type == TypeA {
			b = put16(b, 4)
			b = append(b, rr.A[:]...)
		} else {
			b = put16(b, 0)
		}
	}
	return b, nil
}

func get16(b []byte, off int) (uint16, error) {
	if off+2 > len(b) {
		return 0, ErrTruncated
	}
	return uint16(b[off])<<8 | uint16(b[off+1]), nil
}

// Decode parses a DNS message (with compression-pointer support).
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(b))
	}
	m := &Message{
		ID:    uint16(b[0])<<8 | uint16(b[1]),
		Flags: uint16(b[2])<<8 | uint16(b[3]),
	}
	qd := int(b[4])<<8 | int(b[5])
	an := int(b[6])<<8 | int(b[7])
	if qd > 32 || an > 128 {
		return nil, fmt.Errorf("dns: implausible counts qd=%d an=%d", qd, an)
	}
	off := 12
	for i := 0; i < qd; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		off = next
		q := Question{Name: name}
		var err2 error
		if q.Type, err2 = get16(b, off); err2 != nil {
			return nil, err2
		}
		if q.Class, err2 = get16(b, off+2); err2 != nil {
			return nil, err2
		}
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for i := 0; i < an; i++ {
		name, next, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		off = next
		rr := RR{Name: name}
		var err2 error
		if rr.Type, err2 = get16(b, off); err2 != nil {
			return nil, err2
		}
		if rr.Class, err2 = get16(b, off+2); err2 != nil {
			return nil, err2
		}
		if off+8 > len(b) {
			return nil, ErrTruncated
		}
		rr.TTL = uint32(b[off+4])<<24 | uint32(b[off+5])<<16 | uint32(b[off+6])<<8 | uint32(b[off+7])
		rdlen, err2 := get16(b, off+8)
		if err2 != nil {
			return nil, err2
		}
		off += 10
		if off+int(rdlen) > len(b) {
			return nil, ErrTruncated
		}
		if rr.Type == TypeA {
			if rdlen != 4 {
				return nil, fmt.Errorf("dns: A record rdlength %d", rdlen)
			}
			copy(rr.A[:], b[off:off+4])
		}
		off += int(rdlen)
		m.Answers = append(m.Answers, rr)
	}
	return m, nil
}
