package dns

import (
	"fmt"
	"strings"

	"ldlp/internal/layers"
	"ldlp/internal/netstack"
)

// Port is the DNS port.
const Port = 53

// Server is an authoritative DNS server over the netstack: one zone of
// A records, answering from its table, NXDOMAIN otherwise. Serving is
// driven by Poll (single-threaded, like everything on the netstack).
type Server struct {
	sock *netstack.UDPSock
	zone map[string]layers.IPAddr
	// Queries/Answered/NXDomain/FormErr count traffic.
	Queries, Answered, NXDomain, FormErr int64
}

// NewServer binds an authoritative server on the host.
func NewServer(h *netstack.Host) (*Server, error) {
	sock, err := h.UDPSocket(Port)
	if err != nil {
		return nil, err
	}
	return &Server{sock: sock, zone: make(map[string]layers.IPAddr)}, nil
}

// Add publishes an A record.
func (s *Server) Add(name string, addr layers.IPAddr) {
	s.zone[canonical(name)] = addr
}

func canonical(name string) string {
	return strings.ToLower(strings.TrimSuffix(name, "."))
}

// Poll answers every pending query.
func (s *Server) Poll() {
	for {
		dg, ok := s.sock.Recv()
		if !ok {
			return
		}
		s.Queries++
		q, err := Decode(dg.Data)
		reply := &Message{Flags: FlagQR | FlagAA}
		if err != nil || len(q.Questions) == 0 {
			s.FormErr++
			if err == nil {
				reply.ID = q.ID
			}
			reply.Flags |= RCodeFormErr
		} else {
			reply.ID = q.ID
			reply.Questions = q.Questions
			if q.Flags&FlagRD != 0 {
				reply.Flags |= FlagRD | FlagRA
			}
			question := q.Questions[0]
			addr, found := s.zone[canonical(question.Name)]
			switch {
			case question.Type != TypeA || question.Class != ClassIN:
				reply.Flags |= RCodeNXDomain
				s.NXDomain++
			case found:
				reply.Answers = []RR{{
					Name: question.Name, Type: TypeA, Class: ClassIN,
					TTL: 300, A: addr,
				}}
				s.Answered++
			default:
				reply.Flags |= RCodeNXDomain
				s.NXDomain++
			}
		}
		out, err := reply.Encode()
		if err != nil {
			continue // unencodable reply (bad name echoed back): drop
		}
		s.sock.SendTo(dg.Src, dg.SrcPort, out)
	}
}

// Resolver issues queries and matches responses by ID, retrying on a
// timer like a stub resolver.
type Resolver struct {
	host   *netstack.Host
	sock   *netstack.UDPSock
	server layers.IPAddr
	nextID uint16

	pending map[uint16]*Lookup
	// Retries/Timeouts count recovery activity.
	Retries, Timeouts int64

	// RetryInterval and MaxAttempts tune the stub's persistence.
	RetryInterval float64
	MaxAttempts   int
}

// Lookup is one in-flight (or finished) name resolution.
type Lookup struct {
	Name string
	// Done reports completion; check Err and Addr after.
	Done bool
	Err  error
	Addr layers.IPAddr

	id       uint16
	deadline float64
	attempts int
}

// NewResolver binds a stub resolver on the host, pointed at a server.
func NewResolver(h *netstack.Host, port uint16, server layers.IPAddr) (*Resolver, error) {
	sock, err := h.UDPSocket(port)
	if err != nil {
		return nil, err
	}
	return &Resolver{
		host: h, sock: sock, server: server,
		pending:       make(map[uint16]*Lookup),
		RetryInterval: 1.0,
		MaxAttempts:   3,
	}, nil
}

// Resolve starts a lookup; pump the network and call Poll/Tick until
// Done.
func (r *Resolver) Resolve(name string) *Lookup {
	r.nextID++
	lk := &Lookup{Name: name, id: r.nextID}
	r.pending[lk.id] = lk
	r.sendQuery(lk)
	return lk
}

func (r *Resolver) sendQuery(lk *Lookup) {
	m := &Message{
		ID:    lk.id,
		Flags: FlagRD,
		Questions: []Question{{
			Name: lk.Name, Type: TypeA, Class: ClassIN,
		}},
	}
	b, err := m.Encode()
	if err != nil {
		lk.Done, lk.Err = true, err
		delete(r.pending, lk.id)
		return
	}
	lk.attempts++
	lk.deadline = r.host.Now() + r.RetryInterval
	r.sock.SendTo(r.server, Port, b)
}

// Poll consumes responses.
func (r *Resolver) Poll() {
	for {
		dg, ok := r.sock.Recv()
		if !ok {
			return
		}
		m, err := Decode(dg.Data)
		if err != nil || !m.Response() {
			continue
		}
		lk, ok := r.pending[m.ID]
		if !ok {
			continue // late or spoofed response
		}
		delete(r.pending, m.ID)
		lk.Done = true
		switch {
		case m.RCode() == RCodeNXDomain:
			lk.Err = fmt.Errorf("dns: %s: no such domain", lk.Name)
		case m.RCode() != RCodeOK:
			lk.Err = fmt.Errorf("dns: %s: rcode %d", lk.Name, m.RCode())
		case len(m.Answers) == 0:
			lk.Err = fmt.Errorf("dns: %s: empty answer", lk.Name)
		default:
			lk.Addr = m.Answers[0].A
		}
	}
}

// Tick retries overdue queries and fails exhausted ones.
func (r *Resolver) Tick() {
	now := r.host.Now()
	for id, lk := range r.pending {
		if now < lk.deadline {
			continue
		}
		if lk.attempts >= r.MaxAttempts {
			lk.Done = true
			lk.Err = fmt.Errorf("dns: %s: timeout after %d attempts", lk.Name, lk.attempts)
			r.Timeouts++
			delete(r.pending, id)
			continue
		}
		r.Retries++
		r.sendQuery(lk)
	}
}

// Outstanding reports in-flight lookups.
func (r *Resolver) Outstanding() int { return len(r.pending) }
