package dns

import (
	"bytes"
	"testing"
)

// fuzzSeeds are well-formed messages covering the codec's feature set
// (questions, A answers, flags, compression on decode).
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	q := &Message{ID: 0x1234, Flags: FlagRD, Questions: []Question{
		{Name: "www.example.com", Type: TypeA, Class: ClassIN},
	}}
	if b, err := q.Encode(); err == nil {
		seeds = append(seeds, b)
	}
	r := &Message{ID: 0x1234, Flags: FlagQR | FlagAA | FlagRA,
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers: []RR{
			{Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 300, A: [4]byte{10, 0, 0, 1}},
			{Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 300, A: [4]byte{10, 0, 0, 2}},
		}}
	if b, err := r.Encode(); err == nil {
		seeds = append(seeds, b)
	}
	nx := &Message{ID: 9, Flags: FlagQR | RCodeNXDomain,
		Questions: []Question{{Name: "nope.invalid", Type: TypeA, Class: ClassIN}}}
	if b, err := nx.Encode(); err == nil {
		seeds = append(seeds, b)
	}
	// Hand-built message using a compression pointer for the answer name.
	comp := []byte{
		0xbe, 0xef, 0x84, 0x00, 0, 1, 0, 1, 0, 0, 0, 0,
		1, 'a', 2, 'i', 'o', 0, 0, 1, 0, 1, // question a.io A IN
		0xc0, 12, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4, // ptr to offset 12
	}
	seeds = append(seeds, comp)
	// Adversarial shapes: truncation, pointer-to-self, reserved label bits.
	seeds = append(seeds,
		[]byte{},
		[]byte{0, 1, 0, 0, 0, 1},
		append(bytes.Repeat([]byte{0}, 12), 0xc0, 12, 0, 1, 0, 1),
		append(bytes.Repeat([]byte{0}, 12), 0x80, 1, 0, 1, 0, 1),
	)
	return seeds
}

// FuzzDecode exercises the DNS wire-format parser on untrusted bytes —
// exactly what a resolver's receive path sees. Invariants: no panic, no
// unbounded work, and encode∘decode is idempotent at the byte level:
// once a parsed message re-encodes successfully, decoding and re-encoding
// that output must reproduce it exactly (the first Encode normalizes
// away compression; after that the form is a fixed point).
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // resolvers cap datagram size; bound fuzz work the same way
		}
		m, err := Decode(data)
		if err != nil {
			return
		}
		// Decoded counts must match what the header promised.
		if len(m.Questions) > 32 || len(m.Answers) > 128 {
			t.Fatalf("implausible counts survived: qd=%d an=%d", len(m.Questions), len(m.Answers))
		}
		norm, err := m.Encode()
		if err != nil {
			// Legal: decoded names can exceed encode limits (e.g. >255
			// bytes via compression) or contain dots inside labels.
			return
		}
		m2, err := Decode(norm)
		if err != nil {
			t.Fatalf("re-decode of encoded message failed: %v\nencoded: %x", err, norm)
		}
		again, err := m2.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(norm, again) {
			t.Fatalf("encode not idempotent:\nfirst:  %x\nsecond: %x", norm, again)
		}
		if m2.ID != m.ID || m2.Flags != m.Flags {
			t.Fatalf("header drifted across round-trip: %+v vs %+v", m, m2)
		}
	})
}

// FuzzEncodeName checks the name encoder against arbitrary strings: it
// must either reject the name or produce wire form that decodeName can
// read back.
func FuzzEncodeName(f *testing.F) {
	for _, s := range []string{"", ".", "a.io", "www.example.com",
		"trailing.dot.", "very-long-label-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa.x",
		"a..b", "-", "xn--bcher-kva.example"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		if len(name) > 1024 {
			return
		}
		b, err := encodeName(nil, name)
		if err != nil {
			return
		}
		if len(b) > 256 {
			t.Fatalf("encoded name %d bytes, limit is 255+terminator", len(b))
		}
		got, next, err := decodeName(b, 0)
		if err != nil {
			t.Fatalf("decodeName rejected encoder output for %q: %v (wire %x)", name, err, b)
		}
		if next != len(b) {
			t.Fatalf("decodeName consumed %d of %d bytes", next, len(b))
		}
		want := name
		for len(want) > 0 && want[len(want)-1] == '.' {
			want = want[:len(want)-1]
		}
		if got != want {
			t.Fatalf("name round-trip: encoded %q, decoded %q", name, got)
		}
	})
}
