package dns

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
)

func TestNameRoundTrip(t *testing.T) {
	for _, name := range []string{
		"", "localhost", "example.com", "a.very.deep.sub.domain.example.org",
		"trailing.dot.ok.",
	} {
		b, err := encodeName(nil, name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		got, next, err := decodeName(b, 0)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		want := strings.TrimSuffix(name, ".")
		if got != want {
			t.Errorf("round trip %q -> %q", name, got)
		}
		if next != len(b) {
			t.Errorf("%q: next = %d, want %d", name, next, len(b))
		}
	}
}

func TestNameValidation(t *testing.T) {
	if _, err := encodeName(nil, strings.Repeat("a", 64)+".com"); err == nil {
		t.Error("64-byte label should fail")
	}
	long := strings.Repeat("abcdefgh.", 40) + "com"
	if _, err := encodeName(nil, long); err == nil {
		t.Error("over-255-byte name should fail")
	}
	if _, err := encodeName(nil, "double..dot"); err == nil {
		t.Error("empty label should fail")
	}
}

func TestCompressionPointerDecode(t *testing.T) {
	// Hand-built message area: "example.com" at offset 0, then a name that
	// is just a pointer to it, then "www" + pointer.
	var b []byte
	b, _ = encodeName(b, "example.com")
	ptrAt := len(b)
	b = append(b, 0xc0, 0x00) // pointer to offset 0
	wwwAt := len(b)
	b = append(b, 3, 'w', 'w', 'w', 0xc0, 0x00)

	name, next, err := decodeName(b, ptrAt)
	if err != nil || name != "example.com" || next != ptrAt+2 {
		t.Errorf("pointer decode: %q next=%d err=%v", name, next, err)
	}
	name, next, err = decodeName(b, wwwAt)
	if err != nil || name != "www.example.com" || next != wwwAt+6 {
		t.Errorf("label+pointer decode: %q next=%d err=%v", name, next, err)
	}
}

func TestCompressionPointerLoopRejected(t *testing.T) {
	// A pointer pointing at itself.
	b := []byte{0xc0, 0x00}
	if _, _, err := decodeName(b, 0); !errors.Is(err, ErrPtrLoop) {
		t.Errorf("self-pointer: %v, want ErrPtrLoop", err)
	}
	// Two pointers pointing at each other.
	b2 := []byte{0xc0, 0x02, 0xc0, 0x00}
	if _, _, err := decodeName(b2, 0); !errors.Is(err, ErrPtrLoop) {
		t.Errorf("pointer cycle: %v, want ErrPtrLoop", err)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		ID:    0xbeef,
		Flags: FlagQR | FlagAA | FlagRD | FlagRA,
		Questions: []Question{
			{Name: "ftp.example.com", Type: TypeA, Class: ClassIN},
		},
		Answers: []RR{
			{Name: "ftp.example.com", Type: TypeA, Class: ClassIN, TTL: 3600, A: layers.IPAddr{192, 0, 2, 7}},
		},
	}
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Flags != m.Flags {
		t.Errorf("header: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0] != m.Questions[0] {
		t.Errorf("questions: %+v", got.Questions)
	}
	if len(got.Answers) != 1 || got.Answers[0] != m.Answers[0] {
		t.Errorf("answers: %+v", got.Answers)
	}
	if !got.Response() || got.RCode() != RCodeOK {
		t.Error("flag helpers wrong")
	}
}

func TestMessageRoundTripQuick(t *testing.T) {
	f := func(id uint16, a, b, c uint8, ttl uint32) bool {
		name := fmt.Sprintf("h%d.x%d.example", a, b)
		m := &Message{
			ID: id, Flags: FlagQR,
			Questions: []Question{{Name: name, Type: TypeA, Class: ClassIN}},
			Answers:   []RR{{Name: name, Type: TypeA, Class: ClassIN, TTL: ttl, A: layers.IPAddr{a, b, c, 1}}},
		}
		buf, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		return err == nil && got.ID == id && got.Answers[0].A == m.Answers[0].A &&
			got.Answers[0].TTL == ttl && got.Questions[0].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		m, err := Decode(data)
		// Either an error or a structurally sane message.
		return err != nil || (m != nil && len(m.Questions) <= 32 && len(m.Answers) <= 128)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncations(t *testing.T) {
	m := &Message{
		ID:        1,
		Questions: []Question{{Name: "a.b", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{{Name: "a.b", Type: TypeA, Class: ClassIN, TTL: 1, A: layers.IPAddr{1, 2, 3, 4}}},
	}
	whole, _ := m.Encode()
	for cut := 0; cut < len(whole); cut++ {
		if _, err := Decode(whole[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

// --- end-to-end over the netstack ---

var (
	ipSrv = layers.IPAddr{10, 6, 0, 1}
	ipCli = layers.IPAddr{10, 6, 0, 2}
)

func deploy(t *testing.T, d core.Discipline) (*netstack.Net, *Server, *Resolver) {
	t.Helper()
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("ns", ipSrv, netstack.DefaultOptions(d))
	hc := n.AddHost("stub", ipCli, netstack.DefaultOptions(d))
	srv, err := NewServer(hs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResolver(hc, 3535, ipSrv)
	if err != nil {
		t.Fatal(err)
	}
	srv.Add("www.example.com", layers.IPAddr{192, 0, 2, 80})
	srv.Add("mail.example.com", layers.IPAddr{192, 0, 2, 25})
	return n, srv, res
}

func pumpDNS(n *netstack.Net, srv *Server, res *Resolver) {
	for i := 0; i < 10; i++ {
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		res.Poll()
		if res.Outstanding() == 0 {
			return
		}
	}
}

func TestResolveOverNetstack(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		n, srv, res := deploy(t, d)
		lk := res.Resolve("www.example.com")
		pumpDNS(n, srv, res)
		if !lk.Done || lk.Err != nil {
			t.Fatalf("[%v] lookup: done=%v err=%v", d, lk.Done, lk.Err)
		}
		if lk.Addr != (layers.IPAddr{192, 0, 2, 80}) {
			t.Errorf("[%v] addr = %v", d, lk.Addr)
		}
		if srv.Answered != 1 {
			t.Errorf("[%v] server answered = %d", d, srv.Answered)
		}
		if s := mbuf.PoolStats(); s.InUse != 0 {
			t.Errorf("mbuf leak: %+v", s)
		}
	}
}

func TestNXDomain(t *testing.T) {
	n, srv, res := deploy(t, core.Conventional)
	lk := res.Resolve("nope.example.com")
	pumpDNS(n, srv, res)
	if !lk.Done || lk.Err == nil {
		t.Fatalf("NXDOMAIN lookup: done=%v err=%v", lk.Done, lk.Err)
	}
	if srv.NXDomain != 1 {
		t.Errorf("server NXDomain = %d", srv.NXDomain)
	}
}

func TestCaseInsensitiveZone(t *testing.T) {
	n, srv, res := deploy(t, core.Conventional)
	lk := res.Resolve("WWW.Example.COM")
	pumpDNS(n, srv, res)
	if lk.Err != nil {
		t.Fatalf("case-folded lookup failed: %v", lk.Err)
	}
	_ = srv
}

func TestRetryOnLoss(t *testing.T) {
	n, srv, res := deploy(t, core.Conventional)
	res.RetryInterval = 0.3
	dropped := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipSrv && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	lk := res.Resolve("www.example.com")
	pumpDNS(n, srv, res)
	if lk.Done {
		t.Fatal("lookup completed despite loss")
	}
	n.Tick(0.35)
	res.Tick()
	pumpDNS(n, srv, res)
	if !lk.Done || lk.Err != nil {
		t.Fatalf("retry failed: done=%v err=%v", lk.Done, lk.Err)
	}
	if res.Retries != 1 {
		t.Errorf("retries = %d, want 1", res.Retries)
	}
}

func TestTimeoutAfterMaxAttempts(t *testing.T) {
	n, srv, res := deploy(t, core.Conventional)
	res.RetryInterval = 0.2
	res.MaxAttempts = 2
	n.Loss = func(dst layers.IPAddr, data []byte) bool { return dst == ipSrv }
	lk := res.Resolve("www.example.com")
	for i := 0; i < 5; i++ {
		n.Tick(0.25)
		res.Tick()
		pumpDNS(n, srv, res)
	}
	if !lk.Done || lk.Err == nil {
		t.Fatalf("black-holed lookup: done=%v err=%v", lk.Done, lk.Err)
	}
	if res.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", res.Timeouts)
	}
}

func TestLateResponseIgnored(t *testing.T) {
	n, srv, res := deploy(t, core.Conventional)
	lk := res.Resolve("www.example.com")
	pumpDNS(n, srv, res)
	if !lk.Done {
		t.Fatal("setup failed")
	}
	// Replay the server's answer (a duplicate/late response).
	reply := &Message{ID: lk.id, Flags: FlagQR}
	b, _ := reply.Encode()
	srv.sock.SendTo(ipCli, 3535, b)
	n.RunUntilIdle()
	res.Poll() // must not crash or resurrect the lookup
	if res.Outstanding() != 0 {
		t.Error("late response created state")
	}
}

func TestServerFormErr(t *testing.T) {
	n, srv, res := deploy(t, core.Conventional)
	// Raw garbage to port 53 from the resolver's socket.
	res.sock.SendTo(ipSrv, Port, []byte{0, 1, 2})
	n.RunUntilIdle()
	srv.Poll()
	if srv.FormErr != 1 {
		t.Errorf("FormErr = %d, want 1", srv.FormErr)
	}
}

func TestBurstAtServerBatchesUnderLDLP(t *testing.T) {
	// Many stubs fire at once: the paper's small-message burst. The
	// server host's LDLP receive path must batch them.
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("ns", ipSrv, netstack.DefaultOptions(core.LDLP))
	srv, err := NewServer(hs)
	if err != nil {
		t.Fatal(err)
	}
	srv.Add("www.example.com", layers.IPAddr{192, 0, 2, 80})
	var resolvers []*Resolver
	var lookups []*Lookup
	for i := 0; i < 30; i++ {
		hc := n.AddHost("stub", layers.IPAddr{10, 6, 1, byte(i + 1)}, netstack.DefaultOptions(core.LDLP))
		r, err := NewResolver(hc, 4000, ipSrv)
		if err != nil {
			t.Fatal(err)
		}
		resolvers = append(resolvers, r)
		lookups = append(lookups, r.Resolve("www.example.com"))
	}
	for i := 0; i < 10; i++ {
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		for _, r := range resolvers {
			r.Poll()
		}
	}
	for i, lk := range lookups {
		if !lk.Done || lk.Err != nil {
			t.Fatalf("lookup %d: done=%v err=%v", i, lk.Done, lk.Err)
		}
	}
	if got := hs.StackStats().LargestBatch; got < 10 {
		t.Errorf("server's largest receive batch = %d, want a real burst", got)
	}
}

func BenchmarkResolve(b *testing.B) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	hs := n.AddHost("ns", ipSrv, netstack.DefaultOptions(core.Conventional))
	hc := n.AddHost("stub", ipCli, netstack.DefaultOptions(core.Conventional))
	srv, _ := NewServer(hs)
	res, _ := NewResolver(hc, 3535, ipSrv)
	srv.Add("www.example.com", layers.IPAddr{192, 0, 2, 80})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk := res.Resolve("www.example.com")
		n.RunUntilIdle()
		srv.Poll()
		n.RunUntilIdle()
		res.Poll()
		if !lk.Done {
			b.Fatal("lookup stuck")
		}
	}
}

func BenchmarkDecodeMessage(b *testing.B) {
	m := &Message{
		ID: 1, Flags: FlagQR,
		Questions: []Question{{Name: "www.example.com", Type: TypeA, Class: ClassIN}},
		Answers:   []RR{{Name: "www.example.com", Type: TypeA, Class: ClassIN, TTL: 300, A: layers.IPAddr{1, 2, 3, 4}}},
	}
	buf, _ := m.Encode()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
