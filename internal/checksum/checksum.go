// Package checksum implements the Internet checksum (RFC 1071) in the two
// styles the paper compares in §5.1, plus the machine-model cost harness
// that regenerates Figure 8.
//
// The paper's point: the elaborate, heavily unrolled 4.4BSD in_cksum
// (1104 bytes of code, 992 active) wins with a warm instruction cache, but
// with a cold cache a very simple routine (288 bytes of active code) is
// faster for messages up to ~900 bytes because it fetches far fewer
// instructions from memory. For small-message protocols the cache is
// effectively cold at every message, so small checksum routines win.
//
// Both Go implementations here are real and are used by internal/netstack;
// the cycle-accurate comparison runs on the machine model, since Go cannot
// observe its own I-cache behaviour portably.
package checksum

import "encoding/binary"

// Accumulator computes an Internet checksum incrementally over a sequence
// of byte slices (e.g. an mbuf chain), handling odd-length chunks with the
// RFC 1071 byte-swap rule. The zero value is ready to use.
type Accumulator struct {
	sum uint64
	// odd tracks whether an odd number of bytes has been consumed, i.e.
	// the next byte lands in the low half of a 16-bit word.
	odd bool
}

// Add folds a chunk into the checksum, eight bytes per iteration.
//
// The ones'-complement sum is associative across word sizes: a big-endian
// 64-bit load is pair0·2⁴⁸ + pair1·2³² + pair2·2¹⁶ + pair3, and since
// 2¹⁶ ≡ 1 (mod 2¹⁶−1), adding its two 32-bit halves contributes exactly
// pair0+pair1+pair2+pair3 to the folded sum — bit-identical to the
// byte-pair loop, at an eighth of the iterations. (This is the loop-level
// trick; the paper's Figure 8 point about *code size* vs cycles is made
// by Simple/Unrolled below on the machine model, which this routine does
// not alter.)
//
//ldlp:hotpath
func (a *Accumulator) Add(b []byte) {
	if len(b) == 0 {
		return
	}
	i := 0
	if a.odd {
		// Finish the split word: this byte is the low-order byte.
		a.sum += uint64(b[0])
		i = 1
		a.odd = false
	}
	n := len(b)
	sum := uint64(0)
	for ; i+8 <= n; i += 8 {
		w := binary.BigEndian.Uint64(b[i:])
		sum += w>>32 + w&0xffffffff
	}
	for ; i+1 < n; i += 2 {
		sum += uint64(b[i])<<8 | uint64(b[i+1])
	}
	if i < n {
		sum += uint64(b[i]) << 8
		a.odd = true
	}
	a.sum += sum
	// Partial fold so the running sum can never overflow uint64 no matter
	// how many chunks are added (each Add contributes < 2^33 per 8 input
	// bytes; folding preserves the value mod 0xffff, which is all Sum16
	// reads).
	if a.sum >= 1<<48 {
		a.sum = (a.sum >> 16) + (a.sum & 0xffff)
	}
}

// AddUint16 folds a big-endian 16-bit value (e.g. a pseudo-header field).
// It must only be used at even byte offsets.
func (a *Accumulator) AddUint16(v uint16) {
	if a.odd {
		panic("checksum: AddUint16 at odd offset")
	}
	a.sum += uint64(v)
}

// Sum16 folds the accumulator to 16 bits and complements it, yielding the
// value to place in a checksum field.
//
//ldlp:hotpath
func (a *Accumulator) Sum16() uint16 {
	s := a.sum
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	return ^uint16(s)
}

// Simple computes the Internet checksum of data with the smallest
// reasonable loop: one 16-bit word per iteration. This is the paper's
// "very simple version": more cycles per byte, far less code.
//
//ldlp:hotpath
func Simple(data []byte) uint16 {
	var sum uint64
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if i < n {
		sum += uint64(data[i]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// Unrolled computes the Internet checksum in the 4.4BSD in_cksum style:
// a 64-byte-per-iteration unrolled main loop with progressively smaller
// clean-up loops. Fewer cycles per byte, much more code — the trade-off
// Figure 8 is about.
func Unrolled(data []byte) uint16 {
	var sum uint64
	n := len(data)
	i := 0
	for ; n-i >= 64; i += 64 {
		sum += uint64(data[i])<<8 | uint64(data[i+1])
		sum += uint64(data[i+2])<<8 | uint64(data[i+3])
		sum += uint64(data[i+4])<<8 | uint64(data[i+5])
		sum += uint64(data[i+6])<<8 | uint64(data[i+7])
		sum += uint64(data[i+8])<<8 | uint64(data[i+9])
		sum += uint64(data[i+10])<<8 | uint64(data[i+11])
		sum += uint64(data[i+12])<<8 | uint64(data[i+13])
		sum += uint64(data[i+14])<<8 | uint64(data[i+15])
		sum += uint64(data[i+16])<<8 | uint64(data[i+17])
		sum += uint64(data[i+18])<<8 | uint64(data[i+19])
		sum += uint64(data[i+20])<<8 | uint64(data[i+21])
		sum += uint64(data[i+22])<<8 | uint64(data[i+23])
		sum += uint64(data[i+24])<<8 | uint64(data[i+25])
		sum += uint64(data[i+26])<<8 | uint64(data[i+27])
		sum += uint64(data[i+28])<<8 | uint64(data[i+29])
		sum += uint64(data[i+30])<<8 | uint64(data[i+31])
		sum += uint64(data[i+32])<<8 | uint64(data[i+33])
		sum += uint64(data[i+34])<<8 | uint64(data[i+35])
		sum += uint64(data[i+36])<<8 | uint64(data[i+37])
		sum += uint64(data[i+38])<<8 | uint64(data[i+39])
		sum += uint64(data[i+40])<<8 | uint64(data[i+41])
		sum += uint64(data[i+42])<<8 | uint64(data[i+43])
		sum += uint64(data[i+44])<<8 | uint64(data[i+45])
		sum += uint64(data[i+46])<<8 | uint64(data[i+47])
		sum += uint64(data[i+48])<<8 | uint64(data[i+49])
		sum += uint64(data[i+50])<<8 | uint64(data[i+51])
		sum += uint64(data[i+52])<<8 | uint64(data[i+53])
		sum += uint64(data[i+54])<<8 | uint64(data[i+55])
		sum += uint64(data[i+56])<<8 | uint64(data[i+57])
		sum += uint64(data[i+58])<<8 | uint64(data[i+59])
		sum += uint64(data[i+60])<<8 | uint64(data[i+61])
		sum += uint64(data[i+62])<<8 | uint64(data[i+63])
	}
	for ; n-i >= 16; i += 16 {
		sum += uint64(data[i])<<8 | uint64(data[i+1])
		sum += uint64(data[i+2])<<8 | uint64(data[i+3])
		sum += uint64(data[i+4])<<8 | uint64(data[i+5])
		sum += uint64(data[i+6])<<8 | uint64(data[i+7])
		sum += uint64(data[i+8])<<8 | uint64(data[i+9])
		sum += uint64(data[i+10])<<8 | uint64(data[i+11])
		sum += uint64(data[i+12])<<8 | uint64(data[i+13])
		sum += uint64(data[i+14])<<8 | uint64(data[i+15])
	}
	for ; i+1 < n; i += 2 {
		sum += uint64(data[i])<<8 | uint64(data[i+1])
	}
	if i < n {
		sum += uint64(data[i]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// Chain checksums a sequence of slices as one logical buffer (the mbuf
// case the paper says complicates in_cksum so much).
func Chain(chunks ...[]byte) uint16 {
	var a Accumulator
	for _, c := range chunks {
		a.Add(c)
	}
	return a.Sum16()
}

// Update adjusts an existing checksum for a 16-bit field change at an even
// offset (RFC 1624 incremental update), avoiding a full recompute — used
// by the netstack's IP forwarding-style header rewrites.
func Update(old uint16, oldField, newField uint16) uint16 {
	// RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
	sum := uint64(^old&0xffff) + uint64(^oldField&0xffff) + uint64(newField)
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}
