package checksum

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// reference is the textbook RFC 1071 checksum, written maximally plainly,
// used as the oracle for the optimized implementations.
func reference(data []byte) uint16 {
	var sum uint32
	for i := 0; i < len(data); i += 2 {
		w := uint32(data[i]) << 8
		if i+1 < len(data) {
			w |= uint32(data[i+1])
		}
		sum += w
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

func TestKnownVectors(t *testing.T) {
	// RFC 1071 §3 example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2 with
	// carries folded; checksum is its complement.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	want := ^uint16(0xddf2)
	for name, fn := range map[string]func([]byte) uint16{
		"Simple": Simple, "Unrolled": Unrolled, "reference": reference,
	} {
		if got := fn(data); got != want {
			t.Errorf("%s(%x) = %#04x, want %#04x", name, data, got, want)
		}
	}
}

func TestEmptyAndSingleByte(t *testing.T) {
	if Simple(nil) != 0xffff || Unrolled(nil) != 0xffff {
		t.Error("checksum of empty data should be 0xffff")
	}
	one := []byte{0xab}
	want := ^uint16(0xab00)
	if Simple(one) != want || Unrolled(one) != want {
		t.Errorf("single byte: %#04x / %#04x, want %#04x", Simple(one), Unrolled(one), want)
	}
}

func TestImplementationsAgreeQuick(t *testing.T) {
	f := func(data []byte) bool {
		want := reference(data)
		return Simple(data) == want && Unrolled(data) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnrolledExercisesAllLoops(t *testing.T) {
	// Lengths chosen to hit the 64-, 16-, 2- and 1-byte loops in every
	// combination.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 15, 16, 17, 63, 64, 65, 79, 80, 81, 127, 128, 552, 1500} {
		data := make([]byte, n)
		rng.Read(data)
		if got, want := Unrolled(data), reference(data); got != want {
			t.Errorf("Unrolled(len %d) = %#04x, want %#04x", n, got, want)
		}
	}
}

func TestAccumulatorMatchesWholeBuffer(t *testing.T) {
	f := func(data []byte, cuts []uint8) bool {
		var a Accumulator
		rest := data
		for _, c := range cuts {
			if len(rest) == 0 {
				break
			}
			n := int(c) % (len(rest) + 1)
			a.Add(rest[:n])
			rest = rest[n:]
		}
		a.Add(rest)
		return a.Sum16() == reference(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorOddSplits(t *testing.T) {
	// The hard case: odd-length chunks force byte-straddling words.
	data := []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07}
	var a Accumulator
	a.Add(data[:1])
	a.Add(data[1:2])
	a.Add(data[2:5])
	a.Add(data[5:])
	if got, want := a.Sum16(), reference(data); got != want {
		t.Errorf("odd splits = %#04x, want %#04x", got, want)
	}
}

func TestAccumulatorAddUint16(t *testing.T) {
	var a Accumulator
	a.AddUint16(0x1234)
	a.Add([]byte{0x56, 0x78})
	if got, want := a.Sum16(), reference([]byte{0x12, 0x34, 0x56, 0x78}); got != want {
		t.Errorf("AddUint16 path = %#04x, want %#04x", got, want)
	}
}

func TestAddUint16AtOddOffsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddUint16 at odd offset should panic")
		}
	}()
	var a Accumulator
	a.Add([]byte{1})
	a.AddUint16(0x1234)
}

func TestChain(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got, want := Chain(data[:3], data[3:3], data[3:]), reference(data); got != want {
		t.Errorf("Chain = %#04x, want %#04x", got, want)
	}
}

func TestUpdateMatchesRecompute(t *testing.T) {
	f := func(data []byte, off uint8, newVal uint16) bool {
		if len(data) < 4 {
			return true
		}
		if len(data)%2 != 0 {
			data = data[:len(data)-1]
		}
		i := (int(off) * 2) % (len(data) - 1)
		if i%2 != 0 {
			i--
		}
		old := reference(data)
		oldField := uint16(data[i])<<8 | uint16(data[i+1])
		data[i] = byte(newVal >> 8)
		data[i+1] = byte(newVal)
		want := reference(data)
		got := Update(old, oldField, newVal)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSimple552(b *testing.B) {
	data := make([]byte, 552)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(552)
	for i := 0; i < b.N; i++ {
		Simple(data)
	}
}

func BenchmarkUnrolled552(b *testing.B) {
	data := make([]byte, 552)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(552)
	for i := 0; i < b.N; i++ {
		Unrolled(data)
	}
}

func BenchmarkUnrolled1500(b *testing.B) {
	data := make([]byte, 1500)
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Unrolled(data)
	}
}
