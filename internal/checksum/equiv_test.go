package checksum

import (
	"math/rand"
	"testing"
)

// refAccumulator is the obviously-correct reference: one byte at a time,
// high-order byte first within each 16-bit word, folding at the end.
// Accumulator.Add's 8-bytes-per-iteration loop must match it bit-exactly
// over any sequence of odd- and even-length chunks.
type refAccumulator struct {
	sum uint64
	odd bool
}

func (r *refAccumulator) add(b []byte) {
	for _, c := range b {
		if r.odd {
			r.sum += uint64(c)
		} else {
			r.sum += uint64(c) << 8
		}
		r.odd = !r.odd
	}
}

func (r *refAccumulator) sum16() uint16 {
	s := r.sum
	for s > 0xffff {
		s = (s >> 16) + (s & 0xffff)
	}
	return ^uint16(s)
}

// TestAccumulatorMatchesByteReference feeds identical random chunk
// sequences — lengths biased toward the annoying cases (empty, 1, 7, 8,
// 9 bytes, so word boundaries land everywhere) — to the word-at-a-time
// Accumulator and the byte-at-a-time reference.
func TestAccumulatorMatchesByteReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lens := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 552, 1500}
	for trial := 0; trial < 500; trial++ {
		var acc Accumulator
		var ref refAccumulator
		chunks := 1 + rng.Intn(8)
		for c := 0; c < chunks; c++ {
			n := lens[rng.Intn(len(lens))]
			if rng.Intn(4) == 0 {
				n = rng.Intn(2048)
			}
			b := make([]byte, n)
			rng.Read(b)
			acc.Add(b)
			ref.add(b)
		}
		if got, want := acc.Sum16(), ref.sum16(); got != want {
			t.Fatalf("trial %d: word-at-a-time %#04x != byte-at-a-time %#04x", trial, got, want)
		}
	}
}

// TestAccumulatorMatchesSimpleOnSplits checks the other equivalence the
// stack relies on: accumulating a buffer in arbitrary pieces equals
// Simple over the whole buffer (chunk boundaries are invisible).
func TestAccumulatorMatchesSimpleOnSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		whole := make([]byte, 1+rng.Intn(4096))
		rng.Read(whole)
		var acc Accumulator
		for rest := whole; len(rest) > 0; {
			n := 1 + rng.Intn(len(rest))
			acc.Add(rest[:n])
			rest = rest[n:]
		}
		if got, want := acc.Sum16(), Simple(whole); got != want {
			t.Fatalf("trial %d (len %d): split %#04x != whole %#04x", trial, len(whole), got, want)
		}
	}
}

// TestAccumulatorManyChunksNoOverflow exercises the partial-fold guard:
// far more data than would fit the running sum unfolded.
func TestAccumulatorManyChunksNoOverflow(t *testing.T) {
	b := make([]byte, 65535)
	for i := range b {
		b[i] = 0xff
	}
	var acc Accumulator
	var ref refAccumulator
	for i := 0; i < 10_000; i++ {
		acc.Add(b)
		ref.add(b)
	}
	if got, want := acc.Sum16(), ref.sum16(); got != want {
		t.Fatalf("after 10k max-weight chunks: %#04x != %#04x", got, want)
	}
}
