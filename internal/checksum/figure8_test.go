package checksum

import (
	"testing"

	"ldlp/internal/machine"
)

func TestFigure8Anchors(t *testing.T) {
	// The printed annotations: at message size 0 the cold cost is 426
	// cycles for the 4.4BSD routine and 176 for the simple one.
	if got := coldCycles(BSDModel(), 0); got != 426 {
		t.Errorf("4.4BSD cold cost at size 0 = %v cycles, paper says 426", got)
	}
	if got := coldCycles(SimpleModel(), 0); got != 176 {
		t.Errorf("Simple cold cost at size 0 = %v cycles, paper says 176", got)
	}
}

func TestColdCrossoverNear900(t *testing.T) {
	x := ColdCrossover(1200)
	if x < 800 || x > 1000 {
		t.Errorf("cold crossover at %d bytes, paper says ≈900", x)
	}
}

func TestWarmElaborateWinsAtMostSizes(t *testing.T) {
	// "With a warm cache, the elaborate version performed better at nearly
	// all message sizes."
	bsd, simple := BSDModel(), SimpleModel()
	warm := func(cm CostModel, size int) float64 {
		cpu := machine.New(Figure8Machine())
		seg := machine.NewSegment(cm.Name, machine.Code, cm.CodeBytes)
		seg.SetAddr(0)
		cm.Cycles(cpu, seg, size) // prime
		return cm.Cycles(cpu, seg, size)
	}
	wins := 0
	total := 0
	for s := 0; s <= 1000; s += 16 {
		total++
		if warm(bsd, s) <= warm(simple, s) {
			wins++
		}
	}
	if float64(wins) < 0.85*float64(total) {
		t.Errorf("warm 4.4BSD wins only %d/%d sizes, want nearly all", wins, total)
	}
}

func TestColdSimpleWinsSmall(t *testing.T) {
	// The headline: with a cold cache, the simple routine is faster for
	// small messages (the regime signalling protocols live in).
	for _, s := range []int{0, 64, 128, 256, 552} {
		if !(coldCycles(SimpleModel(), s) < coldCycles(BSDModel(), s)) {
			t.Errorf("at %d bytes cold, simple should beat 4.4BSD", s)
		}
	}
}

func TestFigure8TableShape(t *testing.T) {
	tab := Figure8(1000, 100)
	if len(tab.Points) != 11 {
		t.Fatalf("table rows = %d, want 11", len(tab.Points))
	}
	for _, p := range tab.Points {
		for _, s := range Figure8Series {
			if p.Y[s] <= 0 {
				t.Errorf("size %v series %q is %v, want positive", p.X, s, p.Y[s])
			}
		}
		// Cold always costs at least as much as warm for the same routine.
		if p.Y["4.4BSD cold"] < p.Y["4.4BSD warm"] || p.Y["Simple cold"] < p.Y["Simple warm"] {
			t.Errorf("warm exceeds cold at size %v", p.X)
		}
	}
}

func TestCyclesScalesLinearly(t *testing.T) {
	cm := SimpleModel()
	c0 := coldCycles(cm, 0)
	c900 := coldCycles(cm, 900)
	wantSlope := cm.CyclesPerByte
	gotSlope := (c900 - c0) / 900
	if diff := gotSlope - wantSlope; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-byte slope = %v, want %v", gotSlope, wantSlope)
	}
}
