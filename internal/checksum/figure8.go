package checksum

import (
	"ldlp/internal/cache"
	"ldlp/internal/machine"
	"ldlp/internal/stats"
)

// CostModel describes one checksum routine to the machine model: how much
// code it brings into the I-cache and how many cycles it issues. The
// calibration anchors are Figure 8's printed annotations: 426 vs 176
// cycles of cold cost at size→0 on a DECstation 3000/400 (10-cycle miss
// penalty, 32-byte lines), a cold crossover near 900 bytes, and the warm
// elaborate routine winning at nearly all sizes.
type CostModel struct {
	Name string
	// CodeBytes is the routine's total size, ActiveBytes the working code
	// set actually fetched per call.
	CodeBytes   int
	ActiveBytes int
	// FixedCycles is per-call issue overhead; CyclesPerByte the issue cost
	// of the summation loop.
	FixedCycles   float64
	CyclesPerByte float64
}

// BSDModel is the elaborate 4.4BSD in_cksum compiled for the Alpha:
// 1104 bytes of code, 992 active for messages over 32 bytes (§5.1).
func BSDModel() CostModel {
	return CostModel{
		Name:        "4.4BSD",
		CodeBytes:   1104,
		ActiveBytes: 992,
		// Calibrated so cold cost at size 0 is 426 cycles: 992/32 lines at
		// 10 cycles leaves 116 cycles of issue overhead.
		FixedCycles:   116,
		CyclesPerByte: 1.0,
	}
}

// SimpleModel is the paper's simple routine: 288 bytes of active code,
// more work per byte.
func SimpleModel() CostModel {
	return CostModel{
		Name:        "Simple",
		CodeBytes:   288,
		ActiveBytes: 288,
		// Cold cost at size 0 is 176 cycles: 288/32 lines at 10 cycles
		// leaves 86 cycles of issue overhead.
		FixedCycles: 86,
		// The crossover constraint: the simple routine gives back its
		// 250-cycle cold head start by ~900 bytes.
		CyclesPerByte: 1.0 + 250.0/900.0,
	}
}

// Figure8Machine is the DECstation 3000/400 of §5.1: 8 KB direct-mapped
// primary I-cache with 32-byte lines and a 10-cycle primary-miss penalty.
// Message data is in the D-cache in all cases (as in the paper), so the
// D-cache never stalls.
func Figure8Machine() machine.Config {
	return machine.Config{
		ClockHz: 133e6,
		ICache:  cache.Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 10},
		DCache:  cache.Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 0},
	}
}

// Cycles simulates one call on cpu and returns the cycles it consumed.
// The caller controls cache temperature: flush the I-cache first for a
// cold call, or call twice and measure the second for a warm one.
func (cm CostModel) Cycles(cpu *machine.CPU, seg *machine.Segment, msgSize int) float64 {
	start := cpu.Cycles()
	cpu.TouchCode(seg.Addr(), cm.ActiveBytes)
	cpu.AddIssueCycles(cm.FixedCycles + cm.CyclesPerByte*float64(msgSize))
	return cpu.Cycles() - start
}

// Series names for the Figure 8 table, in plot order.
var Figure8Series = []string{"4.4BSD cold", "Simple cold", "4.4BSD warm", "Simple warm"}

// Figure8 sweeps message sizes and returns the four Figure 8 curves in
// CPU cycles. Sizes are averaged over 16-byte buckets like the paper
// ("times for each range [x..x+15] of message sizes are averaged").
func Figure8(maxSize, step int) *stats.Table {
	tab := stats.NewTable("Figure 8: cache effects in checksum routines", "bytes", Figure8Series...)
	models := []CostModel{BSDModel(), SimpleModel()}
	for size := 0; size <= maxSize; size += step {
		var row [4]float64
		for i, cm := range models {
			// Each routine gets its own CPU so the two do not evict each
			// other; within a bucket we average the 16 sizes.
			var cold, warm float64
			n := 0
			for s := size; s < size+16 && s <= maxSize; s++ {
				cpu := machine.New(Figure8Machine())
				seg := machine.NewSegment(cm.Name, machine.Code, cm.CodeBytes)
				seg.SetAddr(0)
				cpu.ColdStart()
				cold += cm.Cycles(cpu, seg, s)
				warm += cm.Cycles(cpu, seg, s) // second call: cache warm
				n++
			}
			row[i] = cold / float64(n)   // columns 0,1: cold
			row[i+2] = warm / float64(n) // columns 2,3: warm
		}
		tab.Add(float64(size), row[0], row[1], row[2], row[3])
	}
	return tab
}

// ColdCrossover finds the smallest message size at which the elaborate
// routine becomes at least as fast as the simple one with a cold cache
// (the paper reports ≈900 bytes). It returns maxSize+1 if no crossover
// occurs below maxSize.
func ColdCrossover(maxSize int) int {
	bsd, simple := BSDModel(), SimpleModel()
	for s := 0; s <= maxSize; s++ {
		cb := coldCycles(bsd, s)
		cs := coldCycles(simple, s)
		if cb <= cs {
			return s
		}
	}
	return maxSize + 1
}

func coldCycles(cm CostModel, msgSize int) float64 {
	cpu := machine.New(Figure8Machine())
	seg := machine.NewSegment(cm.Name, machine.Code, cm.CodeBytes)
	seg.SetAddr(0)
	cpu.ColdStart()
	return cm.Cycles(cpu, seg, msgSize)
}
