package analytic

import (
	"math"
	"strings"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/sim"
	"ldlp/internal/traffic"
)

func TestRuleOfThumbNumbers(t *testing.T) {
	m := PaperStack()
	// Conventional: 5 layers × 192 code lines × 20 cycles = 19200 stall +
	// issue 5×1652 = 8260 + message 18×20 = 360 + data term.
	conv := m.ConventionalCyclesPerMsg()
	if conv < 27000 || conv > 30000 {
		t.Errorf("conventional cycles/msg = %.0f, expect ≈28k", conv)
	}
	// LDLP at the cache-bound batch amortizes the 19200 by ~12x.
	b := m.MaxBatch(8192)
	if b < 10 || b > 14 {
		t.Errorf("max batch = %d, expect ≈12", b)
	}
	ldlp := m.LDLPCyclesPerMsg(b)
	if ldlp > conv/2.5 {
		t.Errorf("ldlp cycles/msg = %.0f vs conv %.0f: amortization too weak", ldlp, conv)
	}
	// Batch 1 must cost slightly MORE than conventional (queue ops).
	if m.LDLPCyclesPerMsg(1) <= conv {
		t.Error("batch-1 LDLP should pay the queueing overhead")
	}
}

func TestCapacitiesBracketThePaperFigures(t *testing.T) {
	m := PaperStack()
	conv := m.ConventionalCapacity(100e6)
	ldlp := m.LDLPCapacity(100e6, 8192)
	// Figure 6's shape: conventional saturates in the 3-4k range, LDLP
	// runs toward 10k (flattening past 8500 per Figure 5's caption).
	if conv < 3000 || conv > 4500 {
		t.Errorf("conventional capacity = %.0f, expect 3-4.5k msgs/s", conv)
	}
	if ldlp < 8000 || ldlp > 12000 {
		t.Errorf("LDLP capacity = %.0f, expect ≈10k msgs/s", ldlp)
	}
	if sp := m.Speedup(8192); sp < 2 || sp > 4 {
		t.Errorf("speedup = %.2f, expect the paper's ≈2.5-3x", sp)
	}
}

// The analytic model must agree with the discrete-event simulator: the
// simulator reproduces the paper, the model explains the simulator.
func TestModelMatchesSimulator(t *testing.T) {
	m := PaperStack()

	// Conventional service time from the simulator (busy time per
	// message at moderate load).
	cfg := sim.DefaultConfig(core.Conventional)
	cfg.Duration = 1
	res := sim.New(cfg).Run(traffic.NewPoisson(2000, 552, 5))
	simCycles := res.BusyFrac * cfg.Duration * cfg.Machine.ClockHz / float64(res.Processed)
	ana := m.ConventionalCyclesPerMsg()
	if math.Abs(simCycles-ana) > 0.07*ana {
		t.Errorf("conventional: sim %.0f cy/msg vs analytic %.0f (>7%% apart)", simCycles, ana)
	}

	// LDLP capacity: drive the simulator well past saturation and compare
	// achieved throughput with the predicted capacity.
	lcfg := sim.DefaultConfig(core.LDLP)
	lcfg.Duration = 1
	lres := sim.New(lcfg).Run(traffic.NewPoisson(20000, 552, 5))
	pred := m.LDLPCapacity(lcfg.Machine.ClockHz, lcfg.Machine.DCache.Size)
	if math.Abs(lres.Throughput-pred) > 0.15*pred {
		t.Errorf("LDLP capacity: sim %.0f msgs/s vs analytic %.0f (>15%% apart)",
			lres.Throughput, pred)
	}
}

func TestExtraCodeCost(t *testing.T) {
	m := PaperStack()
	// §6: say, 10 cycles for every extra 32 bytes — at our 20-cycle
	// penalty, one line costs 20.
	if got := m.ExtraCodeCost(32); got != 20 {
		t.Errorf("one extra line costs %.0f cycles, want 20", got)
	}
	if got := m.ExtraCodeCost(1000); got != 32*20 {
		t.Errorf("1000 extra bytes cost %.0f, want %d", got, 32*20)
	}
}

func TestMaxBatchDegenerateCases(t *testing.T) {
	m := PaperStack()
	if b := m.MaxBatch(100); b != 1 {
		t.Errorf("tiny cache batch = %d, want 1", b)
	}
	m.MessageBytes = 100000
	if b := m.MaxBatch(8192); b != 1 {
		t.Errorf("oversize message batch = %d, want 1", b)
	}
}

func TestStringSummary(t *testing.T) {
	s := PaperStack().String()
	for _, want := range []string{"conv", "ldlp", "speedup"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q: %s", want, s)
		}
	}
}
