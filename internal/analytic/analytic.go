// Package analytic implements the paper's §6 rule of thumb as a
// closed-form cost model:
//
//	"For nontrivial protocols that do not use LDLP running on
//	 workstations with small primary caches, designers should assume,
//	 only slightly conservatively, that every message received causes
//	 every piece of code executed for that message to be fetched into
//	 the primary cache at least once. ... Any additional code added to
//	 speed up processing incurs memory system costs — at least one extra
//	 cache miss for every extra cache line."
//
// The model predicts per-message cycles and capacity for the conventional
// and LDLP disciplines from the stack's static parameters alone, and the
// test suite validates it against the discrete-event simulator — the
// simulator reproduces the paper's figures, and this model explains them.
package analytic

import (
	"fmt"
	"math"
)

// StackModel describes a protocol stack and machine in the terms §4 uses.
type StackModel struct {
	// Layers is the stack depth; LayerCodeBytes / LayerDataBytes the
	// per-layer working sets; MessageBytes the message size.
	Layers         int
	LayerCodeBytes int
	LayerDataBytes int
	MessageBytes   int
	// LineSize and MissPenalty describe the primary caches.
	LineSize    int
	MissPenalty int
	// IssueFixed is straight-line issue cycles per layer per message,
	// IssuePerByte the data-loop cost, QueueOpCycles the LDLP enqueue/
	// dequeue cost per layer per message.
	IssueFixed    float64
	IssuePerByte  float64
	QueueOpCycles float64
}

// PaperStack returns the §4 configuration.
func PaperStack() StackModel {
	return StackModel{
		Layers: 5, LayerCodeBytes: 6144, LayerDataBytes: 256, MessageBytes: 552,
		LineSize: 32, MissPenalty: 20,
		IssueFixed: 1376, IssuePerByte: 0.5, QueueOpCycles: 40,
	}
}

func (m StackModel) lines(bytes int) float64 {
	return math.Ceil(float64(bytes) / float64(m.LineSize))
}

// issuePerMsg is the discipline-independent instruction work.
func (m StackModel) issuePerMsg() float64 {
	return float64(m.Layers) * (m.IssueFixed + m.IssuePerByte*float64(m.MessageBytes))
}

// ConventionalCyclesPerMsg applies the rule of thumb: the cache is cold at
// the start of each message, so every code line of every layer misses
// once; the message is fetched once (it stays data-cache-resident across
// layers); per-layer data conflicts are second-order and folded into the
// code term, exactly as §6's "only slightly conservatively" suggests.
func (m StackModel) ConventionalCyclesPerMsg() float64 {
	codeMisses := float64(m.Layers) * m.lines(m.LayerCodeBytes)
	msgMisses := m.lines(m.MessageBytes)
	dataMisses := float64(m.Layers) * m.lines(m.LayerDataBytes) * 0.25 // partial conflicts
	return m.issuePerMsg() + (codeMisses+msgMisses+dataMisses)*float64(m.MissPenalty)
}

// LDLPCyclesPerMsg amortizes the code fetch over a batch of the given
// size and adds the queueing overhead.
func (m StackModel) LDLPCyclesPerMsg(batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	codeMisses := float64(m.Layers) * m.lines(m.LayerCodeBytes) / float64(batch)
	msgMisses := m.lines(m.MessageBytes)
	dataMisses := float64(m.Layers) * m.lines(m.LayerDataBytes) * 0.25 / float64(batch)
	queue := float64(m.Layers) * m.QueueOpCycles
	return m.issuePerMsg() + queue + (codeMisses+msgMisses+dataMisses)*float64(m.MissPenalty)
}

// MaxBatch is the paper's batching bound: as many messages as fit in the
// data cache alongside the layers' own data.
func (m StackModel) MaxBatch(dcacheBytes int) int {
	per := int(m.lines(m.MessageBytes)) * m.LineSize
	budget := dcacheBytes - m.Layers*m.LayerDataBytes
	if per <= 0 || budget < per {
		return 1
	}
	return budget / per
}

// ConventionalCapacity predicts the saturation throughput (msgs/sec) of
// the conventional discipline at the given clock.
func (m StackModel) ConventionalCapacity(clockHz float64) float64 {
	return clockHz / m.ConventionalCyclesPerMsg()
}

// LDLPCapacity predicts saturation throughput with batches bounded by the
// data cache.
func (m StackModel) LDLPCapacity(clockHz float64, dcacheBytes int) float64 {
	return clockHz / m.LDLPCyclesPerMsg(m.MaxBatch(dcacheBytes))
}

// Speedup is the predicted LDLP/conventional capacity ratio.
func (m StackModel) Speedup(dcacheBytes int) float64 {
	return m.ConventionalCyclesPerMsg() / m.LDLPCyclesPerMsg(m.MaxBatch(dcacheBytes))
}

// ExtraCodeCost quantifies §6's closing admonition: adding extraBytes of
// per-message code costs at least one miss per line, i.e. this many extra
// cycles per message on a conventional stack.
func (m StackModel) ExtraCodeCost(extraBytes int) float64 {
	return m.lines(extraBytes) * float64(m.MissPenalty)
}

// String summarizes the model's predictions for a 100 MHz / 8 KB machine.
func (m StackModel) String() string {
	return fmt.Sprintf(
		"analytic: conv %.0f cy/msg (%.0f msgs/s at 100MHz); ldlp@B=%d %.0f cy/msg (%.0f msgs/s); speedup %.2fx",
		m.ConventionalCyclesPerMsg(), m.ConventionalCapacity(100e6),
		m.MaxBatch(8192), m.LDLPCyclesPerMsg(m.MaxBatch(8192)),
		m.LDLPCapacity(100e6, 8192), m.Speedup(8192))
}
