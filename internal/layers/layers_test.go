package layers

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	srcIP = IPAddr{10, 0, 0, 1}
	dstIP = IPAddr{10, 0, 0, 2}
)

func TestAddrStrings(t *testing.T) {
	if got := (MACAddr{0xde, 0xad, 0xbe, 0xef, 0, 1}).String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC string = %q", got)
	}
	if got := srcIP.String(); got != "10.0.0.1" {
		t.Errorf("IP string = %q", got)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := Ethernet{
		Dst:       MACAddr{1, 2, 3, 4, 5, 6},
		Src:       MACAddr{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
	}
	buf := make([]byte, EthernetLen)
	if n := h.Encode(buf); n != EthernetLen {
		t.Fatalf("encode length %d", n)
	}
	var g Ethernet
	n, err := g.Decode(buf)
	if err != nil || n != EthernetLen || g != h {
		t.Errorf("round trip: %+v err %v", g, err)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var h Ethernet
	if _, err := h.Decode(make([]byte, 13)); !errors.Is(err, ErrTruncated) {
		t.Errorf("want ErrTruncated, got %v", err)
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{
		TOS: 0x10, TotalLen: 552, ID: 0x1234, TTL: 64,
		Protocol: ProtoTCP, Src: srcIP, Dst: dstIP,
	}
	buf := make([]byte, IPv4MinLen)
	h.Encode(buf)
	var g IPv4
	n, err := g.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != IPv4MinLen || g.TotalLen != 552 || g.Protocol != ProtoTCP || g.Src != srcIP || g.Dst != dstIP || g.TTL != 64 || g.ID != 0x1234 {
		t.Errorf("decoded %+v", g)
	}
	if g.IsFragment() {
		t.Error("non-fragment flagged as fragment")
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	h := IPv4{TotalLen: 100, TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	buf := make([]byte, IPv4MinLen)
	h.Encode(buf)
	buf[8] ^= 0xff // corrupt TTL after checksumming
	var g IPv4
	if _, err := g.Decode(buf); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("want ErrBadChecksum, got %v", err)
	}
}

func TestIPv4Malformed(t *testing.T) {
	h := IPv4{TotalLen: 100, TTL: 64, Protocol: ProtoUDP, Src: srcIP, Dst: dstIP}
	good := make([]byte, IPv4MinLen)
	h.Encode(good)

	cases := map[string]func([]byte){
		"version": func(b []byte) { b[0] = 6<<4 | 5 },
		"ihl":     func(b []byte) { b[0] = 4<<4 | 3 },
		"total<ihl": func(b []byte) {
			b[2], b[3] = 0, 4
		},
	}
	for name, corrupt := range cases {
		b := append([]byte(nil), good...)
		corrupt(b)
		var g IPv4
		if _, err := g.Decode(b); err == nil {
			t.Errorf("%s corruption not detected", name)
		}
	}
	var g IPv4
	if _, err := g.Decode(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Error("short header not detected")
	}
}

func TestIPv4FragmentBits(t *testing.T) {
	h := IPv4{TotalLen: 100, TTL: 1, Protocol: ProtoUDP, Flags: 0x1, FragOff: 1480, Src: srcIP, Dst: dstIP}
	buf := make([]byte, IPv4MinLen)
	h.Encode(buf)
	var g IPv4
	if _, err := g.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if !g.MoreFragments() || g.FragOff != 1480 || !g.IsFragment() {
		t.Errorf("fragment fields: %+v", g)
	}
	h2 := IPv4{TotalLen: 100, TTL: 1, Protocol: ProtoUDP, Flags: 0x2, Src: srcIP, Dst: dstIP}
	h2.Encode(buf)
	var g2 IPv4
	if _, err := g2.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if !g2.DontFragment() || g2.IsFragment() {
		t.Errorf("DF fields: %+v", g2)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("hello small message")
	h := UDP{SrcPort: 5000, DstPort: 53}
	buf := make([]byte, UDPLen+len(payload))
	h.Encode(buf[:UDPLen], payload, srcIP, dstIP)
	copy(buf[UDPLen:], payload)
	var g UDP
	n, err := g.Decode(buf, srcIP, dstIP)
	if err != nil {
		t.Fatal(err)
	}
	if n != UDPLen || g.SrcPort != 5000 || g.DstPort != 53 || g.Length != len(buf) {
		t.Errorf("decoded %+v", g)
	}
}

func TestUDPChecksumCatchesPayloadCorruption(t *testing.T) {
	payload := []byte("datagram payload")
	h := UDP{SrcPort: 1, DstPort: 2}
	buf := make([]byte, UDPLen+len(payload))
	h.Encode(buf[:UDPLen], payload, srcIP, dstIP)
	copy(buf[UDPLen:], payload)
	buf[UDPLen+3] ^= 0x40
	var g UDP
	if _, err := g.Decode(buf, srcIP, dstIP); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("want ErrBadChecksum, got %v", err)
	}
}

func TestUDPChecksumCoversAddresses(t *testing.T) {
	// Delivering to the wrong host must fail the pseudo-header checksum.
	payload := []byte("x")
	h := UDP{SrcPort: 1, DstPort: 2}
	buf := make([]byte, UDPLen+len(payload))
	h.Encode(buf[:UDPLen], payload, srcIP, dstIP)
	copy(buf[UDPLen:], payload)
	var g UDP
	if _, err := g.Decode(buf, srcIP, IPAddr{9, 9, 9, 9}); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("want pseudo-header failure, got %v", err)
	}
}

func TestUDPLengthValidation(t *testing.T) {
	var g UDP
	if _, err := g.Decode(make([]byte, 4), srcIP, dstIP); !errors.Is(err, ErrTruncated) {
		t.Error("short UDP not detected")
	}
	b := make([]byte, UDPLen)
	be.PutUint16(b[4:6], 4) // length below header size
	if _, err := g.Decode(b, srcIP, dstIP); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length not detected: %v", err)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("segment data")
	h := TCP{
		SrcPort: 80, DstPort: 31337,
		Seq: 0xdeadbeef, Ack: 0x01020304,
		Flags: TCPAck | TCPPsh, Window: 8760,
	}
	seg := make([]byte, TCPMinLen+len(payload))
	h.Encode(seg[:TCPMinLen], payload, srcIP, dstIP)
	copy(seg[TCPMinLen:], payload)
	var g TCP
	n, err := g.Decode(seg, srcIP, dstIP)
	if err != nil {
		t.Fatal(err)
	}
	if n != TCPMinLen || g.Seq != h.Seq || g.Ack != h.Ack || g.Flags != h.Flags || g.Window != 8760 {
		t.Errorf("decoded %+v", g)
	}
	if g.FlagString() != "AP" {
		t.Errorf("flags = %q, want AP", g.FlagString())
	}
}

func TestTCPChecksumCoversEverything(t *testing.T) {
	h := TCP{SrcPort: 1, DstPort: 2, Seq: 9, Flags: TCPSyn}
	seg := make([]byte, TCPMinLen+4)
	h.Encode(seg[:TCPMinLen], seg[TCPMinLen:], srcIP, dstIP)
	for _, i := range []int{0, 5, 13, TCPMinLen + 2} {
		b := append([]byte(nil), seg...)
		b[i] ^= 0x01
		var g TCP
		if _, err := g.Decode(b, srcIP, dstIP); err == nil {
			t.Errorf("corruption at byte %d not detected", i)
		}
	}
}

func TestTCPMalformed(t *testing.T) {
	var g TCP
	if _, err := g.Decode(make([]byte, 10), srcIP, dstIP); !errors.Is(err, ErrTruncated) {
		t.Error("short TCP not detected")
	}
	seg := make([]byte, TCPMinLen)
	seg[12] = 3 << 4 // data offset 12 < 20
	if _, err := g.Decode(seg, srcIP, dstIP); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad data offset: %v", err)
	}
}

// Property: encode∘decode is the identity on the encodable field subset,
// for random headers and payloads.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, rng.Intn(512))
		rng.Read(payload)
		var sa, da IPAddr
		rng.Read(sa[:])
		rng.Read(da[:])

		th := TCP{
			SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
			Seq: rng.Uint32(), Ack: rng.Uint32(),
			Flags: byte(rng.Intn(64)), Window: uint16(rng.Uint32()),
		}
		seg := make([]byte, TCPMinLen+len(payload))
		th.Encode(seg[:TCPMinLen], payload, sa, da)
		copy(seg[TCPMinLen:], payload)
		var tg TCP
		if _, err := tg.Decode(seg, sa, da); err != nil {
			return false
		}
		if tg.SrcPort != th.SrcPort || tg.Seq != th.Seq || tg.Ack != th.Ack || tg.Flags != th.Flags {
			return false
		}

		uh := UDP{SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32())}
		dg := make([]byte, UDPLen+len(payload))
		uh.Encode(dg[:UDPLen], payload, sa, da)
		copy(dg[UDPLen:], payload)
		var ug UDP
		if _, err := ug.Decode(dg, sa, da); err != nil {
			return false
		}
		return ug.SrcPort == uh.SrcPort && ug.DstPort == uh.DstPort
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: single-bit corruption anywhere in a TCP segment is detected
// by the checksum (16-bit one's complement catches all single-bit errors).
func TestSingleBitErrorsDetectedQuick(t *testing.T) {
	f := func(seed int64, bitSel uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, 1+rng.Intn(100))
		rng.Read(payload)
		h := TCP{SrcPort: 1, DstPort: 2, Seq: rng.Uint32(), Flags: TCPAck}
		seg := make([]byte, TCPMinLen+len(payload))
		h.Encode(seg[:TCPMinLen], payload, srcIP, dstIP)
		copy(seg[TCPMinLen:], payload)
		bit := int(bitSel) % (len(seg) * 8)
		// Skip bits inside fields Decode doesn't checksum-protect
		// semantically but still covers (urgent pointer etc. are covered;
		// everything is). Flip and expect failure.
		seg[bit/8] ^= 1 << (bit % 8)
		var g TCP
		_, err := g.Decode(seg, srcIP, dstIP)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTCPDecode(b *testing.B) {
	payload := make([]byte, 512)
	h := TCP{SrcPort: 80, DstPort: 12345, Seq: 1, Ack: 2, Flags: TCPAck}
	seg := make([]byte, TCPMinLen+len(payload))
	h.Encode(seg[:TCPMinLen], payload, srcIP, dstIP)
	copy(seg[TCPMinLen:], payload)
	var g TCP
	b.SetBytes(int64(len(seg)))
	for i := 0; i < b.N; i++ {
		if _, err := g.Decode(seg, srcIP, dstIP); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: decoders never panic and never claim success beyond their
// input on arbitrary byte soup — the front line against a hostile wire.
func TestDecodersRobustAgainstGarbageQuick(t *testing.T) {
	f := func(data []byte, sa, da IPAddr) bool {
		var (
			eth Ethernet
			ip  IPv4
			udp UDP
			tcp TCP
		)
		if n, err := eth.Decode(data); err == nil && n > len(data) {
			return false
		}
		if n, err := ip.Decode(data); err == nil && (n > len(data) || n < IPv4MinLen) {
			return false
		}
		if n, err := udp.Decode(data, sa, da); err == nil && n != UDPLen {
			return false
		}
		if n, err := tcp.Decode(data, sa, da); err == nil && (n > len(data) || n < TCPMinLen) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: random garbage essentially never passes the checksummed
// decoders (a 16-bit checksum admits ~1/65536 garbage; over 500 samples
// seeing more than a few passes indicates a validation hole).
func TestGarbageRarelyValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	passes := 0
	for i := 0; i < 500; i++ {
		data := make([]byte, 20+rng.Intn(60))
		rng.Read(data)
		var ip IPv4
		if _, err := ip.Decode(data); err == nil {
			passes++
		}
	}
	if passes > 3 {
		t.Errorf("%d/500 random buffers passed IPv4 validation", passes)
	}
}
