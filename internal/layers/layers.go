// Package layers defines the wire formats the runnable netstack speaks:
// Ethernet II, IPv4, UDP and a TCP subset. Decoders parse into caller-
// preallocated structs without allocating (the gopacket DecodingLayer
// idiom), and encoders write into caller-provided space so the netstack
// can prepend headers into mbuf headroom without copies.
package layers

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ldlp/internal/checksum"
)

// be is the network byte order.
var be = binary.BigEndian

// Common decode errors.
var (
	ErrTruncated   = errors.New("layers: truncated header")
	ErrBadVersion  = errors.New("layers: bad IP version")
	ErrBadChecksum = errors.New("layers: bad checksum")
	ErrBadLength   = errors.New("layers: bad length field")
)

// EtherType values.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Header sizes in bytes.
const (
	EthernetLen = 14
	IPv4MinLen  = 20
	UDPLen      = 8
	TCPMinLen   = 20
)

// MACAddr is a 48-bit Ethernet address.
type MACAddr [6]byte

// String formats the address conventionally.
func (a MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IPAddr is an IPv4 address.
type IPAddr [4]byte

// String formats the address in dotted quad.
func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst, Src  MACAddr
	EtherType uint16
}

// Decode parses the header from b, returning the header length.
func (h *Ethernet) Decode(b []byte) (int, error) {
	if len(b) < EthernetLen {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("ethernet: %w (%d bytes)", ErrTruncated, len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = be.Uint16(b[12:14])
	return EthernetLen, nil
}

// Encode writes the header into b (which must hold EthernetLen bytes).
func (h *Ethernet) Encode(b []byte) int {
	_ = b[EthernetLen-1]
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	be.PutUint16(b[12:14], h.EtherType)
	return EthernetLen
}

// IPv4 is an IPv4 header (options unsupported on encode, skipped on
// decode).
type IPv4 struct {
	IHL      int // header length in bytes
	TOS      byte
	TotalLen int
	ID       uint16
	Flags    byte
	FragOff  int
	TTL      byte
	Protocol byte
	Checksum uint16
	Src, Dst IPAddr
}

// MoreFragments reports the MF bit.
func (h *IPv4) MoreFragments() bool { return h.Flags&0x1 != 0 }

// DontFragment reports the DF bit.
func (h *IPv4) DontFragment() bool { return h.Flags&0x2 != 0 }

// IsFragment reports whether this packet is any fragment of a larger
// datagram.
func (h *IPv4) IsFragment() bool { return h.MoreFragments() || h.FragOff != 0 }

// Decode parses and validates the header, verifying the header checksum.
func (h *IPv4) Decode(b []byte) (int, error) {
	if len(b) < IPv4MinLen {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("ipv4: %w (%d bytes)", ErrTruncated, len(b))
	}
	if v := b[0] >> 4; v != 4 {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("%w %d", ErrBadVersion, v)
	}
	h.IHL = int(b[0]&0x0f) * 4
	if h.IHL < IPv4MinLen || h.IHL > len(b) {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("ipv4: %w (ihl %d)", ErrBadLength, h.IHL)
	}
	h.TOS = b[1]
	h.TotalLen = int(be.Uint16(b[2:4]))
	if h.TotalLen < h.IHL {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("ipv4: %w (total %d < ihl %d)", ErrBadLength, h.TotalLen, h.IHL)
	}
	h.ID = be.Uint16(b[4:6])
	ff := be.Uint16(b[6:8])
	h.Flags = byte(ff >> 13)
	h.FragOff = int(ff&0x1fff) * 8
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = be.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if checksum.Simple(b[:h.IHL]) != 0 {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("ipv4: %w", ErrBadChecksum)
	}
	return h.IHL, nil
}

// Encode writes a 20-byte header (no options) with a correct checksum
// into b.
func (h *IPv4) Encode(b []byte) int {
	_ = b[IPv4MinLen-1]
	b[0] = 4<<4 | IPv4MinLen/4
	b[1] = h.TOS
	be.PutUint16(b[2:4], uint16(h.TotalLen))
	be.PutUint16(b[4:6], h.ID)
	be.PutUint16(b[6:8], uint16(h.Flags)<<13|uint16(h.FragOff/8))
	b[8] = h.TTL
	b[9] = h.Protocol
	be.PutUint16(b[10:12], 0)
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	be.PutUint16(b[10:12], checksum.Simple(b[:IPv4MinLen]))
	return IPv4MinLen
}

// pseudoHeader accumulates the TCP/UDP pseudo-header into acc.
func pseudoHeader(acc *checksum.Accumulator, src, dst IPAddr, proto byte, length int) {
	acc.Add(src[:])
	acc.Add(dst[:])
	acc.AddUint16(uint16(proto))
	acc.AddUint16(uint16(length))
}

// UDP is a UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           int
	Checksum         uint16
}

// Decode parses the header and, when ipSrc/ipDst are supplied and the
// checksum field is nonzero, verifies the checksum over payload.
func (h *UDP) Decode(b []byte, src, dst IPAddr) (int, error) {
	if len(b) < UDPLen {
		return 0, fmt.Errorf("udp: %w (%d bytes)", ErrTruncated, len(b))
	}
	h.SrcPort = be.Uint16(b[0:2])
	h.DstPort = be.Uint16(b[2:4])
	h.Length = int(be.Uint16(b[4:6]))
	h.Checksum = be.Uint16(b[6:8])
	if h.Length < UDPLen || h.Length > len(b) {
		return 0, fmt.Errorf("udp: %w (len %d, have %d)", ErrBadLength, h.Length, len(b))
	}
	if h.Checksum != 0 {
		var acc checksum.Accumulator
		pseudoHeader(&acc, src, dst, ProtoUDP, h.Length)
		acc.Add(b[:h.Length])
		if acc.Sum16() != 0 {
			return 0, fmt.Errorf("udp: %w", ErrBadChecksum)
		}
	}
	return UDPLen, nil
}

// Encode writes the header into b and computes the checksum over the
// pseudo-header plus payload.
func (h *UDP) Encode(b []byte, payload []byte, src, dst IPAddr) int {
	_ = b[UDPLen-1]
	h.Length = UDPLen + len(payload)
	be.PutUint16(b[0:2], h.SrcPort)
	be.PutUint16(b[2:4], h.DstPort)
	be.PutUint16(b[4:6], uint16(h.Length))
	be.PutUint16(b[6:8], 0)
	var acc checksum.Accumulator
	pseudoHeader(&acc, src, dst, ProtoUDP, h.Length)
	acc.Add(b[:UDPLen])
	acc.Add(payload)
	sum := acc.Sum16()
	if sum == 0 {
		sum = 0xffff // RFC 768: transmitted 0 means "no checksum"
	}
	be.PutUint16(b[6:8], sum)
	h.Checksum = sum
	return UDPLen
}

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
)

// TCP is a TCP header (no options on encode; options skipped on decode).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOff          int // header length in bytes
	Flags            byte
	Window           uint16
	Checksum         uint16
}

// FlagString renders the flag bits ("SA", "F", ...).
func (h *TCP) FlagString() string {
	s := ""
	for _, f := range []struct {
		bit  byte
		name string
	}{{TCPSyn, "S"}, {TCPAck, "A"}, {TCPFin, "F"}, {TCPRst, "R"}, {TCPPsh, "P"}} {
		if h.Flags&f.bit != 0 {
			s += f.name
		}
	}
	return s
}

// Decode parses the header, verifying the checksum over the whole segment
// (seg must span the entire TCP segment: header + payload).
func (h *TCP) Decode(seg []byte, src, dst IPAddr) (int, error) {
	if len(seg) < TCPMinLen {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("tcp: %w (%d bytes)", ErrTruncated, len(seg))
	}
	h.SrcPort = be.Uint16(seg[0:2])
	h.DstPort = be.Uint16(seg[2:4])
	h.Seq = be.Uint32(seg[4:8])
	h.Ack = be.Uint32(seg[8:12])
	h.DataOff = int(seg[12]>>4) * 4
	if h.DataOff < TCPMinLen || h.DataOff > len(seg) {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("tcp: %w (data offset %d)", ErrBadLength, h.DataOff)
	}
	h.Flags = seg[13] & 0x3f
	h.Window = be.Uint16(seg[14:16])
	h.Checksum = be.Uint16(seg[16:18])
	var acc checksum.Accumulator
	pseudoHeader(&acc, src, dst, ProtoTCP, len(seg))
	acc.Add(seg)
	if acc.Sum16() != 0 {
		//lint:ignore hotpathalloc malformed-frame error path, never taken by well-formed traffic
		return 0, fmt.Errorf("tcp: %w", ErrBadChecksum)
	}
	return h.DataOff, nil
}

// Encode writes a 20-byte header into b with the checksum computed over
// the pseudo-header, header and payload.
func (h *TCP) Encode(b []byte, payload []byte, src, dst IPAddr) int {
	_ = b[TCPMinLen-1]
	be.PutUint16(b[0:2], h.SrcPort)
	be.PutUint16(b[2:4], h.DstPort)
	be.PutUint32(b[4:8], h.Seq)
	be.PutUint32(b[8:12], h.Ack)
	b[12] = (TCPMinLen / 4) << 4
	b[13] = h.Flags
	be.PutUint16(b[14:16], h.Window)
	be.PutUint16(b[16:18], 0)
	be.PutUint16(b[18:20], 0) // urgent pointer unused
	var acc checksum.Accumulator
	pseudoHeader(&acc, src, dst, ProtoTCP, TCPMinLen+len(payload))
	acc.Add(b[:TCPMinLen])
	acc.Add(payload)
	h.Checksum = acc.Sum16()
	be.PutUint16(b[16:18], h.Checksum)
	h.DataOff = TCPMinLen
	return TCPMinLen
}
