package gossip

import (
	"bytes"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/fleet"
	"ldlp/internal/telemetry"
)

func TestCodecRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Type: Prop, Sender: 0, Step: 1},
		{Type: Ack, Sender: 41, Step: 7, Vec: []VecEntry{{ID: 3, WitStep: 6}}},
		{Type: Wit, Sender: 999999, Step: 1 << 30, Vec: []VecEntry{
			{ID: 0, WitStep: 1}, {ID: 4294967295, WitStep: 2}, {ID: 7, WitStep: 3},
		}},
	}
	for _, m := range msgs {
		b := m.AppendTo(nil)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("decode(%v): %v", m, err)
		}
		if got.Type != m.Type || got.Sender != m.Sender || got.Step != m.Step || len(got.Vec) != len(m.Vec) {
			t.Fatalf("round trip: got %+v, want %+v", got, m)
		}
		for i := range m.Vec {
			if got.Vec[i] != m.Vec[i] {
				t.Fatalf("vec[%d]: got %+v, want %+v", i, got.Vec[i], m.Vec[i])
			}
		}
	}
}

func TestCodecRejectsMangledDatagrams(t *testing.T) {
	good := (&Msg{Type: Prop, Sender: 1, Step: 2, Vec: []VecEntry{{ID: 9, WitStep: 1}}}).AppendTo(nil)
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:headerLen-1],
		"bad magic":   append([]byte{0x00}, good[1:]...),
		"bad type":    {Magic, 9, 0, 0, 0, 1, 0, 0, 0, 2, 0},
		"vec too big": {Magic, byte(Prop), 0, 0, 0, 1, 0, 0, 0, 2, 5},
		"trailing":    append(append([]byte{}, good...), 0xFF),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}
}

// runSmall drives a quick gossip convergence and returns the result.
func runSmall(t *testing.T, d core.Discipline, link fleet.LinkConfig, seed int64) Result {
	t.Helper()
	res, err := Run(Config{
		Fleet: fleet.Config{
			Topology:   fleet.SmallWorld(48, 3, 0.1, seed),
			Discipline: d,
			Link:       link,
			Seed:       seed,
			Horizon:    30,
		},
		TargetStep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGossipConverges(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		t.Run(d.String(), func(t *testing.T) {
			res := runSmall(t, d, fleet.LANLink(), 2)
			if !res.Completed {
				t.Fatalf("did not reach step %d: %+v", res.Target, res)
			}
			if res.RoundsPerStep <= 0 || res.StepTime <= 0 || res.DeliveryP99 <= 0 {
				t.Fatalf("degenerate metrics: %+v", res)
			}
		})
	}
}

// TestGossipConvergesUnderLoss: the heartbeat retransmission must carry
// the protocol through a lossy link preset.
func TestGossipConvergesUnderLoss(t *testing.T) {
	res := runSmall(t, core.LDLP, fleet.FaultyLink(fleet.LANLink(), "bernoulli"), 4)
	if !res.Completed {
		t.Fatalf("did not converge under loss: %+v", res)
	}
	if res.Fleet.Faults.LossDrops == 0 {
		t.Fatal("loss preset dropped nothing — the run proved nothing")
	}
}

// TestReplayByteIdentical is the determinism deliverable: two runs of
// the same 256-node topology and seed must produce byte-identical event
// logs, gossip step histories, and merged telemetry snapshots.
func TestReplayByteIdentical(t *testing.T) {
	type artifacts struct {
		events    []byte
		history   []byte
		telemetry []telemetry.HistEntry
	}
	run := func() artifacts {
		var log bytes.Buffer
		res, err := Run(Config{
			Fleet: fleet.Config{
				Topology:   fleet.SmallWorld(256, 4, 0.1, 6),
				Discipline: core.LDLP,
				Link:       fleet.FaultyLink(fleet.LANLink(), "bernoulli"),
				Seed:       6,
				Horizon:    30,
				EventLog:   &log,
			},
			TargetStep: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("256-node run did not converge: %+v", res)
		}
		return artifacts{events: log.Bytes(), history: res.History, telemetry: res.Telemetry}
	}
	a, b := run(), run()
	if len(a.events) == 0 || len(a.history) == 0 || len(a.telemetry) == 0 {
		t.Fatal("empty replay artifacts")
	}
	if !bytes.Equal(a.events, b.events) {
		t.Errorf("event logs differ: %d vs %d bytes", len(a.events), len(b.events))
	}
	if !bytes.Equal(a.history, b.history) {
		t.Errorf("step histories differ:\n%s\nvs\n%s", a.history[:min(len(a.history), 400)], b.history[:min(len(b.history), 400)])
	}
	if len(a.telemetry) != len(b.telemetry) {
		t.Fatalf("telemetry entry counts differ: %d vs %d", len(a.telemetry), len(b.telemetry))
	}
	for i := range a.telemetry {
		if a.telemetry[i].Name != b.telemetry[i].Name || a.telemetry[i].Hist != b.telemetry[i].Hist {
			t.Errorf("telemetry %q differs across replays", a.telemetry[i].Name)
		}
	}
}

// TestLDLPBeatsConventionalTail: under gossip fan-in the LDLP fleet's
// p99 delivery latency must beat conventional call-through — the
// paper's claim at fleet scale.
func TestLDLPBeatsConventionalTail(t *testing.T) {
	ldlp := runSmall(t, core.LDLP, fleet.LANLink(), 8)
	conv := runSmall(t, core.Conventional, fleet.LANLink(), 8)
	if !ldlp.Completed || !conv.Completed {
		t.Fatalf("runs incomplete: ldlp=%v conv=%v", ldlp.Completed, conv.Completed)
	}
	if ldlp.DeliveryP99 >= conv.DeliveryP99 {
		t.Fatalf("LDLP p99 %.0fns not better than conventional %.0fns", ldlp.DeliveryP99, conv.DeliveryP99)
	}
}

func TestFigureFleetGossipSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figure cell sweep is slow")
	}
	tab, err := FigureFleetGossip(FigureConfig{Nodes: 96, Degree: 4, TargetStep: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if len(s) == 0 {
		t.Fatal("empty figure")
	}
}
