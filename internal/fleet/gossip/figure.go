package gossip

import (
	"fmt"

	"ldlp/internal/core"
	"ldlp/internal/fleet"
	"ldlp/internal/stats"
)

// FigureConfig sizes FigureFleetGossip.
type FigureConfig struct {
	// Nodes is the fleet size; 0 means the deliverable's 1000.
	Nodes int
	// Degree is the small-world lattice degree parameter k (actual
	// degree ~2k); 0 means 8.
	Degree int
	// TargetStep is the logical-clock target; 0 means 5.
	TargetStep uint32
	// Seed drives everything.
	Seed int64
	// FaultPreset names the impaired link model compared against the
	// clean one; empty means "bernoulli".
	FaultPreset string
}

func (c *FigureConfig) setDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 1000
	}
	if c.Degree == 0 {
		c.Degree = 8
	}
	if c.TargetStep == 0 {
		c.TargetStep = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FaultPreset == "" {
		c.FaultPreset = "bernoulli"
	}
}

// runCell executes one (discipline, link) cell of the figure.
func runCell(fc FigureConfig, d core.Discipline, link fleet.LinkConfig) (Result, error) {
	return Run(Config{
		Fleet: fleet.Config{
			Topology:   fleet.SmallWorld(fc.Nodes, fc.Degree, 0.1, fc.Seed),
			Discipline: d,
			Link:       link,
			Seed:       fc.Seed,
		},
		TargetStep: fc.TargetStep,
	})
}

// FigureFleetGossip is the deliverable: threshold gossip at fleet scale,
// LDLP vs conventional, clean vs fault-preset links. One row per link
// model (x = 0 clean, 1 impaired); the series carry rounds-to-step and
// the delivery latency distribution for both disciplines, plus the
// headline p99 ratio. The same seed always reproduces the same table
// byte-for-byte (the replay test pins this at 256 nodes).
func FigureFleetGossip(fc FigureConfig) (*stats.Table, error) {
	fc.setDefaults()
	t := stats.NewTable(
		fmt.Sprintf("FigureFleetGossip: %d-node smallworld, TLC to step %d (0=clean, 1=%s)", fc.Nodes, fc.TargetStep, fc.FaultPreset),
		"link",
		"ldlp-rounds-per-step", "conv-rounds-per-step",
		"ldlp-p50-us", "conv-p50-us",
		"ldlp-p99-us", "conv-p99-us",
		"p99-ratio",
	)
	links := []fleet.LinkConfig{
		fleet.LANLink(),
		fleet.FaultyLink(fleet.LANLink(), fc.FaultPreset),
	}
	for i, link := range links {
		ldlp, err := runCell(fc, core.LDLP, link)
		if err != nil {
			return nil, err
		}
		conv, err := runCell(fc, core.Conventional, link)
		if err != nil {
			return nil, err
		}
		if !ldlp.Completed || !conv.Completed {
			return nil, fmt.Errorf("gossip: figure cell did not complete (link %d: ldlp=%v conv=%v)", i, ldlp.Completed, conv.Completed)
		}
		t.Add(float64(i),
			ldlp.RoundsPerStep, conv.RoundsPerStep,
			ldlp.DeliveryP50/1e3, conv.DeliveryP50/1e3,
			ldlp.DeliveryP99/1e3, conv.DeliveryP99/1e3,
			conv.DeliveryP99/ldlp.DeliveryP99,
		)
	}
	return t, nil
}
