package gossip

import (
	"fmt"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/fleet"
)

// BenchmarkFleetGossip is the CI fleet tier: threshold gossip at 1000
// nodes (256 under -short), LDLP and conventional back to back, on a
// clean and a lossy link model. The custom metrics land in BENCH_2.json
// via cmd/benchjson: rounds-per-step and delivery-p99-ns describe the
// LDLP run; ldlp-latency-ratio is conventional p99 over LDLP p99 — the
// fleet-scale headline, expected well above 1.
func BenchmarkFleetGossip(b *testing.B) {
	nodes := 1000
	if testing.Short() {
		nodes = 256
	}
	for _, tc := range []struct {
		name, preset string
	}{
		{"clean", ""},
		{"lossy", "bernoulli"},
	} {
		b.Run(fmt.Sprintf("%s/n%d", tc.name, nodes), func(b *testing.B) {
			link := fleet.LANLink()
			if tc.preset != "" {
				link = fleet.FaultyLink(link, tc.preset)
			}
			run := func(d core.Discipline) Result {
				res, err := Run(Config{
					Fleet: fleet.Config{
						Topology:   fleet.SmallWorld(nodes, 8, 0.1, 1),
						Discipline: d,
						Link:       link,
						Seed:       1,
					},
					TargetStep: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatalf("%v run did not converge: %+v", d, res)
				}
				return res
			}
			for i := 0; i < b.N; i++ {
				ldlp := run(core.LDLP)
				conv := run(core.Conventional)
				b.ReportMetric(ldlp.RoundsPerStep, "rounds-per-step")
				b.ReportMetric(ldlp.DeliveryP99, "delivery-p99-ns")
				b.ReportMetric(conv.DeliveryP99/ldlp.DeliveryP99, "ldlp-latency-ratio")
			}
		})
	}
}
