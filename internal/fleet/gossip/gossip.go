package gossip

import (
	"fmt"
	"math"

	"ldlp/internal/fleet"
	"ldlp/internal/layers"
	"ldlp/internal/netstack"
	"ldlp/internal/telemetry"
)

// Config parameterizes a gossip run over a fleet.
type Config struct {
	// Fleet configures the underlying simulator (topology, discipline,
	// links, seed, horizon).
	Fleet fleet.Config
	// TargetStep stops the run once every node's logical clock reaches
	// it. Required.
	TargetStep uint32
	// Threshold is the witness/advance threshold as a fraction of each
	// node's degree; 0 means 2/3. A node's proposal is witnessed after
	// ceil(frac*deg) acks, and the node advances once it knows that many
	// peers' current-step proposals are witnessed.
	Threshold float64
	// Heartbeat is the retransmission period in seconds (liveness under
	// loss); 0 means 50 ms.
	Heartbeat float64
	// VectorCap bounds the piggybacked vector entries per message; 0
	// means 16.
	VectorCap int
	// Port is the UDP port the protocol binds; 0 means 9090.
	Port uint16
}

func (c *Config) setDefaults() error {
	if c.TargetStep == 0 {
		return fmt.Errorf("gossip: TargetStep must be >= 1")
	}
	if c.Threshold == 0 {
		c.Threshold = 2.0 / 3
	}
	if c.Threshold < 0 || c.Threshold > 1 {
		return fmt.Errorf("gossip: threshold %v outside (0, 1]", c.Threshold)
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 0.05
	}
	if c.VectorCap == 0 {
		c.VectorCap = 16
	}
	if c.VectorCap > MaxVec {
		return fmt.Errorf("gossip: vector cap %d overflows the wire format (max %d)", c.VectorCap, MaxVec)
	}
	if c.Port == 0 {
		c.Port = 9090
	}
	return nil
}

// StepRecord is one logical-clock advance in a node's history.
type StepRecord struct {
	Step uint32
	At   float64 // simulated seconds when the node reached Step
}

// nodeState is one node's TLC state machine.
type nodeState struct {
	sock    *netstack.UDPSock
	peers   []int32
	peerIdx map[int32]int // global id -> adjacency index
	thresh  int

	step      uint32 // current logical time step
	witnessed bool   // this step's proposal reached its ack threshold
	acks      []bool // per adjacency index: acked my current step
	ackCount  int
	// knownWit[id] is the highest step for which this node knows node
	// id's proposal was witnessed (0 = nothing known). Learned from Wit
	// messages and piggybacked vectors; transitive knowledge counts
	// toward the advance threshold exactly like a direct witness.
	knownWit []uint32
	vecOff   int // rotation offset for vector piggyback selection

	history []StepRecord
}

// Runner drives the protocol on every fleet node. It implements
// fleet.App; use Run or construct via NewRunner for custom fleets.
type Runner struct {
	cfg     Config
	n       int
	nodes   []*nodeState
	sent    int64
	reached int // nodes at TargetStep
	scratch []byte
}

// NewRunner validates cfg and builds the protocol state for n nodes.
func NewRunner(cfg Config, n int) (*Runner, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, n: n, nodes: make([]*nodeState, n)}, nil
}

// threshold returns ceil(frac*deg), at least 1, at most deg.
func (r *Runner) threshold(deg int) int {
	t := int(math.Ceil(r.cfg.Threshold * float64(deg)))
	if t < 1 {
		t = 1
	}
	if t > deg {
		t = deg
	}
	return t
}

// Setup implements fleet.App.
func (r *Runner) Setup(n *fleet.Node) {
	sock, err := n.Host().UDPSocket(r.cfg.Port)
	if err != nil {
		panic(err)
	}
	peers := n.Peers()
	st := &nodeState{
		sock:     sock,
		peers:    peers,
		peerIdx:  make(map[int32]int, len(peers)),
		thresh:   r.threshold(len(peers)),
		acks:     make([]bool, len(peers)),
		knownWit: make([]uint32, r.n),
		history:  make([]StepRecord, 0, 8),
	}
	for i, p := range peers {
		st.peerIdx[p] = i
	}
	r.nodes[n.ID()] = st
}

// Start implements fleet.App: every node proposes step 1 at t=0 and
// arms its heartbeat.
func (r *Runner) Start(n *fleet.Node) {
	st := r.nodes[n.ID()]
	st.step = 1
	r.broadcast(n, st, Prop, st.step)
	n.After(r.cfg.Heartbeat, 0)
}

// Timer implements fleet.App: the heartbeat retransmits the node's
// current protocol position — its unwitnessed proposal, or its witness
// announcement — carrying a fresh vector either way.
func (r *Runner) Timer(n *fleet.Node, _ float64, _ int64) {
	st := r.nodes[n.ID()]
	if st.step > r.cfg.TargetStep {
		return // done; let the schedule drain
	}
	if st.witnessed {
		r.broadcast(n, st, Wit, st.step)
	} else {
		r.broadcast(n, st, Prop, st.step)
	}
	n.After(r.cfg.Heartbeat, 0)
}

// Poll implements fleet.App: drain the socket and run the state machine
// on every datagram.
func (r *Runner) Poll(n *fleet.Node, now float64) {
	st := r.nodes[n.ID()]
	for {
		dg, ok := st.sock.Recv()
		if !ok {
			return
		}
		m, err := Decode(dg.Data)
		if err != nil {
			continue // not ours / mangled beyond the UDP checksum's care
		}
		r.handle(n, st, m, now)
	}
}

func (r *Runner) handle(n *fleet.Node, st *nodeState, m Msg, now float64) {
	// Vector knowledge first: it may be fresher than the message itself.
	for _, e := range m.Vec {
		if int(e.ID) < len(st.knownWit) && e.WitStep > st.knownWit[e.ID] {
			st.knownWit[e.ID] = e.WitStep
		}
	}
	switch m.Type {
	case Prop:
		// Acknowledge the proposal at its own step (idempotent for the
		// proposer; re-acks from heartbeat duplicates are absorbed by
		// the acks bitmap on their side).
		r.send(n, st, Ack, m.Step, fleet.IPOf(int(m.Sender)))
	case Ack:
		if m.Step != st.step || st.witnessed {
			break // stale ack for an earlier step, or already witnessed
		}
		idx, ok := st.peerIdx[int32(m.Sender)]
		if !ok || st.acks[idx] {
			break
		}
		st.acks[idx] = true
		st.ackCount++
		if st.ackCount >= st.thresh {
			st.witnessed = true
			st.knownWit[n.ID()] = st.step
			r.broadcast(n, st, Wit, st.step)
		}
	case Wit:
		if int(m.Sender) < len(st.knownWit) && m.Step > st.knownWit[m.Sender] {
			st.knownWit[m.Sender] = m.Step
		}
		// Reply with an Ack even though there is nothing to witness: the
		// reply's piggybacked vector is what keeps knowledge flowing to a
		// lagging sender whose own peers have finished and gone quiet —
		// without it a witnessed straggler heartbeating Wit could starve.
		r.send(n, st, Ack, m.Step, fleet.IPOf(int(m.Sender)))
	}
	r.tryAdvance(n, st, now)
}

// tryAdvance moves the node's logical clock forward while the TLC
// condition holds: own proposal witnessed, and a threshold of peers'
// current-step proposals known witnessed.
func (r *Runner) tryAdvance(n *fleet.Node, st *nodeState, now float64) {
	for st.witnessed && st.step <= r.cfg.TargetStep {
		cnt := 0
		for _, p := range st.peers {
			if st.knownWit[p] >= st.step {
				cnt++
			}
		}
		if cnt < st.thresh {
			return
		}
		st.history = append(st.history, StepRecord{Step: st.step, At: now})
		if st.step == r.cfg.TargetStep {
			r.reached++
			st.step++ // past target: heartbeats stop proposing
			if r.reached == r.n {
				n.Fleet().Stop()
			}
			return
		}
		st.step++
		st.witnessed = false
		st.ackCount = 0
		for i := range st.acks {
			st.acks[i] = false
		}
		r.broadcast(n, st, Prop, st.step)
	}
}

// vector assembles the piggyback: self first, then a rotating window of
// peers with known witness state, capped at VectorCap. Rotation spreads
// transitive knowledge across successive messages deterministically.
func (r *Runner) vector(id int, st *nodeState) []VecEntry {
	vec := make([]VecEntry, 0, r.cfg.VectorCap)
	if st.knownWit[id] > 0 {
		vec = append(vec, VecEntry{ID: uint32(id), WitStep: st.knownWit[id]})
	}
	for i := 0; i < len(st.peers) && len(vec) < r.cfg.VectorCap; i++ {
		p := st.peers[(st.vecOff+i)%len(st.peers)]
		if w := st.knownWit[p]; w > 0 {
			vec = append(vec, VecEntry{ID: uint32(p), WitStep: w})
		}
	}
	st.vecOff++
	return vec
}

func (r *Runner) send(n *fleet.Node, st *nodeState, t MsgType, step uint32, dst layers.IPAddr) {
	m := Msg{Type: t, Sender: uint32(n.ID()), Step: step, Vec: r.vector(n.ID(), st)}
	r.scratch = m.AppendTo(r.scratch[:0])
	st.sock.SendTo(dst, r.cfg.Port, r.scratch)
	r.sent++
}

func (r *Runner) broadcast(n *fleet.Node, st *nodeState, t MsgType, step uint32) {
	for _, p := range st.peers {
		r.send(n, st, t, step, fleet.IPOf(int(p)))
	}
}

// History returns node id's step advances in order.
func (r *Runner) History(id int) []StepRecord { return r.nodes[id].history }

// HistoryBytes serializes every node's step history into a canonical
// byte form — the replay artifact two same-seed runs must reproduce
// exactly.
func (r *Runner) HistoryBytes() []byte {
	var b []byte
	for id, st := range r.nodes {
		b = append(b, fmt.Sprintf("n%d:", id)...)
		for _, rec := range st.history {
			b = append(b, fmt.Sprintf(" %d@%.9f", rec.Step, rec.At)...)
		}
		b = append(b, '\n')
	}
	return b
}

// Sent returns the total gossip datagrams transmitted.
func (r *Runner) Sent() int64 { return r.sent }

// Reached returns how many nodes hit TargetStep.
func (r *Runner) Reached() int { return r.reached }

// Result summarizes one gossip run.
type Result struct {
	Nodes     int
	Target    uint32
	Completed bool    // every node reached TargetStep before the horizon
	SimTime   float64 // simulated seconds when the run ended
	MsgsSent  int64
	// RoundsPerStep is gossip datagrams per node per completed step —
	// the protocol-efficiency number FigureFleetGossip reports.
	RoundsPerStep float64
	// StepTime is the mean seconds between consecutive step advances,
	// across all nodes.
	StepTime float64
	// DeliveryP50/P99 are send-to-service-completion latency quantiles
	// in nanoseconds, from the fleet-wide merged delivery histogram.
	DeliveryP50, DeliveryP99 float64
	// History is the canonical serialized step history (see
	// Runner.HistoryBytes).
	History []byte
	// Telemetry is the fleet-wide merged histogram set.
	Telemetry []telemetry.HistEntry
	// Fleet is the scheduler's final accounting.
	Fleet fleet.Stats
}

// Run builds a fleet over cfg, drives the protocol to TargetStep (or
// the horizon) and returns the summary. The fleet is closed before
// returning.
func Run(cfg Config) (Result, error) {
	r, err := NewRunner(cfg, cfg.Fleet.Topology.N())
	if err != nil {
		return Result{}, err
	}
	f, err := fleet.New(cfg.Fleet, r)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	fs := f.Run()
	if err := f.CheckInvariants(); err != nil {
		return Result{}, err
	}

	res := Result{
		Nodes:     f.N(),
		Target:    cfg.TargetStep,
		Completed: r.reached == f.N(),
		SimTime:   f.Now(),
		MsgsSent:  r.sent,
		History:   r.HistoryBytes(),
		Telemetry: f.MergedTelemetry(),
		Fleet:     fs,
	}
	var steps, spans int64
	var spanSum float64
	for _, st := range r.nodes {
		steps += int64(len(st.history))
		prev := 0.0
		for _, rec := range st.history {
			spanSum += rec.At - prev
			prev = rec.At
			spans++
		}
	}
	if steps > 0 {
		res.RoundsPerStep = float64(r.sent) / float64(steps)
	}
	if spans > 0 {
		res.StepTime = spanSum / float64(spans)
	}
	for _, e := range res.Telemetry {
		if e.Name == "fleet-delivery-ns" {
			res.DeliveryP50 = e.Hist.Quantile(0.50)
			res.DeliveryP99 = e.Hist.Quantile(0.99)
		}
	}
	return res, nil
}
