// Package gossip is a TLC-style threshold logical-clock protocol run
// over the fleet simulator's real UDP stack: every node broadcasts a
// proposal for its current time step, peers acknowledge it, and once a
// threshold of acknowledgments arrives the proposal is witnessed and
// announced. A node advances its logical clock when it knows a
// threshold of its peers' current-step messages are witnessed — learned
// either from direct witness announcements or from the vector-clock
// knowledge piggybacked on every message. Heartbeat retransmission
// keeps the protocol live across lossy links; every handler is
// idempotent, so duplicates and stale retransmits are harmless.
//
// Because each message rides netstack's UDP/IP/Ethernet encode and the
// full LDLP receive path, the fleet-level comparison between the
// conventional and LDLP disciplines measures the paper's batching
// discipline under the all-to-all small-message chatter it targets.
package gossip

import (
	"encoding/binary"
	"fmt"
)

// Magic is the first wire byte of every gossip datagram.
const Magic = 0xA7

// MsgType discriminates the three TLC message kinds.
type MsgType uint8

const (
	// Prop proposes the sender's message for its current step.
	Prop MsgType = 1 + iota
	// Ack acknowledges a peer's proposal for the echoed step.
	Ack
	// Wit announces the sender's step message reached its witness
	// threshold.
	Wit
)

func (t MsgType) String() string {
	switch t {
	case Prop:
		return "prop"
	case Ack:
		return "ack"
	case Wit:
		return "wit"
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// VecEntry is one piggybacked vector-clock element: the sender knows
// node ID's proposal for step WitStep was witnessed.
type VecEntry struct {
	ID, WitStep uint32
}

// Msg is a decoded gossip datagram.
//
// Wire layout (big-endian): magic(1) type(1) sender(4) step(4) nvec(1)
// then nvec x (id(4) witstep(4)). With the default vector cap of 16 a
// message is at most 155 bytes — squarely the small-message regime.
type Msg struct {
	Type   MsgType
	Sender uint32
	Step   uint32
	Vec    []VecEntry
}

const headerLen = 1 + 1 + 4 + 4 + 1

// MaxVec bounds the piggybacked vector so a message always fits one
// frame (no fragmentation on the hot path).
const MaxVec = 255

// AppendTo serializes m onto b and returns the extended slice.
func (m *Msg) AppendTo(b []byte) []byte {
	if len(m.Vec) > MaxVec {
		panic(fmt.Sprintf("gossip: vector of %d entries overflows the wire format", len(m.Vec)))
	}
	b = append(b, Magic, byte(m.Type))
	b = binary.BigEndian.AppendUint32(b, m.Sender)
	b = binary.BigEndian.AppendUint32(b, m.Step)
	b = append(b, byte(len(m.Vec)))
	for _, e := range m.Vec {
		b = binary.BigEndian.AppendUint32(b, e.ID)
		b = binary.BigEndian.AppendUint32(b, e.WitStep)
	}
	return b
}

// Decode parses one datagram. Trailing bytes are an error: a gossip
// datagram is exactly one message.
func Decode(b []byte) (Msg, error) {
	if len(b) < headerLen {
		return Msg{}, fmt.Errorf("gossip: short datagram (%d bytes)", len(b))
	}
	if b[0] != Magic {
		return Msg{}, fmt.Errorf("gossip: bad magic 0x%02x", b[0])
	}
	t := MsgType(b[1])
	if t < Prop || t > Wit {
		return Msg{}, fmt.Errorf("gossip: unknown message type %d", b[1])
	}
	m := Msg{
		Type:   t,
		Sender: binary.BigEndian.Uint32(b[2:]),
		Step:   binary.BigEndian.Uint32(b[6:]),
	}
	nvec := int(b[10])
	if want := headerLen + 8*nvec; len(b) != want {
		return Msg{}, fmt.Errorf("gossip: datagram is %d bytes, want %d for %d vector entries", len(b), want, nvec)
	}
	if nvec > 0 {
		m.Vec = make([]VecEntry, nvec)
		for i := range m.Vec {
			off := headerLen + 8*i
			m.Vec[i] = VecEntry{
				ID:      binary.BigEndian.Uint32(b[off:]),
				WitStep: binary.BigEndian.Uint32(b[off+4:]),
			}
		}
	}
	return m, nil
}
