package fleet_test

import (
	"bytes"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/fleet"
	"ldlp/internal/netstack"
)

// pingApp: node 0 pings every peer once; peers pong back. Stops the
// fleet when all pongs are home.
type pingApp struct {
	socks   []*netstack.UDPSock
	want    int
	replies int
}

func (a *pingApp) Setup(n *fleet.Node) {
	s, err := n.Host().UDPSocket(7)
	if err != nil {
		panic(err)
	}
	a.socks[n.ID()] = s
}

func (a *pingApp) Start(n *fleet.Node) {
	if n.ID() != 0 {
		return
	}
	for _, p := range n.Peers() {
		a.socks[0].SendTo(fleet.IPOf(int(p)), 7, []byte("ping"))
	}
}

func (a *pingApp) Poll(n *fleet.Node, _ float64) {
	s := a.socks[n.ID()]
	for {
		dg, ok := s.Recv()
		if !ok {
			return
		}
		if string(dg.Data) == "ping" {
			s.SendTo(dg.Src, dg.SrcPort, []byte("pong"))
		} else if n.ID() == 0 {
			a.replies++
			if a.replies >= a.want {
				n.Fleet().Stop()
			}
		}
	}
}

func (a *pingApp) Timer(*fleet.Node, float64, int64) {}

func runPing(t *testing.T, cfg fleet.Config) (*fleet.Fleet, *pingApp, fleet.Stats) {
	t.Helper()
	app := &pingApp{socks: make([]*netstack.UDPSock, cfg.Topology.N()), want: len(cfg.Topology.Peers(0))}
	f, err := fleet.New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	s := f.Run()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return f, app, s
}

func TestFleetPingAcrossTopologies(t *testing.T) {
	for _, tc := range []struct {
		name string
		top  *fleet.Topology
	}{
		{"ring", fleet.Ring(16, 2)},
		{"torus", fleet.Torus(4, 4)},
		{"mesh", fleet.FullMesh(8)},
		{"smallworld", fleet.SmallWorld(32, 2, 0.2, 42)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, app, s := runPing(t, fleet.Config{
				Topology:   tc.top,
				Discipline: core.LDLP,
				Link:       fleet.LANLink(),
				Seed:       1,
			})
			if app.replies != app.want {
				t.Fatalf("got %d pongs, want %d", app.replies, app.want)
			}
			if s.Delivered == 0 || s.Events == 0 {
				t.Fatalf("no traffic simulated: %+v", s)
			}
		})
	}
}

// TestFleetBatchingUnderFanIn floods one node from every mesh peer at
// t=0: the LDLP fleet must batch the fan-in (the paper's §3 win) and
// finish the burst sooner than the conventional fleet.
func TestFleetBatchingUnderFanIn(t *testing.T) {
	finish := map[core.Discipline]float64{}
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		top := fleet.FullMesh(16)
		app := &floodApp{socks: make([]*netstack.UDPSock, top.N())}
		f, err := fleet.New(fleet.Config{Topology: top, Discipline: d, Link: fleet.LANLink(), Seed: 7}, app)
		if err != nil {
			t.Fatal(err)
		}
		s := f.Run()
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if d == core.LDLP && s.MaxBatch < 2 {
			t.Fatalf("LDLP fleet never batched: max batch %d", s.MaxBatch)
		}
		if d == core.Conventional && s.MaxBatch != 1 {
			t.Fatalf("conventional fleet batched: max batch %d", s.MaxBatch)
		}
		finish[d] = f.Now()
		f.Close()
	}
	if finish[core.LDLP] >= finish[core.Conventional] {
		t.Fatalf("LDLP fan-in no faster than conventional: %v vs %v",
			finish[core.LDLP], finish[core.Conventional])
	}
}

// floodApp: every node sends one datagram to node 0 at t=0.
type floodApp struct{ socks []*netstack.UDPSock }

func (a *floodApp) Setup(n *fleet.Node) {
	s, err := n.Host().UDPSocket(7)
	if err != nil {
		panic(err)
	}
	a.socks[n.ID()] = s
}

func (a *floodApp) Start(n *fleet.Node) {
	if n.ID() != 0 {
		a.socks[n.ID()].SendTo(fleet.IPOf(0), 7, []byte("x"))
	}
}

func (a *floodApp) Poll(n *fleet.Node, _ float64) {
	for {
		if _, ok := a.socks[n.ID()].Recv(); !ok {
			return
		}
	}
}

func (a *floodApp) Timer(*fleet.Node, float64, int64) {}

// TestFleetConservationUnderFaults runs the ping workload over every
// faults preset and checks the frame ledgers still balance (drops,
// duplicates, reorder holds, corruption all accounted).
func TestFleetConservationUnderFaults(t *testing.T) {
	for _, preset := range []string{"bernoulli", "duplication", "reorder", "delay", "corrupt", "all"} {
		t.Run(preset, func(t *testing.T) {
			top := fleet.FullMesh(8)
			app := &floodApp{socks: make([]*netstack.UDPSock, top.N())}
			f, err := fleet.New(fleet.Config{
				Topology:   top,
				Discipline: core.LDLP,
				Link:       fleet.FaultyLink(fleet.LANLink(), preset),
				Seed:       3,
				Horizon:    2,
			}, app)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			s := f.Run()
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if s.Faults.Frames == 0 {
				t.Fatal("injectors saw no frames")
			}
		})
	}
}

// TestFleetEventLogReplays runs the same seeded fleet twice and demands
// byte-identical event logs.
func TestFleetEventLogReplays(t *testing.T) {
	run := func() []byte {
		var log bytes.Buffer
		top := fleet.SmallWorld(24, 2, 0.3, 9)
		app := &pingApp{socks: make([]*netstack.UDPSock, top.N()), want: len(top.Peers(0))}
		f, err := fleet.New(fleet.Config{
			Topology:   top,
			Discipline: core.LDLP,
			Link:       fleet.FaultyLink(fleet.WANLink(), "bernoulli"),
			Seed:       11,
			Horizon:    5,
			EventLog:   &log,
		}, app)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		f.Run()
		return log.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty event log")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed event logs differ (%d vs %d bytes)", len(a), len(b))
	}
}

// TestMergedTelemetryCountsAllHosts: the fleet-wide merge must see
// every host's observations exactly once.
func TestMergedTelemetryCountsAllHosts(t *testing.T) {
	f, _, s := runPing(t, fleet.Config{
		Topology:   fleet.Ring(12, 2),
		Discipline: core.LDLP,
		Link:       fleet.LANLink(),
		Seed:       5,
	})
	merged := f.MergedTelemetry()
	if len(merged) == 0 {
		t.Fatal("no merged histograms")
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Name >= merged[i].Name {
			t.Fatalf("merged histograms not sorted: %q >= %q", merged[i-1].Name, merged[i].Name)
		}
	}
	var delivery, found = int64(0), false
	for _, e := range merged {
		if e.Name == "fleet-delivery-ns" {
			delivery, found = e.Hist.Count, true
		}
	}
	if !found {
		t.Fatal("fleet-delivery-ns missing from merged telemetry")
	}
	if delivery != s.Delivered {
		t.Fatalf("delivery histogram count %d != delivered frames %d", delivery, s.Delivered)
	}
}

func TestTopologyShapes(t *testing.T) {
	if got := fleet.Ring(10, 2).MinDegree(); got != 4 {
		t.Errorf("ring degree = %d, want 4", got)
	}
	if got := fleet.Torus(4, 5).MinDegree(); got != 4 {
		t.Errorf("torus degree = %d, want 4", got)
	}
	if got := fleet.FullMesh(7).MinDegree(); got != 6 {
		t.Errorf("mesh degree = %d, want 6", got)
	}

	// Small-world rewiring must be deterministic per seed and keep the
	// graph symmetric.
	a, b := fleet.SmallWorld(64, 3, 0.25, 17), fleet.SmallWorld(64, 3, 0.25, 17)
	for i := 0; i < a.N(); i++ {
		pa, pb := a.Peers(i), b.Peers(i)
		if len(pa) != len(pb) {
			t.Fatalf("node %d: degree differs across same-seed builds", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("node %d: peers differ across same-seed builds", i)
			}
		}
		for _, p := range pa {
			back := false
			for _, q := range a.Peers(int(p)) {
				if q == int32(i) {
					back = true
				}
			}
			if !back {
				t.Fatalf("edge %d->%d not symmetric", i, p)
			}
		}
	}
}
