package fleet

import (
	"fmt"

	"ldlp/internal/faults"
	"ldlp/internal/mbuf"
)

// LinkConfig models one directed link of the peer graph: propagation
// delay (fixed + jittered + distance-weighted), serialization at a
// finite bandwidth, and an optional per-link fault config. The zero
// value is an ideal link (instant, lossless).
type LinkConfig struct {
	// Latency is the fixed one-way propagation delay in seconds.
	Latency float64
	// Jitter adds a uniform [0, Jitter) seconds per frame, drawn from a
	// per-link splitmix64 stream (deterministic per fleet seed).
	Jitter float64
	// DistanceWeight adds seconds per unit of topology coordinate
	// distance between the endpoints — far corners of the unit square
	// are slower than neighbours.
	DistanceWeight float64
	// Bandwidth in bits/second; frames serialize FIFO at this rate
	// before propagation. 0 means infinite (no serialization delay).
	Bandwidth float64
	// Faults, when non-nil, runs every frame on this link through a
	// seeded faults.Injector (loss, bursts, duplication, reordering,
	// extra delay, bit corruption, partitions).
	Faults *faults.Config
	// FaultSeed seeds the link's injector; 0 derives a stable seed from
	// the fleet seed and the (src, dst) pair.
	FaultSeed int64
}

// LANLink is a datacenter-flavoured preset: 50 µs propagation at
// 1 Gbit/s.
func LANLink() LinkConfig {
	return LinkConfig{Latency: 50e-6, Bandwidth: 1e9}
}

// WANLink is a wide-area preset: 10 ms propagation, 2 ms jitter,
// 100 Mbit/s.
func WANLink() LinkConfig {
	return LinkConfig{Latency: 10e-3, Jitter: 2e-3, Bandwidth: 100e6}
}

// GeoLink weights latency by topology distance: 1 ms floor plus 40 ms
// across the full unit square (roughly a continent) at 622 Mbit/s.
func GeoLink() LinkConfig {
	return LinkConfig{Latency: 1e-3, DistanceWeight: 40e-3, Bandwidth: 622e6}
}

// FaultyLink overlays a named faults preset (see faults.PresetNames) on
// a base link. Panics on an unknown preset name, mirroring faults.New's
// fail-fast contract.
func FaultyLink(base LinkConfig, preset string) LinkConfig {
	cfg, ok := faults.Presets()[preset]
	if !ok {
		panic(fmt.Sprintf("fleet: unknown faults preset %q", preset))
	}
	base.Faults = &cfg
	return base
}

// prng is a splitmix64 stream — one per link for jitter draws, so a
// link's jitter sequence depends only on the fleet seed and the link
// identity, never on global state or other links' traffic.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (p *prng) float64() float64 { return float64(p.next()>>11) / (1 << 53) }

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// heldReorder is a frame parked by a reorder verdict: it is released
// after span later frames on the same link have overtaken it.
type heldReorder struct {
	m      *mbuf.Mbuf
	sentAt float64
	span   int
}

// linkState is the mutable per-directed-link runtime: the resolved
// config, the lazily created fault injector (a seeded rand.Rand is
// ~5 KB; a 1000-node mesh has a million potential links, so injectors
// materialize only for links that carry traffic — lazily is still
// deterministic because the event order that first touches a link is),
// the serialization horizon, and the reorder holdback queue.
type linkState struct {
	src, dst  int32
	cfg       LinkConfig
	dist      float64
	inj       *faults.Injector
	jit       prng
	busyUntil float64
	held      []heldReorder
}

func (f *Fleet) link(src, dst int32) *linkState {
	key := uint64(src)<<32 | uint64(uint32(dst))
	if ls, ok := f.links[key]; ok {
		return ls
	}
	cfg := f.cfg.Link
	if f.cfg.LinkFor != nil {
		cfg = f.cfg.LinkFor(int(src), int(dst))
	}
	ls := &linkState{
		src:  src,
		dst:  dst,
		cfg:  cfg,
		dist: f.cfg.Topology.Dist(int(src), int(dst)),
		jit:  prng{state: uint64(f.cfg.Seed)*0x100000001b3 ^ key},
	}
	if cfg.Faults != nil {
		seed := cfg.FaultSeed
		if seed == 0 {
			seed = f.cfg.Seed*1_000_003 + int64(src)*1_000_000 + int64(dst) + 1
		}
		ls.inj = faults.New(*cfg.Faults, seed)
	}
	f.links[key] = ls
	f.linkList = append(f.linkList, ls)
	return ls
}
