// Package fleet is a topology-aware, event-driven network simulator
// driving thousands of netstack hosts from one global schedule.
//
// Each node owns a full netstack.Net chassis (so its clock, telemetry
// and mbuf accounting stay per-node) whose egress is diverted to the
// fleet by Net.SetCarrier. The fleet routes every transmitted frame
// over the directed link (src, dst): serialization at the link
// bandwidth, propagation (fixed + jittered + distance-weighted), and an
// optional per-link faults.Injector, then schedules an arrival event.
// Arrivals queue in the destination's inbox until its simulated CPU is
// free; a process event then takes a service batch — one frame under
// the conventional discipline, up to BatchLimit under LDLP — charges
// the analytic service-time model derived from the paper's machine
// (sim.Config.AnalyticCosts), injects the batch through the host's real
// receive path, and polls the application. The LDLP-vs-conventional
// comparison at fleet scale therefore reflects both the stack's actual
// behaviour (checksums, sockets, drops) and the paper's cache economics.
//
// Everything is deterministic per Config.Seed: the event heap breaks
// time ties by schedule order, per-link jitter and fault streams are
// seeded from (seed, src, dst), and no code path consults wall time,
// global rand, or map iteration order. Two runs with the same config
// produce byte-identical event logs (Config.EventLog) — the replay test
// and ldlpvet's determinism analyzer both enforce this.
package fleet

import (
	"fmt"
	"io"
	"sort"

	"ldlp/internal/core"
	"ldlp/internal/faults"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
	"ldlp/internal/sim"
	"ldlp/internal/telemetry"
)

// CostModel is the per-event CPU charge, in seconds. See
// sim.Config.AnalyticCosts for the derivation from the paper's machine.
type CostModel struct {
	// PerMessage is the conventional call-through cost per message:
	// every layer's code misses, every message.
	PerMessage float64
	// PerMessageBatched is the warm per-message cost inside an LDLP
	// batch (issue + queue handling, code resident).
	PerMessageBatched float64
	// PerBatch is the cold cost the first message of each LDLP batch
	// pays to repopulate the layer caches.
	PerBatch float64
	// PerByte is the data-loop cost, charged on every payload byte
	// under both disciplines.
	PerByte float64
}

// CostFromSim derives the analytic model from a cache-level sim config.
func CostFromSim(c sim.Config) CostModel {
	m, mb, b, by := c.AnalyticCosts()
	return CostModel{PerMessage: m, PerMessageBatched: mb, PerBatch: b, PerByte: by}
}

// DefaultCost is the paper's §4 machine (100 MHz, 8 KB caches, 5
// layers).
func DefaultCost() CostModel { return CostFromSim(sim.DefaultConfig(core.LDLP)) }

// service returns the CPU time for one batch of n frames totalling
// bytes payload bytes.
func (c CostModel) service(d core.Discipline, n, bytes int) float64 {
	data := float64(bytes) * c.PerByte
	if d == core.LDLP {
		return c.PerBatch + float64(n)*c.PerMessageBatched + data
	}
	return float64(n)*c.PerMessage + data
}

// Config parameterizes a fleet.
type Config struct {
	// Topology is the peer graph (required).
	Topology *Topology
	// Discipline selects every host's receive schedule.
	Discipline core.Discipline
	// BatchLimit caps LDLP service batches; 0 means the paper's
	// cache-fit 14.
	BatchLimit int
	// Link is the default link model; LinkFor, when non-nil, overrides
	// it per directed (src, dst) pair.
	Link    LinkConfig
	LinkFor func(src, dst int) LinkConfig
	// Cost is the service-time model; zero value means DefaultCost().
	Cost CostModel
	// Seed drives every random stream (link jitter, fault injectors).
	Seed int64
	// InboxLimit bounds frames queued awaiting a node's CPU
	// (drop-tail); 0 means 512.
	InboxLimit int
	// Horizon is the simulated-time cutoff in seconds; 0 means 120.
	Horizon float64
	// EventLog, when non-nil, receives one line per scheduler event —
	// the byte-comparable replay artifact.
	EventLog io.Writer
	// TelemetryRing sizes each host's flight-recorder rings. 0 means
	// 16: at fleet scale the merged histograms are the product; deep
	// per-host rings would be 1000x the memory for no figure.
	TelemetryRing int
}

func (c *Config) setDefaults() error {
	if c.Topology == nil || c.Topology.N() < 2 {
		return fmt.Errorf("fleet: need a topology with >= 2 nodes")
	}
	if c.Topology.N() >= 1<<24 {
		return fmt.Errorf("fleet: %d nodes overflow the 10.x.x.x address plan", c.Topology.N())
	}
	if c.BatchLimit == 0 {
		c.BatchLimit = 14
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCost()
	}
	if c.InboxLimit == 0 {
		c.InboxLimit = 512
	}
	if c.Horizon == 0 {
		c.Horizon = 120
	}
	if c.TelemetryRing == 0 {
		c.TelemetryRing = 16
	}
	return nil
}

// pending is one frame waiting for a node's CPU.
type pending struct {
	m      *mbuf.Mbuf
	sentAt float64
	bytes  int
}

// Node is one simulated machine: a netstack host on its own chassis,
// plus the scheduler-side CPU state.
type Node struct {
	id    int32
	ip    layers.IPAddr
	host  *netstack.Host
	net   *netstack.Net
	fleet *Fleet

	inbox     []pending
	busyUntil float64
	scheduled bool // a process event is in the heap
}

// ID returns the node index in [0, N).
func (n *Node) ID() int { return int(n.id) }

// IP returns the node's address (see IPOf).
func (n *Node) IP() layers.IPAddr { return n.ip }

// Host returns the node's protocol stack.
func (n *Node) Host() *netstack.Host { return n.host }

// Fleet returns the owning scheduler.
func (n *Node) Fleet() *Fleet { return n.fleet }

// Peers returns the node's adjacency in the fleet topology.
func (n *Node) Peers() []int32 { return n.fleet.cfg.Topology.Peers(int(n.id)) }

// After schedules an application timer for this node, delay seconds
// from the node's current clock, delivered via App.Timer with arg.
func (n *Node) After(delay float64, arg int64) {
	at := n.net.Now() + delay
	if at < n.fleet.now {
		at = n.fleet.now
	}
	n.fleet.schedule(event{at: at, kind: evTimer, node: n.id, arg: arg})
}

// IPOf maps a node index to its address: the index's low 24 bits spread
// big-endian under 10/8, matching netstack's MACFor scheme so frames
// route back to indices without any table.
func IPOf(i int) layers.IPAddr {
	return layers.IPAddr{10, byte(i >> 16), byte(i >> 8), byte(i)}
}

// nodeIndex inverts IPOf through MACFor; -1 for addresses outside the
// fleet plan.
func nodeIndex(mac layers.MACAddr) int {
	if mac[0] != 0x02 || mac[1] != 0x00 || mac[2] != 10 {
		return -1
	}
	return int(mac[3])<<16 | int(mac[4])<<8 | int(mac[5])
}

// App is the workload a fleet drives. All four hooks run on the
// scheduler goroutine, in deterministic order.
type App interface {
	// Setup runs once per node before the clock starts (open sockets,
	// init per-node state).
	Setup(n *Node)
	// Start runs once per node at time zero; initial transmissions made
	// here enter the schedule at t=0.
	Start(n *Node)
	// Poll runs after a node's service batch completes; drain the
	// node's sockets here. now is the batch completion time.
	Poll(n *Node, now float64)
	// Timer delivers an After callback.
	Timer(n *Node, now float64, arg int64)
}

// Stats aggregates scheduler-level accounting. Frame conservation must
// balance: every frame handed to the carrier (plus injected duplicates)
// is eventually delivered into a host, dropped by a counted cause, or
// freed at shutdown — CheckInvariants verifies it.
type Stats struct {
	Events      int64        // scheduler events popped
	Carried     int64        // frames handed to the carrier by hosts
	Delivered   int64        // frames injected into a destination host
	Duplicated  int64        // extra copies materialized by link faults
	Unrouted    int64        // frames to addresses outside the fleet (freed)
	InboxDrops  int64        // frames dropped at a full inbox (freed)
	HeldFlushed int64        // reorder-held frames freed at shutdown
	Abandoned   int64        // in-flight frames freed at stop/horizon
	Batches     int64        // process events that served >= 1 frame
	MaxBatch    int          // largest single service batch
	Faults      faults.Stats // merged across every link injector
}

// CheckConservation returns an error unless every carried frame is
// accounted for.
func (s Stats) CheckConservation() error {
	in := s.Carried + s.Duplicated
	out := s.Delivered + s.Unrouted + s.Faults.Dropped + s.InboxDrops + s.HeldFlushed + s.Abandoned
	if in != out {
		return fmt.Errorf("fleet: frame conservation violated: %d in (carried %d + dup %d) != %d out (delivered %d + unrouted %d + faultdrop %d + inboxdrop %d + heldflush %d + abandoned %d)",
			in, s.Carried, s.Duplicated, out, s.Delivered, s.Unrouted, s.Faults.Dropped, s.InboxDrops, s.HeldFlushed, s.Abandoned)
	}
	if s.Duplicated != s.Faults.Duplicated {
		return fmt.Errorf("fleet: duplicate ledger mismatch: scheduler %d vs injectors %d", s.Duplicated, s.Faults.Duplicated)
	}
	return nil
}

// Fleet is the scheduler: the global event heap, the per-link runtime
// states, and the nodes.
type Fleet struct {
	cfg   Config
	app   App
	nodes []*Node

	heap eventHeap
	seq  uint64
	now  float64

	links    map[uint64]*linkState
	linkList []*linkState // creation order; maps are never ranged

	tel      *telemetry.Domain
	delivery *telemetry.Hist // send-to-completion latency, ns
	batchLen *telemetry.Hist // service batch sizes

	stats   Stats
	started bool
	stopped bool
	ran     bool
}

// New builds a fleet over cfg's topology and calls app.Setup on every
// node.
func New(cfg Config, app App) (*Fleet, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg, app: app, links: make(map[uint64]*linkState)}
	f.tel = telemetry.NewDomain("fleet", func() int64 { return int64(f.now * 1e9) })
	f.delivery = f.tel.Hist("fleet-delivery-ns")
	f.batchLen = f.tel.Hist("fleet-batch")

	n := cfg.Topology.N()
	f.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		nd := &Node{id: int32(i), ip: IPOf(i), fleet: f}
		nd.net = netstack.NewNet()
		opts := netstack.DefaultOptions(cfg.Discipline)
		opts.BatchLimit = cfg.BatchLimit
		opts.TelemetryRing = cfg.TelemetryRing
		nd.host = nd.net.AddHost(fmt.Sprintf("n%d", i), nd.ip, opts)
		src := int32(i)
		nd.net.SetCarrier(func(dst layers.MACAddr, m *mbuf.Mbuf) { f.transmit(src, dst, m) })
		f.nodes[i] = nd
	}
	for _, nd := range f.nodes {
		app.Setup(nd)
	}
	return f, nil
}

// Node returns node i.
func (f *Fleet) Node(i int) *Node { return f.nodes[i] }

// N returns the node count.
func (f *Fleet) N() int { return len(f.nodes) }

// Now returns the scheduler clock (seconds).
func (f *Fleet) Now() float64 { return f.now }

// Stop ends the run after the current event; remaining in-flight frames
// are freed and counted as Abandoned.
func (f *Fleet) Stop() { f.stopped = true }

// Stats returns the accounting so far, with fault counters merged
// across every link injector.
func (f *Fleet) Stats() Stats {
	s := f.stats
	all := make([]faults.Stats, 0, len(f.linkList))
	for _, ls := range f.linkList {
		if ls.inj != nil {
			all = append(all, ls.inj.Stats())
		}
	}
	s.Faults = faults.MergeStats(all...)
	return s
}

func (f *Fleet) schedule(e event) {
	e.seq = f.seq
	f.seq++
	f.heap.push(e)
}

// transmit is the carrier: every frame any host sends lands here, at
// the sending node's clock.
func (f *Fleet) transmit(src int32, dst layers.MACAddr, m *mbuf.Mbuf) {
	f.stats.Carried++
	di := nodeIndex(dst)
	if di < 0 || di >= len(f.nodes) {
		f.stats.Unrouted++
		m.FreeChain()
		return
	}
	now := f.nodes[src].net.Now()
	ls := f.link(src, int32(di))
	f.launch(ls, m, now, false)
}

// launch runs one frame down a link: fault verdict, serialization,
// propagation, then an arrival event. dup marks an injected duplicate,
// which gets no second verdict (mirroring netstack's impaired flag).
func (f *Fleet) launch(ls *linkState, m *mbuf.Mbuf, now float64, dup bool) {
	bytes := m.PktLen()
	if ls.inj != nil && !dup {
		act := ls.inj.Frame(now, bytes*8)
		if act.Drop {
			m.FreeChain()
			f.releaseReorders(ls, now) // a dropped frame still overtakes held ones
			return
		}
		if act.Duplicate {
			// Copy taken before corruption, from the receiver's pool —
			// the same choice netstack.impairFrame makes.
			cp := f.nodes[ls.dst].host.FrameFromBytes(m.Contiguous())
			f.stats.Duplicated++
			f.launch(ls, cp, now, true)
		}
		if act.CorruptBit >= 0 {
			flipBit(m, act.CorruptBit)
		}
		if act.ReorderSpan > 0 {
			ls.held = append(ls.held, heldReorder{m: m, sentAt: now, span: act.ReorderSpan})
			return
		}
		now += act.Delay
	}
	arrive := f.propagate(ls, now, bytes)
	f.schedule(event{at: arrive, kind: evArrive, node: ls.dst, m: m, sentAt: now})
	f.releaseReorders(ls, arrive)
}

// propagate computes a frame's arrival time: FIFO serialization at the
// link bandwidth from the later of send time and the link's busy
// horizon, then fixed + distance-weighted + jittered propagation.
func (f *Fleet) propagate(ls *linkState, now float64, bytes int) float64 {
	start := now
	if ls.busyUntil > start {
		start = ls.busyUntil
	}
	if ls.cfg.Bandwidth > 0 {
		start += float64(bytes*8) / ls.cfg.Bandwidth
		ls.busyUntil = start
	}
	lat := ls.cfg.Latency + ls.cfg.DistanceWeight*ls.dist
	if ls.cfg.Jitter > 0 {
		lat += ls.jit.float64() * ls.cfg.Jitter
	}
	return start + lat
}

// releaseReorders ages the link's holdback queue by one overtaking
// frame and schedules arrivals for entries whose span expired, just
// behind the frame that released them.
func (f *Fleet) releaseReorders(ls *linkState, behind float64) {
	if len(ls.held) == 0 {
		return
	}
	kept := ls.held[:0]
	for _, h := range ls.held {
		h.span--
		if h.span > 0 {
			kept = append(kept, h)
			continue
		}
		f.schedule(event{at: behind + 1e-9, kind: evArrive, node: ls.dst, m: h.m, sentAt: h.sentAt})
	}
	ls.held = kept
}

// Run executes the schedule until it drains, Stop is called, or the
// horizon passes, then frees anything still in flight. Returns the
// final merged stats.
func (f *Fleet) Run() Stats {
	if f.ran {
		return f.Stats()
	}
	f.ran = true
	if !f.started {
		f.started = true
		for _, nd := range f.nodes {
			f.app.Start(nd)
			nd.host.Pump()
		}
	}
	for !f.stopped && f.heap.len() > 0 {
		e := f.heap.pop()
		if e.at > f.cfg.Horizon {
			f.abandon(e)
			continue
		}
		f.now = e.at
		f.stats.Events++
		f.logEvent(e)
		switch e.kind {
		case evArrive:
			f.onArrive(e)
		case evProcess:
			f.onProcess(e)
		case evTimer:
			nd := f.nodes[e.node]
			nd.net.AdvanceTo(f.now)
			f.app.Timer(nd, f.now, e.arg)
			nd.host.Pump()
		}
	}
	f.drain()
	return f.Stats()
}

func (f *Fleet) onArrive(e event) {
	nd := f.nodes[e.node]
	if len(nd.inbox) >= f.cfg.InboxLimit {
		f.stats.InboxDrops++
		e.m.FreeChain()
		return
	}
	nd.inbox = append(nd.inbox, pending{m: e.m, sentAt: e.sentAt, bytes: e.m.PktLen()})
	if !nd.scheduled {
		at := f.now
		if nd.busyUntil > at {
			at = nd.busyUntil
		}
		nd.scheduled = true
		f.schedule(event{at: at, kind: evProcess, node: nd.id})
	}
}

func (f *Fleet) onProcess(e event) {
	nd := f.nodes[e.node]
	nd.scheduled = false
	if len(nd.inbox) == 0 {
		return
	}
	k := 1
	if f.cfg.Discipline == core.LDLP {
		k = len(nd.inbox)
		if k > f.cfg.BatchLimit {
			k = f.cfg.BatchLimit
		}
	}
	batch := nd.inbox[:k]
	bytes := 0
	for _, p := range batch {
		bytes += p.bytes
	}
	done := f.now + f.cfg.Cost.service(f.cfg.Discipline, k, bytes)
	nd.busyUntil = done
	// Advance the node clock to batch completion before injecting:
	// socket reads, telemetry stamps and any transmissions triggered by
	// this batch all happen at completion time.
	nd.net.AdvanceTo(done)
	for _, p := range batch {
		nd.host.InjectFrame(p.m)
		f.stats.Delivered++
	}
	nd.host.Pump()
	f.app.Poll(nd, done)
	nd.host.Pump() // flush frames Poll queued (LDLP transmit batching)
	for _, p := range batch {
		f.delivery.Observe(int64((done - p.sentAt) * 1e9))
	}
	f.batchLen.Observe(int64(k))
	f.stats.Batches++
	if k > f.stats.MaxBatch {
		f.stats.MaxBatch = k
	}
	nd.inbox = append(nd.inbox[:0], nd.inbox[k:]...)
	if len(nd.inbox) > 0 {
		nd.scheduled = true
		f.schedule(event{at: done, kind: evProcess, node: nd.id})
	}
}

// abandon frees a frame riding an event discarded at stop/horizon.
func (f *Fleet) abandon(e event) {
	if e.m != nil {
		f.stats.Abandoned++
		e.m.FreeChain()
	}
}

// drain frees everything still in flight after the loop exits, so the
// mbuf ledger balances and conservation holds.
func (f *Fleet) drain() {
	for f.heap.len() > 0 {
		f.abandon(f.heap.pop())
	}
	for _, ls := range f.linkList {
		for _, h := range ls.held {
			f.stats.HeldFlushed++
			h.m.FreeChain()
		}
		ls.held = nil
	}
	for _, nd := range f.nodes {
		for _, p := range nd.inbox {
			f.stats.Abandoned++
			p.m.FreeChain()
		}
		nd.inbox = nil
	}
}

// Close releases every node's chassis (shard workers, queued frames).
func (f *Fleet) Close() {
	f.drain()
	for _, nd := range f.nodes {
		nd.net.Close()
	}
}

// CheckInvariants verifies the run's ledgers: frame conservation across
// carrier/faults/delivery, the duplicate cross-check, and that no node
// still claims a scheduled CPU event after the heap drained.
func (f *Fleet) CheckInvariants() error {
	if err := f.Stats().CheckConservation(); err != nil {
		return err
	}
	if f.ran {
		for _, nd := range f.nodes {
			if len(nd.inbox) != 0 {
				return fmt.Errorf("fleet: node %d inbox not drained after run", nd.id)
			}
		}
	}
	if f.now > f.cfg.Horizon {
		return fmt.Errorf("fleet: clock %v ran past horizon %v", f.now, f.cfg.Horizon)
	}
	return nil
}

// logEvent writes one line per popped event — the replay artifact two
// same-seed runs must produce byte-identically.
func (f *Fleet) logEvent(e event) {
	if f.cfg.EventLog == nil {
		return
	}
	switch e.kind {
	case evArrive:
		fmt.Fprintf(f.cfg.EventLog, "%d %.9f arrive n%d len=%d sent=%.9f\n", e.seq, e.at, e.node, e.m.PktLen(), e.sentAt)
	case evProcess:
		fmt.Fprintf(f.cfg.EventLog, "%d %.9f process n%d q=%d\n", e.seq, e.at, e.node, len(f.nodes[e.node].inbox))
	case evTimer:
		fmt.Fprintf(f.cfg.EventLog, "%d %.9f timer n%d arg=%d\n", e.seq, e.at, e.node, e.arg)
	}
}

// MergedTelemetry merges every host's histograms and the fleet's own
// into one fleet-wide snapshot, sorted by name — the PR 5 histograms
// are exactly mergeable, so per-host and fleet-wide views agree on
// every count.
func (f *Fleet) MergedTelemetry() []telemetry.HistEntry {
	idx := make(map[string]int)
	var out []telemetry.HistEntry
	add := func(e telemetry.HistEntry) {
		if i, ok := idx[e.Name]; ok {
			out[i].Hist.Merge(e.Hist)
			return
		}
		idx[e.Name] = len(out)
		out = append(out, e)
	}
	for _, e := range f.tel.Snapshot().Hists {
		add(e)
	}
	for _, nd := range f.nodes {
		for _, e := range nd.host.Telemetry().Snapshot().Hists {
			add(e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// flipBit flips one bit of the chain's packet data (the corruption
// injection; always caught by the Internet checksum downstream).
func flipBit(m *mbuf.Mbuf, bit int) {
	off := bit / 8
	for cur := m; cur != nil; cur = cur.Next() {
		if off < cur.Len() {
			cur.Bytes()[off] ^= 1 << (bit % 8)
			return
		}
		off -= cur.Len()
	}
}
