package fleet

import (
	"fmt"
	"math"
	"sort"
)

// Topology is an undirected peer graph plus unit-square coordinates for
// every node. The graph defines who gossips with whom; the coordinates
// feed distance-weighted link latency (LinkConfig.DistanceWeight). All
// builders produce sorted adjacency lists, so iteration order — and
// therefore every downstream send schedule — is deterministic.
type Topology struct {
	name   string
	peers  [][]int32
	coords [][2]float64
}

// N returns the node count.
func (t *Topology) N() int { return len(t.peers) }

// Name identifies the builder and its parameters (for figures and logs).
func (t *Topology) Name() string { return t.name }

// Peers returns node i's sorted adjacency list. Callers must not
// mutate it.
func (t *Topology) Peers(i int) []int32 { return t.peers[i] }

// Coord returns node i's position in the unit square.
func (t *Topology) Coord(i int) (x, y float64) { return t.coords[i][0], t.coords[i][1] }

// Dist is the Euclidean distance between two nodes' coordinates, in
// unit-square units (diagonal = sqrt(2)).
func (t *Topology) Dist(i, j int) float64 {
	dx := t.coords[i][0] - t.coords[j][0]
	dy := t.coords[i][1] - t.coords[j][1]
	return math.Sqrt(dx*dx + dy*dy)
}

// MinDegree returns the smallest adjacency list size — the bound that
// decides whether a gossip threshold is satisfiable everywhere.
func (t *Topology) MinDegree() int {
	min := math.MaxInt
	for _, p := range t.peers {
		if len(p) < min {
			min = len(p)
		}
	}
	return min
}

// circleCoords places n nodes evenly on a circle inscribed in the unit
// square.
func circleCoords(n int) [][2]float64 {
	cs := make([][2]float64, n)
	for i := range cs {
		theta := 2 * math.Pi * float64(i) / float64(n)
		cs[i] = [2]float64{0.5 + 0.5*math.Cos(theta), 0.5 + 0.5*math.Sin(theta)}
	}
	return cs
}

func sortPeers(peers [][]int32) {
	for _, p := range peers {
		sort.Slice(p, func(a, b int) bool { return p[a] < p[b] })
	}
}

func hasPeer(p []int32, v int32) bool {
	for _, x := range p {
		if x == v {
			return true
		}
	}
	return false
}

// FullMesh connects every pair of nodes.
func FullMesh(n int) *Topology {
	if n < 2 {
		panic(fmt.Sprintf("fleet: full mesh needs >= 2 nodes, got %d", n))
	}
	peers := make([][]int32, n)
	for i := range peers {
		p := make([]int32, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				p = append(p, int32(j))
			}
		}
		peers[i] = p
	}
	return &Topology{name: fmt.Sprintf("mesh(%d)", n), peers: peers, coords: circleCoords(n)}
}

// Ring connects each node to its k nearest neighbours on each side
// (degree 2k), the regular lattice small-world rewiring starts from.
func Ring(n, k int) *Topology {
	if n < 3 || k < 1 || 2*k >= n {
		panic(fmt.Sprintf("fleet: invalid ring n=%d k=%d", n, k))
	}
	peers := make([][]int32, n)
	for i := range peers {
		p := make([]int32, 0, 2*k)
		for d := 1; d <= k; d++ {
			p = append(p, int32((i+d)%n), int32((i-d+n)%n))
		}
		peers[i] = p
	}
	sortPeers(peers)
	return &Topology{name: fmt.Sprintf("ring(%d,%d)", n, k), peers: peers, coords: circleCoords(n)}
}

// Torus is a rows x cols grid with wraparound, 4 neighbours per node.
// Coordinates are the grid positions scaled into the unit square, so
// distance-weighted links make far grid corners genuinely far.
func Torus(rows, cols int) *Topology {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("fleet: torus needs >= 3x3, got %dx%d", rows, cols))
	}
	n := rows * cols
	peers := make([][]int32, n)
	coords := make([][2]float64, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			peers[i] = []int32{
				int32(((r+1)%rows)*cols + c),
				int32(((r-1+rows)%rows)*cols + c),
				int32(r*cols + (c+1)%cols),
				int32(r*cols + (c-1+cols)%cols),
			}
			coords[i] = [2]float64{float64(c) / float64(cols-1), float64(r) / float64(rows-1)}
		}
	}
	sortPeers(peers)
	return &Topology{name: fmt.Sprintf("torus(%dx%d)", rows, cols), peers: peers, coords: coords}
}

// SmallWorld is a Watts–Strogatz graph: Ring(n, k) with each forward
// edge rewired to a uniform random target with probability beta. The
// rewiring draws from a private splitmix64 stream seeded by the caller,
// so the same (n, k, beta, seed) always yields the same graph.
func SmallWorld(n, k int, beta float64, seed int64) *Topology {
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("fleet: rewiring probability %v outside [0,1]", beta))
	}
	t := Ring(n, k)
	rng := prng{state: uint64(seed) ^ 0x5ca1ab1e}
	for i := 0; i < n; i++ {
		for d := 1; d <= k; d++ {
			if rng.float64() >= beta {
				continue
			}
			old := int32((i + d) % n)
			// Draw a fresh target that is not self, not already a peer.
			nt := int32(rng.intn(n))
			for nt == int32(i) || hasPeer(t.peers[i], nt) {
				nt = int32(rng.intn(n))
			}
			t.peers[i] = replacePeer(t.peers[i], old, nt)
			t.peers[old] = removePeer(t.peers[old], int32(i))
			t.peers[nt] = append(t.peers[nt], int32(i))
		}
	}
	sortPeers(t.peers)
	t.name = fmt.Sprintf("smallworld(%d,%d,%v)", n, k, beta)
	return t
}

func replacePeer(p []int32, old, nu int32) []int32 {
	for i, v := range p {
		if v == old {
			p[i] = nu
			return p
		}
	}
	return append(p, nu)
}

func removePeer(p []int32, v int32) []int32 {
	for i, x := range p {
		if x == v {
			return append(p[:i], p[i+1:]...)
		}
	}
	return p
}
