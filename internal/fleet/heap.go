package fleet

import "ldlp/internal/mbuf"

// Event kinds popped by the scheduler loop.
const (
	evArrive  = uint8(iota) // a frame reaches a node's inbox
	evProcess               // a node's CPU runs one service batch
	evTimer                 // an application timer fires
)

// event is one entry in the fleet's global schedule. Ties on time break
// by seq — the order events were scheduled — so runs with equal
// timestamps (common at t=0 and on zero-latency links) are still fully
// ordered and replay identically.
type event struct {
	at     float64
	seq    uint64
	kind   uint8
	node   int32
	arg    int64      // evTimer: application-defined
	m      *mbuf.Mbuf // evArrive: the frame in flight
	sentAt float64    // evArrive: transmit time, for delivery latency
}

func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a plain binary min-heap over (at, seq). Hand-rolled
// rather than container/heap: the scheduler pops one event per frame in
// flight, and the interface indirection shows up at fleet scale.
type eventHeap struct {
	es []event
}

func (h *eventHeap) len() int { return len(h.es) }

func (h *eventHeap) push(e event) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.es[i].before(h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es[last] = event{} // drop the mbuf reference
	h.es = h.es[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h.es[l].before(h.es[min]) {
			min = l
		}
		if r < last && h.es[r].before(h.es[min]) {
			min = r
		}
		if min == i {
			break
		}
		h.es[i], h.es[min] = h.es[min], h.es[i]
		i = min
	}
	return top
}
