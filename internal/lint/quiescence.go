package lint

import (
	"go/ast"
)

// QuiescenceConfig parameterizes the quiescence analyzer.
type QuiescenceConfig struct {
	// Roots are qualified-name patterns of the rx-worker entry points
	// (the shard worker loop and the merger goroutine). Everything they
	// can reach statically runs, potentially, while packets are in
	// flight.
	Roots []string
	// DeclaredEdges adds caller -> callee edges for the calls the graph
	// cannot resolve: the engine invokes layer handlers and the merge
	// sink through function values wired once at setup, so the worker's
	// true closure includes every registered handler. Reachability must
	// overapproximate — list them all.
	DeclaredEdges map[string][]string
	// Required lists functions that MUST carry the //ldlp:quiescent tag
	// (regression guard): the pump's at-quiescence walks stay declared
	// even if someone deletes the directive.
	Required []string
}

// NewQuiescence builds the quiescence analyzer: functions whose doc
// comment carries //ldlp:quiescent declare that they run only while
// every shard worker is parked behind the pump's drain barrier —
// rebalancing, migration re-homing, timer ticks, the stats walks. The
// analyzer turns that comment into a checked invariant: a tagged
// function must be statically unreachable from the rx-worker roots
// (resolved call edges plus DeclaredEdges). A violation is reported at
// the tagged function's declaration with the full chain from the root
// that reaches it.
//
// This is the static half of the proof; the dynamic half is the drain
// barrier itself. Together they are what lets shardaffinity exempt
// quiescent-tagged functions from the hand-off whitelist.
func NewQuiescence(cfg QuiescenceConfig) *Analyzer {
	a := &Analyzer{
		Name: "quiescence",
		Doc:  "//ldlp:quiescent functions must be statically unreachable from the rx-worker roots",
	}
	var reached map[string]pathStep // memoized per Program
	var reachedFor *Program
	a.Run = func(pass *Pass) error {
		if pass.Prog != reachedFor {
			declared := pass.Prog.expandDeclared(cfg.DeclaredEdges)
			var roots []string
			for q := range pass.Prog.Funcs {
				if MatchQName(q, cfg.Roots) {
					roots = append(roots, q)
				}
			}
			reached = pass.Prog.reachFrom(roots, declared)
			reachedFor = pass.Prog
		}
		found := map[string]bool{}
		declaredAny := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				declaredAny = true
				qname := FuncQName(pass.PkgPath, fd)
				tagged := HasDirective(fd.Doc, "//ldlp:quiescent")
				if pat := matchedPattern(qname, cfg.Required); pat != "" {
					found[pat] = true
					if !tagged {
						pass.Reportf(fd.Name.Pos(), "%s runs only at pump quiescence and must carry //ldlp:quiescent", qname)
					}
				}
				if !tagged {
					continue
				}
				if _, hit := reached[qname]; hit {
					chain := chainTo(reached, qname)
					pass.ReportChain(fd.Name.Pos(), chain,
						"//ldlp:quiescent function %s is statically reachable from rx-worker root %s (chain: %s); quiescent code must not be callable while workers run",
						shortQName(qname), shortQName(chain[0]), formatChain(chain))
				}
			}
		}
		if declaredAny {
			for _, req := range cfg.Required {
				if !found[req] && qnamePkg(req) == pass.PkgPath {
					pass.Reportf(pass.Files[0].Name.Pos(),
						"quiescent function %s is required by the lint config but no longer declared (regression guard)", req)
				}
			}
		}
		return nil
	}
	return a
}
