// Package lint is the repo's custom static-analysis suite: six
// analyzers (mbufown, hotpathalloc, atomiccounter, lockorder,
// shardaffinity, determinism) that mechanically enforce the hot-path
// invariants the soak suites otherwise catch only at runtime — balanced
// mbuf ownership, the zero-allocation receive path, atomics-only
// counter access, the declared lock order, per-connection shard
// ownership of transport state, and per-seed replay determinism.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Reportf, testdata fixtures with `// want` expectations) but is built
// entirely on the standard library: packages are type-checked against
// compiler export data produced by `go list -export` (load.go), so the
// module keeps its stdlib-only dependency story even for tooling. If
// x/tools ever becomes available, each analyzer's Run is shaped to port
// to a vet-style multichecker mechanically.
//
// Findings are suppressed one statement at a time with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above. The reason is mandatory: a
// bare ignore is itself reported (by the pseudo-analyzer
// "lintignore"), so every suppression in the tree documents why the
// invariant does not apply.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, run once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description shown by `ldlpvet -list`.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, plus the diagnostic sink and the whole-program view.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	TypesInfo *types.Info
	// Prog is the module-wide call graph and summary store, built once
	// per Run over every loaded package. Interprocedural analyzers
	// traverse it; intraprocedural ones may ignore it.
	Prog *Program

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
// Chain, when set, is the interprocedural call path (qualified names,
// root first) that connects the reported position to the underlying
// fact.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Chain    []string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChain records a finding at pos carrying an interprocedural call
// chain (qualified names, root first).
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    append([]string(nil), chain...),
	})
}

// IsTestFile reports whether the file holding pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ignoreRe matches a lint suppression. Group 1 is the analyzer name,
// group 2 the (mandatory) reason.
var ignoreRe = regexp.MustCompile(`^//lint:ignore(?:\s+(\S+))?(?:\s+(\S.*))?$`)

// ignoreSites maps "filename:line" to the analyzer names suppressed at
// that line.
type ignoreSites map[string]map[string]bool

// collectIgnores scans a file's comments for //lint:ignore directives,
// recording well-formed ones in sites and reporting malformed ones
// (missing analyzer name or empty reason) as diagnostics.
func collectIgnores(fset *token.FileSet, files []*ast.File, sites ignoreSites, diags *[]Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil || m[1] == "" || strings.TrimSpace(m[2]) == "" {
					*diags = append(*diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lintignore",
						Message:  "malformed //lint:ignore: need an analyzer name and a non-empty reason",
					})
					continue
				}
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if sites[key] == nil {
					sites[key] = map[string]bool{}
				}
				sites[key][m[1]] = true
			}
		}
	}
}

// suppressed reports whether d is covered by an ignore directive on its
// own line or the line above.
func suppressed(d Diagnostic, sites ignoreSites) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := sites[fmt.Sprintf("%s:%d", d.Pos.Filename, line)]; names[d.Analyzer] {
			return true
		}
	}
	return false
}

// Run applies every analyzer to every package in order, filters
// findings through //lint:ignore directives, and returns the survivors
// sorted by position. Packages must be in dependency order (definers
// before users) so analyzers that accumulate cross-package facts — like
// atomiccounter's atomic-field registry — see definitions first.
//
// Before any analyzer runs, the whole-program call graph and summary
// store (Program) is built over every loaded package and handed to each
// Pass; the ignore directives are collected first so justified
// allocation sites drop out of the summaries.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	sites := ignoreSites{}
	for _, pkg := range pkgs {
		collectIgnores(fset, pkg.Files, sites, &diags)
	}
	prog := buildProgram(fset, pkgs, sites)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.Path,
				TypesInfo: pkg.Info,
				Prog:      prog,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, sites) {
			kept = append(kept, d)
		}
	}
	// Total order — filename, line, column, analyzer, message — so the
	// output is byte-stable run to run (golden tests and CI diffs rely
	// on it; map iteration anywhere upstream must not leak through).
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept, nil
}

// HasDirective reports whether a doc comment contains the given
// machine-readable directive line (e.g. "//ldlp:hotpath").
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// FuncQName names a declared function as "pkgpath.Name", or
// "pkgpath.Recv.Name" for methods (pointer and type parameters
// stripped).
func FuncQName(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.Ident:
			return pkgPath + "." + tt.Name + "." + fd.Name.Name
		default:
			return pkgPath + "." + fd.Name.Name
		}
	}
}

// qnameOfFunc names a resolved function object the same way FuncQName
// names its declaration.
func qnameOfFunc(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Origin().Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// CalleeQName resolves a call's target to its qualified name. It
// returns ok=false for builtins, calls through plain function values,
// and unresolvable callees.
func CalleeQName(info *types.Info, call *ast.CallExpr) (string, bool) {
	fun := ast.Unparen(call.Fun)
	for {
		switch f := fun.(type) {
		case *ast.IndexExpr:
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	return qnameOfFunc(fn), true
}

// MatchQName reports whether qname matches any pattern. A pattern
// matches if it equals the qname or is a suffix beginning at a package
// path boundary ("mbuf.PoolShard.Get" matches
// "ldlp/internal/mbuf.PoolShard.Get").
func MatchQName(qname string, patterns []string) bool {
	return matchedPattern(qname, patterns) != ""
}

// matchedPattern returns the first pattern matching qname, or "".
func matchedPattern(qname string, patterns []string) string {
	for _, pat := range patterns {
		if qname == pat {
			return pat
		}
		if strings.HasSuffix(qname, pat) && qname[len(qname)-len(pat)-1] == '/' {
			return pat
		}
	}
	return ""
}

// usesVar reports whether any identifier under n resolves to v.
func usesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if found {
			return false
		}
		if id, ok := nn.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

// isPanicCall reports whether call invokes the predeclared panic.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
