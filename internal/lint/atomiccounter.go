package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicCounterConfig parameterizes the atomiccounter analyzer.
type AtomicCounterConfig struct {
	// QuiescentReadTypes are qualified struct-type names (e.g.
	// "ldlp/internal/netstack.Counters") whose documented access
	// discipline allows PLAIN READS once the system is quiescent — all
	// shard workers drained — while writes must still be atomic.
	QuiescentReadTypes []string
}

// NewAtomicCounter builds the atomiccounter analyzer: any variable or
// struct field whose address is ever passed to sync/atomic (directly or
// through a thin wrapper like netstack's inc) is atomic forever — every
// other access must also go through sync/atomic, or the mixed plain
// access is a data race that -race only catches when the interleaving
// cooperates. The registry of atomic fields is accumulated across
// packages (definers are analyzed first), so a test in another package
// reading a counter plainly is still caught.
func NewAtomicCounter(cfg AtomicCounterConfig) *Analyzer {
	fields := map[string]bool{}   // qualified names of atomically-accessed fields/vars
	wrappers := map[string]bool{} // qualified names of single-purpose atomic wrapper funcs
	a := &Analyzer{
		Name: "atomiccounter",
		Doc:  "fields touched via sync/atomic must never be read or written plainly",
	}
	a.Run = func(pass *Pass) error {
		info := pass.TypesInfo

		// Sweep 1: find wrapper functions whose entire body is
		// sync/atomic calls (e.g. func inc(c *int64) { atomic.AddInt64(c, 1) }).
		// A call to one sanctions its pointer arguments exactly like a
		// direct atomic call.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil && isAtomicWrapper(info, fd) {
					wrappers[FuncQName(pass.PkgPath, fd)] = true
				}
			}
		}

		// Sweep 2: register fields reached through atomic (or wrapper)
		// calls, and remember those exact syntax nodes as sanctioned.
		sanctioned := map[ast.Node]bool{}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				qname, ok := CalleeQName(info, call)
				if !ok || (!strings.HasPrefix(qname, "sync/atomic.") && !wrappers[qname]) {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					target := ast.Unparen(ue.X)
					if fq, _ := atomicTargetQName(info, target); fq != "" {
						fields[fq] = true
						sanctioned[target] = true
					}
				}
				return true
			})
		}

		// Sweep 3: classify write contexts.
		writes := map[ast.Node]bool{}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						writes[ast.Unparen(lhs)] = true
					}
				case *ast.IncDecStmt:
					writes[ast.Unparen(x.X)] = true
				case *ast.UnaryExpr:
					if x.Op == token.AND {
						writes[ast.Unparen(x.X)] = true
					}
				}
				return true
			})
		}

		// Sweep 4: report unsanctioned plain accesses.
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var target ast.Node
				switch n.(type) {
				case *ast.SelectorExpr, *ast.Ident:
					target = n
				default:
					return true
				}
				fq, owner := atomicTargetQName(info, target)
				if fq == "" || !fields[fq] || sanctioned[target] {
					return true
				}
				if writes[target] {
					pass.Reportf(target.Pos(),
						"%s is updated via sync/atomic; this plain write (or address escape) races with concurrent atomic updates", fq)
					return true
				}
				if owner != "" && MatchQName(owner, cfg.QuiescentReadTypes) {
					return true // documented quiescent-read discipline
				}
				pass.Reportf(target.Pos(),
					"%s is updated via sync/atomic; read it atomically (or via its accessor) instead of plainly", fq)
				return true
			})
		}
		return nil
	}
	return a
}

// atomicTargetQName names the field or package-level variable a plain
// expression resolves to, plus the owning named type for fields.
// Returns "" for anything else (locals, methods, non-field selectors).
func atomicTargetQName(info *types.Info, n ast.Node) (qname, owner string) {
	switch x := n.(type) {
	case *ast.SelectorExpr:
		sel := info.Selections[x]
		if sel == nil || sel.Kind() != types.FieldVal {
			return "", ""
		}
		v, ok := sel.Obj().(*types.Var)
		if !ok {
			return "", ""
		}
		t := sel.Recv()
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return "", ""
		}
		owner = named.Obj().Pkg().Path() + "." + named.Obj().Name()
		return owner + "." + v.Name(), owner
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return "", ""
		}
		if v.Parent() != v.Pkg().Scope() {
			return "", "" // local variable
		}
		return v.Pkg().Path() + "." + v.Name(), ""
	}
	return "", ""
}

// isAtomicWrapper reports whether a function's body consists solely of
// sync/atomic calls (as statements or as returned expressions).
func isAtomicWrapper(info *types.Info, fd *ast.FuncDecl) bool {
	if len(fd.Body.List) == 0 {
		return false
	}
	isAtomicCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		qname, ok := CalleeQName(info, call)
		return ok && strings.HasPrefix(qname, "sync/atomic.")
	}
	for _, st := range fd.Body.List {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if !isAtomicCall(s.X) {
				return false
			}
		case *ast.ReturnStmt:
			if len(s.Results) == 0 {
				return false
			}
			for _, r := range s.Results {
				if !isAtomicCall(r) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}
