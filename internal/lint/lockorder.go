package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockClass declares one mutex the lockorder analyzer tracks.
type LockClass struct {
	// Path qualifies the mutex: "pkg.Type.field" for a struct field,
	// "pkg.var" for a package-level mutex (MatchQName patterns).
	Path string
	// Rank orders acquisition: a mutex may be acquired only while every
	// held mutex has a strictly lower rank. Equal ranks never nest.
	Rank int
}

// LockWrapper maps a helper function to the lock class it manipulates
// (e.g. netstack's Host.lockRx / Host.unlockRx pair).
type LockWrapper struct {
	Fn      string // qualified function name
	Class   string // the Path of the class it acquires or releases
	Release bool
}

// LockOrderConfig parameterizes the lockorder analyzer.
type LockOrderConfig struct {
	Classes  []LockClass
	Wrappers []LockWrapper
	// Sinks are qualified names of blocking pump/drain entry points that
	// must never run with any declared mutex held.
	Sinks []string
	// EmitTypes are qualified named function types (core.Emit) whose
	// invocation hands a message to the next layer; doing that with a
	// declared mutex held needs an explicit justification.
	EmitTypes []string
}

// NewLockOrder builds the lockorder analyzer: an intra-procedural
// simulation of the declared mutexes through each function body. It
// reports acquisitions that violate the global rank order (including
// re-acquiring a held class) and calls to sinks or Emit-typed values
// while any declared mutex is held. Function literals are simulated
// separately with an empty held-set: they run later, on their own
// goroutine or schedule.
func NewLockOrder(cfg LockOrderConfig) *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "declared mutexes acquire in rank order; no declared lock held across Emit/sink calls",
	}
	rank := map[string]int{}
	for _, c := range cfg.Classes {
		rank[c.Path] = c.Rank
	}
	a.Run = func(pass *Pass) error {
		lo := &lockOrder{pass: pass, cfg: cfg, rank: rank}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				lo.walkStmts(fd.Body.List, nil)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						lo.walkStmts(fl.Body.List, nil)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

type lockOrder struct {
	pass *Pass
	cfg  LockOrderConfig
	rank map[string]int
}

// classOfExpr resolves the receiver of a Lock/Unlock call to a declared
// class Path.
func (lo *lockOrder) classOfExpr(x ast.Expr) (string, bool) {
	qname, _ := atomicTargetQName(lo.pass.TypesInfo, ast.Unparen(x))
	if qname == "" {
		return "", false
	}
	for _, c := range lo.cfg.Classes {
		if MatchQName(qname, []string{c.Path}) {
			return c.Path, true
		}
	}
	return "", false
}

// lockCall recognizes m.Lock()/m.RLock()/m.TryLock()/m.Unlock()/... on
// a declared class. release=true for the Unlock forms.
func (lo *lockOrder) lockCall(call *ast.CallExpr) (class string, release, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
	case "Unlock", "RUnlock":
		release = true
	default:
		return "", false, false
	}
	class, ok = lo.classOfExpr(sel.X)
	return class, release, ok
}

// wrapperCall recognizes a configured lock-wrapper invocation.
func (lo *lockOrder) wrapperCall(call *ast.CallExpr) (class string, release, ok bool) {
	qname, resolved := CalleeQName(lo.pass.TypesInfo, call)
	if !resolved {
		return "", false, false
	}
	for _, w := range lo.cfg.Wrappers {
		if MatchQName(qname, []string{w.Fn}) {
			return w.Class, w.Release, true
		}
	}
	return "", false, false
}

// walkStmts simulates the held-lock set through a statement list and
// returns the set live at its end.
func (lo *lockOrder) walkStmts(stmts []ast.Stmt, held []string) []string {
	for _, st := range stmts {
		held = lo.walkStmt(st, held)
	}
	return held
}

func (lo *lockOrder) walkStmt(st ast.Stmt, held []string) []string {
	copyHeld := func() []string { return append([]string(nil), held...) }
	switch s := st.(type) {
	case *ast.ExprStmt:
		return lo.handleExpr(s.X, held)
	case *ast.BlockStmt:
		return lo.walkStmts(s.List, held)
	case *ast.DeferStmt:
		// Deferred unlocks run at return, so the lock stays held for the
		// rest of the body. Deferred sinks/emits still execute with
		// whatever is held at that point — check against the current set.
		if _, release, ok := lo.lockCall(s.Call); ok && release {
			return held
		}
		if _, release, ok := lo.wrapperCall(s.Call); ok && release {
			return held
		}
		lo.checkCalls(s.Call, held)
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = lo.walkStmt(s.Init, held)
		}
		bodyHeld := copyHeld()
		if cls, ok := lo.tryLockInCond(s.Cond); ok {
			lo.checkAcquire(s.Cond.Pos(), cls, bodyHeld)
			bodyHeld = append(bodyHeld, cls)
		}
		lo.walkStmts(s.Body.List, bodyHeld)
		if s.Else != nil {
			lo.walkStmt(s.Else, copyHeld())
		}
		return held
	case *ast.ForStmt:
		lo.walkStmts(s.Body.List, copyHeld())
		return held
	case *ast.RangeStmt:
		lo.checkCalls(s.X, held)
		lo.walkStmts(s.Body.List, copyHeld())
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		for _, cl := range body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				lo.walkStmts(cc.Body, copyHeld())
			}
		}
		return held
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				lo.walkStmts(cc.Body, copyHeld())
			}
		}
		return held
	case *ast.GoStmt:
		return held // the goroutine starts with its own empty held-set
	case *ast.LabeledStmt:
		return lo.walkStmt(s.Stmt, held)
	default:
		lo.checkCalls(st, held)
		return held
	}
}

// handleExpr interprets one expression statement: lock operations
// mutate the held set; anything else is checked for sink/emit calls.
func (lo *lockOrder) handleExpr(x ast.Expr, held []string) []string {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		lo.checkCalls(x, held)
		return held
	}
	cls, release, isLock := lo.lockCall(call)
	if !isLock {
		cls, release, isLock = lo.wrapperCall(call)
	}
	if isLock {
		if release {
			return removeClass(held, cls)
		}
		lo.checkAcquire(call.Pos(), cls, held)
		return append(held, cls)
	}
	lo.checkCalls(x, held)
	return held
}

// tryLockInCond detects `if m.TryLock() { ... }` so the branch body is
// simulated with the lock held.
func (lo *lockOrder) tryLockInCond(cond ast.Expr) (string, bool) {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	cls, release, isLock := lo.lockCall(call)
	if isLock && !release {
		return cls, true
	}
	return "", false
}

// checkAcquire reports a rank-order violation when acquiring cls with
// held locks of equal or higher rank.
func (lo *lockOrder) checkAcquire(pos token.Pos, cls string, held []string) {
	for _, h := range held {
		if lo.rank[h] >= lo.rank[cls] {
			lo.pass.Reportf(pos,
				"acquiring %s (rank %d) while holding %s (rank %d) violates the declared lock order",
				cls, lo.rank[cls], h, lo.rank[h])
		}
	}
}

// checkCalls scans an arbitrary subtree (skipping nested function
// literals) for sink and Emit-typed calls made while locks are held.
func (lo *lockOrder) checkCalls(n ast.Node, held []string) {
	if len(held) == 0 || n == nil {
		return
	}
	info := lo.pass.TypesInfo
	ast.Inspect(n, func(nn ast.Node) bool {
		if _, isLit := nn.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		if qname, resolved := CalleeQName(info, call); resolved && MatchQName(qname, lo.cfg.Sinks) {
			lo.pass.Reportf(call.Pos(), "%s may block draining shards; calling it while holding %s risks deadlock",
				qname, strings.Join(held, ", "))
		}
		if tname := namedFuncType(info, call.Fun); tname != "" && MatchQName(tname, lo.cfg.EmitTypes) {
			lo.pass.Reportf(call.Pos(), "emit hand-off (%s) invoked while holding %s — layers must not run under a host lock",
				tname, strings.Join(held, ", "))
		}
		return true
	})
}

// namedFuncType names the declared function type of a call target, if
// the callee is a value of a named func type (e.g. core.Emit).
func namedFuncType(info *types.Info, fun ast.Expr) string {
	t := info.TypeOf(ast.Unparen(fun))
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		if alias, isAlias := t.(*types.Alias); isAlias {
			named, ok = types.Unalias(alias).(*types.Named)
		}
		if !ok {
			return ""
		}
	}
	if _, isFunc := named.Underlying().(*types.Signature); !isFunc {
		return ""
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// removeClass drops the most recent occurrence of cls.
func removeClass(held []string, cls string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == cls {
			return append(append([]string(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}
