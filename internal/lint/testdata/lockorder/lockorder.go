// Fixture for the lockorder analyzer. The test declares
// host.mu=10 < globalMu=20 < pool.mu=30, drain as a sink, and emitFn as
// an Emit type.
package lockorder

import "sync"

type emitFn func(v int)

type host struct {
	mu   sync.Mutex
	emit emitFn
}

type pool struct{ mu sync.Mutex }

var globalMu sync.Mutex

func drain() {}

func bad(h *host, p *pool) {
	p.mu.Lock()
	h.mu.Lock() // want `violates the declared lock order`
	drain()     // want `risks deadlock`
	h.emit(1)   // want `emit hand-off`
	h.mu.Unlock()
	p.mu.Unlock()
}

func good(h *host, p *pool) {
	h.mu.Lock()
	globalMu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	globalMu.Unlock()
	h.mu.Unlock()
	drain()
	h.emit(2)
}

func reacquire(h *host) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.mu.Lock() // want `violates the declared lock order`
}

func tryBranch(h *host, p *pool) {
	if p.mu.TryLock() {
		h.mu.Lock() // want `violates the declared lock order`
		h.mu.Unlock()
		p.mu.Unlock()
	}
	h.mu.Lock() // the TryLock branch scope has ended: nothing held here
	h.mu.Unlock()
}

func lockHeldViaDefer(h *host) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.emit(3) // want `emit hand-off`
}

// A goroutine body is simulated with its own empty held-set: launching
// it under h.mu is fine, and its internal locking starts fresh.
func spawnsWorker(h *host, p *pool) {
	h.mu.Lock()
	go func() {
		p.mu.Lock()
		p.mu.Unlock()
		drain()
	}()
	h.mu.Unlock()
}

func ignored(h *host) {
	h.mu.Lock()
	//lint:ignore lockorder fixture: emit is a synchronous no-op in this configuration
	h.emit(4)
	h.mu.Unlock()
}
