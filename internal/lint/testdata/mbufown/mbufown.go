// Fixture for the mbufown analyzer. The test configures
// AllocFns = ["mbufown.alloc"]; the local Mbuf mimics the real pool's
// ownership contract.
package mbufown

type Mbuf struct{ next *Mbuf }

func (m *Mbuf) Free()               {}
func (m *Mbuf) Prepend(n int) *Mbuf { return m }
func transmit(m *Mbuf)              {}
func alloc() *Mbuf                  { return &Mbuf{} }

// freeQueue mimics the real pool's batched cross-shard return queue: a
// hand-off site that consumes ownership exactly like a direct Free.
type freeQueue struct{ batch []*Mbuf }

func (q *freeQueue) Free(m *Mbuf) { q.batch = append(q.batch, m) }

// The pre-fix pattern: an error path returns before the chain is freed.
func leakErrorPath(fail bool) {
	m := alloc()
	if fail {
		return // want `error path misses Free`
	}
	m.Free()
}

func leakReturnNil(drop bool) *Mbuf {
	m := alloc()
	if drop {
		return nil // want `error path misses Free`
	}
	return m
}

func leakBeforeAnyUse() int {
	m := alloc()
	return 0 // want `leaked by this return`
	m.Free() // unreachable; keeps the declared-and-not-used check quiet
	return 1
}

func leakToFunctionEnd() {
	m := alloc()
	_ = m
} // want `still owned when the function returns`

// Every consumption shape the tracker accepts.
func okFree() {
	m := alloc()
	m.Free()
}

func okHandOffCall() {
	m := alloc()
	transmit(m)
}

func okHandOffChannel(q chan *Mbuf) {
	m := alloc()
	q <- m
}

func okReturned() *Mbuf {
	m := alloc()
	return m
}

func okMethodChain() *Mbuf {
	m := alloc()
	mm := m.Prepend(4)
	return mm
}

func okDeferredFree() {
	m := alloc()
	defer m.Free()
}

// Parking a chain in a free queue is a hand-off: the queue owns it until
// its flush returns it to the allocating shard.
func okQueuedFree(q *freeQueue) {
	m := alloc()
	q.Free(m)
}

// ...but allocating and then forgetting the chain on a path that skips
// the queue is still a leak.
func leakPastQueue(q *freeQueue, skip bool) {
	m := alloc()
	if skip {
		return // want `error path misses Free`
	}
	q.Free(m)
}

// Conditional ownership is beyond the tracker: it must stay silent, not
// guess.
func okConditionalFree(fail bool) {
	m := alloc()
	if fail {
		m.Free()
		return
	}
	transmit(m)
}

// A justified suppression: no finding may survive.
func okIgnored(fail bool) {
	m := alloc()
	if fail {
		//lint:ignore mbufown fixture: ownership is transferred out of band here
		return
	}
	m.Free()
}
