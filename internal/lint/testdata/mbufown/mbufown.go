// Fixture for the mbufown analyzer. The test configures
// AllocFns = ["mbufown.alloc"] and MbufTypes = ["mbufown.Mbuf"]; the
// local Mbuf mimics the real pool's ownership contract, and the
// whole-program summaries must prove which helpers consume the chain
// and which only borrow it.
package mbufown

type Mbuf struct {
	next *Mbuf
	size int
}

// graveyard makes Free and transmit proven consumers: the chain is
// stored, so ownership leaves the caller for good.
var graveyard []*Mbuf

func (m *Mbuf) Free()  { graveyard = append(graveyard, m) }
func transmit(m *Mbuf) { graveyard = append(graveyard, m) }
func alloc() *Mbuf     { return &Mbuf{} }

// Prepend consumes its receiver and returns the (possibly re-rooted)
// owned chain, like the real Mbuf.Prepend.
func (m *Mbuf) Prepend(n int) *Mbuf {
	m.size += n
	return m
}

// headSize only reads the chain — the summary must classify the mbuf
// parameter as borrowed, so a call does not discharge ownership.
func headSize(m *Mbuf) int { return m.size }

// reader forwards the chain to inner, which only reads it: the borrow
// classification must hold transitively, and the leak diagnostics must
// print the forwarding path.
func reader(m *Mbuf) int { return inner(m) }

func inner(m *Mbuf) int { return m.size }

// forwardFree hands the chain to Free: consumption, transitively.
func forwardFree(m *Mbuf) { m.Free() }

// freeQueue mimics the real pool's batched cross-shard return queue: a
// hand-off site that consumes ownership exactly like a direct Free.
type freeQueue struct{ batch []*Mbuf }

func (q *freeQueue) Free(m *Mbuf) { q.batch = append(q.batch, m) }

// The pre-fix pattern: an error path returns before the chain is freed.
func leakErrorPath(fail bool) {
	m := alloc()
	if fail {
		return // want `error path misses Free`
	}
	m.Free()
}

func leakReturnNil(drop bool) *Mbuf {
	m := alloc()
	if drop {
		return nil // want `error path misses Free`
	}
	return m
}

func leakBeforeAnyUse() int {
	m := alloc()
	return 0 // want `leaked by this return`
	m.Free() // unreachable; keeps the declared-and-not-used check quiet
	return 1
}

func leakToFunctionEnd() {
	m := alloc()
	_ = m
} // want `still owned when the function returns`

// A call to a borrow-only helper does not count as a hand-off, and the
// diagnostic says why.
func leakBorrowEnd() {
	m := alloc()
	_ = headSize(m)
} // want `still owned when the function returns \(no Free or hand-off; mbufown.headSize only borrows the chain\)`

// The multi-hop case: reader forwards to inner, neither consumes, and
// the breadcrumb prints the interprocedural path.
func leakThroughReader() {
	m := alloc()
	n := reader(m)
	_ = n
	return // want `leaked by this return \(no Free or hand-off on this path; mbufown.reader -> mbufown.inner only borrows the chain\)`
}

// A consuming call to a returns-owned function re-roots the chain in
// the result; forgetting the new head is still a leak.
func leakAfterTransfer() {
	m := alloc()
	mm := m.Prepend(4)
	_ = mm
} // want `mbuf "mm" is still owned when the function returns`

// Every consumption shape the tracker accepts.
func okFree() {
	m := alloc()
	m.Free()
}

func okHandOffCall() {
	m := alloc()
	transmit(m)
}

// Borrow first, then free: the borrow must not end tracking early.
func okBorrowThenFree() {
	m := alloc()
	_ = headSize(m)
	m.Free()
}

// Transitive consumption through a forwarding helper.
func okForwardedFree() {
	m := alloc()
	forwardFree(m)
}

func okHandOffChannel(q chan *Mbuf) {
	m := alloc()
	q <- m
}

func okReturned() *Mbuf {
	m := alloc()
	return m
}

func okMethodChain() *Mbuf {
	m := alloc()
	mm := m.Prepend(4)
	return mm
}

func okDeferredFree() {
	m := alloc()
	defer m.Free()
}

// Parking a chain in a free queue is a hand-off: the queue owns it until
// its flush returns it to the allocating shard.
func okQueuedFree(q *freeQueue) {
	m := alloc()
	q.Free(m)
}

// ...but allocating and then forgetting the chain on a path that skips
// the queue is still a leak.
func leakPastQueue(q *freeQueue, skip bool) {
	m := alloc()
	if skip {
		return // want `error path misses Free`
	}
	q.Free(m)
}

// Conditional ownership is beyond the tracker: it must stay silent, not
// guess.
func okConditionalFree(fail bool) {
	m := alloc()
	if fail {
		m.Free()
		return
	}
	transmit(m)
}

// A justified suppression: no finding may survive.
func okIgnored(fail bool) {
	m := alloc()
	if fail {
		//lint:ignore mbufown fixture: ownership is transferred out of band here
		return
	}
	m.Free()
}
