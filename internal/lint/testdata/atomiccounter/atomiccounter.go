// Fixture for the atomiccounter analyzer. The test configures
// QuiescentReadTypes = ["atomiccounter.quiet"], so plain reads of quiet
// fields are sanctioned while plain writes stay forbidden.
package atomiccounter

import "sync/atomic"

type counters struct {
	frames int64
	drops  int64
}

// bump is a thin wrapper; calling it sanctions its argument exactly
// like a direct sync/atomic call.
func bump(c *int64) { atomic.AddInt64(c, 1) }

type quiet struct{ n int64 }

func (c *counters) record() {
	atomic.AddInt64(&c.frames, 1)
	bump(&c.drops)
}

func (c *counters) badWrite() {
	c.frames++ // want `plain write`
}

func (c *counters) badRead() int64 {
	return c.drops // want `read it atomically`
}

func (c *counters) okAtomicRead() int64 { return atomic.LoadInt64(&c.drops) }

func (q *quiet) inc() { atomic.AddInt64(&q.n, 1) }

// Total is a plain read of a quiescent-read type: allowed.
func (q *quiet) Total() int64 { return q.n }

// reset writes plainly: quiescent-read discipline covers reads only.
func (q *quiet) reset() {
	q.n = 0 // want `plain write`
}

func (c *counters) ignored() {
	//lint:ignore atomiccounter fixture: reset runs before any worker starts
	c.frames = 0
}
