// Fixture for the hotpathalloc analyzer. The test configures
// Required = ["hotpathalloc.mustStayTagged", "hotpathalloc.ghostFunction"];
// ghostFunction is deliberately absent, so the regression guard fires on
// the package clause below.
package hotpathalloc // want `ghostFunction is required by the lint config but no longer declared`

import "fmt"

type item struct{ v int }

func sink(v any) {}

//ldlp:hotpath
func hotComposites(n int) {
	p := &item{v: n} // want `composite literal escapes to the heap`
	_ = p
	s := make([]int, n) // want `allocates on the hot path`
	_ = s
	m := map[int]int{} // want `literal allocates on the hot path`
	_ = m
}

//ldlp:hotpath
func hotAppendAndFmt(q []item, n int) []item {
	q = append(q, item{v: n}) // want `append may grow its backing array`
	fmt.Println(n)            // want `fmt.Println on the hot path allocates`
	return q
}

//ldlp:hotpath
func hotBoxing(n int) {
	sink(n) // want `boxes int into an interface`
}

//ldlp:hotpath
func hotClosure(n int) func() int {
	f := func() int { return n } // want `allocates a closure`
	return f
}

//ldlp:hotpath
func hotStrings(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// The allocation-free idioms must stay silent: value composites,
// bounded append into a reused backing array, pointer arguments, and
// panic messages (a panicking path has already left the hot path).
//
//ldlp:hotpath
func hotClean(q []item, p *item, n int) []item {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	v := item{v: n}
	_ = v
	sink(p)
	keep := q[:0]
	for _, it := range q {
		if it.v > 0 {
			keep = append(keep, it)
		}
	}
	return keep
}

// Untagged functions may allocate freely.
func coldPath(n int) *item { return &item{v: n} }

// The regression guard: this function is in Required but lost its tag.
func mustStayTagged() {} // want `must carry //ldlp:hotpath`

// A justified suppression on a genuine cold path inside a tagged
// function.
//
//ldlp:hotpath
func hotWithColdMiss(cache *item) *item {
	if cache != nil {
		return cache
	}
	//lint:ignore hotpathalloc fixture: pool-miss cold path runs once per warmup
	return &item{v: 1}
}
