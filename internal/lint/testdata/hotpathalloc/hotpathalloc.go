// Fixture for the hotpathalloc analyzer. The test configures
// Required = ["hotpathalloc.mustStayTagged", "hotpathalloc.ghostFunction"],
// ColdPaths = ["hotpathalloc.declaredCold", "hotpathalloc.ghostCold"], and
// DeclaredEdges = {"hotpathalloc.engine": ["hotpathalloc.handlerAlloc"]};
// ghostFunction and ghostCold are deliberately absent, so both
// regression guards fire on the package clause below.
package hotpathalloc // want `ghostFunction is required by the lint config but no longer declared` `coldpath hotpathalloc.ghostCold is declared in the lint config but no function carries`

import "fmt"

type item struct{ v int }

func sink(v any) {}

//ldlp:hotpath
func hotComposites(n int) {
	p := &item{v: n} // want `composite literal escapes to the heap`
	_ = p
	s := make([]int, n) // want `allocates on the hot path`
	_ = s
	m := map[int]int{} // want `literal allocates on the hot path`
	_ = m
}

//ldlp:hotpath
func hotAppendAndFmt(q []item, n int) []item {
	q = append(q, item{v: n}) // want `append may grow its backing array`
	fmt.Println(n)            // want `fmt.Println on the hot path allocates`
	return q
}

//ldlp:hotpath
func hotBoxing(n int) {
	sink(n) // want `boxes int into an interface`
}

//ldlp:hotpath
func hotClosure(n int) func() int {
	f := func() int { return n } // want `allocates a closure`
	return f
}

//ldlp:hotpath
func hotStrings(a, b string) string {
	return a + b // want `string concatenation allocates`
}

// The allocation-free idioms must stay silent: value composites,
// bounded append into a reused backing array, pointer arguments, and
// panic messages (a panicking path has already left the hot path).
//
//ldlp:hotpath
func hotClean(q []item, p *item, n int) []item {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}
	v := item{v: n}
	_ = v
	sink(p)
	keep := q[:0]
	for _, it := range q {
		if it.v > 0 {
			keep = append(keep, it)
		}
	}
	return keep
}

// Untagged functions may allocate freely.
func coldPath(n int) *item { return &item{v: n} }

// The regression guard: this function is in Required but lost its tag.
func mustStayTagged() {} // want `must carry //ldlp:hotpath`

// A justified suppression on a genuine cold path inside a tagged
// function.
//
//ldlp:hotpath
func hotWithColdMiss(cache *item) *item {
	if cache != nil {
		return cache
	}
	//lint:ignore hotpathalloc fixture: pool-miss cold path runs once per warmup
	return &item{v: 1}
}

// --- Transitive closure cases ---

// midClean does not allocate itself; the leaf two hops down does, and
// the finding must land at the hot root's call site with the chain.
func midClean(n int) *item { return leafAlloc(n) }

func leafAlloc(n int) *item { return &item{v: n} }

//ldlp:hotpath
func hotTransitive(n int) *item {
	return midClean(n) // want `reaches an allocation in hotpathalloc.leafAlloc \(chain: hotpathalloc.hotTransitive -> hotpathalloc.midClean -> hotpathalloc.leafAlloc\)`
}

// declaredCold is tagged AND declared in the test config: the walk
// stops silently, making it a sanctioned escape hatch.
//
//ldlp:coldpath
func declaredCold(n int) *item { return &item{v: n} }

//ldlp:hotpath
func hotWithDeclaredCold(n int) *item {
	return declaredCold(n)
}

// undeclaredCold carries the tag but is NOT in ColdPaths: reaching it
// from a hot root is reported, with the chain.
//
//ldlp:coldpath
func undeclaredCold(n int) *item { return &item{v: n} }

//ldlp:hotpath
func hotWithUndeclaredCold(n int) *item {
	return undeclaredCold(n) // want `reaches //ldlp:coldpath function hotpathalloc.undeclaredCold that is not declared in the lint config`
}

// A function cannot be both hot and cold.
//
//ldlp:hotpath
//ldlp:coldpath
func confusedTags() {} // want `carries both //ldlp:hotpath and //ldlp:coldpath; pick one`

// engine invokes its handler through a function value wired at setup —
// statically unresolvable, so the test config declares the edge
// engine -> handlerAlloc. The finding lands on the declaration because
// there is no visible call site.
//
//ldlp:hotpath
func engine(h func(int)) { // want `reaches an allocation in hotpathalloc.handlerAlloc \(chain: hotpathalloc.engine -> hotpathalloc.handlerAlloc\)`
	h(1)
}

func handlerAlloc(n int) {
	s := make([]int, n)
	_ = s
}

// --- Generic receiver resolution ---

// ring is generic: the call below is an instantiation, and the edge
// must resolve to the origin method hotpathalloc.ring.push, not to the
// instantiated type.
type ring[T any] struct{ buf []T }

func (r *ring[T]) push(v T) {
	r.buf = append(r.buf, v)
}

//ldlp:hotpath
func hotGeneric(r *ring[int]) {
	r.push(1) // want `reaches an allocation in hotpathalloc.ring.push \(chain: hotpathalloc.hotGeneric -> hotpathalloc.ring.push\)`
}
