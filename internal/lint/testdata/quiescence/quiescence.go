// Fixture for the quiescence analyzer. The test configures
// Roots = ["quiescence.worker"],
// DeclaredEdges = {"quiescence.engine": ["quiescence.handler"]}, and
// Required = ["quiescence.tickRequired", "quiescence.ghostTick"];
// ghostTick is deliberately absent, so the regression guard fires on
// the package clause below.
package quiescence // want `quiescent function quiescence.ghostTick is required by the lint config but no longer declared`

var shared int

// worker is the rx-worker root: everything it reaches statically may
// run while packets are in flight.
func worker() {
	for i := 0; i < 4; i++ {
		engine()
		directHelper()
	}
}

// engine invokes its handler through a cached function value, invisible
// to the resolver; the test config declares the handler edge.
func engine() {}

// handler is reached only through the declared edge.
func handler() { helper() }

func helper() { reachableTick() }

func directHelper() { directTick() }

// reachableTick is tagged quiescent but the worker reaches it through
// the declared engine edge — the violation, reported with the chain.
//
//ldlp:quiescent
func reachableTick() { // want `statically reachable from rx-worker root quiescence.worker \(chain: quiescence.worker -> quiescence.engine -> quiescence.handler -> quiescence.helper -> quiescence.reachableTick\)`
	shared++
}

// directTick is reached through plain resolved calls.
//
//ldlp:quiescent
func directTick() { // want `statically reachable from rx-worker root quiescence.worker`
	shared = 0
}

// safeTick runs only between pumps: nothing the worker reaches calls
// it, so the tag holds.
//
//ldlp:quiescent
func safeTick() { shared = 0 }

// tickRequired is in Required but lost its tag.
func tickRequired() {} // want `runs only at pump quiescence and must carry //ldlp:quiescent`

// pump may call quiescent functions freely: reachability is judged from
// the worker roots alone.
func pump() {
	safeTick()
	tickRequired()
}
