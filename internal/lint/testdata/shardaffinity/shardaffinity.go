// Fixture for the shardaffinity analyzer. The test declares pcb and
// shard as owned types, rx/shard/pcb as shard context, and tick and
// host.dial as hand-off points — the same shape the netstack config
// gives the real transport path.
package shardaffinity

type pcb struct {
	state int
	owner *shard
}

func (p *pcb) retransmit() {}

type shard struct {
	pcbs map[int]*pcb
	segs int64
}

type rx struct{ ts *shard }

type host struct{ shards []*shard }

// Shard context: an rx method may touch its shard's state and the PCBs
// in it freely.
func (r *rx) input(p *pcb) {
	r.ts.segs++
	p.state = 1
	p.retransmit()
}

// Owned types are their own context: a pcb method touching itself and
// its owner shard is the normal case.
func (p *pcb) send() {
	p.state = 2
	p.owner.segs++
}

// A declared hand-off (the pump at quiescence) may walk every shard.
func tick(h *host) {
	for _, s := range h.shards {
		for _, p := range s.pcbs {
			p.retransmit()
		}
	}
}

// A declared hand-off method may plant a PCB on its shard.
func (h *host) dial(s *shard, p *pcb) {
	p.owner = s
	s.pcbs[0] = p
}

// An undeclared plain function reaching into owned state is the bug the
// analyzer exists for.
func rogueRead(p *pcb) int {
	return p.state // want `field shardaffinity.pcb.state is shard-owned state`
}

func rogueWrite(s *shard) {
	s.segs++ // want `field shardaffinity.shard.segs is shard-owned state`
}

func rogueCall(p *pcb) {
	p.retransmit() // want `method shardaffinity.pcb.retransmit runs on shard-owned state`
}

// An undeclared method on an unrelated type gets no pass either.
func (h *host) rogueWalk() {
	for _, s := range h.shards {
		_ = s.pcbs // want `field shardaffinity.shard.pcbs is shard-owned state`
	}
}

// Closures do not launder affinity: the access still runs off-shard.
func rogueClosure(p *pcb) func() int {
	return func() int {
		return p.state // want `field shardaffinity.pcb.state is shard-owned state`
	}
}

// A justified suppression survives, documented in place.
func declaredElsewhere(p *pcb) int {
	//lint:ignore shardaffinity fixture: this runs under an external barrier the config cannot see
	return p.state
}
