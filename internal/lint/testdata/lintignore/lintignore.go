// Fixture proving a reason-less //lint:ignore is itself reported AND
// fails to suppress the finding underneath it. The expectations live in
// the test code rather than want comments, because the directive
// occupies the line a comment would go on.
package lintignore

import "time"

func bare() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}
