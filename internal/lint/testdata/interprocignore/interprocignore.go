// Fixture for //lint:ignore interacting with the interprocedural
// hotpathalloc walk. Checked by TestInterprocIgnore with explicit
// assertions rather than want comments: the malformed-ignore diagnostic
// lands on its own directive line, where a want comment cannot sit.
//
// The semantics under test:
//   - an ignore at the allocation line INSIDE a callee removes the
//     allocation from that callee's summary, suppressing the finding
//     for every hot caller at once;
//   - an ignore at the CALL line inside one hot root suppresses that
//     root's finding only;
//   - a reason-less ignore suppresses nothing, anywhere.
package interprocignore

type item struct{ v int }

// calleeJustified carries a justified ignore at the allocation line:
// the allocation never enters the summary, so every hot caller stays
// clean.
func calleeJustified(n int) *item {
	//lint:ignore hotpathalloc fixture: amortized warm-up allocation
	return &item{v: n}
}

//ldlp:hotpath
func hotCallsJustified(n int) *item { return calleeJustified(n) }

// calleeBare allocates with no suppression anywhere in the callee.
func calleeBare(n int) *item { return &item{v: n} }

// hotRootIgnore vouches for the cold step at its own call site: only
// this root's finding is suppressed.
//
//ldlp:hotpath
func hotRootIgnore(n int) *item {
	//lint:ignore hotpathalloc fixture: this caller tolerates the cold step
	return calleeBare(n)
}

//ldlp:hotpath
func hotRootBare(n int) *item { return calleeBare(n) }

// calleeMalformed's ignore is reason-less: it suppresses nothing, so
// both the malformed directive and the transitive finding are reported.
func calleeMalformed(n int) *item {
	//lint:ignore hotpathalloc
	return &item{v: n}
}

//ldlp:hotpath
func hotRootMalformed(n int) *item { return calleeMalformed(n) }
