// Fleet-simulator-flavored cases: the idioms internal/fleet and
// internal/fleet/gossip must avoid (wall-clock event stamps, global
// rand jitter, map-ranged telemetry merges) and the seeded/sorted
// replacements they use instead.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

type fleetEvent struct {
	at   float64
	node int32
}

func badFleetEventStamp(node int32) fleetEvent {
	return fleetEvent{
		at:   float64(time.Now().UnixNano()) / 1e9, // want `reads the wall clock`
		node: node,
	}
}

func badLinkJitter(base float64) float64 {
	return base + rand.Float64()*2e-3 // want `process-global PRNG`
}

func badTelemetryMerge(perLink map[string]int64) []string {
	var names []string
	for name := range perLink { // want `map iteration order is nondeterministic`
		names = append(names, name)
	}
	return names
}

// The fleet's way: jitter from a splitmix64 stream seeded by the link
// identity — pure arithmetic, replays exactly.
func goodLinkJitter(seed uint64, base float64) float64 {
	seed += 0x9e3779b97f4a7c15
	z := seed
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return base + float64(z>>11)/(1<<53)*2e-3
}

// Merging by walking a deterministic slice (creation order) and sorting
// the result: allowed — the map is only ever indexed, never ranged.
func goodTelemetryMerge(order []string, perLink map[string]int64) []string {
	out := make([]string, 0, len(order))
	for _, name := range order {
		if _, ok := perLink[name]; ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
