// Telemetry-flavored determinism cases: flight-recorder timestamps in
// sim-driven runs must come from an injected clock on the simulated
// timeline, never the wall clock — a time.Now inside a record path
// would silently break seed-for-seed trace replay.
package determinism

import "time"

type fakeRing struct {
	ts   []int64
	kind []uint8
}

func (r *fakeRing) record(ts int64, kind uint8) {
	r.ts = append(r.ts, ts)
	r.kind = append(r.kind, kind)
}

// badEventStamp is the bug the analyzer exists to catch: stamping an
// event off the wall clock instead of the injected clock.
func badEventStamp(r *fakeRing, kind uint8) {
	r.record(time.Now().UnixNano(), kind) // want `reads the wall clock`
}

// badSpanDuration measures a layer span with real elapsed time.
func badSpanDuration(start time.Time) int64 {
	return int64(time.Since(start)) // want `reads the wall clock`
}

// goodInjectedClock threads a caller-supplied clock, the telemetry
// package's actual shape: deterministic when the caller is simulated.
func goodInjectedClock(r *fakeRing, clock func() int64, kind uint8) {
	r.record(clock(), kind)
}

// goodSimulatedStamp derives the timestamp from simulated quantities
// (batch start plus cycles burned), as the sim engine does.
func goodSimulatedStamp(r *fakeRing, batchStart, cycles, hz float64, kind uint8) {
	r.record(int64((batchStart+cycles/hz)*1e9), kind)
}

// goodOrderedExport walks histogram buckets by index — a fixed array
// order, not map iteration — so exports are byte-stable.
func goodOrderedExport(buckets [64]int64) []int64 {
	out := make([]int64, 0, len(buckets))
	for i := 0; i < len(buckets); i++ {
		out = append(out, buckets[i])
	}
	return out
}

// badSnapshotOrder exports named histograms by ranging a map: the JSON
// would shuffle between identical runs.
func badSnapshotOrder(hists map[string][]int64) [][]int64 {
	var out [][]int64
	for _, h := range hists { // want `map iteration order is nondeterministic`
		out = append(out, h)
	}
	return out
}
