// Fixture for the determinism analyzer. The test configures
// Packages = ["determinism"].
package determinism

import (
	"math/rand"
	"time"
)

func badClock() time.Time {
	return time.Now() // want `reads the wall clock`
}

func badGlobalRand() int {
	return rand.Intn(6) // want `process-global PRNG`
}

func badMapRange(m map[int]string) {
	for k := range m { // want `map iteration order is nondeterministic`
		_ = k
	}
}

// A locally seeded source replays per seed: allowed.
func goodSeeded(seed int64, weights []float64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return weights[rng.Intn(len(weights))]
}

// Simulated time is threaded as plain values: allowed.
func goodElapsed(now, start float64) float64 { return now - start }

func ignored() int64 {
	//lint:ignore determinism fixture: cold-start banner only, never replayed
	return time.Now().UnixNano()
}
