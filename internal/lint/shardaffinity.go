package lint

import (
	"go/ast"
	"go/types"
)

// ShardAffinityConfig parameterizes the shardaffinity analyzer.
type ShardAffinityConfig struct {
	// OwnedTypes are qualified type names (MatchQName patterns) whose
	// state is owned by one shard: their fields may be read or written,
	// and their methods invoked, only from shard context or a declared
	// hand-off.
	OwnedTypes []string
	// ShardContext are qualified type names whose methods constitute
	// shard context: they run either on the owning shard's worker or on
	// the pump while that shard is quiescent. An owned type is implicitly
	// its own context (its methods run wherever a caller already proved
	// affinity), so it normally appears in both lists.
	ShardContext []string
	// Handoffs are qualified function names declared as cross-shard
	// hand-off points: setup and the lock-or-atomic-mediated public API.
	// These may touch owned state from outside shard context. Functions
	// tagged //ldlp:quiescent need no entry here — the quiescence
	// analyzer proves them unreachable from the worker roots, which is a
	// stronger statement than a whitelist line.
	Handoffs []string
}

// NewShardAffinity builds the shardaffinity analyzer, the static half of
// the sharded transport path's ownership proof: every field access on —
// and method call to — a shard-owned type happens inside a shard-context
// method or one of the declared hand-off points, so no undeclared code
// path can reach a PCB, a transport shard, or reassembly state from the
// wrong goroutine. What stays dynamic is that the declared contexts
// really do run on the owning shard (the flow hash and the pump's
// drain barrier); the differential equivalence suite and -race carry
// that half.
//
// Test files are exempt: tests inspect shard state while the network is
// quiescent, which is exactly the condition the hand-off points rely on.
func NewShardAffinity(cfg ShardAffinityConfig) *Analyzer {
	a := &Analyzer{
		Name: "shardaffinity",
		Doc:  "shard-owned state is touched only from its shard context or a declared hand-off point",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
					continue
				}
				if recv := recvTypeQName(pass, fd); recv != "" && MatchQName(recv, cfg.ShardContext) {
					continue
				}
				if MatchQName(FuncQName(pass.PkgPath, fd), cfg.Handoffs) {
					continue
				}
				// //ldlp:quiescent functions touch owned state only while
				// the workers are parked; the quiescence analyzer proves
				// the tag, so no Handoffs entry is needed.
				if HasDirective(fd.Doc, "//ldlp:quiescent") {
					continue
				}
				checkAffinity(pass, cfg, fd)
			}
		}
		return nil
	}
	return a
}

// recvTypeQName names a method's receiver type as "pkgpath.Type", or ""
// for plain functions.
func recvTypeQName(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	return namedTypeQName(t)
}

// namedTypeQName resolves a (possibly pointer) type to "pkgpath.Name",
// or "" for unnamed types.
func namedTypeQName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if alias, isAlias := t.(*types.Alias); isAlias {
			named, ok = types.Unalias(alias).(*types.Named)
		}
		if !ok {
			return ""
		}
	}
	obj := named.Origin().Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// checkAffinity reports every selection that reaches into an owned type
// from a function that is neither shard context nor a hand-off.
// Function literals are checked too: a closure does not change which
// goroutine the access runs on at best, and at worst defers it to an
// arbitrary one.
func checkAffinity(pass *Pass, cfg ShardAffinityConfig, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := info.Selections[sel]
		if s == nil {
			return true
		}
		recv := namedTypeQName(s.Recv())
		if recv == "" || !MatchQName(recv, cfg.OwnedTypes) {
			return true
		}
		switch s.Kind() {
		case types.FieldVal:
			pass.Reportf(sel.Sel.Pos(),
				"field %s.%s is shard-owned state touched outside its shard context (declare this function as a hand-off point or move the access onto the shard)",
				recv, sel.Sel.Name)
		case types.MethodVal, types.MethodExpr:
			pass.Reportf(sel.Sel.Pos(),
				"method %s.%s runs on shard-owned state but is called outside its shard context (declare this function as a hand-off point or move the call onto the shard)",
				recv, sel.Sel.Name)
		}
		return false
	})
}
