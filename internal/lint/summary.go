package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Interprocedural mbuf ownership facts. For every declared function the
// store classifies each mbuf-typed parameter (receiver first, at
// position 0) as either
//
//   - consumes: ownership may leave the caller through this parameter —
//     the body frees it, stores it (field, global, slice, map, channel,
//     composite, closure capture), returns it, takes its address,
//     aliases its chain, or forwards it to a callee that consumes (or
//     one the module cannot see, which must be assumed to); or
//   - borrows: the body provably only inspects or mutates the chain in
//     place — every use, transitively through callees, keeps ownership
//     with the caller.
//
// Results are additionally classified returns-owned when a function
// hands a fresh or re-rooted chain back to its caller (a configured
// allocator, a wrapper around one, or Prepend-style return of a
// consumed parameter).
//
// Facts are computed bottom-up over the call graph's strongly connected
// components: callees before callers, iterating to fixpoint inside a
// cycle. The lattice is monotone — a parameter starts optimistic
// (borrows) and can only move to consumes — so the fixpoint is finite
// and order-independent.

// useKind classifies how a statement or expression uses a tracked mbuf
// variable.
type useKind int

const (
	useNone    useKind = iota // variable not involved
	useBorrow                 // inspected or mutated in place; ownership retained
	useConsume                // ownership leaves through this use
)

func (k useKind) max(o useKind) useKind {
	if o > k {
		return o
	}
	return k
}

// mbufFacts is the ownership summary of one function.
type mbufFacts struct {
	hasRecv bool
	// mbufParam marks which positions (receiver at 0 when hasRecv) are
	// mbuf-typed pointers.
	mbufParam []bool
	// consumes is the per-position verdict; false for an mbuf position
	// means proven borrow-only.
	consumes []bool
	// borrowees records, for borrow-only positions, the callees the
	// parameter is forwarded to — the breadcrumb leak diagnostics print
	// as the interprocedural path.
	borrowees [][]string
	// returnsOwned marks functions whose result carries ownership back
	// to the caller.
	returnsOwned bool
}

// paramVars returns the receiver (if any) and parameter variables of a
// declared function, in summary position order. Unnamed or blank
// positions yield nil — they cannot be used, so they are trivially
// borrow-only.
func paramVars(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					out = append(out, nil)
					continue
				}
				v, _ := info.Defs[name].(*types.Var)
				out = append(out, v)
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// isMbufPtr reports whether t is a pointer to one of the configured
// mbuf chain types.
func isMbufPtr(t types.Type, mbufTypes []string) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	q := namedTypeQName(ptr.Elem())
	return q != "" && MatchQName(q, mbufTypes)
}

// mbufSummaries computes (and caches on the Program) the ownership
// facts for every declared function.
func (p *Program) mbufSummaries(cfg MbufOwnConfig) map[string]*mbufFacts {
	if p.mbufFacts != nil {
		return p.mbufFacts
	}
	facts := map[string]*mbufFacts{}
	for q, pf := range p.Funcs {
		vars := paramVars(pf.Pkg.Info, pf.Decl)
		f := &mbufFacts{
			hasRecv:   pf.Decl.Recv != nil && len(pf.Decl.Recv.List) > 0,
			mbufParam: make([]bool, len(vars)),
			consumes:  make([]bool, len(vars)),
			borrowees: make([][]string, len(vars)),
		}
		for i, v := range vars {
			if v != nil && isMbufPtr(v.Type(), cfg.MbufTypes) {
				f.mbufParam[i] = true
			}
		}
		facts[q] = f
	}
	env := &ownEnv{cfg: cfg, facts: facts}
	for _, scc := range p.sccOrder() {
		for changed := true; changed; {
			changed = false
			for _, q := range scc {
				if mbufTransfer(p.Funcs[q], env) {
					changed = true
				}
			}
		}
	}
	p.mbufFacts = facts
	return facts
}

// mbufTransfer re-evaluates one function against the current facts and
// reports whether anything changed.
func mbufTransfer(pf *ProgFunc, env *ownEnv) bool {
	f := env.facts[pf.QName]
	vars := paramVars(pf.Pkg.Info, pf.Decl)
	changed := false
	for i, v := range vars {
		if v == nil || !f.mbufParam[i] || f.consumes[i] {
			continue
		}
		kind, borrowees := useOfVar(pf.Pkg.Info, pf.Decl.Body, v, env)
		if kind == useConsume {
			f.consumes[i] = true
			f.borrowees[i] = nil
			changed = true
		} else {
			f.borrowees[i] = borrowees
		}
	}
	if !f.returnsOwned && returnsOwnedChain(pf, env, vars) {
		f.returnsOwned = true
		changed = true
	}
	return changed
}

// returnsOwnedChain reports whether some return statement hands back an
// owned chain: a configured allocator call, a call to a returns-owned
// function, or a Prepend-style return of one of the function's own mbuf
// parameters.
func returnsOwnedChain(pf *ProgFunc, env *ownEnv, vars []*types.Var) bool {
	info := pf.Pkg.Info
	owns := false
	ast.Inspect(pf.Decl.Body, func(n ast.Node) bool {
		if owns {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			switch e := ast.Unparen(res).(type) {
			case *ast.Ident:
				for _, v := range vars {
					if v != nil && info.Uses[e] == v && isMbufPtr(v.Type(), env.cfg.MbufTypes) {
						owns = true
					}
				}
			case *ast.CallExpr:
				if q, ok := CalleeQName(info, e); ok {
					if MatchQName(q, env.cfg.AllocFns) {
						owns = true
					} else if cf := env.facts[q]; cf != nil && cf.returnsOwned {
						owns = true
					}
				}
			}
		}
		return true
	})
	return owns
}

// ownEnv bundles what the use classifier needs.
type ownEnv struct {
	cfg   MbufOwnConfig
	facts map[string]*mbufFacts
}

// identIs reports whether e is (modulo parens) an identifier resolving
// to v.
func identIs(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && (info.Uses[id] == v || info.Defs[id] == v)
}

// useOfVar classifies every use of v under node n, merging to the most
// severe kind, and collects the callees v is forwarded to as a borrow.
// It is the one classifier shared by the summary computation (v is a
// parameter, n the whole body) and the leak tracker (v is a tracked
// allocation, n one statement).
func useOfVar(info *types.Info, n ast.Node, v *types.Var, env *ownEnv) (useKind, []string) {
	if n == nil {
		return useNone, nil
	}
	kind := useNone
	var borrowees []string
	merge := func(k useKind, b []string) {
		kind = kind.max(k)
		borrowees = append(borrowees, b...)
	}
	recurse := func(children ...ast.Node) {
		for _, c := range children {
			if c == nil {
				continue
			}
			merge(useOfVar(info, c, v, env))
		}
	}

	switch x := n.(type) {
	case *ast.Ident:
		if info.Uses[x] == v {
			// A bare use in a context no rule above recognized: the value
			// itself flows somewhere we cannot follow.
			return useConsume, nil
		}
		return useNone, nil
	case *ast.ParenExpr:
		recurse(x.X)
	case *ast.SelectorExpr:
		if identIs(info, x.X, v) {
			if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
				if fv, ok := s.Obj().(*types.Var); ok && isMbufPtr(fv.Type(), env.cfg.MbufTypes) {
					return useConsume, nil // m.next: aliases the chain
				}
				return useBorrow, nil // plain field read
			}
			return useConsume, nil // method value escapes with its receiver
		}
		recurse(x.X)
	case *ast.BinaryExpr:
		// Comparisons only inspect; m == nil / m == other retain
		// ownership.
		isCmp := x.Op == token.EQL || x.Op == token.NEQ ||
			x.Op == token.LSS || x.Op == token.GTR || x.Op == token.LEQ || x.Op == token.GEQ
		for _, side := range []ast.Expr{x.X, x.Y} {
			if isCmp && identIs(info, side, v) {
				merge(useBorrow, nil)
			} else {
				recurse(side)
			}
		}
	case *ast.CallExpr:
		return callUseOfVar(info, x, v, env)
	case *ast.UnaryExpr:
		if x.Op == token.AND && usesVar(info, x.X, v) {
			return useConsume, nil
		}
		recurse(x.X)
	case *ast.StarExpr:
		recurse(x.X)
	case *ast.IndexExpr:
		recurse(x.X, x.Index)
	case *ast.IndexListExpr:
		recurse(x.X)
		for _, idx := range x.Indices {
			recurse(idx)
		}
	case *ast.SliceExpr:
		recurse(x.X, x.Low, x.High, x.Max)
	case *ast.KeyValueExpr:
		recurse(x.Key, x.Value)
	case *ast.CompositeLit:
		if usesVar(info, x, v) {
			return useConsume, nil // stored into a composite value
		}
	case *ast.FuncLit:
		if usesVar(info, x, v) {
			return useConsume, nil // captured; the closure may outlive us
		}
	case *ast.TypeAssertExpr:
		recurse(x.X)

	case *ast.AssignStmt:
		// `_ = m` keeps the typechecker quiet but moves nothing.
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name == "_" && identIs(info, x.Rhs[0], v) {
				return useNone, nil
			}
		}
		for _, lhs := range x.Lhs {
			if identIs(info, lhs, v) {
				continue // writing TO v is not a use of the chain
			}
			if base, ok := selectorBase(lhs); ok && identIs(info, base, v) {
				merge(useBorrow, nil) // m.off = 0, m.data[i] = b: in-place mutation
				continue
			}
			recurse(lhs)
		}
		for _, rhs := range x.Rhs {
			recurse(rhs)
		}
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			recurse(res)
		}
	case *ast.ExprStmt:
		recurse(x.X)
	case *ast.SendStmt:
		recurse(x.Chan, x.Value)
	case *ast.IncDecStmt:
		if base, ok := selectorBase(x.X); ok && identIs(info, base, v) {
			return useBorrow, nil // m.refs++ style in-place mutation
		}
		recurse(x.X)
	case *ast.IfStmt:
		recurse(x.Init, x.Cond, x.Body, x.Else)
	case *ast.ForStmt:
		recurse(x.Init, x.Cond, x.Post, x.Body)
	case *ast.RangeStmt:
		recurse(x.Key, x.Value, x.X, x.Body)
	case *ast.SwitchStmt:
		recurse(x.Init, x.Tag, x.Body)
	case *ast.TypeSwitchStmt:
		recurse(x.Init, x.Assign, x.Body)
	case *ast.SelectStmt:
		recurse(x.Body)
	case *ast.BlockStmt:
		for _, st := range x.List {
			recurse(st)
		}
	case *ast.CaseClause:
		for _, e := range x.List {
			recurse(e)
		}
		for _, st := range x.Body {
			recurse(st)
		}
	case *ast.CommClause:
		recurse(x.Comm)
		for _, st := range x.Body {
			recurse(st)
		}
	case *ast.LabeledStmt:
		recurse(x.Stmt)
	case *ast.DeferStmt:
		recurse(x.Call)
	case *ast.GoStmt:
		recurse(x.Call)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						recurse(val)
					}
				}
			}
		}
	default:
		if node, ok := n.(ast.Node); ok && usesVar(info, node, v) {
			return useConsume, nil // unmodeled construct touching v: assume the worst
		}
	}
	return kind, borrowees
}

// selectorBase unwraps selector/index chains to their root expression:
// m.data[i] -> m, m.off -> m.
func selectorBase(e ast.Expr) (ast.Expr, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x, true
		default:
			return nil, false
		}
	}
}

// callUseOfVar classifies v's role in one call: consulting the callee's
// summary when v is passed directly, recursing into compound arguments
// otherwise. Unknown callees (stdlib, function values) consume — the
// module cannot see their bodies, so ownership must be assumed gone,
// which preserves the tracker's old call-means-hand-off behavior
// exactly where no proof is available.
func callUseOfVar(info *types.Info, call *ast.CallExpr, v *types.Var, env *ownEnv) (useKind, []string) {
	kind := useNone
	var borrowees []string
	merge := func(k useKind, b []string) {
		if k > kind {
			kind = k
		}
		borrowees = append(borrowees, b...)
	}

	// Builtins: len/cap only look; append and the rest take the value.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				for _, arg := range call.Args {
					if identIs(info, arg, v) {
						merge(useBorrow, nil)
					} else {
						merge(useOfVar(info, arg, v, env))
					}
				}
			default:
				if usesVar(info, call, v) {
					return useConsume, nil
				}
			}
			return kind, borrowees
		}
	}
	// Conversions alias the value under a new type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if usesVar(info, call, v) {
			return useConsume, nil
		}
		return useNone, nil
	}

	qname, resolved := CalleeQName(info, call)
	var cf *mbufFacts
	if resolved {
		cf = env.facts[qname]
	}
	consultPos := func(pos int) {
		if cf == nil {
			merge(useConsume, nil) // no summary: assume hand-off
			return
		}
		if pos < len(cf.consumes) && cf.mbufParam[pos] && !cf.consumes[pos] {
			merge(useBorrow, []string{qname})
			return
		}
		merge(useConsume, nil)
	}

	shift := 0
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			// Receiver occupies summary position 0; explicit args shift.
			shift = 1
			if identIs(info, sel.X, v) {
				consultPos(0)
			} else {
				merge(useOfVar(info, sel.X, v, env))
			}
		}
	}
	for i, arg := range call.Args {
		if identIs(info, arg, v) {
			if call.Ellipsis.IsValid() || (cf != nil && i+shift >= len(cf.consumes)) {
				merge(useConsume, nil) // variadic tail: no per-position fact
				continue
			}
			consultPos(i + shift)
			continue
		}
		merge(useOfVar(info, arg, v, env))
	}
	// A call through a function value that mentions v anywhere else
	// (e.g. the callee expression itself) is beyond the summary store.
	if kind == useNone && usesVar(info, call, v) {
		return useConsume, nil
	}
	return kind, borrowees
}

// borrowLabel renders one borrow-only callee for a diagnostic,
// extending it with its own borrow forwarding so multi-hop paths read
// as "reader -> inner". Depth is capped: mutual borrow recursion would
// otherwise loop, and past a few hops the breadcrumb stops helping.
func borrowLabel(qname string, facts map[string]*mbufFacts) string {
	label := shortQName(qname)
	for depth := 0; depth < 4; depth++ {
		f := facts[qname]
		if f == nil {
			break
		}
		next := ""
		for _, bs := range f.borrowees {
			if len(bs) > 0 {
				next = bs[0]
				break
			}
		}
		if next == "" {
			break
		}
		label += " -> " + shortQName(next)
		qname = next
	}
	return label
}
