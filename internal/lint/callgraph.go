package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// This file is the whole-program half of the suite: a static call graph
// over every loaded package plus a per-function summary store, built
// once per Run and shared by the interprocedural analyzers
// (hotpathalloc's transitive closure check, mbufown's consume/borrow
// classification, quiescence's worker-reachability proof).
//
// Resolution rules:
//
//   - Direct calls and method calls resolve through the type checker
//     (CalleeQName), so receiver types — including promoted methods —
//     name the declaring type.
//   - Generic instantiations resolve to their origin declaration:
//     flowtable.Table[fourTuple, *tcpPCB].Lookup and the fixture's
//     table[int, string].lookup are both edges to the one generic
//     method body. One mechanism, covered by the generic fixture,
//     replaces the earlier per-name special-casing.
//   - Calls through plain function values (the engine's cached emit
//     closures, layer handler fields) are statically unresolvable; the
//     analyzers that need them declare those edges in config
//     (DeclaredEdges: caller pattern -> callee patterns), mirroring how
//     the engine wires handlers once at AddLayer.
//   - Function literals are attributed to their enclosing declared
//     function: wherever the closure actually runs, the enclosing
//     function is the only place the graph can anchor it, and for
//     reachability an over-approximation is the safe direction.

// CallEdge is one resolved call site: the callee's qualified name and
// the position of the call expression.
type CallEdge struct {
	Callee string
	Pos    token.Pos
}

// ProgFunc is one declared function body and its summary facts.
type ProgFunc struct {
	QName string
	Decl  *ast.FuncDecl
	Pkg   *Package
	// Edges lists resolved static calls in source order.
	Edges []CallEdge
	// Allocs are the allocation sources in this body under the
	// hotpathalloc rules (composites, make/new, unbounded append,
	// boxing, closures, fmt, string building), minus any suppressed at
	// their own line with //lint:ignore hotpathalloc <reason>. A
	// non-empty list means "allocates on some path".
	Allocs []allocFinding
	// Acquires lists the qualified names of mutexes this body acquires
	// (m.Lock/RLock/TryLock on a resolvable target).
	Acquires []string
	// Directive tags from the doc comment.
	HotPath, ColdPath, Quiescent bool
}

// Program is the whole-program view handed to every Pass.
type Program struct {
	Fset  *token.FileSet
	Funcs map[string]*ProgFunc

	// mbuf ownership facts, computed lazily by the mbufown analyzer
	// (they need its config) and cached here.
	mbufFacts map[string]*mbufFacts
}

// buildProgram constructs the call graph and per-function summaries.
// sites carries the well-formed //lint:ignore directives so justified
// allocation sites drop out of the summaries (see ProgFunc.Allocs).
func buildProgram(fset *token.FileSet, pkgs []*Package, sites ignoreSites) *Program {
	prog := &Program{Fset: fset, Funcs: map[string]*ProgFunc{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				pf := &ProgFunc{
					QName:     FuncQName(pkg.Path, fd),
					Decl:      fd,
					Pkg:       pkg,
					HotPath:   HasDirective(fd.Doc, "//ldlp:hotpath"),
					ColdPath:  HasDirective(fd.Doc, "//ldlp:coldpath"),
					Quiescent: HasDirective(fd.Doc, "//ldlp:quiescent"),
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if qname, ok := CalleeQName(pkg.Info, call); ok {
						pf.Edges = append(pf.Edges, CallEdge{Callee: qname, Pos: call.Pos()})
					}
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "Lock", "RLock", "TryLock", "TryRLock":
							if q, _ := atomicTargetQName(pkg.Info, ast.Unparen(sel.X)); q != "" {
								pf.Acquires = append(pf.Acquires, q)
							}
						}
					}
					return true
				})
				for _, fnd := range allocScan(pkg.Info, fd) {
					if !allocSuppressed(fset, fnd, sites) {
						pf.Allocs = append(pf.Allocs, fnd)
					}
				}
				prog.Funcs[pf.QName] = pf
			}
		}
	}
	return prog
}

// allocSuppressed reports whether an allocation summary entry is
// justified at its own line (or the line above) with
// //lint:ignore hotpathalloc <reason>. Interprocedural reports are
// positioned at the hot root, so this is how a cold allocation inside
// an untagged callee is blessed once, where it happens, for every hot
// path that reaches it.
func allocSuppressed(fset *token.FileSet, fnd allocFinding, sites ignoreSites) bool {
	return suppressed(Diagnostic{Pos: fset.Position(fnd.pos), Analyzer: "hotpathalloc"}, sites)
}

// expandDeclared resolves a DeclaredEdges config (caller pattern ->
// callee patterns) against the functions actually present, returning
// concrete qname -> qnames. Patterns use MatchQName suffix matching so
// fixtures and the real module share config shapes.
func (p *Program) expandDeclared(declared map[string][]string) map[string][]string {
	if len(declared) == 0 {
		return nil
	}
	// Index every known qname by its pattern-matchable suffixes once.
	out := map[string][]string{}
	for caller, calleePats := range declared {
		for qname := range p.Funcs {
			if !MatchQName(qname, []string{caller}) {
				continue
			}
			for _, pat := range calleePats {
				for cq := range p.Funcs {
					if MatchQName(cq, []string{pat}) {
						out[qname] = append(out[qname], cq)
					}
				}
			}
		}
	}
	for _, v := range out {
		sort.Strings(v)
	}
	return out
}

// pathStep is one hop of an interprocedural chain.
type pathStep struct {
	caller string
	edge   CallEdge
}

// reachFrom walks the graph breadth-first from the given roots
// (concrete qnames), following resolved edges plus declared ones, and
// returns for every reached function the edge that first reached it
// (parent pointers for chain reconstruction). Roots themselves map to a
// zero step.
func (p *Program) reachFrom(roots []string, declared map[string][]string) map[string]pathStep {
	reached := map[string]pathStep{}
	var queue []string
	for _, r := range roots {
		if _, ok := p.Funcs[r]; !ok {
			continue
		}
		if _, seen := reached[r]; seen {
			continue
		}
		reached[r] = pathStep{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		pf := p.Funcs[cur]
		if pf == nil {
			continue
		}
		edges := pf.Edges
		for _, extra := range declared[cur] {
			edges = append(edges, CallEdge{Callee: extra, Pos: pf.Decl.Pos()})
		}
		for _, e := range edges {
			if _, seen := reached[e.Callee]; seen {
				continue
			}
			if _, known := p.Funcs[e.Callee]; !known {
				continue
			}
			reached[e.Callee] = pathStep{caller: cur, edge: e}
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// chainTo reconstructs the call chain root -> ... -> target from
// reachFrom's parent pointers, as a list of qualified names.
func chainTo(reached map[string]pathStep, target string) []string {
	var rev []string
	for cur := target; cur != ""; {
		rev = append(rev, cur)
		step, ok := reached[cur]
		if !ok || step.caller == "" {
			break
		}
		cur = step.caller
	}
	chain := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		chain = append(chain, rev[i])
	}
	return chain
}

// shortQName strips the package path prefix for human-readable chains:
// "ldlp/internal/netstack.rxPath.tcpInput" -> "netstack.rxPath.tcpInput".
func shortQName(qname string) string {
	if i := strings.LastIndex(qname, "/"); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

// formatChain renders a call chain for a diagnostic message.
func formatChain(chain []string) string {
	short := make([]string, len(chain))
	for i, q := range chain {
		short[i] = shortQName(q)
	}
	return strings.Join(short, " -> ")
}

// sccOrder returns the functions grouped into strongly connected
// components in reverse topological order (callees before callers), so
// bottom-up summary computation sees a callee's facts before its
// callers — and iterates to fixpoint only within a cycle. Tarjan's
// algorithm, iterative to keep deep recursion off the Go stack.
func (p *Program) sccOrder() [][]string {
	// Deterministic node order keeps summary iteration stable.
	nodes := make([]string, 0, len(p.Funcs))
	for q := range p.Funcs {
		nodes = append(nodes, q)
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		ei   int
	}
	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		work := []frame{{node: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(work) > 0 {
			fr := &work[len(work)-1]
			pf := p.Funcs[fr.node]
			advanced := false
			for fr.ei < len(pf.Edges) {
				callee := pf.Edges[fr.ei].Callee
				fr.ei++
				if _, known := p.Funcs[callee]; !known {
					continue
				}
				if _, seen := index[callee]; !seen {
					index[callee] = next
					low[callee] = next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					work = append(work, frame{node: callee})
					advanced = true
					break
				}
				if onStack[callee] && low[fr.node] > index[callee] {
					low[fr.node] = index[callee]
				}
			}
			if advanced {
				continue
			}
			// Node finished: pop, propagate lowlink, maybe emit SCC.
			done := fr.node
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[parent] > low[done] {
					low[parent] = low[done]
				}
			}
			if low[done] == index[done] {
				var scc []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == done {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
