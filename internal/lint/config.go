package lint

// DefaultAnalyzers returns the five analyzers configured for this
// repository's invariants. The qualified names below are load-bearing:
// hotpathalloc.Required doubles as the regression guard for the
// BenchmarkHotPathInject zero-alloc path (renaming or untagging one of
// those functions fails `make lint`), and the lockorder classes declare
// the repo-wide acquisition order.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewMbufOwn(MbufOwnConfig{
			AllocFns: []string{
				"ldlp/internal/mbuf.Get",
				"ldlp/internal/mbuf.GetCluster",
				"ldlp/internal/mbuf.FromBytes",
				"ldlp/internal/mbuf.PoolShard.Get",
				"ldlp/internal/mbuf.PoolShard.GetCluster",
				"ldlp/internal/mbuf.PoolShard.FromBytes",
				"ldlp/internal/mbuf.PoolShard.get",
				"ldlp/internal/mbuf.Mbuf.alikeFor",
			},
		}),
		NewHotPathAlloc(HotPathAllocConfig{
			// The functions BenchmarkHotPathInject drives, per package:
			// the conventional and LDLP inject→decode→demux→recycle path.
			Required: []string{
				"ldlp/internal/netstack.Host.deliver",
				"ldlp/internal/netstack.Host.getPacket",
				"ldlp/internal/netstack.Host.putPacket",
				"ldlp/internal/netstack.rxPath.drop",
				"ldlp/internal/netstack.rxPath.reject",
				"ldlp/internal/netstack.rxPath.deviceInput",
				"ldlp/internal/netstack.rxPath.etherInput",
				"ldlp/internal/netstack.rxPath.ipInput",
				"ldlp/internal/netstack.rxPath.tcpInput",
				"ldlp/internal/netstack.rxPath.sockInput",
				"ldlp/internal/mbuf.PoolShard.get",
				"ldlp/internal/mbuf.PoolShard.FromBytes",
				"ldlp/internal/mbuf.Mbuf.Free",
				"ldlp/internal/mbuf.Mbuf.FreeChain",
				"ldlp/internal/mbuf.Mbuf.Prepend",
				"ldlp/internal/core.Stack.Inject",
				"ldlp/internal/core.Stack.callThrough",
				"ldlp/internal/core.Stack.process",
				"ldlp/internal/core.Stack.deliver",
				"ldlp/internal/core.Stack.enqueue",
				"ldlp/internal/core.Stack.runLayer",
				"ldlp/internal/core.Stack.highestPending",
				"ldlp/internal/core.fifo.push",
				"ldlp/internal/core.fifo.pop",
				"ldlp/internal/checksum.Accumulator.Add",
				"ldlp/internal/checksum.Accumulator.Sum16",
				"ldlp/internal/checksum.Simple",
				// The flight recorder's record path: the telemetry promise
				// is that these stay allocation- and lock-free forever.
				"ldlp/internal/telemetry.Ring.Record",
				"ldlp/internal/telemetry.Tracer.Event",
				"ldlp/internal/telemetry.Tracer.EventAt",
				"ldlp/internal/telemetry.Hist.Observe",
				"ldlp/internal/telemetry.Counter.Inc",
				"ldlp/internal/telemetry.Counter.Add",
				"ldlp/internal/telemetry.Enabled",
			},
		}),
		NewAtomicCounter(AtomicCounterConfig{
			// Counters documents a quiescent-read discipline: plain reads
			// are safe once shard workers have drained. Writes must still
			// be atomic, and per-socket drop counters get no such pass.
			QuiescentReadTypes: []string{"ldlp/internal/netstack.Counters"},
		}),
		NewLockOrder(LockOrderConfig{
			Classes: []LockClass{
				{Path: "ldlp/internal/netstack.Host.mu", Rank: 10},
				{Path: "ldlp/internal/netstack.expvarMu", Rank: 20},
				{Path: "ldlp/internal/mbuf.PoolShard.mu", Rank: 30},
			},
			Wrappers: []LockWrapper{
				{Fn: "ldlp/internal/netstack.Host.lockRx", Class: "ldlp/internal/netstack.Host.mu"},
				{Fn: "ldlp/internal/netstack.Host.unlockRx", Class: "ldlp/internal/netstack.Host.mu", Release: true},
			},
			Sinks: []string{
				"ldlp/internal/core.ShardedStack.Drain",
				"ldlp/internal/core.ShardedStack.Close",
				"ldlp/internal/core.Stack.Run",
				"ldlp/internal/netstack.Net.RunUntilIdle",
				"ldlp/internal/netstack.Net.Tick",
			},
			EmitTypes: []string{"ldlp/internal/core.Emit"},
		}),
		NewDeterminism(DeterminismConfig{
			Packages: []string{
				"ldlp/internal/sim",
				"ldlp/internal/faults",
				"ldlp/internal/traffic",
				// Telemetry timestamps must come from an injected Clock so
				// sim-driven traces depend on the seed alone; time.Now
				// anywhere in the package would silently break replay.
				"ldlp/internal/telemetry",
			},
		}),
	}
}
