package lint

// DefaultAnalyzers returns the six analyzers configured for this
// repository's invariants. The qualified names below are load-bearing:
// hotpathalloc.Required doubles as the regression guard for the
// BenchmarkHotPathInject zero-alloc path (renaming or untagging one of
// those functions fails `make lint`), the lockorder classes declare the
// repo-wide acquisition order, and the shardaffinity hand-off list IS
// the transport path's declared cross-shard surface — extending it is a
// design decision, not a lint chore.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewMbufOwn(MbufOwnConfig{
			AllocFns: []string{
				"ldlp/internal/mbuf.Get",
				"ldlp/internal/mbuf.GetCluster",
				"ldlp/internal/mbuf.FromBytes",
				"ldlp/internal/mbuf.PoolShard.Get",
				"ldlp/internal/mbuf.PoolShard.GetCluster",
				"ldlp/internal/mbuf.PoolShard.FromBytes",
				"ldlp/internal/mbuf.PoolShard.get",
				"ldlp/internal/mbuf.Mbuf.alikeFor",
			},
		}),
		NewHotPathAlloc(HotPathAllocConfig{
			// The functions BenchmarkHotPathInject drives, per package:
			// the conventional and LDLP inject→decode→demux→recycle path.
			Required: []string{
				"ldlp/internal/netstack.Host.deliver",
				"ldlp/internal/netstack.Host.getPacket",
				"ldlp/internal/netstack.Host.putPacket",
				"ldlp/internal/netstack.rxPath.drop",
				"ldlp/internal/netstack.rxPath.reject",
				"ldlp/internal/netstack.rxPath.deviceInput",
				"ldlp/internal/netstack.rxPath.etherInput",
				"ldlp/internal/netstack.rxPath.ipInput",
				"ldlp/internal/netstack.rxPath.tcpInput",
				"ldlp/internal/netstack.rxPath.sockInput",
				"ldlp/internal/netstack.rxPath.freeChain",
				// The million-flow PCB lookup path: the flow cache and the
				// open-addressed table must stay allocation-free per lookup
				// (growth allocates, but only in the untagged cold grow()).
				"ldlp/internal/netstack.transportShard.lookupPCB",
				// The dispatch policies' per-frame surface: every frame pays
				// Key + Shard before it reaches a shard queue, so all three
				// policies must key and route without allocating (rebalancing
				// is pump-side and exempt).
				"ldlp/internal/dispatch.FrameKey",
				"ldlp/internal/dispatch.hashByte",
				"ldlp/internal/dispatch.Static.Key",
				"ldlp/internal/dispatch.Static.Shard",
				"ldlp/internal/dispatch.LoadAware.Key",
				"ldlp/internal/dispatch.LoadAware.Shard",
				"ldlp/internal/dispatch.RPCDispatch.Key",
				"ldlp/internal/dispatch.RPCDispatch.Shard",
				"ldlp/internal/dispatch.RPCDispatch.rpcXID",
				"ldlp/internal/flowtable.Table.Lookup",
				"ldlp/internal/flowtable.Table.Insert",
				"ldlp/internal/flowtable.arr.find",
				"ldlp/internal/flowtable.arr.insert",
				"ldlp/internal/flowtable.Cache.Lookup",
				"ldlp/internal/flowtable.Cache.Insert",
				"ldlp/internal/mbuf.PoolShard.get",
				"ldlp/internal/mbuf.PoolShard.FromBytes",
				"ldlp/internal/mbuf.Mbuf.Free",
				"ldlp/internal/mbuf.Mbuf.FreeChain",
				"ldlp/internal/mbuf.Mbuf.release",
				"ldlp/internal/mbuf.FreeQueue.Free",
				"ldlp/internal/mbuf.FreeQueue.FreeChain",
				"ldlp/internal/mbuf.Mbuf.Prepend",
				"ldlp/internal/core.Stack.Inject",
				"ldlp/internal/core.Stack.callThrough",
				"ldlp/internal/core.Stack.process",
				"ldlp/internal/core.Stack.deliver",
				"ldlp/internal/core.Stack.enqueue",
				"ldlp/internal/core.Stack.runLayer",
				"ldlp/internal/core.Stack.highestPending",
				"ldlp/internal/core.fifo.push",
				"ldlp/internal/core.fifo.pop",
				"ldlp/internal/checksum.Accumulator.Add",
				"ldlp/internal/checksum.Accumulator.Sum16",
				"ldlp/internal/checksum.Simple",
				// The flight recorder's record path: the telemetry promise
				// is that these stay allocation- and lock-free forever.
				"ldlp/internal/telemetry.Ring.Record",
				"ldlp/internal/telemetry.Tracer.Event",
				"ldlp/internal/telemetry.Tracer.EventAt",
				"ldlp/internal/telemetry.Hist.Observe",
				"ldlp/internal/telemetry.Counter.Inc",
				"ldlp/internal/telemetry.Counter.Add",
				"ldlp/internal/telemetry.Enabled",
			},
		}),
		NewAtomicCounter(AtomicCounterConfig{
			// Counters documents a quiescent-read discipline: plain reads
			// are safe once shard workers have drained. Writes must still
			// be atomic, and per-socket drop counters get no such pass.
			QuiescentReadTypes: []string{"ldlp/internal/netstack.Counters"},
		}),
		NewLockOrder(LockOrderConfig{
			// The per-host receive lock is gone: transport state is sharded
			// by flow hash and touched lock-free on its owning shard. What
			// remains are the narrow fan-in locks (UDP socket queue, TCP
			// listener backlog, ICMP reply list), each held only for an
			// append/pop — never across an emit, a send, or another lock.
			Classes: []LockClass{
				{Path: "ldlp/internal/netstack.UDPSock.mu", Rank: 14},
				{Path: "ldlp/internal/netstack.TCPListener.mu", Rank: 16},
				{Path: "ldlp/internal/netstack.Host.icmpMu", Rank: 18},
				{Path: "ldlp/internal/netstack.expvarMu", Rank: 20},
				{Path: "ldlp/internal/mbuf.PoolShard.mu", Rank: 30},
			},
			Sinks: []string{
				"ldlp/internal/core.ShardedStack.Drain",
				"ldlp/internal/core.ShardedStack.Close",
				"ldlp/internal/core.Stack.Run",
				"ldlp/internal/netstack.Net.RunUntilIdle",
				"ldlp/internal/netstack.Net.Tick",
			},
			EmitTypes: []string{"ldlp/internal/core.Emit"},
		}),
		NewShardAffinity(ShardAffinityConfig{
			// The transport path's ownership proof: PCBs, transport shards
			// and reassembly state are owned by the shard the RSS flow hash
			// routes their traffic to.
			OwnedTypes: []string{
				"ldlp/internal/netstack.tcpPCB",
				"ldlp/internal/netstack.transportShard",
				"ldlp/internal/netstack.fragState",
				// The flow table, the flow cache and the padded tally slot
				// inherit their shard's ownership: single-writer structures
				// touched only from the owning worker or at quiescence.
				"ldlp/internal/netstack.shardTally",
				"ldlp/internal/flowtable.Table",
				"ldlp/internal/flowtable.Cache",
			},
			// Shard context: receive-path methods run on the owning worker;
			// owned types' own methods run wherever a caller already proved
			// affinity.
			ShardContext: []string{
				"ldlp/internal/netstack.rxPath",
				"ldlp/internal/netstack.transportShard",
				"ldlp/internal/netstack.tcpPCB",
				"ldlp/internal/flowtable.Table",
				"ldlp/internal/flowtable.Cache",
			},
			// The declared cross-shard surface. Three families: host setup,
			// the pump's at-quiescence walks (after ShardedStack.Drain, no
			// worker is running), and the public socket API, whose safety
			// while workers run rests on the TCPListener lock + the PCB's
			// atomic estab flag (Accept) or on quiescence (everything else,
			// as documented on each method).
			Handoffs: []string{
				"ldlp/internal/netstack.newHost",
				"ldlp/internal/netstack.Host.tupleShard",
				"ldlp/internal/netstack.Host.pumpShard",
				"ldlp/internal/netstack.Host.flushTx",
				"ldlp/internal/netstack.Host.tcpTick",
				"ldlp/internal/netstack.Host.fragTick",
				// Migration is the dispatch tentpole's declared hand-off: the
				// pump (at quiescence, workers parked) re-homes the PCBs and
				// reassembly state of every bucket the policy moved.
				"ldlp/internal/netstack.Host.dispatchTick",
				"ldlp/internal/netstack.Host.applyMigration",
				"ldlp/internal/netstack.Host.DialTCP",
				"ldlp/internal/netstack.Host.ShardTransportStats",
				"ldlp/internal/netstack.Host.FlowStats",
				// Construction hands a fresh (never-shared) value to its
				// owner-to-be.
				"ldlp/internal/flowtable.New",
				"ldlp/internal/flowtable.NewCache",
				"ldlp/internal/netstack.Net.Close",
				"ldlp/internal/netstack.Host.Ping",
				"ldlp/internal/netstack.UDPSock.SendTo",
				"ldlp/internal/netstack.TCPListener.Accept",
				"ldlp/internal/netstack.TCPSock.Established",
				"ldlp/internal/netstack.TCPSock.State",
				"ldlp/internal/netstack.TCPSock.Err",
				"ldlp/internal/netstack.TCPSock.Send",
				"ldlp/internal/netstack.TCPSock.Recv",
				"ldlp/internal/netstack.TCPSock.Buffered",
				"ldlp/internal/netstack.TCPSock.Close",
			},
		}),
		NewDeterminism(DeterminismConfig{
			Packages: []string{
				"ldlp/internal/sim",
				"ldlp/internal/faults",
				"ldlp/internal/traffic",
				// Telemetry timestamps must come from an injected Clock so
				// sim-driven traces depend on the seed alone; time.Now
				// anywhere in the package would silently break replay.
				"ldlp/internal/telemetry",
				// The flow table promises deterministic iteration and seeded
				// eviction — no map ranging, no global rand, no clock.
				"ldlp/internal/flowtable",
				// Dispatch policies must be replay-deterministic: identical
				// frame sequences and rebalance points yield identical shard
				// assignments, which the cross-policy equivalence harness
				// depends on.
				"ldlp/internal/dispatch",
			},
		}),
	}
}
