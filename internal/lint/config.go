package lint

// DefaultAnalyzers returns the seven analyzers configured for this
// repository's invariants. The qualified names below are load-bearing:
// hotpathalloc.Required doubles as the regression guard for the
// BenchmarkHotPathInject zero-alloc path (renaming or untagging one of
// those functions fails `make lint`), ColdPaths is the closed list of
// declared escape hatches out of the transitive allocation-freedom
// proof, the lockorder classes declare the repo-wide acquisition order,
// and the shardaffinity hand-off list IS the transport path's declared
// cross-shard surface — extending any of them is a design decision, not
// a lint chore.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewMbufOwn(MbufOwnConfig{
			AllocFns: []string{
				"ldlp/internal/mbuf.Get",
				"ldlp/internal/mbuf.GetCluster",
				"ldlp/internal/mbuf.FromBytes",
				"ldlp/internal/mbuf.PoolShard.Get",
				"ldlp/internal/mbuf.PoolShard.GetCluster",
				"ldlp/internal/mbuf.PoolShard.FromBytes",
				"ldlp/internal/mbuf.PoolShard.get",
				"ldlp/internal/mbuf.Mbuf.alikeFor",
			},
			MbufTypes: []string{"ldlp/internal/mbuf.Mbuf"},
		}),
		NewHotPathAlloc(HotPathAllocConfig{
			// The functions BenchmarkHotPathInject drives, per package:
			// the conventional and LDLP inject→decode→demux→recycle path.
			Required: []string{
				"ldlp/internal/netstack.Host.deliver",
				"ldlp/internal/netstack.Host.getPacket",
				"ldlp/internal/netstack.Host.putPacket",
				"ldlp/internal/netstack.rxPath.drop",
				"ldlp/internal/netstack.rxPath.reject",
				"ldlp/internal/netstack.rxPath.deviceInput",
				"ldlp/internal/netstack.rxPath.etherInput",
				"ldlp/internal/netstack.rxPath.ipInput",
				"ldlp/internal/netstack.rxPath.tcpInput",
				"ldlp/internal/netstack.rxPath.sockInput",
				"ldlp/internal/netstack.rxPath.freeChain",
				// The million-flow PCB lookup path: the flow cache and the
				// open-addressed table must stay allocation-free per lookup
				// (growth allocates, but only in the untagged cold grow()).
				"ldlp/internal/netstack.transportShard.lookupPCB",
				// The dispatch policies' per-frame surface: every frame pays
				// Key + Shard before it reaches a shard queue, so all three
				// policies must key and route without allocating (rebalancing
				// is pump-side and exempt).
				"ldlp/internal/dispatch.FrameKey",
				"ldlp/internal/dispatch.hashByte",
				"ldlp/internal/dispatch.Static.Key",
				"ldlp/internal/dispatch.Static.Shard",
				"ldlp/internal/dispatch.LoadAware.Key",
				"ldlp/internal/dispatch.LoadAware.Shard",
				"ldlp/internal/dispatch.RPCDispatch.Key",
				"ldlp/internal/dispatch.RPCDispatch.Shard",
				"ldlp/internal/dispatch.RPCDispatch.rpcXID",
				"ldlp/internal/flowtable.Table.Lookup",
				"ldlp/internal/flowtable.Table.Insert",
				"ldlp/internal/flowtable.arr.find",
				"ldlp/internal/flowtable.arr.insert",
				"ldlp/internal/flowtable.Cache.Lookup",
				"ldlp/internal/flowtable.Cache.Insert",
				"ldlp/internal/mbuf.PoolShard.get",
				"ldlp/internal/mbuf.PoolShard.FromBytes",
				"ldlp/internal/mbuf.Mbuf.Free",
				"ldlp/internal/mbuf.Mbuf.FreeChain",
				"ldlp/internal/mbuf.Mbuf.release",
				"ldlp/internal/mbuf.FreeQueue.Free",
				"ldlp/internal/mbuf.FreeQueue.FreeChain",
				"ldlp/internal/mbuf.Mbuf.Prepend",
				"ldlp/internal/core.Stack.Inject",
				"ldlp/internal/core.Stack.callThrough",
				"ldlp/internal/core.Stack.process",
				"ldlp/internal/core.Stack.deliver",
				"ldlp/internal/core.Stack.enqueue",
				"ldlp/internal/core.Stack.runLayer",
				"ldlp/internal/core.Stack.highestPending",
				"ldlp/internal/core.fifo.push",
				"ldlp/internal/core.fifo.pop",
				"ldlp/internal/checksum.Accumulator.Add",
				"ldlp/internal/checksum.Accumulator.Sum16",
				"ldlp/internal/checksum.Simple",
				// The flight recorder's record path: the telemetry promise
				// is that these stay allocation- and lock-free forever.
				"ldlp/internal/telemetry.Ring.Record",
				"ldlp/internal/telemetry.Tracer.Event",
				"ldlp/internal/telemetry.Tracer.EventAt",
				"ldlp/internal/telemetry.Hist.Observe",
				"ldlp/internal/telemetry.Counter.Inc",
				"ldlp/internal/telemetry.Counter.Add",
				"ldlp/internal/telemetry.Enabled",
			},
			// The closed list of declared cold steps reachable from the hot
			// closure. Each carries //ldlp:coldpath at its declaration; the
			// transitive walk stops there instead of reporting the
			// allocations inside. Adding an entry is a perf decision —
			// it concedes the hot path can take that step.
			ColdPaths: []string{
				// Table growth: amortized O(1) over insertions, runs once
				// per doubling.
				"ldlp/internal/flowtable.Table.grow",
				// Passive open: SYN handling allocates the PCB; the
				// steady-state segment path never reaches it.
				"ldlp/internal/netstack.rxPath.tcpPassiveOpen",
				// Reassembly: fragmented datagrams are the exception in a
				// small-message protocol, and the buffers allocate by
				// design (O(log k) per k-fragment datagram).
				"ldlp/internal/netstack.transportShard.reassemble",
				// UDP/ICMP delivery: socket-queue appends and reply
				// buffers. Outside the TCP small-message contract that
				// BenchmarkHotPathInject measures.
				"ldlp/internal/netstack.rxPath.udpInput",
				"ldlp/internal/netstack.rxPath.icmpInput",
			},
			// The engine invokes layer handlers through function values
			// cached at Use() time, so Stack.process's true callees are
			// invisible to the resolver. Declare the hot-tagged rx handlers
			// as its edges: the transitive proof then covers
			// worker -> Inject -> ... -> process -> handler -> ... without
			// a dynamic-dispatch analysis.
			DeclaredEdges: map[string][]string{
				"ldlp/internal/core.Stack.process": {
					"ldlp/internal/netstack.rxPath.deviceInput",
					"ldlp/internal/netstack.rxPath.etherInput",
					"ldlp/internal/netstack.rxPath.ipInput",
					"ldlp/internal/netstack.rxPath.tcpInput",
					"ldlp/internal/netstack.rxPath.sockInput",
				},
			},
		}),
		NewQuiescence(QuiescenceConfig{
			// The two goroutine bodies that run while packets are in
			// flight: each shard's worker loop and the merger that fans
			// results back in.
			Roots: []string{
				"ldlp/internal/core.ShardedStack.worker",
				"ldlp/internal/core.ShardedStack.merger",
			},
			// Reachability must overapproximate, so unlike hotpathalloc's
			// declared edges this list names EVERY registered handler —
			// including the cold UDP/ICMP ones — plus the merger's sink.
			DeclaredEdges: map[string][]string{
				"ldlp/internal/core.Stack.process": {
					"ldlp/internal/netstack.rxPath.deviceInput",
					"ldlp/internal/netstack.rxPath.etherInput",
					"ldlp/internal/netstack.rxPath.ipInput",
					"ldlp/internal/netstack.rxPath.tcpInput",
					"ldlp/internal/netstack.rxPath.udpInput",
					"ldlp/internal/netstack.rxPath.icmpInput",
					"ldlp/internal/netstack.rxPath.sockInput",
				},
				"ldlp/internal/core.ShardedStack.merger": {
					"ldlp/internal/netstack.Host.putPacket",
				},
			},
			// The pump's at-quiescence walks stay declared even if the
			// directive is deleted.
			Required: []string{
				"ldlp/internal/netstack.Host.dispatchTick",
				"ldlp/internal/netstack.Host.applyMigration",
				"ldlp/internal/netstack.Host.tcpTick",
				"ldlp/internal/netstack.Host.fragTick",
				"ldlp/internal/netstack.Host.flushTx",
				"ldlp/internal/dispatch.LoadAware.Rebalance",
				"ldlp/internal/mbuf.FreeQueue.Flush",
			},
		}),
		NewAtomicCounter(AtomicCounterConfig{
			// Counters documents a quiescent-read discipline: plain reads
			// are safe once shard workers have drained. Writes must still
			// be atomic, and per-socket drop counters get no such pass.
			QuiescentReadTypes: []string{"ldlp/internal/netstack.Counters"},
		}),
		NewLockOrder(LockOrderConfig{
			// The per-host receive lock is gone: transport state is sharded
			// by flow hash and touched lock-free on its owning shard. What
			// remains are the narrow fan-in locks (UDP socket queue, TCP
			// listener backlog, ICMP reply list), each held only for an
			// append/pop — never across an emit, a send, or another lock.
			Classes: []LockClass{
				{Path: "ldlp/internal/netstack.UDPSock.mu", Rank: 14},
				{Path: "ldlp/internal/netstack.TCPListener.mu", Rank: 16},
				{Path: "ldlp/internal/netstack.Host.icmpMu", Rank: 18},
				{Path: "ldlp/internal/netstack.expvarMu", Rank: 20},
				{Path: "ldlp/internal/mbuf.PoolShard.mu", Rank: 30},
			},
			Sinks: []string{
				"ldlp/internal/core.ShardedStack.Drain",
				"ldlp/internal/core.ShardedStack.Close",
				"ldlp/internal/core.Stack.Run",
				"ldlp/internal/netstack.Net.RunUntilIdle",
				"ldlp/internal/netstack.Net.Tick",
			},
			EmitTypes: []string{"ldlp/internal/core.Emit"},
		}),
		NewShardAffinity(ShardAffinityConfig{
			// The transport path's ownership proof: PCBs, transport shards
			// and reassembly state are owned by the shard the RSS flow hash
			// routes their traffic to.
			OwnedTypes: []string{
				"ldlp/internal/netstack.tcpPCB",
				"ldlp/internal/netstack.transportShard",
				"ldlp/internal/netstack.fragState",
				// The flow table, the flow cache and the padded tally slot
				// inherit their shard's ownership: single-writer structures
				// touched only from the owning worker or at quiescence.
				"ldlp/internal/netstack.shardTally",
				"ldlp/internal/flowtable.Table",
				"ldlp/internal/flowtable.Cache",
			},
			// Shard context: receive-path methods run on the owning worker;
			// owned types' own methods run wherever a caller already proved
			// affinity.
			ShardContext: []string{
				"ldlp/internal/netstack.rxPath",
				"ldlp/internal/netstack.transportShard",
				"ldlp/internal/netstack.tcpPCB",
				"ldlp/internal/flowtable.Table",
				"ldlp/internal/flowtable.Cache",
			},
			// The declared cross-shard surface, now just two families: host
			// setup (fresh values handed to their owner-to-be) and the few
			// API entry points that are genuinely concurrent with running
			// workers, each mediated by a lock or an atomic (the TCPListener
			// backlog lock and the PCB's atomic estab flag for Accept).
			// Everything that runs only between pump iterations — timer
			// ticks, migration, the stats walks, the quiescent socket API —
			// carries //ldlp:quiescent instead, and the quiescence analyzer
			// proves those unreachable from the worker roots.
			Handoffs: []string{
				"ldlp/internal/netstack.newHost",
				"ldlp/internal/netstack.Host.tupleShard",
				"ldlp/internal/netstack.Host.pumpShard",
				// Construction hands a fresh (never-shared) value to its
				// owner-to-be.
				"ldlp/internal/flowtable.New",
				"ldlp/internal/flowtable.NewCache",
				"ldlp/internal/netstack.TCPListener.Accept",
			},
		}),
		NewDeterminism(DeterminismConfig{
			Packages: []string{
				"ldlp/internal/sim",
				"ldlp/internal/faults",
				"ldlp/internal/traffic",
				// Telemetry timestamps must come from an injected Clock so
				// sim-driven traces depend on the seed alone; time.Now
				// anywhere in the package would silently break replay.
				"ldlp/internal/telemetry",
				// The flow table promises deterministic iteration and seeded
				// eviction — no map ranging, no global rand, no clock.
				"ldlp/internal/flowtable",
				// Dispatch policies must be replay-deterministic: identical
				// frame sequences and rebalance points yield identical shard
				// assignments, which the cross-policy equivalence harness
				// depends on.
				"ldlp/internal/dispatch",
				// The fleet simulator's whole contract is byte-identical
				// replay per seed: event times, link jitter, fault streams
				// and merged telemetry all flow from Config.Seed. Wall
				// clocks, global rand, or map ranging anywhere in the
				// scheduler or the gossip protocol would break the replay
				// test silently on some future run.
				"ldlp/internal/fleet",
				"ldlp/internal/fleet/gossip",
			},
		}),
	}
}
