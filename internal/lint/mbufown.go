package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MbufOwnConfig names the allocation entry points whose results carry
// mbuf ownership and the chain types the ownership summaries classify.
type MbufOwnConfig struct {
	// AllocFns are qualified-name patterns (see MatchQName) of functions
	// returning an owned mbuf chain. The caller must balance each call
	// with exactly one Free / FreeChain, hand-off (passing the chain to
	// a consuming function, channel, struct, or return), or reassignment.
	AllocFns []string
	// MbufTypes are qualified-name patterns of the chain types whose
	// pointer parameters participate in the interprocedural ownership
	// summaries (e.g. "ldlp/internal/mbuf.Mbuf").
	MbufTypes []string
}

// NewMbufOwn builds the mbufown analyzer: a flow-approximate check that
// an allocated mbuf reaches a consumer on every path out of the
// allocating statement list.
//
// The tracker follows the straight-line statements after an
// `x := alloc()` assignment, consulting the whole-program ownership
// summaries (see summary.go) to classify each use: a call consumes the
// chain only if the callee's summary proves ownership leaves the caller
// (freed, stored, forwarded to a consumer, or unknown outside the
// module); a call whose summary proves borrow-only — transitively,
// through every hand-off — leaves the chain in hand and tracking
// continues. Returning the chain, sending it, storing it into a
// composite, or taking its address consumes as before; a call to a
// returns-owned function that consumes the chain transfers tracking to
// the result (mm := m.Prepend(4)). Three leak shapes are reported:
//
//   - an early `return` (or break/continue/goto) taken before any
//     consumer, the classic forgotten-Free error path;
//   - the enclosing function ending with the chain still in hand;
//   - either of the above after calls that only borrow — the diagnostic
//     names the borrow-only callees and their forwarding path, so a
//     multi-hop "I thought reader() freed it" bug reads as
//     "reader -> inner only borrow the chain".
//
// Control flow the tracker cannot prove safe — the variable used inside
// a condition, loop, or nested function — makes it go silent rather
// than guess: the analyzer is precise on the patterns it claims, not
// complete.
func NewMbufOwn(cfg MbufOwnConfig) *Analyzer {
	a := &Analyzer{
		Name: "mbufown",
		Doc:  "every mbuf allocation must reach exactly one Free/hand-off on every path (callee summaries prove the hand-offs consume)",
	}
	a.Run = func(pass *Pass) error {
		env := &ownEnv{cfg: cfg, facts: pass.Prog.mbufSummaries(cfg)}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				scanOwnership(pass, env, fd.Body.List, true, fd.Body.Rbrace)
			}
		}
		return nil
	}
	return a
}

// scanOwnership finds alloc assignments in stmts and tracks each to a
// consumer. atEnd marks the function's outermost statement list, where
// falling off the end is a leak.
func scanOwnership(pass *Pass, env *ownEnv, stmts []ast.Stmt, atEnd bool, rbrace token.Pos) {
	for i, stmt := range stmts {
		// Recurse into nested statement lists so allocations inside
		// branches and loops are tracked within their own scope.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanOwnership(pass, env, s.List, false, token.NoPos)
		case *ast.IfStmt:
			scanOwnership(pass, env, s.Body.List, false, token.NoPos)
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				scanOwnership(pass, env, eb.List, false, token.NoPos)
			} else if ei, ok := s.Else.(*ast.IfStmt); ok {
				scanOwnership(pass, env, []ast.Stmt{ei}, false, token.NoPos)
			}
		case *ast.ForStmt:
			scanOwnership(pass, env, s.Body.List, false, token.NoPos)
		case *ast.RangeStmt:
			scanOwnership(pass, env, s.Body.List, false, token.NoPos)
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanOwnership(pass, env, cc.Body, false, token.NoPos)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanOwnership(pass, env, cc.Body, false, token.NoPos)
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					scanOwnership(pass, env, cc.Body, false, token.NoPos)
				}
			}
		case *ast.LabeledStmt:
			scanOwnership(pass, env, []ast.Stmt{s.Stmt}, false, token.NoPos)
		}
		if v, name := allocAssign(pass, env.cfg, stmt); v != nil {
			trackOwnership(pass, env, v, name, stmts[i+1:], atEnd, rbrace, nil)
		}
	}
}

// allocAssign recognizes `x := allocFn(...)` (or `x = allocFn(...)`)
// and returns the variable now owning the chain.
func allocAssign(pass *Pass, cfg MbufOwnConfig, stmt ast.Stmt) (*types.Var, string) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, ""
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	qname, ok := CalleeQName(pass.TypesInfo, call)
	if !ok || !MatchQName(qname, cfg.AllocFns) {
		return nil, ""
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, ""
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v, id.Name
}

// trackOwnership walks the statements after the allocation until the
// chain is consumed, the analysis gives up, or a leak is proven.
// borrows accumulates the borrow-only callees seen so far, for the
// interprocedural breadcrumb in leak reports.
func trackOwnership(pass *Pass, env *ownEnv, v *types.Var, name string, rest []ast.Stmt, atEnd bool, rbrace token.Pos, borrows []string) {
	info := pass.TypesInfo
	for si, st := range rest {
		switch s := st.(type) {
		case *ast.ReturnStmt:
			kind, _ := useOfVar(info, s, v, env)
			if kind == useConsume {
				return
			}
			pass.Reportf(s.Pos(), "mbuf %q allocated above is leaked by this return (no Free or hand-off on this path%s)", name, borrowNote(env, borrows))
			return
		case *ast.BranchStmt:
			pass.Reportf(s.Pos(), "mbuf %q allocated above leaks out of this branch (no Free or hand-off on this path%s)", name, borrowNote(env, borrows))
			return
		case *ast.DeferStmt:
			if usesVar(info, s, v) {
				return // deferred cleanup owns it
			}
		case *ast.IfStmt:
			if s.Init != nil && usesVar(info, s.Init, v) || usesVar(info, s.Cond, v) {
				return // conditional ownership — beyond this tracker
			}
			if usesVar(info, s.Body, v) {
				return // branch consumes or frees conditionally
			}
			reportBranchExit(pass, env, s.Body, name, borrows)
			if s.Else != nil {
				if usesVar(info, s.Else, v) {
					return
				}
				if eb, ok := s.Else.(*ast.BlockStmt); ok {
					reportBranchExit(pass, env, eb, name, borrows)
				}
			}
		case *ast.AssignStmt:
			// Reassigning the variable drops our handle, whatever the
			// right side did with the chain.
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (info.Uses[id] == v || info.Defs[id] == v) {
					return
				}
			}
			kind, bs := useOfVar(info, s, v, env)
			switch kind {
			case useConsume:
				// A consuming call to a returns-owned function re-roots
				// the chain in the result: keep tracking under its name
				// (mm := m.Prepend(4)).
				if nv, nname := ownershipTransfer(pass, env, s, v); nv != nil {
					trackOwnership(pass, env, nv, nname, rest[si+1:], atEnd, rbrace, borrows)
				}
				return
			case useBorrow:
				borrows = append(borrows, bs...)
			}
		case *ast.ExprStmt, *ast.SendStmt, *ast.GoStmt:
			kind, bs := useOfVar(info, st, v, env)
			switch kind {
			case useConsume:
				return
			case useBorrow:
				borrows = append(borrows, bs...)
			}
		default:
			// Loops, switches, selects, nested funcs: if the chain is
			// involved at all, assume it is handled.
			if usesVar(info, st, v) {
				return
			}
		}
	}
	if atEnd && rbrace.IsValid() {
		pass.Reportf(rbrace, "mbuf %q is still owned when the function returns (no Free or hand-off%s)", name, borrowNote(env, borrows))
	}
}

// ownershipTransfer recognizes `mm := m.Prepend(4)`-style re-rooting:
// an assignment whose single call consumes v and whose callee's summary
// is returns-owned hands the chain to the mbuf-typed result. Returns
// the new variable to track, or nil.
func ownershipTransfer(pass *Pass, env *ownEnv, s *ast.AssignStmt, v *types.Var) (*types.Var, string) {
	if len(s.Rhs) != 1 {
		return nil, ""
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	qname, ok := CalleeQName(pass.TypesInfo, call)
	if !ok {
		return nil, ""
	}
	f := env.facts[qname]
	if f == nil || !f.returnsOwned {
		return nil, ""
	}
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		nv, ok := objVar(pass.TypesInfo, id)
		if !ok || nv == v || !isMbufPtr(nv.Type(), env.cfg.MbufTypes) {
			continue
		}
		return nv, id.Name
	}
	return nil, ""
}

// borrowNote renders the borrow-only callees a leaked chain passed
// through, so the diagnostic explains why those calls did not count as
// hand-offs and prints the interprocedural path.
func borrowNote(env *ownEnv, borrows []string) string {
	if len(borrows) == 0 {
		return ""
	}
	seen := map[string]bool{}
	var labels []string
	for _, q := range borrows {
		if !seen[q] {
			seen[q] = true
			labels = append(labels, borrowLabel(q, env.facts))
		}
	}
	sort.Strings(labels)
	if len(labels) > 3 {
		labels = labels[:3]
	}
	verb := "only borrow"
	if len(labels) == 1 {
		verb = "only borrows"
	}
	return "; " + strings.Join(labels, ", ") + " " + verb + " the chain"
}

// reportBranchExit flags an if-branch that exits the function without
// ever touching the tracked chain — the classic forgotten-Free error
// path. The caller has already established the branch never uses v.
func reportBranchExit(pass *Pass, env *ownEnv, body *ast.BlockStmt, name string, borrows []string) {
	if n := len(body.List); n > 0 {
		switch last := body.List[n-1].(type) {
		case *ast.ReturnStmt:
			pass.Reportf(last.Pos(), "mbuf %q allocated above is leaked by this return (error path misses Free%s)", name, borrowNote(env, borrows))
		case *ast.BranchStmt:
			pass.Reportf(last.Pos(), "mbuf %q allocated above leaks out of this branch%s", name, borrowNote(env, borrows))
		}
	}
}
