package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MbufOwnConfig names the allocation entry points whose results carry
// mbuf ownership.
type MbufOwnConfig struct {
	// AllocFns are qualified-name patterns (see MatchQName) of functions
	// returning an owned mbuf chain. The caller must balance each call
	// with exactly one Free / FreeChain, hand-off (passing the chain to
	// any function, method, channel, struct, or return), or reassignment.
	AllocFns []string
}

// NewMbufOwn builds the mbufown analyzer: a flow-approximate,
// intra-procedural check that an allocated mbuf reaches a consumer on
// every path out of the allocating statement list.
//
// The tracker follows the straight-line statements after an
// `x := alloc()` assignment. Passing x to any call, return, send,
// composite literal, or address-of consumes it (Free, Prepend, and
// transmit hand-offs all look alike at this level — the point is that
// ownership went *somewhere*). Two leak shapes are reported:
//
//   - an early `return` (or break/continue/goto) taken before any
//     consumer, the classic forgotten-Free error path;
//   - the enclosing function ending with the chain still in hand.
//
// Control flow the tracker cannot prove safe — the variable used inside
// a condition, loop, or nested function — makes it go silent rather
// than guess: the analyzer is precise on the patterns it claims, not
// complete.
func NewMbufOwn(cfg MbufOwnConfig) *Analyzer {
	a := &Analyzer{
		Name: "mbufown",
		Doc:  "every mbuf allocation must reach exactly one Free/hand-off on every path",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				scanOwnership(pass, cfg, fd.Body.List, true, fd.Body.Rbrace)
			}
		}
		return nil
	}
	return a
}

// scanOwnership finds alloc assignments in stmts and tracks each to a
// consumer. atEnd marks the function's outermost statement list, where
// falling off the end is a leak.
func scanOwnership(pass *Pass, cfg MbufOwnConfig, stmts []ast.Stmt, atEnd bool, rbrace token.Pos) {
	for i, stmt := range stmts {
		// Recurse into nested statement lists so allocations inside
		// branches and loops are tracked within their own scope.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanOwnership(pass, cfg, s.List, false, token.NoPos)
		case *ast.IfStmt:
			scanOwnership(pass, cfg, s.Body.List, false, token.NoPos)
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				scanOwnership(pass, cfg, eb.List, false, token.NoPos)
			} else if ei, ok := s.Else.(*ast.IfStmt); ok {
				scanOwnership(pass, cfg, []ast.Stmt{ei}, false, token.NoPos)
			}
		case *ast.ForStmt:
			scanOwnership(pass, cfg, s.Body.List, false, token.NoPos)
		case *ast.RangeStmt:
			scanOwnership(pass, cfg, s.Body.List, false, token.NoPos)
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanOwnership(pass, cfg, cc.Body, false, token.NoPos)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CaseClause); ok {
					scanOwnership(pass, cfg, cc.Body, false, token.NoPos)
				}
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					scanOwnership(pass, cfg, cc.Body, false, token.NoPos)
				}
			}
		case *ast.LabeledStmt:
			scanOwnership(pass, cfg, []ast.Stmt{s.Stmt}, false, token.NoPos)
		}
		if v, name := allocAssign(pass, cfg, stmt); v != nil {
			trackOwnership(pass, v, name, stmts[i+1:], atEnd, rbrace)
		}
	}
}

// allocAssign recognizes `x := allocFn(...)` (or `x = allocFn(...)`)
// and returns the variable now owning the chain.
func allocAssign(pass *Pass, cfg MbufOwnConfig, stmt ast.Stmt) (*types.Var, string) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, ""
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	qname, ok := CalleeQName(pass.TypesInfo, call)
	if !ok || !MatchQName(qname, cfg.AllocFns) {
		return nil, ""
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, ""
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v, id.Name
}

// trackOwnership walks the statements after the allocation until the
// chain is consumed, the analysis gives up, or a leak is proven.
func trackOwnership(pass *Pass, v *types.Var, name string, rest []ast.Stmt, atEnd bool, rbrace token.Pos) {
	info := pass.TypesInfo
	for _, st := range rest {
		switch s := st.(type) {
		case *ast.ReturnStmt:
			if consumesVar(info, s, v) {
				return
			}
			pass.Reportf(s.Pos(), "mbuf %q allocated above is leaked by this return (no Free or hand-off on this path)", name)
			return
		case *ast.BranchStmt:
			pass.Reportf(s.Pos(), "mbuf %q allocated above leaks out of this branch (no Free or hand-off on this path)", name)
			return
		case *ast.DeferStmt:
			if usesVar(info, s, v) {
				return // deferred cleanup owns it
			}
		case *ast.IfStmt:
			if s.Init != nil && usesVar(info, s.Init, v) || usesVar(info, s.Cond, v) {
				return // conditional ownership — beyond this tracker
			}
			if usesVar(info, s.Body, v) {
				return // branch consumes or frees conditionally
			}
			reportBranchExit(pass, s.Body, name)
			if s.Else != nil {
				if usesVar(info, s.Else, v) {
					return
				}
				if eb, ok := s.Else.(*ast.BlockStmt); ok {
					reportBranchExit(pass, eb, name)
				}
			}
		case *ast.AssignStmt:
			// `_ = m` keeps the typechecker quiet but hands nothing off —
			// keep tracking.
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					if rid, ok := ast.Unparen(s.Rhs[0]).(*ast.Ident); ok && info.Uses[rid] == v {
						continue
					}
				}
			}
			// Reassigning the variable drops our handle.
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && (info.Uses[id] == v || info.Defs[id] == v) {
					if consumesVar(info, s, v) {
						return
					}
					return // overwritten before tracking proves anything
				}
			}
			if consumesVar(info, s, v) {
				return
			}
			if usesVar(info, st, v) {
				return // mutation like m.off = 0 — keep silent
			}
		case *ast.ExprStmt, *ast.SendStmt, *ast.GoStmt:
			if consumesVar(info, st, v) {
				return
			}
			if usesVar(info, st, v) {
				return
			}
		default:
			// Loops, switches, selects, nested funcs: if the chain is
			// involved at all, assume it is handled.
			if usesVar(info, st, v) {
				return
			}
		}
	}
	if atEnd && rbrace.IsValid() {
		pass.Reportf(rbrace, "mbuf %q is still owned when the function returns (no Free or hand-off)", name)
	}
}

// reportBranchExit flags an if-branch that exits the function without
// ever touching the tracked chain — the classic forgotten-Free error
// path. The caller has already established the branch never uses v.
func reportBranchExit(pass *Pass, body *ast.BlockStmt, name string) {
	if n := len(body.List); n > 0 {
		switch last := body.List[n-1].(type) {
		case *ast.ReturnStmt:
			pass.Reportf(last.Pos(), "mbuf %q allocated above is leaked by this return (error path misses Free)", name)
		case *ast.BranchStmt:
			pass.Reportf(last.Pos(), "mbuf %q allocated above leaks out of this branch", name)
		}
	}
}

// consumesVar reports whether the statement hands the chain off:
// passing it (or its address) to a call, returning it, sending it on a
// channel, or storing it into a composite value.
func consumesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	consumed := false
	ast.Inspect(n, func(nn ast.Node) bool {
		if consumed {
			return false
		}
		switch x := nn.(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if usesVar(info, arg, v) {
					consumed = true
					return false
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && usesVar(info, sel.X, v) {
				consumed = true // method call on the chain: v.Free(), v.Prepend(n)
				return false
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if usesVar(info, res, v) {
					consumed = true
					return false
				}
			}
		case *ast.SendStmt:
			if usesVar(info, x.Value, v) {
				consumed = true
				return false
			}
		case *ast.CompositeLit:
			if usesVar(info, x, v) {
				consumed = true
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && usesVar(info, x.X, v) {
				consumed = true
				return false
			}
		}
		return true
	})
	return consumed
}
