package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path; external test packages get the
	// conventional "_test" suffix.
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry mirrors the `go list -json` fields the loader consumes.
type listEntry struct {
	ImportPath   string
	Name         string
	Dir          string
	Standard     bool
	Export       string
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
}

// LoadStats reports where load time went and whether the go list layer
// was served from the on-disk cache, for ldlpvet -v.
type LoadStats struct {
	// List is the time spent obtaining the `go list -export` metadata
	// (running the go tool on a miss, reading and validating the cache
	// file on a hit).
	List time.Duration
	// Check is the time spent parsing and type-checking the target
	// packages from source.
	Check time.Duration
	// CacheHit reports whether every go list invocation was served from
	// the cache.
	CacheHit bool
}

// Load type-checks the packages matched by patterns (run from dir,
// normally the module root) and returns them in dependency order,
// definers before users. In-package test files are merged into their
// package; external _test packages are returned as their own entries
// after all regular packages.
//
// Dependencies — stdlib and module packages alike — are resolved from
// compiler export data emitted by `go list -deps -test -export`, so the
// loader needs nothing beyond the standard library and the go tool.
func Load(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	pkgs, fset, _, err := LoadWithStats(dir, patterns)
	return pkgs, fset, err
}

// LoadWithStats is Load with a timing/caching breakdown attached.
func LoadWithStats(dir string, patterns []string) ([]*Package, *token.FileSet, *LoadStats, error) {
	stats := &LoadStats{}
	start := time.Now()
	entries, hitDeps, err := cachedGoList(dir, append([]string{"-deps", "-test"}, patterns...))
	if err != nil {
		return nil, nil, nil, err
	}
	targets, hitTargets, err := cachedGoList(dir, patterns)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.List = time.Since(start)
	stats.CacheHit = hitDeps && hitTargets
	checkStart := time.Now()
	defer func() { stats.Check = time.Since(checkStart) }()

	// exports: ordinary build of each dependency. testExports: the
	// package-under-test rebuilt with its in-package test files, which is
	// what an external _test package actually links against.
	exports := map[string]string{}
	testExports := map[string]string{}
	byPath := map[string]*listEntry{}
	for _, e := range entries {
		e := e
		if e.ForTest != "" {
			// "p [p.test]" is p rebuilt with its in-package test files;
			// "p_test [p.test]" (the external test package itself) is not.
			if strings.Split(e.ImportPath, " ")[0] == e.ForTest && e.Export != "" {
				testExports[e.ForTest] = e.Export
			}
			continue
		}
		if strings.HasSuffix(e.ImportPath, ".test") {
			continue
		}
		byPath[e.ImportPath] = e
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}

	fset := token.NewFileSet()
	baseImp := newExportImporter(fset, exports, nil)

	var ordered []string
	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		e := byPath[path]
		if e == nil || e.Standard {
			return
		}
		for _, imp := range e.Imports {
			visit(imp)
		}
		ordered = append(ordered, path)
	}
	isTarget := map[string]bool{}
	for _, t := range targets {
		isTarget[t.ImportPath] = true
	}
	for _, t := range targets {
		visit(t.ImportPath)
	}

	var pkgs []*Package
	for _, path := range ordered {
		if !isTarget[path] {
			continue
		}
		e := byPath[path]
		files := append(append([]string{}, e.GoFiles...), e.TestGoFiles...)
		pkg, err := check(fset, path, e.Dir, files, baseImp)
		if err != nil {
			return nil, nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	for _, path := range ordered {
		e := byPath[path]
		if !isTarget[path] || e == nil || len(e.XTestGoFiles) == 0 {
			continue
		}
		// The external test package imports the package under test as
		// rebuilt for the test binary (in-package test files included).
		imp := newExportImporter(fset, exports, map[string]string{path: testExports[path]})
		pkg, err := check(fset, path+"_test", e.Dir, e.XTestGoFiles, imp)
		if err != nil {
			return nil, nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, fset, stats, nil
}

// LoadFixture type-checks the .go files of one testdata directory as a
// single package. Fixtures may import anything in the standard library
// whose export data fixtureStd lists.
func LoadFixture(dir string) (*Package, *token.FileSet, error) {
	exports, err := fixtureStd(dir)
	if err != nil {
		return nil, nil, err
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			files = append(files, de.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, nil)
	pkg, err := check(fset, filepath.Base(dir), dir, files, imp)
	if err != nil {
		return nil, nil, err
	}
	return pkg, fset, nil
}

// fixtureStd returns export-data paths for the stdlib packages fixtures
// are allowed to import.
func fixtureStd(dir string) (map[string]string, error) {
	entries, _, err := cachedGoList(dir, []string{"-deps",
		"errors", "fmt", "math/rand", "sort", "strings", "sync", "sync/atomic", "time"})
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// goList runs `go list -e -export -json=...` with the given extra args
// and decodes the JSON stream.
func goList(dir string, args []string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-export",
		"-json=ImportPath,Name,Dir,Standard,Export,ForTest,GoFiles,TestGoFiles,XTestGoFiles,Imports"},
		args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []*listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		entries = append(entries, &e)
	}
	return entries, nil
}

// cachedGoList is goList behind an on-disk cache. The cache key covers
// everything the listing can depend on — toolchain version, go.mod and
// go.sum, every .go source file in the module, and the argument list —
// so a hit is exact, not heuristic. The second result reports whether
// the entries came from the cache.
func cachedGoList(dir string, args []string) ([]*listEntry, bool, error) {
	key, err := listCacheKey(dir, args)
	if err != nil {
		// Unhashable tree (racing deletes, permissions): just run the tool.
		entries, err := goList(dir, args)
		return entries, false, err
	}
	path := filepath.Join(listCacheDir(), key+".json")
	if entries, ok := readListCache(path); ok {
		return entries, true, nil
	}
	entries, err := goList(dir, args)
	if err != nil {
		return nil, false, err
	}
	writeListCache(path, entries)
	return entries, false, nil
}

func listCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "ldlpvet")
}

// findModuleRoot walks up from dir to the enclosing go.mod, falling
// back to dir itself outside any module.
func findModuleRoot(dir string) string {
	d, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}

// listCacheKey hashes the inputs `go list -export` output depends on.
// Source files are hashed by content, so touching a file without
// changing it does not invalidate; WalkDir's lexical order keeps the
// key deterministic.
func listCacheKey(dir string, args []string) (string, error) {
	h := sha256.New()
	root := findModuleRoot(dir)
	relDir, err := filepath.Rel(root, dir)
	if err != nil {
		relDir = dir
	}
	fmt.Fprintf(h, "go=%s\ndir=%s\nargs=%s\n",
		runtime.Version(), filepath.ToSlash(relDir), strings.Join(args, "\x00"))
	for _, name := range []string{"go.mod", "go.sum"} {
		if b, err := os.ReadFile(filepath.Join(root, name)); err == nil {
			fmt.Fprintf(h, "%s=%x\n", name, sha256.Sum256(b))
		}
	}
	walkErr := filepath.WalkDir(root, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			if de.Name() == ".git" {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(de.Name(), ".go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		fmt.Fprintf(h, "%s=%x\n", filepath.ToSlash(rel), sha256.Sum256(b))
		return nil
	})
	if walkErr != nil {
		return "", walkErr
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// readListCache loads a cached entry list, rejecting it if any export
// file it references has vanished — the go build cache may have evicted
// the artifact since the listing was taken, and a dangling Export path
// would fail later inside the importer with a much worse error.
func readListCache(path string) ([]*listEntry, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var entries []*listEntry
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, false
	}
	for _, e := range entries {
		if e.Export != "" {
			if _, err := os.Stat(e.Export); err != nil {
				return nil, false
			}
		}
	}
	return entries, true
}

// writeListCache persists entries best-effort: a cache that cannot be
// written only costs the next run a go list invocation.
func writeListCache(path string, entries []*listEntry) {
	b, err := json.Marshal(entries)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	os.Rename(tmp.Name(), path)
}

// exportImporter resolves imports from compiler export data, with an
// optional per-path override (used to substitute the test-variant build
// of a package under external test).
type exportImporter struct {
	gc types.Importer
}

func newExportImporter(fset *token.FileSet, exports, override map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file := override[path]
		if file == "" {
			file = exports[path]
		}
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup)}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}

// check parses and type-checks one package from source, resolving every
// import through imp.
func check(fset *token.FileSet, path, dir string, fileNames []string, imp types.Importer) (*Package, error) {
	var asts []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, fset, asts, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", path, errors.Join(errs...))
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Files: asts,
		Types: tpkg,
		Info:  info,
	}, nil
}
