package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the expectation regexes from fixture comments of the
// form `// want `pattern“, in the style of x/tools' analysistest.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// runFixture loads testdata/<name>, runs the analyzers, and checks the
// diagnostics against the fixture's want comments: every diagnostic
// must match a want on its line, and every want must be matched.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	pkg, fset, err := LoadFixture(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := Run(fset, []*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", name, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					wants[key] = append(wants[key], &want{re: regexp.MustCompile(m[1])})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []string
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

func TestMbufOwn(t *testing.T) {
	runFixture(t, "mbufown", []*Analyzer{NewMbufOwn(MbufOwnConfig{
		AllocFns: []string{"mbufown.alloc"},
	})})
}

func TestHotPathAlloc(t *testing.T) {
	runFixture(t, "hotpathalloc", []*Analyzer{NewHotPathAlloc(HotPathAllocConfig{
		Required: []string{"hotpathalloc.mustStayTagged", "hotpathalloc.ghostFunction"},
	})})
}

func TestAtomicCounter(t *testing.T) {
	runFixture(t, "atomiccounter", []*Analyzer{NewAtomicCounter(AtomicCounterConfig{
		QuiescentReadTypes: []string{"atomiccounter.quiet"},
	})})
}

func TestLockOrder(t *testing.T) {
	runFixture(t, "lockorder", []*Analyzer{NewLockOrder(LockOrderConfig{
		Classes: []LockClass{
			{Path: "lockorder.host.mu", Rank: 10},
			{Path: "lockorder.globalMu", Rank: 20},
			{Path: "lockorder.pool.mu", Rank: 30},
		},
		Sinks:     []string{"lockorder.drain"},
		EmitTypes: []string{"lockorder.emitFn"},
	})})
}

func TestShardAffinity(t *testing.T) {
	runFixture(t, "shardaffinity", []*Analyzer{NewShardAffinity(ShardAffinityConfig{
		OwnedTypes:   []string{"shardaffinity.pcb", "shardaffinity.shard"},
		ShardContext: []string{"shardaffinity.rx", "shardaffinity.shard", "shardaffinity.pcb"},
		Handoffs:     []string{"shardaffinity.tick", "shardaffinity.host.dial"},
	})})
}

func TestDeterminism(t *testing.T) {
	runFixture(t, "determinism", []*Analyzer{NewDeterminism(DeterminismConfig{
		Packages: []string{"determinism"},
	})})
}

// TestIgnoreRequiresReason proves a reason-less //lint:ignore both gets
// reported and does NOT suppress the finding beneath it. The assertions
// live here because the directive occupies the line a want comment
// would need.
func TestIgnoreRequiresReason(t *testing.T) {
	pkg, fset, err := LoadFixture(filepath.Join("testdata", "lintignore"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(fset, []*Package{pkg}, []*Analyzer{NewDeterminism(DeterminismConfig{
		Packages: []string{"lintignore"},
	})})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed ignore + unsuppressed finding):\n%v", len(diags), diags)
	}
	byAnalyzer := map[string]string{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = d.Message
	}
	if msg, ok := byAnalyzer["lintignore"]; !ok || !strings.Contains(msg, "non-empty reason") {
		t.Errorf("missing or wrong malformed-ignore diagnostic: %q", msg)
	}
	if msg, ok := byAnalyzer["determinism"]; !ok || !strings.Contains(msg, "wall clock") {
		t.Errorf("reason-less ignore suppressed the finding it covered: %q", msg)
	}
}

func TestDefaultAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"mbufown", "hotpathalloc", "atomiccounter", "lockorder", "determinism", "shardaffinity"} {
		if !names[want] {
			t.Errorf("DefaultAnalyzers is missing %q", want)
		}
	}
}

// TestRepoIsLintClean runs the full default suite over the module,
// exactly like `make lint`: the tree must stay free of unexplained
// findings, so CI catches regressions even when only `go test` runs.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loading the whole module is not short")
	}
	pkgs, fset, err := Load(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(fset, pkgs, DefaultAnalyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexplained finding: %s", d)
	}
}
