package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe extracts the expectation regexes from fixture comments of the
// form `// want `pattern` `pattern“, in the style of x/tools'
// analysistest: one `// want` may carry several backticked patterns,
// one per expected diagnostic on that line.
var (
	wantMark = regexp.MustCompile(`// want\s`)
	wantRe   = regexp.MustCompile("`([^`]+)`")
)

// runFixture loads testdata/<name>, runs the analyzers, and checks the
// diagnostics against the fixture's want comments: every diagnostic
// must match a want on its line, and every want must be matched.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	pkg, fset, err := LoadFixture(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := Run(fset, []*Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", name, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" → expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				loc := wantMark.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[loc[1]:], -1) {
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					wants[key] = append(wants[key], &want{re: regexp.MustCompile(m[1])})
				}
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var keys []string
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

func TestMbufOwn(t *testing.T) {
	runFixture(t, "mbufown", []*Analyzer{NewMbufOwn(MbufOwnConfig{
		AllocFns:  []string{"mbufown.alloc"},
		MbufTypes: []string{"mbufown.Mbuf"},
	})})
}

func TestHotPathAlloc(t *testing.T) {
	runFixture(t, "hotpathalloc", []*Analyzer{NewHotPathAlloc(HotPathAllocConfig{
		Required:  []string{"hotpathalloc.mustStayTagged", "hotpathalloc.ghostFunction"},
		ColdPaths: []string{"hotpathalloc.declaredCold", "hotpathalloc.ghostCold"},
		DeclaredEdges: map[string][]string{
			"hotpathalloc.engine": {"hotpathalloc.handlerAlloc"},
		},
	})})
}

func TestQuiescence(t *testing.T) {
	runFixture(t, "quiescence", []*Analyzer{NewQuiescence(QuiescenceConfig{
		Roots: []string{"quiescence.worker"},
		DeclaredEdges: map[string][]string{
			"quiescence.engine": {"quiescence.handler"},
		},
		Required: []string{"quiescence.tickRequired", "quiescence.ghostTick"},
	})})
}

// TestInterprocIgnore pins the three //lint:ignore × interprocedural
// semantics: a justified ignore at the allocation line inside a callee
// cleans the callee's summary for every hot caller; a justified ignore
// at one root's call site suppresses that root alone; a reason-less
// ignore suppresses nothing and is itself reported. Assertions are
// explicit because the malformed-ignore diagnostic lands on the
// directive's own line, where a want comment cannot sit.
func TestInterprocIgnore(t *testing.T) {
	pkg, fset, err := LoadFixture(filepath.Join("testdata", "interprocignore"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(fset, []*Package{pkg}, []*Analyzer{NewHotPathAlloc(HotPathAllocConfig{})})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var nIgnore, nBare, nMalformed int
	for _, d := range diags {
		switch {
		case d.Analyzer == "lintignore" && strings.Contains(d.Message, "non-empty reason"):
			nIgnore++
		case strings.Contains(d.Message, "allocation in interprocignore.calleeBare"):
			nBare++
		case strings.Contains(d.Message, "allocation in interprocignore.calleeMalformed"):
			nMalformed++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
		if strings.Contains(d.Message, "calleeJustified") {
			t.Errorf("callee-site justified ignore did not clean the summary: %s", d)
		}
	}
	if nIgnore != 1 {
		t.Errorf("got %d malformed-ignore diagnostics, want 1", nIgnore)
	}
	if nBare != 1 {
		t.Errorf("got %d calleeBare findings, want exactly 1 (the root-site ignore must suppress hotRootIgnore's copy only)", nBare)
	}
	if nMalformed != 1 {
		t.Errorf("got %d calleeMalformed findings, want 1 (a reason-less ignore must not clean the summary)", nMalformed)
	}
}

func TestAtomicCounter(t *testing.T) {
	runFixture(t, "atomiccounter", []*Analyzer{NewAtomicCounter(AtomicCounterConfig{
		QuiescentReadTypes: []string{"atomiccounter.quiet"},
	})})
}

func TestLockOrder(t *testing.T) {
	runFixture(t, "lockorder", []*Analyzer{NewLockOrder(LockOrderConfig{
		Classes: []LockClass{
			{Path: "lockorder.host.mu", Rank: 10},
			{Path: "lockorder.globalMu", Rank: 20},
			{Path: "lockorder.pool.mu", Rank: 30},
		},
		Sinks:     []string{"lockorder.drain"},
		EmitTypes: []string{"lockorder.emitFn"},
	})})
}

func TestShardAffinity(t *testing.T) {
	runFixture(t, "shardaffinity", []*Analyzer{NewShardAffinity(ShardAffinityConfig{
		OwnedTypes:   []string{"shardaffinity.pcb", "shardaffinity.shard"},
		ShardContext: []string{"shardaffinity.rx", "shardaffinity.shard", "shardaffinity.pcb"},
		Handoffs:     []string{"shardaffinity.tick", "shardaffinity.host.dial"},
	})})
}

func TestDeterminism(t *testing.T) {
	runFixture(t, "determinism", []*Analyzer{NewDeterminism(DeterminismConfig{
		Packages: []string{"determinism"},
	})})
}

// TestIgnoreRequiresReason proves a reason-less //lint:ignore both gets
// reported and does NOT suppress the finding beneath it. The assertions
// live here because the directive occupies the line a want comment
// would need.
func TestIgnoreRequiresReason(t *testing.T) {
	pkg, fset, err := LoadFixture(filepath.Join("testdata", "lintignore"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(fset, []*Package{pkg}, []*Analyzer{NewDeterminism(DeterminismConfig{
		Packages: []string{"lintignore"},
	})})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (malformed ignore + unsuppressed finding):\n%v", len(diags), diags)
	}
	byAnalyzer := map[string]string{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = d.Message
	}
	if msg, ok := byAnalyzer["lintignore"]; !ok || !strings.Contains(msg, "non-empty reason") {
		t.Errorf("missing or wrong malformed-ignore diagnostic: %q", msg)
	}
	if msg, ok := byAnalyzer["determinism"]; !ok || !strings.Contains(msg, "wall clock") {
		t.Errorf("reason-less ignore suppressed the finding it covered: %q", msg)
	}
}

func TestDefaultAnalyzers(t *testing.T) {
	names := map[string]bool{}
	for _, a := range DefaultAnalyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"mbufown", "hotpathalloc", "quiescence", "atomiccounter", "lockorder", "determinism", "shardaffinity"} {
		if !names[want] {
			t.Errorf("DefaultAnalyzers is missing %q", want)
		}
	}
}

// TestRepoIsLintClean runs the full default suite over the module,
// exactly like `make lint`: the tree must stay free of unexplained
// findings, so CI catches regressions even when only `go test` runs.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loading the whole module is not short")
	}
	pkgs, fset, err := Load(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(fset, pkgs, DefaultAnalyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexplained finding: %s", d)
	}
}
