package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismConfig parameterizes the determinism analyzer.
type DeterminismConfig struct {
	// Packages are import-path patterns (MatchQName-style suffixes) the
	// rules apply to. Test files within them are exempt — tests may
	// legitimately iterate maps to assert set contents.
	Packages []string
}

// NewDeterminism builds the determinism analyzer. The simulation,
// fault-injection, and traffic packages must replay bit-identically per
// seed, so three nondeterminism sources are banned outright in them:
// wall-clock time (time.Now and friends — simulated time is threaded
// explicitly), the global math/rand PRNG (package-level functions share
// unseeded process-global state; a locally seeded *rand.Rand is fine),
// and map iteration, whose order varies run to run.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "no wall-clock, global PRNG, or map-iteration order in seed-replayable packages",
	}
	a.Run = func(pass *Pass) error {
		if !MatchQName(pass.PkgPath, cfg.Packages) &&
			!MatchQName(strings.TrimSuffix(pass.PkgPath, "_test"), cfg.Packages) {
			return nil
		}
		info := pass.TypesInfo
		for _, f := range pass.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					qname, ok := CalleeQName(info, x)
					if !ok {
						return true
					}
					switch qname {
					case "time.Now", "time.Since", "time.Until":
						pass.Reportf(x.Pos(), "%s reads the wall clock; replay depends on the seed alone — thread simulated time instead", qname)
					}
					if rest, found := strings.CutPrefix(qname, "math/rand."); found &&
						!strings.Contains(rest, ".") && rest != "New" && rest != "NewSource" && rest != "NewZipf" {
						pass.Reportf(x.Pos(), "math/rand.%s uses the process-global PRNG; draw from a seeded *rand.Rand so runs replay per seed", rest)
					}
				case *ast.RangeStmt:
					if t := info.TypeOf(x.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							pass.Reportf(x.Pos(), "map iteration order is nondeterministic; iterate a sorted key slice (or restructure) so output replays per seed")
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
