package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAllocConfig parameterizes the hotpathalloc analyzer.
type HotPathAllocConfig struct {
	// Required lists fully-qualified functions that MUST carry the
	// //ldlp:hotpath tag. This is the regression guard for the
	// BenchmarkHotPathInject zero-alloc path: deleting or untagging one
	// of these functions fails `make lint`, so the allocation rules can
	// never silently stop applying to the benchmarked path.
	Required []string
	// ColdPaths lists the declared //ldlp:coldpath escape hatches
	// (MatchQName patterns). The transitive walk stops at a tagged
	// coldpath function without reporting only if it matches this list:
	// an undeclared tag reached from a hot root is reported with the
	// full call chain, and a listed pattern whose function lost its tag
	// (or was deleted) trips a regression guard, mirroring Required.
	ColdPaths []string
	// DeclaredEdges adds caller -> callee edges (MatchQName patterns on
	// both sides) for calls the graph cannot resolve statically — the
	// engine's cached emit closures and layer handler fields, wired once
	// at AddLayer and invoked as plain function values ever after.
	DeclaredEdges map[string][]string
}

// NewHotPathAlloc builds the hotpathalloc analyzer. Functions whose doc
// comment carries the //ldlp:hotpath directive must stay free of the
// allocation sources that would break the zero-allocs-per-op invariant:
// heap-escaping composite literals (&T{}, slice/map literals), make/new,
// unbounded append, interface boxing at call sites, closures, fmt, and
// string building. Arguments to panic() are exempt — a panicking path
// has already left the hot path.
//
// The check is transitive: a tagged function's entire static call
// closure (resolved edges plus DeclaredEdges) must be allocation-free.
// Reaching a function that allocates is reported at the hot root's call
// site with the full chain; reaching a //ldlp:coldpath function stops
// the walk, silently if the coldpath is declared in ColdPaths and with
// a chain report if not. Callees outside the module (stdlib, export
// data only) are not traversed — the module's own tagged surface calls
// the standard library only through the vetted leaf helpers.
func NewHotPathAlloc(cfg HotPathAllocConfig) *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "//ldlp:hotpath functions and their entire call closure must not allocate (composites, boxing, closures, fmt, unbounded append)",
	}
	var declared map[string][]string // memoized per Program
	var declaredFor *Program
	a.Run = func(pass *Pass) error {
		if pass.Prog != declaredFor {
			declared = pass.Prog.expandDeclared(cfg.DeclaredEdges)
			declaredFor = pass.Prog
		}
		foundReq := map[string]bool{}
		foundCold := map[string]bool{}
		declaredAny := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				declaredAny = true
				qname := FuncQName(pass.PkgPath, fd)
				tagged := HasDirective(fd.Doc, "//ldlp:hotpath")
				if pat := matchedPattern(qname, cfg.Required); pat != "" {
					foundReq[pat] = true
					if !tagged {
						pass.Reportf(fd.Name.Pos(), "%s is on the benchmarked hot path and must carry //ldlp:hotpath", qname)
					}
				}
				if HasDirective(fd.Doc, "//ldlp:coldpath") {
					if pat := matchedPattern(qname, cfg.ColdPaths); pat != "" {
						foundCold[pat] = true
					}
					if tagged {
						pass.Reportf(fd.Name.Pos(), "%s carries both //ldlp:hotpath and //ldlp:coldpath; pick one", qname)
					}
				}
				if tagged && fd.Body != nil {
					checkHotBody(pass, fd)
					checkHotClosure(pass, cfg, declared, fd)
				}
			}
		}
		if declaredAny {
			for _, req := range cfg.Required {
				if !foundReq[req] && qnamePkg(req) == pass.PkgPath {
					pass.Reportf(pass.Files[0].Name.Pos(),
						"hot-path function %s is required by the lint config but no longer declared (regression guard)", req)
				}
			}
			for _, cold := range cfg.ColdPaths {
				if !foundCold[cold] && qnamePkg(cold) == pass.PkgPath {
					pass.Reportf(pass.Files[0].Name.Pos(),
						"coldpath %s is declared in the lint config but no function carries the //ldlp:coldpath tag under that name (regression guard)", cold)
				}
			}
		}
		return nil
	}
	return a
}

// checkHotClosure walks the static call closure of one tagged hot
// function and reports, at the first-hop call site inside the root's
// body, every reachable function that allocates and every reachable
// undeclared //ldlp:coldpath tag. Callees that are themselves tagged
// //ldlp:hotpath are skipped — their own closure check covers them —
// and declared coldpaths stop the walk, which is exactly what makes
// them escape hatches.
func checkHotClosure(pass *Pass, cfg HotPathAllocConfig, declared map[string][]string, fd *ast.FuncDecl) {
	prog := pass.Prog
	root := FuncQName(pass.PkgPath, fd)
	rootFn := prog.Funcs[root]
	if rootFn == nil {
		return
	}
	type item struct {
		qname string
		first CallEdge // call site in the root body that began this path
	}
	parents := map[string]pathStep{root: {}}
	var queue []item
	enqueue := func(from string, e CallEdge, first CallEdge) {
		if _, seen := parents[e.Callee]; seen {
			return
		}
		pf := prog.Funcs[e.Callee]
		if pf == nil {
			return // outside the module: not traversable, not reportable
		}
		parents[e.Callee] = pathStep{caller: from, edge: e}
		if pf.HotPath {
			return // its own closure check covers it
		}
		queue = append(queue, item{qname: e.Callee, first: first})
	}
	for _, e := range rootFn.Edges {
		enqueue(root, e, e)
	}
	for _, extra := range declared[root] {
		e := CallEdge{Callee: extra, Pos: fd.Name.Pos()}
		enqueue(root, e, e)
	}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		pf := prog.Funcs[it.qname]
		chain := chainTo(parents, it.qname)
		if pf.ColdPath {
			if !MatchQName(it.qname, cfg.ColdPaths) {
				pass.ReportChain(it.first.Pos, chain,
					"hot path reaches //ldlp:coldpath function %s that is not declared in the lint config (chain: %s); add it to ColdPaths or keep it off the hot path",
					shortQName(it.qname), formatChain(chain))
			}
			continue // a coldpath tag stops the walk either way
		}
		if len(pf.Allocs) > 0 {
			fnd := pf.Allocs[0]
			more := ""
			if n := len(pf.Allocs) - 1; n > 0 {
				more = fmt.Sprintf(" (+%d more)", n)
			}
			pass.ReportChain(it.first.Pos, chain,
				"hot path reaches an allocation in %s (chain: %s): %s at %s%s; tag the cold step //ldlp:coldpath and declare it in the lint config if this path is intentionally cold",
				shortQName(it.qname), formatChain(chain), fnd.msg, prog.Fset.Position(fnd.pos), more)
		}
		for _, e := range pf.Edges {
			enqueue(it.qname, e, it.first)
		}
		for _, extra := range declared[it.qname] {
			enqueue(it.qname, CallEdge{Callee: extra, Pos: pf.Decl.Pos()}, it.first)
		}
	}
}

// qnamePkg extracts the package path from a qualified function name
// ("ldlp/internal/mbuf.PoolShard.get" → "ldlp/internal/mbuf").
func qnamePkg(qname string) string {
	base := qname
	prefix := ""
	if slash := strings.LastIndex(qname, "/"); slash >= 0 {
		prefix = qname[:slash+1]
		base = qname[slash+1:]
	}
	if dot := strings.Index(base, "."); dot >= 0 {
		return prefix + base[:dot]
	}
	return qname
}

// posRange is a half-open source interval used to exempt subtrees.
type posRange struct{ from, to token.Pos }

func inRanges(p token.Pos, rs []posRange) bool {
	for _, r := range rs {
		if p > r.from && p < r.to {
			return true
		}
	}
	return false
}

// allocFinding is one allocation source inside a function body, as
// recorded in the per-function summary.
type allocFinding struct {
	pos token.Pos
	msg string
}

// checkHotBody reports every allocation source in one tagged function.
func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	for _, fnd := range allocScan(pass.TypesInfo, fd) {
		pass.Reportf(fnd.pos, "%s", fnd.msg)
	}
}

// allocScan finds every allocation source in one function body under
// the hotpathalloc rules. It is both the intraprocedural check for
// tagged functions and the allocates-on-some-path summary producer for
// the whole-program store.
func allocScan(info *types.Info, fd *ast.FuncDecl) []allocFinding {
	var out []allocFinding
	emit := func(pos token.Pos, format string, args ...any) {
		out = append(out, allocFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
	}

	// Pass 0: collect exemption ranges and allocation-free slice vars.
	var panicRanges, closureRanges []posRange
	addrComposites := map[*ast.CompositeLit]bool{}
	okSlices := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				for _, arg := range x.Args {
					panicRanges = append(panicRanges, posRange{arg.Pos() - 1, arg.End() + 1})
				}
			}
		case *ast.FuncLit:
			closureRanges = append(closureRanges, posRange{x.Body.Lbrace, x.Body.Rbrace + 1})
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					addrComposites[cl] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				if _, ok := ast.Unparen(rhs).(*ast.SliceExpr); !ok {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					if v, ok := objVar(info, id); ok {
						okSlices[v] = true // e.g. keep := q[:0] — reuses q's backing array
					}
				}
			}
		}
		return true
	})
	exempt := func(p token.Pos) bool {
		return inRanges(p, panicRanges) || inRanges(p, closureRanges)
	}

	// Pass 1: collect findings.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || exempt(n.Pos()) {
			return true
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			emit(x.Pos(), "function literal on the hot path allocates a closure")
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if addrComposites[x] {
				emit(x.Pos(), "&%s composite literal escapes to the heap on the hot path", typeLabel(t))
			} else if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					emit(x.Pos(), "%s literal allocates on the hot path", typeLabel(t))
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.TypeOf(x); t != nil && isString(t) {
					emit(x.Pos(), "string concatenation allocates on the hot path")
				}
			}
		case *ast.CallExpr:
			scanAllocCall(info, x, okSlices, emit)
		}
		return true
	})
	return out
}

// scanAllocCall applies the per-call rules: make/new, unbounded append,
// fmt, allocating conversions, and interface boxing.
func scanAllocCall(info *types.Info, call *ast.CallExpr, okSlices map[*types.Var]bool, emit func(token.Pos, string, ...any)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if t := info.TypeOf(call); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map, *types.Chan:
						emit(call.Pos(), "make(%s) allocates on the hot path", typeLabel(t))
					}
				}
			case "new":
				emit(call.Pos(), "new(T) allocates on the hot path")
			case "append":
				if len(call.Args) > 0 && !appendIsBounded(info, call.Args[0], okSlices) {
					emit(call.Pos(), "append may grow its backing array on the hot path")
				}
			}
			return
		}
	}

	// Conversion, not a call?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type.Underlying()
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			_, toSlice := to.(*types.Slice)
			if (toSlice && from != nil && isString(from)) ||
				(isString(tv.Type) && from != nil && isByteOrRuneSlice(from)) {
				emit(call.Pos(), "string/slice conversion copies and allocates on the hot path")
			}
		}
		return
	}

	if qname, ok := CalleeQName(info, call); ok && strings.HasPrefix(qname, "fmt.") {
		emit(call.Pos(), "%s on the hot path allocates (and formats reflectively)", qname)
		return
	}

	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		if t := info.TypeOf(call.Fun); t != nil {
			sig, ok = t.Underlying().(*types.Signature)
		}
		if !ok {
			return
		}
	}
	if call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		emit(arg.Pos(), "argument boxes %s into an interface (allocates on the hot path)", typeLabel(at))
	}
}

// appendIsBounded reports whether the append target provably reuses an
// existing backing array: a re-slice expression (q[:0]) or a variable
// initialized from one.
func appendIsBounded(info *types.Info, arg ast.Expr, okSlices map[*types.Var]bool) bool {
	arg = ast.Unparen(arg)
	if _, ok := arg.(*ast.SliceExpr); ok {
		return true
	}
	if id, ok := arg.(*ast.Ident); ok {
		if v, isVar := objVar(info, id); isVar {
			return okSlices[v]
		}
	}
	return false
}

func objVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// paramTypeAt resolves the static parameter type for argument i,
// expanding the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params == nil {
		return nil
	}
	n := params.Len()
	if sig.Variadic() && i >= n-1 {
		if n == 0 {
			return nil
		}
		if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// boxFree reports whether a value of type t converts to an interface
// without allocating: pointers and pointer-shaped types, interfaces,
// and untyped nil.
func boxFree(t types.Type) bool {
	if _, isParam := t.(*types.TypeParam); isParam {
		return true // instantiation-dependent; give the benefit of the doubt
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
