package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAllocConfig parameterizes the hotpathalloc analyzer.
type HotPathAllocConfig struct {
	// Required lists fully-qualified functions that MUST carry the
	// //ldlp:hotpath tag. This is the regression guard for the
	// BenchmarkHotPathInject zero-alloc path: deleting or untagging one
	// of these functions fails `make lint`, so the allocation rules can
	// never silently stop applying to the benchmarked path.
	Required []string
}

// NewHotPathAlloc builds the hotpathalloc analyzer. Functions whose doc
// comment carries the //ldlp:hotpath directive must stay free of the
// allocation sources that would break the zero-allocs-per-op invariant:
// heap-escaping composite literals (&T{}, slice/map literals), make/new,
// unbounded append, interface boxing at call sites, closures, fmt, and
// string building. Arguments to panic() are exempt — a panicking path
// has already left the hot path.
func NewHotPathAlloc(cfg HotPathAllocConfig) *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "//ldlp:hotpath functions must not allocate (composites, boxing, closures, fmt, unbounded append)",
	}
	a.Run = func(pass *Pass) error {
		found := map[string]bool{}
		declared := false
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				declared = true
				qname := FuncQName(pass.PkgPath, fd)
				tagged := HasDirective(fd.Doc, "//ldlp:hotpath")
				if pat := matchedPattern(qname, cfg.Required); pat != "" {
					found[pat] = true
					if !tagged {
						pass.Reportf(fd.Name.Pos(), "%s is on the benchmarked hot path and must carry //ldlp:hotpath", qname)
					}
				}
				if tagged && fd.Body != nil {
					checkHotBody(pass, fd)
				}
			}
		}
		if declared {
			for _, req := range cfg.Required {
				if !found[req] && qnamePkg(req) == pass.PkgPath {
					pass.Reportf(pass.Files[0].Name.Pos(),
						"hot-path function %s is required by the lint config but no longer declared (regression guard)", req)
				}
			}
		}
		return nil
	}
	return a
}

// qnamePkg extracts the package path from a qualified function name
// ("ldlp/internal/mbuf.PoolShard.get" → "ldlp/internal/mbuf").
func qnamePkg(qname string) string {
	base := qname
	prefix := ""
	if slash := strings.LastIndex(qname, "/"); slash >= 0 {
		prefix = qname[:slash+1]
		base = qname[slash+1:]
	}
	if dot := strings.Index(base, "."); dot >= 0 {
		return prefix + base[:dot]
	}
	return qname
}

// posRange is a half-open source interval used to exempt subtrees.
type posRange struct{ from, to token.Pos }

func inRanges(p token.Pos, rs []posRange) bool {
	for _, r := range rs {
		if p > r.from && p < r.to {
			return true
		}
	}
	return false
}

// checkHotBody reports every allocation source in one tagged function.
func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 0: collect exemption ranges and allocation-free slice vars.
	var panicRanges, closureRanges []posRange
	addrComposites := map[*ast.CompositeLit]bool{}
	okSlices := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				for _, arg := range x.Args {
					panicRanges = append(panicRanges, posRange{arg.Pos() - 1, arg.End() + 1})
				}
			}
		case *ast.FuncLit:
			closureRanges = append(closureRanges, posRange{x.Body.Lbrace, x.Body.Rbrace + 1})
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					addrComposites[cl] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i >= len(x.Lhs) {
					break
				}
				if _, ok := ast.Unparen(rhs).(*ast.SliceExpr); !ok {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					if v, ok := objVar(info, id); ok {
						okSlices[v] = true // e.g. keep := q[:0] — reuses q's backing array
					}
				}
			}
		}
		return true
	})
	exempt := func(p token.Pos) bool {
		return inRanges(p, panicRanges) || inRanges(p, closureRanges)
	}

	// Pass 1: report.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || exempt(n.Pos()) {
			return true
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "function literal on the hot path allocates a closure")
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if addrComposites[x] {
				pass.Reportf(x.Pos(), "&%s composite literal escapes to the heap on the hot path", typeLabel(t))
			} else if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(x.Pos(), "%s literal allocates on the hot path", typeLabel(t))
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD {
				if t := info.TypeOf(x); t != nil && isString(t) {
					pass.Reportf(x.Pos(), "string concatenation allocates on the hot path")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, x, okSlices)
		}
		return true
	})
}

// checkHotCall applies the per-call rules: make/new, unbounded append,
// fmt, allocating conversions, and interface boxing.
func checkHotCall(pass *Pass, call *ast.CallExpr, okSlices map[*types.Var]bool) {
	info := pass.TypesInfo

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if t := info.TypeOf(call); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice, *types.Map, *types.Chan:
						pass.Reportf(call.Pos(), "make(%s) allocates on the hot path", typeLabel(t))
					}
				}
			case "new":
				pass.Reportf(call.Pos(), "new(T) allocates on the hot path")
			case "append":
				if len(call.Args) > 0 && !appendIsBounded(info, call.Args[0], okSlices) {
					pass.Reportf(call.Pos(), "append may grow its backing array on the hot path")
				}
			}
			return
		}
	}

	// Conversion, not a call?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		to := tv.Type.Underlying()
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			_, toSlice := to.(*types.Slice)
			if (toSlice && from != nil && isString(from)) ||
				(isString(tv.Type) && from != nil && isByteOrRuneSlice(from)) {
				pass.Reportf(call.Pos(), "string/slice conversion copies and allocates on the hot path")
			}
		}
		return
	}

	if qname, ok := CalleeQName(info, call); ok && strings.HasPrefix(qname, "fmt.") {
		pass.Reportf(call.Pos(), "%s on the hot path allocates (and formats reflectively)", qname)
		return
	}

	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		if t := info.TypeOf(call.Fun); t != nil {
			sig, ok = t.Underlying().(*types.Signature)
		}
		if !ok {
			return
		}
	}
	if call.Ellipsis.IsValid() {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || boxFree(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into an interface (allocates on the hot path)", typeLabel(at))
	}
}

// appendIsBounded reports whether the append target provably reuses an
// existing backing array: a re-slice expression (q[:0]) or a variable
// initialized from one.
func appendIsBounded(info *types.Info, arg ast.Expr, okSlices map[*types.Var]bool) bool {
	arg = ast.Unparen(arg)
	if _, ok := arg.(*ast.SliceExpr); ok {
		return true
	}
	if id, ok := arg.(*ast.Ident); ok {
		if v, isVar := objVar(info, id); isVar {
			return okSlices[v]
		}
	}
	return false
}

func objVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// paramTypeAt resolves the static parameter type for argument i,
// expanding the variadic tail.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params == nil {
		return nil
	}
	n := params.Len()
	if sig.Variadic() && i >= n-1 {
		if n == 0 {
			return nil
		}
		if sl, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return sl.Elem()
		}
		return nil
	}
	if i >= n {
		return nil
	}
	return params.At(i).Type()
}

// boxFree reports whether a value of type t converts to an interface
// without allocating: pointers and pointer-shaped types, interfaces,
// and untyped nil.
func boxFree(t types.Type) bool {
	if _, isParam := t.(*types.TypeParam); isParam {
		return true // instantiation-dependent; give the benefit of the doubt
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func typeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
