package tcpmodel

import (
	"fmt"
	"math/rand"

	"ldlp/internal/machine"
	"ldlp/internal/memtrace"
)

// Config parameterizes the model.
type Config struct {
	// MessageLen is the received TCP segment length on the wire at the IP
	// layer (the paper's workload is 552-byte messages: 512 bytes of
	// payload under 40 bytes of TCP/IP header).
	MessageLen int
	// Seed drives the deterministic pseudo-random touch patterns. The
	// same seed always yields byte-identical traces.
	Seed int64
	// Density scales all code sizes, modelling §5.2's CISC/RISC
	// comparison: 1.0 (or 0) is the measured Alpha code; 0.55 models the
	// i386, whose networking code the paper measures at 45–55% smaller.
	// Copy routines shrink further (CopyDensity) because the i386 has
	// block-move instructions (bcopy touches 64 bytes of code on the
	// i386 vs 448 on the Alpha).
	Density float64
	// CopyDensity applies to the "Copy, checksum" layer; 0 defaults to
	// Density*0.3, reflecting the i386's string instructions.
	CopyDensity float64
}

// DefaultConfig returns the paper's workload configuration (Alpha code).
func DefaultConfig() Config { return Config{MessageLen: 552, Seed: 1} }

// I386Config returns the §5.2 CISC variant: typical code 55% of the
// Alpha's size, copy routines far smaller.
func I386Config() Config {
	cfg := DefaultConfig()
	cfg.Density = 0.55
	return cfg
}

// scale returns n scaled by the config's density for the given layer,
// rounded to instruction granularity with a floor of one line.
func (c Config) scale(layer string, n int) int {
	d := c.Density
	if d == 0 || d == 1 {
		return n
	}
	if layer == "Copy, checksum" {
		cd := c.CopyDensity
		if cd == 0 {
			cd = d * 0.3
		}
		d = cd
	}
	v := int(float64(n)*d) / 4 * 4
	if v < 32 {
		v = 32
	}
	return v
}

type byteRange struct{ off, length int }

type modelFunc struct {
	entry        funcEntry
	seg          *machine.Segment
	ranges       []byteRange
	touchedBytes int
}

type dataObject struct {
	seg    *machine.Segment
	off    int
	length int
	phase  int
	// rereads is how many extra times the object is loaded in its phase
	// (structure fields are consulted repeatedly; this raises reference
	// counts without growing the working set).
	rereads int
}

type layerData struct {
	layer string
	ro    []dataObject
	mut   []dataObject
}

// Model is a placed, calibrated instance of the TCP receive & acknowledge
// path, ready to emit reference traces.
type Model struct {
	cfg   Config
	funcs []*modelFunc
	data  []*layerData
	// msgSegs holds the three message buffers: device (LANCE), mbuf
	// cluster, and user destination.
	msgSegs [3]*machine.Segment
	// stackSeg models the kernel stack; its accesses are excluded from
	// working sets (as in the paper) but counted in phase margins.
	stackSeg *machine.Segment
}

// New builds and places the model. The layout is deterministic for a given
// config.
func New(cfg Config) *Model {
	if cfg.MessageLen <= 0 {
		panic(fmt.Sprintf("tcpmodel: non-positive message length %d", cfg.MessageLen))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	layout := machine.NewLayout(32)
	m := &Model{cfg: cfg}

	// Per-layer touched-code targets from Table 1, split across the
	// layer's functions in proportion to their sizes. Under a CISC
	// density model (§5.2) both the function sizes and the layer targets
	// scale together, preserving each layer's touched fraction.
	targets := make(map[string]int)
	sizes := make(map[string]int)
	for _, row := range PaperTable1() {
		targets[row.Layer] = cfg.scale(row.Layer, row.Code)
	}
	inv := inventory()
	for i := range inv {
		inv[i].Size = cfg.scale(inv[i].Layer, inv[i].Size)
		sizes[inv[i].Layer] += inv[i].Size
	}

	for _, fe := range inv {
		frac := float64(targets[fe.Layer]) / float64(sizes[fe.Layer])
		if frac > 1 {
			frac = 1
		}
		targetLines := int(float64(fe.Size)*frac/32 + 0.5)
		if targetLines < 1 {
			targetLines = 1
		}
		dense := frac > 0.9
		mf := &modelFunc{entry: fe, seg: machine.NewSegment(fe.Name, machine.Code, fe.Size)}
		layout.PlaceSequential(mf.seg)
		mf.ranges = touchPattern(rng, fe.Size, targetLines, dense)
		for _, r := range mf.ranges {
			mf.touchedBytes += r.length
		}
		m.funcs = append(m.funcs, mf)
	}

	// Data objects per layer, calibrated to the Table 1 read-only and
	// mutable cells, assigned to phases in proportion to the layer's code
	// activity there.
	weights := m.layerPhaseWeights()
	for _, ds := range dataSpecs() {
		ld := &layerData{layer: ds.Layer}
		w := weights[ds.Layer]
		ld.ro = makeObjects(rng, layout, ds.Layer+".rodata", machine.ReadOnly, ds.ROTarget, w)
		ld.mut = makeObjects(rng, layout, ds.Layer+".data", machine.Mutable, ds.MutTarget, w)
		m.data = append(m.data, ld)
	}

	// Message buffers. The device buffer models LANCE receive memory; the
	// mbuf buffer is where the driver copies the frame; the user buffer is
	// the read(2) destination.
	names := []string{"lance_rxbuf", "mbuf_cluster", "user_buf"}
	for i, n := range names {
		m.msgSegs[i] = machine.NewSegment(n, machine.Mutable, 2048)
		layout.PlaceSequential(m.msgSegs[i])
	}
	m.stackSeg = machine.NewSegment("kstack", machine.Mutable, 8192)
	layout.PlaceSequential(m.stackSeg)
	return m
}

// layerPhaseWeights estimates how much of each layer's touched code runs in
// each phase, for distributing data objects.
func (m *Model) layerPhaseWeights() map[string][numPhases]float64 {
	out := make(map[string][numPhases]float64)
	for _, mf := range m.funcs {
		w := out[mf.entry.Layer]
		for p := 0; p < numPhases; p++ {
			w[p] += mf.entry.Cover[p] * float64(mf.touchedBytes)
		}
		out[mf.entry.Layer] = w
	}
	return out
}

// touchPattern produces the executed-byte ranges of one function: runs of
// straight-line code separated by skipped blocks (untaken error paths,
// unused feature code), self-correcting so that the covered 32-byte-line
// count lands on targetLines. Dense functions (copy/checksum loops) use
// long runs and tiny gaps.
func touchPattern(rng *rand.Rand, size, targetLines int, dense bool) []byteRange {
	maxLines := (size + 31) / 32
	if targetLines > maxLines {
		targetLines = maxLines
	}
	var ranges []byteRange
	pos := 0
	covered := 0
	lastLine := -1
	for covered < targetLines && pos < size {
		var run int
		if dense {
			run = 128 + 4*rng.Intn(97) // 128..512
		} else {
			run = 24 + 4*rng.Intn(25) // 24..120
		}
		if run > size-pos {
			run = size - pos
		}
		if run < 4 {
			run = 4
		}
		ranges = append(ranges, byteRange{off: pos, length: run})
		l0, l1 := pos/32, (pos+run-1)/32
		if lastLine >= l0 {
			l0 = lastLine + 1
		}
		if l1 >= l0 {
			covered += l1 - l0 + 1
		}
		if (pos+run-1)/32 > lastLine {
			lastLine = (pos + run - 1) / 32
		}
		pos += run

		remTarget := targetLines - covered
		if remTarget <= 0 || pos >= size {
			break
		}
		remaining := size - pos
		d := float64(remTarget*32) / float64(remaining)
		var gap int
		if dense || d >= 1 {
			gap = 4 + 4*rng.Intn(2)
		} else {
			mean := float64(run) * (1 - d) / d
			gap = int(mean*(0.5+rng.Float64())) / 4 * 4
			if gap < 4 {
				gap = 4
			}
		}
		pos += gap
	}
	if len(ranges) == 0 {
		// Degenerate tiny function: touch it all.
		n := size
		if n < 4 {
			n = 4
		}
		ranges = append(ranges, byteRange{off: 0, length: n})
	}
	return ranges
}

// makeObjects scatters small data objects through a fresh segment until
// their line-granular footprint reaches target bytes, and assigns each
// object to a phase with probability proportional to the layer's per-phase
// code activity.
func makeObjects(rng *rand.Rand, layout *machine.Layout, name string, class machine.Class, target int, weights [numPhases]float64) []dataObject {
	if target <= 0 {
		return nil
	}
	targetLines := (target + 31) / 32
	segSize := target * 3
	if segSize < 64 {
		segSize = 64
	}
	seg := machine.NewSegment(name, class, segSize)
	layout.PlaceSequential(seg)

	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	pickPhase := func() int {
		if totalW <= 0 {
			return PhasePktIntr
		}
		x := rng.Float64() * totalW
		for p, w := range weights {
			if x < w {
				return p
			}
			x -= w
		}
		return numPhases - 1
	}

	// Object lengths are 8-aligned multiples of the Alpha word, weighted
	// toward small objects so that the per-line fill matches Table 3's
	// read-only/mutable rows (≈14 touched bytes per 32-byte line).
	lengths := []int{8, 8, 16, 16, 24}
	var objs []dataObject
	pos := 0
	covered := 0
	lastLine := -1
	for covered < targetLines && pos < segSize {
		length := lengths[rng.Intn(len(lengths))]
		if length > segSize-pos {
			length = segSize - pos
		}
		if length < 8 {
			break
		}
		objs = append(objs, dataObject{
			seg: seg, off: pos, length: length, phase: pickPhase(),
			rereads: 1 + rng.Intn(4),
		})
		l0, l1 := pos/32, (pos+length-1)/32
		if lastLine >= l0 {
			l0 = lastLine + 1
		}
		if l1 >= l0 {
			covered += l1 - l0 + 1
		}
		if (pos+length-1)/32 > lastLine {
			lastLine = (pos + length - 1) / 32
		}
		pos += length

		remTarget := targetLines - covered
		if remTarget <= 0 {
			break
		}
		remaining := segSize - pos
		if remaining <= 0 {
			break
		}
		d := float64(remTarget*32) / float64(remaining)
		var gap int
		if d >= 1 {
			gap = 8
		} else {
			mean := float64(length) * (1 - d) / d
			gap = int(mean*(0.5+rng.Float64())) / 8 * 8
			if gap < 8 {
				gap = 8
			}
		}
		pos += gap
	}
	return objs
}

// prefixRanges returns the leading ranges covering fraction frac of the
// function's touched bytes — the partial-execution model for functions a
// phase only walks partway through.
func (mf *modelFunc) prefixRanges(frac float64) []byteRange {
	if frac >= 1 {
		return mf.ranges
	}
	budget := int(frac * float64(mf.touchedBytes))
	var out []byteRange
	for _, r := range mf.ranges {
		if budget <= 0 {
			break
		}
		take := r.length
		if take > budget {
			take = (budget + 3) / 4 * 4
			if take > r.length {
				take = r.length
			}
		}
		out = append(out, byteRange{off: r.off, length: take})
		budget -= take
	}
	return out
}

// Trace emits one complete receive & acknowledge iteration: the entry,
// packet-interrupt and exit phases of Table 2.
func (m *Model) Trace() *memtrace.Trace {
	tr := memtrace.NewTrace(PhaseNames...)
	for p := 0; p < numPhases; p++ {
		m.emitPhase(tr, p)
	}
	return tr
}

func (m *Model) emitPhase(tr *memtrace.Trace, phase int) {
	for fi, mf := range m.funcs {
		cover := mf.entry.Cover[phase]
		if cover <= 0 {
			continue
		}
		// Call prologue: push a stack frame (at a depth staggered by call
		// position). Stack references are excluded from the working set
		// (Table 1 note) but show up in the phase margins of Figure 1.
		frame := mf.entry.Size / 16
		if frame < 32 {
			frame = 32
		}
		if frame > 192 {
			frame = 192
		}
		stackPos := (fi * 56) % (8192 - 256)
		m.emitStack(tr, phase, mf.entry.Layer, stackPos, frame, memtrace.Store)

		base := mf.seg.Addr()
		for _, r := range mf.prefixRanges(cover) {
			for off := 0; off < r.length; off += 4 {
				tr.Append(memtrace.Record{
					Addr: base + uint64(r.off+off), Size: 4,
					Kind: memtrace.IFetch, Phase: phase,
					Layer: mf.entry.Layer, Func: mf.entry.Name,
				})
			}
		}
		for _, loop := range mf.entry.Loops {
			if loop.Phase == phase {
				m.emitLoop(tr, mf, loop)
			}
		}

		// Epilogue: restore saved registers.
		m.emitStack(tr, phase, mf.entry.Layer, stackPos, frame, memtrace.Load)
	}

	// Data structure references for this phase.
	for _, ld := range m.data {
		for _, obj := range ld.ro {
			if obj.phase != phase {
				continue
			}
			for k := 0; k <= obj.rereads; k++ {
				tr.Append(memtrace.Record{
					Addr: obj.seg.Addr() + uint64(obj.off), Size: obj.length,
					Kind: memtrace.Load, Phase: phase, Layer: ld.layer,
				})
			}
		}
		for _, obj := range ld.mut {
			if obj.phase != phase {
				continue
			}
			addr := obj.seg.Addr() + uint64(obj.off)
			for k := 0; k <= obj.rereads; k++ {
				tr.Append(memtrace.Record{Addr: addr, Size: obj.length, Kind: memtrace.Load, Phase: phase, Layer: ld.layer})
			}
			// Stores cover the whole object: a partially-written object
			// would reclassify its unwritten lines as read-only, which the
			// paper's whole-trace classification does not exhibit at this
			// scale.
			tr.Append(memtrace.Record{Addr: addr, Size: obj.length, Kind: memtrace.Store, Phase: phase, Layer: ld.layer})
		}
	}
}

// emitStack emits excluded 8-byte stack references for one call frame.
func (m *Model) emitStack(tr *memtrace.Trace, phase int, layer string, pos, frame int, kind memtrace.Kind) {
	base := m.stackSeg.Addr()
	for off := 0; off < frame; off += 8 {
		tr.Append(memtrace.Record{
			Addr: base + uint64(pos+off), Size: 8,
			Kind: kind, Phase: phase, Layer: layer, Excluded: true,
		})
	}
}

// emitLoop replays a data loop: the body instructions are re-fetched every
// iteration (driving up reference counts without growing the working set)
// and the loop's message-buffer loads/stores are emitted as Excluded
// records, since the paper's working-set accounting skips packet contents.
func (m *Model) emitLoop(tr *memtrace.Trace, mf *modelFunc, loop LoopSpec) {
	iters := loop.Iters
	if loop.BytesPerIter > 0 {
		iters = (m.cfg.MessageLen + loop.BytesPerIter - 1) / loop.BytesPerIter
	}
	if iters <= 0 {
		return
	}
	// The loop body is the leading BodyBytes of the function's touched code.
	var body []byteRange
	budget := loop.BodyBytes
	for _, r := range mf.ranges {
		if budget <= 0 {
			break
		}
		take := r.length
		if take > budget {
			take = budget
		}
		body = append(body, byteRange{off: r.off, length: take})
		budget -= take
	}
	base := mf.seg.Addr()
	var msgBase uint64
	if loop.Message != msgNone {
		msgBase = m.msgSegs[loop.Message].Addr()
	}
	pos := 0
	for it := 0; it < iters; it++ {
		for _, r := range body {
			for off := 0; off < r.length; off += 4 {
				tr.Append(memtrace.Record{
					Addr: base + uint64(r.off+off), Size: 4,
					Kind: memtrace.IFetch, Phase: loop.Phase,
					Layer: mf.entry.Layer, Func: mf.entry.Name,
				})
			}
		}
		if loop.Message == msgNone {
			continue
		}
		for l := 0; l < loop.LoadsPerIter; l++ {
			tr.Append(memtrace.Record{
				Addr: msgBase + uint64(pos%2000), Size: loop.LoadBytes,
				Kind: memtrace.Load, Phase: loop.Phase,
				Layer: mf.entry.Layer, Func: mf.entry.Name, Excluded: true,
			})
		}
		for s := 0; s < loop.StoresPerIter; s++ {
			tr.Append(memtrace.Record{
				Addr: msgBase + uint64(pos%2000), Size: loop.StoreBytes,
				Kind: memtrace.Store, Phase: loop.Phase,
				Layer: mf.entry.Layer, Func: mf.entry.Name, Excluded: true,
			})
		}
		step := loop.BytesPerIter
		if step == 0 {
			step = loop.LoadBytes
			if loop.StoreBytes > step {
				step = loop.StoreBytes
			}
		}
		pos += step
	}
}

// Funcs lists the model's function inventory (name, size, layer) for
// report rendering.
func (m *Model) Funcs() []FuncSpec {
	out := make([]FuncSpec, len(m.funcs))
	for i, mf := range m.funcs {
		out[i] = mf.entry.FuncSpec
	}
	return out
}

// MessageLen reports the configured message length.
func (m *Model) MessageLen() int { return m.cfg.MessageLen }

// MessageTraffic reports the modeled off-CPU IO volume of the message
// contents per receive+ACK iteration: bytes loaded and stored through the
// primary cache by the excluded data loops (mbuf fill, checksum, copy to
// user). Device (LANCE) buffer accesses are uncached I/O space and are
// not counted, matching §2.4's accounting: the message is "fetched twice
// into the primary cache and stored twice for an off-CPU IO volume of
// 2.2 KB in most cases".
func (m *Model) MessageTraffic() (loadBytes, storeBytes int) {
	for _, mf := range m.funcs {
		for _, loop := range mf.entry.Loops {
			if loop.Message == msgNone || loop.Message == msgDevice {
				continue
			}
			iters := loop.Iters
			if loop.BytesPerIter > 0 {
				iters = (m.cfg.MessageLen + loop.BytesPerIter - 1) / loop.BytesPerIter
			}
			loadBytes += iters * loop.LoadsPerIter * loop.LoadBytes
			storeBytes += iters * loop.StoresPerIter * loop.StoreBytes
		}
	}
	return
}
