package tcpmodel

import (
	"math"
	"testing"

	"ldlp/internal/memtrace"
)

func analyze(t *testing.T) (*Model, *memtrace.Trace, *memtrace.Analysis) {
	t.Helper()
	m := New(DefaultConfig())
	tr := m.Trace()
	return m, tr, memtrace.Analyze(tr, 32)
}

func within(got, want int, tol float64) bool {
	if want == 0 {
		return got == 0
	}
	slack := tol * float64(want)
	// One or two cache lines of quantization slack for tiny cells (some
	// Table 1 cells are a single 32-byte line).
	if slack < 48 {
		slack = 48
	}
	return math.Abs(float64(got)-float64(want)) <= slack
}

func TestTable1TotalsMatchPaper(t *testing.T) {
	_, _, a := analyze(t)
	code, ro, mut := PaperTable1Totals()
	if !within(a.Code.Bytes, code, 0.05) {
		t.Errorf("total code working set = %d, paper %d (±5%%)", a.Code.Bytes, code)
	}
	if !within(a.ReadOnly.Bytes, ro, 0.15) {
		t.Errorf("total read-only working set = %d, paper %d (±15%%)", a.ReadOnly.Bytes, ro)
	}
	if !within(a.Mutable.Bytes, mut, 0.15) {
		t.Errorf("total mutable working set = %d, paper %d (±15%%)", a.Mutable.Bytes, mut)
	}
}

func TestTable1PerLayerCalibration(t *testing.T) {
	_, _, a := analyze(t)
	got := map[string]memtrace.LayerSet{}
	for _, ls := range a.PerLayer {
		got[ls.Layer] = ls
	}
	for _, want := range PaperTable1() {
		g, ok := got[want.Layer]
		if !ok {
			t.Errorf("layer %q missing from analysis", want.Layer)
			continue
		}
		if !within(g.Code, want.Code, 0.15) {
			t.Errorf("%s code = %d, paper %d (±15%%)", want.Layer, g.Code, want.Code)
		}
		if !within(g.ReadOnly, want.ReadOnly, 0.30) {
			t.Errorf("%s read-only = %d, paper %d (±30%%)", want.Layer, g.ReadOnly, want.ReadOnly)
		}
		if !within(g.Mutable, want.Mutable, 0.30) {
			t.Errorf("%s mutable = %d, paper %d (±30%%)", want.Layer, g.Mutable, want.Mutable)
		}
	}
}

func TestHeadlineClaimCodeDwarfsMessage(t *testing.T) {
	// The paper's central §2 claim: the per-packet working set (~35 KB of
	// code+ro data) dwarfs both the message (552 bytes) and an 8 KB cache.
	m, _, a := analyze(t)
	ws := a.Code.Bytes + a.ReadOnly.Bytes
	if ws < 4*8192 {
		t.Errorf("code+ro working set = %d, want > 4x the 8KB cache", ws)
	}
	if ws < 30*m.MessageLen() {
		t.Errorf("working set %d not an order of magnitude above message %d", ws, m.MessageLen())
	}
}

func TestDilutionNearPaper(t *testing.T) {
	_, _, a := analyze(t)
	if d := a.Dilution(); d < 0.15 || d > 0.35 {
		t.Errorf("code dilution = %.3f, paper ≈ %.2f (accept 0.15–0.35)", d, PaperDilution)
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	m := New(DefaultConfig())
	tr := m.Trace()
	sweeps := memtrace.LineSweep(tr, []int{4, 8, 16, 64})
	paper := map[string]map[int]memtrace.LineSizeDelta{}
	for _, sw := range PaperTable3() {
		paper[sw.Class] = map[int]memtrace.LineSizeDelta{}
		for _, d := range sw.Deltas {
			paper[sw.Class][d.LineSize] = d
		}
	}
	for _, sw := range sweeps {
		for _, d := range sw.Deltas {
			want, ok := paper[sw.Class][d.LineSize]
			if !ok {
				continue // 4-byte data rows are N/A in the paper
			}
			// Signs must match, and magnitudes must be within 0.15
			// absolute or 40% relative (whichever is looser).
			checkDelta(t, sw.Class, d.LineSize, "bytes", d.BytesDelta, want.BytesDelta)
			checkDelta(t, sw.Class, d.LineSize, "lines", d.LinesDelta, want.LinesDelta)
		}
	}
}

func checkDelta(t *testing.T, class string, lineSize int, what string, got, want float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if got*want < 0 {
		t.Errorf("%s %dB %s delta = %+.2f, paper %+.2f (sign flip)", class, lineSize, what, got, want)
		return
	}
	absOK := math.Abs(got-want) <= 0.15
	relOK := math.Abs(got-want) <= 0.40*math.Abs(want)
	if !absOK && !relOK {
		t.Errorf("%s %dB %s delta = %+.2f, paper %+.2f", class, lineSize, what, got, want)
	}
}

func TestPhaseStructure(t *testing.T) {
	_, _, a := analyze(t)
	if len(a.Phases) != 3 {
		t.Fatalf("phases = %d, want 3", len(a.Phases))
	}
	entry, intr, exit := a.Phases[0], a.Phases[1], a.Phases[2]
	if entry.Name != "entry" || intr.Name != "pkt intr" || exit.Name != "exit" {
		t.Fatalf("phase names = %q %q %q", entry.Name, intr.Name, exit.Name)
	}
	// Figure 1's qualitative structure: entry is by far the smallest
	// phase, exit touches the most code (output path), pkt intr has by far
	// the most code references (device copy + checksum loops).
	if !(entry.CodeBytes < intr.CodeBytes && intr.CodeBytes < exit.CodeBytes) {
		t.Errorf("code bytes per phase = %d/%d/%d, want entry < pkt intr < exit",
			entry.CodeBytes, intr.CodeBytes, exit.CodeBytes)
	}
	if !(intr.CodeRefs > 3*exit.CodeRefs && exit.CodeRefs > 3*entry.CodeRefs) {
		t.Errorf("code refs per phase = %d/%d/%d, want pkt intr >> exit >> entry",
			entry.CodeRefs, intr.CodeRefs, exit.CodeRefs)
	}
	// Calibration against the printed margins (code only; the data margins
	// under-count relative to the paper because we only model data the
	// working-set tables describe — see EXPERIMENTS.md).
	for i, want := range PaperPhases() {
		got := a.Phases[i]
		if !within(got.CodeBytes, want.CodeBytes, 0.15) {
			t.Errorf("%s code bytes = %d, paper %d (±15%%)", want.Name, got.CodeBytes, want.CodeBytes)
		}
		if !within(got.CodeRefs, want.CodeRefs, 0.20) {
			t.Errorf("%s code refs = %d, paper %d (±20%%)", want.Name, got.CodeRefs, want.CodeRefs)
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := New(DefaultConfig()).Trace()
	b := New(DefaultConfig()).Trace()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestSeedChangesLayoutNotCalibration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	a := memtrace.Analyze(New(cfg).Trace(), 32)
	b := memtrace.Analyze(New(DefaultConfig()).Trace(), 32)
	if !within(a.Code.Bytes, b.Code.Bytes, 0.05) {
		t.Errorf("different seeds should yield similar totals: %d vs %d", a.Code.Bytes, b.Code.Bytes)
	}
}

func TestMessageLengthScalesLoopRefs(t *testing.T) {
	small := Config{MessageLen: 64, Seed: 1}
	big := Config{MessageLen: 1024, Seed: 1}
	as := memtrace.Analyze(New(small).Trace(), 32)
	ab := memtrace.Analyze(New(big).Trace(), 32)
	if !(ab.Phases[PhasePktIntr].CodeRefs > 2*as.Phases[PhasePktIntr].CodeRefs) {
		t.Errorf("pkt intr refs should scale with message length: 64B -> %d, 1024B -> %d",
			as.Phases[PhasePktIntr].CodeRefs, ab.Phases[PhasePktIntr].CodeRefs)
	}
	// Working set must NOT scale with message length: the loops refetch
	// the same code, and packet contents are excluded.
	if !within(ab.Code.Bytes, as.Code.Bytes, 0.02) {
		t.Errorf("working set should not scale with message length: %d vs %d",
			as.Code.Bytes, ab.Code.Bytes)
	}
}

func TestInventoryConsistency(t *testing.T) {
	layerSeen := map[string]bool{}
	for _, fe := range inventory() {
		if fe.Size <= 0 {
			t.Errorf("%s has non-positive size", fe.Name)
		}
		found := false
		for _, l := range PaperLayers {
			if fe.Layer == l {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has unknown layer %q", fe.Name, fe.Layer)
		}
		layerSeen[fe.Layer] = true
		// Every function needs one phase that executes its full touched
		// set, or the Table 1 union falls short.
		maxCover := 0.0
		for _, c := range fe.Cover {
			if c > maxCover {
				maxCover = c
			}
		}
		if maxCover != 1.0 {
			t.Errorf("%s max phase cover = %v, want 1.0", fe.Name, maxCover)
		}
		for _, lp := range fe.Loops {
			if fe.Cover[lp.Phase] <= 0 {
				t.Errorf("%s has a loop in phase %d it never executes in", fe.Name, lp.Phase)
			}
			if lp.BodyBytes <= 0 {
				t.Errorf("%s loop has no body", fe.Name)
			}
			if lp.BytesPerIter == 0 && lp.Iters == 0 {
				t.Errorf("%s loop has no iteration count", fe.Name)
			}
		}
	}
	for _, l := range PaperLayers {
		if !layerSeen[l] {
			t.Errorf("no functions modelled for layer %q", l)
		}
	}
}

func TestFigure1FunctionSizes(t *testing.T) {
	// The non-synthetic inventory must carry the exact byte sizes printed
	// in Figure 1.
	want := map[string]int{
		"in_cksum": 1104, "syscall": 1176, "trap": 2008, "microtime": 288,
		"spl0": 136, "netintr": 344, "setrunqueue": 176, "do_sir": 200,
		"interrupt": 184, "lestart": 1824, "leintr": 3264,
		"copyfrombuf_gap2": 240, "zerobuf_gap16": 184, "copytobuf_gap16": 208,
		"asic_intr": 392, "copytobuf_gap2": 256, "copyfrombuf_gap16": 208,
		"lewritereg": 216, "tc_3000_500_iointr": 848, "tcp_usrreq": 2352,
		"tcp_output": 4872, "tcp_input": 11872, "ipintr": 2648,
		"in_broadcast": 288, "arpresolve": 944, "ether_input": 2728,
		"ether_output": 3632, "sbcompress": 704, "sowakeup": 360,
		"sbappend": 160, "sbwait": 160, "soreceive": 5536, "m_adj": 376,
		"selwakeup": 456, "mi_switch": 520, "soo_read": 80, "read": 312,
		"wakeup": 488, "tsleep": 1096, "uiomove": 424, "free": 856,
		"ntohl": 64, "copyout": 132, "bcopy": 620, "idle": 68,
		"XentInt": 208, "pal_swpipl": 8, "malloc": 1608, "ntohs": 32,
		"bzero": 184, "cpu_switch": 460, "XentSys": 148, "rei": 320,
		"ip_output": 5120,
	}
	got := map[string]int{}
	for _, fe := range inventory() {
		if !fe.Synthetic {
			got[fe.Name] = fe.Size
		}
	}
	for name, size := range want {
		if name == "rei" || name == "ip_output" {
			// rei and ip_output are in Figure 1; ensure present below.
		}
		g, ok := got[name]
		if !ok {
			t.Errorf("Figure 1 function %s missing from inventory", name)
			continue
		}
		if g != size {
			t.Errorf("%s size = %d, Figure 1 says %d", name, g, size)
		}
	}
}

func TestFuncsAccessor(t *testing.T) {
	m := New(DefaultConfig())
	fs := m.Funcs()
	if len(fs) != len(inventory()) {
		t.Errorf("Funcs() returned %d entries, inventory has %d", len(fs), len(inventory()))
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero message length should panic")
		}
	}()
	New(Config{MessageLen: 0, Seed: 1})
}

func TestPaperConstantsSelfConsistent(t *testing.T) {
	// The printed read-only and mutable columns sum exactly to their
	// totals; the code column famously does not (30304 printed vs 30592
	// total). Pin both facts.
	var code, ro, mut int
	for _, row := range PaperTable1() {
		code += row.Code
		ro += row.ReadOnly
		mut += row.Mutable
	}
	wantCode, wantRO, wantMut := PaperTable1Totals()
	if ro != wantRO || mut != wantMut {
		t.Errorf("published data rows sum to %d/%d, totals say %d/%d", ro, mut, wantRO, wantMut)
	}
	if code != 30304 || wantCode != 30592 {
		t.Errorf("published code rows sum to %d (expected 30304) vs printed total %d (expected 30592)", code, wantCode)
	}
	if len(PhaseDescriptions) != 3 || len(PhaseNames) != 3 {
		t.Error("phase metadata must describe exactly three phases")
	}
}

func TestI386DensityShrinksWorkingSet(t *testing.T) {
	// §5.2: i386 networking code is ~45-55% smaller than Alpha code, and
	// copy routines shrink far more (block-move instructions), so the
	// same protocol has much better locality on the CISC machine.
	alpha := memtrace.Analyze(New(DefaultConfig()).Trace(), 32)
	i386 := memtrace.Analyze(New(I386Config()).Trace(), 32)
	ratio := float64(i386.Code.Bytes) / float64(alpha.Code.Bytes)
	if ratio < 0.40 || ratio > 0.65 {
		t.Errorf("i386/alpha code working set ratio = %.2f, want ≈0.55", ratio)
	}
	// Data is unchanged by code density.
	if !within(i386.ReadOnly.Bytes, alpha.ReadOnly.Bytes, 0.1) {
		t.Errorf("read-only data changed: %d vs %d", i386.ReadOnly.Bytes, alpha.ReadOnly.Bytes)
	}
	// The copy/checksum layer shrinks by much more than the average.
	get := func(a *memtrace.Analysis, layer string) int {
		for _, ls := range a.PerLayer {
			if ls.Layer == layer {
				return ls.Code
			}
		}
		return 0
	}
	copyRatio := float64(get(i386, "Copy, checksum")) / float64(get(alpha, "Copy, checksum"))
	if copyRatio > 0.35 {
		t.Errorf("copy layer ratio = %.2f, want well below the 0.55 average", copyRatio)
	}
}

func TestDensityStillExceedsSmallCache(t *testing.T) {
	// Even the dense i386 working set exceeds an 8 KB cache — §5.2's
	// point is "benefit less from LDLP", not "need no LDLP".
	i386 := memtrace.Analyze(New(I386Config()).Trace(), 32)
	if i386.Code.Bytes < 8192 {
		t.Errorf("i386 working set %d unexpectedly fits an 8KB cache", i386.Code.Bytes)
	}
}

func TestMessageTrafficMatchesSection24(t *testing.T) {
	// §2.4: message contents are fetched twice and stored twice — an
	// off-CPU IO volume of ≈2.2 KB for a 552-byte message — tiny next to
	// the ~35 KB of code+ro data. Our loops model loads (device read,
	// checksum, copy-to-user) and stores (mbuf fill, user fill, ACK out).
	m := New(DefaultConfig())
	loads, stores := m.MessageTraffic()
	total := loads + stores
	if total < 1800 || total > 3200 {
		t.Errorf("message IO = %d bytes (loads %d, stores %d), paper says ≈2.2KB",
			total, loads, stores)
	}
	a := memtrace.Analyze(m.Trace(), 32)
	if ws := a.Code.Bytes + a.ReadOnly.Bytes; ws < 8*total {
		t.Errorf("working set %d should dwarf message IO %d", ws, total)
	}
}
