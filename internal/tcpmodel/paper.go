// Package tcpmodel models the NetBSD/Alpha TCP receive & acknowledge path
// that the paper traces in §2, and regenerates the paper's measurement
// artifacts (Table 1, Table 2, Table 3, Figure 1) from a synthetic but
// structurally faithful memory-reference trace.
//
// The paper's apparatus was an in-kernel Alpha instruction simulator; its
// published outputs are (a) the function inventory with byte sizes printed
// beside Figure 1, (b) the per-layer working-set breakdown of Table 1,
// (c) the phase structure of Table 2, and (d) the line-size sensitivity of
// Table 3. We cannot run NetBSD/Alpha here, so the model inverts the
// published data: every function from Figure 1 (plus a handful of
// documented buffer-management and common-kernel functions the figure
// omits) is laid out in a simulated address space, given an executed-code
// coverage pattern whose density reproduces the paper's per-layer touched
// working sets and ≈25% cache dilution (§5.4), and replayed through the
// three phases of Table 2 to produce a reference trace. internal/memtrace
// then computes the tables exactly the way the paper did.
package tcpmodel

import "ldlp/internal/memtrace"

// PaperLayer names the ten Table 1 rows, in the paper's order.
var PaperLayers = []string{
	"Ethernet",
	"IP",
	"TCP",
	"Socket low",
	"Socket high",
	"Kernel entry/exit",
	"Process control",
	"Buffer mgmt",
	"Common",
	"Copy, checksum",
}

// PaperTable1 returns the published working-set breakdown (bytes at
// 32-byte cache-line granularity). The paper prints per-column totals of
// 30592 / 5088 / 3648; the read-only and mutable rows sum exactly to their
// totals, the code rows as printed sum to 30304 (the 288-byte discrepancy
// is in the original table).
func PaperTable1() []memtrace.LayerSet {
	return []memtrace.LayerSet{
		{Layer: "Ethernet", Code: 4480, ReadOnly: 864, Mutable: 672},
		{Layer: "IP", Code: 2784, ReadOnly: 480, Mutable: 128},
		{Layer: "TCP", Code: 3168, ReadOnly: 448, Mutable: 160},
		{Layer: "Socket low", Code: 5536, ReadOnly: 544, Mutable: 448},
		{Layer: "Socket high", Code: 608, ReadOnly: 32, Mutable: 160},
		{Layer: "Kernel entry/exit", Code: 1184, ReadOnly: 256, Mutable: 64},
		{Layer: "Process control", Code: 2208, ReadOnly: 1280, Mutable: 640},
		{Layer: "Buffer mgmt", Code: 5472, ReadOnly: 544, Mutable: 736},
		{Layer: "Common", Code: 1632, ReadOnly: 192, Mutable: 512},
		{Layer: "Copy, checksum", Code: 3232, ReadOnly: 448, Mutable: 128},
	}
}

// PaperTable1Totals returns the published column totals of Table 1.
func PaperTable1Totals() (code, readonly, mutable int) { return 30592, 5088, 3648 }

// PaperPhases returns the Figure 1 margin totals for the three phases of
// Table 2 (distinct bytes at line granularity, and reference counts).
func PaperPhases() []memtrace.PhaseSummary {
	return []memtrace.PhaseSummary{
		{
			Name:      "entry",
			CodeBytes: 3008, CodeRefs: 564,
			ReadBytes: 1856, ReadRefs: 121,
			WriteBytes: 1056, WriteRefs: 89,
		},
		{
			Name:      "pkt intr",
			CodeBytes: 13664, CodeRefs: 43138,
			ReadBytes: 18496, ReadRefs: 6251,
			WriteBytes: 6848, WriteRefs: 1585,
		},
		{
			Name:      "exit",
			CodeBytes: 18240, CodeRefs: 10518,
			ReadBytes: 10752, ReadRefs: 2103,
			WriteBytes: 7328, WriteRefs: 1089,
		},
	}
}

// PhaseDescription reproduces Table 2's prose for each phase.
var PhaseDescriptions = []struct {
	Name, Description string
}{
	{"entry", "Process makes read system call. Call is dispatched to socket layer. No data is available in socket receive buffer, so process sleeps."},
	{"pkt intr", "Message arrives on Ethernet and triggers device interrupt. An mbuf is allocated, the message is copied from device memory into the mbufs, and the mbuf is placed on a received message queue. Further processing happens at a lower interrupt level: the message is vectored through the IP layer, then to TCP. TCP uses its fast path, the single-entry PCB cache hits, the checksum is computed, PCB sequence/timer fields are updated, and the contents are delivered to the socket layer, which appends the data to the receive buffer and wakes the sleeping process."},
	{"exit", "The process wakes up. The socket layer finds data in the receive buffer and copies it into the process's address space. It calls the TCP layer to send an ACK, and returns from the system call."},
}

// PaperTable3 returns the published line-size sweep: per class, the
// percentage change in working-set bytes and lines at each line size
// relative to the 32-byte baseline. The 4-byte data rows are N/A in the
// paper (the Alpha's word size is 8 bytes) and omitted here.
func PaperTable3() []memtrace.ClassSweep {
	return []memtrace.ClassSweep{
		{Class: "Code", Deltas: []memtrace.LineSizeDelta{
			{LineSize: 64, BytesDelta: 0.17, LinesDelta: -0.41},
			{LineSize: 32, BytesDelta: 0, LinesDelta: 0},
			{LineSize: 16, BytesDelta: -0.13, LinesDelta: 0.73},
			{LineSize: 8, BytesDelta: -0.20, LinesDelta: 2.16},
			{LineSize: 4, BytesDelta: -0.25, LinesDelta: 5.00},
		}},
		{Class: "Read-only Data", Deltas: []memtrace.LineSizeDelta{
			{LineSize: 64, BytesDelta: 0.44, LinesDelta: -0.28},
			{LineSize: 32, BytesDelta: 0, LinesDelta: 0},
			{LineSize: 16, BytesDelta: -0.31, LinesDelta: 0.38},
			{LineSize: 8, BytesDelta: -0.55, LinesDelta: 0.81},
		}},
		{Class: "Mutable Data", Deltas: []memtrace.LineSizeDelta{
			{LineSize: 64, BytesDelta: 0.55, LinesDelta: -0.22},
			{LineSize: 32, BytesDelta: 0, LinesDelta: 0},
			{LineSize: 16, BytesDelta: -0.38, LinesDelta: 0.23},
			{LineSize: 8, BytesDelta: -0.56, LinesDelta: 0.75},
		}},
	}
}

// PaperDilution is §5.4's conclusion: about 25% of instruction bytes
// fetched into the cache are never executed at 32-byte lines.
const PaperDilution = 0.25
