package tcpmodel

// Phase indices for the three Table 2 phases.
const (
	PhaseEntry = iota
	PhasePktIntr
	PhaseExit
	numPhases
)

// PhaseNames names the phases in trace order.
var PhaseNames = []string{"entry", "pkt intr", "exit"}

// LoopSpec models a data loop inside a function (checksum, copy, device
// buffer shuffles): a small code body re-executed once per unit of message
// data, optionally touching message bytes (which the paper's working-set
// accounting excludes).
type LoopSpec struct {
	Phase int
	// BytesPerIter is how many message bytes one iteration consumes; the
	// iteration count is ceil(messageLen/BytesPerIter). If zero, Iters is
	// used directly.
	BytesPerIter int
	Iters        int
	// Message selects which buffer the loop's excluded data references
	// touch (see msgBuffer); -1 for none.
	Message int
	// BodyBytes is the size of the loop body; its instructions are
	// re-fetched every iteration (refs go up, working set does not).
	BodyBytes int
	// LoadsPerIter/StoresPerIter are excluded message-data references
	// emitted each iteration, LoadBytes/StoreBytes wide each.
	LoadsPerIter, StoresPerIter int
	LoadBytes, StoreBytes       int
}

// Message buffer identifiers for LoopSpec.Message.
const (
	msgNone   = -1
	msgDevice = iota - 1 // LANCE receive buffer
	msgMbuf              // mbuf data area
	msgUser              // user address space destination
)

// FuncSpec describes one kernel function in the model: its Figure 1 size,
// Table 1 layer, and how much of its *touched* code each phase executes
// (a prefix fraction; the phase with fraction 1.0 executes every touched
// byte, smaller fractions model partial paths like soreceive's
// block-then-sleep entry visit).
type FuncSpec struct {
	Name  string
	Size  int
	Layer string
	Cover [numPhases]float64
	Loops []LoopSpec
}

// synthetic marks functions that do not appear in Figure 1's plot but are
// part of the measured working set (the figure only plots functions with
// visible activity; Table 1's Buffer mgmt and Common rows are larger than
// the sum of plotted functions). Sizes are typical of their 4.4BSD
// counterparts compiled for the Alpha.
const synthetic = true

type funcEntry struct {
	FuncSpec
	Synthetic bool
}

// inventory is the full function table. Sizes of non-synthetic entries are
// exactly the byte counts printed beside Figure 1.
func inventory() []funcEntry {
	f := func(name string, size int, layer string, cover [numPhases]float64, loops ...LoopSpec) funcEntry {
		return funcEntry{FuncSpec: FuncSpec{Name: name, Size: size, Layer: layer, Cover: cover, Loops: loops}}
	}
	syn := func(name string, size int, layer string, cover [numPhases]float64, loops ...LoopSpec) funcEntry {
		e := f(name, size, layer, cover, loops...)
		e.Synthetic = true
		return e
	}
	e := func(entry, intr, exit float64) [numPhases]float64 {
		return [numPhases]float64{entry, intr, exit}
	}

	return []funcEntry{
		// --- Ethernet: LANCE driver, TURBOchannel glue, ethernet I/O ---
		f("leintr", 3264, "Ethernet", e(0, 1, 0),
			LoopSpec{Phase: PhasePktIntr, Iters: 48, Message: msgDevice, BodyBytes: 128,
				LoadsPerIter: 1, LoadBytes: 4}),
		f("lestart", 1824, "Ethernet", e(0, 0, 1),
			LoopSpec{Phase: PhaseExit, Iters: 32, Message: msgDevice, BodyBytes: 96,
				StoresPerIter: 1, StoreBytes: 4}), // descriptor ring setup
		f("lewritereg", 216, "Ethernet", e(0, 0.6, 1)),
		f("asic_intr", 392, "Ethernet", e(0, 1, 0)),
		f("tc_3000_500_iointr", 848, "Ethernet", e(0, 1, 0)),
		f("ether_input", 2728, "Ethernet", e(0, 1, 0)),
		f("ether_output", 3632, "Ethernet", e(0, 0, 1)),
		f("arpresolve", 944, "Ethernet", e(0, 0, 1)),
		f("in_broadcast", 288, "Ethernet", e(0, 0, 1)),

		// --- IP ---
		f("ipintr", 2648, "IP", e(0, 1, 0)),
		f("ip_output", 5120, "IP", e(0, 0, 1)),

		// --- TCP (fast path: a small fraction of a large body) ---
		f("tcp_input", 11872, "TCP", e(0, 1, 0),
			LoopSpec{Phase: PhasePktIntr, Iters: 10, Message: msgNone, BodyBytes: 80}), // option/reass guards
		f("tcp_output", 4872, "TCP", e(0, 0, 1)),
		f("tcp_usrreq", 2352, "TCP", e(0, 0, 1)),

		// --- Socket low: soreceive and the sb machinery ---
		f("soreceive", 5536, "Socket low", e(0.2, 0, 1)),
		f("sbappend", 160, "Socket low", e(0, 1, 0)),
		f("sbcompress", 704, "Socket low", e(0, 1, 0)),
		f("sbwait", 160, "Socket low", e(1, 0, 0)),
		f("sowakeup", 360, "Socket low", e(0, 1, 0)),

		// --- Socket high: file-descriptor dispatch ---
		f("soo_read", 80, "Socket high", e(1, 0, 0.5)),
		f("read", 312, "Socket high", e(1, 0, 0.4)),
		f("selwakeup", 456, "Socket high", e(0, 1, 0)),

		// --- Kernel entry/exit ---
		f("XentSys", 148, "Kernel entry/exit", e(1, 0, 0.6)),
		f("XentInt", 208, "Kernel entry/exit", e(0, 1, 0)),
		f("rei", 320, "Kernel entry/exit", e(0.4, 1, 0.7)),
		f("syscall", 1176, "Kernel entry/exit", e(1, 0, 0.5)),
		f("trap", 2008, "Kernel entry/exit", e(0, 0, 1)), // AST delivery on return to user
		f("pal_swpipl", 8, "Kernel entry/exit", e(1, 1, 1)),
		f("spl0", 136, "Kernel entry/exit", e(0, 1, 0)),

		// --- Process control ---
		f("tsleep", 1096, "Process control", e(1, 0, 0.6)),
		f("wakeup", 488, "Process control", e(0, 1, 0)),
		f("mi_switch", 520, "Process control", e(1, 0, 0.7)),
		f("cpu_switch", 460, "Process control", e(1, 0, 0.8)),
		f("setrunqueue", 176, "Process control", e(0, 1, 0)),
		f("idle", 68, "Process control", e(1, 0, 0)),
		f("netintr", 344, "Process control", e(0, 1, 0)),
		f("do_sir", 200, "Process control", e(0, 1, 0)),
		f("interrupt", 184, "Process control", e(0, 1, 0)),

		// --- Buffer mgmt: malloc/free plus the mbuf machinery. Figure 1
		// plots only malloc, free and m_adj; Table 1's 5472-byte row
		// includes the rest of the mbuf layer, modelled here. ---
		f("malloc", 1608, "Buffer mgmt", e(0, 1, 0.3)),
		f("free", 856, "Buffer mgmt", e(0, 0.5, 1)),
		f("m_adj", 376, "Buffer mgmt", e(0, 0, 1)),
		syn("m_get", 512, "Buffer mgmt", e(0, 1, 0)),
		syn("m_gethdr", 400, "Buffer mgmt", e(0, 1, 0)),
		syn("m_freem", 448, "Buffer mgmt", e(0, 0, 1)),
		syn("m_pullup", 640, "Buffer mgmt", e(0, 1, 0)),
		syn("m_copym", 560, "Buffer mgmt", e(0, 0, 1)),
		syn("m_copydata", 512, "Buffer mgmt", e(0, 0, 1)),
		syn("mclget", 360, "Buffer mgmt", e(0, 1, 0)),
		syn("m_prepend", 288, "Buffer mgmt", e(0, 0, 1)),

		// --- Common: helpers shared by several layers ---
		f("microtime", 288, "Common", e(0, 1, 1)),
		f("ntohs", 32, "Common", e(0, 1, 0)),
		f("ntohl", 64, "Common", e(0, 1, 0.5)),
		f("bzero", 184, "Common", e(0, 1, 0)),
		syn("insque", 96, "Common", e(0, 1, 0)),
		syn("remque", 96, "Common", e(0, 1, 0)),
		syn("splx_misc", 224, "Common", e(1, 1, 1)),
		syn("log_guard", 320, "Common", e(0, 0, 1)),
		syn("timeout", 432, "Common", e(0, 0, 1)),
		syn("untimeout", 336, "Common", e(0, 1, 0)),

		// --- Copy, checksum: the data loops. The LANCE buffer has a
		// gap2/gap16 layout (16-bit wide device memory), which is why the
		// driver copies are so reference-heavy in Figure 1's middle
		// column. ---
		f("in_cksum", 1104, "Copy, checksum", e(0, 1, 0),
			LoopSpec{Phase: PhasePktIntr, BytesPerIter: 4, Message: msgMbuf, BodyBytes: 96,
				LoadsPerIter: 1, LoadBytes: 4}),
		f("bcopy", 620, "Copy, checksum", e(0, 1, 0.9),
			LoopSpec{Phase: PhasePktIntr, BytesPerIter: 4, Message: msgMbuf, BodyBytes: 64,
				LoadsPerIter: 1, StoresPerIter: 1, LoadBytes: 4, StoreBytes: 4}),
		f("copyout", 132, "Copy, checksum", e(0, 0, 1)),
		f("uiomove", 424, "Copy, checksum", e(0, 0, 1),
			LoopSpec{Phase: PhaseExit, BytesPerIter: 8, Message: msgUser, BodyBytes: 80,
				LoadsPerIter: 1, StoresPerIter: 1, LoadBytes: 8, StoreBytes: 8}),
		f("copyfrombuf_gap2", 240, "Copy, checksum", e(0, 1, 0),
			// The pre-BWX Alpha has no 16-bit loads: every halfword from
			// gap2 LANCE memory costs a load/extract/merge sequence, which
			// is why this loop dominates Figure 1's middle-column refs.
			LoopSpec{Phase: PhasePktIntr, BytesPerIter: 1, Message: msgDevice, BodyBytes: 240,
				LoadsPerIter: 2, StoresPerIter: 1, LoadBytes: 1, StoreBytes: 1}),
		f("copyfrombuf_gap16", 208, "Copy, checksum", e(0, 1, 0),
			LoopSpec{Phase: PhasePktIntr, Iters: 8, Message: msgDevice, BodyBytes: 64,
				LoadsPerIter: 2, LoadBytes: 16}),
		f("copytobuf_gap2", 256, "Copy, checksum", e(0, 0, 1),
			// 54-byte ACK frame written byte-at-a-time into gap2 memory.
			LoopSpec{Phase: PhaseExit, Iters: 54, Message: msgDevice, BodyBytes: 240,
				LoadsPerIter: 1, StoresPerIter: 1, LoadBytes: 1, StoreBytes: 1}),
		f("copytobuf_gap16", 208, "Copy, checksum", e(0, 0, 1),
			LoopSpec{Phase: PhaseExit, Iters: 4, Message: msgDevice, BodyBytes: 64,
				StoresPerIter: 1, StoreBytes: 16}),
		f("zerobuf_gap16", 184, "Copy, checksum", e(0, 0, 1),
			LoopSpec{Phase: PhaseExit, Iters: 28, Message: msgDevice, BodyBytes: 48,
				StoresPerIter: 1, StoreBytes: 16}),
	}
}

// dataSpec describes one layer's data-object population for a class:
// scattered small objects whose line-granular total is calibrated to the
// Table 1 cell.
type dataSpec struct {
	Layer string
	// ROTarget/MutTarget are Table 1 cells in bytes (32-byte lines).
	ROTarget, MutTarget int
}

// dataSpecs returns per-layer data calibration targets (from Table 1).
func dataSpecs() []dataSpec {
	specs := make([]dataSpec, 0, len(PaperLayers))
	for _, row := range PaperTable1() {
		specs = append(specs, dataSpec{Layer: row.Layer, ROTarget: row.ReadOnly, MutTarget: row.Mutable})
	}
	return specs
}
