// Package cache implements the processor cache model used throughout the
// reproduction: set-associative (including direct-mapped) caches with
// configurable capacity, line size and read-miss penalty.
//
// The paper's synthetic evaluation (§4) models 8 KB direct-mapped primary
// instruction and data caches with 32-byte lines and a 20-cycle read-miss
// stall on a 100 MHz processor; §5.1's checksum experiment needs explicit
// cold (flushed) and warm starts; Table 3 sweeps the line size. All of that
// is expressible with this package.
package cache

import "fmt"

// Config describes one cache.
type Config struct {
	// Size is the total capacity in bytes. Must be a positive multiple of
	// LineSize*Assoc.
	Size int
	// LineSize is the line (block) size in bytes. Must be a power of two.
	LineSize int
	// Assoc is the set associativity. 0 is treated as 1 (direct-mapped).
	// Assoc == Size/LineSize yields a fully associative cache.
	Assoc int
	// MissPenalty is the stall, in CPU cycles, charged for each miss.
	// (The paper charges read misses; the reference streams we simulate
	// only issue reads for code and loads, and the model charges stores
	// the same way main memory write-allocate would.)
	MissPenalty int
	// PrefetchNext, when set, fills line+1 alongside every demand miss —
	// the sequential next-line instruction prefetch §1.2 alludes to
	// ("some processors can prefetch instructions from the second level
	// cache to hide some of the cache miss cost"). Prefetched fills are
	// free of stall cycles but do occupy (and may evict) cache lines.
	PrefetchNext bool
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a positive power of two", c.LineSize)
	}
	assoc := c.Assoc
	if assoc == 0 {
		assoc = 1
	}
	if assoc < 0 {
		return fmt.Errorf("cache: negative associativity %d", assoc)
	}
	if c.Size <= 0 || c.Size%(c.LineSize*assoc) != 0 {
		return fmt.Errorf("cache: size %d is not a positive multiple of line*assoc = %d", c.Size, c.LineSize*assoc)
	}
	if c.MissPenalty < 0 {
		return fmt.Errorf("cache: negative miss penalty %d", c.MissPenalty)
	}
	return nil
}

// Lines reports the total number of lines the cache can hold.
func (c Config) Lines() int { return c.Size / c.LineSize }

// Stats counts cache traffic.
type Stats struct {
	Accesses int64
	Hits     int64
	Misses   int64
	// StallCycles is Misses * MissPenalty, tracked so callers do not need
	// to know the penalty.
	StallCycles int64
	// Prefetches counts next-line fills (PrefetchNext only).
	Prefetches int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.StallCycles += other.StallCycles
	s.Prefetches += other.Prefetches
}

// MissRate reports Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement. The zero
// value is not usable; construct with New.
type Cache struct {
	cfg       Config
	assoc     int
	nsets     int
	lineShift uint
	setMask   uint64

	// Per (set, way) state, flattened: index = set*assoc + way.
	tags    []uint64
	valid   []bool
	lastUse []uint64

	tick  uint64
	stats Stats
}

// New builds a cache. It panics if cfg is invalid: configurations are
// constants of an experiment, so an invalid one is a programming error.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = 1
	}
	nsets := cfg.Size / (cfg.LineSize * assoc)
	shift := uint(0)
	for 1<<shift != cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		assoc:     assoc,
		nsets:     nsets,
		lineShift: shift,
		setMask:   uint64(nsets - 1),
		tags:      make([]uint64, nsets*assoc),
		valid:     make([]bool, nsets*assoc),
		lastUse:   make([]uint64, nsets*assoc),
	}
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Access references one byte address and reports whether it hit. Misses
// fill the line, evicting the LRU way if the set is full.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.stats.Accesses++
	line := addr >> c.lineShift
	var set uint64
	if c.nsets > 1 {
		set = line & c.setMask
	}
	base := int(set) * c.assoc

	if c.assoc == 1 { // direct-mapped fast path
		if c.valid[base] && c.tags[base] == line {
			c.stats.Hits++
			return true
		}
		c.valid[base] = true
		c.tags[base] = line
		c.stats.Misses++
		c.stats.StallCycles += int64(c.cfg.MissPenalty)
		if c.cfg.PrefetchNext {
			c.fill(line + 1)
		}
		return false
	}

	victim, victimUse := -1, ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] {
			if c.tags[i] == line {
				c.stats.Hits++
				c.lastUse[i] = c.tick
				return true
			}
			if c.lastUse[i] < victimUse {
				victim, victimUse = i, c.lastUse[i]
			}
		} else if victimUse != 0 || victim == -1 {
			// An invalid way is always the preferred victim.
			victim, victimUse = i, 0
		}
	}
	c.valid[victim] = true
	c.tags[victim] = line
	c.lastUse[victim] = c.tick
	c.stats.Misses++
	c.stats.StallCycles += int64(c.cfg.MissPenalty)
	if c.cfg.PrefetchNext {
		c.fill(line + 1)
	}
	return false
}

// fill inserts a line without charging an access or a stall (prefetch).
func (c *Cache) fill(line uint64) {
	var set uint64
	if c.nsets > 1 {
		set = line & c.setMask
	}
	base := int(set) * c.assoc
	victim, victimUse := base, ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] {
			if c.tags[i] == line {
				return // already resident
			}
			if c.lastUse[i] < victimUse {
				victim, victimUse = i, c.lastUse[i]
			}
		} else {
			victim, victimUse = i, 0
		}
	}
	c.valid[victim] = true
	c.tags[victim] = line
	c.lastUse[victim] = c.tick
	c.stats.Prefetches++
}

// AccessRange references every line overlapping [addr, addr+n) in ascending
// order and reports the number of misses. n <= 0 touches nothing.
func (c *Cache) AccessRange(addr uint64, n int) (misses int) {
	if n <= 0 {
		return 0
	}
	first := addr >> c.lineShift
	last := (addr + uint64(n) - 1) >> c.lineShift
	for line := first; line <= last; line++ {
		if !c.Access(line << c.lineShift) {
			misses++
		}
	}
	return misses
}

// Probe reports whether addr would hit, without changing cache state or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	var set uint64
	if c.nsets > 1 {
		set = line & c.setMask
	}
	base := int(set) * c.assoc
	for w := 0; w < c.assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Flush invalidates every line, modelling a cold cache. Statistics are
// preserved.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// ResetStats clears the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ValidLines reports how many lines currently hold data; it never exceeds
// Config().Lines().
func (c *Cache) ValidLines() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
