package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func dm8k() *Cache {
	return New(Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 20})
}

func TestColdMissThenHit(t *testing.T) {
	c := dm8k()
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x101f) {
		t.Error("same 32-byte line should hit")
	}
	if c.Access(0x1020) {
		t.Error("next line should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 4/2/2", s)
	}
	if s.StallCycles != 40 {
		t.Errorf("stall cycles = %d, want 40", s.StallCycles)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := dm8k()
	// Two addresses 8 KB apart map to the same set in an 8 KB direct-mapped
	// cache and must evict each other.
	c.Access(0)
	c.Access(8192)
	if c.Access(0) {
		t.Error("address 0 should have been evicted by its conflict")
	}
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	c := New(Config{Size: 8192, LineSize: 32, Assoc: 2, MissPenalty: 20})
	// In a 2-way cache the same two lines coexist: sets = 8192/(32*2) = 128,
	// so addresses 0 and 128*32 = 4096 share a set.
	c.Access(0)
	c.Access(4096)
	if !c.Access(0) || !c.Access(4096) {
		t.Error("2-way cache should hold both conflicting lines")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(Config{Size: 128, LineSize: 32, Assoc: 4, MissPenalty: 1})
	// Single set of 4 ways. Fill with lines A,B,C,D then touch A: B is LRU.
	addrs := []uint64{0, 128, 256, 384}
	for _, a := range addrs {
		c.Access(a)
	}
	c.Access(0)   // A most recent
	c.Access(512) // evicts B (line 128)
	if !c.Access(0) {
		t.Error("A should still be resident")
	}
	if c.Probe(128) {
		t.Error("B should have been evicted as LRU")
	}
	if !c.Probe(256) || !c.Probe(384) || !c.Probe(512) {
		t.Error("C, D, E should be resident")
	}
}

func TestFlushColdStart(t *testing.T) {
	c := dm8k()
	c.Access(64)
	c.Flush()
	if c.Probe(64) {
		t.Error("flushed line should not be resident")
	}
	if c.Access(64) {
		t.Error("access after flush should miss")
	}
	if got := c.Stats().Misses; got != 2 {
		t.Errorf("misses = %d, want 2 (stats survive flush)", got)
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	c := dm8k()
	before := c.Stats()
	if c.Probe(0xdead0) {
		t.Error("probe of empty cache should report miss")
	}
	if c.Stats() != before {
		t.Error("probe must not change statistics")
	}
	c.Access(0xdead0)
	if !c.Probe(0xdead0) {
		t.Error("probe should see resident line")
	}
}

func TestAccessRange(t *testing.T) {
	c := dm8k()
	// 100 bytes starting mid-line spans ceil((4+100)/32) = 4 lines.
	if m := c.AccessRange(28, 100); m != 4 {
		t.Errorf("cold range misses = %d, want 4", m)
	}
	if m := c.AccessRange(28, 100); m != 0 {
		t.Errorf("warm range misses = %d, want 0", m)
	}
	if m := c.AccessRange(0, 0); m != 0 {
		t.Errorf("empty range misses = %d, want 0", m)
	}
	if m := c.AccessRange(0, -5); m != 0 {
		t.Errorf("negative range misses = %d, want 0", m)
	}
}

func TestAccessRangeSingleByte(t *testing.T) {
	c := dm8k()
	if m := c.AccessRange(31, 1); m != 1 {
		t.Errorf("single byte range misses = %d, want 1", m)
	}
	if m := c.AccessRange(32, 1); m != 1 {
		t.Errorf("adjacent line misses = %d, want 1", m)
	}
}

func TestValidatonErrors(t *testing.T) {
	bad := []Config{
		{Size: 8192, LineSize: 0},
		{Size: 8192, LineSize: 33},
		{Size: 0, LineSize: 32},
		{Size: 100, LineSize: 32},
		{Size: 8192, LineSize: 32, Assoc: -1},
		{Size: 8192, LineSize: 32, MissPenalty: -1},
		{Size: 8192, LineSize: 32, Assoc: 3},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
	good := Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 20}
	if err := good.Validate(); err != nil {
		t.Errorf("config %+v should be valid: %v", good, err)
	}
	if good.Lines() != 256 {
		t.Errorf("Lines() = %d, want 256", good.Lines())
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{Size: 7, LineSize: 32})
}

func TestStatsAddAndMissRate(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4, StallCycles: 80}
	b := Stats{Accesses: 10, Hits: 10}
	a.Add(b)
	if a.Accesses != 20 || a.Hits != 16 || a.Misses != 4 {
		t.Errorf("after Add: %+v", a)
	}
	if got := a.MissRate(); got != 0.2 {
		t.Errorf("MissRate = %v, want 0.2", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
}

// Property: hits + misses == accesses, and the number of valid lines never
// exceeds the capacity, across random access streams and geometries.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64, sizeSel, lineSel, assocSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lines := []int{16, 32, 64}[int(lineSel)%3]
		assoc := []int{1, 2, 4}[int(assocSel)%3]
		size := []int{1, 2, 8}[int(sizeSel)%3] * 1024 * assoc
		c := New(Config{Size: size, LineSize: lines, Assoc: assoc, MissPenalty: 10})
		for i := 0; i < 2000; i++ {
			c.Access(uint64(rng.Intn(1 << 18)))
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses &&
			c.ValidLines() <= c.Config().Lines() &&
			s.StallCycles == s.Misses*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: a direct-mapped cache behaves identically to a 1-way
// set-associative cache on any access stream (they are the same machine;
// this pins the fast path against the general path).
func TestDirectMappedEqualsOneWay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build the general-path cache as 2-way with doubled size but force
		// identical set mapping by comparing against two independent runs
		// of the fast path — simpler: compare Access results for assoc=1
		// configured twice (both exercise the same fast path) plus verify
		// against a reference map-of-sets model.
		c := New(Config{Size: 4096, LineSize: 32, Assoc: 1, MissPenalty: 1})
		ref := make(map[uint64]uint64) // set -> resident line
		nsets := uint64(4096 / 32)
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(1 << 16))
			line := addr >> 5
			set := line % nsets
			wantHit := ref[set] == line+1
			ref[set] = line + 1
			if c.Access(addr) != wantHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: a fully associative LRU cache of N lines, accessed with a
// cyclic stream of exactly N distinct lines, hits forever after the first
// pass; with N+1 distinct lines it misses forever (the classic LRU worst
// case). This pins true-LRU behaviour.
func TestLRUCyclicStreams(t *testing.T) {
	const nlines = 8
	full := func(distinct int) (coldMisses, warmMisses int) {
		c := New(Config{Size: nlines * 32, LineSize: 32, Assoc: nlines, MissPenalty: 1})
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < distinct; i++ {
				hit := c.Access(uint64(i * 32))
				if !hit {
					if pass == 0 {
						coldMisses++
					} else {
						warmMisses++
					}
				}
			}
		}
		return
	}
	if cold, warm := full(nlines); cold != nlines || warm != 0 {
		t.Errorf("N-line cycle: cold=%d warm=%d, want %d/0", cold, warm, nlines)
	}
	if _, warm := full(nlines + 1); warm != 3*(nlines+1) {
		t.Errorf("N+1-line cycle: warm misses = %d, want %d (LRU thrashes)", warm, 3*(nlines+1))
	}
}

func BenchmarkAccessDirectMapped(b *testing.B) {
	c := dm8k()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*32) & 0xffff)
	}
}

func BenchmarkAccessFourWay(b *testing.B) {
	c := New(Config{Size: 8192, LineSize: 32, Assoc: 4, MissPenalty: 20})
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*32) & 0xffff)
	}
}

func TestPrefetchNextHalvesSequentialMisses(t *testing.T) {
	plain := New(Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 20})
	pf := New(Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 20, PrefetchNext: true})
	// Sequential sweep through 6 KB of cold code.
	plain.AccessRange(0, 6144)
	pf.AccessRange(0, 6144)
	pm, fm := plain.Stats().Misses, pf.Stats().Misses
	if pm != 192 {
		t.Fatalf("plain misses = %d, want 192", pm)
	}
	if fm != 96 {
		t.Errorf("prefetch misses = %d, want 96 (every other line prefetched)", fm)
	}
	if pf.Stats().Prefetches == 0 {
		t.Error("no prefetches recorded")
	}
}

func TestPrefetchDoesNotChargeStalls(t *testing.T) {
	pf := New(Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 20, PrefetchNext: true})
	pf.AccessRange(0, 640)
	s := pf.Stats()
	if s.StallCycles != s.Misses*20 {
		t.Errorf("stalls %d != misses %d x 20 (prefetch fills must be free)", s.StallCycles, s.Misses)
	}
}

func TestPrefetchHonorsCapacity(t *testing.T) {
	pf := New(Config{Size: 256, LineSize: 32, Assoc: 8, MissPenalty: 1, PrefetchNext: true})
	for i := 0; i < 100; i++ {
		pf.Access(uint64(i * 32))
	}
	if pf.ValidLines() > pf.Config().Lines() {
		t.Errorf("prefetch overfilled the cache: %d lines", pf.ValidLines())
	}
}

func TestPrefetchAssociativePath(t *testing.T) {
	pf := New(Config{Size: 8192, LineSize: 32, Assoc: 2, MissPenalty: 20, PrefetchNext: true})
	pf.Access(0) // miss, prefetches line 1
	if !pf.Probe(32) {
		t.Error("line 1 should have been prefetched")
	}
	if !pf.Access(32) {
		t.Error("prefetched line should hit")
	}
}
