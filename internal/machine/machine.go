// Package machine provides the synthetic machine model underlying the
// paper's §4 evaluation and §5.1 checksum experiment: a CPU with split
// primary caches, code/data segments placed in a simulated address space
// (including the random placements the paper averages over), and cycle
// accounting that separates instruction-issue cycles from memory stalls.
//
// The model is the one the paper describes: a 100 MHz processor whose every
// read cache miss stalls it for a fixed number of cycles, in front of 8 KB
// direct-mapped primary instruction and data caches with 32-byte lines.
// Nothing architectural beyond that is simulated — the paper's results
// depend only on the reference stream and the cache geometry.
package machine

import (
	"fmt"
	"math/rand"

	"ldlp/internal/cache"
)

// Class labels what a segment holds. The distinction matters for analysis
// (Table 1 separates code, read-only data and mutable data) and for routing
// references to the right cache.
type Class int

const (
	// Code is instruction bytes, fetched through the I-cache.
	Code Class = iota
	// ReadOnly is constant data, loaded through the D-cache.
	ReadOnly
	// Mutable is read-write data, loaded/stored through the D-cache.
	Mutable
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case Code:
		return "code"
	case ReadOnly:
		return "read-only"
	case Mutable:
		return "mutable"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Segment is a contiguous region of the simulated address space: a layer's
// code, a function, a data structure, or a message buffer. Segments are
// created unplaced; a Layout assigns addresses.
type Segment struct {
	Name  string
	Class Class
	Size  int

	addr   uint64
	placed bool
}

// NewSegment creates an unplaced segment. Size must be positive.
func NewSegment(name string, class Class, size int) *Segment {
	if size <= 0 {
		panic(fmt.Sprintf("machine: segment %q has non-positive size %d", name, size))
	}
	return &Segment{Name: name, Class: class, Size: size}
}

// Addr returns the segment's base address. It panics if the segment has not
// been placed; referencing an unplaced segment is a programming error.
func (s *Segment) Addr() uint64 {
	if !s.placed {
		panic(fmt.Sprintf("machine: segment %q referenced before placement", s.Name))
	}
	return s.addr
}

// Placed reports whether a Layout has assigned this segment an address.
func (s *Segment) Placed() bool { return s.placed }

// SetAddr places the segment explicitly. Most callers should use a Layout.
func (s *Segment) SetAddr(addr uint64) {
	s.addr = addr
	s.placed = true
}

// Layout places segments in the simulated address space.
//
// For a direct-mapped cache the only thing that matters about a placement
// is each segment's base address modulo the cache size. The paper presents
// averages over 100 runs, "each with a different random placement in
// memory", to insulate the results from layout effects. PlaceRandom
// reproduces that: each segment gets its own generous address-space slot
// (so segments can never overlap) plus a random line-aligned offset that
// randomizes which cache sets it occupies.
type Layout struct {
	lineSize int
	next     uint64
	slot     uint64
}

// NewLayout creates a layout that aligns placements to lineSize (which must
// be a power of two).
func NewLayout(lineSize int) *Layout {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("machine: layout line size %d is not a power of two", lineSize))
	}
	return &Layout{lineSize: lineSize, slot: 1 << 24}
}

// PlaceSequential places segments back to back, each aligned to the line
// size — a dense, self-conflict-free layout like the per-layer layouts the
// paper assumes within a layer.
func (l *Layout) PlaceSequential(segs ...*Segment) {
	for _, s := range segs {
		s.SetAddr(l.next)
		l.next += roundUp(uint64(s.Size), uint64(l.lineSize))
	}
}

// PlaceRandom gives each segment a disjoint 16 MB slot with a random
// line-aligned starting offset drawn from rng within [0, jitter). Pass the
// cache size as jitter to randomize the conflict pattern exactly as a whole-
// program random placement would for a direct-mapped cache of that size.
func (l *Layout) PlaceRandom(rng *rand.Rand, jitter int, segs ...*Segment) {
	if jitter < l.lineSize {
		jitter = l.lineSize
	}
	lines := jitter / l.lineSize
	for _, s := range segs {
		off := uint64(rng.Intn(lines)) * uint64(l.lineSize)
		s.SetAddr(l.next + off)
		l.next += l.slot
	}
}

func roundUp(v, align uint64) uint64 {
	return (v + align - 1) / align * align
}

// Config parameterizes a CPU.
type Config struct {
	// ClockHz is the CPU clock. The paper uses 100 MHz for Figures 5 and 6
	// and sweeps 10–80 MHz for Figure 7.
	ClockHz float64
	// ICache and DCache describe the primary caches.
	ICache cache.Config
	DCache cache.Config
	// Unified, when set, backs instruction and data references with one
	// cache built from the ICache configuration (Figure 4's caption notes
	// the paper's results hold equally well for unified caches; this
	// makes that claim testable). DCache is ignored except that its
	// MissPenalty must match ICache's.
	Unified bool
}

// DefaultConfig is the §4 machine: 100 MHz, 8 KB direct-mapped split
// caches, 32-byte lines, 20-cycle read-miss stall.
func DefaultConfig() Config {
	c := cache.Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 20}
	return Config{ClockHz: 100e6, ICache: c, DCache: c}
}

// CPU models the processor: caches plus a cycle accumulator. Cycles are
// float64 because the paper's data loop costs 0.5 cycles per byte.
type CPU struct {
	cfg Config
	I   *cache.Cache
	D   *cache.Cache

	issueCycles float64
	stallCycles float64
}

// New builds a CPU. Invalid cache configs panic (see cache.New).
func New(cfg Config) *CPU {
	if cfg.ClockHz <= 0 {
		panic(fmt.Sprintf("machine: non-positive clock %v", cfg.ClockHz))
	}
	if cfg.Unified {
		u := cache.New(cfg.ICache)
		return &CPU{cfg: cfg, I: u, D: u}
	}
	return &CPU{cfg: cfg, I: cache.New(cfg.ICache), D: cache.New(cfg.DCache)}
}

// Config returns the CPU's configuration.
func (c *CPU) Config() Config { return c.cfg }

// AddIssueCycles charges instruction-issue time without touching memory.
func (c *CPU) AddIssueCycles(n float64) { c.issueCycles += n }

// TouchCode fetches [addr, addr+n) through the I-cache and charges the miss
// stalls. It returns the number of line misses. Issue cycles for the
// instructions themselves are charged separately by the caller, which knows
// how many of the fetched instructions actually execute.
func (c *CPU) TouchCode(addr uint64, n int) int {
	m := c.I.AccessRange(addr, n)
	c.stallCycles += float64(m * c.cfg.ICache.MissPenalty)
	return m
}

// TouchData references [addr, addr+n) through the D-cache and charges the
// miss stalls, returning the number of line misses.
func (c *CPU) TouchData(addr uint64, n int) int {
	m := c.D.AccessRange(addr, n)
	c.stallCycles += float64(m * c.cfg.DCache.MissPenalty)
	return m
}

// ExecSegment runs an entire code segment once: every line is fetched (the
// paper's synthetic layers execute each instruction in the working set at
// least once) and issueCycles are charged.
func (c *CPU) ExecSegment(s *Segment, issueCycles float64) {
	c.TouchCode(s.Addr(), s.Size)
	c.issueCycles += issueCycles
}

// Cycles returns total consumed cycles (issue + stall).
func (c *CPU) Cycles() float64 { return c.issueCycles + c.stallCycles }

// IssueCycles returns cycles spent issuing instructions.
func (c *CPU) IssueCycles() float64 { return c.issueCycles }

// StallCycles returns cycles spent stalled on cache misses.
func (c *CPU) StallCycles() float64 { return c.stallCycles }

// Seconds converts the consumed cycles to wall time at the configured clock.
func (c *CPU) Seconds() float64 { return c.Cycles() / c.cfg.ClockHz }

// SecondsFor converts a cycle count to seconds at the configured clock.
func (c *CPU) SecondsFor(cycles float64) float64 { return cycles / c.cfg.ClockHz }

// ResetCycles clears the cycle accumulators but leaves cache contents
// intact (the cache stays warm across messages; that is the whole point).
func (c *CPU) ResetCycles() { c.issueCycles, c.stallCycles = 0, 0 }

// ColdStart flushes both caches and clears cycle accounting — a fresh run.
func (c *CPU) ColdStart() {
	c.I.Flush()
	c.I.ResetStats()
	if c.D != c.I {
		c.D.Flush()
		c.D.ResetStats()
	}
	c.ResetCycles()
}

// Arena hands out message-buffer addresses from a circular line-aligned
// region, modelling a buffer pool: successive allocations are adjacent
// (like chained allocations from a kernel buffer arena) and wrap after
// Size bytes, so long-running simulations reuse buffer addresses the way a
// real pool does.
type Arena struct {
	base uint64
	size uint64
	next uint64
	line uint64
}

// NewArena builds an arena of size bytes at base, aligning allocations to
// lineSize.
func NewArena(base uint64, size, lineSize int) *Arena {
	if size <= 0 || lineSize <= 0 || size%lineSize != 0 {
		panic(fmt.Sprintf("machine: invalid arena size %d / line %d", size, lineSize))
	}
	return &Arena{base: base, size: uint64(size), line: uint64(lineSize)}
}

// Alloc returns the address of an n-byte buffer. Buffers never straddle the
// wrap point.
func (a *Arena) Alloc(n int) uint64 {
	need := roundUp(uint64(n), a.line)
	if need > a.size {
		panic(fmt.Sprintf("machine: arena allocation %d exceeds arena size %d", n, a.size))
	}
	if a.next+need > a.size {
		a.next = 0
	}
	addr := a.base + a.next
	a.next += need
	return addr
}
