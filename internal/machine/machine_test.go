package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldlp/internal/cache"
)

func TestClassString(t *testing.T) {
	if Code.String() != "code" || ReadOnly.String() != "read-only" || Mutable.String() != "mutable" {
		t.Error("class names changed")
	}
	if Class(9).String() != "Class(9)" {
		t.Errorf("unknown class renders as %q", Class(9).String())
	}
}

func TestSegmentPlacement(t *testing.T) {
	s := NewSegment("tcp_input", Code, 11872)
	if s.Placed() {
		t.Error("fresh segment should be unplaced")
	}
	s.SetAddr(0x1000)
	if !s.Placed() || s.Addr() != 0x1000 {
		t.Errorf("placement failed: placed=%v addr=%#x", s.Placed(), s.Addr())
	}
}

func TestUnplacedSegmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Addr of unplaced segment should panic")
		}
	}()
	NewSegment("x", Code, 64).Addr()
}

func TestNewSegmentRejectsEmptiness(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size segment should panic")
		}
	}()
	NewSegment("empty", Code, 0)
}

func TestPlaceSequentialIsDenseAndAligned(t *testing.T) {
	l := NewLayout(32)
	a := NewSegment("a", Code, 100) // rounds to 128
	b := NewSegment("b", Code, 32)
	l.PlaceSequential(a, b)
	if a.Addr()%32 != 0 || b.Addr()%32 != 0 {
		t.Error("segments not line aligned")
	}
	if b.Addr() != a.Addr()+128 {
		t.Errorf("b at %#x, want %#x (dense packing)", b.Addr(), a.Addr()+128)
	}
}

// Property: random placements are line-aligned, within the jitter window,
// and never overlap regardless of seed.
func TestPlaceRandomDisjointQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLayout(32)
		segs := make([]*Segment, 8)
		for i := range segs {
			segs[i] = NewSegment("seg", Code, 6144)
		}
		l.PlaceRandom(rng, 8192, segs...)
		for i, s := range segs {
			if s.Addr()%32 != 0 {
				return false
			}
			for j := 0; j < i; j++ {
				lo, hi := segs[j].Addr(), segs[j].Addr()+uint64(segs[j].Size)
				if s.Addr() < hi && s.Addr()+uint64(s.Size) > lo {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPlaceRandomVariesConflictPattern(t *testing.T) {
	// Two different seeds should (almost surely) produce different
	// cache-set offsets for at least one of 8 segments.
	place := func(seed int64) []uint64 {
		rng := rand.New(rand.NewSource(seed))
		l := NewLayout(32)
		var offs []uint64
		for i := 0; i < 8; i++ {
			s := NewSegment("s", Code, 64)
			l.PlaceRandom(rng, 8192, s)
			offs = append(offs, s.Addr()%8192)
		}
		return offs
	}
	a, b := place(1), place(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestCPUCycleAccounting(t *testing.T) {
	cpu := New(DefaultConfig())
	seg := NewSegment("layer", Code, 6144)
	seg.SetAddr(0)
	cpu.ExecSegment(seg, 1376)
	// 6144/32 = 192 cold misses at 20 cycles each.
	if got := cpu.StallCycles(); got != 192*20 {
		t.Errorf("stall cycles = %v, want %v", got, 192*20)
	}
	if got := cpu.IssueCycles(); got != 1376 {
		t.Errorf("issue cycles = %v, want 1376", got)
	}
	if got := cpu.Cycles(); got != 1376+3840 {
		t.Errorf("total cycles = %v, want %v", got, 1376+3840)
	}
	// Second execution: warm, no stalls.
	cpu.ResetCycles()
	cpu.ExecSegment(seg, 1376)
	if got := cpu.StallCycles(); got != 0 {
		t.Errorf("warm stall cycles = %v, want 0", got)
	}
}

func TestCPUSeconds(t *testing.T) {
	cfg := DefaultConfig()
	cpu := New(cfg)
	cpu.AddIssueCycles(100e6) // one second at 100 MHz
	if got := cpu.Seconds(); got != 1 {
		t.Errorf("Seconds = %v, want 1", got)
	}
	if got := cpu.SecondsFor(50e6); got != 0.5 {
		t.Errorf("SecondsFor = %v, want 0.5", got)
	}
}

func TestColdStartFlushes(t *testing.T) {
	cpu := New(DefaultConfig())
	cpu.TouchCode(0, 64)
	cpu.TouchData(0, 64)
	cpu.ColdStart()
	if cpu.Cycles() != 0 {
		t.Error("cycles should reset")
	}
	if m := cpu.TouchCode(0, 64); m != 2 {
		t.Errorf("post-flush code misses = %d, want 2", m)
	}
	if m := cpu.TouchData(0, 64); m != 2 {
		t.Errorf("post-flush data misses = %d, want 2", m)
	}
}

func TestTouchDataChargesDCacheOnly(t *testing.T) {
	cpu := New(DefaultConfig())
	cpu.TouchData(0, 32)
	if cpu.I.Stats().Accesses != 0 {
		t.Error("data touch must not reference the I-cache")
	}
	if cpu.D.Stats().Misses != 1 {
		t.Errorf("d-cache misses = %d, want 1", cpu.D.Stats().Misses)
	}
}

func TestNewPanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero clock should panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.ClockHz = 0
	New(cfg)
}

func TestArenaWrapAndAlignment(t *testing.T) {
	a := NewArena(0x100000, 2048, 32)
	first := a.Alloc(552) // rounds to 576
	second := a.Alloc(552)
	if second != first+576 {
		t.Errorf("second = %#x, want %#x", second, first+576)
	}
	third := a.Alloc(552)
	// 3*576 = 1728 <= 2048, fits.
	if third != first+1152 {
		t.Errorf("third = %#x, want %#x", third, first+1152)
	}
	fourth := a.Alloc(552) // 1728+576 = 2304 > 2048: wraps
	if fourth != first {
		t.Errorf("fourth = %#x, want wrap to %#x", fourth, first)
	}
}

func TestArenaOversizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversize allocation should panic")
		}
	}()
	NewArena(0, 1024, 32).Alloc(2048)
}

// Property: arena allocations are always line-aligned, inside the region,
// and never straddle the wrap point.
func TestArenaInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 8192
		a := NewArena(1<<20, size, 32)
		for i := 0; i < 500; i++ {
			n := 1 + rng.Intn(size)
			addr := a.Alloc(n)
			if addr%32 != 0 {
				return false
			}
			if addr < 1<<20 || addr+uint64(n) > (1<<20)+size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConflictingLayersThrashExactlyLikeThePaper(t *testing.T) {
	// Two 6 KB layers in an 8 KB direct-mapped cache: run alternately
	// (conventional), most of each layer's lines are evicted between
	// executions; run back-to-back per layer (blocked), the second pass is
	// free. This is Figure 2/3 in miniature.
	cfg := DefaultConfig()
	mkCPU := func() (*CPU, *Segment, *Segment) {
		cpu := New(cfg)
		l1 := NewSegment("l1", Code, 6144)
		l2 := NewSegment("l2", Code, 6144)
		// Worst-case overlap: both start at set 0.
		l1.SetAddr(0)
		l2.SetAddr(1 << 20) // 1 MB is a multiple of 8 KB: same sets as l1
		return cpu, l1, l2
	}

	cpu, l1, l2 := mkCPU()
	// Conventional: L1 P1, L2 P1, L1 P2, L2 P2.
	for i := 0; i < 2; i++ {
		cpu.ExecSegment(l1, 0)
		cpu.ExecSegment(l2, 0)
	}
	conv := cpu.StallCycles()

	cpu, l1, l2 = mkCPU()
	// Blocked: L1 P1, L1 P2, L2 P1, L2 P2.
	cpu.ExecSegment(l1, 0)
	cpu.ExecSegment(l1, 0)
	cpu.ExecSegment(l2, 0)
	cpu.ExecSegment(l2, 0)
	blocked := cpu.StallCycles()

	if !(blocked < conv/1.5) {
		t.Errorf("blocked stalls %v not substantially below conventional %v", blocked, conv)
	}
}

func BenchmarkExecSegmentWarm(b *testing.B) {
	cpu := New(DefaultConfig())
	seg := NewSegment("layer", Code, 6144)
	seg.SetAddr(0)
	for i := 0; i < b.N; i++ {
		cpu.ExecSegment(seg, 1376)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	want := cache.Config{Size: 8192, LineSize: 32, Assoc: 1, MissPenalty: 20}
	if cfg.ICache != want || cfg.DCache != want {
		t.Errorf("default caches = %+v / %+v, want %+v", cfg.ICache, cfg.DCache, want)
	}
	if cfg.ClockHz != 100e6 {
		t.Errorf("default clock = %v, want 100 MHz", cfg.ClockHz)
	}
}

func TestUnifiedCacheSharesState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Unified = true
	cpu := New(cfg)
	if cpu.I != cpu.D {
		t.Fatal("unified config should share one cache")
	}
	// Code and data at the same address: the second reference hits
	// because the unified cache already holds the line.
	cpu.TouchCode(0x100, 32)
	if m := cpu.TouchData(0x100, 32); m != 0 {
		t.Errorf("data touch after code touch missed %d times in a unified cache", m)
	}
	// And code/data contend for the same capacity: filling 16KB of data
	// in a unified 8KB cache must evict the code.
	cpu.TouchData(0x100000, 16384)
	if m := cpu.TouchCode(0x100, 32); m != 1 {
		t.Errorf("code should have been evicted by data in a unified cache (misses=%d)", m)
	}
	cpu.ColdStart()
	if cpu.Cycles() != 0 {
		t.Error("cold start on unified cache failed")
	}
}

func TestSplitCachesDoNotContend(t *testing.T) {
	cpu := New(DefaultConfig())
	cpu.TouchCode(0x100, 32)
	cpu.TouchData(0x100000, 16384)
	if m := cpu.TouchCode(0x100, 32); m != 0 {
		t.Errorf("split I-cache evicted by data traffic (misses=%d)", m)
	}
}
