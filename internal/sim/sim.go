// Package sim is the discrete-event simulator behind the paper's §4
// evaluation: a five-layer synthetic protocol stack running on the machine
// model, fed by a traffic source, processed under the conventional, ILP or
// LDLP discipline.
//
// The configuration defaults are the paper's: each layer has 6 KB of code
// and 256 bytes of data in its working set; every instruction in the
// working set executes at least once per message, including a data loop
// costing 0.5 cycles/byte; 1652 cycles of instruction processing per layer
// for 552-byte messages; 8 KB direct-mapped split I/D caches with 32-byte
// lines and a 20-cycle read-miss stall at 100 MHz; buffering limited to
// 500 packets; under LDLP a batch is "as many available messages as will
// fit in the data cache", and enqueue/dequeue costs ~40 instructions.
package sim

import (
	"fmt"
	"math/rand"

	"ldlp/internal/core"
	"ldlp/internal/machine"
	"ldlp/internal/stats"
	"ldlp/internal/telemetry"
	"ldlp/internal/traffic"
)

// Config parameterizes one simulation run.
type Config struct {
	// Machine is the simulated CPU (see machine.DefaultConfig for the
	// paper's machine).
	Machine machine.Config
	// Discipline selects conventional, ILP or LDLP processing.
	Discipline core.Discipline
	// Layers is the protocol stack depth (the paper uses 5).
	Layers int
	// LayerCode/LayerData are each layer's code and data working-set
	// sizes in bytes.
	LayerCode, LayerData int
	// IssueFixed is the straight-line issue cycles per layer per message
	// (excluding the data loop); IssuePerByte is the data-loop cost. The
	// paper's totals imply 1376 + 0.5/byte (see DESIGN.md §5).
	IssueFixed, IssuePerByte float64
	// QueueOpCycles models the ~40-instruction enqueue/dequeue cost paid
	// per layer per message under LDLP (§3.2).
	QueueOpCycles float64
	// BatchCap caps an LDLP batch. 0 means "fit the data cache", the
	// paper's rule. 1 under LDLP degenerates to per-message processing.
	BatchCap int
	// BufferLimit is the arrival queue bound (500 in the paper); beyond
	// it packets are dropped.
	BufferLimit int
	// Duration is the simulated time horizon in seconds.
	Duration float64
	// Seed randomizes segment placement (the paper averages 100 runs with
	// different random placements).
	Seed int64
}

// DefaultConfig returns the paper's §4 configuration for one discipline.
func DefaultConfig(d core.Discipline) Config {
	return Config{
		Machine:       machine.DefaultConfig(),
		Discipline:    d,
		Layers:        5,
		LayerCode:     6144,
		LayerData:     256,
		IssueFixed:    1376,
		IssuePerByte:  0.5,
		QueueOpCycles: 40,
		BatchCap:      0,
		BufferLimit:   500,
		Duration:      1.0,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("sim: need at least one layer, got %d", c.Layers)
	case c.LayerCode <= 0 || c.LayerData < 0:
		return fmt.Errorf("sim: invalid layer sizes code=%d data=%d", c.LayerCode, c.LayerData)
	case c.Duration <= 0:
		return fmt.Errorf("sim: non-positive duration %v", c.Duration)
	case c.BufferLimit <= 0:
		return fmt.Errorf("sim: non-positive buffer limit %d", c.BufferLimit)
	case c.IssueFixed < 0 || c.IssuePerByte < 0 || c.QueueOpCycles < 0:
		return fmt.Errorf("sim: negative cost in %+v", c)
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// Offered counts arrivals inside the horizon; Processed those that
	// completed; Dropped those rejected at the full buffer.
	Offered, Processed, Dropped int
	// LinkDropped counts messages a fault-injecting source removed
	// before the stack saw them (loss, burst loss, partition,
	// corruption); zero when the sweep runs on a clean link.
	LinkDropped int
	// Latency aggregates per-message (completion - arrival) seconds.
	Latency stats.Running
	// P50Latency, P90Latency, P99Latency estimate latency quantiles in
	// seconds (Figure 6 reports means; tails tell the batching story —
	// LDLP trades a small p50 penalty for a collapsed p99 under load).
	P50Latency, P90Latency, P99Latency float64
	// IMissesPerMsg / DMissesPerMsg are cache misses per processed
	// message (Figure 5's two curves).
	IMissesPerMsg, DMissesPerMsg float64
	// MeanBatch is the average LDLP batch size; 1 under conventional.
	MeanBatch float64
	// Throughput is processed messages per simulated second.
	Throughput float64
	// BusyFrac is the fraction of simulated time the CPU was busy.
	BusyFrac float64
	// BatchHist and LatencyHist are the run's telemetry distributions:
	// engine batch sizes (messages per bottom-layer batch) and
	// per-message latencies in simulated nanoseconds. Mergeable, so
	// sweeps aggregate them across seeds exactly.
	BatchHist, LatencyHist telemetry.HistSnapshot
}

// message is the unit flowing through the stack.
type message struct {
	arrival float64
	size    int
	addr    uint64
}

// Sim is a single-run simulator instance.
type Sim struct {
	cfg    Config
	cpu    *machine.CPU
	arena  *machine.Arena
	stack  *core.Stack[*message]
	layers []simLayer

	clock float64 // Hz

	// completion bookkeeping, valid during a batch
	batchStartTime   float64
	batchStartCycles float64
	completions      []completion

	hist *stats.Histogram

	// tel is the run's telemetry domain, stamped by the simulated clock
	// (batch start time plus cycles burned since, scaled to ns) — the
	// determinism analyzer guarantees no wall-clock leaks in here, so
	// traces replay bit-identically per seed.
	tel        *telemetry.Domain
	latencyNS  *telemetry.Hist
	simBatches *telemetry.Hist
}

type simLayer struct {
	code *machine.Segment
	data *machine.Segment
}

type completion struct {
	m  *message
	at float64
}

// New builds a simulator with freshly placed segments.
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sim{cfg: cfg, clock: cfg.Machine.ClockHz}
	s.cpu = machine.New(cfg.Machine)
	rng := rand.New(rand.NewSource(cfg.Seed))
	layout := machine.NewLayout(cfg.Machine.ICache.LineSize)

	// Code segments get random placement (the source of conflict-pattern
	// variance the paper averages away over 100 seeds); layer data and
	// the message arena live in their own regions.
	for i := 0; i < cfg.Layers; i++ {
		code := machine.NewSegment(fmt.Sprintf("L%d.code", i+1), machine.Code, cfg.LayerCode)
		layout.PlaceRandom(rng, cfg.Machine.ICache.Size, code)
		var data *machine.Segment
		if cfg.LayerData > 0 {
			data = machine.NewSegment(fmt.Sprintf("L%d.data", i+1), machine.Mutable, cfg.LayerData)
			layout.PlaceRandom(rng, cfg.Machine.DCache.Size, data)
		}
		s.layers = append(s.layers, simLayer{code: code, data: data})
	}
	// Message buffers: a contiguous circular pool, like chained kernel
	// buffer allocations (see DESIGN.md).
	s.arena = machine.NewArena(1<<40, 1<<16, cfg.Machine.DCache.LineSize)

	s.stack = core.NewStack[*message](core.Options{
		Discipline: cfg.Discipline,
		// The engine-level batch bound is handled by the sim (it is
		// size-dependent); the engine cap stays off.
	})
	var prev *core.Layer[*message]
	for i := range s.layers {
		i := i
		l := s.stack.AddLayer(fmt.Sprintf("L%d", i+1), func(m *message, emit core.Emit[*message]) {
			if i+1 < len(s.layers) {
				emit(s.stack.Layers()[i+1], m)
			} else {
				emit(nil, m)
			}
		})
		if prev != nil {
			s.stack.Link(prev, l)
		}
		prev = l
	}
	s.stack.OnProcess(func(l *core.Layer[*message], m *message) { s.charge(layerIndex(l), m) })
	s.stack.SetSink(func(m *message) {
		at := s.batchStartTime + (s.cpu.Cycles()-s.batchStartCycles)/s.clock
		s.completions = append(s.completions, completion{m: m, at: at})
	})
	s.hist = stats.NewHistogram(0, 1.0, 100000) // 10 µs buckets up to 1 s

	s.tel = telemetry.NewDomain("sim", func() int64 {
		return int64((s.batchStartTime + (s.cpu.Cycles()-s.batchStartCycles)/s.clock) * 1e9)
	})
	s.stack.SetTelemetry(s.tel.Tracer("engine", 0), s.tel.Hist("ldlp-batch"))
	s.latencyNS = s.tel.Hist("latency-ns")
	s.simBatches = s.tel.Hist("dispatch-batch")
	return s
}

// Telemetry exposes the run's telemetry domain (per-layer engine trace
// plus histograms), stamped on the simulated timeline.
func (s *Sim) Telemetry() *telemetry.Domain { return s.tel }

func layerIndex(l *core.Layer[*message]) int {
	// Layer names are L1..Ln; parse cheaply.
	n := 0
	for _, c := range l.Name()[1:] {
		n = n*10 + int(c-'0')
	}
	return n - 1
}

// charge applies the machine-model cost of processing message m at layer i.
func (s *Sim) charge(i int, m *message) {
	cfg := &s.cfg
	sl := &s.layers[i]

	// Queue handling cost (LDLP only: call-through stacks pay no
	// queueing).
	if cfg.Discipline == core.LDLP {
		s.cpu.AddIssueCycles(cfg.QueueOpCycles)
	}

	// Layer code: every instruction in the working set executes at least
	// once per message.
	s.cpu.ExecSegment(sl.code, cfg.IssueFixed)

	// Layer-private data.
	if sl.data != nil {
		s.cpu.TouchData(sl.data.Addr(), sl.data.Size)
	}

	// The data loop over message contents. Under ILP the loops of all
	// layers are integrated: the bytes are loaded once, at the bottom
	// layer, and the per-byte issue cost is paid once.
	if cfg.Discipline == core.ILP {
		if i == 0 {
			s.cpu.TouchData(m.addr, m.size)
			s.cpu.AddIssueCycles(cfg.IssuePerByte * float64(m.size))
		}
	} else {
		s.cpu.TouchData(m.addr, m.size)
		s.cpu.AddIssueCycles(cfg.IssuePerByte * float64(m.size))
	}
}

// batchLimitFor selects how many waiting messages join the next batch:
// the paper's rule is all available messages that together fit in the data
// cache (alongside the layers' own data).
func (s *Sim) batchLimitFor(pending []*message) int {
	if s.cfg.Discipline != core.LDLP {
		return 1
	}
	if s.cfg.BatchCap == 1 {
		return 1
	}
	budget := s.cfg.Machine.DCache.Size - s.cfg.Layers*s.cfg.LayerData
	line := s.cfg.Machine.DCache.LineSize
	n := 0
	for _, m := range pending {
		sz := (m.size + line - 1) / line * line
		if budget < sz {
			break
		}
		budget -= sz
		n++
		if s.cfg.BatchCap > 0 && n >= s.cfg.BatchCap {
			break
		}
	}
	if n == 0 {
		n = 1 // a message larger than the cache still must be processed
	}
	return n
}

// Run drives the simulation over src until the horizon and returns the
// aggregated result. Arrivals after the horizon are ignored; messages in
// flight at the horizon are processed to completion (their latencies
// count).
func (s *Sim) Run(src traffic.Source) Result {
	var res Result
	var pending []*message
	busy := 0.0
	dispatches := 0
	batchSum := 0

	nextArr, haveNext := src.Next()
	admit := func(a traffic.Arrival) {
		res.Offered++
		if len(pending) >= s.cfg.BufferLimit {
			res.Dropped++
			return
		}
		pending = append(pending, &message{arrival: a.Time, size: a.Size, addr: s.arena.Alloc(a.Size)})
	}

	now := 0.0
	serverFree := 0.0
	for {
		// Refill pending with everything that has arrived by `now`.
		for haveNext && nextArr.Time <= now && nextArr.Time <= s.cfg.Duration {
			admit(nextArr)
			nextArr, haveNext = src.Next()
		}
		if len(pending) == 0 {
			if !haveNext || nextArr.Time > s.cfg.Duration {
				break
			}
			// Idle until the next arrival.
			now = nextArr.Time
			if now < serverFree {
				now = serverFree
			}
			continue
		}

		start := now
		if serverFree > start {
			start = serverFree
		}
		// Everything that arrived by the batch start joins the queue.
		for haveNext && nextArr.Time <= start && nextArr.Time <= s.cfg.Duration {
			admit(nextArr)
			nextArr, haveNext = src.Next()
		}

		n := s.batchLimitFor(pending)
		if n > len(pending) {
			n = len(pending)
		}
		batch := pending[:n]
		pending = pending[n:]

		s.batchStartTime = start
		s.batchStartCycles = s.cpu.Cycles()
		s.completions = s.completions[:0]
		for _, m := range batch {
			// The engine buffer is sized by our own BufferLimit above, so
			// Inject cannot fail here.
			if err := s.stack.Inject(m); err != nil {
				panic("sim: unexpected inject failure: " + err.Error())
			}
		}
		s.stack.Run()

		elapsed := (s.cpu.Cycles() - s.batchStartCycles) / s.clock
		busy += elapsed
		serverFree = start + elapsed
		now = serverFree

		for _, c := range s.completions {
			lat := c.at - c.m.arrival
			res.Latency.Add(lat)
			s.hist.Add(lat)
			s.latencyNS.Observe(int64(lat * 1e9))
			res.Processed++
		}
		dispatches++
		batchSum += len(batch)
		s.simBatches.Observe(int64(len(batch)))
	}

	if res.Processed > 0 {
		res.P50Latency = s.hist.Quantile(0.50)
		res.P90Latency = s.hist.Quantile(0.90)
		res.P99Latency = s.hist.Quantile(0.99)
		res.IMissesPerMsg = float64(s.cpu.I.Stats().Misses) / float64(res.Processed)
		res.DMissesPerMsg = float64(s.cpu.D.Stats().Misses) / float64(res.Processed)
		res.Throughput = float64(res.Processed) / s.cfg.Duration
	}
	if dispatches > 0 {
		res.MeanBatch = float64(batchSum) / float64(dispatches)
	}
	res.BusyFrac = busy / s.cfg.Duration
	if res.BusyFrac > 1 {
		res.BusyFrac = 1
	}
	res.BatchHist = s.simBatches.Snapshot()
	res.LatencyHist = s.latencyNS.Snapshot()
	return res
}
