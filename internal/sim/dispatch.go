package sim

import (
	"math/rand"
	"sort"

	"ldlp/internal/dispatch"
	"ldlp/internal/layers"
	"ldlp/internal/stats"
)

// Modeled receive-side dispatch under flow skew. The netstack's shard
// engine routes each frame through a dispatch.Policy; this model strips
// that engine to its queueing skeleton — N single-server queues in
// discrete slots, one service per shard per slot — and feeds it a
// Zipf-distributed flow population, the regime where a static flow hash
// is weakest: a handful of elephant flows pin their shards near or past
// saturation while the rest idle. Running the *real* policy
// implementations (dispatch.Static, dispatch.LoadAware) against the
// modeled queues shows what rebalancing buys: worst-shard utilization
// bounded near the elephant share instead of the elephant-plus-mice
// share, and the p99 queueing delay of an overloaded shard collapsing
// back to the stable-queue regime.

// DispatchSkewConfig parameterizes one modeled run.
type DispatchSkewConfig struct {
	// Shards is the modeled worker count (the engine's RxShards).
	Shards int
	// Buckets is the load-aware policy's indirection-table size.
	Buckets int
	// Flows is the flow population size.
	Flows int
	// ZipfS is the Zipf exponent (> 1; larger = more skew).
	ZipfS float64
	// Rho is the offered load per shard in arrivals per slot, so the
	// total arrival rate is Rho*Shards against Shards unit servers.
	Rho float64
	// Slots is the simulated horizon.
	Slots int
	// RebalanceEvery is the policy's rebalance period in slots — the
	// model's stand-in for the netstack's per-tick quiescent point.
	RebalanceEvery int
	// Seed drives the flow draws.
	Seed int64
}

// DefaultDispatchSkew is the figure's configuration: four shards at 80%
// offered load each, 4k flows with the top flow holding roughly a fifth
// of the traffic — enough to push the static elephant shard past
// saturation while the aggregate stays under it.
func DefaultDispatchSkew() DispatchSkewConfig {
	return DispatchSkewConfig{
		Shards: 4, Buckets: dispatch.DefaultBuckets, Flows: 4096,
		ZipfS: 1.2, Rho: 0.8, Slots: 20000, RebalanceEvery: 500, Seed: 1,
	}
}

// DispatchSkewResult summarizes one modeled run.
type DispatchSkewResult struct {
	// Policy is the dispatch policy's name.
	Policy string
	// ShardArrivals counts arrivals routed to each shard.
	ShardArrivals []int64
	// Imbalance is the worst shard's arrival share over the fair share
	// (1.0 = perfectly balanced, Shards = everything on one shard).
	Imbalance float64
	// MeanWait and P99Wait are queueing delays in slots, measured at
	// enqueue as the number of messages ahead in the shard's queue.
	MeanWait, P99Wait float64
	// Rebalances and BucketMoves count the policy's rebalance activity.
	Rebalances, BucketMoves int64
}

// RunDispatchSkew drives cfg.Slots slots of Zipf traffic through pol
// over N modeled shard queues. Arrivals are deterministic in aggregate
// (a fractional accumulator releases Rho*Shards messages per slot); only
// the flow identity of each message is random, so two runs with the same
// seed offer byte-identical load to both policies.
func RunDispatchSkew(cfg DispatchSkewConfig, pol dispatch.Policy) DispatchSkewResult {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Flows-1))

	// Flow keys come from the real key builder over synthetic tuples, so
	// the policy sees the hash distribution production frames would give.
	srv := layers.IPAddr{10, 0, 0, 2}
	keys := make([]uint64, cfg.Flows)
	for f := range keys {
		src := layers.IPAddr{10, byte(f >> 16), byte(f >> 8), byte(f)}
		keys[f] = dispatch.TupleKey(src, srv, layers.ProtoUDP, uint16(1024+f%60000), 9)
	}

	res := DispatchSkewResult{Policy: pol.Name(), ShardArrivals: make([]int64, cfg.Shards)}
	depth := make([]int, cfg.Shards)
	waits := make([]float64, 0, int(float64(cfg.Slots)*cfg.Rho*float64(cfg.Shards))+1)
	acc := 0.0
	for slot := 0; slot < cfg.Slots; slot++ {
		acc += cfg.Rho * float64(cfg.Shards)
		for ; acc >= 1; acc-- {
			f := int(zipf.Uint64())
			s := pol.Shard(keys[f], cfg.Shards)
			res.ShardArrivals[s]++
			waits = append(waits, float64(depth[s]))
			depth[s]++
		}
		for s := range depth {
			if depth[s] > 0 {
				depth[s]--
			}
		}
		if cfg.RebalanceEvery > 0 && (slot+1)%cfg.RebalanceEvery == 0 {
			if migs := pol.Rebalance(nil); len(migs) > 0 {
				res.Rebalances++
				res.BucketMoves += int64(len(migs))
			}
		}
	}

	var total, max int64
	for _, a := range res.ShardArrivals {
		total += a
		if a > max {
			max = a
		}
	}
	if total > 0 {
		res.Imbalance = float64(max) * float64(cfg.Shards) / float64(total)
		sum := 0.0
		for _, w := range waits {
			sum += w
		}
		res.MeanWait = sum / float64(len(waits))
		sort.Float64s(waits)
		res.P99Wait = waits[(len(waits)*99)/100]
	}
	return res
}

// FigureDispatchSkew runs the static and load-aware policies over the
// same Zipf load and tabulates them — the repo's figure for what
// programmable dispatch buys on skewed small-message traffic. The x
// column is 0 for static, 1 for load-aware.
func FigureDispatchSkew(cfg DispatchSkewConfig) *stats.Table {
	tab := stats.NewTable(
		"Receive dispatch under Zipf flow skew: static hash vs load-aware resharding",
		"load-aware", "imbalance", "p99-wait-slots", "mean-wait-slots", "bucket-moves")
	st := RunDispatchSkew(cfg, dispatch.Static{})
	la := RunDispatchSkew(cfg, dispatch.NewLoadAware(cfg.Shards, cfg.Buckets))
	tab.Add(0, st.Imbalance, st.P99Wait, st.MeanWait, float64(st.BucketMoves))
	tab.Add(1, la.Imbalance, la.P99Wait, la.MeanWait, float64(la.BucketMoves))
	return tab
}
