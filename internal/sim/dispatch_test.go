package sim

import (
	"strings"
	"testing"

	"ldlp/internal/dispatch"
)

// TestDispatchSkewLoadAwareBeatsStatic is the acceptance check for the
// dispatch figure: under the default Zipf skew the load-aware policy
// must beat the static hash on both worst-shard balance and p99 wait,
// and must do it by actually moving buckets.
func TestDispatchSkewLoadAwareBeatsStatic(t *testing.T) {
	cfg := DefaultDispatchSkew()
	if testing.Short() {
		cfg.Slots = 6000
	}
	st := RunDispatchSkew(cfg, dispatch.Static{})
	la := RunDispatchSkew(cfg, dispatch.NewLoadAware(cfg.Shards, cfg.Buckets))

	var stTotal, laTotal int64
	for s := 0; s < cfg.Shards; s++ {
		stTotal += st.ShardArrivals[s]
		laTotal += la.ShardArrivals[s]
	}
	if stTotal != laTotal {
		t.Fatalf("policies saw different load: %d vs %d arrivals", stTotal, laTotal)
	}
	if st.Imbalance <= 1.05 {
		t.Fatalf("static run is not skewed (imbalance %.3f); the comparison is vacuous", st.Imbalance)
	}
	if la.Imbalance >= st.Imbalance {
		t.Errorf("load-aware imbalance %.3f did not beat static %.3f", la.Imbalance, st.Imbalance)
	}
	if la.P99Wait >= st.P99Wait {
		t.Errorf("load-aware p99 wait %.1f slots did not beat static %.1f", la.P99Wait, st.P99Wait)
	}
	if la.BucketMoves == 0 {
		t.Error("load-aware won without moving buckets — the policy was not exercised")
	}
	if st.BucketMoves != 0 || st.Rebalances != 0 {
		t.Errorf("static policy reported rebalance activity: %+v", st)
	}
}

// TestDispatchSkewDeterministic: same seed, same policy, same numbers —
// the figure must be reproducible.
func TestDispatchSkewDeterministic(t *testing.T) {
	cfg := DefaultDispatchSkew()
	cfg.Slots = 4000
	a := RunDispatchSkew(cfg, dispatch.NewLoadAware(cfg.Shards, cfg.Buckets))
	b := RunDispatchSkew(cfg, dispatch.NewLoadAware(cfg.Shards, cfg.Buckets))
	if a.Imbalance != b.Imbalance || a.P99Wait != b.P99Wait || a.BucketMoves != b.BucketMoves {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestFigureDispatchSkew(t *testing.T) {
	cfg := DefaultDispatchSkew()
	cfg.Slots = 4000
	tab := FigureDispatchSkew(cfg)
	out := tab.String()
	for _, want := range []string{"load-aware", "imbalance", "p99-wait-slots"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure table missing %q:\n%s", want, out)
		}
	}
}

// BenchmarkDispatchSkewed feeds the bench pipeline: one full modeled run
// per policy, with the balance and tail-latency numbers attached as
// custom metrics so BENCH_2.json records the static-vs-load-aware gap.
func BenchmarkDispatchSkewed(b *testing.B) {
	cases := []struct {
		name string
		mk   func(cfg DispatchSkewConfig) dispatch.Policy
	}{
		{"static", func(DispatchSkewConfig) dispatch.Policy { return dispatch.Static{} }},
		{"loadaware", func(cfg DispatchSkewConfig) dispatch.Policy {
			return dispatch.NewLoadAware(cfg.Shards, cfg.Buckets)
		}},
	}
	for _, pc := range cases {
		b.Run(pc.name, func(b *testing.B) {
			cfg := DefaultDispatchSkew()
			var res DispatchSkewResult
			for i := 0; i < b.N; i++ {
				res = RunDispatchSkew(cfg, pc.mk(cfg))
			}
			b.ReportMetric(res.Imbalance, "shard-imbalance")
			b.ReportMetric(res.P99Wait, "p99-wait-slots")
			b.ReportMetric(float64(res.BucketMoves), "bucket-moves")
		})
	}
}
