package sim

import (
	"runtime"
	"sync"

	"ldlp/internal/core"
	"ldlp/internal/faults"
	"ldlp/internal/stats"
	"ldlp/internal/traffic"
)

// SweepOptions controls how the figure sweeps are run. The paper averages
// 100 one-second runs per point; tests and quick looks use fewer.
type SweepOptions struct {
	// Runs is the number of independent (placement, traffic) seeds
	// averaged per point.
	Runs int
	// Duration is the simulated seconds per run.
	Duration float64
	// MessageSize is the fixed message size for the Poisson figures
	// (552 in the paper).
	MessageSize int
	// BaseSeed offsets all seeds, for reproducibility.
	BaseSeed int64
	// Parallel enables running seeds on all cores.
	Parallel bool
	// Faults, when non-nil and enabled, impairs every run's arrival
	// stream with a seeded injector (seed derived from the run seed), so
	// the figure sweeps rerun under link faults: loss and corruption
	// remove messages before the stack sees them, duplication doubles
	// them, delay shifts them.
	Faults *faults.Config
}

// PaperSweep reproduces the published methodology: 100 runs of 1 second
// each, 552-byte messages.
func PaperSweep() SweepOptions {
	return SweepOptions{Runs: 100, Duration: 1, MessageSize: 552, BaseSeed: 1, Parallel: true}
}

// QuickSweep is a cheap variant for tests and smoke runs.
func QuickSweep() SweepOptions {
	return SweepOptions{Runs: 5, Duration: 0.3, MessageSize: 552, BaseSeed: 1, Parallel: true}
}

// averageRuns runs cfg over opts.Runs seeds with sources built by mkSrc
// and averages the scalar results.
func averageRuns(cfg Config, opts SweepOptions, mkSrc func(seed int64) traffic.Source) Result {
	results := make([]Result, opts.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel(opts))
	for r := 0; r < opts.Runs; r++ {
		r := r
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c := cfg
			c.Duration = opts.Duration
			c.Seed = opts.BaseSeed + int64(r)*7919
			src := mkSrc(c.Seed + 104729)
			var faulted *FaultedSource
			if opts.Faults != nil && opts.Faults.Enabled() {
				faulted = NewFaultedSource(src, faults.New(*opts.Faults, c.Seed*31+11))
				src = faulted
			}
			results[r] = New(c).Run(src)
			if faulted != nil {
				s := faulted.Stats()
				results[r].LinkDropped = int(s.Dropped + s.Corrupted)
			}
		}()
	}
	wg.Wait()

	var agg Result
	for _, res := range results {
		agg.Offered += res.Offered
		agg.Processed += res.Processed
		agg.Dropped += res.Dropped
		agg.LinkDropped += res.LinkDropped
		agg.Latency.Merge(&res.Latency)
		agg.P99Latency += res.P99Latency
		agg.IMissesPerMsg += res.IMissesPerMsg
		agg.DMissesPerMsg += res.DMissesPerMsg
		agg.MeanBatch += res.MeanBatch
		agg.Throughput += res.Throughput
		agg.BusyFrac += res.BusyFrac
		agg.BatchHist.Merge(res.BatchHist)
		agg.LatencyHist.Merge(res.LatencyHist)
	}
	n := float64(opts.Runs)
	agg.P99Latency /= n
	agg.IMissesPerMsg /= n
	agg.DMissesPerMsg /= n
	agg.MeanBatch /= n
	agg.Throughput /= n
	agg.BusyFrac /= n
	return agg
}

func maxParallel(opts SweepOptions) int {
	if !opts.Parallel {
		return 1
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Figure5Rates are the arrival rates the paper sweeps (msgs/sec).
var Figure5Rates = []float64{500, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 8500, 9000, 9500, 10000}

// Figure5 regenerates "cache misses per message vs arrival rate" for the
// conventional and LDLP disciplines, instruction and data misses
// separately — four series, Poisson arrivals.
func Figure5(opts SweepOptions) *stats.Table {
	tab := stats.NewTable(
		"Figure 5: cache misses per message vs arrival rate (Poisson)",
		"rate", "conv-I", "conv-D", "ldlp-I", "ldlp-D")
	for _, rate := range Figure5Rates {
		rate := rate
		conv := averageRuns(DefaultConfig(core.Conventional), opts, func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		})
		ldlp := averageRuns(DefaultConfig(core.LDLP), opts, func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		})
		tab.Add(rate, conv.IMissesPerMsg, conv.DMissesPerMsg, ldlp.IMissesPerMsg, ldlp.DMissesPerMsg)
	}
	return tab
}

// Figure6 regenerates "latency vs arrival rate" (mean latency in seconds)
// for the conventional and LDLP disciplines under Poisson arrivals.
func Figure6(opts SweepOptions) *stats.Table {
	tab := stats.NewTable(
		"Figure 6: latency vs arrival rate (Poisson)",
		"rate", "conv", "ldlp", "conv-drop", "ldlp-drop")
	for _, rate := range Figure5Rates {
		rate := rate
		conv := averageRuns(DefaultConfig(core.Conventional), opts, func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		})
		ldlp := averageRuns(DefaultConfig(core.LDLP), opts, func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		})
		tab.Add(rate, conv.Latency.Mean(), ldlp.Latency.Mean(),
			dropFrac(conv), dropFrac(ldlp))
	}
	return tab
}

func dropFrac(r Result) float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// FigureLossRates are the Bernoulli link-loss probabilities the loss
// sweep walks (0 is the clean baseline).
var FigureLossRates = []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}

// FigureLoss reruns the Figure-6 latency comparison at one fixed
// arrival rate while sweeping link loss, per discipline. Loss thins the
// arrival stream, so conventional latency *improves* with loss while
// LDLP loses batch depth — the interesting question the sweep answers
// is whether LDLP's advantage survives an imperfect link.
func FigureLoss(opts SweepOptions, rate float64, losses []float64) *stats.Table {
	if losses == nil {
		losses = FigureLossRates
	}
	tab := stats.NewTable(
		"Latency vs link loss (Poisson arrivals, fixed rate)",
		"loss", "conv", "ldlp", "conv-linkdrop", "ldlp-linkdrop")
	for _, p := range losses {
		o := opts
		if p > 0 {
			cfg := faults.Config{Loss: p}
			o.Faults = &cfg
		}
		mk := func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		}
		conv := averageRuns(DefaultConfig(core.Conventional), o, mk)
		ldlp := averageRuns(DefaultConfig(core.LDLP), o, mk)
		tab.Add(p, conv.Latency.Mean(), ldlp.Latency.Mean(),
			float64(conv.LinkDropped), float64(ldlp.LinkDropped))
	}
	return tab
}

// Figure7Clocks are the CPU clock rates the paper sweeps (Hz).
var Figure7Clocks = []float64{10e6, 20e6, 30e6, 40e6, 50e6, 60e6, 70e6, 80e6}

// Figure7Rate is the aggregate arrival rate used for the trace-driven
// sweep. The Bellcore trace's rate is fixed; the paper varies the CPU
// clock instead. 800 pkts/s mean (with heavy-tailed bursts far above it)
// makes the conventional stack saturate below roughly 40 MHz while LDLP
// batches its way through — the published crossover.
const Figure7Rate = 800

// Figure7 regenerates "latency vs CPU clock" driven by self-similar
// Ethernet-like traffic (sizes from the empirical mix, heavy-tailed
// bursts).
func Figure7(opts SweepOptions) *stats.Table {
	tab := stats.NewTable(
		"Figure 7: latency vs CPU clock (self-similar Ethernet traffic)",
		"MHz", "conv", "ldlp", "conv-drop", "ldlp-drop")
	for _, clock := range Figure7Clocks {
		clock := clock
		mk := func(seed int64) traffic.Source {
			return traffic.NewSelfSimilar(traffic.DefaultSelfSimilar(Figure7Rate, seed))
		}
		convCfg := DefaultConfig(core.Conventional)
		convCfg.Machine.ClockHz = clock
		ldlpCfg := DefaultConfig(core.LDLP)
		ldlpCfg.Machine.ClockHz = clock
		conv := averageRuns(convCfg, opts, mk)
		ldlp := averageRuns(ldlpCfg, opts, mk)
		tab.Add(clock/1e6, conv.Latency.Mean(), ldlp.Latency.Mean(),
			dropFrac(conv), dropFrac(ldlp))
	}
	return tab
}

// BatchCapAblation sweeps the LDLP batch cap at a fixed arrival rate —
// the design knob behind Figure 5's flattening beyond 8500 msgs/sec.
func BatchCapAblation(opts SweepOptions, rate float64, caps []int) *stats.Table {
	tab := stats.NewTable("Ablation: LDLP batch cap", "cap", "latency", "i-misses", "throughput")
	for _, cap := range caps {
		cap := cap
		cfg := DefaultConfig(core.LDLP)
		cfg.BatchCap = cap
		res := averageRuns(cfg, opts, func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		})
		tab.Add(float64(cap), res.Latency.Mean(), res.IMissesPerMsg, res.Throughput)
	}
	return tab
}

// QueueCostAblation sweeps the per-layer enqueue/dequeue cost (§3.2
// estimates ~40 instructions) to show LDLP's win survives realistic
// queueing overheads.
func QueueCostAblation(opts SweepOptions, rate float64, costs []float64) *stats.Table {
	tab := stats.NewTable("Ablation: queue op cost", "cycles", "latency", "throughput")
	for _, qc := range costs {
		qc := qc
		cfg := DefaultConfig(core.LDLP)
		cfg.QueueOpCycles = qc
		res := averageRuns(cfg, opts, func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		})
		tab.Add(qc, res.Latency.Mean(), res.Throughput)
	}
	return tab
}

// CacheSizeAblation sweeps the primary cache size (§6 asks whether larger
// caches make LDLP irrelevant). Both I and D caches scale together.
func CacheSizeAblation(opts SweepOptions, rate float64, sizes []int) *stats.Table {
	tab := stats.NewTable("Ablation: cache size", "KB", "conv-latency", "ldlp-latency", "conv-I", "ldlp-I")
	for _, size := range sizes {
		size := size
		mk := func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		}
		convCfg := DefaultConfig(core.Conventional)
		convCfg.Machine.ICache.Size = size
		convCfg.Machine.DCache.Size = size
		ldlpCfg := DefaultConfig(core.LDLP)
		ldlpCfg.Machine.ICache.Size = size
		ldlpCfg.Machine.DCache.Size = size
		conv := averageRuns(convCfg, opts, mk)
		ldlp := averageRuns(ldlpCfg, opts, mk)
		tab.Add(float64(size)/1024, conv.Latency.Mean(), ldlp.Latency.Mean(),
			conv.IMissesPerMsg, ldlp.IMissesPerMsg)
	}
	return tab
}

// DisciplineAblation compares conventional, ILP and LDLP at one rate.
func DisciplineAblation(opts SweepOptions, rate float64) *stats.Table {
	tab := stats.NewTable("Ablation: discipline", "discipline", "latency", "i-misses", "d-misses", "throughput")
	for i, d := range []core.Discipline{core.Conventional, core.ILP, core.LDLP} {
		res := averageRuns(DefaultConfig(d), opts, func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		})
		tab.Add(float64(i), res.Latency.Mean(), res.IMissesPerMsg, res.DMissesPerMsg, res.Throughput)
	}
	return tab
}

// PrefetchAblation compares the disciplines with and without next-line
// instruction prefetch (§1.2 notes some processors prefetch from the
// second-level cache to hide miss cost). Prefetch helps the conventional
// stack's long sequential code runs most, so it narrows — but does not
// close — LDLP's advantage.
func PrefetchAblation(opts SweepOptions, rate float64) *stats.Table {
	tab := stats.NewTable("Ablation: next-line I-prefetch", "prefetch",
		"conv-latency", "ldlp-latency", "conv-I", "ldlp-I")
	for i, pf := range []bool{false, true} {
		mk := func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		}
		convCfg := DefaultConfig(core.Conventional)
		convCfg.Machine.ICache.PrefetchNext = pf
		ldlpCfg := DefaultConfig(core.LDLP)
		ldlpCfg.Machine.ICache.PrefetchNext = pf
		conv := averageRuns(convCfg, opts, mk)
		ldlp := averageRuns(ldlpCfg, opts, mk)
		tab.Add(float64(i), conv.Latency.Mean(), ldlp.Latency.Mean(),
			conv.IMissesPerMsg, ldlp.IMissesPerMsg)
	}
	return tab
}

// ValueAddedAblation models §6's forward look: "value-added layers
// implementing services such as encryption may become more common and
// drive working set sizes up". It grows the stack from 5 to 6 layers
// where the extra layer carries a crypto-sized code working set, and
// reports how each discipline's latency degrades. LDLP's advantage grows
// with the working set.
func ValueAddedAblation(opts SweepOptions, rate float64, extraCode int) *stats.Table {
	tab := stats.NewTable("Ablation: value-added (crypto) layer", "layers",
		"conv-latency", "ldlp-latency", "ratio")
	for _, layers := range []int{5, 6} {
		mk := func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		}
		build := func(d core.Discipline) Config {
			cfg := DefaultConfig(d)
			if layers == 6 {
				// One more layer, and a bigger one: average the extra
				// code into the per-layer size so the total working set
				// is 5*6KB + extraCode.
				cfg.Layers = 6
				cfg.LayerCode = (5*cfg.LayerCode + extraCode) / 6
				// Crypto does real per-byte work on top of the loop.
				cfg.IssuePerByte *= 2
			}
			return cfg
		}
		conv := averageRuns(build(core.Conventional), opts, mk)
		ldlp := averageRuns(build(core.LDLP), opts, mk)
		ratio := 0.0
		if ldlp.Latency.Mean() > 0 {
			ratio = conv.Latency.Mean() / ldlp.Latency.Mean()
		}
		tab.Add(float64(layers), conv.Latency.Mean(), ldlp.Latency.Mean(), ratio)
	}
	return tab
}

// UnifiedCacheAblation verifies Figure 4's caption — "the results of the
// paper hold equally well for processors with unified caches" — by
// running both disciplines on a 16 KB unified cache (same total capacity
// as the split 8+8 KB pair).
func UnifiedCacheAblation(opts SweepOptions, rate float64) *stats.Table {
	tab := stats.NewTable("Ablation: split vs unified cache", "unified",
		"conv-latency", "ldlp-latency", "ratio")
	for i, unified := range []bool{false, true} {
		mk := func(seed int64) traffic.Source {
			return traffic.NewPoisson(rate, opts.MessageSize, seed)
		}
		build := func(d core.Discipline) Config {
			cfg := DefaultConfig(d)
			if unified {
				cfg.Machine.Unified = true
				cfg.Machine.ICache.Size = 16384 // same total capacity
			}
			return cfg
		}
		conv := averageRuns(build(core.Conventional), opts, mk)
		ldlp := averageRuns(build(core.LDLP), opts, mk)
		ratio := 0.0
		if ldlp.Latency.Mean() > 0 {
			ratio = conv.Latency.Mean() / ldlp.Latency.Mean()
		}
		tab.Add(float64(i), conv.Latency.Mean(), ldlp.Latency.Mean(), ratio)
	}
	return tab
}
