package sim

import (
	"math"
	"testing"

	"ldlp/internal/core"
)

// TestAnalyticCostsMatchPaperCalibration pins the closed-form constants
// for the §4 machine: the fleet simulator's service-time model must not
// drift from the cache-level calibration without this test noticing.
func TestAnalyticCostsMatchPaperCalibration(t *testing.T) {
	perMsg, perMsgBatched, perBatch, perByte := DefaultConfig(core.LDLP).AnalyticCosts()

	// 5 layers x (1376 issue + 192 lines x 20 cycle refill) / 100 MHz.
	wantMsg := 5 * (1376 + 192*20.0) / 100e6
	// 5 layers x (1376 issue + 40 queue-op) / 100 MHz.
	wantWarm := 5 * (1376 + 40.0) / 100e6
	// 5 layers x 192 lines x 20 cycle refill / 100 MHz.
	wantBatch := 5 * 192 * 20.0 / 100e6
	// 0.5 issue + 20/32 refill cycles per byte / 100 MHz.
	wantByte := (0.5 + 20.0/32) / 100e6

	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"perMsg", perMsg, wantMsg},
		{"perMsgBatched", perMsgBatched, wantWarm},
		{"perBatch", perBatch, wantBatch},
		{"perByte", perByte, wantByte},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}

	// The shape that makes LDLP worth building: a batch of one is
	// slightly worse than call-through (queue handling is pure
	// overhead), and the cache-fit batch of 14 wins by ~3x (Figure 6's
	// small-message regime).
	one := perBatch + perMsgBatched
	if one <= perMsg {
		t.Errorf("LDLP batch of 1 should cost more than conventional: %v <= %v", one, perMsg)
	}
	fourteen := (perBatch + 14*perMsgBatched) / 14
	if ratio := perMsg / fourteen; ratio < 2.5 || ratio > 4 {
		t.Errorf("batch-of-14 speedup = %.2f, want the paper's ~3x", ratio)
	}
}
