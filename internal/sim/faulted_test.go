package sim

import (
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/faults"
	"ldlp/internal/traffic"
)

// finiteSource emits n evenly spaced fixed-size arrivals then ends.
type finiteSource struct {
	n, i, size int
	dt         float64
}

func (s *finiteSource) Next() (traffic.Arrival, bool) {
	if s.i >= s.n {
		return traffic.Arrival{}, false
	}
	a := traffic.Arrival{Time: float64(s.i) * s.dt, Size: s.size}
	s.i++
	return a, true
}

func drainFaulted(f *FaultedSource) []traffic.Arrival {
	var out []traffic.Arrival
	for {
		a, ok := f.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// TestFaultedSourceAccounting: draining a finite stream must yield
// exactly originals - drops - corruptions + duplicates, in
// non-decreasing time order despite per-message jittered delay.
func TestFaultedSourceAccounting(t *testing.T) {
	cfg := faults.Config{
		Loss:        0.2,
		DupProb:     0.1,
		CorruptProb: 0.1,
		Delay:       0.002,
		Jitter:      0.004,
	}
	const n = 5000
	f := NewFaultedSource(&finiteSource{n: n, size: 552, dt: 0.001}, faults.New(cfg, 3))
	out := drainFaulted(f)
	stats := f.Stats()
	want := stats.Frames - stats.Dropped - stats.Corrupted + stats.Duplicated
	if int64(len(out)) != want {
		t.Errorf("emitted %d arrivals, want %d - %d - %d + %d = %d",
			len(out), stats.Frames, stats.Dropped, stats.Corrupted, stats.Duplicated, want)
	}
	if stats.Dropped == 0 || stats.Duplicated == 0 || stats.Delayed == 0 || stats.Corrupted == 0 {
		t.Errorf("expected every configured impairment to fire: %+v", stats)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Fatalf("arrival %d at %v precedes arrival %d at %v: Source contract broken",
				i, out[i].Time, i-1, out[i-1].Time)
		}
	}
}

// TestFaultedSourceDeterminism: same seed, same stream.
func TestFaultedSourceDeterminism(t *testing.T) {
	cfg := faults.Config{Loss: 0.1, DupProb: 0.1, Delay: 0.001, Jitter: 0.002}
	mk := func() []traffic.Arrival {
		return drainFaulted(NewFaultedSource(&finiteSource{n: 1000, size: 552, dt: 0.0005}, faults.New(cfg, 77)))
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at arrival %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSweepUnderLoss: the sweep machinery accepts a fault config, the
// link drops are surfaced in the result, and the thinned stream offers
// less work to the stack than the clean one.
func TestSweepUnderLoss(t *testing.T) {
	opts := SweepOptions{Runs: 3, Duration: 0.2, MessageSize: 552, BaseSeed: 1}
	mk := func(seed int64) traffic.Source {
		return traffic.NewPoisson(4000, opts.MessageSize, seed)
	}
	clean := averageRuns(DefaultConfig(core.LDLP), opts, mk)
	lossy := opts
	lossy.Faults = &faults.Config{Loss: 0.3}
	faulted := averageRuns(DefaultConfig(core.LDLP), lossy, mk)
	if clean.LinkDropped != 0 {
		t.Errorf("clean sweep reported %d link drops", clean.LinkDropped)
	}
	if faulted.LinkDropped == 0 {
		t.Error("lossy sweep reported no link drops")
	}
	if faulted.Offered >= clean.Offered {
		t.Errorf("30%% loss did not thin the offered load: %d >= %d", faulted.Offered, clean.Offered)
	}
	if faulted.Offered+faulted.LinkDropped < clean.Offered*9/10 {
		t.Errorf("offered+dropped (%d+%d) fell far below the clean offered load %d",
			faulted.Offered, faulted.LinkDropped, clean.Offered)
	}
}

// TestFigureLoss smoke-runs the loss sweep end to end.
func TestFigureLoss(t *testing.T) {
	opts := SweepOptions{Runs: 2, Duration: 0.1, MessageSize: 552, BaseSeed: 1}
	tab := FigureLoss(opts, 3000, []float64{0, 0.2})
	if len(tab.Points) != 2 {
		t.Fatalf("loss sweep produced %d rows, want 2", len(tab.Points))
	}
}
