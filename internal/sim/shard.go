package sim

import (
	"ldlp/internal/stats"
	"ldlp/internal/traffic"
)

// Modeled multi-core scaling of the sharded LDLP engine on the paper's
// machine. The real ShardedStack partitions arrivals across workers by
// flow hash, and each worker owns its core's primary caches — so an
// N-shard host is modeled as N independent single-core simulations, each
// fed 1/N of the arrival rate (thinning a Poisson process yields an
// independent Poisson process per shard). This deliberately models the
// no-shared-state limit the flow-hash design aims for: the paper's
// uniprocessor analysis applies per core, and the interesting question —
// answered here — is how much of an over-saturating load N cache-sized
// batches can absorb that one cannot.

// ShardedResult is the aggregate of one modeled N-shard run.
type ShardedResult struct {
	// Result holds the cross-shard aggregate: Offered/Processed/Dropped
	// and Throughput are sums, Latency is the merged distribution,
	// BusyFrac and MeanBatch are means over shards.
	Result
	// Shards is the modeled worker count.
	Shards int
	// PerShard keeps each shard's own result (shards see independent
	// Poisson streams, so they differ).
	PerShard []Result
}

// RunSharded models an N-shard LDLP host at a total arrival rate of
// rate msgs/sec: N copies of cfg, each running the full layer stack over
// a Poisson stream of rate/N. shards <= 1 is the plain uniprocessor run.
func RunSharded(cfg Config, shards int, rate float64, msgSize int, seed int64) ShardedResult {
	if shards < 1 {
		shards = 1
	}
	out := ShardedResult{Shards: shards, PerShard: make([]Result, shards)}
	for i := 0; i < shards; i++ {
		c := cfg
		c.Seed = seed + int64(i)*7919
		src := traffic.NewPoisson(rate/float64(shards), msgSize, c.Seed+104729)
		out.PerShard[i] = New(c).Run(src)
	}
	for _, r := range out.PerShard {
		out.Offered += r.Offered
		out.Processed += r.Processed
		out.Dropped += r.Dropped
		out.Latency.Merge(&r.Latency)
		out.Throughput += r.Throughput
		out.BusyFrac += r.BusyFrac
		out.MeanBatch += r.MeanBatch
		out.IMissesPerMsg += r.IMissesPerMsg
		out.DMissesPerMsg += r.DMissesPerMsg
	}
	n := float64(shards)
	out.BusyFrac /= n
	out.MeanBatch /= n
	out.IMissesPerMsg /= n
	out.DMissesPerMsg /= n
	return out
}

// ShardScaling sweeps the shard count at a fixed total arrival rate over
// the given stack configuration, reporting absolute throughput and
// speedup relative to one shard. Rates beyond a single core's saturation
// point (~19k msgs/s for 552-byte messages on the paper's machine under
// LDLP) are where sharding pays: each added core brings its own primary
// caches, so delivered throughput scales until the load is no longer the
// bottleneck.
func ShardScaling(cfg Config, opts SweepOptions, rate float64, shardCounts []int) *stats.Table {
	tab := stats.NewTable(
		"Sharded LDLP: modeled throughput vs shard count (Poisson)",
		"shards", "msgs/s", "speedup", "busy", "drop-frac")
	base := 0.0
	for _, n := range shardCounts {
		agg := averageSharded(cfg, opts, n, rate)
		if base == 0 {
			base = agg.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = agg.Throughput / base
		}
		tab.Add(float64(n), agg.Throughput, speedup, agg.BusyFrac, dropFrac(agg.Result))
	}
	return tab
}

// averageSharded averages RunSharded over opts.Runs seeds.
func averageSharded(cfg Config, opts SweepOptions, shards int, rate float64) ShardedResult {
	var agg ShardedResult
	agg.Shards = shards
	for r := 0; r < opts.Runs; r++ {
		c := cfg
		c.Duration = opts.Duration
		res := RunSharded(c, shards, rate, opts.MessageSize, opts.BaseSeed+int64(r)*31337)
		agg.Offered += res.Offered
		agg.Processed += res.Processed
		agg.Dropped += res.Dropped
		agg.Latency.Merge(&res.Latency)
		agg.Throughput += res.Throughput
		agg.BusyFrac += res.BusyFrac
		agg.MeanBatch += res.MeanBatch
	}
	n := float64(opts.Runs)
	agg.Throughput /= n
	agg.BusyFrac /= n
	agg.MeanBatch /= n
	return agg
}
