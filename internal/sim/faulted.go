package sim

import (
	"sort"

	"ldlp/internal/faults"
	"ldlp/internal/traffic"
)

// FaultedSource wraps an arrival source with a seeded link-impairment
// injector, adapting the frame-level fault model to the queueing sim's
// message-arrival view: dropped and corrupted messages vanish before the
// stack sees them (corruption is what the bottom-layer checksum turns
// into loss), duplicated messages arrive twice, delayed messages arrive
// later. Reordering has no observable effect here — sim messages are
// independent — so it only shows in the injector's counters.
//
// The wrapped stream stays monotonically non-decreasing, as the Source
// contract requires: mutated arrivals are buffered and released only
// once no earlier-timed arrival can still emerge (impairment never moves
// a message earlier than its raw time).
type FaultedSource struct {
	src     traffic.Source
	inj     *faults.Injector
	pending []traffic.Arrival // time-sorted buffer of mutated arrivals
	lastRaw float64           // latest raw arrival time pulled from src
	srcDone bool
}

// NewFaultedSource wraps src with inj. The injector must be private to
// this source (it is consulted once per raw arrival, in order).
func NewFaultedSource(src traffic.Source, inj *faults.Injector) *FaultedSource {
	return &FaultedSource{src: src, inj: inj}
}

// Stats exposes the injector's per-impairment counters for the run.
func (f *FaultedSource) Stats() faults.Stats { return f.inj.Stats() }

// Next returns the next surviving (possibly delayed or duplicated)
// arrival.
func (f *FaultedSource) Next() (traffic.Arrival, bool) {
	for {
		// Release the head of the buffer once nothing earlier can appear.
		if len(f.pending) > 0 && (f.srcDone || f.lastRaw >= f.pending[0].Time) {
			a := f.pending[0]
			f.pending = f.pending[1:]
			return a, true
		}
		if f.srcDone {
			return traffic.Arrival{}, false
		}
		a, ok := f.src.Next()
		if !ok {
			f.srcDone = true
			continue
		}
		f.lastRaw = a.Time
		act := f.inj.Frame(a.Time, a.Size*8)
		if act.Drop {
			continue
		}
		if act.Duplicate {
			// The duplicate is a pristine, undelayed copy — mirroring the
			// wire model, where the copy is taken before corruption or
			// delay touches the original.
			f.push(a)
		}
		if act.CorruptBit >= 0 {
			// The original dies at the bottom-layer checksum.
			continue
		}
		a.Time += act.Delay
		f.push(a)
	}
}

// push inserts keeping pending sorted by time (stable: equal times keep
// arrival order).
func (f *FaultedSource) push(a traffic.Arrival) {
	i := sort.Search(len(f.pending), func(i int) bool { return f.pending[i].Time > a.Time })
	f.pending = append(f.pending, traffic.Arrival{})
	copy(f.pending[i+1:], f.pending[i:])
	f.pending[i] = a
}
