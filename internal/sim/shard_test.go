package sim

import (
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/traffic"
)

func shardCfg() Config {
	cfg := DefaultConfig(core.LDLP)
	cfg.Duration = 0.05
	return cfg
}

func TestRunShardedConservation(t *testing.T) {
	res := RunSharded(shardCfg(), 4, 20000, 552, 3)
	if res.Shards != 4 || len(res.PerShard) != 4 {
		t.Fatalf("shape: %d shards, %d per-shard results", res.Shards, len(res.PerShard))
	}
	var off, proc, drop int
	for _, r := range res.PerShard {
		off += r.Offered
		proc += r.Processed
		drop += r.Dropped
	}
	if off != res.Offered || proc != res.Processed || drop != res.Dropped {
		t.Errorf("aggregate mismatch: offered %d/%d processed %d/%d dropped %d/%d",
			res.Offered, off, res.Processed, proc, res.Dropped, drop)
	}
	if res.Processed+res.Dropped > res.Offered {
		t.Errorf("processed %d + dropped %d exceeds offered %d", res.Processed, res.Dropped, res.Offered)
	}
	if res.Offered == 0 || res.Processed == 0 {
		t.Error("degenerate run: nothing offered or processed")
	}
}

func TestRunShardedOneShardMatchesPlain(t *testing.T) {
	// shards=1 must be exactly the uniprocessor simulation.
	cfg := shardCfg()
	cfg.Seed = 5 + 0*7919
	sh := RunSharded(shardCfg(), 1, 8000, 552, 5)
	plain := New(cfg).Run(traffic.NewPoisson(8000, 552, cfg.Seed+104729))
	if sh.Processed != plain.Processed || sh.Offered != plain.Offered {
		t.Errorf("1-shard run diverges from plain: %d/%d vs %d/%d",
			sh.Processed, sh.Offered, plain.Processed, plain.Offered)
	}
}

// TestShardScalingExceedsPaperSaturation is the acceptance check for the
// modeled side of the sharded engine: at a load far past a single
// core's LDLP saturation point (~19k msgs/s for 552-byte messages on
// the paper's machine), every added shard is itself saturated, so four
// shards must deliver >1.5x (in fact ~4x) the single-shard throughput.
// Deterministic: fixed seeds.
func TestShardScalingExceedsPaperSaturation(t *testing.T) {
	opts := SweepOptions{Runs: 2, Duration: 0.05, MessageSize: 552, BaseSeed: 1}
	tab := ShardScaling(DefaultConfig(core.LDLP), opts, 90000, []int{1, 2, 4})
	if len(tab.Points) != 3 {
		t.Fatalf("got %d rows", len(tab.Points))
	}
	sp2 := tab.Points[1].Y["speedup"]
	sp4 := tab.Points[2].Y["speedup"]
	if tab.Points[0].Y["speedup"] != 1.0 {
		t.Errorf("1-shard speedup = %v, want 1", tab.Points[0].Y["speedup"])
	}
	if sp2 <= 1.5 {
		t.Errorf("2-shard modeled speedup = %.2f, want > 1.5", sp2)
	}
	if sp4 <= sp2 {
		t.Errorf("4-shard speedup %.2f not above 2-shard %.2f", sp4, sp2)
	}
}
