package sim

// AnalyticCosts reduces the cache-level machine model to four
// closed-form service-time constants (seconds), the calibration the
// fleet simulator charges per process event. Driving thousands of hosts
// through the full cache simulation would dominate the event loop;
// these constants capture the same first-order story §2/§3 tell:
//
//   - perMsg: a conventional call-through stack touches every layer's
//     code per message, and with the combined working set over the
//     paper's 8 KB caches each layer's instructions miss — so each
//     message pays the full issue + icache-refill cost in every layer.
//   - perMsgBatched: inside an LDLP batch the layer's code is already
//     resident; a batched message pays only issue cycles plus the ~40
//     cycle queue handling per layer (§3.2).
//   - perBatch: the first message of each batch repopulates every
//     layer's instruction cache once — the cold cost amortized across
//     the batch, which is exactly why batching wins.
//   - perByte: the data loop, issue plus one dcache refill per line.
//
// With the paper's §4 configuration this works out to ~261 µs/message
// conventional vs ~192 µs + 71 µs/message batched: break-even at a
// batch of two, ~3.2x at the 14-message cache-fit batch — matching the
// small-message speedups of Figure 6.
func (c Config) AnalyticCosts() (perMsg, perMsgBatched, perBatch, perByte float64) {
	hz := c.Machine.ClockHz
	iLine := c.Machine.ICache.LineSize
	codeLines := float64((c.LayerCode + iLine - 1) / iLine)
	coldRefill := codeLines * float64(c.Machine.ICache.MissPenalty)
	layers := float64(c.Layers)

	perMsg = layers * (c.IssueFixed + coldRefill) / hz
	perMsgBatched = layers * (c.IssueFixed + c.QueueOpCycles) / hz
	perBatch = layers * coldRefill / hz
	perByte = (c.IssuePerByte + float64(c.Machine.DCache.MissPenalty)/float64(c.Machine.DCache.LineSize)) / hz
	return perMsg, perMsgBatched, perBatch, perByte
}
