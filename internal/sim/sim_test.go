package sim

import (
	"math"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/traffic"
)

func run(t *testing.T, d core.Discipline, rate float64, mutate func(*Config)) Result {
	t.Helper()
	cfg := DefaultConfig(d)
	cfg.Duration = 0.5
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg).Run(traffic.NewPoisson(rate, 552, 42))
}

func TestConventionalInstructionMissesMatchAnalyticModel(t *testing.T) {
	// Five 6 KB layers through an 8 KB direct-mapped cache, one message at
	// a time: every layer's 192 lines miss on every message once steady
	// state is reached — 960 instruction misses per message, the flat
	// conventional curve in Figure 5.
	res := run(t, core.Conventional, 2000, nil)
	if math.Abs(res.IMissesPerMsg-960) > 15 {
		t.Errorf("conventional I-misses/msg = %v, analytic model says ≈960", res.IMissesPerMsg)
	}
}

func TestLDLPMissesFallWithLoad(t *testing.T) {
	low := run(t, core.LDLP, 1000, nil)
	high := run(t, core.LDLP, 9000, nil)
	if !(high.IMissesPerMsg < low.IMissesPerMsg/3) {
		t.Errorf("LDLP I-misses should fall sharply with load: %v at 1k, %v at 9k",
			low.IMissesPerMsg, high.IMissesPerMsg)
	}
	// Data misses rise slightly with batching (Figure 5's caption).
	if !(high.DMissesPerMsg > low.DMissesPerMsg) {
		t.Errorf("LDLP D-misses should rise with batching: %v at 1k, %v at 9k",
			low.DMissesPerMsg, high.DMissesPerMsg)
	}
	// But the instruction-miss reduction dominates the data-miss increase.
	if (low.IMissesPerMsg - high.IMissesPerMsg) < 10*(high.DMissesPerMsg-low.DMissesPerMsg) {
		t.Errorf("I-miss reduction (%v) should dwarf D-miss increase (%v)",
			low.IMissesPerMsg-high.IMissesPerMsg, high.DMissesPerMsg-low.DMissesPerMsg)
	}
}

func TestLDLPBeatsConventionalUnderLoad(t *testing.T) {
	conv := run(t, core.Conventional, 6000, nil)
	ldlp := run(t, core.LDLP, 6000, nil)
	if !(ldlp.Latency.Mean() < conv.Latency.Mean()/10) {
		t.Errorf("at 6000 msg/s LDLP latency %v should be far below conventional %v",
			ldlp.Latency.Mean(), conv.Latency.Mean())
	}
	if conv.Dropped == 0 {
		t.Error("conventional at 6000 msg/s should overflow the 500-packet buffer")
	}
	if ldlp.Dropped != 0 {
		t.Errorf("LDLP at 6000 msg/s dropped %d packets, want 0", ldlp.Dropped)
	}
}

func TestLDLPLowLoadDegeneratesToConventional(t *testing.T) {
	// Under light load batches are ~1 and the two disciplines should be
	// within queueing-overhead distance of each other.
	conv := run(t, core.Conventional, 500, nil)
	ldlp := run(t, core.LDLP, 500, nil)
	if ldlp.MeanBatch > 1.2 {
		t.Errorf("mean batch at 500 msg/s = %v, want ≈1", ldlp.MeanBatch)
	}
	ratio := ldlp.Latency.Mean() / conv.Latency.Mean()
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("latency ratio at light load = %v, want ≈1", ratio)
	}
}

func TestBatchCapOneMatchesConventionalThroughput(t *testing.T) {
	// LDLP with batch cap 1 does strictly more work (queue ops) than
	// conventional, so its latency must be >= conventional's while the
	// miss profile matches.
	conv := run(t, core.Conventional, 2000, nil)
	capped := run(t, core.LDLP, 2000, func(c *Config) { c.BatchCap = 1 })
	if math.Abs(capped.IMissesPerMsg-conv.IMissesPerMsg) > 20 {
		t.Errorf("cap-1 LDLP I-misses %v vs conventional %v, want ≈equal",
			capped.IMissesPerMsg, conv.IMissesPerMsg)
	}
	if capped.Latency.Mean() < conv.Latency.Mean()*0.95 {
		t.Errorf("cap-1 LDLP latency %v unexpectedly beats conventional %v",
			capped.Latency.Mean(), conv.Latency.Mean())
	}
}

func TestBatchBoundedByDataCache(t *testing.T) {
	// 8 KB D-cache minus 5*256 layer data over 576-byte rounded buffers:
	// at most 12 messages per batch; the cap rule must keep MeanBatch at
	// or under that bound even at overload.
	res := run(t, core.LDLP, 12000, nil)
	budget := 8192 - 5*256
	maxBatch := float64(budget / 576)
	if res.MeanBatch > maxBatch+0.01 {
		t.Errorf("mean batch %v exceeds the D-cache bound %v", res.MeanBatch, maxBatch)
	}
}

func TestILPReducesDataMissesNotInstructionMisses(t *testing.T) {
	conv := run(t, core.Conventional, 2000, nil)
	ilp := run(t, core.ILP, 2000, nil)
	if !(ilp.DMissesPerMsg < conv.DMissesPerMsg) {
		t.Errorf("ILP D-misses %v should be below conventional %v",
			ilp.DMissesPerMsg, conv.DMissesPerMsg)
	}
	if math.Abs(ilp.IMissesPerMsg-conv.IMissesPerMsg) > 20 {
		t.Errorf("ILP I-misses %v should match conventional %v (outer loop unchanged)",
			ilp.IMissesPerMsg, conv.IMissesPerMsg)
	}
	// §1's point: for small messages ILP's data savings barely move the
	// needle, because code dominates.
	convTotal := conv.IMissesPerMsg + conv.DMissesPerMsg
	ilpTotal := ilp.IMissesPerMsg + ilp.DMissesPerMsg
	if (convTotal-ilpTotal)/convTotal > 0.10 {
		t.Errorf("ILP total-miss saving = %.1f%%, should be marginal for small messages",
			100*(convTotal-ilpTotal)/convTotal)
	}
}

func TestDropTailAt500(t *testing.T) {
	res := run(t, core.Conventional, 10000, nil)
	if res.Dropped == 0 {
		t.Fatal("overload must drop packets")
	}
	if res.Offered != res.Processed+res.Dropped {
		// Processed counts in-flight completions after the horizon too;
		// everything admitted is eventually processed.
		t.Errorf("conservation: offered %d != processed %d + dropped %d",
			res.Offered, res.Processed, res.Dropped)
	}
}

func TestConservationNoLoss(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.ILP, core.LDLP} {
		res := run(t, d, 3000, nil)
		if res.Dropped != 0 && d != core.Conventional {
			t.Errorf("%v at 3000 msg/s dropped %d", d, res.Dropped)
		}
		if res.Processed+res.Dropped != res.Offered {
			t.Errorf("%v: offered %d != processed %d + dropped %d",
				d, res.Offered, res.Processed, res.Dropped)
		}
	}
}

func TestLatenciesPositiveAndOrdered(t *testing.T) {
	res := run(t, core.LDLP, 4000, nil)
	if res.Latency.Min() <= 0 {
		t.Errorf("min latency %v, want positive", res.Latency.Min())
	}
	if res.P99Latency < res.Latency.Mean() {
		t.Errorf("p99 %v below mean %v", res.P99Latency, res.Latency.Mean())
	}
	if res.Latency.Max() < res.P99Latency {
		t.Errorf("max %v below p99 %v", res.Latency.Max(), res.P99Latency)
	}
	// Minimum service time: 5 layers at ~(1652+queue+stalls) cycles each,
	// 100 MHz. Even fully warm that is > 80 µs.
	if res.Latency.Min() < 80e-6 {
		t.Errorf("min latency %v below physical service floor", res.Latency.Min())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := DefaultConfig(core.LDLP)
	cfg.Duration = 0.2
	a := New(cfg).Run(traffic.NewPoisson(3000, 552, 7))
	b := New(cfg).Run(traffic.NewPoisson(3000, 552, 7))
	if a.Processed != b.Processed || a.Latency.Mean() != b.Latency.Mean() {
		t.Errorf("same seeds should reproduce exactly: %+v vs %+v", a.Processed, b.Processed)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Layers = 0 },
		func(c *Config) { c.LayerCode = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.BufferLimit = 0 },
		func(c *Config) { c.IssueFixed = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(core.LDLP)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the config", i)
		}
	}
	if err := DefaultConfig(core.LDLP).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestOversizeMessageStillProcessed(t *testing.T) {
	// A message bigger than the D-cache must still form a batch of one,
	// not wedge the batch-fitting loop.
	cfg := DefaultConfig(core.LDLP)
	cfg.Duration = 0.05
	res := New(cfg).Run(traffic.NewDeterministic(100, 10000))
	if res.Processed == 0 {
		t.Fatal("oversize messages were never processed")
	}
}

func TestSweepTablesComeOutOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	opts := SweepOptions{Runs: 2, Duration: 0.1, MessageSize: 552, BaseSeed: 1, Parallel: true}
	f5 := Figure5(opts)
	if len(f5.Points) != len(Figure5Rates) {
		t.Errorf("figure 5 rows = %d, want %d", len(f5.Points), len(Figure5Rates))
	}
	f6 := Figure6(opts)
	var convLow, convHigh float64
	for _, p := range f6.Points {
		if p.X == 1000 {
			convLow = p.Y["conv"]
		}
		if p.X == 10000 {
			convHigh = p.Y["conv"]
		}
	}
	if !(convHigh > convLow) {
		t.Errorf("conventional latency should grow with rate: %v -> %v", convLow, convHigh)
	}
}

func TestFigure7TraceDrivenShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	// Self-similar burstiness needs a longer window to express itself
	// than the Poisson sweeps do.
	opts := SweepOptions{Runs: 2, Duration: 2, MessageSize: 552, BaseSeed: 3, Parallel: true}
	tab := Figure7(opts)
	byClock := map[float64]map[string]float64{}
	for _, p := range tab.Points {
		byClock[p.X] = p.Y
	}
	// Latency increases as the clock falls, and at low clocks LDLP wins
	// big (the conventional stack saturates below ~40 MHz).
	if !(byClock[10]["conv"] > byClock[80]["conv"]) {
		t.Error("conventional latency should grow as the clock falls")
	}
	if !(byClock[20]["ldlp"] < byClock[20]["conv"]/3) {
		t.Errorf("at 20 MHz LDLP (%v) should be far below conventional (%v)",
			byClock[20]["ldlp"], byClock[20]["conv"])
	}
}

func TestAblationTables(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	opts := SweepOptions{Runs: 2, Duration: 0.1, MessageSize: 552, BaseSeed: 1, Parallel: true}
	caps := BatchCapAblation(opts, 8000, []int{1, 4, 14})
	var lat1, lat14 float64
	for _, p := range caps.Points {
		if p.X == 1 {
			lat1 = p.Y["latency"]
		}
		if p.X == 14 {
			lat14 = p.Y["latency"]
		}
	}
	if !(lat14 < lat1) {
		t.Errorf("batching should help at 8000 msg/s: cap1 %v vs cap14 %v", lat1, lat14)
	}

	qc := QueueCostAblation(opts, 6000, []float64{0, 40, 200})
	if len(qc.Points) != 3 {
		t.Errorf("queue-cost rows = %d", len(qc.Points))
	}

	cs := CacheSizeAblation(opts, 3000, []int{8192, 65536})
	byKB := map[float64]map[string]float64{}
	for _, p := range cs.Points {
		byKB[p.X] = p.Y
	}
	// §6: with a 64 KB cache the whole 30 KB stack fits; conventional
	// misses collapse (residual misses come from random-placement
	// conflicts, which a good layout would remove entirely).
	if !(byKB[64]["conv-I"] < byKB[8]["conv-I"]/3) {
		t.Errorf("64 KB cache should collapse conventional misses: %v vs %v",
			byKB[64]["conv-I"], byKB[8]["conv-I"])
	}

	da := DisciplineAblation(opts, 4000)
	if len(da.Points) != 3 {
		t.Errorf("discipline rows = %d", len(da.Points))
	}
}

func BenchmarkSimSecondLDLP(b *testing.B) {
	cfg := DefaultConfig(core.LDLP)
	cfg.Duration = 0.1
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		New(cfg).Run(traffic.NewPoisson(8000, 552, int64(i)))
	}
}

func TestPrefetchAblationNarrowsButKeepsTheGap(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	opts := SweepOptions{Runs: 2, Duration: 0.1, MessageSize: 552, BaseSeed: 1, Parallel: true}
	tab := PrefetchAblation(opts, 3000)
	var off, on map[string]float64
	for _, p := range tab.Points {
		if p.X == 0 {
			off = p.Y
		} else {
			on = p.Y
		}
	}
	// Prefetch must cut conventional instruction misses roughly in half
	// (sequential 6KB layer sweeps).
	if !(on["conv-I"] < 0.65*off["conv-I"]) {
		t.Errorf("prefetch conv-I %v vs %v: want a big cut", on["conv-I"], off["conv-I"])
	}
	// And LDLP still wins with prefetch on.
	if !(on["ldlp-latency"] < on["conv-latency"]) {
		t.Errorf("with prefetch, LDLP %v should still beat conventional %v",
			on["ldlp-latency"], on["conv-latency"])
	}
}

func TestValueAddedLayerGrowsLDLPAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	opts := SweepOptions{Runs: 2, Duration: 0.15, MessageSize: 552, BaseSeed: 1, Parallel: true}
	tab := ValueAddedAblation(opts, 2500, 12288)
	var base, grown map[string]float64
	for _, p := range tab.Points {
		if p.X == 5 {
			base = p.Y
		} else {
			grown = p.Y
		}
	}
	if !(grown["ratio"] > base["ratio"]) {
		t.Errorf("value-added layer should grow the conv/ldlp ratio: %v -> %v",
			base["ratio"], grown["ratio"])
	}
}

func TestUnifiedCacheKeepsTheResult(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	// Figure 4's caption: the paper's conclusion holds for unified caches.
	opts := SweepOptions{Runs: 2, Duration: 0.15, MessageSize: 552, BaseSeed: 2, Parallel: true}
	tab := UnifiedCacheAblation(opts, 5000)
	for _, p := range tab.Points {
		if !(p.Y["ratio"] > 3) {
			t.Errorf("unified=%v: conv/ldlp ratio = %v, want LDLP clearly ahead", p.X == 1, p.Y["ratio"])
		}
	}
}

func TestSimMatchesMD1QueueingTheory(t *testing.T) {
	// The simulator should agree with analytic queueing theory where
	// theory applies: conventional processing has near-deterministic
	// service (same working-set sweep per message), so with Poisson
	// arrivals the system is M/D/1 and the mean sojourn time is
	//     W = S * (1 + rho/(2*(1-rho))).
	// This is an end-to-end validation of the event loop's time
	// accounting, independent of the paper's numbers.
	const rate = 2000.0
	cfg := DefaultConfig(core.Conventional)
	cfg.Duration = 2
	res := New(cfg).Run(traffic.NewPoisson(rate, 552, 99))

	s := res.BusyFrac * cfg.Duration / float64(res.Processed) // service time
	rho := s * rate
	if rho >= 1 {
		t.Fatalf("utilization %.2f too high for the M/D/1 check", rho)
	}
	analytic := s * (1 + rho/(2*(1-rho)))
	got := res.Latency.Mean()
	if math.Abs(got-analytic) > 0.15*analytic {
		t.Errorf("mean latency %.1fµs vs M/D/1 prediction %.1fµs (S=%.1fµs, rho=%.2f)",
			got*1e6, analytic*1e6, s*1e6, rho)
	}
}

func TestLatencyQuantilesOrdered(t *testing.T) {
	res := run(t, core.LDLP, 7000, nil)
	if !(res.P50Latency <= res.P90Latency && res.P90Latency <= res.P99Latency) {
		t.Errorf("quantiles out of order: p50=%v p90=%v p99=%v",
			res.P50Latency, res.P90Latency, res.P99Latency)
	}
	if res.P50Latency <= 0 {
		t.Error("p50 should be positive")
	}
}

// Property: at overload, LDLP's processed count is at least conventional's
// for any placement seed (the throughput claim, seed-robust).
func TestLDLPThroughputDominatesQuick(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		mk := func(d core.Discipline) Result {
			cfg := DefaultConfig(d)
			cfg.Duration = 0.2
			cfg.Seed = seed
			return New(cfg).Run(traffic.NewPoisson(9000, 552, seed+50))
		}
		conv, ldlp := mk(core.Conventional), mk(core.LDLP)
		if ldlp.Processed < conv.Processed {
			t.Errorf("seed %d: LDLP processed %d < conventional %d",
				seed, ldlp.Processed, conv.Processed)
		}
	}
}

func TestRateScalingDualOfClockScaling(t *testing.T) {
	// Figure 7 varies the clock because the trace rate is fixed; scaling
	// the trace instead is the dual experiment. At matched utilization
	// (2x rate on a 2x clock) latency in CYCLES is invariant, so latency
	// in seconds halves.
	base := traffic.Take(traffic.NewSelfSimilar(traffic.DefaultSelfSimilar(800, 17)), 2, 0)

	run := func(arrivals []traffic.Arrival, clock float64) Result {
		cfg := DefaultConfig(core.LDLP)
		cfg.Machine.ClockHz = clock
		cfg.Duration = 2
		return New(cfg).Run(traffic.NewTrace(arrivals))
	}
	slow := run(base, 50e6)
	fast := run(traffic.ScaleRate(base, 2), 100e6)
	// Same messages, same per-message cycles, double the clock: latency
	// in seconds should be half, within simulation noise.
	ratio := fast.Latency.Mean() / slow.Latency.Mean()
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("latency ratio at 2x rate / 2x clock = %.3f, want ≈0.5", ratio)
	}
	if fast.Processed != slow.Processed*1 && fast.Processed < slow.Processed {
		t.Errorf("processed differ: %d vs %d", fast.Processed, slow.Processed)
	}
}
