package faults

import (
	"fmt"
	"reflect"
	"testing"
)

// drive runs n frames through a fresh injector and returns the actions.
func drive(cfg Config, seed int64, n int, dt float64) ([]Action, Stats) {
	inj := New(cfg, seed)
	acts := make([]Action, n)
	for i := range acts {
		acts[i] = inj.Frame(float64(i)*dt, 1000*8)
	}
	return acts, inj.Stats()
}

func TestDeterministicUnderSameSeed(t *testing.T) {
	cfg := Presets()["all"]
	a1, s1 := drive(cfg, 42, 5000, 0.001)
	a2, s2 := drive(cfg, 42, 5000, 0.001)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatal("same seed produced different impairment sequences")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	a3, _ := drive(cfg, 43, 5000, 0.001)
	if fmt.Sprint(a1) == fmt.Sprint(a3) {
		t.Fatal("different seeds produced identical impairment sequences (suspicious)")
	}
}

func TestBernoulliLossRateAndAccounting(t *testing.T) {
	const n = 20000
	_, s := drive(Config{Loss: 0.1}, 7, n, 0)
	if s.Frames != n {
		t.Fatalf("Frames = %d, want %d", s.Frames, n)
	}
	if s.Dropped != s.LossDrops || s.BurstDrops != 0 || s.PartitionDrops != 0 {
		t.Fatalf("drop attribution inconsistent: %+v", s)
	}
	rate := float64(s.Dropped) / n
	if rate < 0.08 || rate > 0.12 {
		t.Errorf("Bernoulli loss rate = %v, want ~0.1", rate)
	}
}

func TestGilbertElliottLossIsBursty(t *testing.T) {
	// Same long-run loss rate two ways: independent Bernoulli vs a GE
	// chain that is rarely bad but very lossy when bad. The GE drops
	// must cluster: their mean run length is measurably longer.
	const n = 200000
	ge := Config{GE: &GilbertElliott{PGoodBad: 0.01, PBadGood: 0.2, LossBad: 0.9}}
	bern := Config{Loss: float64(1) / 23} // ~GE steady-state loss

	runLen := func(cfg Config) float64 {
		acts, _ := drive(cfg, 11, n, 0)
		runs, dropped, cur := 0, 0, 0
		for _, a := range acts {
			if a.Drop {
				dropped++
				cur++
			} else if cur > 0 {
				runs++
				cur = 0
			}
		}
		if cur > 0 {
			runs++
		}
		if runs == 0 {
			t.Fatal("no drops at all")
		}
		return float64(dropped) / float64(runs)
	}
	geRun, bernRun := runLen(ge), runLen(bern)
	if geRun < 2*bernRun {
		t.Errorf("GE mean loss-run %v not clearly burstier than Bernoulli %v", geRun, bernRun)
	}
}

func TestPartitionWindowDropsExactly(t *testing.T) {
	cfg := Config{Partitions: []Window{{From: 1.0, To: 2.0}}}
	inj := New(cfg, 1)
	for _, tc := range []struct {
		now  float64
		drop bool
	}{{0.5, false}, {0.999, false}, {1.0, true}, {1.5, true}, {1.999, true}, {2.0, false}, {3.0, false}} {
		act := inj.Frame(tc.now, 64)
		if act.Drop != tc.drop {
			t.Errorf("t=%v: drop=%v, want %v", tc.now, act.Drop, tc.drop)
		}
	}
	if s := inj.Stats(); s.PartitionDrops != 3 || s.Dropped != 3 {
		t.Errorf("partition accounting: %+v", s)
	}
}

func TestMutationsComposeAndCount(t *testing.T) {
	cfg := Config{DupProb: 1, ReorderProb: 1, ReorderSpan: 2, Delay: 0.01, Jitter: 0.02, CorruptProb: 1}
	inj := New(cfg, 3)
	for i := 0; i < 100; i++ {
		act := inj.Frame(0, 100*8)
		if act.Drop {
			t.Fatal("no drop model configured, yet a frame dropped")
		}
		if !act.Duplicate || act.ReorderSpan < 1 || act.ReorderSpan > 2 {
			t.Fatalf("mutations missing: %+v", act)
		}
		if act.Delay < 0.01 || act.Delay >= 0.03 {
			t.Fatalf("delay %v outside [0.01, 0.03)", act.Delay)
		}
		if act.CorruptBit < 0 || act.CorruptBit >= 100*8 {
			t.Fatalf("corrupt bit %d outside frame", act.CorruptBit)
		}
	}
	s := inj.Stats()
	if s.Duplicated != 100 || s.Reordered != 100 || s.Delayed != 100 || s.Corrupted != 100 {
		t.Errorf("mutation counters: %+v", s)
	}
}

func TestDroppedFramesGetNoMutations(t *testing.T) {
	cfg := Config{Loss: 1, DupProb: 1, CorruptProb: 1, Delay: 0.01}
	inj := New(cfg, 5)
	for i := 0; i < 50; i++ {
		act := inj.Frame(0, 64)
		if !act.Drop || act.Duplicate || act.Delay != 0 || act.CorruptBit >= 0 {
			t.Fatalf("dropped frame carried mutations: %+v", act)
		}
	}
	if s := inj.Stats(); s.Duplicated+s.Delayed+s.Corrupted != 0 {
		t.Errorf("mutation counters moved on drops: %+v", s)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Loss: -0.1},
		{Loss: 1.5},
		{DupProb: 2},
		{Delay: -1},
		{ReorderSpan: -2},
		{Partitions: []Window{{From: 2, To: 1}}},
		{GE: &GilbertElliott{PGoodBad: 1.2}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated but should not: %+v", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	New(Config{Loss: 2}, 1)
}

func TestPresetsAreValidAndNamed(t *testing.T) {
	presets := Presets()
	names := PresetNames()
	if len(names) != len(presets) {
		t.Fatalf("PresetNames has %d entries, Presets has %d", len(names), len(presets))
	}
	for _, name := range names {
		cfg, ok := presets[name]
		if !ok {
			t.Fatalf("preset %q named but not defined", name)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if name != "clean" && !cfg.Enabled() {
			t.Errorf("preset %q impairs nothing", name)
		}
	}
	if Presets()["clean"].Enabled() {
		t.Error("clean preset should impair nothing")
	}
	if got := Presets()["all"].String(); got == "none" {
		t.Error("all preset stringified as none")
	}
}

// statsWithSeq fills every int64 field of a Stats with distinct values
// derived from base via reflection, so the merge tests cover fields
// added later without being rewritten.
func statsWithSeq(t *testing.T, base int64) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Int64 {
			t.Fatalf("Stats field %s is %v, not int64; teach the merge tests about it",
				v.Type().Field(i).Name, v.Field(i).Kind())
		}
		v.Field(i).SetInt(base + int64(i))
	}
	return s
}

func TestStatsMergeSumsEveryField(t *testing.T) {
	a := statsWithSeq(t, 100)
	b := statsWithSeq(t, 1000)
	got := a
	got.Merge(b)
	va, vb, vg := reflect.ValueOf(a), reflect.ValueOf(b), reflect.ValueOf(got)
	for i := 0; i < vg.NumField(); i++ {
		want := va.Field(i).Int() + vb.Field(i).Int()
		if vg.Field(i).Int() != want {
			t.Errorf("Merge dropped field %s: got %d, want %d (Merge must sum every Stats field)",
				vg.Type().Field(i).Name, vg.Field(i).Int(), want)
		}
	}
}

// TestStatsMergeAssociative pins the property the fleet summary relies
// on: per-link stats can be rolled up in any grouping — per node, per
// rack, or all at once — and the totals agree.
func TestStatsMergeAssociative(t *testing.T) {
	a := statsWithSeq(t, 3)
	b := statsWithSeq(t, 70)
	c := statsWithSeq(t, 9000)

	left := a // (a+b)+c
	left.Merge(b)
	left.Merge(c)

	bc := b // a+(b+c)
	bc.Merge(c)
	right := a
	right.Merge(bc)

	if left != right {
		t.Fatalf("merge is not associative: (a+b)+c = %+v, a+(b+c) = %+v", left, right)
	}
	if got := MergeStats(a, b, c); got != left {
		t.Fatalf("MergeStats disagrees with pairwise merges: %+v vs %+v", got, left)
	}

	ba := b // commutativity rides along: b+a == a+b
	ba.Merge(a)
	ab := a
	ab.Merge(b)
	if ab != ba {
		t.Fatalf("merge is not commutative: a+b = %+v, b+a = %+v", ab, ba)
	}

	var zero Stats // and zero is the identity
	withZero := a
	withZero.Merge(zero)
	if withZero != a {
		t.Fatalf("zero Stats is not the merge identity: %+v vs %+v", withZero, a)
	}
}

// TestStatsMergeMatchesSharedInjectorBooks: merging real per-link
// injector stats preserves the ledger identity the single-wire stats
// promise (Dropped fully attributed to its three causes).
func TestStatsMergeRealInjectors(t *testing.T) {
	cfg := Presets()["all"]
	var merged Stats
	var frames int64
	for link := int64(0); link < 5; link++ {
		_, s := drive(cfg, 100+link, 3000, 0.0005)
		frames += s.Frames
		merged.Merge(s)
	}
	if merged.Frames != frames {
		t.Fatalf("merged Frames = %d, want %d", merged.Frames, frames)
	}
	if merged.Dropped != merged.LossDrops+merged.BurstDrops+merged.PartitionDrops {
		t.Fatalf("merged drop attribution broken: %+v", merged)
	}
}
