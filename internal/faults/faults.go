// Package faults is a deterministic, seeded link-impairment model: the
// chaos layer the paper's §3.3 batching argument needs to be tested
// against. The on-line batching rule ("process all currently available
// messages"), the 500-packet buffer and every recovery path above the
// link — TCP RTO/persist/TIME-WAIT, IP reassembly, SSCOP selective
// retransmission — only show their real behaviour under loss, delay,
// duplication, reordering, corruption and partitions; this package
// produces those impairments reproducibly.
//
// An Injector is a pure decision engine: given the frame sequence it is
// shown (and the simulated clock), it answers "what happens to this
// frame" — the carrier (netstack.Net per destination, sim's faulted
// traffic source) applies the verdict. Decisions come from a private
// seeded PRNG, so the same seed and the same frame sequence yield the
// same impairment pattern under any discipline or shard count; that is
// what lets the chaos suite assert observational equivalence across
// schedules while the link misbehaves identically.
//
// Every impairment keeps its own counter, so a test can reconcile the
// books exactly: frames offered = delivered + dropped, with each drop
// attributed to Bernoulli loss, a Gilbert–Elliott bad state, or a
// partition window, and each surviving mutation (duplicate, delay,
// reorder, bit flip) visible in Stats.
package faults

import (
	"fmt"
	"math/rand"
	"strings"
)

// Window is a half-open interval of simulated time [From, To) during
// which the link is partitioned: every frame is dropped.
type Window struct {
	From, To float64
}

// contains reports whether t falls inside the window.
func (w Window) contains(t float64) bool { return t >= w.From && t < w.To }

// GilbertElliott parameterizes the classic two-state bursty-loss model:
// the link flips between a Good and a Bad state with the given
// per-frame transition probabilities, and drops frames with a
// state-dependent probability. PBadGood small and LossBad large yields
// the clustered losses that distinguish burst recovery (one RTO, many
// segments) from independent Bernoulli drops.
type GilbertElliott struct {
	// PGoodBad / PBadGood are the per-frame transition probabilities.
	PGoodBad, PBadGood float64
	// LossGood / LossBad are the drop probabilities within each state.
	LossGood, LossBad float64
}

// Config composes the impairments applied to one link direction. The
// zero value impairs nothing; each field enables one impairment
// independently, and all enabled impairments are consulted per frame
// (drop models first — a dropped frame is not also delayed or
// corrupted).
type Config struct {
	// Loss is the Bernoulli per-frame drop probability.
	Loss float64
	// GE, when non-nil, adds Gilbert–Elliott bursty loss on top of Loss.
	GE *GilbertElliott
	// Partitions are absolute simulated-time windows during which every
	// frame is dropped (a link outage; pair two directions for a full
	// partition).
	Partitions []Window
	// DupProb is the probability a delivered frame is duplicated once.
	DupProb float64
	// ReorderProb is the probability a delivered frame is held back so
	// that up to ReorderSpan later frames overtake it.
	ReorderProb float64
	// ReorderSpan is how many frames may overtake a reordered one
	// (default 3 when ReorderProb > 0).
	ReorderSpan int
	// Delay adds fixed latency (simulated seconds) to every frame;
	// Jitter adds a further uniform [0, Jitter) per frame. Jittered
	// frames flushed by the clock may arrive out of order, which is the
	// point.
	Delay, Jitter float64
	// CorruptProb is the probability of flipping exactly one bit of the
	// frame. One bit, deliberately: a single flip is always detected by
	// the Internet checksum, so corruption must surface as a counted
	// drop (BadIP/BadTCP/BadUDP), never as corrupt application data.
	CorruptProb float64
}

// Validate reports configuration errors (probabilities outside [0,1],
// negative delays, inverted windows).
func (c Config) Validate() error {
	// An ordered slice, not a map: with several probabilities out of
	// range, map iteration made the reported error vary run to run.
	type probEntry struct {
		name string
		p    float64
	}
	probs := []probEntry{
		{"Loss", c.Loss}, {"DupProb", c.DupProb},
		{"ReorderProb", c.ReorderProb}, {"CorruptProb", c.CorruptProb},
	}
	if c.GE != nil {
		probs = append(probs,
			probEntry{"GE.PGoodBad", c.GE.PGoodBad},
			probEntry{"GE.PBadGood", c.GE.PBadGood},
			probEntry{"GE.LossGood", c.GE.LossGood},
			probEntry{"GE.LossBad", c.GE.LossBad})
	}
	for _, e := range probs {
		if e.p < 0 || e.p > 1 {
			return fmt.Errorf("faults: %s = %v outside [0,1]", e.name, e.p)
		}
	}
	if c.Delay < 0 || c.Jitter < 0 {
		return fmt.Errorf("faults: negative delay %v/jitter %v", c.Delay, c.Jitter)
	}
	if c.ReorderSpan < 0 {
		return fmt.Errorf("faults: negative reorder span %d", c.ReorderSpan)
	}
	for _, w := range c.Partitions {
		if w.To < w.From {
			return fmt.Errorf("faults: inverted partition window [%v,%v)", w.From, w.To)
		}
	}
	return nil
}

// Enabled reports whether the config impairs anything at all.
func (c Config) Enabled() bool {
	return c.Loss > 0 || c.GE != nil || len(c.Partitions) > 0 ||
		c.DupProb > 0 || c.ReorderProb > 0 || c.Delay > 0 || c.Jitter > 0 ||
		c.CorruptProb > 0
}

// String summarizes the enabled impairments compactly ("loss=0.1
// ge dup=0.05 delay=2ms±1ms corrupt=0.3 partitions=2").
func (c Config) String() string {
	var parts []string
	if c.Loss > 0 {
		parts = append(parts, fmt.Sprintf("loss=%g", c.Loss))
	}
	if c.GE != nil {
		parts = append(parts, fmt.Sprintf("ge=%g/%g", c.GE.PGoodBad, c.GE.LossBad))
	}
	if c.DupProb > 0 {
		parts = append(parts, fmt.Sprintf("dup=%g", c.DupProb))
	}
	if c.ReorderProb > 0 {
		parts = append(parts, fmt.Sprintf("reorder=%g", c.ReorderProb))
	}
	if c.Delay > 0 || c.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("delay=%gs±%gs", c.Delay, c.Jitter))
	}
	if c.CorruptProb > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%g", c.CorruptProb))
	}
	if len(c.Partitions) > 0 {
		parts = append(parts, fmt.Sprintf("partitions=%d", len(c.Partitions)))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Action is the verdict for one frame. Exactly one of Drop or delivery
// applies; on delivery the mutation fields compose (a frame can be
// duplicated and delayed and corrupted).
type Action struct {
	// Drop discards the frame (the owner must free its buffers).
	Drop bool
	// Duplicate delivers one extra pristine copy of the frame.
	Duplicate bool
	// ReorderSpan > 0 holds the frame back so up to that many later
	// frames overtake it.
	ReorderSpan int
	// Delay holds the frame for this many simulated seconds before
	// delivery.
	Delay float64
	// CorruptBit, when >= 0, is the index of the single bit to flip in
	// the frame (already reduced modulo the frame's bit length).
	CorruptBit int
}

// Stats are the per-impairment counters. They are written only by the
// goroutine driving the injector (the network pump or a sim run); read
// them while the carrier is quiescent.
type Stats struct {
	// Frames counts original frames offered; Dropped those discarded.
	// Delivered originals = Frames - Dropped; the carrier sees
	// Frames - Dropped + Duplicated arrivals in total.
	Frames, Dropped int64
	// Drop attribution: Dropped == LossDrops + BurstDrops + PartitionDrops.
	LossDrops, BurstDrops, PartitionDrops int64
	// Mutations applied to delivered frames.
	Duplicated, Reordered, Delayed, Corrupted int64
}

// Merge adds other's counters into s field-wise. Stats began life
// assuming one wire; a fleet topology runs one injector per link, and
// this is how their books roll up into one fleet-wide summary. Merging
// is pure addition (max-free, state-free), so it is commutative and
// associative: any grouping of per-link stats — per node, per rack,
// all at once — yields the same totals, and the merged summary obeys
// the same identities each instance does (Dropped == LossDrops +
// BurstDrops + PartitionDrops).
func (s *Stats) Merge(other Stats) {
	s.Frames += other.Frames
	s.Dropped += other.Dropped
	s.LossDrops += other.LossDrops
	s.BurstDrops += other.BurstDrops
	s.PartitionDrops += other.PartitionDrops
	s.Duplicated += other.Duplicated
	s.Reordered += other.Reordered
	s.Delayed += other.Delayed
	s.Corrupted += other.Corrupted
}

// MergeStats folds a set of per-link stats into one summary.
func MergeStats(all ...Stats) Stats {
	var out Stats
	for _, s := range all {
		out.Merge(s)
	}
	return out
}

// Injector makes seeded impairment decisions for one link direction.
// Not safe for concurrent use: one goroutine (the network pump, one sim
// run) owns it, which is also what keeps its decisions deterministic.
type Injector struct {
	cfg   Config
	rng   *rand.Rand
	bad   bool // Gilbert–Elliott state
	stats Stats
}

// New builds an injector for cfg with its own PRNG seeded by seed.
// Panics on an invalid config (impairment configs are static test/tool
// inputs; failing loudly beats silently sanitizing them).
func New(cfg Config, seed int64) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.ReorderProb > 0 && cfg.ReorderSpan == 0 {
		cfg.ReorderSpan = 3
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns a snapshot of the per-impairment counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// Frame decides the fate of one frame of `bits` bits (bytes*8) observed
// at simulated time now. The caller applies the returned Action.
func (inj *Injector) Frame(now float64, bits int) Action {
	inj.stats.Frames++
	cfg := &inj.cfg

	// Drop models first: a dropped frame undergoes no other impairment.
	for _, w := range cfg.Partitions {
		if w.contains(now) {
			inj.stats.Dropped++
			inj.stats.PartitionDrops++
			return Action{Drop: true, CorruptBit: -1}
		}
	}
	if cfg.Loss > 0 && inj.rng.Float64() < cfg.Loss {
		inj.stats.Dropped++
		inj.stats.LossDrops++
		return Action{Drop: true, CorruptBit: -1}
	}
	if ge := cfg.GE; ge != nil {
		// Advance the two-state chain once per frame, then draw against
		// the current state's loss rate.
		if inj.bad {
			if inj.rng.Float64() < ge.PBadGood {
				inj.bad = false
			}
		} else if inj.rng.Float64() < ge.PGoodBad {
			inj.bad = true
		}
		p := ge.LossGood
		if inj.bad {
			p = ge.LossBad
		}
		if p > 0 && inj.rng.Float64() < p {
			inj.stats.Dropped++
			inj.stats.BurstDrops++
			return Action{Drop: true, CorruptBit: -1}
		}
	}

	var act Action
	if cfg.DupProb > 0 && inj.rng.Float64() < cfg.DupProb {
		act.Duplicate = true
		inj.stats.Duplicated++
	}
	if cfg.ReorderProb > 0 && inj.rng.Float64() < cfg.ReorderProb {
		act.ReorderSpan = 1 + inj.rng.Intn(cfg.ReorderSpan)
		inj.stats.Reordered++
	}
	if cfg.Delay > 0 || cfg.Jitter > 0 {
		act.Delay = cfg.Delay
		if cfg.Jitter > 0 {
			act.Delay += inj.rng.Float64() * cfg.Jitter
		}
		inj.stats.Delayed++
	}
	act.CorruptBit = -1
	if cfg.CorruptProb > 0 && bits > 0 && inj.rng.Float64() < cfg.CorruptProb {
		act.CorruptBit = inj.rng.Intn(bits)
		inj.stats.Corrupted++
	}
	return act
}

// Presets returns the named impairment mixes the chaos suite and the
// cmd/chaos driver sweep: each exercises one recovery mechanism, and
// "all" composes everything.
func Presets() map[string]Config {
	return map[string]Config{
		"clean":     {},
		"bernoulli": {Loss: 0.10},
		"bursty": {GE: &GilbertElliott{
			PGoodBad: 0.05, PBadGood: 0.25, LossGood: 0.01, LossBad: 0.8,
		}},
		"duplication": {DupProb: 0.15},
		"reorder":     {ReorderProb: 0.25, ReorderSpan: 4},
		"delay":       {Delay: 0.005, Jitter: 0.02},
		"corrupt":     {CorruptProb: 0.20},
		"partition":   {Partitions: []Window{{From: 0.5, To: 1.5}}},
		"all": {
			Loss: 0.03,
			GE: &GilbertElliott{
				PGoodBad: 0.02, PBadGood: 0.3, LossGood: 0, LossBad: 0.6,
			},
			DupProb:     0.05,
			ReorderProb: 0.10,
			ReorderSpan: 3,
			Delay:       0.002,
			Jitter:      0.01,
			CorruptProb: 0.05,
			Partitions:  []Window{{From: 0.8, To: 1.3}},
		},
	}
}

// PresetNames returns the preset keys in the order the soak suite runs
// them (deterministic, simple before composed).
func PresetNames() []string {
	return []string{
		"clean", "bernoulli", "bursty", "duplication", "reorder",
		"delay", "corrupt", "partition", "all",
	}
}
