// Package sscop implements a compact SSCOP-style reliable link protocol
// (ITU Q.2110, the Service Specific Connection Oriented Protocol of the
// ATM signalling stack): Q.93B — the protocol whose performance motivates
// the paper's §1 — does not run over raw datagrams but over SAAL/SSCOP,
// which provides assured, in-sequence delivery with *selective*
// retransmission driven by POLL/STAT/USTAT status exchange rather than
// go-back-N.
//
// The subset implemented here: BGN/BGAK establishment, END/ENDAK release,
// SD (sequenced data) with a transmit window, receiver-side out-of-order
// buffering, USTAT on gap detection, periodic POLL answered by STAT
// carrying the receiver's complete gap list, and selective retransmission
// from the status reports. It runs over the netstack's UDP (standing in
// for an AAL5 VC) and is single-threaded and explicitly pumped like
// everything else in this repository.
package sscop

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ldlp/internal/layers"
	"ldlp/internal/netstack"
)

// PDU types (values after Q.2110's spirit, not its bit layout).
const (
	pduBGN   = 0x01 // begin (establish)
	pduBGAK  = 0x02 // begin ack
	pduEND   = 0x03 // end (release)
	pduENDAK = 0x04 // end ack
	pduSD    = 0x05 // sequenced data
	pduPOLL  = 0x06 // transmitter status poll
	pduSTAT  = 0x07 // solicited status (answers POLL)
	pduUSTAT = 0x08 // unsolicited status (gap detected)
)

// Tunables.
const (
	// Window is the transmit window in SDs.
	Window = 64
	// PollInterval is how often an unacknowledged transmitter polls.
	PollInterval = 0.25
	// pollEvery triggers a POLL after this many SDs even without a timer.
	pollEvery = 16
	// maxGapsPerStat bounds the gap list in one STAT.
	maxGapsPerStat = 32
)

// State is the link state.
type State int

const (
	// Idle: no connection.
	Idle State = iota
	// Outgoing: BGN sent, awaiting BGAK.
	Outgoing
	// Established: assured data transfer.
	Established
	// Releasing: END sent, awaiting ENDAK.
	Releasing
)

var stateNames = map[State]string{
	Idle: "idle", Outgoing: "outgoing", Established: "established", Releasing: "releasing",
}

// String names the state.
func (s State) String() string { return stateNames[s] }

// Stats counts protocol activity.
type Stats struct {
	SDsSent         int64
	SDsReceived     int64
	Retransmissions int64
	PollsSent       int64
	StatsSent       int64
	UstatsSent      int64
	Delivered       int64
	OutOfOrder      int64
	Duplicates      int64
	BadPDUs         int64
	// CtlRetransmits counts BGN/END control PDUs re-sent by the timer
	// because the handshake answer never came (lost on the link).
	CtlRetransmits int64
}

// ErrNotEstablished is returned by Send before the link is up.
var ErrNotEstablished = errors.New("sscop: link not established")

type sdRecord struct {
	payload []byte
	sentAt  float64
}

// Link is one SSCOP association bound to a local UDP port.
type Link struct {
	host *netstack.Host
	sock *netstack.UDPSock

	peer     layers.IPAddr
	peerPort uint16
	state    State

	// Transmitter.
	vs       uint32 // next new SD sequence
	ackBase  uint32 // lowest unacknowledged
	unacked  map[uint32]*sdRecord
	sdsSince int // SDs since last POLL
	lastPoll float64
	lastCtl  float64 // last BGN/END (re)transmission time
	ps       uint32  // poll sequence

	// Receiver.
	vr       uint32 // next expected in-order SD
	highSeen uint32 // highest received + 1
	reorder  map[uint32][]byte
	delivery [][]byte

	Stats Stats
}

// New binds an SSCOP link endpoint to the host's port.
func New(h *netstack.Host, port uint16) (*Link, error) {
	sock, err := h.UDPSocket(port)
	if err != nil {
		return nil, err
	}
	return &Link{
		host: h, sock: sock,
		unacked: make(map[uint32]*sdRecord),
		reorder: make(map[uint32][]byte),
	}, nil
}

// State reports the link state.
func (l *Link) State() State { return l.state }

// Established reports assured-mode readiness.
func (l *Link) Established() bool { return l.state == Established }

// Connect starts establishment toward the peer.
func (l *Link) Connect(dst layers.IPAddr, port uint16) {
	l.peer, l.peerPort = dst, port
	l.state = Outgoing
	l.lastCtl = l.host.Now()
	l.emit([]byte{pduBGN})
}

// Release starts an orderly release.
func (l *Link) Release() {
	if l.state != Established && l.state != Outgoing {
		return
	}
	l.state = Releasing
	l.lastCtl = l.host.Now()
	l.emit([]byte{pduEND})
}

// Send queues one assured message. The message is sequenced immediately;
// the window only gates how much sits unacknowledged (callers see
// backpressure as an error).
func (l *Link) Send(payload []byte) error {
	if l.state != Established {
		return ErrNotEstablished
	}
	if uint32(len(l.unacked)) >= Window {
		return fmt.Errorf("sscop: window full (%d unacked)", len(l.unacked))
	}
	seq := l.vs
	l.vs++
	rec := &sdRecord{payload: append([]byte(nil), payload...), sentAt: l.host.Now()}
	l.unacked[seq] = rec
	l.sendSD(seq, rec)
	l.sdsSince++
	if l.sdsSince >= pollEvery {
		l.sendPoll()
	}
	return nil
}

// Recv pops the next in-order delivered message.
func (l *Link) Recv() ([]byte, bool) {
	if len(l.delivery) == 0 {
		return nil, false
	}
	m := l.delivery[0]
	l.delivery = l.delivery[1:]
	return m, true
}

// Pending reports queued deliveries.
func (l *Link) Pending() int { return len(l.delivery) }

// Tick runs the protocol timers: POLL while data is outstanding, and
// BGN/END retransmission while a handshake answer is owed. Without the
// latter, one lost BGN (or END) wedges the link in Outgoing (or
// Releasing) forever — the recovery-path bug the chaos sweep surfaced.
func (l *Link) Tick() {
	now := l.host.Now()
	switch l.state {
	case Outgoing:
		if now-l.lastCtl >= PollInterval {
			l.lastCtl = now
			l.Stats.CtlRetransmits++
			l.emit([]byte{pduBGN})
		}
	case Releasing:
		if now-l.lastCtl >= PollInterval {
			l.lastCtl = now
			l.Stats.CtlRetransmits++
			l.emit([]byte{pduEND})
		}
	case Established:
		if len(l.unacked) > 0 && now-l.lastPoll >= PollInterval {
			l.sendPoll()
		}
	}
}

// Poll drains the UDP socket and runs the receive state machine.
func (l *Link) Poll() {
	for {
		dg, ok := l.sock.Recv()
		if !ok {
			return
		}
		l.handle(dg)
	}
}

func (l *Link) emit(b []byte) {
	l.sock.SendTo(l.peer, l.peerPort, b)
}

func (l *Link) sendSD(seq uint32, rec *sdRecord) {
	b := make([]byte, 5+len(rec.payload))
	b[0] = pduSD
	binary.BigEndian.PutUint32(b[1:5], seq)
	copy(b[5:], rec.payload)
	l.Stats.SDsSent++
	l.emit(b)
}

func (l *Link) sendPoll() {
	l.ps++
	l.sdsSince = 0
	l.lastPoll = l.host.Now()
	b := make([]byte, 9)
	b[0] = pduPOLL
	binary.BigEndian.PutUint32(b[1:5], l.ps)
	binary.BigEndian.PutUint32(b[5:9], l.vs)
	l.Stats.PollsSent++
	l.emit(b)
}

// gapList returns the receiver's missing ranges in [vr, highSeen).
func (l *Link) gapList() [][2]uint32 {
	var gaps [][2]uint32
	var cur *[2]uint32
	for s := l.vr; s != l.highSeen; s++ {
		if _, have := l.reorder[s]; have {
			cur = nil
			continue
		}
		if cur == nil {
			gaps = append(gaps, [2]uint32{s, s + 1})
			cur = &gaps[len(gaps)-1]
			if len(gaps) >= maxGapsPerStat {
				break
			}
		} else {
			cur[1] = s + 1
		}
	}
	return gaps
}

func (l *Link) sendStat(ps uint32) {
	gaps := l.gapList()
	b := make([]byte, 9+1+8*len(gaps))
	b[0] = pduSTAT
	binary.BigEndian.PutUint32(b[1:5], ps)
	binary.BigEndian.PutUint32(b[5:9], l.vr)
	b[9] = byte(len(gaps))
	for i, g := range gaps {
		binary.BigEndian.PutUint32(b[10+8*i:], g[0])
		binary.BigEndian.PutUint32(b[14+8*i:], g[1])
	}
	l.Stats.StatsSent++
	l.emit(b)
}

func (l *Link) sendUstat(lo, hi uint32) {
	b := make([]byte, 9)
	b[0] = pduUSTAT
	binary.BigEndian.PutUint32(b[1:5], lo)
	binary.BigEndian.PutUint32(b[5:9], hi)
	l.Stats.UstatsSent++
	l.emit(b)
}

func (l *Link) handle(dg netstack.Datagram) {
	b := dg.Data
	if len(b) < 1 {
		l.Stats.BadPDUs++
		return
	}
	switch b[0] {
	case pduBGN:
		// Passive establishment (or BGN retransmission).
		l.peer, l.peerPort = dg.Src, dg.SrcPort
		if l.state == Idle || l.state == Outgoing {
			l.resetTransfer()
			l.state = Established
		}
		l.emit([]byte{pduBGAK})
	case pduBGAK:
		if l.state == Outgoing {
			l.resetTransfer()
			l.state = Established
		}
	case pduEND:
		l.state = Idle
		l.emit([]byte{pduENDAK})
	case pduENDAK:
		if l.state == Releasing {
			l.state = Idle
		}
	case pduSD:
		if len(b) < 5 {
			l.Stats.BadPDUs++
			return
		}
		l.handleSD(binary.BigEndian.Uint32(b[1:5]), b[5:])
	case pduPOLL:
		if len(b) < 9 {
			l.Stats.BadPDUs++
			return
		}
		ps := binary.BigEndian.Uint32(b[1:5])
		ns := binary.BigEndian.Uint32(b[5:9])
		// The POLL's N(S) tells us how far the transmitter has sequenced;
		// anything missing below it is a gap even if no later SD arrived.
		if after(ns, l.highSeen) {
			l.highSeen = ns
		}
		l.sendStat(ps)
	case pduSTAT:
		if len(b) < 10 {
			l.Stats.BadPDUs++
			return
		}
		nr := binary.BigEndian.Uint32(b[5:9])
		ngaps := int(b[9])
		if len(b) < 10+8*ngaps {
			l.Stats.BadPDUs++
			return
		}
		l.ackThrough(nr)
		for i := 0; i < ngaps; i++ {
			lo := binary.BigEndian.Uint32(b[10+8*i:])
			hi := binary.BigEndian.Uint32(b[14+8*i:])
			l.retransmitRange(lo, hi)
		}
	case pduUSTAT:
		if len(b) < 9 {
			l.Stats.BadPDUs++
			return
		}
		lo := binary.BigEndian.Uint32(b[1:5])
		hi := binary.BigEndian.Uint32(b[5:9])
		l.retransmitRange(lo, hi)
	default:
		l.Stats.BadPDUs++
	}
}

func (l *Link) resetTransfer() {
	l.vs, l.ackBase, l.vr, l.highSeen, l.ps, l.sdsSince = 0, 0, 0, 0, 0, 0
	l.unacked = make(map[uint32]*sdRecord)
	l.reorder = make(map[uint32][]byte)
	l.delivery = nil
}

func (l *Link) handleSD(seq uint32, payload []byte) {
	l.Stats.SDsReceived++
	if before(seq, l.vr) {
		l.Stats.Duplicates++
		return
	}
	if _, dup := l.reorder[seq]; dup {
		l.Stats.Duplicates++
		return
	}
	if after(seq, l.vr) && (l.highSeen == l.vr || after(seq, l.highSeen)) {
		// A fresh gap just opened: request the missing range immediately
		// (SSCOP's USTAT), without waiting for the next POLL.
		lo := l.vr
		if l.highSeen != l.vr && after(seq, l.highSeen) {
			lo = l.highSeen
		}
		if after(seq, lo) {
			l.Stats.OutOfOrder++
			l.sendUstat(lo, seq)
		}
	}
	l.reorder[seq] = append([]byte(nil), payload...)
	if after(seq+1, l.highSeen) {
		l.highSeen = seq + 1
	}
	// Deliver any in-order run.
	for {
		p, ok := l.reorder[l.vr]
		if !ok {
			break
		}
		delete(l.reorder, l.vr)
		l.delivery = append(l.delivery, p)
		l.Stats.Delivered++
		l.vr++
	}
}

func (l *Link) ackThrough(nr uint32) {
	for s := l.ackBase; before(s, nr); s++ {
		delete(l.unacked, s)
	}
	if after(nr, l.ackBase) {
		l.ackBase = nr
	}
}

func (l *Link) retransmitRange(lo, hi uint32) {
	for s := lo; before(s, hi); s++ {
		if rec, ok := l.unacked[s]; ok {
			l.Stats.Retransmissions++
			l.sendSD(s, rec)
		}
	}
}

// before / after compare sequence numbers mod 2^32.
func before(a, b uint32) bool { return int32(a-b) < 0 }
func after(a, b uint32) bool  { return int32(a-b) > 0 }
