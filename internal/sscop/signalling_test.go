package sscop

import (
	"math/rand"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
	"ldlp/internal/signal"
)

// TestQ93BOverSSCOP carries real signalling messages over the assured
// link under heavy loss — the actual SAAL arrangement: Q.93B assumes its
// transport delivers messages reliably and in order, which is exactly
// what SSCOP provides over a lossy VC.
func TestQ93BOverSSCOP(t *testing.T) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	ha := n.AddHost("user", ipA, netstack.DefaultOptions(core.LDLP))
	hb := n.AddHost("switch", ipB, netstack.DefaultOptions(core.LDLP))
	la, err := New(ha, port)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := New(hb, port)
	if err != nil {
		t.Fatal(err)
	}
	la.Connect(ipB, port)
	pump(n, la, lb)
	if !la.Established() {
		t.Fatal("link establishment failed")
	}

	// 30% SD loss in both directions.
	rng := rand.New(rand.NewSource(99))
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		off := layers.EthernetLen + layers.IPv4MinLen + layers.UDPLen
		return len(data) > off && data[off] == pduSD && rng.Intn(100) < 30
	}

	// The user side sends a full call's worth of messages; the switch
	// must see them in protocol order despite the loss.
	sent := []signal.Message{
		{CallRef: 1, Type: signal.MsgSetup, Called: 42, Calling: 7, PeakCells: 353},
		{CallRef: 2, Type: signal.MsgSetup, Called: 43, Calling: 7, PeakCells: 100},
		{CallRef: 1, Type: signal.MsgConnectAck},
		{CallRef: 2, Type: signal.MsgConnectAck},
		{CallRef: 1, Type: signal.MsgRelease, Cause: signal.CauseNormal},
		{CallRef: 2, Type: signal.MsgRelease, Cause: signal.CauseNormal},
	}
	next := 0
	for round := 0; round < 100 && next < len(sent); round++ {
		for next < len(sent) {
			if la.Send(sent[next].Encode()) != nil {
				break
			}
			next++
		}
		tickPump(n, PollInterval+0.01, la, lb)
	}
	for round := 0; round < 50 && lb.Pending() < len(sent); round++ {
		tickPump(n, PollInterval+0.01, la, lb)
	}

	for i, want := range sent {
		raw, ok := lb.Recv()
		if !ok {
			t.Fatalf("message %d never delivered", i)
		}
		got, err := signal.Decode(raw)
		if err != nil {
			t.Fatalf("message %d corrupted: %v", i, err)
		}
		if got != want {
			t.Fatalf("message %d = %+v, want %+v (order violated?)", i, got, want)
		}
	}
}
