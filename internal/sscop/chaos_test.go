package sscop

// Chaos tests for SSCOP over an impaired link: the handshake-recovery
// regression (a lost BGN or END used to wedge the link forever, since
// only SD retransmission was timer-driven) and assured delivery under a
// composed loss/duplication/reorder/corruption mix.

import (
	"fmt"
	"testing"

	"ldlp/internal/faults"
	"ldlp/internal/netstack"
)

// impairedPair builds a link pair with cfg impairing both directions.
func impairedPair(t *testing.T, cfg faults.Config, seed int64) (*netstack.Net, *Link, *Link) {
	t.Helper()
	n, la, lb := linkPair(t)
	n.Impair(ipA, cfg, seed)
	n.Impair(ipB, cfg, seed+1)
	return n, la, lb
}

// TestChaosLostBGNRecovered is the regression test for the handshake
// wedge: the BGN is swallowed by a link outage, so establishment must
// come from the Tick-driven control retransmission. Before the fix the
// link sat in Outgoing forever.
func TestChaosLostBGNRecovered(t *testing.T) {
	n, la, lb := linkPair(t)
	// Outage covering the initial BGN only.
	n.Impair(ipB, faults.Config{Partitions: []faults.Window{{From: 0, To: 0.1}}}, 1)
	la.Connect(ipB, port)
	pump(n, la, lb)
	if la.Established() {
		t.Fatal("BGN was supposed to be lost")
	}
	for i := 0; i < 8 && !la.Established(); i++ {
		tickPump(n, 0.3, la, lb)
	}
	if !la.Established() || !lb.Established() {
		t.Fatalf("link never recovered from a lost BGN: %v / %v", la.State(), lb.State())
	}
	if la.Stats.CtlRetransmits == 0 {
		t.Error("recovery happened but no control retransmission was counted")
	}
}

// TestChaosLostENDRecovered: same wedge on the release side — a lost
// END left the initiator in Releasing forever.
func TestChaosLostENDRecovered(t *testing.T) {
	n, la, lb := linkPair(t)
	connect(t, n, la, lb)
	now := n.Now()
	n.Impair(ipB, faults.Config{Partitions: []faults.Window{{From: now, To: now + 0.1}}}, 2)
	la.Release()
	pump(n, la, lb)
	if la.State() != Releasing {
		t.Fatalf("END was supposed to be lost, state %v", la.State())
	}
	for i := 0; i < 8 && la.State() != Idle; i++ {
		tickPump(n, 0.3, la, lb)
	}
	if la.State() != Idle || lb.State() != Idle {
		t.Fatalf("link never recovered from a lost END: %v / %v", la.State(), lb.State())
	}
	if la.Stats.CtlRetransmits == 0 {
		t.Error("recovery happened but no control retransmission was counted")
	}
}

// TestChaosAssuredDeliveryUnderImpairment: under composed loss,
// duplication, reordering, and corruption (which the UDP checksum turns
// into loss), SSCOP's selective retransmission must still deliver every
// payload exactly once, in order.
func TestChaosAssuredDeliveryUnderImpairment(t *testing.T) {
	cfg := faults.Config{
		Loss:        0.15,
		DupProb:     0.10,
		ReorderProb: 0.20,
		CorruptProb: 0.10,
	}
	n, la, lb := impairedPair(t, cfg, 99)
	// Establishment itself may need control retransmissions here.
	la.Connect(ipB, port)
	for i := 0; i < 40 && !(la.Established() && lb.Established()); i++ {
		tickPump(n, 0.3, la, lb)
	}
	if !la.Established() || !lb.Established() {
		t.Fatalf("establishment failed under impairment: %v / %v", la.State(), lb.State())
	}

	const N = 100
	var got [][]byte
	recv := func() {
		for {
			p, ok := lb.Recv()
			if !ok {
				break
			}
			got = append(got, p)
		}
	}
	for i := 0; i < N; i++ {
		msg := []byte(fmt.Sprintf("msg-%03d", i))
		// The send window fills when loss delays acks; pump until a slot
		// frees up.
		for try := 0; la.Send(msg) != nil; try++ {
			if try > 200 {
				t.Fatalf("send window never reopened at payload %d", i)
			}
			tickPump(n, 0.3, la, lb)
			recv()
		}
		if i%5 == 4 {
			tickPump(n, 0.1, la, lb)
			recv()
		}
	}
	for i := 0; i < 400 && len(got) < N; i++ {
		tickPump(n, 0.3, la, lb)
		recv()
	}
	if len(got) != N {
		t.Fatalf("delivered %d of %d payloads (retransmissions=%d, dup=%d)",
			len(got), N, la.Stats.Retransmissions, lb.Stats.Duplicates)
	}
	for i, p := range got {
		if want := fmt.Sprintf("msg-%03d", i); string(p) != want {
			t.Fatalf("payload %d = %q, want %q (delivery out of order or corrupt)", i, p, want)
		}
	}
	if la.Stats.Retransmissions == 0 {
		t.Error("a 15%-loss link with 100 payloads should have forced SD retransmissions")
	}
}
