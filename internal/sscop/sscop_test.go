package sscop

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
)

var (
	ipA = layers.IPAddr{10, 2, 0, 1}
	ipB = layers.IPAddr{10, 2, 0, 2}
)

const port = 2906

func linkPair(t *testing.T) (*netstack.Net, *Link, *Link) {
	t.Helper()
	mbuf.ResetPool()
	n := netstack.NewNet()
	ha := n.AddHost("a", ipA, netstack.DefaultOptions(core.Conventional))
	hb := n.AddHost("b", ipB, netstack.DefaultOptions(core.Conventional))
	la, err := New(ha, port)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := New(hb, port)
	if err != nil {
		t.Fatal(err)
	}
	return n, la, lb
}

// pump runs the wire and both links until quiescent.
func pump(n *netstack.Net, links ...*Link) {
	for i := 0; i < 50; i++ {
		moved := n.RunUntilIdle() > 0
		for _, l := range links {
			before := l.Stats
			l.Poll()
			if l.Stats != before {
				moved = true
			}
		}
		if n.RunUntilIdle() > 0 {
			moved = true
		}
		if !moved {
			return
		}
	}
}

// tickPump advances time then pumps.
func tickPump(n *netstack.Net, dt float64, links ...*Link) {
	n.Tick(dt)
	for _, l := range links {
		l.Tick()
	}
	pump(n, links...)
}

func connect(t *testing.T, n *netstack.Net, la, lb *Link) {
	t.Helper()
	la.Connect(ipB, port)
	pump(n, la, lb)
	if !la.Established() || !lb.Established() {
		t.Fatalf("establishment failed: %v / %v", la.State(), lb.State())
	}
}

func TestEstablishRelease(t *testing.T) {
	n, la, lb := linkPair(t)
	if la.State() != Idle {
		t.Fatalf("initial state %v", la.State())
	}
	connect(t, n, la, lb)
	la.Release()
	pump(n, la, lb)
	if la.State() != Idle || lb.State() != Idle {
		t.Errorf("after release: %v / %v", la.State(), lb.State())
	}
}

func TestSendBeforeEstablishFails(t *testing.T) {
	_, la, _ := linkPair(t)
	if err := la.Send([]byte("x")); err == nil {
		t.Error("send on idle link should fail")
	}
}

func TestInOrderDelivery(t *testing.T) {
	n, la, lb := linkPair(t)
	connect(t, n, la, lb)
	for i := 0; i < 20; i++ {
		if err := la.Send([]byte(fmt.Sprintf("msg-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pump(n, la, lb)
	for i := 0; i < 20; i++ {
		m, ok := lb.Recv()
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		if string(m) != fmt.Sprintf("msg-%02d", i) {
			t.Fatalf("message %d = %q", i, m)
		}
	}
	if _, ok := lb.Recv(); ok {
		t.Error("extra delivery")
	}
	if lb.Stats.Retransmissions != 0 && la.Stats.Retransmissions != 0 {
		t.Error("lossless run should not retransmit")
	}
}

func TestUstatSelectiveRetransmission(t *testing.T) {
	n, la, lb := linkPair(t)
	connect(t, n, la, lb)

	// Drop exactly one SD (the third).
	sdCount := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst != ipB {
			return false
		}
		// UDP payload begins after ether+ip+udp headers.
		off := layers.EthernetLen + layers.IPv4MinLen + layers.UDPLen
		if len(data) > off && data[off] == pduSD {
			sdCount++
			return sdCount == 3
		}
		return false
	}
	for i := 0; i < 10; i++ {
		la.Send([]byte{byte(i)})
	}
	pump(n, la, lb)

	// The gap must have triggered exactly one USTAT and one selective
	// retransmission — not go-back-N.
	if lb.Stats.UstatsSent != 1 {
		t.Errorf("USTATs = %d, want 1", lb.Stats.UstatsSent)
	}
	if la.Stats.Retransmissions != 1 {
		t.Errorf("retransmissions = %d, want exactly 1 (selective)", la.Stats.Retransmissions)
	}
	for i := 0; i < 10; i++ {
		m, ok := lb.Recv()
		if !ok || m[0] != byte(i) {
			t.Fatalf("delivery %d: ok=%v m=%v", i, ok, m)
		}
	}
}

func TestPollStatRecoversTailLoss(t *testing.T) {
	// Losing the *last* SD leaves no later arrival to expose the gap;
	// only the POLL/STAT exchange can recover it.
	n, la, lb := linkPair(t)
	connect(t, n, la, lb)

	sdCount := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst != ipB {
			return false
		}
		off := layers.EthernetLen + layers.IPv4MinLen + layers.UDPLen
		if len(data) > off && data[off] == pduSD {
			sdCount++
			return sdCount == 5 // the final SD of the burst
		}
		return false
	}
	for i := 0; i < 5; i++ {
		la.Send([]byte{byte(i)})
	}
	pump(n, la, lb)
	if lb.Pending() != 4 {
		t.Fatalf("pending = %d before poll recovery, want 4", lb.Pending())
	}
	n.Loss = nil
	// Fire the POLL timer: STAT reports the tail gap, SD is resent.
	tickPump(n, PollInterval+0.01, la, lb)
	if lb.Pending() != 5 {
		t.Errorf("pending = %d after poll recovery, want 5", lb.Pending())
	}
	if la.Stats.PollsSent == 0 || lb.Stats.StatsSent == 0 {
		t.Errorf("poll/stat exchange missing: polls=%d stats=%d",
			la.Stats.PollsSent, lb.Stats.StatsSent)
	}
}

func TestWindowBackpressure(t *testing.T) {
	n, la, lb := linkPair(t)
	connect(t, n, la, lb)
	// Black-hole everything toward B so nothing is ever acked.
	n.Loss = func(dst layers.IPAddr, data []byte) bool { return dst == ipB }
	var err error
	sent := 0
	for i := 0; i < Window+10; i++ {
		if err = la.Send([]byte{byte(i)}); err != nil {
			break
		}
		sent++
	}
	if err == nil {
		t.Fatal("window never filled")
	}
	if sent != Window {
		t.Errorf("sent %d before backpressure, want %d", sent, Window)
	}
}

func TestDuplicateSDsIgnored(t *testing.T) {
	n, la, lb := linkPair(t)
	connect(t, n, la, lb)
	la.Send([]byte("once"))
	pump(n, la, lb)
	// Force a retransmission of an already-delivered SD via a stale USTAT.
	lb.sendUstat(0, 1)
	pump(n, la, lb)
	if lb.Stats.Duplicates == 0 {
		t.Error("duplicate SD not detected")
	}
	if lb.Pending() != 1 {
		t.Errorf("pending = %d, want 1 (no duplicate delivery)", lb.Pending())
	}
}

func TestBadPDUsCounted(t *testing.T) {
	n, la, lb := linkPair(t)
	connect(t, n, la, lb)
	// Raw garbage via the underlying socket.
	la.sock.SendTo(ipB, port, []byte{0xee, 1, 2})
	la.sock.SendTo(ipB, port, []byte{pduSD, 1}) // truncated SD
	la.sock.SendTo(ipB, port, []byte{})
	pump(n, la, lb)
	if lb.Stats.BadPDUs != 2 { // empty datagram never leaves the socket? it does: 0-length payload
		t.Logf("bad PDUs = %d", lb.Stats.BadPDUs)
	}
	if lb.Stats.BadPDUs < 2 {
		t.Errorf("bad PDUs = %d, want >= 2", lb.Stats.BadPDUs)
	}
}

// Property: under arbitrary loss of SD PDUs (but not total blackout),
// every sent message is eventually delivered exactly once, in order.
func TestReliableUnderRandomLossQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mbuf.ResetPool()
		n := netstack.NewNet()
		ha := n.AddHost("a", ipA, netstack.DefaultOptions(core.Conventional))
		hb := n.AddHost("b", ipB, netstack.DefaultOptions(core.Conventional))
		la, _ := New(ha, port)
		lb, _ := New(hb, port)
		la.Connect(ipB, port)
		pump(n, la, lb)
		if !la.Established() {
			return false
		}
		// Drop 30% of SDs (only data; control PDUs get through so the
		// link always recovers).
		n.Loss = func(dst layers.IPAddr, data []byte) bool {
			off := layers.EthernetLen + layers.IPv4MinLen + layers.UDPLen
			return dst == ipB && len(data) > off && data[off] == pduSD && rng.Intn(100) < 30
		}
		const total = 40
		next := 0
		for round := 0; round < 200 && next < total; round++ {
			for next < total {
				if la.Send([]byte{byte(next)}) != nil {
					break // window full; recover first
				}
				next++
			}
			tickPump(n, PollInterval+0.01, la, lb)
		}
		for round := 0; round < 50 && lb.Stats.Delivered < total; round++ {
			tickPump(n, PollInterval+0.01, la, lb)
		}
		for i := 0; i < total; i++ {
			m, ok := lb.Recv()
			if !ok || m[0] != byte(i) {
				return false
			}
		}
		_, extra := lb.Recv()
		return !extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSSCOPSendRecv(b *testing.B) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	ha := n.AddHost("a", ipA, netstack.DefaultOptions(core.Conventional))
	hb := n.AddHost("b", ipB, netstack.DefaultOptions(core.Conventional))
	la, _ := New(ha, port)
	lb, _ := New(hb, port)
	la.Connect(ipB, port)
	n.RunUntilIdle()
	la.Poll()
	lb.Poll()
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for la.Send(payload) != nil {
			n.RunUntilIdle()
			la.Poll()
			lb.Poll()
			n.RunUntilIdle()
		}
		if i%8 == 7 {
			n.RunUntilIdle()
			lb.Poll()
			la.Poll()
			for {
				if _, ok := lb.Recv(); !ok {
					break
				}
			}
		}
	}
}

// Property: arbitrary garbage datagrams must never panic the PDU handler
// or corrupt an established link's ability to carry data afterwards.
func TestGarbagePDUsDoNotBreakTheLink(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mbuf.ResetPool()
		n := netstack.NewNet()
		ha := n.AddHost("a", ipA, netstack.DefaultOptions(core.Conventional))
		hb := n.AddHost("b", ipB, netstack.DefaultOptions(core.Conventional))
		la, _ := New(ha, port)
		lb, _ := New(hb, port)
		la.Connect(ipB, port)
		pump(n, la, lb)
		// Fire random garbage at B from A's raw socket.
		for i := 0; i < 50; i++ {
			junk := make([]byte, rng.Intn(40))
			rng.Read(junk)
			// Avoid accidentally valid END PDUs tearing the link down —
			// garbage here means unknown/truncated, not adversarial.
			if len(junk) > 0 && (junk[0] == pduEND || junk[0] == pduBGN) {
				junk[0] = 0xfe
			}
			la.sock.SendTo(ipB, port, junk)
		}
		pump(n, la, lb)
		// The link still works.
		if la.Send([]byte("still alive")) != nil {
			return false
		}
		pump(n, la, lb)
		m, ok := lb.Recv()
		return ok && string(m) == "still alive"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
