package memtrace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if IFetch.String() != "ifetch" || Load.String() != "load" || Store.String() != "store" {
		t.Error("kind names changed")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Errorf("unknown kind renders as %q", Kind(7))
	}
}

func TestAppendValidation(t *testing.T) {
	tr := NewTrace("only")
	for _, r := range []Record{
		{Addr: 0, Size: 4, Phase: 1},  // phase out of range
		{Addr: 0, Size: 0, Phase: 0},  // zero size
		{Addr: 0, Size: -1, Phase: 0}, // negative size
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Append(%+v) should panic", r)
				}
			}()
			tr.Append(r)
		}()
	}
}

func TestWorkingSetLineGranularity(t *testing.T) {
	tr := NewTrace("p")
	// One 4-byte fetch makes a whole 32-byte line part of the working set.
	tr.Append(Record{Addr: 100, Size: 4, Kind: IFetch, Layer: "L", Func: "f"})
	a := Analyze(tr, 32)
	if a.Code.Lines != 1 || a.Code.Bytes != 32 {
		t.Errorf("code set = %+v, want 1 line / 32 bytes", a.Code)
	}
	if a.Code.TouchedBytes != 4 {
		t.Errorf("touched bytes = %d, want 4", a.Code.TouchedBytes)
	}
	if d := a.Dilution(); d != 1-4.0/32.0 {
		t.Errorf("dilution = %v, want %v", d, 1-4.0/32.0)
	}
}

func TestReadOnlyVsMutableClassification(t *testing.T) {
	tr := NewTrace("p")
	// Line A: only loaded -> read-only. Line B: loaded then stored ->
	// mutable, even for the load that happened before the store (the paper
	// classifies over the whole trace).
	tr.Append(Record{Addr: 0, Size: 8, Kind: Load, Layer: "L"})
	tr.Append(Record{Addr: 64, Size: 8, Kind: Load, Layer: "L"})
	tr.Append(Record{Addr: 64, Size: 8, Kind: Store, Layer: "L"})
	a := Analyze(tr, 32)
	if a.ReadOnly.Lines != 1 {
		t.Errorf("read-only lines = %d, want 1", a.ReadOnly.Lines)
	}
	if a.Mutable.Lines != 1 {
		t.Errorf("mutable lines = %d, want 1", a.Mutable.Lines)
	}
}

func TestFirstTouchLayerAttribution(t *testing.T) {
	tr := NewTrace("p")
	tr.Append(Record{Addr: 0, Size: 4, Kind: Load, Layer: "IP"})
	tr.Append(Record{Addr: 0, Size: 4, Kind: Load, Layer: "TCP"}) // same line, later
	tr.Append(Record{Addr: 640, Size: 4, Kind: Load, Layer: "TCP"})
	a := Analyze(tr, 32)
	got := map[string]int{}
	for _, ls := range a.PerLayer {
		got[ls.Layer] = ls.ReadOnly
	}
	if got["IP"] != 32 {
		t.Errorf("IP read-only = %d, want 32 (first touch wins)", got["IP"])
	}
	if got["TCP"] != 32 {
		t.Errorf("TCP read-only = %d, want 32", got["TCP"])
	}
}

func TestLayerOrderIsFirstAppearance(t *testing.T) {
	tr := NewTrace("p")
	tr.Append(Record{Addr: 0, Size: 4, Kind: IFetch, Layer: "Device", Func: "leintr"})
	tr.Append(Record{Addr: 100000, Size: 4, Kind: IFetch, Layer: "IP", Func: "ipintr"})
	tr.Append(Record{Addr: 200000, Size: 4, Kind: IFetch, Layer: "TCP", Func: "tcp_input"})
	a := Analyze(tr, 32)
	want := []string{"Device", "IP", "TCP"}
	if len(a.PerLayer) != 3 {
		t.Fatalf("layers = %d, want 3", len(a.PerLayer))
	}
	for i, w := range want {
		if a.PerLayer[i].Layer != w {
			t.Errorf("layer[%d] = %q, want %q", i, a.PerLayer[i].Layer, w)
		}
	}
}

func TestExcludedRefsSkipWorkingSetButCountInPhases(t *testing.T) {
	tr := NewTrace("pkt intr")
	// Packet contents: excluded from the working set (Table 1 note) but
	// counted in Figure 1 phase totals.
	tr.Append(Record{Addr: 0x8000, Size: 552, Kind: Load, Layer: "Copy", Excluded: true})
	a := Analyze(tr, 32)
	if a.ReadOnly.Lines != 0 || a.Mutable.Lines != 0 {
		t.Errorf("excluded load leaked into working set: %+v / %+v", a.ReadOnly, a.Mutable)
	}
	ph := a.Phases[0]
	if ph.ReadRefs != 1 {
		t.Errorf("phase read refs = %d, want 1", ph.ReadRefs)
	}
	// 552 bytes starting line-aligned: ceil(552/32) = 18 lines = 576 bytes.
	if ph.ReadBytes != 576 {
		t.Errorf("phase read bytes = %d, want 576", ph.ReadBytes)
	}
}

func TestPhaseSummaryKinds(t *testing.T) {
	tr := NewTrace("entry", "exit")
	tr.Append(Record{Addr: 0, Size: 4, Kind: IFetch, Phase: 0, Layer: "K", Func: "syscall"})
	tr.Append(Record{Addr: 4, Size: 4, Kind: IFetch, Phase: 0, Layer: "K", Func: "syscall"})
	tr.Append(Record{Addr: 0x1000, Size: 8, Kind: Store, Phase: 1, Layer: "K"})
	a := Analyze(tr, 32)
	if a.Phases[0].CodeRefs != 2 || a.Phases[0].CodeBytes != 32 {
		t.Errorf("entry code = %d refs %d bytes, want 2/32", a.Phases[0].CodeRefs, a.Phases[0].CodeBytes)
	}
	if a.Phases[1].WriteRefs != 1 || a.Phases[1].WriteBytes != 32 {
		t.Errorf("exit write = %d refs %d bytes", a.Phases[1].WriteRefs, a.Phases[1].WriteBytes)
	}
	if a.Phases[1].CodeRefs != 0 {
		t.Errorf("exit code refs = %d, want 0", a.Phases[1].CodeRefs)
	}
}

func TestCodeByPhaseFuncSorted(t *testing.T) {
	tr := NewTrace("p")
	for i := 0; i < 10; i++ {
		tr.Append(Record{Addr: uint64(i * 32), Size: 4, Kind: IFetch, Layer: "TCP", Func: "tcp_input"})
	}
	tr.Append(Record{Addr: 0x100000, Size: 4, Kind: IFetch, Layer: "IP", Func: "ipintr"})
	a := Analyze(tr, 32)
	fts := a.CodeByPhaseFunc[0]
	if len(fts) != 2 {
		t.Fatalf("functions = %d, want 2", len(fts))
	}
	if fts[0].Func != "tcp_input" || fts[0].Bytes != 320 {
		t.Errorf("top function = %+v, want tcp_input/320", fts[0])
	}
	if fts[1].Func != "ipintr" || fts[1].Bytes != 32 {
		t.Errorf("second function = %+v, want ipintr/32", fts[1])
	}
}

func TestMultiLineRecordStraddlesClasses(t *testing.T) {
	tr := NewTrace("p")
	// A 64-byte load spanning two lines where only the second is written:
	// first line is read-only, second is mutable.
	tr.Append(Record{Addr: 0, Size: 64, Kind: Load, Layer: "L"})
	tr.Append(Record{Addr: 32, Size: 4, Kind: Store, Layer: "L"})
	a := Analyze(tr, 32)
	if a.ReadOnly.Lines != 1 || a.Mutable.Lines != 1 {
		t.Errorf("straddle: ro=%d mut=%d, want 1/1", a.ReadOnly.Lines, a.Mutable.Lines)
	}
}

func TestLineSweepDirections(t *testing.T) {
	// A mixed sparsity pattern with the character of real code:
	// isolated touches (larger lines waste bytes on them), pairs 20 bytes
	// apart (split by 16-byte lines), and pairs 40 bytes apart (coalesced
	// by 64-byte lines). Larger lines must waste more bytes but need fewer
	// lines; smaller lines the reverse.
	tr := NewTrace("p")
	for i := 0; i < 32; i++ {
		tr.Append(Record{Addr: 0x40000 + uint64(i*256), Size: 4, Kind: IFetch, Layer: "L", Func: "f"})
		tr.Append(Record{Addr: 0x80000 + uint64(i*128), Size: 4, Kind: IFetch, Layer: "L", Func: "f"})
		tr.Append(Record{Addr: 0x80000 + uint64(i*128+20), Size: 4, Kind: IFetch, Layer: "L", Func: "f"})
		tr.Append(Record{Addr: 0xC0000 + uint64(i*128), Size: 4, Kind: IFetch, Layer: "L", Func: "f"})
		tr.Append(Record{Addr: 0xC0000 + uint64(i*128+40), Size: 4, Kind: IFetch, Layer: "L", Func: "f"})
	}
	sweeps := LineSweep(tr, []int{16, 64})
	code := sweeps[0]
	if code.Class != "Code" {
		t.Fatalf("first sweep class = %q", code.Class)
	}
	var d16, d64 LineSizeDelta
	for _, d := range code.Deltas {
		if d.LineSize == 16 {
			d16 = d
		}
		if d.LineSize == 64 {
			d64 = d
		}
	}
	if !(d64.BytesDelta > 0) {
		t.Errorf("64B lines should grow bytes, delta = %v", d64.BytesDelta)
	}
	if !(d64.LinesDelta < 0) {
		t.Errorf("64B lines should shrink line count, delta = %v", d64.LinesDelta)
	}
	if !(d16.BytesDelta < 0) {
		t.Errorf("16B lines should shrink bytes, delta = %v", d16.BytesDelta)
	}
	if !(d16.LinesDelta > 0) {
		t.Errorf("16B lines should grow line count, delta = %v", d16.LinesDelta)
	}
}

func TestAnalyzeRejectsBadLineSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Analyze with line size 33 should panic")
		}
	}()
	Analyze(NewTrace("p"), 33)
}

// Property: for any trace, (a) class sets are disjoint in lines, (b) total
// lines equals the sum of per-layer Table 1 cells, (c) touched bytes never
// exceed line-granular bytes, (d) dilution is in [0,1).
func TestAnalysisInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrace("a", "b")
		layers := []string{"L1", "L2", "L3"}
		for i := 0; i < 300; i++ {
			k := Kind(rng.Intn(3))
			tr.Append(Record{
				Addr:  uint64(rng.Intn(1 << 14)),
				Size:  1 + rng.Intn(64),
				Kind:  k,
				Phase: rng.Intn(2),
				Layer: layers[rng.Intn(len(layers))],
				Func:  "f",
			})
		}
		a := Analyze(tr, 32)
		var sumCode, sumRO, sumMut int
		for _, ls := range a.PerLayer {
			sumCode += ls.Code
			sumRO += ls.ReadOnly
			sumMut += ls.Mutable
		}
		if sumCode != a.Code.Bytes || sumRO != a.ReadOnly.Bytes || sumMut != a.Mutable.Bytes {
			return false
		}
		for _, cs := range []ClassSet{a.Code, a.ReadOnly, a.Mutable} {
			if cs.TouchedBytes > cs.Bytes || cs.Bytes != cs.Lines*32 {
				return false
			}
		}
		d := a.Dilution()
		return d >= 0 && d < 1 || a.Code.Bytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: halving the line size can never increase byte-granular touched
// bytes and can never decrease the line count.
func TestLineSizeMonotonicityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrace("p")
		for i := 0; i < 200; i++ {
			tr.Append(Record{
				Addr:  uint64(rng.Intn(1 << 13)),
				Size:  1 + rng.Intn(16),
				Kind:  IFetch,
				Layer: "L",
				Func:  "f",
			})
		}
		prevLines, prevBytes := -1, 1<<62
		for _, ls := range []int{64, 32, 16, 8} {
			a := Analyze(tr, ls)
			if a.Code.Lines < prevLines {
				return false // smaller lines => at least as many lines
			}
			if a.Code.Bytes > prevBytes {
				return false // smaller lines => no more padded bytes
			}
			prevLines, prevBytes = a.Code.Lines, a.Code.Bytes
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPhaseOverlap(t *testing.T) {
	tr := NewTrace("a", "b", "c")
	// Line 0 touched by phases a and b; line 1 only by b; line 2 only c.
	tr.Append(Record{Addr: 0, Size: 4, Kind: IFetch, Phase: 0, Layer: "L", Func: "f"})
	tr.Append(Record{Addr: 0, Size: 4, Kind: IFetch, Phase: 1, Layer: "L", Func: "f"})
	tr.Append(Record{Addr: 32, Size: 4, Kind: IFetch, Phase: 1, Layer: "L", Func: "f"})
	tr.Append(Record{Addr: 64, Size: 4, Kind: IFetch, Phase: 2, Layer: "L", Func: "g"})
	// Excluded and data records must not count.
	tr.Append(Record{Addr: 96, Size: 4, Kind: IFetch, Phase: 2, Layer: "L", Func: "g", Excluded: true})
	tr.Append(Record{Addr: 128, Size: 8, Kind: Load, Phase: 0, Layer: "L"})

	ov := PhaseOverlap(tr, 32)
	if ov[0][0] != 32 || ov[1][1] != 64 || ov[2][2] != 32 {
		t.Errorf("diagonals = %d/%d/%d, want 32/64/32", ov[0][0], ov[1][1], ov[2][2])
	}
	if ov[0][1] != 32 || ov[1][0] != 32 {
		t.Errorf("a∩b = %d/%d, want 32", ov[0][1], ov[1][0])
	}
	if ov[0][2] != 0 || ov[1][2] != 0 {
		t.Errorf("c should not overlap: %d/%d", ov[0][2], ov[1][2])
	}
}

func TestPhaseOverlapExplainsMarginExcess(t *testing.T) {
	// Property on a synthetic trace: sum of per-phase code bytes minus
	// the union equals the total pairwise-overlap mass (inclusion-
	// exclusion with no triple overlaps in this construction).
	tr := NewTrace("p", "q")
	for i := 0; i < 10; i++ {
		tr.Append(Record{Addr: uint64(i * 32), Size: 4, Kind: IFetch, Phase: 0, Layer: "L", Func: "f"})
	}
	for i := 5; i < 15; i++ {
		tr.Append(Record{Addr: uint64(i * 32), Size: 4, Kind: IFetch, Phase: 1, Layer: "L", Func: "f"})
	}
	a := Analyze(tr, 32)
	ov := PhaseOverlap(tr, 32)
	sum := a.Phases[0].CodeBytes + a.Phases[1].CodeBytes
	if sum-a.Code.Bytes != ov[0][1] {
		t.Errorf("margin excess %d != overlap %d", sum-a.Code.Bytes, ov[0][1])
	}
}

func TestFuncTouchRefsCountLoops(t *testing.T) {
	tr := NewTrace("p")
	// A 10-iteration loop over one 32-byte body: 1 line but many refs.
	for it := 0; it < 10; it++ {
		for off := 0; off < 32; off += 4 {
			tr.Append(Record{Addr: uint64(off), Size: 4, Kind: IFetch, Layer: "L", Func: "loopy"})
		}
	}
	tr.Append(Record{Addr: 4096, Size: 4, Kind: IFetch, Layer: "L", Func: "straight"})
	a := Analyze(tr, 32)
	byName := map[string]FuncTouch{}
	for _, ft := range a.CodeByPhaseFunc[0] {
		byName[ft.Func] = ft
	}
	if byName["loopy"].Bytes != 32 || byName["loopy"].Refs != 80 {
		t.Errorf("loopy = %+v, want 32 bytes / 80 refs", byName["loopy"])
	}
	if byName["straight"].Refs != 1 {
		t.Errorf("straight = %+v, want 1 ref", byName["straight"])
	}
}
