// Package memtrace represents memory-reference traces and the analyses the
// paper runs over them.
//
// The paper's measurement apparatus (§2.2) records every memory reference
// made by the NetBSD TCP receive & acknowledge path and then classifies the
// touched cache lines by class (code / read-only data / mutable data) and
// by protocol layer, producing Table 1 (working set breakdown at 32-byte
// line granularity), Figure 1 (a per-phase map of active code), and Table 3
// (how the working set changes with cache line size). This package is that
// analysis tooling; internal/tcpmodel produces the traces.
//
// Classification rules follow §2.4 exactly:
//   - The unit of granularity is the cache line: a reference to any byte
//     makes the whole line part of the working set.
//   - Data is read-only if it was never written during the trace.
//   - Code is classified into layers by function; data lines are assigned
//     to whichever layer referenced them first.
//   - Packet contents, hardware registers and stack accesses are excluded
//     from the working set (producers simply do not emit them, or mark
//     them Excluded so phase totals can still count them).
package memtrace

import (
	"fmt"
	"sort"
)

// Kind distinguishes reference types.
type Kind int

const (
	// IFetch is an instruction fetch.
	IFetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one memory reference.
type Record struct {
	Addr uint64
	Size int
	Kind Kind
	// Phase indexes Trace.Phases (e.g. entry / packet interrupt / exit).
	Phase int
	// Layer is the protocol-layer group for Table 1 ("TCP", "Buffer mgmt", …).
	Layer string
	// Func is the function name for the Figure 1 map.
	Func string
	// Excluded marks references that the paper's working-set accounting
	// skips (packet contents, stack, device registers) but that still
	// count in the per-phase reference totals of Figure 1.
	Excluded bool
}

// Trace is an ordered reference stream.
type Trace struct {
	Phases  []string
	Records []Record
}

// NewTrace creates a trace with the given phase names.
func NewTrace(phases ...string) *Trace {
	return &Trace{Phases: phases}
}

// Append adds one record. It panics on an out-of-range phase or
// non-positive size: producers are in this module, so that is a bug.
func (t *Trace) Append(r Record) {
	if r.Phase < 0 || r.Phase >= len(t.Phases) {
		panic(fmt.Sprintf("memtrace: record phase %d out of range (0..%d)", r.Phase, len(t.Phases)-1))
	}
	if r.Size <= 0 {
		panic(fmt.Sprintf("memtrace: record with non-positive size %d", r.Size))
	}
	t.Records = append(t.Records, r)
}

// ClassSet is the working set of one class at one line size.
type ClassSet struct {
	// Lines counts distinct cache lines.
	Lines int
	// Bytes is Lines * lineSize — the paper's Table 1 unit.
	Bytes int
	// TouchedBytes counts distinct bytes at byte granularity, used for the
	// §5.4 dilution estimate.
	TouchedBytes int
}

// LayerSet is one Table 1 row: per-class line-granular working set sizes
// in bytes for one layer group.
type LayerSet struct {
	Layer    string
	Code     int
	ReadOnly int
	Mutable  int
}

// PhaseSummary aggregates one phase of the trace for Figure 1's margins:
// distinct bytes (line-granular) and total references per kind, including
// excluded references (the figure's totals count packet copies).
type PhaseSummary struct {
	Name       string
	CodeBytes  int
	CodeRefs   int
	ReadBytes  int
	ReadRefs   int
	WriteBytes int
	WriteRefs  int
}

// FuncTouch reports how much of one function's code one phase touched
// and how many instruction references it made there (Figure 1 plots the
// touch map; the reference counts distinguish straight-line code from
// loops).
type FuncTouch struct {
	Func  string
	Bytes int
	Refs  int
}

// Analysis is the result of analyzing a trace at one line size.
type Analysis struct {
	LineSize int

	// Code, ReadOnly, Mutable are whole-trace per-class working sets
	// (excluded references not counted).
	Code, ReadOnly, Mutable ClassSet

	// PerLayer holds Table 1 rows in first-appearance order.
	PerLayer []LayerSet

	// Phases holds Figure 1 margin totals per phase.
	Phases []PhaseSummary

	// CodeByPhaseFunc[phase] lists per-function touched code bytes
	// (line-granular), sorted by descending bytes: the Figure 1 map.
	CodeByPhaseFunc [][]FuncTouch
}

// Dilution estimates the fraction of fetched code bytes that were never
// executed (§5.4 concludes ≈25% for the TCP/IP traces at 32-byte lines).
func (a *Analysis) Dilution() float64 {
	if a.Code.Bytes == 0 {
		return 0
	}
	return 1 - float64(a.Code.TouchedBytes)/float64(a.Code.Bytes)
}

type classID int

const (
	classCode classID = iota
	classRO
	classMutable
)

// Analyze computes working sets, layer attribution and phase summaries at
// the given cache line size.
func Analyze(t *Trace, lineSize int) *Analysis {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("memtrace: line size %d is not a positive power of two", lineSize))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}

	// Pass 1: find every data line that is ever stored to; those lines are
	// mutable for the whole trace (the paper classifies post-hoc).
	written := make(map[uint64]bool)
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind == Store && !r.Excluded {
			first := r.Addr >> shift
			last := (r.Addr + uint64(r.Size) - 1) >> shift
			for line := first; line <= last; line++ {
				written[line] = true
			}
		}
	}

	// Pass 2: attribute lines to layers (first touch wins) and build sets.
	type lineKey struct {
		class classID
		line  uint64
	}
	lineLayer := make(map[lineKey]string)
	layerOrder := []string{}
	layerSeen := make(map[string]bool)
	// Per class distinct lines, and byte-granularity touched byte sets.
	lines := [3]map[uint64]bool{{}, {}, {}}
	bytes := [3]map[uint64]bool{{}, {}, {}}

	// Phase accounting (includes excluded refs).
	phaseLines := make([][3]map[uint64]bool, len(t.Phases))
	for i := range phaseLines {
		phaseLines[i] = [3]map[uint64]bool{{}, {}, {}}
	}
	phaseRefs := make([][3]int, len(t.Phases))

	// Figure 1 map: per phase per function, set of touched code lines
	// plus reference counts.
	funcLines := make([]map[string]map[uint64]bool, len(t.Phases))
	funcRefs := make([]map[string]int, len(t.Phases))
	for i := range funcLines {
		funcLines[i] = make(map[string]map[uint64]bool)
		funcRefs[i] = make(map[string]int)
	}

	for i := range t.Records {
		r := &t.Records[i]
		var class classID
		var phaseClass classID
		switch r.Kind {
		case IFetch:
			class, phaseClass = classCode, classCode
		case Load:
			phaseClass = classRO // phase margin counts loads as "Read"
			class = classRO
		case Store:
			phaseClass = classMutable // and stores as "Write"
			class = classMutable
		}

		first := r.Addr >> shift
		last := (r.Addr + uint64(r.Size) - 1) >> shift

		// Phase margins count everything, excluded or not.
		phaseRefs[r.Phase][phaseClass]++
		for line := first; line <= last; line++ {
			phaseLines[r.Phase][phaseClass][line] = true
		}
		if r.Kind == IFetch && r.Func != "" {
			funcRefs[r.Phase][r.Func]++
			fl := funcLines[r.Phase][r.Func]
			if fl == nil {
				fl = make(map[uint64]bool)
				funcLines[r.Phase][r.Func] = fl
			}
			for line := first; line <= last; line++ {
				fl[line] = true
			}
		}

		if r.Excluded {
			continue
		}

		// Working-set class: loads of lines that are ever written belong
		// to the mutable class.
		if r.Kind != IFetch {
			class = classRO
			for line := first; line <= last; line++ {
				if written[line] {
					class = classMutable
					break
				}
			}
			// A multi-line reference could straddle classes; classify per
			// line below instead of per record.
		}

		for line := first; line <= last; line++ {
			c := class
			if r.Kind != IFetch {
				if written[line] {
					c = classMutable
				} else {
					c = classRO
				}
			}
			lines[c][line] = true
			k := lineKey{c, line}
			if _, ok := lineLayer[k]; !ok {
				lineLayer[k] = r.Layer
				if !layerSeen[r.Layer] {
					layerSeen[r.Layer] = true
					layerOrder = append(layerOrder, r.Layer)
				}
			}
		}
		lo := r.Addr
		hi := r.Addr + uint64(r.Size)
		for b := lo; b < hi; b++ {
			if r.Kind == IFetch {
				bytes[classCode][b] = true
			} else if written[b>>shift] {
				bytes[classMutable][b] = true
			} else {
				bytes[classRO][b] = true
			}
		}
	}

	a := &Analysis{LineSize: lineSize}
	mkSet := func(c classID) ClassSet {
		return ClassSet{
			Lines:        len(lines[c]),
			Bytes:        len(lines[c]) * lineSize,
			TouchedBytes: len(bytes[c]),
		}
	}
	a.Code = mkSet(classCode)
	a.ReadOnly = mkSet(classRO)
	a.Mutable = mkSet(classMutable)

	// Table 1 rows.
	counts := make(map[string]*LayerSet)
	for k, layer := range lineLayer {
		ls := counts[layer]
		if ls == nil {
			ls = &LayerSet{Layer: layer}
			counts[layer] = ls
		}
		switch k.class {
		case classCode:
			ls.Code += lineSize
		case classRO:
			ls.ReadOnly += lineSize
		case classMutable:
			ls.Mutable += lineSize
		}
	}
	for _, layer := range layerOrder {
		a.PerLayer = append(a.PerLayer, *counts[layer])
	}

	// Phase summaries.
	for p, name := range t.Phases {
		a.Phases = append(a.Phases, PhaseSummary{
			Name:       name,
			CodeBytes:  len(phaseLines[p][classCode]) * lineSize,
			CodeRefs:   phaseRefs[p][classCode],
			ReadBytes:  len(phaseLines[p][classRO]) * lineSize,
			ReadRefs:   phaseRefs[p][classRO],
			WriteBytes: len(phaseLines[p][classMutable]) * lineSize,
			WriteRefs:  phaseRefs[p][classMutable],
		})
	}

	// Figure 1 function map.
	a.CodeByPhaseFunc = make([][]FuncTouch, len(t.Phases))
	for p := range t.Phases {
		var fts []FuncTouch
		for fn, ls := range funcLines[p] {
			fts = append(fts, FuncTouch{Func: fn, Bytes: len(ls) * lineSize, Refs: funcRefs[p][fn]})
		}
		sort.Slice(fts, func(i, j int) bool {
			if fts[i].Bytes != fts[j].Bytes {
				return fts[i].Bytes > fts[j].Bytes
			}
			return fts[i].Func < fts[j].Func
		})
		a.CodeByPhaseFunc[p] = fts
	}
	return a
}

// LineSizeDelta is one cell pair of Table 3: the percentage change in
// working-set bytes and lines at some line size, relative to the 32-byte
// baseline.
type LineSizeDelta struct {
	LineSize   int
	BytesDelta float64 // e.g. +0.17 for +17%
	LinesDelta float64
}

// ClassSweep is the Table 3 sweep for one class.
type ClassSweep struct {
	Class  string
	Deltas []LineSizeDelta
}

// LineSweep analyzes the trace at each line size and reports Table 3:
// per-class percentage changes vs the 32-byte baseline. Line sizes smaller
// than the machine word (8 bytes on the Alpha) are infeasible for data
// caches; the paper marks them N/A and so do callers — this function just
// computes.
func LineSweep(t *Trace, lineSizes []int) []ClassSweep {
	base := Analyze(t, 32)
	baseSets := []ClassSet{base.Code, base.ReadOnly, base.Mutable}
	names := []string{"Code", "Read-only Data", "Mutable Data"}
	sweeps := make([]ClassSweep, 3)
	for i := range sweeps {
		sweeps[i].Class = names[i]
	}
	for _, ls := range lineSizes {
		a := Analyze(t, ls)
		sets := []ClassSet{a.Code, a.ReadOnly, a.Mutable}
		for i := range sweeps {
			d := LineSizeDelta{LineSize: ls}
			if baseSets[i].Bytes > 0 {
				d.BytesDelta = float64(sets[i].Bytes)/float64(baseSets[i].Bytes) - 1
			}
			if baseSets[i].Lines > 0 {
				d.LinesDelta = float64(sets[i].Lines)/float64(baseSets[i].Lines) - 1
			}
			sweeps[i].Deltas = append(sweeps[i].Deltas, d)
		}
	}
	return sweeps
}

// PhaseOverlap reports, for each pair of phases, how many bytes of code
// (line-granular) the two phases share. The paper's Figure 1 margins sum
// to more than the Table 1 union precisely because of this sharing
// (kernel entry/exit, buffer management and timing code run in more than
// one phase); this quantifies it.
func PhaseOverlap(t *Trace, lineSize int) [][]int {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		panic(fmt.Sprintf("memtrace: line size %d is not a positive power of two", lineSize))
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	perPhase := make([]map[uint64]bool, len(t.Phases))
	for i := range perPhase {
		perPhase[i] = make(map[uint64]bool)
	}
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind != IFetch || r.Excluded {
			continue
		}
		first := r.Addr >> shift
		last := (r.Addr + uint64(r.Size) - 1) >> shift
		for line := first; line <= last; line++ {
			perPhase[r.Phase][line] = true
		}
	}
	n := len(t.Phases)
	out := make([][]int, n)
	for i := range out {
		out[i] = make([]int, n)
		for j := range out[i] {
			if i == j {
				out[i][j] = len(perPhase[i]) * lineSize
				continue
			}
			shared := 0
			for line := range perPhase[i] {
				if perPhase[j][line] {
					shared++
				}
			}
			out[i][j] = shared * lineSize
		}
	}
	return out
}
