package memtrace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace("entry", "pkt intr", "exit")
	tr.Append(Record{Addr: 0x10a4, Size: 4, Kind: IFetch, Phase: 1, Layer: "TCP", Func: "tcp_input"})
	tr.Append(Record{Addr: 0x84000, Size: 8, Kind: Load, Phase: 0, Layer: "IP"})
	tr.Append(Record{Addr: 0x9000, Size: 16, Kind: Store, Phase: 2, Layer: "Socket low", Func: "sbappend", Excluded: true})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Phases) != 3 || got.Phases[1] != "pkt intr" {
		t.Errorf("phases = %v", got.Phases)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: %+v != %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestTraceRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTrace("a", "b")
		layers := []string{"L1", "L2"}
		funcs := []string{"", "f", "g"}
		for i := 0; i < 100; i++ {
			tr.Append(Record{
				Addr:     uint64(rng.Intn(1 << 20)),
				Size:     1 + rng.Intn(64),
				Kind:     Kind(rng.Intn(3)),
				Phase:    rng.Intn(2),
				Layer:    layers[rng.Intn(2)],
				Func:     funcs[rng.Intn(3)],
				Excluded: rng.Intn(2) == 0,
			})
		}
		var buf bytes.Buffer
		if WriteTrace(&buf, tr) != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a trace\n",
		"# ldlp-memtrace v1\n",              // missing phases
		"# ldlp-memtrace v1\nnophases\tx\n", // bad phases line
		"# ldlp-memtrace v1\nphases\tp\nX\t0x0\t4\t0\tL\t-\t0\n", // bad kind
		"# ldlp-memtrace v1\nphases\tp\nI\tzz\t4\t0\tL\t-\t0\n",  // bad addr
		"# ldlp-memtrace v1\nphases\tp\nI\t0x0\t0\t0\tL\t-\t0\n", // zero size
		"# ldlp-memtrace v1\nphases\tp\nI\t0x0\t4\t9\tL\t-\t0\n", // bad phase
		"# ldlp-memtrace v1\nphases\tp\nI\t0x0\t4\t0\tL\t-\t7\n", // bad flag
		"# ldlp-memtrace v1\nphases\tp\nI\t0x0\t4\t0\n",          // short line
	}
	for i, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	in := "# ldlp-memtrace v1\nphases\tp\n# a comment\n\nI\t0x20\t4\t0\tL\tf\t0\n"
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 || tr.Records[0].Addr != 0x20 {
		t.Errorf("records = %+v", tr.Records)
	}
}

func TestAnalysisSurvivesSerialization(t *testing.T) {
	// Analyzing a deserialized trace must give identical results.
	tr := NewTrace("p")
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		tr.Append(Record{
			Addr: uint64(rng.Intn(1 << 16)), Size: 4,
			Kind: Kind(rng.Intn(3)), Layer: "L", Func: "f",
		})
	}
	before := Analyze(tr, 32)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after := Analyze(loaded, 32)
	if before.Code != after.Code || before.ReadOnly != after.ReadOnly || before.Mutable != after.Mutable {
		t.Errorf("analysis changed across serialization: %+v vs %+v", before.Code, after.Code)
	}
}
