package memtrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace files: a line-oriented text format so traces from the model (or,
// in principle, from a real tracing tool like the paper's alphasim) can
// be stored, diffed and re-analyzed.
//
//	# ldlp-memtrace v1
//	phases<TAB>entry<TAB>pkt intr<TAB>exit
//	I<TAB>0x10a4<TAB>4<TAB>1<TAB>TCP<TAB>tcp_input<TAB>0
//	L<TAB>0x84000<TAB>8<TAB>1<TAB>IP<TAB>-<TAB>0
//
// Columns: kind (I/L/S), address, size, phase index, layer, function
// ("-" if none), excluded flag (0/1).

const traceMagic = "# ldlp-memtrace v1"

var kindLetters = map[Kind]string{IFetch: "I", Load: "L", Store: "S"}

// WriteTrace serializes the trace.
func WriteTrace(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceMagic); err != nil {
		return err
	}
	fmt.Fprintf(bw, "phases\t%s\n", strings.Join(t.Phases, "\t"))
	for i := range t.Records {
		r := &t.Records[i]
		fn := r.Func
		if fn == "" {
			fn = "-"
		}
		ex := 0
		if r.Excluded {
			ex = 1
		}
		if _, err := fmt.Fprintf(bw, "%s\t%#x\t%d\t%d\t%s\t%s\t%d\n",
			kindLetters[r.Kind], r.Addr, r.Size, r.Phase, r.Layer, fn, ex); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a serialized trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() || sc.Text() != traceMagic {
		return nil, fmt.Errorf("memtrace: bad or missing magic line")
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("memtrace: missing phases line")
	}
	head := strings.Split(sc.Text(), "\t")
	if head[0] != "phases" || len(head) < 2 {
		return nil, fmt.Errorf("memtrace: malformed phases line %q", sc.Text())
	}
	t := NewTrace(head[1:]...)
	line := 2
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 7 {
			return nil, fmt.Errorf("memtrace: line %d has %d fields", line, len(f))
		}
		var rec Record
		switch f[0] {
		case "I":
			rec.Kind = IFetch
		case "L":
			rec.Kind = Load
		case "S":
			rec.Kind = Store
		default:
			return nil, fmt.Errorf("memtrace: line %d unknown kind %q", line, f[0])
		}
		addr, err := strconv.ParseUint(f[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("memtrace: line %d address: %w", line, err)
		}
		size, err := strconv.Atoi(f[2])
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("memtrace: line %d size %q", line, f[2])
		}
		phase, err := strconv.Atoi(f[3])
		if err != nil || phase < 0 || phase >= len(t.Phases) {
			return nil, fmt.Errorf("memtrace: line %d phase %q", line, f[3])
		}
		rec.Addr, rec.Size, rec.Phase, rec.Layer = addr, size, phase, f[4]
		if f[5] != "-" {
			rec.Func = f[5]
		}
		switch f[6] {
		case "0":
		case "1":
			rec.Excluded = true
		default:
			return nil, fmt.Errorf("memtrace: line %d excluded flag %q", line, f[6])
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
