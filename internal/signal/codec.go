// Package signal implements a small connection setup/teardown signalling
// protocol in the spirit of Q.93B (the ATM connection-control protocol
// whose performance motivates the paper's §1): SETUP / CALL PROCEEDING /
// CONNECT / CONNECT ACK / RELEASE / RELEASE COMPLETE messages with a
// Q.931-style call reference and information elements, call state
// machines for both ends, and an agent that runs over the netstack.
//
// The paper's stated goal is "10000 pairs of setup/teardown requests per
// second with processing latency of 100 microseconds for setup requests,
// using just a commodity workstation processor". SimConfig exposes a
// machine-model configuration of this stack so cmd/sigbench can evaluate
// that goal under the conventional and LDLP disciplines.
package signal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType enumerates signalling message types (values shadow Q.931).
type MsgType byte

const (
	// MsgSetup initiates a call.
	MsgSetup MsgType = 0x05
	// MsgCallProceeding acknowledges a SETUP is being worked on.
	MsgCallProceeding MsgType = 0x02
	// MsgConnect accepts the call.
	MsgConnect MsgType = 0x07
	// MsgConnectAck completes the three-way setup exchange.
	MsgConnectAck MsgType = 0x0f
	// MsgRelease starts teardown.
	MsgRelease MsgType = 0x4d
	// MsgReleaseComplete finishes teardown.
	MsgReleaseComplete MsgType = 0x5a
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgSetup:
		return "SETUP"
	case MsgCallProceeding:
		return "CALL PROCEEDING"
	case MsgConnect:
		return "CONNECT"
	case MsgConnectAck:
		return "CONNECT ACK"
	case MsgRelease:
		return "RELEASE"
	case MsgReleaseComplete:
		return "RELEASE COMPLETE"
	default:
		return fmt.Sprintf("MsgType(%#02x)", byte(t))
	}
}

// Cause values for RELEASE.
const (
	CauseNormal        byte = 16
	CauseRejected      byte = 21
	CauseNoRouteToDest byte = 3
)

// Information element identifiers.
const (
	ieCalledParty  byte = 0x70
	ieCallingParty byte = 0x6c
	ieTrafficDesc  byte = 0x59
	ieCause        byte = 0x08
)

// protoDiscriminator identifies our protocol on the wire (Q.93B uses
// 0x09 for Q.931-family call control).
const protoDiscriminator = 0x09

// Message is a decoded signalling message. Party numbers are opaque
// 32-bit addresses (an NSAP stand-in); PeakCells is the traffic
// descriptor's peak cell rate.
type Message struct {
	CallRef   uint32
	Type      MsgType
	Called    uint32
	Calling   uint32
	PeakCells uint32
	Cause     byte
}

// Decode errors.
var (
	ErrShort     = errors.New("signal: message too short")
	ErrBadProto  = errors.New("signal: wrong protocol discriminator")
	ErrBadIE     = errors.New("signal: malformed information element")
	ErrUnknownIE = errors.New("signal: unknown mandatory information element")
)

// Encode renders the message: discriminator, call reference, type, then
// IEs as (id, len, value) triples — around a hundred bytes, the size
// class the paper says signalling messages live in.
func (m *Message) Encode() []byte {
	// Worst case: 6 fixed + 3 IEs of 6 + cause of 3.
	b := make([]byte, 0, 32)
	b = append(b, protoDiscriminator)
	var ref [4]byte
	binary.BigEndian.PutUint32(ref[:], m.CallRef)
	b = append(b, ref[:]...)
	b = append(b, byte(m.Type))

	put32 := func(id byte, v uint32) {
		var val [4]byte
		binary.BigEndian.PutUint32(val[:], v)
		b = append(b, id, 4)
		b = append(b, val[:]...)
	}
	switch m.Type {
	case MsgSetup:
		put32(ieCalledParty, m.Called)
		put32(ieCallingParty, m.Calling)
		put32(ieTrafficDesc, m.PeakCells)
	case MsgRelease, MsgReleaseComplete:
		b = append(b, ieCause, 1, m.Cause)
	}
	return b
}

// Decode parses a wire message.
func Decode(b []byte) (Message, error) {
	var m Message
	if len(b) < 6 {
		return m, fmt.Errorf("%w (%d bytes)", ErrShort, len(b))
	}
	if b[0] != protoDiscriminator {
		return m, fmt.Errorf("%w (%#02x)", ErrBadProto, b[0])
	}
	m.CallRef = binary.BigEndian.Uint32(b[1:5])
	m.Type = MsgType(b[5])
	rest := b[6:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return m, fmt.Errorf("%w: dangling IE header", ErrBadIE)
		}
		id, n := rest[0], int(rest[1])
		rest = rest[2:]
		if len(rest) < n {
			return m, fmt.Errorf("%w: IE %#02x wants %d bytes, %d left", ErrBadIE, id, n, len(rest))
		}
		val := rest[:n]
		rest = rest[n:]
		switch id {
		case ieCalledParty, ieCallingParty, ieTrafficDesc:
			if n != 4 {
				return m, fmt.Errorf("%w: IE %#02x length %d", ErrBadIE, id, n)
			}
			v := binary.BigEndian.Uint32(val)
			switch id {
			case ieCalledParty:
				m.Called = v
			case ieCallingParty:
				m.Calling = v
			case ieTrafficDesc:
				m.PeakCells = v
			}
		case ieCause:
			if n != 1 {
				return m, fmt.Errorf("%w: cause length %d", ErrBadIE, n)
			}
			m.Cause = val[0]
		default:
			// Unknown IEs are skipped (forward compatibility), as in
			// Q.931 comprehension rules for non-mandatory elements.
		}
	}
	if m.Type == MsgSetup && m.Called == 0 {
		return m, fmt.Errorf("%w: SETUP without called party", ErrUnknownIE)
	}
	return m, nil
}
