package signal

import (
	"fmt"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/netstack"
	"ldlp/internal/sim"
)

// SignalPort is the UDP port signalling agents rendezvous on.
const SignalPort = 2905

// CallState is one call's state, named after Q.931's states.
type CallState int

const (
	// StateNull is the idle state.
	StateNull CallState = iota
	// StateCallInitiated: SETUP sent, nothing back yet (caller side).
	StateCallInitiated
	// StateOutgoingProceeding: CALL PROCEEDING received (caller side).
	StateOutgoingProceeding
	// StateCallPresent: SETUP received, not yet answered (callee side).
	StateCallPresent
	// StateActive: the call is connected.
	StateActive
	// StateReleaseRequest: RELEASE sent, awaiting RELEASE COMPLETE.
	StateReleaseRequest
)

var callStateNames = map[CallState]string{
	StateNull: "null", StateCallInitiated: "call-initiated",
	StateOutgoingProceeding: "outgoing-proceeding",
	StateCallPresent:        "call-present", StateActive: "active",
	StateReleaseRequest: "release-request",
}

// String names the state.
func (s CallState) String() string { return callStateNames[s] }

// Call is one signalling association.
type Call struct {
	agent    *Agent
	Ref      uint32
	Peer     layers.IPAddr
	PeerPort uint16
	Called   uint32
	Calling  uint32
	Peak     uint32
	state    CallState
	outgoing bool

	// peerLeg ties a transit switch's incoming and outgoing legs.
	peerLeg *Call

	// Timer state: guard deadline and transmission attempts for the
	// message currently awaiting a response (T303/T308).
	deadline float64
	attempts int
}

// State returns the call state.
func (c *Call) State() CallState { return c.state }

// Stats counts agent activity.
type Stats struct {
	SetupsSent         int64
	SetupsReceived     int64
	CallsActive        int64
	CallsCompleted     int64 // reached Active at some point, then released
	Rejected           int64
	Released           int64
	BadMessages        int64
	MsgsIn             int64
	MsgsOut            int64
	SetupRetransmits   int64
	ReleaseRetransmits int64
	TimedOut           int64
	TransitSetups      int64
}

// callRefFlag is Q.931's call reference flag, carried in the top bit of
// the wire call reference: set on messages sent *by* the side that
// allocated the reference. It is what lets a transit switch keep an
// incoming leg (ref allocated by the upstream node) and an outgoing leg
// (ref allocated locally) with the same numeric reference apart.
const callRefFlag = uint32(1) << 31

// callKey identifies a call leg: who allocated the reference (ours) and,
// for references allocated by a peer, which peer.
type callKey struct {
	remote layers.IPAddr
	ref    uint32
	ours   bool
}

// Agent is a signalling endpoint (user or network side — both state
// machines are implemented; a callee auto-answers unless Admission
// rejects).
type Agent struct {
	host    *netstack.Host
	sock    *netstack.UDPSock
	Address uint32 // this agent's party number
	calls   map[callKey]*Call
	nextRef uint32
	Stats   Stats
	// Admission, if set, decides whether to accept a SETUP; rejection
	// sends RELEASE COMPLETE with CauseRejected. nil accepts everything.
	Admission func(m *Message) bool
	// T303/T308 override the SETUP and RELEASE guard timers (seconds);
	// zero selects the Q.931-style defaults.
	T303, T308 float64
	// Route, when set, makes the agent a transit switch: a SETUP whose
	// called party is not this agent is forwarded to the next hop Route
	// returns, with the two call legs tied together (CONNECT propagates
	// back, RELEASE propagates both ways). §1's motivating scenario is a
	// connection crossing 10–20 such switches.
	Route func(called uint32) (layers.IPAddr, bool)
}

// NewAgent binds a signalling agent to the host's SignalPort.
func NewAgent(h *netstack.Host, address uint32) (*Agent, error) {
	sock, err := h.UDPSocket(SignalPort)
	if err != nil {
		return nil, err
	}
	return &Agent{host: h, sock: sock, Address: address, calls: make(map[callKey]*Call)}, nil
}

// ActiveCalls returns the number of calls in StateActive.
func (a *Agent) ActiveCalls() int {
	n := 0
	for _, c := range a.calls {
		if c.state == StateActive {
			n++
		}
	}
	return n
}

// CallFor returns the locally-originated call with the given reference,
// if any.
func (a *Agent) CallFor(ref uint32) *Call {
	for k, c := range a.calls {
		if k.ours && k.ref == ref {
			return c
		}
	}
	return nil
}

// key returns a call's map key.
func (c *Call) key() callKey {
	return callKey{remote: c.Peer, ref: c.Ref, ours: c.outgoing}
}

// Dial starts a call setup toward the agent at dst with the given called-
// party number and peak rate.
func (a *Agent) Dial(dst layers.IPAddr, called uint32, peak uint32) *Call {
	a.nextRef++
	c := &Call{
		agent: a, Ref: a.nextRef, Peer: dst, PeerPort: SignalPort,
		Called: called, Calling: a.Address, Peak: peak,
		state: StateCallInitiated, outgoing: true,
	}
	a.calls[c.key()] = c
	a.send(c, Message{CallRef: c.Ref, Type: MsgSetup, Called: called, Calling: a.Address, PeakCells: peak})
	a.Stats.SetupsSent++
	t303, _ := a.timers()
	c.armTimer(t303)
	return c
}

// Hangup releases an active (or pending) call.
func (c *Call) Hangup() {
	if c.state == StateNull || c.state == StateReleaseRequest {
		return
	}
	c.state = StateReleaseRequest
	c.agent.send(c, Message{CallRef: c.Ref, Type: MsgRelease, Cause: CauseNormal})
	_, t308 := c.agent.timers()
	c.attempts = 0
	c.armTimer(t308)
}

func (a *Agent) send(c *Call, m Message) {
	a.Stats.MsgsOut++
	if c.outgoing {
		// We allocated this reference: set the call reference flag.
		m.CallRef |= callRefFlag
	}
	a.sock.SendTo(c.Peer, c.PeerPort, m.Encode())
}

// Poll drains the agent's socket and runs the state machines. Call it
// after pumping the network.
func (a *Agent) Poll() {
	for {
		dg, ok := a.sock.Recv()
		if !ok {
			return
		}
		a.Stats.MsgsIn++
		m, err := Decode(dg.Data)
		if err != nil {
			a.Stats.BadMessages++
			continue
		}
		a.handle(dg.Src, dg.SrcPort, m)
	}
}

// handle advances the state machine for one message.
func (a *Agent) handle(src layers.IPAddr, srcPort uint16, m Message) {
	// The call reference flag tells us whose numbering space the
	// reference lives in: set = the sender allocated it (their call,
	// keyed by peer); clear = a reply about a call we allocated.
	theirs := m.CallRef&callRefFlag != 0
	m.CallRef &^= callRefFlag
	c := a.calls[callKey{remote: src, ref: m.CallRef, ours: !theirs}]
	switch m.Type {
	case MsgSetup:
		a.Stats.SetupsReceived++
		if c != nil {
			// Retransmitted SETUP (the caller's T303 fired because our
			// response was lost): repeat the response, keep one call.
			if c.state == StateCallPresent && c.peerLeg == nil {
				a.send(c, Message{CallRef: c.Ref, Type: MsgCallProceeding})
				a.send(c, Message{CallRef: c.Ref, Type: MsgConnect})
			}
			return
		}
		c = &Call{
			agent: a, Ref: m.CallRef, Peer: src, PeerPort: srcPort,
			Called: m.Called, Calling: m.Calling, Peak: m.PeakCells,
			state: StateCallPresent,
		}
		if a.Admission != nil && !a.Admission(&m) {
			a.Stats.Rejected++
			a.Stats.MsgsOut++
			reply := Message{CallRef: m.CallRef, Type: MsgReleaseComplete, Cause: CauseRejected}
			a.sock.SendTo(src, srcPort, reply.Encode())
			return
		}
		a.calls[c.key()] = c
		a.send(c, Message{CallRef: c.Ref, Type: MsgCallProceeding})
		if m.Called != a.Address && a.Route != nil {
			// Transit: extend the call toward the called party and hold
			// CONNECT until the far end answers.
			next, ok := a.Route(m.Called)
			if !ok {
				a.Stats.Rejected++
				a.Stats.MsgsOut++
				reply := Message{CallRef: m.CallRef, Type: MsgReleaseComplete, Cause: CauseNoRouteToDest}
				a.sock.SendTo(src, srcPort, reply.Encode())
				delete(a.calls, c.key())
				return
			}
			a.Stats.TransitSetups++
			out := a.Dial(next, m.Called, m.PeakCells)
			out.Calling = m.Calling
			out.peerLeg = c
			c.peerLeg = out
			return
		}
		a.send(c, Message{CallRef: c.Ref, Type: MsgConnect})
	case MsgCallProceeding:
		if c != nil && c.state == StateCallInitiated {
			c.state = StateOutgoingProceeding
		}
	case MsgConnect:
		if c != nil && (c.state == StateOutgoingProceeding || c.state == StateCallInitiated) {
			c.state = StateActive
			a.Stats.CallsActive++
			a.send(c, Message{CallRef: c.Ref, Type: MsgConnectAck})
			// Transit: the outgoing leg connected — answer the incoming leg.
			if in := c.peerLeg; in != nil && in.state == StateCallPresent {
				a.send(in, Message{CallRef: in.Ref, Type: MsgConnect})
			}
		}
	case MsgConnectAck:
		if c != nil && c.state == StateCallPresent {
			c.state = StateActive
			a.Stats.CallsActive++
		}
	case MsgRelease:
		if c != nil {
			a.Stats.MsgsOut++
			reply := Message{CallRef: c.Ref, Type: MsgReleaseComplete, Cause: CauseNormal}
			a.sock.SendTo(c.Peer, c.PeerPort, reply.Encode())
			peer := c.peerLeg
			a.finish(c)
			// Transit: releasing one leg releases the other.
			if peer != nil && peer.state != StateNull {
				peer.peerLeg = nil
				peer.Hangup()
			}
		}
	case MsgReleaseComplete:
		if c != nil {
			if c.state == StateCallInitiated || c.state == StateOutgoingProceeding {
				a.Stats.Rejected++
				delete(a.calls, c.key())
				c.state = StateNull
				// A rejected transit leg rejects the incoming leg too.
				if in := c.peerLeg; in != nil && in.state == StateCallPresent {
					a.Stats.MsgsOut++
					reply := Message{CallRef: in.Ref, Type: MsgReleaseComplete, Cause: m.Cause}
					a.sock.SendTo(in.Peer, in.PeerPort, reply.Encode())
					delete(a.calls, in.key())
					in.state = StateNull
				}
				return
			}
			a.finish(c)
		}
	}
}

func (a *Agent) finish(c *Call) {
	if c.state == StateActive || c.state == StateReleaseRequest {
		a.Stats.CallsCompleted++
	}
	a.Stats.Released++
	c.state = StateNull
	delete(a.calls, c.key())
}

// SimConfig models this signalling stack on the paper's machine for one
// discipline, for the §1 goal benchmark: four layers (SSCOP-style
// reliable link, codec, call control, admission/routing), each with a
// signalling-sized code working set, handling ~120-byte messages.
//
// Layer code of 6 KB matches the paper's observation that signalling
// protocols are built from several standard layers whose sum exceeds the
// primary cache; issue costs are lighter than TCP's bulk path because
// per-message work is mostly field handling.
func SimConfig(d core.Discipline) sim.Config {
	// The goal's own arithmetic bounds the per-message budget: 10000
	// pairs/s × 2 messages at 100 MHz leaves 5000 cycles per message, so
	// each of the four layers may issue ~700 cycles of straight-line work
	// — achievable for field-bashing signalling code, and exactly why the
	// instruction-fetch stalls (not the instruction counts) are what
	// breaks the goal on a conventional stack.
	cfg := sim.DefaultConfig(d)
	cfg.Layers = 4
	cfg.LayerCode = 6144
	cfg.LayerData = 512 // call tables are bigger than TCP PCB rows
	cfg.IssueFixed = 700
	cfg.IssuePerByte = 0.5
	return cfg
}

// MessageBytes is the modeled signalling message size ("on the order of a
// hundred bytes or less").
const MessageBytes = 120

// GoalPairsPerSec and GoalLatency state the paper's §1 target.
const (
	GoalPairsPerSec = 10000
	GoalLatency     = 100e-6
)

// MessagesPerPair is the number of messages a transit switch processes
// per setup/teardown pair in this protocol (SETUP + RELEASE on the
// forward path; the reverse-direction messages load the peer).
const MessagesPerPair = 2

func init() {
	// The constants above must stay consistent with the codec: a SETUP
	// encodes to well under MessageBytes.
	m := Message{CallRef: 1, Type: MsgSetup, Called: 2, Calling: 3, PeakCells: 4}
	if n := len(m.Encode()); n > MessageBytes {
		panic(fmt.Sprintf("signal: SETUP encodes to %d bytes > model's %d", n, MessageBytes))
	}
}

// Timer defaults, after Q.931: T303 guards SETUP, T308 guards RELEASE.
const (
	DefaultT303 = 4.0 // seconds
	DefaultT308 = 4.0
	// maxAttempts is how many times a guarded message is sent in total
	// before the call is abandoned (Q.931 retransmits once).
	maxAttempts = 2
)

// timers returns the agent's effective timer values.
func (a *Agent) timers() (t303, t308 float64) {
	t303, t308 = a.T303, a.T308
	if t303 <= 0 {
		t303 = DefaultT303
	}
	if t308 <= 0 {
		t308 = DefaultT308
	}
	return
}

// armTimer sets a call's guard deadline from now.
func (c *Call) armTimer(d float64) {
	c.deadline = c.agent.host.Now() + d
	c.attempts++
}

// Tick fires the agent's protocol timers: retransmit unanswered SETUPs
// (T303) and RELEASEs (T308), abandoning the call after maxAttempts.
// Call it whenever the network clock advances.
func (a *Agent) Tick() {
	now := a.host.Now()
	t303, t308 := a.timers()
	for _, c := range a.calls {
		switch c.state {
		case StateCallInitiated:
			if now < c.deadline {
				continue
			}
			if c.attempts >= maxAttempts {
				a.Stats.TimedOut++
				c.state = StateNull
				delete(a.calls, c.key())
				continue
			}
			a.Stats.SetupRetransmits++
			a.send(c, Message{CallRef: c.Ref, Type: MsgSetup, Called: c.Called, Calling: c.Calling, PeakCells: c.Peak})
			c.armTimer(t303)
		case StateReleaseRequest:
			if now < c.deadline {
				continue
			}
			if c.attempts >= maxAttempts {
				// Q.931: clear the call locally after T308 expires twice.
				a.Stats.TimedOut++
				a.finish(c)
				continue
			}
			a.Stats.ReleaseRetransmits++
			a.send(c, Message{CallRef: c.Ref, Type: MsgRelease, Cause: CauseNormal})
			c.armTimer(t308)
		}
	}
}
