package signal

import (
	"fmt"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
)

// buildChain creates user — switch1 — … — switchN — callee, each switch
// routing toward the next hop, and returns the network, the agents in
// path order, and a pump helper.
func buildChain(t *testing.T, hops int, d core.Discipline) (*netstack.Net, []*Agent) {
	t.Helper()
	mbuf.ResetPool()
	n := netstack.NewNet()
	total := hops + 2 // user + switches + callee
	agents := make([]*Agent, total)
	ips := make([]layers.IPAddr, total)
	for i := 0; i < total; i++ {
		ips[i] = layers.IPAddr{10, 4, byte(i >> 8), byte(i + 1)}
		h := n.AddHost(fmt.Sprintf("n%d", i), ips[i], netstack.DefaultOptions(d))
		a, err := NewAgent(h, uint32(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	calleeAddr := uint32(1000 + total - 1)
	for i := 1; i < total-1; i++ {
		next := ips[i+1]
		agents[i].Route = func(called uint32) (layers.IPAddr, bool) {
			if called == calleeAddr {
				return next, true
			}
			return layers.IPAddr{}, false
		}
	}
	return n, agents
}

func pumpAll(n *netstack.Net, agents []*Agent) {
	for i := 0; i < 12*len(agents); i++ {
		moved := n.RunUntilIdle() > 0
		for _, a := range agents {
			in := a.Stats.MsgsIn
			a.Poll()
			if a.Stats.MsgsIn != in {
				moved = true
			}
		}
		if n.RunUntilIdle() > 0 {
			moved = true
		}
		if !moved {
			return
		}
	}
}

func TestTransitCallAcrossSwitchChain(t *testing.T) {
	const hops = 5
	n, agents := buildChain(t, hops, core.LDLP)
	user, callee := agents[0], agents[len(agents)-1]

	// Dial toward the first switch with the callee's address.
	realCall := user.Dial(firstHopIP(), callee.Address, 353)
	pumpAll(n, agents)

	if realCall.State() != StateActive {
		t.Fatalf("end-to-end call state = %v, want active", realCall.State())
	}
	if callee.ActiveCalls() != 1 {
		t.Fatalf("callee active calls = %d", callee.ActiveCalls())
	}
	// Every transit switch holds exactly two active legs.
	for i := 1; i < len(agents)-1; i++ {
		if got := agents[i].ActiveCalls(); got != 2 {
			t.Errorf("switch %d active legs = %d, want 2", i, got)
		}
		if agents[i].Stats.TransitSetups != 1 {
			t.Errorf("switch %d transit setups = %d", i, agents[i].Stats.TransitSetups)
		}
	}

	// Hang up at the caller: the release must ripple to the far end.
	realCall.Hangup()
	pumpAll(n, agents)
	for i, a := range agents {
		if got := a.ActiveCalls(); got != 0 {
			t.Errorf("agent %d still has %d active calls after release", i, got)
		}
	}
	if s := mbuf.PoolStats(); s.InUse != 0 {
		t.Errorf("mbuf leak: %+v", s)
	}
}

// firstHopIP is the address of switch1 in buildChain's layout.
func firstHopIP() layers.IPAddr { return layers.IPAddr{10, 4, 0, 2} }

func TestTransitNoRoute(t *testing.T) {
	n, agents := buildChain(t, 1, core.Conventional)
	user := agents[0]
	// Dial an address no switch can route.
	call := user.Dial(firstHopIP(), 0xdead, 1)
	pumpAll(n, agents)
	if call.State() != StateNull {
		t.Errorf("unroutable call state = %v, want null", call.State())
	}
	if user.Stats.Rejected != 1 {
		t.Errorf("caller rejected count = %d, want 1", user.Stats.Rejected)
	}
	if agents[1].Stats.Rejected != 1 {
		t.Errorf("switch rejected count = %d, want 1", agents[1].Stats.Rejected)
	}
}

func TestTransitCalleeHangupPropagatesBack(t *testing.T) {
	n, agents := buildChain(t, 3, core.Conventional)
	user, callee := agents[0], agents[len(agents)-1]
	call := user.Dial(firstHopIP(), callee.Address, 1)
	pumpAll(n, agents)
	if call.State() != StateActive {
		t.Fatal("setup failed")
	}
	// The callee hangs up.
	var calleeLeg *Call
	for _, c := range callee.calls {
		calleeLeg = c
	}
	calleeLeg.Hangup()
	pumpAll(n, agents)
	if call.State() != StateNull {
		t.Errorf("caller state after far-end hangup = %v, want null", call.State())
	}
	for i := 1; i < len(agents)-1; i++ {
		if agents[i].ActiveCalls() != 0 {
			t.Errorf("switch %d still holds legs", i)
		}
	}
}

func TestTwentySwitchPath(t *testing.T) {
	// §1's worst case: "a cross-country connection might pass through 10
	// to 20 switches".
	n, agents := buildChain(t, 20, core.LDLP)
	callee := agents[len(agents)-1]
	call := agents[0].Dial(firstHopIP(), callee.Address, 353)
	pumpAll(n, agents)
	if call.State() != StateActive {
		t.Fatalf("20-switch call state = %v", call.State())
	}
	call.Hangup()
	pumpAll(n, agents)
	if callee.ActiveCalls() != 0 {
		t.Error("far end still active after release across 20 switches")
	}
}
