package signal

import (
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
)

// lossyPair builds two agents with a controllable frame-loss predicate.
func lossyPair(t *testing.T) (*netstack.Net, *Agent, *Agent) {
	t.Helper()
	mbuf.ResetPool()
	n := netstack.NewNet()
	hu := n.AddHost("user", ipU, netstack.DefaultOptions(core.Conventional))
	hn := n.AddHost("network", ipN, netstack.DefaultOptions(core.Conventional))
	au, err := NewAgent(hu, 100)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAgent(hn, 200)
	if err != nil {
		t.Fatal(err)
	}
	return n, au, an
}

// tickPump advances the clock and runs agents until quiescent.
func tickPump(n *netstack.Net, dt float64, agents ...*Agent) {
	n.Tick(dt)
	for i := 0; i < 10; i++ {
		progress := n.RunUntilIdle() > 0
		for _, a := range agents {
			in := a.Stats.MsgsIn
			a.Tick()
			a.Poll()
			if a.Stats.MsgsIn != in {
				progress = true
			}
		}
		if n.RunUntilIdle() > 0 {
			progress = true
		}
		if !progress {
			return
		}
	}
}

func TestT303RetransmitRecoversLostSetup(t *testing.T) {
	n, au, an := lossyPair(t)
	// Drop exactly the first SETUP frame to the network side.
	dropped := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipN && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	call := au.Dial(ipN, 200, 1)
	tickPump(n, 0.01, au, an)
	if call.State() == StateActive {
		t.Fatal("call completed despite the lost SETUP")
	}
	// T303 (4s default) fires; the retransmitted SETUP gets through.
	tickPump(n, 4.1, au, an)
	if au.Stats.SetupRetransmits != 1 {
		t.Errorf("setup retransmits = %d, want 1", au.Stats.SetupRetransmits)
	}
	if call.State() != StateActive {
		t.Errorf("call state after retransmit = %v, want active", call.State())
	}
}

func TestT303GivesUpAfterMaxAttempts(t *testing.T) {
	n, au, an := lossyPair(t)
	// Black-hole every frame to the network side.
	n.Loss = func(dst layers.IPAddr, data []byte) bool { return dst == ipN }
	call := au.Dial(ipN, 200, 1)
	for i := 0; i < 4; i++ {
		tickPump(n, 4.1, au, an)
	}
	if call.State() != StateNull {
		t.Errorf("unanswerable call state = %v, want null", call.State())
	}
	if au.Stats.TimedOut != 1 {
		t.Errorf("timed out = %d, want 1", au.Stats.TimedOut)
	}
	if au.Stats.SetupRetransmits != 1 {
		t.Errorf("setup retransmits = %d, want 1 (then give up)", au.Stats.SetupRetransmits)
	}
	if au.CallFor(call.Ref) != nil {
		t.Error("abandoned call still tracked")
	}
}

func TestT308RetransmitRecoversLostRelease(t *testing.T) {
	n, au, an := lossyPair(t)
	call := au.Dial(ipN, 200, 1)
	tickPump(n, 0.01, au, an)
	if call.State() != StateActive {
		t.Fatal("setup failed")
	}
	// Drop the first RELEASE.
	dropped := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipN && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	call.Hangup()
	tickPump(n, 0.01, au, an)
	if call.State() != StateReleaseRequest {
		t.Fatalf("state = %v, want release-request while RELEASE lost", call.State())
	}
	tickPump(n, 4.1, au, an)
	if au.Stats.ReleaseRetransmits != 1 {
		t.Errorf("release retransmits = %d, want 1", au.Stats.ReleaseRetransmits)
	}
	if call.State() != StateNull {
		t.Errorf("state after retransmitted RELEASE = %v, want null", call.State())
	}
	if an.ActiveCalls() != 0 {
		t.Error("network side still holds the call")
	}
}

func TestT308LocalClearAfterTimeouts(t *testing.T) {
	n, au, an := lossyPair(t)
	call := au.Dial(ipN, 200, 1)
	tickPump(n, 0.01, au, an)
	// Peer vanishes entirely.
	n.Loss = func(dst layers.IPAddr, data []byte) bool { return dst == ipN }
	call.Hangup()
	for i := 0; i < 4; i++ {
		tickPump(n, 4.1, au, an)
	}
	if call.State() != StateNull {
		t.Errorf("state = %v, want locally cleared", call.State())
	}
	if au.Stats.TimedOut != 1 {
		t.Errorf("timeouts = %d, want 1", au.Stats.TimedOut)
	}
	// Local clear still counts the call as completed (it was active).
	if au.Stats.CallsCompleted != 1 {
		t.Errorf("completed = %d, want 1", au.Stats.CallsCompleted)
	}
}

func TestDuplicateSetupAfterRetransmitStillOneCall(t *testing.T) {
	n, au, an := lossyPair(t)
	// The original SETUP arrives but both response frames (CALL
	// PROCEEDING + CONNECT) are lost, so the caller's T303 fires and the
	// network sees a duplicate SETUP — which it must re-answer without
	// creating a second call.
	droppedBack := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipU && droppedBack < 2 {
			droppedBack++
			return true
		}
		return false
	}
	call := au.Dial(ipN, 200, 1)
	tickPump(n, 0.01, au, an)
	tickPump(n, 4.1, au, an) // T303 fires; duplicate SETUP is re-answered
	if an.Stats.SetupsReceived != 2 {
		t.Errorf("setups received = %d, want 2 (original + retransmit)", an.Stats.SetupsReceived)
	}
	if got := an.ActiveCalls(); got != 1 {
		t.Errorf("active calls at network = %d, want 1 (dup ignored)", got)
	}
	if call.State() != StateActive {
		t.Errorf("caller state = %v", call.State())
	}
}

func TestCustomTimerValues(t *testing.T) {
	n, au, an := lossyPair(t)
	au.T303 = 0.5
	dropped := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipN && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	call := au.Dial(ipN, 200, 1)
	tickPump(n, 0.6, au, an) // custom short T303 fires
	if au.Stats.SetupRetransmits != 1 || call.State() != StateActive {
		t.Errorf("short T303: retransmits=%d state=%v", au.Stats.SetupRetransmits, call.State())
	}
}
