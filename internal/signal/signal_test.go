package signal

import (
	"testing"
	"testing/quick"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/netstack"
	"ldlp/internal/sim"
	"ldlp/internal/traffic"
)

var (
	ipU = layers.IPAddr{10, 1, 0, 1}
	ipN = layers.IPAddr{10, 1, 0, 2}
)

func pair(t *testing.T, d core.Discipline) (*netstack.Net, *Agent, *Agent) {
	t.Helper()
	mbuf.ResetPool()
	n := netstack.NewNet()
	hu := n.AddHost("user", ipU, netstack.DefaultOptions(d))
	hn := n.AddHost("network", ipN, netstack.DefaultOptions(d))
	au, err := NewAgent(hu, 100)
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAgent(hn, 200)
	if err != nil {
		t.Fatal(err)
	}
	return n, au, an
}

// pump runs the network and both agents to quiescence.
func pump(n *netstack.Net, agents ...*Agent) {
	for i := 0; i < 20; i++ {
		n.RunUntilIdle()
		progress := false
		for _, a := range agents {
			in := a.Stats.MsgsIn
			a.Poll()
			if a.Stats.MsgsIn != in {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{CallRef: 1, Type: MsgSetup, Called: 0xdead, Calling: 0xbeef, PeakCells: 353},
		{CallRef: 2, Type: MsgCallProceeding},
		{CallRef: 3, Type: MsgConnect},
		{CallRef: 4, Type: MsgConnectAck},
		{CallRef: 5, Type: MsgRelease, Cause: CauseNormal},
		{CallRef: 6, Type: MsgReleaseComplete, Cause: CauseRejected},
	}
	for _, m := range msgs {
		got, err := Decode(m.Encode())
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if got.CallRef != m.CallRef || got.Type != m.Type || got.Cause != m.Cause ||
			got.Called != m.Called || got.Calling != m.Calling || got.PeakCells != m.PeakCells {
			t.Errorf("round trip %v: got %+v", m.Type, got)
		}
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(ref, called, calling, peak uint32) bool {
		if called == 0 {
			called = 1
		}
		m := Message{CallRef: ref, Type: MsgSetup, Called: called, Calling: calling, PeakCells: peak}
		got, err := Decode(m.Encode())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0x08, 0, 0, 0, 1, byte(MsgSetup)}, // wrong discriminator
		{protoDiscriminator, 0, 0, 0, 1, byte(MsgSetup), 0x70},       // dangling IE
		{protoDiscriminator, 0, 0, 0, 1, byte(MsgSetup), 0x70, 9, 1}, // short IE value
		{protoDiscriminator, 0, 0, 0, 1, byte(MsgSetup)},             // SETUP w/o called party
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d should fail to decode", i)
		}
	}
}

func TestDecodeSkipsUnknownIE(t *testing.T) {
	m := Message{CallRef: 9, Type: MsgConnect}
	b := m.Encode()
	b = append(b, 0x42, 2, 7, 7) // unknown IE
	got, err := Decode(b)
	if err != nil || got.Type != MsgConnect {
		t.Errorf("unknown IE should be skipped: %v %v", got, err)
	}
}

func TestMsgTypeStrings(t *testing.T) {
	if MsgSetup.String() != "SETUP" || MsgReleaseComplete.String() != "RELEASE COMPLETE" {
		t.Error("message names changed")
	}
	if MsgType(0xee).String() != "MsgType(0xee)" {
		t.Error("unknown type rendering changed")
	}
}

func TestCallSetupAndTeardown(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		n, au, an := pair(t, d)
		call := au.Dial(ipN, 200, 353)
		pump(n, au, an)
		if call.State() != StateActive {
			t.Fatalf("[%v] caller state %v, want active", d, call.State())
		}
		if an.ActiveCalls() != 1 {
			t.Fatalf("[%v] callee active calls = %d", d, an.ActiveCalls())
		}
		call.Hangup()
		pump(n, au, an)
		if call.State() != StateNull {
			t.Errorf("[%v] caller state after hangup = %v", d, call.State())
		}
		if an.ActiveCalls() != 0 {
			t.Errorf("[%v] callee still has active calls", d)
		}
		if au.Stats.CallsCompleted != 1 || an.Stats.CallsCompleted != 1 {
			t.Errorf("[%v] completed = %d/%d, want 1/1", d, au.Stats.CallsCompleted, an.Stats.CallsCompleted)
		}
	}
}

func TestAdmissionRejection(t *testing.T) {
	n, au, an := pair(t, core.Conventional)
	an.Admission = func(m *Message) bool { return m.PeakCells <= 1000 }
	ok := au.Dial(ipN, 200, 400)
	hog := au.Dial(ipN, 200, 40000)
	pump(n, au, an)
	if ok.State() != StateActive {
		t.Errorf("modest call state = %v, want active", ok.State())
	}
	if hog.State() != StateNull {
		t.Errorf("rejected call state = %v, want null", hog.State())
	}
	if an.Stats.Rejected != 1 || au.Stats.Rejected != 1 {
		t.Errorf("rejected counters = %d/%d, want 1/1", an.Stats.Rejected, au.Stats.Rejected)
	}
}

func TestManyConcurrentCalls(t *testing.T) {
	n, au, an := pair(t, core.LDLP)
	var calls []*Call
	for i := 0; i < 50; i++ {
		calls = append(calls, au.Dial(ipN, 200, uint32(i)))
	}
	pump(n, au, an)
	for i, c := range calls {
		if c.State() != StateActive {
			t.Fatalf("call %d state %v", i, c.State())
		}
	}
	if an.ActiveCalls() != 50 {
		t.Fatalf("callee sees %d active calls", an.ActiveCalls())
	}
	for _, c := range calls {
		c.Hangup()
	}
	pump(n, au, an)
	if au.ActiveCalls() != 0 || an.ActiveCalls() != 0 {
		t.Error("calls survived hangup")
	}
	if s := mbuf.PoolStats(); s.InUse != 0 {
		t.Errorf("mbuf leak: %+v", s)
	}
}

func TestDuplicateSetupIgnored(t *testing.T) {
	n, au, an := pair(t, core.Conventional)
	c := au.Dial(ipN, 200, 1)
	pump(n, au, an)
	if c.State() != StateActive {
		t.Fatal("setup failed")
	}
	// Replay the SETUP exactly as a retransmission would: the caller
	// originated the reference, so the call reference flag is set.
	m := Message{CallRef: c.Ref | callRefFlag, Type: MsgSetup, Called: 200, Calling: 100, PeakCells: 1}
	sock := au
	_ = sock
	// Send it raw from the caller's socket.
	auSock := au.sock
	auSock.SendTo(ipN, SignalPort, m.Encode())
	pump(n, au, an)
	if an.ActiveCalls() != 1 {
		t.Errorf("duplicate SETUP created extra call: %d active", an.ActiveCalls())
	}
}

func TestBadMessageCounted(t *testing.T) {
	n, au, an := pair(t, core.Conventional)
	au.sock.SendTo(ipN, SignalPort, []byte{0xff, 0xff})
	pump(n, au, an)
	if an.Stats.BadMessages != 1 {
		t.Errorf("BadMessages = %d, want 1", an.Stats.BadMessages)
	}
}

func TestSimConfigSane(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		cfg := SimConfig(d)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v config invalid: %v", d, err)
		}
		if cfg.Layers != 4 {
			t.Errorf("layers = %d", cfg.Layers)
		}
	}
}

func TestSignallingGoalUnderLDLP(t *testing.T) {
	// The §1 goal: 10000 setup/teardown pairs/second with a *processing*
	// latency of 100 µs per setup request, on a 100 MHz workstation CPU.
	// Evaluate both disciplines on the machine model. The pass criteria:
	// LDLP sustains the offered load losslessly with per-message
	// processing (CPU service) time within the 100 µs goal; conventional
	// fails the same load outright.
	const duration = 0.5
	offered := float64(GoalPairsPerSec * MessagesPerPair)
	runOne := func(d core.Discipline) sim.Result {
		cfg := SimConfig(d)
		cfg.Duration = duration
		return sim.New(cfg).Run(traffic.NewPoisson(offered, MessageBytes, 11))
	}
	ldlp := runOne(core.LDLP)
	conv := runOne(core.Conventional)

	if ldlp.Dropped > 0 {
		t.Errorf("LDLP dropped %d of %d signalling messages at goal load", ldlp.Dropped, ldlp.Offered)
	}
	procLDLP := ldlp.BusyFrac * duration / float64(ldlp.Processed)
	if procLDLP > GoalLatency {
		t.Errorf("LDLP processing latency %.1fµs exceeds the %.0fµs goal", procLDLP*1e6, GoalLatency*1e6)
	}
	// Total (queueing-inclusive) latency stays sub-millisecond.
	if got := ldlp.Latency.Mean(); got > 1e-3 {
		t.Errorf("LDLP mean total latency %.1fµs, want sub-millisecond", got*1e6)
	}
	if conv.Dropped == 0 {
		t.Error("conventional should overflow the buffer at goal load")
	}
	procConv := conv.BusyFrac * duration / float64(conv.Processed)
	if procConv < GoalLatency {
		t.Errorf("conventional processing latency %.1fµs unexpectedly meets the goal", procConv*1e6)
	}
}

func BenchmarkSetupTeardown(b *testing.B) {
	mbuf.ResetPool()
	n := netstack.NewNet()
	hu := n.AddHost("user", ipU, netstack.DefaultOptions(core.LDLP))
	hn := n.AddHost("network", ipN, netstack.DefaultOptions(core.LDLP))
	au, _ := NewAgent(hu, 100)
	an, _ := NewAgent(hn, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := au.Dial(ipN, 200, 1)
		n.RunUntilIdle()
		an.Poll()
		n.RunUntilIdle()
		au.Poll()
		n.RunUntilIdle()
		an.Poll()
		c.Hangup()
		n.RunUntilIdle()
		an.Poll()
		n.RunUntilIdle()
		au.Poll()
	}
}
