package layout

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldlp/internal/memtrace"
	"ldlp/internal/tcpmodel"
)

// sparseTrace builds a trace executing 8 bytes out of every 32-byte line
// of a 1 KB function: 75% dilution, so a dense layout should cut the line
// count by ~4x.
func sparseTrace() *memtrace.Trace {
	tr := memtrace.NewTrace("p")
	for line := 0; line < 32; line++ {
		for off := 0; off < 8; off += 4 {
			tr.Append(memtrace.Record{
				Addr: uint64(line*32 + off), Size: 4,
				Kind: memtrace.IFetch, Layer: "L", Func: "f",
			})
		}
	}
	return tr
}

func TestDenseLayoutRemovesDilution(t *testing.T) {
	b := Measure(sparseTrace(), 32)
	if b.Before.Lines != 32 {
		t.Fatalf("before lines = %d, want 32", b.Before.Lines)
	}
	// 32 lines × 8 hot bytes = 256 bytes = 8 dense lines.
	if b.After.Lines != 8 {
		t.Errorf("after lines = %d, want 8", b.After.Lines)
	}
	if b.Reduction < 0.7 {
		t.Errorf("reduction = %v, want 0.75", b.Reduction)
	}
}

func TestRemapIsInjectiveOnHotBytes(t *testing.T) {
	tr := sparseTrace()
	p := Optimize(tr, 32)
	seen := map[uint64]uint64{}
	for i := range tr.Records {
		r := &tr.Records[i]
		for b := r.Addr; b < r.Addr+uint64(r.Size); b++ {
			na, ok := p.remap(b)
			if !ok {
				t.Fatalf("hot byte %#x not in plan", b)
			}
			if old, dup := seen[na]; dup && old != b {
				t.Fatalf("addresses %#x and %#x collide at %#x", old, b, na)
			}
			seen[na] = b
		}
	}
}

func TestColdBytesKeepDistinctAddresses(t *testing.T) {
	tr := sparseTrace()
	p := Optimize(tr, 32)
	// A fetch the plan never saw (e.g. an error path taken only in the
	// new workload) must not alias a hot address.
	probe := memtrace.NewTrace("p")
	probe.Append(memtrace.Record{Addr: 9000, Size: 4, Kind: memtrace.IFetch, Layer: "L", Func: "g"})
	out := p.Apply(probe)
	if out.Records[0].Addr < (uint64(3) << 32) {
		t.Errorf("cold fetch mapped into the hot region: %#x", out.Records[0].Addr)
	}
}

func TestFunctionsDoNotShareLines(t *testing.T) {
	tr := memtrace.NewTrace("p")
	// Two functions, 4 executed bytes each.
	tr.Append(memtrace.Record{Addr: 0, Size: 4, Kind: memtrace.IFetch, Layer: "L", Func: "f"})
	tr.Append(memtrace.Record{Addr: 1 << 20, Size: 4, Kind: memtrace.IFetch, Layer: "L", Func: "g"})
	p := Optimize(tr, 32)
	a, _ := p.remap(0)
	b, _ := p.remap(1 << 20)
	if a>>5 == b>>5 {
		t.Errorf("functions share line: %#x %#x", a, b)
	}
	if p.Functions != 2 {
		t.Errorf("functions = %d", p.Functions)
	}
}

func TestDataAndExcludedRecordsUntouched(t *testing.T) {
	tr := memtrace.NewTrace("p")
	tr.Append(memtrace.Record{Addr: 100, Size: 4, Kind: memtrace.IFetch, Layer: "L", Func: "f"})
	tr.Append(memtrace.Record{Addr: 0x5000, Size: 8, Kind: memtrace.Load, Layer: "L"})
	tr.Append(memtrace.Record{Addr: 0x6000, Size: 4, Kind: memtrace.IFetch, Layer: "L", Func: "f", Excluded: true})
	p := Optimize(tr, 32)
	out := p.Apply(tr)
	if out.Records[1].Addr != 0x5000 {
		t.Error("data record was remapped")
	}
	if out.Records[2].Addr != 0x6000 {
		t.Error("excluded record was remapped")
	}
}

func TestTCPModelLayoutBenefitMatchesDilution(t *testing.T) {
	// §5.4: "a perfectly dense cache layout would reduce the number of
	// cache lines in the working set by about 25%" — i.e. by the measured
	// dilution. Run the optimizer over the full modeled TCP trace.
	tr := tcpmodel.New(tcpmodel.DefaultConfig()).Trace()
	a := memtrace.Analyze(tr, 32)
	b := Measure(tr, 32)
	dil := a.Dilution()
	if diff := b.Reduction - dil; diff < -0.06 || diff > 0.06 {
		t.Errorf("layout reduction %.3f should track dilution %.3f", b.Reduction, dil)
	}
	if b.Reduction < 0.15 || b.Reduction > 0.35 {
		t.Errorf("reduction = %.3f, paper says ≈0.25", b.Reduction)
	}
	// Dense layout must not change the executed byte count.
	if b.After.TouchedBytes != b.Before.TouchedBytes {
		t.Errorf("touched bytes changed: %d -> %d", b.Before.TouchedBytes, b.After.TouchedBytes)
	}
}

// Property: for any random trace, the optimized layout never increases
// the line-granular working set and never changes touched bytes.
func TestLayoutNeverHurtsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := memtrace.NewTrace("p")
		funcs := []string{"f", "g", "h"}
		for i := 0; i < 200; i++ {
			fi := rng.Intn(len(funcs))
			tr.Append(memtrace.Record{
				// Each function owns a disjoint address region, as real
				// code does (Optimize assumes it).
				Addr:  uint64(fi)<<16 + uint64(rng.Intn(1<<14)),
				Size:  4,
				Kind:  memtrace.IFetch,
				Func:  funcs[fi],
				Layer: "L",
			})
		}
		b := Measure(tr, 32)
		return b.After.Lines <= b.Before.Lines &&
			b.After.TouchedBytes == b.Before.TouchedBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOptimizeTCPTrace(b *testing.B) {
	tr := tcpmodel.New(tcpmodel.DefaultConfig()).Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(tr, 32)
	}
}
