// Package layout implements the §5.4 code-layout optimization the paper
// discusses (citing Mosberger's trace-driven block repositioning and
// DEC's Cord tool): given which bytes of each function a trace actually
// executed, rewrite the layout so executed ("hot") bytes are packed
// densely at the front and never-executed error paths are exiled to a
// cold region. The paper concludes that ≈25% of instruction bytes fetched
// into the cache are never executed, so a perfectly dense layout shrinks
// the code working set by about that much — and instruction prefetching
// makes dense layouts even more valuable.
//
// The optimizer consumes a memtrace.Trace, produces a remapping of code
// addresses, and emits a new trace with the remapped addresses, so the
// standard working-set analysis quantifies the benefit directly.
package layout

import (
	"sort"

	"ldlp/internal/memtrace"
)

// Region is a contiguous hot range of one function's code.
type region struct {
	oldStart uint64
	length   uint64
	newStart uint64
}

// Plan is a code-layout optimization plan: an address remapping for the
// executed portions of the traced code.
type Plan struct {
	regions []region
	// HotBytes is the total executed code placed densely.
	HotBytes int
	// Functions counts distinct functions repositioned.
	Functions int
}

// Optimize builds a dense layout plan from the instruction fetches in a
// trace. Hot regions are packed back to back (line-aligned per function
// so two functions never share a line — matching how a real linker
// aligns function entries). Functions are assumed to occupy disjoint
// address regions, as compiled code does; a byte fetched under two
// different function labels would be duplicated in the plan.
func Optimize(t *memtrace.Trace, lineSize int) *Plan {
	// Collect executed byte ranges per function, preserving
	// first-appearance order for determinism.
	type funcRanges struct {
		name  string
		bytes map[uint64]bool
	}
	byFunc := map[string]*funcRanges{}
	var order []string
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind != memtrace.IFetch || r.Excluded {
			continue
		}
		fr := byFunc[r.Func]
		if fr == nil {
			fr = &funcRanges{name: r.Func, bytes: make(map[uint64]bool)}
			byFunc[r.Func] = fr
			order = append(order, r.Func)
		}
		for b := r.Addr; b < r.Addr+uint64(r.Size); b++ {
			fr.bytes[b] = true
		}
	}

	p := &Plan{}
	cursor := uint64(1 << 32) // fresh address region for the hot segment
	align := uint64(lineSize)
	for _, name := range order {
		fr := byFunc[name]
		addrs := make([]uint64, 0, len(fr.bytes))
		for b := range fr.bytes {
			addrs = append(addrs, b)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

		// Coalesce into contiguous runs, then pack the runs back to back
		// at the cursor (dropping the gaps: those are the never-executed
		// blocks being exiled).
		runStart := addrs[0]
		prev := addrs[0]
		place := func(start, end uint64) {
			length := end - start + 1
			p.regions = append(p.regions, region{oldStart: start, length: length, newStart: cursor})
			cursor += length
			p.HotBytes += int(length)
		}
		for _, a := range addrs[1:] {
			if a == prev+1 {
				prev = a
				continue
			}
			place(runStart, prev)
			runStart, prev = a, a
		}
		place(runStart, prev)
		p.Functions++
		// Line-align the next function's entry.
		if rem := cursor % align; rem != 0 {
			cursor += align - rem
		}
	}
	sort.Slice(p.regions, func(i, j int) bool { return p.regions[i].oldStart < p.regions[j].oldStart })
	return p
}

// remap translates one code address through the plan; ok=false if the
// address was never executed in the planning trace (a cold byte).
func (p *Plan) remap(addr uint64) (uint64, bool) {
	i := sort.Search(len(p.regions), func(i int) bool {
		return p.regions[i].oldStart+p.regions[i].length > addr
	})
	if i == len(p.regions) || addr < p.regions[i].oldStart {
		return 0, false
	}
	r := &p.regions[i]
	return r.newStart + (addr - r.oldStart), true
}

// Apply rewrites a trace's instruction fetches through the plan,
// returning a new trace as it would look running the laid-out binary.
// Fetches of addresses the plan never saw (possible when applying a plan
// built from one trace to a different workload's trace) keep their
// original addresses in a distinct cold region, modelling the exiled
// blocks still being reachable.
func (p *Plan) Apply(t *memtrace.Trace) *memtrace.Trace {
	out := memtrace.NewTrace(t.Phases...)
	out.Records = make([]memtrace.Record, 0, len(t.Records))
	const coldBase = uint64(3) << 32
	for i := range t.Records {
		r := t.Records[i]
		if r.Kind == memtrace.IFetch && !r.Excluded {
			if na, ok := p.remap(r.Addr); ok {
				r.Addr = na
			} else {
				r.Addr = coldBase + r.Addr
			}
		}
		out.Records = append(out.Records, r)
	}
	return out
}

// Benefit runs the full §5.4 experiment: analyze the trace before and
// after layout optimization at the given line size and report the code
// working sets (lines and bytes) plus the dilution removed.
type Benefit struct {
	Before, After memtrace.ClassSet
	// LinesSaved is the reduction in code cache lines.
	LinesSaved int
	// Reduction is LinesSaved / Before.Lines.
	Reduction float64
}

// Measure computes the layout benefit for a trace.
func Measure(t *memtrace.Trace, lineSize int) Benefit {
	before := memtrace.Analyze(t, lineSize)
	plan := Optimize(t, lineSize)
	after := memtrace.Analyze(plan.Apply(t), lineSize)
	b := Benefit{Before: before.Code, After: after.Code}
	b.LinesSaved = before.Code.Lines - after.Code.Lines
	if before.Code.Lines > 0 {
		b.Reduction = float64(b.LinesSaved) / float64(before.Code.Lines)
	}
	return b
}
