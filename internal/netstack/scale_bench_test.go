package netstack

import (
	"math/rand"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/telemetry"
)

// Accept-path scale benchmark: a listener is SYN-flooded into a
// million established connections, then serves steady-state
// small-message traffic — the "millions of users" shape the ROADMAP
// aims the flow table at. The client side is synthetic: handshake
// frames are hand-crafted from spoofed source addresses (one real
// client host could never exceed 64k ephemeral ports), SYN-ACKs leave
// for nonexistent MACs and are freed by the pump, and the completing
// ACKs are built by reading each embryonic PCB's ISS the way the other
// hotpath benchmarks read PCB state. Under -short the flood stops at
// 10k flows so `make bench` exercises all of this machinery on every
// push; `make bench-scale` runs the full million.

const (
	scaleFlowsFull  = 1_000_000
	scaleFlowsShort = 10_000
	scalePattern    = 1 << 15 // steady-state access-pattern length
	scaleListenPort = 80
)

// scaleState caches the established network across the benchmark
// framework's b.N re-runs: rebuilding a million connections per timing
// attempt would swamp the measurement.
type scaleState struct {
	net     *Net
	hb      *Host
	flows   int
	pattern [][]byte // pre-built bare-ACK wire frames, Zipf access order
}

var scaleCache *scaleState

// scaleTuple spreads flow c across spoofed (source IP, source port)
// pairs, bijectively so every flow is a distinct connection.
func scaleTuple(c int) (layers.IPAddr, uint16) {
	ipIdx := c / 50_000
	port := uint16(c%50_000) + 10_000
	return layers.IPAddr{172, 16, byte(ipIdx >> 8), byte(ipIdx)}, port
}

// buildRawSegment hand-builds the wire bytes of one TCP segment.
func buildRawSegment(src layers.IPAddr, sport uint16, dst layers.IPAddr, dport uint16, seq, ack uint32, flags byte) []byte {
	buf := make([]byte, layers.EthernetLen+layers.IPv4MinLen+layers.TCPMinLen)
	eth := layers.Ethernet{Dst: MACFor(dst), Src: MACFor(src), EtherType: layers.EtherTypeIPv4}
	eth.Encode(buf)
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + layers.TCPMinLen,
		TTL:      64, Protocol: layers.ProtoTCP, Src: src, Dst: dst,
	}
	ip.Encode(buf[layers.EthernetLen:])
	th := layers.TCP{
		SrcPort: sport, DstPort: dport,
		Seq: seq, Ack: ack, Flags: flags, Window: tcpWindow,
	}
	th.Encode(buf[layers.EthernetLen+layers.IPv4MinLen:], nil, src, dst)
	return buf
}

// setupScale floods the listener to `flows` established connections
// and pre-builds the steady-state access pattern.
func setupScale(b *testing.B, flows int) *scaleState {
	if scaleCache != nil && scaleCache.flows == flows {
		return scaleCache
	}
	scaleCache = nil
	mbuf.ResetPool()
	n := NewNet()
	hb := n.AddHost("scale-srv", layers.IPAddr{10, 9, 0, 1}, DefaultOptions(core.Conventional))
	l, err := hb.ListenTCP(scaleListenPort)
	if err != nil {
		b.Fatal(err)
	}

	// SYN-flood in backlog-sized waves: SYNs, then the handshake-
	// completing ACKs (Ack = each embryonic PCB's ISS+1), then Accept
	// drains the wave before the next one can overflow the backlog.
	established := 0
	for base := 0; base < flows; base += tcpBacklog {
		waveEnd := min(base+tcpBacklog, flows)
		for c := base; c < waveEnd; c++ {
			src, sport := scaleTuple(c)
			clientISS := uint32(0x10000 + c)
			syn := buildRawSegment(src, sport, hb.ip, scaleListenPort, clientISS, 0, layers.TCPSyn)
			hb.deliver(mbuf.FromBytes(syn))
		}
		for c := base; c < waveEnd; c++ {
			src, sport := scaleTuple(c)
			pcb := hb.findPCB(fourTuple{raddr: src, rport: sport, lport: scaleListenPort})
			if pcb == nil {
				b.Fatalf("flow %d: SYN did not create a PCB", c)
			}
			clientISS := uint32(0x10000 + c)
			ack := buildRawSegment(src, sport, hb.ip, scaleListenPort, clientISS+1, pcb.iss+1, layers.TCPAck)
			hb.deliver(mbuf.FromBytes(ack))
		}
		for c := base; c < waveEnd; c++ {
			s := l.Accept()
			if s == nil {
				b.Fatalf("wave at %d: connection %d not accepted", base, c)
			}
			if !s.Established() {
				b.Fatalf("accepted connection %d not established", c)
			}
			established++
		}
		// Free the SYN-ACKs addressed to the spoofed (nonexistent)
		// clients before the wire queue grows without bound.
		n.RunUntilIdle()
	}
	if established != flows || hb.numPCBs() != flows {
		b.Fatalf("established %d / PCBs %d, want %d", established, hb.numPCBs(), flows)
	}
	if dropped := l.DroppedCount(); dropped != 0 {
		b.Fatalf("listener dropped %d SYNs during the flood", dropped)
	}
	if st := mbuf.PoolStats(); st.InUse != 0 {
		b.Fatalf("mbuf leak after establishing %d flows: %+v", flows, st)
	}

	// Steady-state pattern: Zipf-skewed flow popularity (DEC-TR-592
	// locality — a handful of hot flows absorb most traffic) over the
	// full population, as pre-built bare-ACK frames.
	r := rand.New(rand.NewSource(42))
	z := rand.NewZipf(r, 1.2, 1, uint64(flows-1))
	acks := map[int][]byte{}
	pattern := make([][]byte, scalePattern)
	for i := range pattern {
		c := int(z.Uint64())
		frame, ok := acks[c]
		if !ok {
			src, sport := scaleTuple(c)
			pcb := hb.findPCB(fourTuple{raddr: src, rport: sport, lport: scaleListenPort})
			frame = buildBareAck(pcb, src, hb.ip)
			acks[c] = frame
		}
		pattern[i] = frame
	}
	scaleCache = &scaleState{net: n, hb: hb, flows: flows, pattern: pattern}
	return scaleCache
}

// mergedProbeDepth merges every shard's flow-table probe-depth
// histogram (white-box: the per-shard stats are single-writer, read
// here at quiescence).
func mergedProbeDepth(h *Host) telemetry.HistSnapshot {
	var s telemetry.HistSnapshot
	for _, ts := range h.tshards {
		s.Merge(ts.pcbs.DepthHist())
	}
	return s
}

// cacheTallies sums the per-shard flow-cache hit/miss counters.
func cacheTallies(h *Host) (hits, misses int64) {
	for _, ts := range h.tshards {
		cs := ts.pcbCache.Stats()
		hits += cs.Hits
		misses += cs.Misses
	}
	return
}

// BenchmarkAcceptScale measures the steady-state small-message receive
// path with a SYN-flood-established connection population (1M flows;
// 10k under -short): every delivered segment must take the TCP fast
// path at 0 allocs/op — the flow table's no-per-lookup-allocation
// promise at scale — and the reported flowcache-hit-rate and
// p99-probe-depth land in BENCH_2.json so a scale regression (probe
// chains growing, cache going cold) fails review like an alloc
// regression does.
func BenchmarkAcceptScale(b *testing.B) {
	flows := scaleFlowsFull
	if testing.Short() {
		flows = scaleFlowsShort
	}
	sc := setupScale(b, flows)
	hb := sc.hb

	// Warm the delivery path, then snapshot: metrics cover warmup +
	// timed ops (both pure steady-state), so they are stable even at
	// -benchtime=1x where b.N == 1.
	depthBase := mergedProbeDepth(hb)
	hitsBase, missesBase := cacheTallies(hb)
	fastBase := hb.Counters.TCPFastPath
	warmed := int64(len(sc.pattern))
	for _, frame := range sc.pattern {
		hb.deliver(mbuf.FromBytes(frame))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.deliver(mbuf.FromBytes(sc.pattern[i%len(sc.pattern)]))
	}
	b.StopTimer()

	if got, want := hb.Counters.TCPFastPath-fastBase, warmed+int64(b.N); got != want {
		b.Fatalf("fast path took %d of %d steady-state segments", got, want)
	}
	if st := mbuf.PoolStats(); st.InUse != 0 {
		b.Fatalf("mbuf leak in steady state: %+v", st)
	}

	hits, misses := cacheTallies(hb)
	hits -= hitsBase
	misses -= missesBase
	if hits+misses <= 0 {
		b.Fatal("flow cache saw no lookups in steady state")
	}
	b.ReportMetric(float64(hits)/float64(hits+misses), "flowcache-hit-rate")

	depth := mergedProbeDepth(hb)
	for i := range depth.Buckets {
		depth.Buckets[i] -= depthBase.Buckets[i]
	}
	depth.Count -= depthBase.Count
	depth.Sum -= depthBase.Sum
	p99 := depth.Quantile(0.99)
	b.ReportMetric(p99, "p99-probe-depth")
	b.ReportMetric(float64(sc.flows), "flows")
	// The displacement bound promises lookups stay within a handful of
	// groups no matter the population; a p99 beyond it means probing
	// degraded.
	if p99 > 16 {
		b.Fatalf("p99 probe depth %.1f: lookup locality degraded", p99)
	}
}
