package netstack

import (
	"bytes"
	"math/rand"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

func TestPingEcho(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		n, a, b := twoHosts(t, d)
		a.Ping(ipB, 7, 1, []byte("echo me"))
		n.RunUntilIdle()
		replies := a.PingReplies()
		if len(replies) != 1 {
			t.Fatalf("[%v] replies = %d, want 1", d, len(replies))
		}
		r := replies[0]
		if r.From != ipB || r.ID != 7 || r.Seq != 1 || string(r.Payload) != "echo me" {
			t.Errorf("[%v] reply = %+v", d, r)
		}
		if b.Counters.EchoRequests != 1 || a.Counters.EchoReplies != 1 {
			t.Errorf("[%v] counters: req %d rep %d", d, b.Counters.EchoRequests, a.Counters.EchoReplies)
		}
		checkNoLeaks(t)
	}
}

func TestPingSweepSequence(t *testing.T) {
	n, a, _ := twoHosts(t, core.Conventional)
	for seq := uint16(0); seq < 5; seq++ {
		a.Ping(ipB, 42, seq, nil)
	}
	n.RunUntilIdle()
	replies := a.PingReplies()
	if len(replies) != 5 {
		t.Fatalf("replies = %d, want 5", len(replies))
	}
	for i, r := range replies {
		if r.Seq != uint16(i) {
			t.Errorf("reply %d has seq %d", i, r.Seq)
		}
	}
	// Drained: second call is empty.
	if len(a.PingReplies()) != 0 {
		t.Error("PingReplies should drain")
	}
}

func TestCorruptICMPCounted(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	// Build a valid echo request, then corrupt the ICMP checksum only
	// (the IP checksum must stay valid, so re-encode IP after).
	a.Ping(ipB, 1, 1, []byte("x"))
	// Intercept: corrupt the ICMP payload in flight.
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipB {
			data[len(data)-1] ^= 0xff
		}
		return false
	}
	n.RunUntilIdle()
	if b.Counters.BadICMP != 1 {
		t.Errorf("BadICMP = %d, want 1", b.Counters.BadICMP)
	}
	if len(a.PingReplies()) != 0 {
		t.Error("corrupted request should not be answered")
	}
	checkNoLeaks(t)
}

func TestUDPFragmentationRoundTrip(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		n, a, b := twoHosts(t, d)
		sa, _ := a.UDPSocket(1)
		sb, _ := b.UDPSocket(2)
		payload := make([]byte, 4000) // > 2 fragments at MTU 1500
		rand.New(rand.NewSource(3)).Read(payload)
		sa.SendTo(ipB, 2, payload)
		n.RunUntilIdle()
		dg, ok := sb.Recv()
		if !ok {
			t.Fatalf("[%v] fragmented datagram never arrived", d)
		}
		if !bytes.Equal(dg.Data, payload) {
			t.Fatalf("[%v] reassembly corrupted the payload", d)
		}
		if a.Counters.FragmentsSent < 3 {
			t.Errorf("[%v] fragments sent = %d, want >= 3", d, a.Counters.FragmentsSent)
		}
		if b.Counters.Reassembled != 1 {
			t.Errorf("[%v] reassembled = %d, want 1", d, b.Counters.Reassembled)
		}
		checkNoLeaks(t)
	}
}

func TestFragmentsArriveOutOfOrder(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	a := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	b := n.AddHost("b", ipB, DefaultOptions(core.Conventional))
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)

	payload := make([]byte, 3000)
	rand.New(rand.NewSource(4)).Read(payload)
	sa.SendTo(ipB, 2, payload)
	// Reverse the wire queue before delivery: last fragment first.
	for i, j := 0, len(n.wire)-1; i < j; i, j = i+1, j-1 {
		n.wire[i], n.wire[j] = n.wire[j], n.wire[i]
	}
	n.RunUntilIdle()
	dg, ok := sb.Recv()
	if !ok || !bytes.Equal(dg.Data, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
	checkNoLeaks(t)
}

func TestReassemblyTimeoutDropsPartials(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)

	// Drop the final fragment (MF=0) so the datagram never completes.
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst != ipB || len(data) < layers.EthernetLen+layers.IPv4MinLen {
			return false
		}
		var ip layers.IPv4
		if _, err := ip.Decode(data[layers.EthernetLen:]); err != nil {
			return false
		}
		return ip.IsFragment() && !ip.MoreFragments()
	}
	sa.SendTo(ipB, 2, make([]byte, 3000))
	n.RunUntilIdle()
	if _, ok := sb.Recv(); ok {
		t.Fatal("incomplete datagram delivered")
	}
	if b.numFrags() != 1 {
		t.Fatalf("partial datagrams held = %d, want 1", b.numFrags())
	}
	n.Tick(31) // beyond the 30s reassembly timeout
	if b.Counters.ReassemblyTimeouts != 1 {
		t.Errorf("timeouts = %d, want 1", b.Counters.ReassemblyTimeouts)
	}
	if b.numFrags() != 0 {
		t.Error("expired partial datagram still held")
	}
	n.Loss = nil
	n.RunUntilIdle()
	checkNoLeaks(t)
}

func TestSmallMTUHostFragments(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	opts := DefaultOptions(core.Conventional)
	opts.MTU = 576 // classic minimum-ish MTU
	a := n.AddHost("a", ipA, opts)
	b := n.AddHost("b", ipB, DefaultOptions(core.Conventional))
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)
	payload := make([]byte, 1200)
	sa.SendTo(ipB, 2, payload)
	n.RunUntilIdle()
	if a.Counters.FragmentsSent < 3 {
		t.Errorf("fragments sent = %d at MTU 576, want >= 3", a.Counters.FragmentsSent)
	}
	if dg, ok := sb.Recv(); !ok || len(dg.Data) != 1200 {
		t.Fatal("reassembly at small MTU failed")
	}
	checkNoLeaks(t)
}

func TestTransmitSideBatching(t *testing.T) {
	// Under LDLP, the responses generated while processing a receive
	// batch must go to the wire as one flush (the lestart-style transmit
	// batch the paper's §1 discussion of transmit-side processing
	// anticipates).
	n, a, b := twoHosts(t, core.LDLP)
	sa, _ := a.UDPSocket(1)
	for i := 0; i < 10; i++ {
		a.Ping(ipB, 1, uint16(i), nil)
	}
	_ = sa
	n.RunUntilIdle()
	if b.Counters.TxMaxBatch < 5 {
		t.Errorf("largest transmit batch = %d, want the echo replies batched", b.Counters.TxMaxBatch)
	}
	if got := len(a.PingReplies()); got != 10 {
		t.Errorf("replies = %d, want 10", got)
	}
	// Conventional hosts never batch transmit.
	n2, a2, b2 := twoHosts(t, core.Conventional)
	a2.Ping(b2.IP(), 1, 1, nil)
	n2.RunUntilIdle()
	if b2.Counters.TxBatches != 0 {
		t.Errorf("conventional host recorded %d tx batches", b2.Counters.TxBatches)
	}
}

func TestRSTTearsDownConnection(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()
	if srv == nil {
		t.Fatal("no connection")
	}
	// Forge a RST from the client's tuple.
	pcb := cli.pcb
	th := layers.TCP{
		SrcPort: pcb.tuple.lport, DstPort: 80,
		Seq: pcb.sndNxt, Ack: pcb.rcvNxt,
		Flags: layers.TCPRst | layers.TCPAck,
	}
	seg := make([]byte, layers.TCPMinLen)
	th.Encode(seg, nil, ipA, ipB)
	m := mbuf.FromBytes(seg[layers.TCPMinLen:])
	m.FreeChain()
	sendRawTCP(n, a, b, seg)
	n.RunUntilIdle()
	if srv.State() != "closed" {
		t.Errorf("server state after RST = %s, want closed", srv.State())
	}
	checkNoLeaks(t)
}

// sendRawTCP injects a hand-built TCP segment from a to b.
func sendRawTCP(n *Net, a, b *Host, seg []byte) {
	buf := make([]byte, layers.EthernetLen+layers.IPv4MinLen+len(seg))
	eth := layers.Ethernet{Dst: b.mac, Src: a.mac, EtherType: layers.EtherTypeIPv4}
	eth.Encode(buf)
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + len(seg), TTL: 64,
		Protocol: layers.ProtoTCP, Src: a.ip, Dst: b.ip,
	}
	ip.Encode(buf[layers.EthernetLen:])
	copy(buf[layers.EthernetLen+layers.IPv4MinLen:], seg)
	n.send(frame{dst: b.mac, m: mbuf.FromBytes(buf)})
}

func TestHostNameAccessors(t *testing.T) {
	_, a, _ := twoHosts(t, core.Conventional)
	if a.Name() != "a" || a.IP() != ipA {
		t.Errorf("accessors: %q %v", a.Name(), a.IP())
	}
}

func BenchmarkPingRoundTrip(b *testing.B) {
	mbuf.ResetPool()
	n := NewNet()
	ha := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	n.AddHost("b", ipB, DefaultOptions(core.Conventional))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ha.Ping(ipB, 1, uint16(i), nil)
		n.RunUntilIdle()
		ha.PingReplies()
	}
}
