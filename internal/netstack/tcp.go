package netstack

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ldlp/internal/core"
	"ldlp/internal/flowtable"
	"ldlp/internal/layers"
	"ldlp/internal/telemetry"
)

// TCP-lite: enough of TCP for the examples and benchmarks to move real
// data — three-way handshake, cumulative ACKs, flow-control window, the
// 4.4BSD header-prediction fast path with a single-entry PCB cache, an
// ACK for every second data segment (the behaviour §2's trace captures),
// FIN teardown and timer-driven retransmission. No congestion control,
// options, or urgent data.

const (
	tcpMSS        = 1460
	tcpWindow     = 65535
	tcpRTO        = 0.2 // seconds
	tcpMaxBackoff = 3.2
	// tcpMaxRetries bounds retransmissions of one segment: after this
	// many unanswered tries the connection gives up with ErrTimeout
	// instead of pinning its PCB forever behind a dead peer or a
	// partition (with the capped backoff that is ~20 s of trying).
	tcpMaxRetries = 8
	// tcpPersist is the zero-window probe interval: if the peer closes
	// its window and the reopening window update is lost, the sender
	// probes rather than deadlocking.
	tcpPersist = 0.5
	// tcp2MSL holds a closed connection in TIME-WAIT so late segments
	// (and a retransmitted FIN) are handled rather than treated as new.
	tcp2MSL = 1.0
	// tcpBacklog bounds un-accepted connections per listener.
	tcpBacklog = 16
)

type tcpState int

const (
	stClosed tcpState = iota
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait1
	stFinWait2
	stCloseWait
	stLastAck
	stTimeWait
)

var tcpStateNames = map[tcpState]string{
	stClosed: "closed", stSynSent: "syn-sent", stSynRcvd: "syn-rcvd",
	stEstablished: "established", stFinWait1: "fin-wait-1",
	stFinWait2: "fin-wait-2", stCloseWait: "close-wait",
	stLastAck: "last-ack", stTimeWait: "time-wait",
}

func (s tcpState) String() string { return tcpStateNames[s] }

type fourTuple struct {
	raddr layers.IPAddr
	rport uint16
	lport uint16
}

// pack serializes the tuple into one word (4 address bytes + 2 ports =
// exactly 8 bytes), so the flow-table hash is a pack plus one mix —
// no byte loop on the lookup fast path.
func (t fourTuple) pack() uint64 {
	return uint64(t.raddr[0])<<56 | uint64(t.raddr[1])<<48 |
		uint64(t.raddr[2])<<40 | uint64(t.raddr[3])<<32 |
		uint64(t.rport)<<16 | uint64(t.lport)
}

// pcbHasher builds the per-shard PCB flow-table hash: seeded so
// distinct shards (and hosts) probe independently.
func pcbHasher(seed uint64) func(fourTuple) uint64 {
	return func(t fourTuple) uint64 { return flowtable.Mix64(t.pack() ^ seed) }
}

type unackedSeg struct {
	seq     uint32
	data    []byte
	syn     bool
	fin     bool
	sentAt  float64
	backoff float64
	tries   int // timer retransmissions so far
}

type tcpPCB struct {
	host *Host
	// owner is the transport shard this connection lives on (the shard
	// the 4-tuple flow hash routes its segments to). Every touch of the
	// PCB happens on the owner's worker, or on the pump at quiescence.
	owner *transportShard
	tuple fourTuple
	state tcpState
	// estab mirrors "state reached ESTABLISHED" with atomic semantics:
	// the one PCB field the cross-shard accept hand-off reads while the
	// owning worker may be writing state. Set once, never cleared.
	estab atomic.Bool

	iss, irs       uint32
	sndUna, sndNxt uint32
	rcvNxt         uint32
	sndWnd         int

	sndBuf  []byte
	rcvBuf  []byte
	unacked []unackedSeg

	delAckPending int
	finQueued     bool
	sock          *TCPSock
	// err records why the connection died (ErrTimeout after
	// retransmission gives up); surfaced through TCPSock.Err and Send.
	err error

	// lastProbe is the last zero-window persist probe time.
	lastProbe float64
	// timeWaitAt, when nonzero, is when TIME-WAIT expires and the PCB is
	// reaped.
	timeWaitAt float64
}

// TCPSock is a stream socket handle.
type TCPSock struct {
	pcb *tcpPCB
}

// TCPListener accepts inbound connections on a port.
type TCPListener struct {
	host *Host
	port uint16
	// mu guards backlog: SYNs from different remotes arrive on different
	// shard workers, and Accept may run concurrently with all of them —
	// the accept hand-off moves only the *TCPSock handle across shards,
	// never the PCB itself, which stays on its owning shard.
	mu      sync.Mutex
	backlog []*TCPSock
	// Dropped counts SYNs discarded because the backlog was full.
	// Updated with atomic adds, like the host Counters; read while the
	// network is quiescent, or via DroppedCount.
	Dropped int64
}

// DroppedCount reads the backlog-drop counter with atomic semantics,
// safe while shard workers are running.
func (l *TCPListener) DroppedCount() int64 { return atomic.LoadInt64(&l.Dropped) }

var (
	// ErrPortInUse is returned when binding an occupied port.
	ErrPortInUse = errors.New("netstack: port in use")
	// ErrClosed is returned for operations on closed sockets.
	ErrClosed = errors.New("netstack: socket closed")
	// ErrTimeout is returned after retransmission gives up on an
	// unresponsive peer and the connection is torn down.
	ErrTimeout = errors.New("netstack: connection timed out")
)

// issCounter feeds initial send sequence numbers; atomic because two
// sharded hosts' workers can perform passive opens concurrently.
var issCounter atomic.Uint32

func nextISS() uint32 { return 1000 + issCounter.Add(64000) }

// ListenTCP opens a passive socket on port.
func (h *Host) ListenTCP(port uint16) (*TCPListener, error) {
	if _, ok := h.listeners[port]; ok {
		return nil, fmt.Errorf("%w: tcp %d", ErrPortInUse, port)
	}
	l := &TCPListener{host: h, port: port}
	h.listeners[port] = l
	return l, nil
}

// Accept returns a pending inbound connection, or nil if none has
// completed the handshake yet. This is the declared cross-shard
// hand-off: it is safe to call while shard workers run — the backlog is
// locked and readiness is read through the PCB's atomic estab flag, so
// only the socket handle crosses goroutines here. The PCB stays owned
// by its shard; use the returned socket's other methods only while the
// network is quiescent.
func (l *TCPListener) Accept() *TCPSock {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, s := range l.backlog {
		if s.pcb.estab.Load() {
			l.backlog = append(l.backlog[:i], l.backlog[i+1:]...)
			return s
		}
	}
	return nil
}

// Close stops listening (existing connections are unaffected).
func (l *TCPListener) Close() { delete(l.host.listeners, l.port) }

var ephemeral uint16 = 32768

// DialTCP initiates a connection; the handshake completes as the network
// is pumped (check Established or poll Accept on the peer). Pump-side
// hand-off point: the new PCB is planted directly on the shard the
// connection's inbound segments will hash to, so from the first SYN-ACK
// onward only that shard's worker touches it. Pump-side: call between
// pumps, never concurrently with them.
//
//ldlp:quiescent
func (h *Host) DialTCP(dst layers.IPAddr, port uint16) *TCPSock {
	ephemeral++
	pcb := &tcpPCB{
		host:  h,
		tuple: fourTuple{raddr: dst, rport: port, lport: ephemeral},
		state: stSynSent,
		iss:   nextISS(),
	}
	pcb.sndUna, pcb.sndNxt = pcb.iss, pcb.iss
	pcb.sndWnd = tcpWindow
	pcb.sock = &TCPSock{pcb: pcb}
	pcb.owner = h.tupleShard(pcb.tuple)
	pcb.owner.pcbs.Insert(pcb.tuple, pcb)
	pcb.sendSegment(layers.TCPSyn, nil, true)
	return pcb.sock
}

// Established reports whether the handshake has completed.
//
//ldlp:quiescent
func (s *TCPSock) Established() bool { return s.pcb.state == stEstablished }

// State names the connection state.
//
//ldlp:quiescent
func (s *TCPSock) State() string { return s.pcb.state.String() }

// Err reports why the connection died (ErrTimeout after retransmission
// exhausted its retries), or nil while it is healthy.
//
//ldlp:quiescent
func (s *TCPSock) Err() error { return s.pcb.err }

// Send queues data for transmission (flow-controlled by the peer's
// window as the network is pumped). Sending remains legal in CLOSE-WAIT:
// the peer half-closed, our direction is still open.
//
//ldlp:quiescent
func (s *TCPSock) Send(data []byte) error {
	switch s.pcb.state {
	case stEstablished, stSynSent, stSynRcvd, stCloseWait:
	default:
		if s.pcb.err != nil {
			return s.pcb.err
		}
		return ErrClosed
	}
	s.pcb.sndBuf = append(s.pcb.sndBuf, data...)
	s.pcb.trySend()
	return nil
}

// Recv copies received data into buf, returning the number of bytes (0
// when nothing is buffered). Draining a previously-full buffer sends a
// window update so a stalled peer resumes (the sb-drop wakeup path).
//
//ldlp:quiescent
func (s *TCPSock) Recv(buf []byte) int {
	pcb := s.pcb
	before := len(pcb.rcvBuf)
	n := copy(buf, pcb.rcvBuf)
	pcb.rcvBuf = pcb.rcvBuf[n:]
	if n > 0 && before >= tcpWindow/2 && pcb.state == stEstablished {
		pcb.sendAck() // window update
	}
	return n
}

// Buffered reports bytes waiting in the receive buffer.
//
//ldlp:quiescent
func (s *TCPSock) Buffered() int { return len(s.pcb.rcvBuf) }

// Close sends FIN after queued data drains.
//
//ldlp:quiescent
func (s *TCPSock) Close() {
	pcb := s.pcb
	switch pcb.state {
	case stEstablished:
		pcb.state = stFinWait1
	case stCloseWait:
		pcb.state = stLastAck
	case stSynSent, stSynRcvd:
		pcb.teardown()
		return
	default:
		return
	}
	pcb.finQueued = true
	pcb.trySend()
}

// timeout kills a connection whose retransmissions went unanswered:
// mark the socket failed, release the send-side queues (nothing will
// ever ack them) and tear the PCB down so it stops consuming timer
// cycles and map space.
func (pcb *tcpPCB) timeout() {
	pcb.err = ErrTimeout
	pcb.unacked = nil
	pcb.sndBuf = nil
	pcb.finQueued = false
	inc(&pcb.host.Counters.TimeoutDrops)
	pcb.teardown()
}

func (pcb *tcpPCB) teardown() {
	pcb.owner.pcbCache.Invalidate(pcb.tuple)
	pcb.owner.pcbs.Delete(pcb.tuple)
	pcb.state = stClosed
}

// lookupPCB finds the PCB for a tuple: first the shard's N-entry
// recently-active flow cache (the generalization of the single-entry
// PCB cache §2's trace mentions — per shard, so the cached lines stay
// core-local and two flows on different shards cannot evict each
// other; DEC-TR-592's destination locality is why a handful of entries
// absorb most traffic), then the shard's open-addressed flow table.
//
//ldlp:hotpath
func (ts *transportShard) lookupPCB(t fourTuple) *tcpPCB {
	h := ts.h
	if pcb, ok := ts.pcbCache.Lookup(t); ok {
		inc(&h.Counters.PCBCacheHits)
		return pcb
	}
	inc(&h.Counters.PCBCacheMisses)
	pcb, ok := ts.pcbs.Lookup(t)
	if !ok {
		return nil
	}
	ts.pcbCache.Insert(t, pcb)
	return pcb
}

// tcpInput is the receive-path TCP layer. No lock protects connection
// state: RSS hashes a connection's segments to one shard, and the PCB
// lives on that shard, so the worker running here is the only goroutine
// that ever touches it.
//
//ldlp:hotpath
func (rx *rxPath) tcpInput(p *Packet, emit core.Emit[*Packet]) {
	h := rx.h
	seg := p.M.Contiguous()
	n, err := p.TCP.Decode(seg, p.IP.Src, p.IP.Dst)
	if err != nil {
		inc(&h.Counters.BadTCP)
		rx.reject(p, rx.tcpin, telemetry.DropBadTCP)
		return
	}
	payload := seg[n:]
	th := &p.TCP
	tuple := fourTuple{raddr: p.IP.Src, rport: th.SrcPort, lport: th.DstPort}

	rx.ts.tally.tcpSegs++
	pcb := rx.ts.lookupPCB(tuple)

	if pcb == nil {
		rx.tcpPassiveOpen(tuple, th)
		rx.drop(p)
		return
	}

	// Header prediction: the 4.4BSD fast path. Established, plain
	// ACK(+PSH), in-order, window unchanged handling is folded in.
	if pcb.state == stEstablished &&
		th.Flags&^(layers.TCPAck|layers.TCPPsh) == 0 &&
		th.Flags&layers.TCPAck != 0 &&
		th.Seq == pcb.rcvNxt {
		inc(&h.Counters.TCPFastPath)
		pcb.processAck(th)
		if len(payload) > 0 {
			pcb.acceptData(payload)
			inc(&h.Counters.DataSegsIn)
			emit(rx.sock, p)
			return
		}
		rx.drop(p)
		return
	}

	inc(&h.Counters.TCPSlowPath)
	rx.tcpSlowPath(pcb, th, payload, p, emit)
}

// tcpPassiveOpen handles a segment with no matching PCB: a SYN to a
// listener creates the connection, anything else bumps NoSocket.
// Connection setup runs once per connection, not per segment, so its
// allocations live here rather than in the hot-tagged tcpInput. The new
// PCB lands in rx's own shard map — the flow hash that routed this SYN
// here routes the rest of the connection here too. Only the backlog
// append crosses shards (other remotes' SYNs hash elsewhere), so just
// that step takes the listener lock. The caller recycles p. A declared
// cold step off the hot tcpInput: once per connection, never per
// segment.
//
//ldlp:coldpath
func (rx *rxPath) tcpPassiveOpen(tuple fourTuple, th *layers.TCP) {
	h := rx.h
	if th.Flags&layers.TCPSyn == 0 || th.Flags&layers.TCPAck != 0 {
		inc(&h.Counters.NoSocket)
		rx.tel.Event(telemetry.EvDrop, rx.tcpin.Index(), int64(telemetry.DropNoSocket))
		return
	}
	l, ok := h.listeners[th.DstPort]
	if !ok {
		inc(&h.Counters.NoSocket)
		rx.tel.Event(telemetry.EvDrop, rx.tcpin.Index(), int64(telemetry.DropNoSocket))
		return
	}
	pcb := &tcpPCB{
		host: h, owner: rx.ts, tuple: tuple, state: stSynRcvd,
		iss: nextISS(), irs: th.Seq,
		rcvNxt: th.Seq + 1, sndWnd: int(th.Window),
	}
	pcb.sndUna, pcb.sndNxt = pcb.iss, pcb.iss
	pcb.sock = &TCPSock{pcb: pcb}
	l.mu.Lock()
	if len(l.backlog) >= tcpBacklog {
		l.mu.Unlock()
		atomic.AddInt64(&l.Dropped, 1)
		rx.tel.Event(telemetry.EvDrop, rx.tcpin.Index(), int64(telemetry.DropListenOverflow))
		return
	}
	l.backlog = append(l.backlog, pcb.sock)
	l.mu.Unlock()
	rx.ts.pcbs.Insert(tuple, pcb)
	pcb.sendSegment(layers.TCPSyn|layers.TCPAck, nil, true)
}

// tcpSlowPath handles everything header prediction does not. Like
// tcpInput it runs lock-free on the PCB's owning shard.
func (rx *rxPath) tcpSlowPath(pcb *tcpPCB, th *layers.TCP, payload []byte, p *Packet, emit core.Emit[*Packet]) {
	h := rx.h
	if th.Flags&layers.TCPRst != 0 {
		pcb.teardown()
		rx.drop(p)
		return
	}

	switch pcb.state {
	case stSynSent:
		if th.Flags&(layers.TCPSyn|layers.TCPAck) == layers.TCPSyn|layers.TCPAck &&
			th.Ack == pcb.iss+1 {
			pcb.irs = th.Seq
			pcb.rcvNxt = th.Seq + 1
			pcb.sndUna = th.Ack
			pcb.sndNxt = th.Ack
			pcb.sndWnd = int(th.Window)
			pcb.state = stEstablished
			pcb.estab.Store(true)
			pcb.dropAcked(th.Ack)
			pcb.sendAck()
			pcb.trySend()
		}
		rx.drop(p)
		return
	case stSynRcvd:
		if th.Flags&layers.TCPAck != 0 && th.Ack == pcb.iss+1 {
			pcb.sndUna = th.Ack
			pcb.sndNxt = th.Ack
			pcb.sndWnd = int(th.Window)
			pcb.state = stEstablished
			pcb.estab.Store(true)
			pcb.dropAcked(th.Ack)
		}
		// Fall through: the ACK completing the handshake may carry data.
	}

	if th.Flags&layers.TCPAck != 0 {
		pcb.processAck(th)
	}

	if th.Seq != pcb.rcvNxt {
		// Out of order (or duplicate): this lite stack does not reassemble;
		// re-ACK what we expect so the peer retransmits. Only segments
		// that carry something (data, SYN, FIN) get the re-ACK: a pure
		// ACK's Seq rides at the sender's sndNxt, so when both directions
		// have data in flight each side's dup-ACK looks out-of-order to
		// the other and re-ACKing it back livelocks the link in an ACK
		// war. Its cumulative ACK and window were already processed above;
		// dropping it silently loses nothing.
		if len(payload) > 0 || th.Flags&(layers.TCPSyn|layers.TCPFin) != 0 {
			pcb.sendAck()
		}
		rx.drop(p)
		return
	}

	delivered := false
	if len(payload) > 0 {
		switch pcb.state {
		case stEstablished, stFinWait1, stFinWait2:
			pcb.acceptData(payload)
			inc(&h.Counters.DataSegsIn)
			delivered = true
		}
	}

	if th.Flags&layers.TCPFin != 0 {
		pcb.rcvNxt++
		switch pcb.state {
		case stEstablished:
			pcb.state = stCloseWait
		case stFinWait1, stFinWait2:
			pcb.state = stTimeWait
			pcb.timeWaitAt = h.net.now + tcp2MSL
		case stTimeWait:
			// Retransmitted FIN: restart 2MSL, re-ACK below.
			pcb.rcvNxt-- // do not double-count the FIN
			pcb.timeWaitAt = h.net.now + tcp2MSL
		}
		pcb.sendAck()
	}

	if pcb.state == stLastAck && pcb.sndUna == pcb.sndNxt {
		pcb.teardown()
	}
	if pcb.state == stFinWait1 && pcb.sndUna == pcb.sndNxt {
		pcb.state = stFinWait2
	}

	if delivered {
		emit(rx.sock, p)
	} else {
		rx.drop(p)
	}
}

// acceptData appends in-order payload and runs the delayed-ACK rule: an
// ACK for every second data segment.
func (pcb *tcpPCB) acceptData(payload []byte) {
	pcb.rcvNxt += uint32(len(payload))
	//lint:ignore hotpathalloc rcvBuf is bounded by the receive window, so growth is bounded and amortized
	pcb.rcvBuf = append(pcb.rcvBuf, payload...)
	pcb.delAckPending++
	if pcb.delAckPending >= 2 {
		pcb.sendAck()
	}
}

// processAck advances sndUna, releases acked segments and window, and
// sends more queued data.
func (pcb *tcpPCB) processAck(th *layers.TCP) {
	if seqAfter(th.Ack, pcb.sndUna) && !seqAfter(th.Ack, pcb.sndNxt) {
		pcb.sndUna = th.Ack
		pcb.dropAcked(th.Ack)
	}
	pcb.sndWnd = int(th.Window)
	pcb.trySend()
}

func (pcb *tcpPCB) dropAcked(ack uint32) {
	keep := pcb.unacked[:0]
	for _, u := range pcb.unacked {
		end := u.seq + uint32(len(u.data))
		if u.syn || u.fin {
			end++
		}
		if seqAfter(end, ack) {
			keep = append(keep, u)
		}
	}
	pcb.unacked = keep
}

// seqAfter reports a > b in sequence space.
func seqAfter(a, b uint32) bool { return int32(a-b) > 0 }

// inFlight reports unacknowledged bytes.
func (pcb *tcpPCB) inFlight() int { return int(pcb.sndNxt - pcb.sndUna) }

// trySend transmits queued data within the peer's window, then a queued
// FIN.
func (pcb *tcpPCB) trySend() {
	if pcb.state != stEstablished && pcb.state != stFinWait1 && pcb.state != stLastAck &&
		pcb.state != stCloseWait {
		return
	}
	for len(pcb.sndBuf) > 0 {
		room := pcb.sndWnd - pcb.inFlight()
		if room <= 0 {
			return
		}
		n := min(min(tcpMSS, len(pcb.sndBuf)), room)
		//lint:ignore hotpathalloc per-data-segment payload copy for transmission; the rx small-message steady state sends no data
		chunk := append([]byte(nil), pcb.sndBuf[:n]...)
		pcb.sndBuf = pcb.sndBuf[n:]
		pcb.sendSegment(layers.TCPAck|layers.TCPPsh, chunk, true)
	}
	if pcb.finQueued && len(pcb.sndBuf) == 0 {
		pcb.finQueued = false
		pcb.sendSegment(layers.TCPFin|layers.TCPAck, nil, true)
	}
}

// sendAck emits a bare ACK and clears the delayed-ACK counter.
func (pcb *tcpPCB) sendAck() {
	pcb.delAckPending = 0
	inc(&pcb.host.Counters.AcksSent)
	pcb.sendSegment(layers.TCPAck, nil, false)
}

// sendSegment builds and transmits one segment; track=true records it for
// retransmission (SYN/FIN/data). Output goes through the owning shard's
// pool and transmit queue, so segment emission never crosses shards.
func (pcb *tcpPCB) sendSegment(flags byte, payload []byte, track bool) {
	h := pcb.host
	th := layers.TCP{
		SrcPort: pcb.tuple.lport,
		DstPort: pcb.tuple.rport,
		Seq:     pcb.sndNxt,
		Window:  uint16(tcpWindow - min(len(pcb.rcvBuf), tcpWindow)),
	}
	if pcb.state != stSynSent { // no ACK field before the handshake
		th.Ack = pcb.rcvNxt
	}
	th.Flags = flags

	m := pcb.owner.pool.FromBytes(payload)
	mm, hdr := m.Prepend(layers.TCPMinLen)
	th.Encode(hdr, payload, h.ip, pcb.tuple.raddr)

	consumed := uint32(len(payload))
	if flags&layers.TCPSyn != 0 || flags&layers.TCPFin != 0 {
		consumed++
	}
	if track && consumed > 0 {
		//lint:ignore hotpathalloc retransmission-queue copy, made only when sending data segments
		h2 := append([]byte(nil), payload...)
		//lint:ignore hotpathalloc retransmission queue is bounded by the send window
		pcb.unacked = append(pcb.unacked, unackedSeg{
			seq: pcb.sndNxt, data: h2,
			syn: flags&layers.TCPSyn != 0, fin: flags&layers.TCPFin != 0,
			sentAt: h.net.now, backoff: tcpRTO,
		})
		pcb.sndNxt += consumed
	}
	pcb.owner.ipOutput(mm, layers.ProtoTCP, pcb.tuple.raddr)
}

// tcpTick fires retransmission, delayed-ACK, persist and TIME-WAIT
// timers. It runs on the pump between Drain and the next deliver, when
// every shard worker is parked, and may walk all shards' PCB maps.
//
//ldlp:quiescent
func (h *Host) tcpTick() {
	for _, ts := range h.tshards {
		ts.tcpTickShard()
	}
}

func (ts *transportShard) tcpTickShard() {
	h := ts.h
	// Range tolerates the deletes teardown/timeout perform mid-walk
	// (flow-table deletes never relocate entries); nothing here inserts.
	ts.pcbs.Range(func(_ fourTuple, pcb *tcpPCB) bool {
		if pcb.state == stTimeWait {
			if h.net.now >= pcb.timeWaitAt {
				pcb.teardown()
			}
			return true
		}
		if pcb.delAckPending > 0 {
			inc(&h.Counters.DelayedAcks)
			pcb.sendAck()
		}
		// Zero-window persist: data queued, nothing in flight, no window.
		if len(pcb.sndBuf) > 0 && pcb.inFlight() == 0 &&
			pcb.sndWnd <= 0 && pcb.state == stEstablished &&
			h.net.now-pcb.lastProbe >= tcpPersist {
			pcb.lastProbe = h.net.now
			inc(&h.Counters.WindowProbes)
			// Probe with one byte of real data, tracked like any send.
			chunk := pcb.sndBuf[:1:1]
			pcb.sndBuf = pcb.sndBuf[1:]
			pcb.sendSegment(layers.TCPAck|layers.TCPPsh, chunk, true)
		}
		if len(pcb.unacked) == 0 {
			return true
		}
		u := &pcb.unacked[0]
		if h.net.now-u.sentAt >= u.backoff {
			if u.tries >= tcpMaxRetries {
				// The peer is gone (dead host, standing partition):
				// stop pinning the PCB and its queues forever. Error
				// the socket so the application sees the failure, free
				// everything queued, and reap the connection.
				pcb.timeout()
				return true
			}
			u.tries++
			inc(&h.Counters.Retransmits)
			h.telPump.Event(telemetry.EvRetransmit, 0, int64(u.seq))
			u.sentAt = h.net.now
			if u.backoff < tcpMaxBackoff {
				u.backoff *= 2
			}
			flags := byte(layers.TCPAck)
			if u.syn {
				flags = layers.TCPSyn
				if pcb.state != stSynSent {
					flags |= layers.TCPAck
				}
			}
			if u.fin {
				flags |= layers.TCPFin
			}
			if len(u.data) > 0 {
				flags |= layers.TCPPsh
			}
			pcb.retransmit(u, flags)
		}
		return true
	})
}

// retransmit re-emits one tracked segment without re-tracking it.
func (pcb *tcpPCB) retransmit(u *unackedSeg, flags byte) {
	h := pcb.host
	th := layers.TCP{
		SrcPort: pcb.tuple.lport,
		DstPort: pcb.tuple.rport,
		Seq:     u.seq,
		Window:  uint16(tcpWindow - min(len(pcb.rcvBuf), tcpWindow)),
		Flags:   flags,
	}
	if pcb.state != stSynSent {
		th.Ack = pcb.rcvNxt
	}
	m := pcb.owner.pool.FromBytes(u.data)
	mm, hdr := m.Prepend(layers.TCPMinLen)
	th.Encode(hdr, u.data, h.ip, pcb.tuple.raddr)
	pcb.owner.ipOutput(mm, layers.ProtoTCP, pcb.tuple.raddr)
}
