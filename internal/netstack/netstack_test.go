package netstack

import (
	"bytes"
	"math/rand"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

var (
	ipA = layers.IPAddr{10, 0, 0, 1}
	ipB = layers.IPAddr{10, 0, 0, 2}
)

func twoHosts(t *testing.T, d core.Discipline) (*Net, *Host, *Host) {
	t.Helper()
	mbuf.ResetPool()
	n := NewNet()
	a := n.AddHost("a", ipA, DefaultOptions(d))
	b := n.AddHost("b", ipB, DefaultOptions(d))
	return n, a, b
}

func checkNoLeaks(t *testing.T) {
	t.Helper()
	if s := mbuf.PoolStats(); s.InUse != 0 {
		t.Errorf("mbuf leak: %+v", s)
	}
}

func TestUDPEchoConventional(t *testing.T) {
	testUDPEcho(t, core.Conventional)
}

func TestUDPEchoLDLP(t *testing.T) {
	testUDPEcho(t, core.LDLP)
}

func testUDPEcho(t *testing.T, d core.Discipline) {
	n, a, b := twoHosts(t, d)
	sa, err := a.UDPSocket(1000)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.UDPSocket(2000)
	if err != nil {
		t.Fatal(err)
	}

	sa.SendTo(ipB, 2000, []byte("ping"))
	n.RunUntilIdle()

	dg, ok := sb.Recv()
	if !ok {
		t.Fatal("server received nothing")
	}
	if string(dg.Data) != "ping" || dg.Src != ipA || dg.SrcPort != 1000 {
		t.Fatalf("got %+v", dg)
	}

	sb.SendTo(dg.Src, dg.SrcPort, []byte("pong"))
	n.RunUntilIdle()
	reply, ok := sa.Recv()
	if !ok || string(reply.Data) != "pong" {
		t.Fatalf("echo reply: %v %q", ok, reply.Data)
	}
	checkNoLeaks(t)
}

func TestUDPBigDatagramSpansClusters(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)
	payload := make([]byte, 1400)
	rand.New(rand.NewSource(1)).Read(payload)
	sa.SendTo(ipB, 2, payload)
	n.RunUntilIdle()
	dg, ok := sb.Recv()
	if !ok || !bytes.Equal(dg.Data, payload) {
		t.Fatal("large datagram corrupted")
	}
	checkNoLeaks(t)
}

func TestUDPNoSocketCounted(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	sa, _ := a.UDPSocket(1)
	sa.SendTo(ipB, 9999, []byte("nobody home"))
	n.RunUntilIdle()
	if b.Counters.NoSocket != 1 {
		t.Errorf("NoSocket = %d, want 1", b.Counters.NoSocket)
	}
	checkNoLeaks(t)
}

func TestUDPQueueLimitDrops(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)
	sb.QueueLimit = 3
	for i := 0; i < 5; i++ {
		sa.SendTo(ipB, 2, []byte{byte(i)})
	}
	n.RunUntilIdle()
	if sb.Pending() != 3 || sb.DroppedCount() != 2 {
		t.Errorf("pending %d dropped %d, want 3/2", sb.Pending(), sb.DroppedCount())
	}
	checkNoLeaks(t)
}

func TestPortInUse(t *testing.T) {
	_, a, _ := twoHosts(t, core.Conventional)
	if _, err := a.UDPSocket(7); err != nil {
		t.Fatal(err)
	}
	if _, err := a.UDPSocket(7); err == nil {
		t.Error("duplicate UDP bind should fail")
	}
	if _, err := a.ListenTCP(7); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ListenTCP(7); err == nil {
		t.Error("duplicate TCP listen should fail")
	}
}

func TestTCPHandshakeAndData(t *testing.T) {
	for _, d := range []core.Discipline{core.Conventional, core.LDLP} {
		n, a, b := twoHosts(t, d)
		l, err := b.ListenTCP(80)
		if err != nil {
			t.Fatal(err)
		}
		cli := a.DialTCP(ipB, 80)
		n.RunUntilIdle()
		if !cli.Established() {
			t.Fatalf("[%v] client state %s after handshake", d, cli.State())
		}
		srv := l.Accept()
		if srv == nil {
			t.Fatalf("[%v] no accepted connection", d)
		}

		if err := cli.Send([]byte("hello over tcp")); err != nil {
			t.Fatal(err)
		}
		n.RunUntilIdle()
		buf := make([]byte, 100)
		nr := srv.Recv(buf)
		if string(buf[:nr]) != "hello over tcp" {
			t.Fatalf("[%v] server got %q", d, buf[:nr])
		}

		// Server responds.
		srv.Send([]byte("and back"))
		n.RunUntilIdle()
		nr = cli.Recv(buf)
		if string(buf[:nr]) != "and back" {
			t.Fatalf("[%v] client got %q", d, buf[:nr])
		}
		checkNoLeaks(t)
	}
}

func TestTCPBulkTransferAndSegmentation(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	payload := make([]byte, 20000) // > 13 MSS segments
	rand.New(rand.NewSource(2)).Read(payload)
	cli.Send(payload)
	n.RunUntilIdle()
	n.Tick(0.05) // flush delayed ACKs
	var got []byte
	buf := make([]byte, 4096)
	for {
		nr := srv.Recv(buf)
		if nr == 0 {
			break
		}
		got = append(got, buf[:nr]...)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("bulk transfer corrupted: %d bytes vs %d", len(got), len(payload))
	}
	if b.Counters.DataSegsIn < 13 {
		t.Errorf("segments in = %d, want >= 13 (MSS segmentation)", b.Counters.DataSegsIn)
	}
	checkNoLeaks(t)
}

func TestDelayedAckEverySecondSegment(t *testing.T) {
	// The paper's trace: "this TCP implementation sends an ACK for every
	// second data packet".
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	_ = l.Accept()

	before := b.Counters.AcksSent
	// Send 8 separate MSS-sized pushes -> 8 data segments -> ~4 ACKs.
	for i := 0; i < 8; i++ {
		cli.Send(make([]byte, tcpMSS))
		n.RunUntilIdle()
	}
	acks := b.Counters.AcksSent - before
	if acks != 4 {
		t.Errorf("acks for 8 data segments = %d, want 4 (every 2nd)", acks)
	}
	if b.Counters.TCPFastPath < 6 {
		t.Errorf("fast path hits = %d, want most of 8 in-order segments", b.Counters.TCPFastPath)
	}
}

func TestDelayedAckTimerFlushesOddSegment(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	_ = l.Accept()

	before := b.Counters.DelayedAcks
	cli.Send([]byte("one lonely segment"))
	n.RunUntilIdle()
	n.Tick(0.01)
	if b.Counters.DelayedAcks != before+1 {
		t.Errorf("delayed-ack timer fired %d times, want 1", b.Counters.DelayedAcks-before)
	}
}

func TestPCBSingleEntryCache(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	_ = l.Accept()

	base := b.Counters.PCBCacheHits
	for i := 0; i < 10; i++ {
		cli.Send([]byte("x"))
		n.RunUntilIdle()
		n.Tick(0.01)
	}
	if hits := b.Counters.PCBCacheHits - base; hits < 8 {
		t.Errorf("PCB cache hits = %d over 10 in-order segments, want nearly all", hits)
	}
}

func TestRetransmissionOnLoss(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	_ = l.Accept()

	// Drop the next data-bearing frame to B exactly once.
	dropped := 0
	n.Loss = func(dst layers.IPAddr, data []byte) bool {
		if dst == ipB && len(data) > 60 && dropped == 0 {
			dropped++
			return true
		}
		return false
	}
	cli.Send([]byte("must arrive eventually"))
	n.RunUntilIdle()
	buf := make([]byte, 100)
	if nr := cli.pcb.host.name; nr == "" {
		t.Fatal("unreachable")
	}
	srv := b.findPCB(fourTuple{raddr: ipA, rport: cli.pcb.tuple.lport, lport: 80})
	if srv == nil {
		t.Fatal("server pcb missing")
	}
	if len(srv.rcvBuf) != 0 {
		t.Fatal("data arrived despite loss")
	}
	// Fire the retransmit timer.
	for i := 0; i < 5 && len(srv.rcvBuf) == 0; i++ {
		n.Tick(0.25)
	}
	if a.Counters.Retransmits == 0 {
		t.Error("no retransmission recorded")
	}
	nrec := copy(buf, srv.rcvBuf)
	if string(buf[:nrec]) != "must arrive eventually" {
		t.Errorf("after retransmit got %q", buf[:nrec])
	}
	checkNoLeaks(t)
}

func TestTCPCloseHandshake(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	cli.Close()
	n.RunUntilIdle()
	if srv.State() != "close-wait" {
		t.Errorf("server state after FIN = %s, want close-wait", srv.State())
	}
	srv.Close()
	n.RunUntilIdle()
	if got := srv.State(); got != "closed" {
		t.Errorf("server final state = %s", got)
	}
	if err := cli.Send([]byte("late")); err == nil {
		t.Error("send on closed socket should fail")
	}
}

func TestFlowControlWindowStallsSender(t *testing.T) {
	n, a, b := twoHosts(t, core.Conventional)
	l, _ := b.ListenTCP(80)
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()

	// Send more than the 64 KB window without the receiver reading.
	payload := make([]byte, 100000)
	cli.Send(payload)
	n.RunUntilIdle()
	n.Tick(0.01)
	if got := srv.Buffered(); got > tcpWindow {
		t.Errorf("receiver buffered %d > advertised window %d", got, tcpWindow)
	}
	if cli.pcb.inFlight() > tcpWindow {
		t.Errorf("in flight %d exceeds window", cli.pcb.inFlight())
	}
	// Draining the receiver opens the window and the rest flows.
	buf := make([]byte, 8192)
	total := 0
	for i := 0; i < 200; i++ {
		nr := srv.Recv(buf)
		total += nr
		if total >= len(payload) {
			break
		}
		n.Tick(0.3)
	}
	if total != len(payload) {
		t.Errorf("received %d of %d after window reopened", total, len(payload))
	}
}

func TestBadFramesCounted(t *testing.T) {
	n, _, b := twoHosts(t, core.Conventional)

	// Runt frame.
	n.send(frame{dst: b.mac, m: mbuf.FromBytes([]byte{1, 2, 3})})
	// Wrong ethertype.
	badType := make([]byte, 60)
	eth := layers.Ethernet{Dst: b.mac, Src: MACFor(ipA), EtherType: layers.EtherTypeARP}
	eth.Encode(badType)
	n.send(frame{dst: b.mac, m: mbuf.FromBytes(badType)})
	// Corrupt IP checksum.
	good := make([]byte, layers.EthernetLen+layers.IPv4MinLen)
	eth.EtherType = layers.EtherTypeIPv4
	eth.Encode(good)
	iph := layers.IPv4{TotalLen: 20, TTL: 64, Protocol: layers.ProtoUDP, Src: ipA, Dst: ipB}
	iph.Encode(good[layers.EthernetLen:])
	good[layers.EthernetLen+8] ^= 0xff
	n.send(frame{dst: b.mac, m: mbuf.FromBytes(good)})
	n.RunUntilIdle()

	if b.Counters.BadEther != 2 {
		t.Errorf("BadEther = %d, want 2", b.Counters.BadEther)
	}
	if b.Counters.BadIP != 1 {
		t.Errorf("BadIP = %d, want 1", b.Counters.BadIP)
	}
	checkNoLeaks(t)
}

func TestFragmentsCountedNotCrashed(t *testing.T) {
	n, _, b := twoHosts(t, core.Conventional)
	buf := make([]byte, layers.EthernetLen+layers.IPv4MinLen+8)
	eth := layers.Ethernet{Dst: b.mac, Src: MACFor(ipA), EtherType: layers.EtherTypeIPv4}
	eth.Encode(buf)
	iph := layers.IPv4{TotalLen: 28, TTL: 64, Protocol: layers.ProtoUDP, Flags: 0x1, Src: ipA, Dst: ipB}
	iph.Encode(buf[layers.EthernetLen:])
	n.send(frame{dst: b.mac, m: mbuf.FromBytes(buf)})
	n.RunUntilIdle()
	if b.Counters.Fragments != 1 {
		t.Errorf("Fragments = %d, want 1", b.Counters.Fragments)
	}
	checkNoLeaks(t)
}

func TestLDLPBatchingOnBurst(t *testing.T) {
	n, a, b := twoHosts(t, core.LDLP)
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)
	for i := 0; i < 40; i++ {
		sa.SendTo(ipB, 2, []byte{byte(i)})
	}
	n.RunUntilIdle()
	if sb.Pending() != 40 {
		t.Fatalf("pending = %d, want 40", sb.Pending())
	}
	st := b.StackStats()
	if st.LargestBatch < 10 {
		t.Errorf("largest LDLP batch = %d, want a real burst batch", st.LargestBatch)
	}
	if st.LargestBatch > 14 {
		t.Errorf("largest batch = %d exceeds the device batch limit", st.LargestBatch)
	}
	checkNoLeaks(t)
}

func TestInputLimitDropTail(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	a := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	opts := DefaultOptions(core.LDLP)
	opts.InputLimit = 10
	b := n.AddHost("b", ipB, opts)
	sa, _ := a.UDPSocket(1)
	sb, _ := b.UDPSocket(2)
	for i := 0; i < 30; i++ {
		sa.SendTo(ipB, 2, []byte{byte(i)})
	}
	// Deliver frames without letting b process: drive the wire manually.
	n.RunUntilIdle()
	// With processing interleaved the limit may never be hit; force a
	// burst by sending again with processing suppressed via direct
	// deliveries.
	for i := 0; i < 30; i++ {
		b.deliver(mbuf.FromBytes(make([]byte, 60))) // garbage frames, queued then rejected
	}
	if dropped := b.StackStats().Dropped; dropped < 20 {
		t.Errorf("stack dropped %d of 30 over-limit frames, want >= 20", dropped)
	}
	if got := sb.Pending(); got > 40 {
		t.Errorf("socket somehow saw %d datagrams", got)
	}
	n.RunUntilIdle() // drain what was admitted before leak accounting
	checkNoLeaks(t)
}

func TestDuplicateIPPanics(t *testing.T) {
	n := NewNet()
	n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	defer func() {
		if recover() == nil {
			t.Error("duplicate IP should panic")
		}
	}()
	n.AddHost("a2", ipA, DefaultOptions(core.Conventional))
}

func TestMACForIsStable(t *testing.T) {
	if MACFor(ipA) != MACFor(ipA) {
		t.Error("MACFor must be deterministic")
	}
	if MACFor(ipA) == MACFor(ipB) {
		t.Error("distinct IPs must map to distinct MACs")
	}
}

func BenchmarkUDPRoundTrip(b *testing.B) {
	mbuf.ResetPool()
	n := NewNet()
	ha := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	hb := n.AddHost("b", ipB, DefaultOptions(core.Conventional))
	sa, _ := ha.UDPSocket(1)
	sb, _ := hb.UDPSocket(2)
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sa.SendTo(ipB, 2, payload)
		n.RunUntilIdle()
		if dg, ok := sb.Recv(); ok {
			_ = dg
		}
	}
}

func BenchmarkTCPSegmentIn(b *testing.B) {
	mbuf.ResetPool()
	n := NewNet()
	ha := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	hb := n.AddHost("b", ipB, DefaultOptions(core.Conventional))
	l, _ := hb.ListenTCP(80)
	cli := ha.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()
	payload := make([]byte, 512)
	buf := make([]byte, 4096)
	b.SetBytes(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cli.Send(payload)
		n.RunUntilIdle()
		for srv.Recv(buf) > 0 {
		}
	}
}
