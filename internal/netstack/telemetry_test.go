package netstack

import (
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/mbuf"
	"ldlp/internal/telemetry"
)

// TestTelemetryRecordsLDLPRun drives a small UDP exchange under the
// LDLP schedule and checks the flight recorder saw it: layer spans on
// the receive shard, batch-size observations, and a tx-flush counter
// event on the pump tracer — all stamped from the Net's simulated
// clock, so timestamps are non-decreasing per tracer.
func TestTelemetryRecordsLDLPRun(t *testing.T) {
	n, a, b := twoHosts(t, core.LDLP)
	sb, err := b.UDPSocket(7)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	sa, err := a.UDPSocket(8)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	for i := 0; i < 8; i++ {
		sa.SendTo(ipB, 7, []byte("ping"))
	}
	n.RunUntilIdle()
	if sb.Pending() != 8 {
		t.Fatalf("delivered %d datagrams, want 8", sb.Pending())
	}

	snap := b.Telemetry().Snapshot()
	if snap.Domain != "b" {
		t.Errorf("domain = %q, want b", snap.Domain)
	}

	var shard *telemetry.TracerSnapshot
	for i := range snap.Tracers {
		if snap.Tracers[i].Label == "shard0" {
			shard = &snap.Tracers[i]
		}
	}
	if shard == nil {
		t.Fatal("no shard0 tracer in snapshot")
	}
	var batches, enters, exits int
	var batchSum int64
	for i, ev := range shard.Events {
		if i > 0 && ev.TS < shard.Events[i-1].TS {
			t.Fatalf("timestamps went backwards at event %d: %d < %d", i, ev.TS, shard.Events[i-1].TS)
		}
		switch ev.Kind {
		case telemetry.EvBatchFormed:
			batches++
			batchSum += ev.Arg
		case telemetry.EvLayerEnter:
			enters++
		case telemetry.EvLayerExit:
			exits++
		}
	}
	if batches == 0 || batchSum != 8 {
		t.Errorf("batch events: %d totaling %d messages, want >0 totaling 8", batches, batchSum)
	}
	if enters == 0 || enters != exits {
		t.Errorf("layer spans unbalanced: %d enters, %d exits", enters, exits)
	}
	if name := shard.LayerName(int(shard.Events[0].Layer)); name != "device" {
		t.Errorf("first event layer = %q, want device (bottom of rx path)", name)
	}

	bh, ok := snap.Hist("ldlp-batch")
	if !ok || bh.Count == 0 || bh.Sum != 8 {
		t.Errorf("ldlp-batch hist = %+v, want count>0 sum 8", bh)
	}
	// The transmit side lives on the sender: a's pump tracer flushed
	// each datagram's frame batch.
	asnap := a.Telemetry().Snapshot()
	th, ok := asnap.Hist("tx-batch")
	if !ok || th.Count == 0 {
		t.Errorf("sender tx-batch hist = %+v, want flushes recorded", th)
	}
	var flushes int
	for i := range asnap.Tracers {
		if asnap.Tracers[i].Label != "pump" {
			continue
		}
		for _, ev := range asnap.Tracers[i].Events {
			if ev.Kind == telemetry.EvTxFlush {
				flushes++
			}
		}
	}
	if flushes == 0 {
		t.Error("no EvTxFlush events on the sender's pump tracer")
	}
	checkNoLeaks(t)
}

// TestTelemetryRecordsDrops corrupts an IP header so the receive path
// rejects it, and checks the drop shows up as an EvDrop event carrying
// the layer index and decoded reason.
func TestTelemetryRecordsDrops(t *testing.T) {
	n, a, b := twoHosts(t, core.LDLP)
	sa, err := a.UDPSocket(8)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sa.SendTo(ipB, 7, []byte("nobody home"))
	n.RunUntilIdle()

	snap := b.Telemetry().Snapshot()
	found := false
	for _, tr := range snap.Tracers {
		for _, ev := range tr.Events {
			if ev.Kind == telemetry.EvDrop && telemetry.DropReason(ev.Arg) == telemetry.DropNoSocket {
				found = true
				if tr.LayerName(int(ev.Layer)) != "udp" {
					t.Errorf("drop recorded at layer %q, want udp", tr.LayerName(int(ev.Layer)))
				}
			}
		}
	}
	if !found {
		t.Error("no EvDrop/no-socket event recorded for an unbound port")
	}
	checkNoLeaks(t)
}

// TestTelemetryDisabledRecordsNothing flips the global gate off and
// re-runs traffic: counters still count (leak accounting must always
// work) but rings and histograms stay empty.
func TestTelemetryDisabledRecordsNothing(t *testing.T) {
	prev := telemetry.Enable(false)
	defer telemetry.Enable(prev)

	n, a, b := twoHosts(t, core.LDLP)
	sb, err := b.UDPSocket(7)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	sa, err := a.UDPSocket(8)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sa.SendTo(ipB, 7, []byte("quiet"))
	n.RunUntilIdle()
	if sb.Pending() != 1 {
		t.Fatalf("delivered %d datagrams, want 1", sb.Pending())
	}
	if b.Counters.FramesIn == 0 {
		t.Error("plain counters must keep counting with telemetry off")
	}

	snap := b.Telemetry().Snapshot()
	for _, tr := range snap.Tracers {
		if tr.Recorded != 0 {
			t.Errorf("tracer %s recorded %d events with telemetry disabled", tr.Label, tr.Recorded)
		}
	}
	for _, e := range snap.Hists {
		if e.Hist.Count != 0 {
			t.Errorf("hist %s observed %d values with telemetry disabled", e.Name, e.Hist.Count)
		}
	}
	checkNoLeaks(t)
}

// TestTelemetryShardedSnapshot runs the multi-core engine and checks
// every shard tracer that processed frames contributed events, with a
// caller-supplied clock feeding the timestamps.
func TestTelemetryShardedSnapshot(t *testing.T) {
	mbuf.ResetPool()
	var fake int64
	opts := ShardedOptions(2)
	opts.TelemetryClock = func() int64 { return fake }
	n := NewNet()
	defer n.Close()
	b := n.AddHost("b", ipB, opts)
	a := n.AddHost("a", ipA, DefaultOptions(core.LDLP))
	sb, err := b.UDPSocket(7)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	sa, err := a.UDPSocket(8)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	fake = 42
	for i := 0; i < 32; i++ {
		sa.SendTo(ipB, 7, []byte{byte(i)})
	}
	n.RunUntilIdle()

	snap := b.Telemetry().Snapshot()
	var recorded uint64
	for _, tr := range snap.Tracers {
		recorded += tr.Recorded
		for _, ev := range tr.Events {
			if ev.TS != 42 {
				t.Fatalf("event ts = %d, want the injected clock's 42", ev.TS)
			}
		}
	}
	if recorded == 0 {
		t.Error("sharded host recorded no events")
	}
	if bh, ok := snap.Hist("ldlp-batch"); !ok || bh.Sum != 32 {
		t.Errorf("ldlp-batch sum = %+v, want 32 messages across shards", bh)
	}
	checkNoLeaks(t)
}
