package netstack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/telemetry"
)

// Datagram is one received UDP message.
type Datagram struct {
	Src     layers.IPAddr
	SrcPort uint16
	Data    []byte
}

// UDPSock is an unconnected datagram socket bound to a local port.
type UDPSock struct {
	host *Host
	port uint16
	// mu guards queue. Unlike TCP, one UDP socket fans in from many
	// remotes, so its datagrams hash to different shards by design —
	// the queue is the declared cross-shard meeting point, and the lock
	// is held only for the append/pop, never across an emit or a send.
	mu    sync.Mutex
	queue []Datagram
	// QueueLimit bounds buffered datagrams (drop-tail beyond it).
	QueueLimit int
	// Dropped counts datagrams discarded at a full queue. Updated with
	// atomic adds — datagrams from different remotes hash to different
	// shard workers — like the host Counters; read while quiescent, or
	// via DroppedCount.
	Dropped int64
}

// DroppedCount reads the queue-drop counter with atomic semantics,
// safe while shard workers are running.
func (s *UDPSock) DroppedCount() int64 { return atomic.LoadInt64(&s.Dropped) }

// UDPSocket binds a datagram socket to port.
func (h *Host) UDPSocket(port uint16) (*UDPSock, error) {
	if _, ok := h.udpSocks[port]; ok {
		return nil, fmt.Errorf("%w: udp %d", ErrPortInUse, port)
	}
	s := &UDPSock{host: h, port: port, QueueLimit: 512}
	h.udpSocks[port] = s
	return s, nil
}

// Close unbinds the socket.
func (s *UDPSock) Close() { delete(s.host.udpSocks, s.port) }

// SendTo transmits one datagram. Pump-side: the frame is built from and
// queued on the pump's transport shard.
//
//ldlp:quiescent
func (s *UDPSock) SendTo(dst layers.IPAddr, port uint16, payload []byte) {
	ts := s.host.pumpShard()
	uh := layers.UDP{SrcPort: s.port, DstPort: port}
	m := ts.pool.FromBytes(payload)
	mm, hdr := m.Prepend(layers.UDPLen)
	uh.Encode(hdr, payload, s.host.ip, dst)
	ts.ipOutput(mm, layers.ProtoUDP, dst)
}

// Recv pops the next datagram, reporting ok=false when the queue is
// empty.
func (s *UDPSock) Recv() (Datagram, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return Datagram{}, false
	}
	d := s.queue[0]
	s.queue = s.queue[1:]
	return d, true
}

// Pending reports queued datagrams.
func (s *UDPSock) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// udpInput is the receive-path UDP layer. The checksum and the payload
// copy run lock-free; only the queue append takes the socket lock,
// because one socket receives from remotes spread across every shard.
// A declared cold step: UDP delivery copies into the socket queue and
// sits outside the TCP small-message zero-alloc contract.
//
//ldlp:coldpath
func (rx *rxPath) udpInput(p *Packet, emit core.Emit[*Packet]) {
	h := rx.h
	buf := p.M.Contiguous()
	n, err := p.UDP.Decode(buf, p.IP.Src, p.IP.Dst)
	if err != nil {
		inc(&h.Counters.BadUDP)
		rx.reject(p, rx.udpin, telemetry.DropBadUDP)
		return
	}
	rx.ts.tally.udpDgrams++
	// The socket map itself only changes while the network is quiescent
	// (UDPSocket/Close are pump-side), so the lookup needs no lock.
	sock, ok := h.udpSocks[p.UDP.DstPort]
	if !ok {
		inc(&h.Counters.NoSocket)
		rx.reject(p, rx.udpin, telemetry.DropNoSocket)
		return
	}
	payload := append([]byte(nil), buf[n:p.UDP.Length]...)
	sock.mu.Lock()
	if len(sock.queue) >= sock.QueueLimit {
		sock.mu.Unlock()
		atomic.AddInt64(&sock.Dropped, 1)
		rx.reject(p, rx.udpin, telemetry.DropSockBuffer)
		return
	}
	sock.queue = append(sock.queue, Datagram{Src: p.IP.Src, SrcPort: p.UDP.SrcPort, Data: payload})
	sock.mu.Unlock()
	emit(rx.sock, p)
}
