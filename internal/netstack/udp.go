package netstack

import (
	"fmt"
	"sync/atomic"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/telemetry"
)

// Datagram is one received UDP message.
type Datagram struct {
	Src     layers.IPAddr
	SrcPort uint16
	Data    []byte
}

// UDPSock is an unconnected datagram socket bound to a local port.
type UDPSock struct {
	host  *Host
	port  uint16
	queue []Datagram
	// QueueLimit bounds buffered datagrams (drop-tail beyond it).
	QueueLimit int
	// Dropped counts datagrams discarded at a full queue. Updated with
	// atomic adds — datagrams from different remotes hash to different
	// shard workers — like the host Counters; read while quiescent, or
	// via DroppedCount.
	Dropped int64
}

// DroppedCount reads the queue-drop counter with atomic semantics,
// safe while shard workers are running.
func (s *UDPSock) DroppedCount() int64 { return atomic.LoadInt64(&s.Dropped) }

// UDPSocket binds a datagram socket to port.
func (h *Host) UDPSocket(port uint16) (*UDPSock, error) {
	if _, ok := h.udpSocks[port]; ok {
		return nil, fmt.Errorf("%w: udp %d", ErrPortInUse, port)
	}
	s := &UDPSock{host: h, port: port, QueueLimit: 512}
	h.udpSocks[port] = s
	return s, nil
}

// Close unbinds the socket.
func (s *UDPSock) Close() { delete(s.host.udpSocks, s.port) }

// SendTo transmits one datagram.
func (s *UDPSock) SendTo(dst layers.IPAddr, port uint16, payload []byte) {
	uh := layers.UDP{SrcPort: s.port, DstPort: port}
	m := s.host.txPool.FromBytes(payload)
	mm, hdr := m.Prepend(layers.UDPLen)
	uh.Encode(hdr, payload, s.host.ip, dst)
	s.host.ipOutput(mm, layers.ProtoUDP, dst)
}

// Recv pops the next datagram, reporting ok=false when the queue is
// empty.
func (s *UDPSock) Recv() (Datagram, bool) {
	if len(s.queue) == 0 {
		return Datagram{}, false
	}
	d := s.queue[0]
	s.queue = s.queue[1:]
	return d, true
}

// Pending reports queued datagrams.
func (s *UDPSock) Pending() int { return len(s.queue) }

// udpInput is the receive-path UDP layer. The checksum runs lock-free;
// the socket queue is mutated under the host lock (a no-op on the
// single-threaded path).
func (rx *rxPath) udpInput(p *Packet, emit core.Emit[*Packet]) {
	h := rx.h
	buf := p.M.Contiguous()
	n, err := p.UDP.Decode(buf, p.IP.Src, p.IP.Dst)
	if err != nil {
		inc(&h.Counters.BadUDP)
		rx.reject(p, rx.udpin, telemetry.DropBadUDP)
		return
	}
	h.lockRx()
	defer h.unlockRx()
	sock, ok := h.udpSocks[p.UDP.DstPort]
	if !ok {
		inc(&h.Counters.NoSocket)
		rx.reject(p, rx.udpin, telemetry.DropNoSocket)
		return
	}
	if len(sock.queue) >= sock.QueueLimit {
		inc(&sock.Dropped)
		rx.reject(p, rx.udpin, telemetry.DropSockBuffer)
		return
	}
	payload := append([]byte(nil), buf[n:p.UDP.Length]...)
	sock.queue = append(sock.queue, Datagram{Src: p.IP.Src, SrcPort: p.UDP.SrcPort, Data: payload})
	//lint:ignore lockorder emit only enqueues on the shard ring (layers never run inline); mu is a no-op single-threaded
	emit(rx.sock, p)
}
