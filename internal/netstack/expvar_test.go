package netstack

import (
	"encoding/json"
	"expvar"
	"fmt"
	"testing"

	"ldlp/internal/core"
)

func TestQueueDepthsShape(t *testing.T) {
	_, a, _ := twoHosts(t, core.Conventional)
	if d := a.QueueDepths(); len(d) != 1 || d[0] != 0 {
		t.Errorf("single-threaded depths = %v, want [0]", d)
	}
	n := NewNet()
	sh := n.AddHost("s", layers4(), ShardedOptions(3))
	defer n.Close()
	if d := sh.QueueDepths(); len(d) != 3 {
		t.Errorf("sharded depths = %v, want 3 entries", d)
	}
}

// layers4 is a throwaway address distinct from ipA/ipB.
func layers4() [4]byte { return [4]byte{10, 0, 9, 9} }

func TestExpvarPublishAndRebind(t *testing.T) {
	n, a, b := twoHosts(t, core.LDLP)
	a.PublishExpvars()
	b.PublishExpvars()
	sa, _ := a.UDPSocket(1)
	if _, err := b.UDPSocket(2); err != nil {
		t.Fatal(err)
	}
	sa.SendTo(ipB, 2, []byte("hi"))
	n.RunUntilIdle()

	var hostVars struct {
		QueueDepths []int `json:"queueDepths"`
		FramesOut   int64 `json:"framesOut"`
	}
	v := expvar.Get("netstack.a")
	if v == nil {
		t.Fatal("netstack.a not published")
	}
	if err := json.Unmarshal([]byte(v.String()), &hostVars); err != nil {
		t.Fatalf("netstack.a not JSON: %v", err)
	}
	if hostVars.FramesOut != 1 || len(hostVars.QueueDepths) != 1 {
		t.Errorf("netstack.a = %+v, want framesOut 1 and one queue", hostVars)
	}

	var poolVars struct {
		Allocs int64 `json:"allocs"`
		InUse  int64 `json:"inUse"`
	}
	pv := expvar.Get("netstack.mbufpool")
	if pv == nil {
		t.Fatal("netstack.mbufpool not published")
	}
	if err := json.Unmarshal([]byte(pv.String()), &poolVars); err != nil {
		t.Fatalf("netstack.mbufpool not JSON: %v", err)
	}
	if poolVars.Allocs == 0 || poolVars.InUse != 0 {
		t.Errorf("pool vars = %+v, want traffic seen and nothing in use", poolVars)
	}

	// A second net reusing the name must rebind, not panic, and the
	// published Func must read the new host.
	n2, a2, _ := twoHosts(t, core.LDLP)
	a2.PublishExpvars()
	_ = n2
	if err := json.Unmarshal([]byte(expvar.Get("netstack.a").String()), &hostVars); err != nil {
		t.Fatal(err)
	}
	if hostVars.FramesOut != 0 {
		t.Errorf("rebound netstack.a framesOut = %d, want the fresh host's 0", hostVars.FramesOut)
	}
	checkNoLeaks(t)
}

// TestExpvarNoDoublePublishCrosstalk is the regression test for the
// double-publish hazard: when two same-named hosts are alive at once,
// the legacy alias can only show one of them — but each host's
// canonical "netstack.<name>.<id>" entry must keep reading its own
// counters, not the other host's.
func TestExpvarNoDoublePublishCrosstalk(t *testing.T) {
	n1, a1, _ := twoHosts(t, core.LDLP)
	n2, a2, _ := twoHosts(t, core.LDLP)
	a1.PublishExpvars()
	a2.PublishExpvars()
	if a1.id == a2.id {
		t.Fatalf("host instance ids collide: %d", a1.id)
	}

	// Traffic on the first net only: one datagram out of a1.
	sa, _ := a1.UDPSocket(1)
	defer sa.Close()
	sa.SendTo(ipB, 9, []byte("x"))
	n1.RunUntilIdle()
	n2.RunUntilIdle()

	read := func(name string) map[string]any {
		t.Helper()
		v := expvar.Get(name)
		if v == nil {
			t.Fatalf("%s not published", name)
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
			t.Fatalf("%s not JSON: %v", name, err)
		}
		return m
	}
	c1 := read(fmt.Sprintf("netstack.a.%d", a1.id))
	c2 := read(fmt.Sprintf("netstack.a.%d", a2.id))
	if got := c1["framesOut"].(float64); got != 1 {
		t.Errorf("canonical a1 framesOut = %v, want 1", got)
	}
	if got := c2["framesOut"].(float64); got != 0 {
		t.Errorf("canonical a2 framesOut = %v, want 0 (crosstalk from a1?)", got)
	}
	// The alias tracks the latest publisher (a2).
	if got := read("netstack.a")["id"].(float64); int(got) != a2.id {
		t.Errorf("alias netstack.a id = %v, want latest publisher %d", got, a2.id)
	}
	// Re-publishing an already-canonical host is a no-op, not a panic.
	a1.PublishExpvars()

	// Telemetry histogram summaries ride along: a1 flushed one
	// single-frame tx batch.
	tel, ok := c1["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("canonical a1 has no telemetry map: %v", c1)
	}
	tx, ok := tel["tx-batch"].(map[string]any)
	if !ok {
		t.Fatalf("telemetry has no tx-batch summary: %v", tel)
	}
	if got := tx["count"].(float64); got != 1 {
		t.Errorf("tx-batch count = %v, want 1", got)
	}
	checkNoLeaks(t)
}
