package netstack

import (
	"encoding/json"
	"expvar"
	"testing"

	"ldlp/internal/core"
)

func TestQueueDepthsShape(t *testing.T) {
	_, a, _ := twoHosts(t, core.Conventional)
	if d := a.QueueDepths(); len(d) != 1 || d[0] != 0 {
		t.Errorf("single-threaded depths = %v, want [0]", d)
	}
	n := NewNet()
	sh := n.AddHost("s", layers4(), ShardedOptions(3))
	defer n.Close()
	if d := sh.QueueDepths(); len(d) != 3 {
		t.Errorf("sharded depths = %v, want 3 entries", d)
	}
}

// layers4 is a throwaway address distinct from ipA/ipB.
func layers4() [4]byte { return [4]byte{10, 0, 9, 9} }

func TestExpvarPublishAndRebind(t *testing.T) {
	n, a, b := twoHosts(t, core.LDLP)
	a.PublishExpvars()
	b.PublishExpvars()
	sa, _ := a.UDPSocket(1)
	if _, err := b.UDPSocket(2); err != nil {
		t.Fatal(err)
	}
	sa.SendTo(ipB, 2, []byte("hi"))
	n.RunUntilIdle()

	var hostVars struct {
		QueueDepths []int `json:"queueDepths"`
		FramesOut   int64 `json:"framesOut"`
	}
	v := expvar.Get("netstack.a")
	if v == nil {
		t.Fatal("netstack.a not published")
	}
	if err := json.Unmarshal([]byte(v.String()), &hostVars); err != nil {
		t.Fatalf("netstack.a not JSON: %v", err)
	}
	if hostVars.FramesOut != 1 || len(hostVars.QueueDepths) != 1 {
		t.Errorf("netstack.a = %+v, want framesOut 1 and one queue", hostVars)
	}

	var poolVars struct {
		Allocs int64 `json:"allocs"`
		InUse  int64 `json:"inUse"`
	}
	pv := expvar.Get("netstack.mbufpool")
	if pv == nil {
		t.Fatal("netstack.mbufpool not published")
	}
	if err := json.Unmarshal([]byte(pv.String()), &poolVars); err != nil {
		t.Fatalf("netstack.mbufpool not JSON: %v", err)
	}
	if poolVars.Allocs == 0 || poolVars.InUse != 0 {
		t.Errorf("pool vars = %+v, want traffic seen and nothing in use", poolVars)
	}

	// A second net reusing the name must rebind, not panic, and the
	// published Func must read the new host.
	n2, a2, _ := twoHosts(t, core.LDLP)
	a2.PublishExpvars()
	_ = n2
	if err := json.Unmarshal([]byte(expvar.Get("netstack.a").String()), &hostVars); err != nil {
		t.Fatal(err)
	}
	if hostVars.FramesOut != 0 {
		t.Errorf("rebound netstack.a framesOut = %d, want the fresh host's 0", hostVars.FramesOut)
	}
	checkNoLeaks(t)
}
