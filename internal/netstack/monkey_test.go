package netstack

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

// TestMonkeyRandomOperations drives a three-host network through random
// interleavings of UDP sends, TCP opens/sends/reads/closes, pings, loss
// bursts and timer ticks, then checks global invariants: no mbuf leaks,
// no panics, TCP byte streams intact and in order, and counters
// consistent. This is the failure-injection soak for the whole substrate.
func TestMonkeyRandomOperations(t *testing.T) {
	f := func(seed int64, disciplineSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := []core.Discipline{core.Conventional, core.LDLP}[int(disciplineSel)%2]
		mbuf.ResetPool()
		n := NewNet()
		ips := []layers.IPAddr{{10, 3, 0, 1}, {10, 3, 0, 2}, {10, 3, 0, 3}}
		hosts := make([]*Host, 3)
		for i, ip := range ips {
			hosts[i] = n.AddHost("h", ip, DefaultOptions(d))
		}

		// One TCP pair with a known pattern; several UDP sockets.
		l, err := hosts[1].ListenTCP(80)
		if err != nil {
			return false
		}
		cli := hosts[0].DialTCP(ips[1], 80)
		n.RunUntilIdle()
		srv := l.Accept()
		if srv == nil || !cli.Established() {
			return false
		}
		us := make([]*UDPSock, 3)
		for i, h := range hosts {
			us[i], err = h.UDPSocket(1000)
			if err != nil {
				return false
			}
		}

		// The TCP stream sends an incrementing byte pattern; the receiver
		// verifies order and content.
		var sent, received int
		expect := byte(0)
		closed := false

		lossy := false
		n.Loss = func(dst layers.IPAddr, data []byte) bool {
			return lossy && rng.Intn(100) < 20
		}

		for op := 0; op < 300; op++ {
			switch rng.Intn(8) {
			case 0: // TCP send a small chunk
				if closed {
					continue
				}
				k := 1 + rng.Intn(200)
				chunk := make([]byte, k)
				for i := range chunk {
					chunk[i] = byte(sent + i)
				}
				if cli.Send(chunk) == nil {
					sent += k
				}
			case 1: // TCP read and verify
				buf := make([]byte, 4096)
				nr := srv.Recv(buf)
				for i := 0; i < nr; i++ {
					if buf[i] != expect {
						return false
					}
					expect++
					received++
				}
			case 2: // UDP scatter
				src := rng.Intn(3)
				dst := rng.Intn(3)
				us[src].SendTo(ips[dst], 1000, []byte{byte(op)})
			case 3: // ping someone
				hosts[rng.Intn(3)].Ping(ips[rng.Intn(3)], 1, uint16(op), nil)
			case 4: // toggle loss
				lossy = !lossy
			case 5: // advance time (fires rexmt, delack, persist)
				n.Tick(0.05 + rng.Float64()*0.3)
			case 6: // pump
				n.RunUntilIdle()
			case 7: // drain a random UDP socket / ping replies
				us[rng.Intn(3)].Recv()
				hosts[rng.Intn(3)].PingReplies()
			}
		}

		// Settle: no loss, generous timer time for retransmissions.
		lossy = false
		buf := make([]byte, 8192)
		for i := 0; i < 400 && received < sent; i++ {
			n.Tick(0.3)
			for {
				nr := srv.Recv(buf)
				if nr == 0 {
					break
				}
				for k := 0; k < nr; k++ {
					if buf[k] != expect {
						return false
					}
					expect++
					received++
				}
			}
		}
		if received != sent {
			return false
		}

		// Orderly close both ways.
		cli.Close()
		closed = true
		n.RunUntilIdle()
		srv.Close()
		n.RunUntilIdle()
		n.Tick(2.5) // clear TIME-WAIT and stragglers
		n.Tick(2.5)

		// Drain all receive queues so buffered datagrams don't read as
		// leaks (UDP payloads are copied, so queues hold no mbufs — this
		// is belt and braces).
		for i := range us {
			for {
				if _, ok := us[i].Recv(); !ok {
					break
				}
			}
		}
		return mbuf.PoolStats().InUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDisciplinesAreObservationallyEquivalent is the metamorphic check
// behind the whole technique: LDLP changes only the processing ORDER, so
// for the same seeded scenario both disciplines must deliver exactly the
// same datagrams to the same sockets (TCP streams likewise). Throughput
// and latency differ on a real machine; semantics may not.
func TestDisciplinesAreObservationallyEquivalent(t *testing.T) {
	type outcome struct {
		udpPayloads []string
		tcpBytes    string
		pingSeqs    []uint16
	}
	scenario := func(d core.Discipline) outcome {
		mbuf.ResetPool()
		rng := rand.New(rand.NewSource(77)) // same seed for both runs
		n := NewNet()
		a := n.AddHost("a", ipA, DefaultOptions(d))
		b := n.AddHost("b", ipB, DefaultOptions(d))
		sa, _ := a.UDPSocket(1)
		sb, _ := b.UDPSocket(2)
		l, _ := b.ListenTCP(80)
		cli := a.DialTCP(ipB, 80)
		n.RunUntilIdle()
		srv := l.Accept()

		var out outcome
		for op := 0; op < 120; op++ {
			switch rng.Intn(4) {
			case 0:
				sa.SendTo(ipB, 2, []byte{byte(op), byte(op >> 3)})
			case 1:
				cli.Send([]byte{byte(op)})
			case 2:
				a.Ping(ipB, 9, uint16(op), nil)
			case 3:
				n.RunUntilIdle()
			}
		}
		n.RunUntilIdle()
		n.Tick(0.3)
		for {
			dg, ok := sb.Recv()
			if !ok {
				break
			}
			out.udpPayloads = append(out.udpPayloads, string(dg.Data))
		}
		buf := make([]byte, 4096)
		for {
			nr := srv.Recv(buf)
			if nr == 0 {
				break
			}
			out.tcpBytes += string(buf[:nr])
		}
		for _, r := range a.PingReplies() {
			out.pingSeqs = append(out.pingSeqs, r.Seq)
		}
		_ = sa
		return out
	}

	conv := scenario(core.Conventional)
	ldlp := scenario(core.LDLP)
	if fmt.Sprint(conv.udpPayloads) != fmt.Sprint(ldlp.udpPayloads) {
		t.Errorf("UDP deliveries differ:\nconv %q\nldlp %q", conv.udpPayloads, ldlp.udpPayloads)
	}
	if conv.tcpBytes != ldlp.tcpBytes {
		t.Errorf("TCP streams differ: %q vs %q", conv.tcpBytes, ldlp.tcpBytes)
	}
	if fmt.Sprint(conv.pingSeqs) != fmt.Sprint(ldlp.pingSeqs) {
		t.Errorf("ping replies differ: %v vs %v", conv.pingSeqs, ldlp.pingSeqs)
	}
}
