package netstack

import (
	"encoding/binary"

	"ldlp/internal/checksum"
	"ldlp/internal/core"
	"ldlp/internal/layers"
	"ldlp/internal/telemetry"
)

// ICMP echo: the smallest of small-message protocols (§1 name-checks
// ICMP explicitly). Enough for ping — echo request/reply with id,
// sequence and payload — flowing through the same LDLP-schedulable
// receive path as TCP and UDP.

const (
	icmpEchoReply   = 0
	icmpEchoRequest = 8
	icmpHeaderLen   = 8
)

// PingReply records one received echo reply.
type PingReply struct {
	From    layers.IPAddr
	ID, Seq uint16
	Payload []byte
}

// Ping sends an ICMP echo request. Replies are collected on the host;
// retrieve them with PingReplies after pumping the network. Pump-side:
// the request is built on the pump's transport shard.
//
//ldlp:quiescent
func (h *Host) Ping(dst layers.IPAddr, id, seq uint16, payload []byte) {
	h.pumpShard().sendICMP(dst, icmpEchoRequest, id, seq, payload)
}

// PingReplies drains the received echo replies.
func (h *Host) PingReplies() []PingReply {
	h.icmpMu.Lock()
	defer h.icmpMu.Unlock()
	out := h.pingReplies
	h.pingReplies = nil
	return out
}

func (ts *transportShard) sendICMP(dst layers.IPAddr, typ byte, id, seq uint16, payload []byte) {
	m := ts.pool.FromBytes(payload)
	mm, hdr := m.Prepend(icmpHeaderLen)
	hdr[0] = typ
	hdr[1] = 0 // code
	binary.BigEndian.PutUint16(hdr[4:6], id)
	binary.BigEndian.PutUint16(hdr[6:8], seq)
	var acc checksum.Accumulator
	acc.Add(hdr)
	acc.Add(payload)
	binary.BigEndian.PutUint16(hdr[2:4], acc.Sum16())
	ts.ipOutput(mm, layers.ProtoICMP, dst)
}

// icmpInput is the receive-path ICMP layer: validates the checksum,
// answers echo requests, records echo replies. Echo replies are sent
// lock-free on the receiving shard (echo has no connection state); only
// the host-wide reply list — which fans in from every shard — takes a
// lock, held just for the append. A declared cold step: echo handling
// builds reply payloads and sits outside the zero-alloc contract.
//
//ldlp:coldpath
func (rx *rxPath) icmpInput(p *Packet, emit core.Emit[*Packet]) {
	h := rx.h
	buf := p.M.Contiguous()
	if len(buf) < icmpHeaderLen {
		inc(&h.Counters.BadICMP)
		rx.reject(p, rx.icmpin, telemetry.DropBadICMP)
		return
	}
	if checksum.Simple(buf) != 0 {
		inc(&h.Counters.BadICMP)
		rx.reject(p, rx.icmpin, telemetry.DropBadICMP)
		return
	}
	typ := buf[0]
	id := binary.BigEndian.Uint16(buf[4:6])
	seq := binary.BigEndian.Uint16(buf[6:8])
	payload := append([]byte(nil), buf[icmpHeaderLen:]...)
	switch typ {
	case icmpEchoRequest:
		inc(&h.Counters.EchoRequests)
		rx.ts.sendICMP(p.IP.Src, icmpEchoReply, id, seq, payload)
	case icmpEchoReply:
		inc(&h.Counters.EchoReplies)
		h.icmpMu.Lock()
		h.pingReplies = append(h.pingReplies, PingReply{From: p.IP.Src, ID: id, Seq: seq, Payload: payload})
		h.icmpMu.Unlock()
	default:
		inc(&h.Counters.BadICMP)
		rx.reject(p, rx.icmpin, telemetry.DropBadICMP)
		return
	}
	emit(rx.sock, p)
}
