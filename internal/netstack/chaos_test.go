package netstack

// Chaos suite: every impairment preset crossed with every processing
// discipline and shard count, plus targeted regression tests for the
// recovery-path bugs the injector exposed (unbounded TCP retransmission,
// reassembly-state exhaustion, malformed-fragment veto) and property
// tests that corruption is always caught by a checksum before it can
// reach application data. Run with -race; the short mode trims the soak
// matrix to a CI-sized smoke.

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/faults"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
)

type chaosCombo struct {
	name   string
	disc   core.Discipline
	shards int
}

// Conventional with RxShards > 1 is rejected by construction, so the
// matrix is the three legal corners.
var chaosCombos = []chaosCombo{
	{"conventional", core.Conventional, 1},
	{"ldlp", core.LDLP, 1},
	{"ldlp-rx4", core.LDLP, 4},
}

// chaosFrame hand-crafts one Ethernet/IPv4 frame addressed to dst,
// returning the mbuf chain ready for Host.deliver. flags/fragOff are the
// raw IP fields (fragOff in bytes), so tests can forge arbitrary
// fragments, including malformed ones a well-behaved sender never emits.
func chaosFrame(src, dst layers.IPAddr, proto byte, id uint16, flags byte, fragOff int, payload []byte) *mbuf.Mbuf {
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + len(payload),
		ID:       id, TTL: 64, Protocol: proto, Src: src, Dst: dst,
		Flags: flags, FragOff: fragOff,
	}
	m := mbuf.FromBytes(payload)
	m, hdr := m.Prepend(layers.IPv4MinLen)
	ip.Encode(hdr)
	eth := layers.Ethernet{Dst: MACFor(dst), Src: MACFor(src), EtherType: layers.EtherTypeIPv4}
	m, hdr = m.Prepend(layers.EthernetLen)
	eth.Encode(hdr)
	return m
}

func TestChaosSoak(t *testing.T) {
	presets := faults.Presets()
	names := faults.PresetNames()
	if testing.Short() {
		// CI smoke: one pure-loss mix, one mutation-heavy mix, and the
		// everything-at-once mix.
		names = []string{"bernoulli", "corrupt", "all"}
	}
	for _, name := range names {
		for _, combo := range chaosCombos {
			t.Run(name+"/"+combo.name, func(t *testing.T) {
				runChaosScenario(t, presets[name], combo)
			})
		}
	}
}

// runChaosScenario drives TCP, small-UDP, and fragmented-UDP traffic
// between two hosts whose ingress links are both impaired by cfg, then
// checks the end-to-end invariants: the TCP stream arrives byte-
// identical and in order, every delivered datagram is byte-identical to
// one that was sent, every injected fault shows up in an impairment or
// drop counter, and no mbuf leaks.
func runChaosScenario(t *testing.T, cfg faults.Config, combo chaosCombo) {
	t.Helper()
	mbuf.ResetPool()
	n := NewNet()
	mkOpts := func(shards int) Options {
		o := DefaultOptions(combo.disc)
		o.MTU = 600 // small enough that TCP segments and big datagrams fragment
		o.RxShards = shards
		return o
	}
	a := n.AddHost("client", ipA, mkOpts(1))
	b := n.AddHost("server", ipB, mkOpts(combo.shards))
	t.Cleanup(n.Close)
	injs := n.ImpairAll(cfg, 0xC0FFEE)

	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	cli := a.DialTCP(ipB, 80)
	var srv *TCPSock
	for i := 0; i < 400 && srv == nil; i++ {
		n.Tick(0.05)
		srv = l.Accept()
	}
	if srv == nil {
		t.Fatalf("TCP handshake never completed (client state %s, err %v)", cli.State(), cli.Err())
	}

	const (
		uFlows   = 3
		rounds   = 40
		bigEvery = 8
		bigSize  = 2500 // 5 fragments at MTU 600
	)
	var utx, urx [uFlows]*UDPSock
	for f := 0; f < uFlows; f++ {
		if utx[f], err = a.UDPSocket(uint16(1000 + f)); err != nil {
			t.Fatal(err)
		}
		if urx[f], err = b.UDPSocket(uint16(2000 + f)); err != nil {
			t.Fatal(err)
		}
	}
	bigTx, _ := a.UDPSocket(3000)
	bigRx, _ := b.UDPSocket(3100)

	sentSmall := make(map[string]bool)
	sentBig := make(map[byte]bool)
	var gotSmall []string
	var gotBig [][]byte
	var want, got bytes.Buffer
	rbuf := make([]byte, 8192)
	drain := func() {
		for {
			nr := srv.Recv(rbuf)
			if nr == 0 {
				break
			}
			got.Write(rbuf[:nr])
		}
		for f := 0; f < uFlows; f++ {
			for {
				d, ok := urx[f].Recv()
				if !ok {
					break
				}
				gotSmall = append(gotSmall, string(d.Data))
			}
		}
		for {
			d, ok := bigRx.Recv()
			if !ok {
				break
			}
			gotBig = append(gotBig, d.Data)
		}
	}

	for r := 0; r < rounds; r++ {
		chunk := make([]byte, 300)
		for i := range chunk {
			chunk[i] = byte(r*31 + i)
		}
		want.Write(chunk)
		if err := cli.Send(chunk); err != nil {
			t.Fatalf("round %d: TCP send failed: %v", r, err)
		}
		for f := 0; f < uFlows; f++ {
			msg := fmt.Sprintf("flow%d-round%03d", f, r)
			sentSmall[msg] = true
			utx[f].SendTo(ipB, uint16(2000+f), []byte(msg))
		}
		if r%bigEvery == 0 {
			v := byte(0x40 + r/bigEvery)
			sentBig[v] = true
			bigTx.SendTo(ipB, 3100, bytes.Repeat([]byte{v}, bigSize))
		}
		n.Tick(0.05)
		drain()
	}

	// Settle: the drive phase lasted ~2s of simulated time (past every
	// preset's partition window), so from here retransmission alone must
	// complete the stream. The budget is far beyond any preset's loss
	// rate but far too short to mask a wedged connection.
	for i := 0; i < 600 && got.Len() < want.Len(); i++ {
		if cli.Err() != nil || srv.Err() != nil {
			t.Fatalf("TCP connection died under impairment: cli=%v srv=%v", cli.Err(), srv.Err())
		}
		n.Tick(0.25)
		drain()
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		i := 0
		for i < got.Len() && i < want.Len() && got.Bytes()[i] == want.Bytes()[i] {
			i++
		}
		t.Fatalf("TCP stream mismatch: got %d bytes, want %d, first divergence at %d", got.Len(), want.Len(), i)
	}

	// Flush: past the reassembly timeout so stale partial datagrams
	// expire, plus slack for delayed frames (and any responses they
	// provoke) to land.
	n.Tick(fragTimeout + 1)
	for i := 0; i < 4; i++ {
		n.Tick(0.5)
	}
	drain()
	if h := n.HeldFrames(); h != 0 {
		t.Errorf("%d frames still held by delay impairment after flush", h)
	}
	if fr := b.numFrags(); fr != 0 {
		t.Errorf("%d partial datagrams survived the reassembly timeout", fr)
	}

	// Datagram integrity: anything delivered must be byte-identical to
	// something sent; copies beyond the first only when duplication is on
	// (one duplicate per frame, so never more than two).
	dupLimit := 1
	if cfg.DupProb > 0 {
		dupLimit = 2
	}
	counts := make(map[string]int)
	for _, m := range gotSmall {
		if !sentSmall[m] {
			t.Errorf("datagram %q arrived but was never sent intact", m)
		}
		counts[m]++
	}
	for m, c := range counts {
		if c > dupLimit {
			t.Errorf("datagram %q delivered %d times (limit %d for this mix)", m, c, dupLimit)
		}
	}
	for _, d := range gotBig {
		if len(d) != bigSize {
			t.Errorf("reassembled datagram has %d bytes, want %d", len(d), bigSize)
			continue
		}
		v := d[0]
		if !sentBig[v] {
			t.Errorf("reassembled datagram starts with unknown marker %#x", v)
			continue
		}
		for i, x := range d {
			if x != v {
				t.Errorf("reassembled datagram corrupt at byte %d: %#x != %#x", i, x, v)
				break
			}
		}
	}

	// Fault accounting: drop attribution is exact, and every frame the
	// injector passed (originals minus drops, plus duplicates) was
	// counted in by the host — nothing vanishes without a counter.
	hosts := map[layers.IPAddr]*Host{ipA: a, ipB: b}
	for ip, inj := range injs {
		s := inj.Stats()
		if s.Dropped != s.LossDrops+s.BurstDrops+s.PartitionDrops {
			t.Errorf("%v: drop attribution broken: %+v", ip, s)
		}
		if in := hosts[ip].Counters.FramesIn; in != s.Frames-s.Dropped+s.Duplicated {
			t.Errorf("%v: FramesIn=%d, want frames %d - dropped %d + duplicated %d",
				ip, in, s.Frames, s.Dropped, s.Duplicated)
		}
	}
	checkNoLeaks(t)
}

// TestChaosPartitionTimesOutTCP is the regression test for unbounded
// retransmission: before tcpMaxRetries, a connection severed by a
// partition retransmitted its head segment forever, pinning the PCB and
// its send queue. Now it must give up, error the socket, and reap the
// PCB.
func TestChaosPartitionTimesOutTCP(t *testing.T) {
	n, a, b := twoHosts(t, core.LDLP)
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	cli := a.DialTCP(ipB, 80)
	n.RunUntilIdle()
	srv := l.Accept()
	if srv == nil || !cli.Established() {
		t.Fatal("handshake failed on a clean link")
	}

	// Sever the link in both directions for the rest of the test.
	cut := faults.Config{Partitions: []faults.Window{{From: 0, To: 1e9}}}
	n.Impair(ipA, cut, 1)
	n.Impair(ipB, cut, 2)

	if err := cli.Send([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && cli.Err() == nil; i++ {
		n.Tick(0.5)
	}
	if cli.Err() != ErrTimeout {
		t.Fatalf("connection never gave up: err=%v state=%s retransmits=%d",
			cli.Err(), cli.State(), a.Counters.Retransmits)
	}
	if err := cli.Send([]byte("more")); err != ErrTimeout {
		t.Errorf("Send after timeout = %v, want ErrTimeout", err)
	}
	if got := a.numPCBs(); got != 0 {
		t.Errorf("timed-out connection still pins %d PCBs", got)
	}
	if got := a.Counters.TimeoutDrops; got != 1 {
		t.Errorf("TimeoutDrops = %d, want 1", got)
	}
	if got := a.Counters.Retransmits; got != tcpMaxRetries {
		t.Errorf("gave up after %d retransmits, want exactly %d", got, tcpMaxRetries)
	}
	checkNoLeaks(t)
}

// TestChaosFragStateCapAndEviction is the regression test for
// reassembly-state exhaustion: a flood of first-fragments with distinct
// IDs used to pin one fragState each for the full 30s timeout. The cap
// now evicts the oldest partial datagram, counting it as a reassembly
// timeout.
func TestChaosFragStateCapAndEviction(t *testing.T) {
	n, _, b := twoHosts(t, core.Conventional)
	const flood = 3 * maxFragStates
	for i := 0; i < flood; i++ {
		b.deliver(chaosFrame(ipA, ipB, layers.ProtoUDP, uint16(i+1), 0x1, 0,
			bytes.Repeat([]byte{byte(i)}, 64)))
	}
	if got := b.numFrags(); got != maxFragStates {
		t.Errorf("fragment state grew to %d entries, want cap %d", got, maxFragStates)
	}
	if got := b.Counters.ReassemblyTimeouts; got != flood-maxFragStates {
		t.Errorf("evictions counted as %d reassembly timeouts, want %d", got, flood-maxFragStates)
	}
	n.Tick(fragTimeout + 1)
	if got := b.numFrags(); got != 0 {
		t.Errorf("%d partial datagrams survived the timeout", got)
	}
	if got := b.Counters.ReassemblyTimeouts; got != flood {
		t.Errorf("ReassemblyTimeouts = %d after expiry, want %d", got, flood)
	}
	checkNoLeaks(t)
}

// TestChaosMalformedFragmentDropsAlone is the regression test for the
// malformed-fragment veto: a fragment claiming bytes past the 64 KB
// datagram limit used to tear down whatever reassembly state shared its
// key, letting one spoofed fragment kill any in-progress datagram. It
// must drop alone.
func TestChaosMalformedFragmentDropsAlone(t *testing.T) {
	_, _, b := twoHosts(t, core.Conventional)
	rx, err := b.UDPSocket(5000)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 900)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	seg := make([]byte, layers.UDPLen)
	uh := layers.UDP{SrcPort: 9, DstPort: 5000}
	uh.Encode(seg, payload, ipA, ipB)
	whole := append(seg, payload...)

	const id = 7
	b.deliver(chaosFrame(ipA, ipB, layers.ProtoUDP, id, 0x1, 0, whole[:576]))
	if b.numFrags() != 1 {
		t.Fatal("first fragment did not open reassembly state")
	}
	// Spoofed fragment with the same key, claiming bytes past 64 KB.
	b.deliver(chaosFrame(ipA, ipB, layers.ProtoUDP, id, 0, 65528, make([]byte, 16)))
	if got := b.Counters.BadIP; got != 1 {
		t.Errorf("malformed fragment not counted: BadIP = %d, want 1", got)
	}
	if b.numFrags() != 1 {
		t.Fatal("malformed fragment tore down legitimate reassembly state")
	}
	b.deliver(chaosFrame(ipA, ipB, layers.ProtoUDP, id, 0, 576, whole[576:]))
	d, ok := rx.Recv()
	if !ok {
		t.Fatal("datagram never completed after a malformed fragment shared its key")
	}
	if !bytes.Equal(d.Data, payload) {
		t.Error("reassembled payload corrupted")
	}
	if got := b.Counters.Reassembled; got != 1 {
		t.Errorf("Reassembled = %d, want 1", got)
	}
	checkNoLeaks(t)
}

// TestChaosChecksumCorruptionUDP: flipping one bit of a UDP frame in
// flight must never corrupt a payload the application sees — each frame
// is either delivered byte-identical (the flip hit a field nothing
// validates, like the Ethernet source) or counted as exactly one
// checksum drop. The per-frame ledger must balance.
func TestChaosChecksumCorruptionUDP(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mbuf.ResetPool()
			n := NewNet()
			a := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
			b := n.AddHost("b", ipB, DefaultOptions(core.Conventional))
			t.Cleanup(n.Close)
			inj := n.Impair(ipB, faults.Config{CorruptProb: 0.6}, seed)
			_ = a
			tx, _ := a.UDPSocket(1000)
			rx, _ := b.UDPSocket(2000)
			rx.QueueLimit = 1 << 20
			const N = 300
			sent := make(map[string]bool, N)
			for i := 0; i < N; i++ {
				msg := fmt.Sprintf("probe-%04d-seed%d", i, seed)
				sent[msg] = true
				tx.SendTo(ipB, 2000, []byte(msg))
			}
			n.RunUntilIdle()
			received := int64(0)
			for {
				d, ok := rx.Recv()
				if !ok {
					break
				}
				if !sent[string(d.Data)] {
					t.Errorf("corrupt payload reached the socket: %q", d.Data)
				}
				received++
			}
			c := &b.Counters
			s := inj.Stats()
			if c.FramesIn != s.Frames {
				t.Errorf("corruption dropped frames at the link: FramesIn=%d, injector saw %d", c.FramesIn, s.Frames)
			}
			bad := c.BadEther + c.BadIP + c.BadUDP + c.NoSocket
			if received+bad != c.FramesIn {
				t.Errorf("frame ledger broken: %d delivered + %d bad != %d in", received, bad, c.FramesIn)
			}
			if s.Corrupted == 0 || bad == 0 {
				t.Errorf("expected corruption both injected and detected: corrupted=%d bad=%d", s.Corrupted, bad)
			}
			checkNoLeaks(t)
		})
	}
}

// TestChaosChecksumCorruptionTCP: under random bit flips the stream
// must still arrive byte-identical — every flip is either caught by a
// checksum (BadTCP/BadIP/BadEther) and repaired by retransmission, or
// hit an unvalidated field and changed nothing.
func TestChaosChecksumCorruptionTCP(t *testing.T) {
	for _, combo := range chaosCombos {
		t.Run(combo.name, func(t *testing.T) {
			mbuf.ResetPool()
			n := NewNet()
			optA := DefaultOptions(combo.disc)
			a := n.AddHost("a", ipA, optA)
			optB := DefaultOptions(combo.disc)
			optB.RxShards = combo.shards
			b := n.AddHost("b", ipB, optB)
			t.Cleanup(n.Close)
			injs := n.ImpairAll(faults.Config{CorruptProb: 0.2}, 42)

			l, err := b.ListenTCP(80)
			if err != nil {
				t.Fatal(err)
			}
			cli := a.DialTCP(ipB, 80)
			var srv *TCPSock
			for i := 0; i < 400 && srv == nil; i++ {
				n.Tick(0.05)
				srv = l.Accept()
			}
			if srv == nil {
				t.Fatalf("handshake never completed under corruption (client %s)", cli.State())
			}
			var want, got bytes.Buffer
			rbuf := make([]byte, 4096)
			for r := 0; r < 24; r++ {
				chunk := make([]byte, 400)
				for i := range chunk {
					chunk[i] = byte(r ^ i)
				}
				want.Write(chunk)
				if err := cli.Send(chunk); err != nil {
					t.Fatal(err)
				}
				n.Tick(0.05)
				for nr := srv.Recv(rbuf); nr > 0; nr = srv.Recv(rbuf) {
					got.Write(rbuf[:nr])
				}
			}
			for i := 0; i < 600 && got.Len() < want.Len(); i++ {
				if cli.Err() != nil || srv.Err() != nil {
					t.Fatalf("connection died: cli=%v srv=%v", cli.Err(), srv.Err())
				}
				n.Tick(0.1)
				for nr := srv.Recv(rbuf); nr > 0; nr = srv.Recv(rbuf) {
					got.Write(rbuf[:nr])
				}
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("stream corrupted: got %d bytes, want %d", got.Len(), want.Len())
			}
			var corrupted, caught int64
			for _, inj := range injs {
				corrupted += inj.Stats().Corrupted
			}
			for _, h := range []*Host{a, b} {
				caught += h.Counters.BadTCP + h.Counters.BadIP + h.Counters.BadEther
			}
			if corrupted == 0 || caught == 0 {
				t.Errorf("expected corruption injected and caught: corrupted=%d caught=%d", corrupted, caught)
			}
			checkNoLeaks(t)
		})
	}
}

// TestChaosChecksumCorruptionFragments: bit flips on the fragment path.
// A flip in a fragment's IP header strands the datagram (reassembly
// timeout); a flip in its payload survives reassembly but must then be
// caught by the UDP checksum. Either way the application sees only
// intact datagrams, and every loss is attributed: missing datagrams ==
// reassembly timeouts + post-reassembly checksum drops.
func TestChaosChecksumCorruptionFragments(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	mkOpts := func() Options {
		o := DefaultOptions(core.Conventional)
		o.MTU = 600
		return o
	}
	a := n.AddHost("a", ipA, mkOpts())
	b := n.AddHost("b", ipB, mkOpts())
	t.Cleanup(n.Close)
	inj := n.Impair(ipB, faults.Config{CorruptProb: 0.25}, 7)

	tx, _ := a.UDPSocket(1000)
	rx, _ := b.UDPSocket(2000)
	rx.QueueLimit = 1 << 20
	const N = 60
	const size = 2000 // 4 fragments at MTU 600
	sent := make(map[string]bool, N)
	for i := 0; i < N; i++ {
		d := make([]byte, size)
		for j := range d {
			d[j] = byte(i*7 + j)
		}
		sent[string(d)] = true
		tx.SendTo(ipB, 2000, d)
	}
	n.RunUntilIdle()
	n.Tick(fragTimeout + 1) // expire stranded partials
	received := int64(0)
	for {
		d, ok := rx.Recv()
		if !ok {
			break
		}
		if !sent[string(d.Data)] {
			t.Error("corrupt reassembled payload reached the socket")
		}
		received++
	}
	c := &b.Counters
	s := inj.Stats()
	if c.FramesIn != s.Frames {
		t.Errorf("corruption dropped frames at the link: FramesIn=%d, injector saw %d", c.FramesIn, s.Frames)
	}
	if b.numFrags() != 0 {
		t.Errorf("%d partial datagrams survived expiry", b.numFrags())
	}
	if missing := N - received; missing != c.ReassemblyTimeouts+c.BadUDP {
		t.Errorf("datagram ledger broken: %d missing, %d timeouts + %d bad UDP",
			missing, c.ReassemblyTimeouts, c.BadUDP)
	}
	if s.Corrupted == 0 || c.BadIP+c.BadUDP+c.BadEther == 0 {
		t.Errorf("expected corruption injected and detected: %+v, counters %+v", s, c)
	}
	checkNoLeaks(t)
}

// TestChaosDropCountersSharded extends the race-stress suite over the
// two drop paths the shard workers hit concurrently — listener backlog
// overflow and UDP queue overflow — while another goroutine reads the
// counters mid-pump via the atomic accessors. Exact counts are asserted;
// -race checks the accessors.
func TestChaosDropCountersSharded(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	optB := DefaultOptions(core.LDLP)
	optB.RxShards = 4
	b := n.AddHost("server", ipB, optB)
	t.Cleanup(n.Close)
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}
	us, err := b.UDPSocket(7000)
	if err != nil {
		t.Fatal(err)
	}
	us.QueueLimit = 4

	const clients = 20
	var hosts []*Host
	for i := 0; i < clients; i++ {
		ip := layers.IPAddr{10, 0, 1, byte(i + 1)}
		hosts = append(hosts, n.AddHost(fmt.Sprintf("c%d", i), ip, DefaultOptions(core.Conventional)))
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			_ = l.DroppedCount() + us.DroppedCount()
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	for i, h := range hosts {
		h.DialTCP(ipB, 80)
		s, err := h.UDPSocket(uint16(4000 + i))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 3; j++ {
			s.SendTo(ipB, 7000, []byte{byte(i), byte(j)})
		}
	}
	n.RunUntilIdle()
	close(done)
	wg.Wait()

	if got, want := l.DroppedCount(), int64(clients-tcpBacklog); got != want {
		t.Errorf("listener drops = %d, want %d (backlog %d, %d SYNs)", got, want, tcpBacklog, clients)
	}
	if got, want := us.DroppedCount(), int64(clients*3-us.QueueLimit); got != want {
		t.Errorf("socket drops = %d, want %d (queue %d, %d datagrams)", got, want, us.QueueLimit, clients*3)
	}
	checkNoLeaks(t)
}

// TestChaosConcurrentAcceptHandoff exercises the accept hand-off while
// shard workers are actually running: an accept goroutine spins on the
// listener (the one declared worker-concurrent socket operation) while
// the pump delivers staggered handshakes into a 4-shard server. The
// race detector is the assertion here — it proves the backlog lock plus
// the PCB's atomic estab flag are the only state Accept shares with the
// shards — and the data exchange afterwards proves every handed-off
// socket is live.
func TestChaosConcurrentAcceptHandoff(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	t.Cleanup(n.Close)
	a := n.AddHost("client", ipA, DefaultOptions(core.LDLP))
	b := n.AddHost("server", ipB, ShardedOptions(4))
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}

	const conns = 12
	accepted := make(chan *TCPSock, conns)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		got := 0
		for got < conns {
			if s := l.Accept(); s != nil {
				accepted <- s
				got++
				continue
			}
			_ = l.DroppedCount()
			select {
			case <-done:
				return
			default:
				runtime.Gosched() // share the CPU with the pump on small boxes
			}
		}
	}()

	clis := make([]*TCPSock, conns)
	for c := range clis {
		clis[c] = a.DialTCP(ipB, 80)
		n.Tick(0.01) // stagger: hand-offs happen while later SYNs are in flight
	}
	for i := 0; i < 400 && len(accepted) < conns; i++ {
		n.Tick(0.05)
	}
	// Everything is established by now; what may be missing is CPU time
	// for the accept goroutine (GOMAXPROCS=1 starves a spinning peer).
	for i := 0; i < 100_000 && len(accepted) < conns; i++ {
		runtime.Gosched()
	}
	close(done)
	wg.Wait()
	if len(accepted) != conns {
		t.Fatalf("accepted %d/%d connections", len(accepted), conns)
	}

	// Quiescent now: every handed-off socket must carry data both ways.
	srvs := make([]*TCPSock, 0, conns)
	for len(accepted) > 0 {
		srvs = append(srvs, <-accepted)
	}
	for i, s := range srvs {
		if err := s.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("server socket %d: %v", i, err)
		}
	}
	n.RunUntilIdle()
	total := 0
	var buf [4]byte
	for _, cli := range clis {
		total += cli.Recv(buf[:])
	}
	if total != conns {
		t.Errorf("clients received %d bytes from handed-off sockets, want %d", total, conns)
	}
	checkNoLeaks(t)
}

// TestChaosCloseDuringRetransmitAcrossShards wedges in-flight data with
// a full partition, closes the client sockets mid-retransmission, and
// lets the retry budget run out: every connection must be reaped by the
// timeout (no PCB survives on any shard), with the loss accounted.
func TestChaosCloseDuringRetransmitAcrossShards(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	t.Cleanup(n.Close)
	a := n.AddHost("client", ipA, ShardedOptions(2))
	b := n.AddHost("server", ipB, ShardedOptions(4))
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}

	const conns = 6
	clis := make([]*TCPSock, conns)
	for c := range clis {
		clis[c] = a.DialTCP(ipB, 80)
	}
	srvs := make([]*TCPSock, 0, conns)
	for i := 0; i < 200 && len(srvs) < conns; i++ {
		n.Tick(0.05)
		for s := l.Accept(); s != nil; s = l.Accept() {
			srvs = append(srvs, s)
		}
	}
	if len(srvs) != conns {
		t.Fatalf("accepted %d/%d", len(srvs), conns)
	}

	// Partition everything, then send: the data can only retransmit.
	n.Loss = func(layers.IPAddr, []byte) bool { return true }
	for c, cli := range clis {
		if err := cli.Send([]byte{byte(c), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		n.Tick(0.1) // a few RTOs fire; retransmission is in progress
	}
	if a.Counters.Retransmits == 0 {
		t.Fatal("partition produced no retransmits; the test lost its premise")
	}
	for _, cli := range clis {
		cli.Close() // close with unacked data and the wire dead
	}
	for i := 0; i < 700 && a.numPCBs() > 0; i++ {
		n.Tick(0.25)
	}
	if got := a.numPCBs(); got != 0 {
		t.Errorf("%d client PCBs survived close + retry exhaustion", got)
	}
	if got := a.Counters.TimeoutDrops; got != conns {
		t.Errorf("TimeoutDrops = %d, want %d", got, conns)
	}
	for _, cli := range clis {
		if cli.Err() == nil {
			t.Error("closed-and-timed-out connection reports no error")
		}
	}
	n.Loss = nil
	checkNoLeaks(t)
}

// TestChaosListenerTeardownAcrossShards closes a listener while an
// accept goroutine is spinning and earlier handshakes are still being
// handed off shard to shard. Connections that made the backlog must
// survive and carry data; SYNs arriving after the teardown must be
// counted NoSocket and the orphaned dials must time out rather than
// wedge.
func TestChaosListenerTeardownAcrossShards(t *testing.T) {
	mbuf.ResetPool()
	n := NewNet()
	t.Cleanup(n.Close)
	a := n.AddHost("client", ipA, DefaultOptions(core.LDLP))
	b := n.AddHost("server", ipB, ShardedOptions(4))
	l, err := b.ListenTCP(80)
	if err != nil {
		t.Fatal(err)
	}

	const early, late = 4, 3
	accepted := make(chan *TCPSock, early+late)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if s := l.Accept(); s != nil {
				accepted <- s
			}
			select {
			case <-done:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	earlyClis := make([]*TCPSock, early)
	for c := range earlyClis {
		earlyClis[c] = a.DialTCP(ipB, 80)
	}
	for i := 0; i < 200 && len(accepted) < early; i++ {
		n.Tick(0.05)
	}
	// Teardown between ticks (the listener map is pump-owned state); the
	// accept goroutine keeps hammering the dead listener's backlog lock.
	l.Close()
	lateClis := make([]*TCPSock, late)
	for c := range lateClis {
		lateClis[c] = a.DialTCP(ipB, 80)
	}
	deadline := 0
	for ; deadline < 800; deadline++ {
		n.Tick(0.25)
		alive := false
		for _, cli := range lateClis {
			if cli.Err() == nil {
				alive = true
			}
		}
		if !alive {
			break
		}
	}
	for i := 0; i < 100_000 && len(accepted) < early; i++ {
		runtime.Gosched()
	}
	close(done)
	wg.Wait()

	survivors := len(accepted)
	if survivors != early {
		t.Fatalf("accepted %d connections, want the %d pre-teardown ones", survivors, early)
	}
	if b.Counters.NoSocket == 0 {
		t.Error("post-teardown SYNs were not counted NoSocket")
	}
	for c, cli := range lateClis {
		if cli.Err() == nil {
			t.Errorf("late dial %d never timed out (state %s)", c, cli.State())
		}
	}
	// The survivors still work.
	for i := 0; i < survivors; i++ {
		s := <-accepted
		if err := s.Send([]byte("ok")); err != nil {
			t.Errorf("pre-teardown socket broken: %v", err)
		}
	}
	n.RunUntilIdle()
	got := 0
	buf := make([]byte, 8)
	for _, cli := range earlyClis {
		got += cli.Recv(buf)
	}
	if got != early*2 {
		t.Errorf("pre-teardown connections delivered %d bytes, want %d", got, early*2)
	}
	checkNoLeaks(t)
}
