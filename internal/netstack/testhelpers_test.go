package netstack

// Test-side views over the per-shard transport state. Production code
// never sums across shards outside the declared hand-off points, but
// tests assert on whole-host totals (PCBs leaked, partial datagrams
// held, frames queued) regardless of which shard holds them.

// numPCBs counts live PCBs across all transport shards.
func (h *Host) numPCBs() int {
	n := 0
	for _, ts := range h.tshards {
		n += ts.pcbs.Len()
	}
	return n
}

// numFrags counts partial datagrams held across all transport shards.
func (h *Host) numFrags() int {
	n := 0
	for _, ts := range h.tshards {
		n += ts.fragsLen()
	}
	return n
}

// findPCB locates a tuple's PCB on whichever shard owns it.
func (h *Host) findPCB(t fourTuple) *tcpPCB {
	for _, ts := range h.tshards {
		if pcb, ok := ts.pcbs.Lookup(t); ok {
			return pcb
		}
	}
	return nil
}

// queuedTx counts frames parked in transmit queues across all shards.
func (h *Host) queuedTx() int {
	n := 0
	for _, ts := range h.tshards {
		n += len(ts.txq)
	}
	return n
}
