package netstack

import (
	"fmt"
	"testing"

	"ldlp/internal/core"
	"ldlp/internal/dispatch"
	"ldlp/internal/layers"
	"ldlp/internal/mbuf"
	"ldlp/internal/telemetry"
)

// buildBareAck hand-builds the wire bytes of a bare ACK from a to b's
// established connection, with Seq == b.rcvNxt and Ack == b.sndUna so
// processing it leaves b's PCB exactly as it was: the segment takes the
// header-prediction fast path, advances nothing, and is dropped — the
// steady-state receive-path cycle the paper's §2 trace measures.
func buildBareAck(bpcb *tcpPCB, src, dst layers.IPAddr) []byte {
	th := layers.TCP{
		SrcPort: bpcb.tuple.rport,
		DstPort: bpcb.tuple.lport,
		Seq:     bpcb.rcvNxt,
		Ack:     bpcb.sndUna,
		Flags:   layers.TCPAck,
		Window:  tcpWindow,
	}
	buf := make([]byte, layers.EthernetLen+layers.IPv4MinLen+layers.TCPMinLen)
	eth := layers.Ethernet{Dst: MACFor(dst), Src: MACFor(src), EtherType: layers.EtherTypeIPv4}
	eth.Encode(buf)
	ip := layers.IPv4{
		TotalLen: layers.IPv4MinLen + layers.TCPMinLen,
		TTL:      64, Protocol: layers.ProtoTCP, Src: src, Dst: dst,
	}
	ip.Encode(buf[layers.EthernetLen:])
	th.Encode(buf[layers.EthernetLen+layers.IPv4MinLen:], nil, src, dst)
	return buf
}

// BenchmarkHotPathInject measures the full steady-state receive path —
// frame to mbuf chain, device/ether/ip decode, TCP header prediction,
// chain free, wrapper recycle — and must report 0 allocs/op: the pooled
// mbuf shards and Packet recycling leave nothing for the collector on
// the hot path.
func BenchmarkHotPathInject(b *testing.B) {
	mbuf.ResetPool()
	n := NewNet()
	ha := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	hb := n.AddHost("b", ipB, DefaultOptions(core.Conventional))
	if _, err := hb.ListenTCP(80); err != nil {
		b.Fatal(err)
	}
	s := ha.DialTCP(ipB, 80)
	n.RunUntilIdle()
	if !s.Established() {
		b.Fatal("handshake did not complete")
	}
	bpcb := hb.findPCB(fourTuple{raddr: ipA, rport: s.pcb.tuple.lport, lport: 80})
	ack := buildBareAck(bpcb, ipA, ipB)

	// Warm the pools (mbuf freelist, Packet sync.Pool) before measuring.
	for i := 0; i < 64; i++ {
		hb.deliver(mbuf.FromBytes(ack))
	}
	before := hb.Counters.TCPFastPath

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.deliver(mbuf.FromBytes(ack))
	}
	b.StopTimer()

	if got := hb.Counters.TCPFastPath - before; got != int64(b.N) {
		b.Fatalf("fast path took %d of %d segments", got, b.N)
	}
	if st := mbuf.PoolStats(); st.InUse != 0 {
		b.Fatalf("mbuf leak on hot path: %+v", st)
	}
}

// BenchmarkHotPathInjectTelemetryOff is BenchmarkHotPathInject with the
// global telemetry gate flipped off: the delta against the default run
// is the cost of the disabled-path branches, which should be noise
// (~0%). The enabled run itself must stay within a couple percent of
// the pre-telemetry baseline — the conventional call-through path
// records no events at all, so both variants exercise the same code up
// to the gate checks.
func BenchmarkHotPathInjectTelemetryOff(b *testing.B) {
	prev := telemetry.Enable(false)
	defer telemetry.Enable(prev)
	mbuf.ResetPool()
	n := NewNet()
	ha := n.AddHost("a", ipA, DefaultOptions(core.Conventional))
	hb := n.AddHost("b", ipB, DefaultOptions(core.Conventional))
	if _, err := hb.ListenTCP(80); err != nil {
		b.Fatal(err)
	}
	s := ha.DialTCP(ipB, 80)
	n.RunUntilIdle()
	if !s.Established() {
		b.Fatal("handshake did not complete")
	}
	bpcb := hb.findPCB(fourTuple{raddr: ipA, rport: s.pcb.tuple.lport, lport: 80})
	ack := buildBareAck(bpcb, ipA, ipB)

	for i := 0; i < 64; i++ {
		hb.deliver(mbuf.FromBytes(ack))
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.deliver(mbuf.FromBytes(ack))
	}
	b.StopTimer()

	if st := mbuf.PoolStats(); st.InUse != 0 {
		b.Fatalf("mbuf leak on hot path: %+v", st)
	}
}

// BenchmarkHotPathInjectLDLP is the same cycle under the LDLP schedule:
// deliver enqueues at the device layer and process() runs the batch.
func BenchmarkHotPathInjectLDLP(b *testing.B) {
	mbuf.ResetPool()
	n := NewNet()
	ha := n.AddHost("a", ipA, DefaultOptions(core.LDLP))
	hb := n.AddHost("b", ipB, DefaultOptions(core.LDLP))
	if _, err := hb.ListenTCP(80); err != nil {
		b.Fatal(err)
	}
	s := ha.DialTCP(ipB, 80)
	n.RunUntilIdle()
	if !s.Established() {
		b.Fatal("handshake did not complete")
	}
	bpcb := hb.findPCB(fourTuple{raddr: ipA, rport: s.pcb.tuple.lport, lport: 80})
	ack := buildBareAck(bpcb, ipA, ipB)

	for i := 0; i < 64; i++ {
		hb.deliver(mbuf.FromBytes(ack))
		hb.process()
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.deliver(mbuf.FromBytes(ack))
		hb.process()
	}
	b.StopTimer()

	if bh, ok := hb.Telemetry().Snapshot().Hist("ldlp-batch"); ok && bh.Count > 0 {
		b.ReportMetric(bh.Quantile(0.50), "p50-batch")
		b.ReportMetric(bh.Quantile(0.99), "p99-batch")
	}
	if st := mbuf.PoolStats(); st.InUse != 0 {
		b.Fatalf("mbuf leak on hot path: %+v", st)
	}
}

// BenchmarkHotPathInjectShards is the scaling smoke for the sharded
// transport path: the same steady-state fast-path cycle fanned across 8
// established connections, at RxShards 1, 2 and 4. Flows hash to their
// owning shards, so the workers touch their PCBs lock-free; the
// shards-hit metric reports how many shards the 8 flows actually
// covered. Wall-clock scaling tracks the host's physical core count —
// on a single-CPU box the workers timeslice and the curve is flat — but
// the invariants hold at every width: every segment takes the fast
// path, 0 allocs/op, and nothing leaks.
func BenchmarkHotPathInjectShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("rxshards=%d", shards), func(b *testing.B) {
			mbuf.ResetPool()
			n := NewNet()
			defer n.Close()
			ha := n.AddHost("a", ipA, DefaultOptions(core.LDLP))
			opts := DefaultOptions(core.LDLP)
			if shards > 1 {
				opts = ShardedOptions(shards)
			}
			hb := n.AddHost("b", ipB, opts)
			if _, err := hb.ListenTCP(80); err != nil {
				b.Fatal(err)
			}
			const conns = 8
			acks := make([][]byte, conns)
			for c := range acks {
				s := ha.DialTCP(ipB, 80)
				n.RunUntilIdle()
				if !s.Established() {
					b.Fatalf("handshake %d did not complete", c)
				}
				bpcb := hb.findPCB(fourTuple{raddr: ipA, rport: s.pcb.tuple.lport, lport: 80})
				acks[c] = buildBareAck(bpcb, ipA, ipB)
			}

			// Warm every flow's path (mbuf freelists, Packet pool, shard
			// queues) before measuring.
			for i := 0; i < 32*conns; i++ {
				hb.deliver(mbuf.FromBytes(acks[i%conns]))
			}
			hb.process()
			before := hb.Counters.TCPFastPath

			b.ReportAllocs()
			b.ResetTimer()
			// Pump cadence: bursts of 64 frames between process() calls,
			// the way Net's pump interleaves delivery and draining (the
			// single-threaded engine buffers at most InputLimit frames;
			// the sharded one backpressures in deliver).
			for i := 0; i < b.N; i++ {
				hb.deliver(mbuf.FromBytes(acks[i%conns]))
				if i&63 == 63 {
					hb.process()
				}
			}
			hb.process()
			b.StopTimer()

			if got := hb.Counters.TCPFastPath - before; got != int64(b.N) {
				b.Fatalf("fast path took %d of %d segments", got, b.N)
			}
			hit := 0
			for _, st := range hb.ShardTransportStats() {
				if st.TCPSegs > 0 {
					hit++
				}
			}
			b.ReportMetric(float64(hit), "shards-hit")
			if st := mbuf.PoolStats(); st.InUse != 0 {
				b.Fatalf("mbuf leak on hot path: %+v", st)
			}
		})
	}
}

// BenchmarkHotPathInjectDispatch is the shards=4 fast-path cycle under
// each dispatch policy: the per-frame policy cost (key derivation plus
// the shard decision — for load-aware, one atomic bucket bump and an
// indirection-table read) is the only thing that varies. Every variant
// must hold the hot-path contract: all segments on the fast path, 0
// allocs/op, no leaks.
func BenchmarkHotPathInjectDispatch(b *testing.B) {
	for _, pc := range []struct {
		name string
		mk   func() dispatch.Policy
	}{
		{"static", func() dispatch.Policy { return dispatch.Static{} }},
		{"loadaware", func() dispatch.Policy { return dispatch.NewLoadAware(4, dispatch.DefaultBuckets) }},
		{"rpcxid", func() dispatch.Policy { return dispatch.NewRPCDispatch(2049) }},
	} {
		b.Run(pc.name, func(b *testing.B) {
			mbuf.ResetPool()
			n := NewNet()
			defer n.Close()
			ha := n.AddHost("a", ipA, DefaultOptions(core.LDLP))
			opts := ShardedOptions(4)
			opts.Dispatch = pc.mk()
			hb := n.AddHost("b", ipB, opts)
			if _, err := hb.ListenTCP(80); err != nil {
				b.Fatal(err)
			}
			const conns = 8
			acks := make([][]byte, conns)
			for c := range acks {
				s := ha.DialTCP(ipB, 80)
				n.RunUntilIdle()
				if !s.Established() {
					b.Fatalf("handshake %d did not complete", c)
				}
				bpcb := hb.findPCB(fourTuple{raddr: ipA, rport: s.pcb.tuple.lport, lport: 80})
				acks[c] = buildBareAck(bpcb, ipA, ipB)
			}

			for i := 0; i < 32*conns; i++ {
				hb.deliver(mbuf.FromBytes(acks[i%conns]))
			}
			hb.process()
			before := hb.Counters.TCPFastPath

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hb.deliver(mbuf.FromBytes(acks[i%conns]))
				if i&63 == 63 {
					hb.process()
				}
			}
			hb.process()
			b.StopTimer()

			if got := hb.Counters.TCPFastPath - before; got != int64(b.N) {
				b.Fatalf("fast path took %d of %d segments", got, b.N)
			}
			if st := mbuf.PoolStats(); st.InUse != 0 {
				b.Fatalf("mbuf leak on hot path: %+v", st)
			}
		})
	}
}
